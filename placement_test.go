package softbarrier

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// TestPlacementPolicyCollectiveDifferential checks that predictive
// straggler placement never perturbs collective results: for every
// registered policy, a reconfigurable AllReduce with a non-commutative
// op stays bit-identical to the sequential id-order fold across steady
// episodes, mid-run Grow/Shrink, and the placement rebuilds the
// stragglers trigger. Statically placed tree/MCS/dynamic barriers are
// held to the same reference.
func TestPlacementPolicyCollectiveDifferential(t *testing.T) {
	op := opMat2()
	all := func(int) bool { return true }

	for _, name := range PlacementNames() {
		name := name
		t.Run("reconfig-"+name, func(t *testing.T) {
			mk, ok := PlacementByName(name)
			if !ok {
				t.Fatalf("no policy %q", name)
			}
			b := NewReconfigurable(6, ReconfigConfig{ReplanEvery: 2},
				WithCollective(op), WithPlacementPolicy(mk()))

			round := 0
			// runRound drives one lockstep AllReduce episode with one
			// participant arriving late (the placement signal) and checks
			// every delivered result against the sequential fold.
			runRound := func(p, straggler int, expect func(int) bool) {
				t.Helper()
				contribs := make([][]byte, p)
				for id := range contribs {
					contribs[id] = mat2Contribution(id, round)
				}
				want := sequentialFold(op, contribs)
				sentinel := bytes.Repeat([]byte{0xAB}, op.Width)
				outs := make([][]byte, p)
				var wg sync.WaitGroup
				for id := 0; id < p; id++ {
					outs[id] = bytes.Clone(sentinel)
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						if id == straggler {
							time.Sleep(500 * time.Microsecond)
						}
						if err := b.AllReduce(id, contribs[id], outs[id]); err != nil {
							t.Errorf("round %d participant %d: %v", round, id, err)
						}
					}(id)
				}
				wg.Wait()
				for id := 0; id < p; id++ {
					if expect(id) {
						if !bytes.Equal(outs[id], want) {
							t.Fatalf("round %d participant %d: got %x, want %x", round, id, outs[id], want)
						}
					} else if !bytes.Equal(outs[id], sentinel) {
						t.Fatalf("round %d shrunk participant %d received a result", round, id)
					}
				}
				round++
			}

			for i := 0; i < 4; i++ {
				runRound(6, 4, all)
			}
			if _, err := b.Grow(2); err != nil {
				t.Fatal(err)
			}
			runRound(6, 4, all) // boundary: grow lands at this release
			if got := b.Participants(); got != 8 {
				t.Fatalf("after grow: %d participants, want 8", got)
			}
			for i := 0; i < 4; i++ {
				runRound(8, 1, all)
			}
			if _, err := b.Shrink(3); err != nil {
				t.Fatal(err)
			}
			runRound(8, 1, func(id int) bool { return id < 5 })
			if got := b.Participants(); got != 5 {
				t.Fatalf("after shrink: %d participants, want 5", got)
			}
			for i := 0; i < 3; i++ {
				runRound(5, 0, all)
			}

			if st := b.ReconfigStats(); name == "static" {
				if st.Placements != 0 {
					t.Fatalf("static policy triggered %d placement rebuilds", st.Placements)
				}
			} else if st.Placements < 1 {
				t.Fatalf("policy %s never rebuilt placement (stats %+v)", name, st)
			}
		})
	}

	// Statically placed fixed barriers: an explicit permutation must be
	// invisible to the collective result.
	order := []int{7, 2, 5, 0, 3, 6, 1, 4}
	const p, episodes = 8, 20
	contrib := func(id, e int) []byte { return mat2Contribution(id, e) }
	want := func(e int) []byte {
		cs := make([][]byte, p)
		for id := range cs {
			cs[id] = contrib(id, e)
		}
		return sequentialFold(op, cs)
	}
	for name, b := range map[string]Collective{
		"tree-d2-placed":    NewCombiningTree(p, 2, WithCollective(op), WithPlacement(order)),
		"mcs-d3-placed":     NewMCSTree(p, 3, WithCollective(op), WithPlacement(order)),
		"dynamic-d2-placed": NewDynamic(p, 2, WithCollective(op), WithPlacement(order)),
	} {
		b := b
		t.Run(name, func(t *testing.T) {
			runAllReduceEpisodes(t, b, p, episodes, op, contrib, want)
		})
	}
}

// TestReconfigurablePredictivePlacement drives a reconfigurable barrier
// with one systemic straggler and asserts the predictive machinery end
// to end: the EWMA policy observes the lags, a placement rebuild fires
// at the replan cadence (ReconfigStats.Placements), and the straggler
// ends up in the shallowest slot of the rebuilt MCS epoch. It then moves
// the straggler and asserts the placement follows.
func TestReconfigurablePredictivePlacement(t *testing.T) {
	const p = 8
	mk, ok := PlacementByName("ewma")
	if !ok {
		t.Fatal("no ewma policy")
	}
	// Pin the degree at 2 (MinDegreeDelta larger than any possible move
	// suppresses degree rebuilds) so the MCS epochs keep their depth
	// diversity — the thing placement exploits — and the policy's orders
	// flow through the placement-only rebuild path
	// (ReconfigStats.Placements) instead of riding a degree change.
	b := NewReconfigurable(p, ReconfigConfig{
		ReplanEvery:    2,
		InitialDegree:  2,
		MinDegreeDelta: 64,
	}, WithPlacementPolicy(mk()))

	episode := func(straggler int) {
		var wg sync.WaitGroup
		for id := 0; id < p; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				if id == straggler {
					time.Sleep(2 * time.Millisecond)
				}
				b.Wait(id)
			}(id)
		}
		wg.Wait()
	}
	shallowest := func(d []int) int {
		min := d[0]
		for _, v := range d[1:] {
			if v < min {
				min = v
			}
		}
		return min
	}
	deepest := func(d []int) int {
		max := d[0]
		for _, v := range d[1:] {
			if v > max {
				max = v
			}
		}
		return max
	}

	for i := 0; i < 10; i++ {
		episode(5)
	}
	if st := b.ReconfigStats(); st.Placements < 1 {
		t.Fatalf("no placement rebuild after 10 straggler episodes (stats %+v)", st)
	}
	d := b.Depths()
	if shallowest(d) == deepest(d) {
		t.Fatalf("epoch tree has uniform depth %v — placement has nothing to choose", d)
	}
	if d[5] != shallowest(d) {
		t.Fatalf("straggler 5 at depth %d, shallowest is %d (depths %v)", d[5], shallowest(d), d)
	}

	for i := 0; i < 14; i++ {
		episode(2)
	}
	d = b.Depths()
	if d[2] != shallowest(d) {
		t.Fatalf("after straggler moved, id 2 at depth %d, shallowest is %d (depths %v)", d[2], shallowest(d), d)
	}
}
