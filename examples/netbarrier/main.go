// Networked barrier example: one binary hosts an in-process barrierd and
// drives 16 loopback clients through 100 episodes.
//
// The workload deliberately changes shape mid-run: episodes 0–39 arrive
// nearly together (σ ≈ µs — the model wants a narrow tree), episodes
// 40–69 add per-worker jitter up to 1.5 ms (large σ — the model wants a
// wide tree), and 70–99 go quiet again. Watch the deg column: the server
// measures the spread of every episode, folds it into an EWMA σ, and
// re-plans the combining-tree degree when the recommendation moves — the
// paper's σ-to-degree curve, observable over TCP.
//
// The process exits non-zero if any client sees a stall or error.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"softbarrier/internal/cli"
	"softbarrier/internal/loadmodel"
	"softbarrier/internal/netbarrier"
	"softbarrier/internal/stats"
)

const (
	workers  = 16
	episodes = 100
)

// phasedDelays pre-draws the per-episode, per-worker arrival delays: 40
// quiet episodes, 30 with jitter uniform in [0, 1.5ms), quiet again to
// the end. One shared schedule (instead of a per-client RNG) keeps the
// workload description in one place — the same loadmodel generators the
// simulator sweeps.
func phasedDelays() [][]float64 {
	quiet := loadmodel.IID{N: workers, Dist: stats.Degenerate{}}
	burst := loadmodel.IID{N: workers, Dist: stats.Uniform{Hi: 1500e-6}}
	gen := loadmodel.Phased{Phases: []loadmodel.Phase{
		{Episodes: 40, Gen: quiet},
		{Episodes: 30, Gen: burst},
		{Episodes: 0, Gen: quiet}, // runs forever
	}}
	return loadmodel.Schedule(gen, episodes, 1)
}

func main() {
	nf := cli.AddNetFlags()
	quiet := flag.Bool("quiet", false, "print only the episodes around a degree change")
	flag.Parse()

	opt, err := nf.Options()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if nf.Replan == 10 { // demo default: re-plan often enough to see the shift
		opt.ReplanEvery = 5
	}

	srv := netbarrier.NewServer(opt)
	go srv.ListenAndServe("127.0.0.1:0")
	defer srv.Close()
	addr, err := waitAddr(srv)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("barrierd on %s, %d clients x %d episodes\n", addr, workers, episodes)

	clients := make([]*netbarrier.Client, workers)
	for i := range clients {
		c, err := netbarrier.Dial(addr)
		if err == nil {
			err = c.Join("demo", workers)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "client %d: %v\n", i, err)
			os.Exit(1)
		}
		clients[i] = c
	}

	// Client 0 reports each episode's telemetry; all clients run the
	// phased workload. Releases are identical on every socket, so one
	// reporter suffices.
	delays := phasedDelays()
	var wg sync.WaitGroup
	errs := make([]error, workers)
	rels := make([]netbarrier.Release, episodes)
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *netbarrier.Client) {
			defer wg.Done()
			defer c.Leave()
			for ep := 0; ep < episodes; ep++ {
				if d := delays[ep][i]; d > 0 {
					time.Sleep(time.Duration(d * float64(time.Second)))
				}
				r, err := c.Wait()
				if err != nil {
					errs[i] = err
					return
				}
				if i == 0 {
					rels[ep] = r
				}
			}
		}(i, c)
	}
	wg.Wait()

	failed := false
	for i, err := range errs {
		if err != nil {
			fmt.Fprintf(os.Stderr, "client %d failed: %v\n", i, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}

	fmt.Printf("%8s %5s %12s %12s\n", "episode", "deg", "spread", "sigma")
	prev := -1
	for ep, r := range rels {
		changed := r.Degree != prev
		if !*quiet || changed || ep == episodes-1 {
			mark := "  "
			if changed && prev != -1 {
				mark = "<- re-plan"
			}
			fmt.Printf("%8d %5d %12s %12s %s\n", r.Episode, r.Degree,
				cli.Dur(r.Spread), cli.Dur(r.Sigma), mark)
		}
		prev = r.Degree
	}
	fmt.Printf("all %d clients completed %d episodes\n", workers, episodes)
}

// waitAddr polls until the server has bound its ephemeral port.
func waitAddr(srv *netbarrier.Server) (string, error) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if a := srv.Addr(); a != "" {
			return a, nil
		}
		time.Sleep(time.Millisecond)
	}
	return "", fmt.Errorf("server did not bind a listener within 5s")
}
