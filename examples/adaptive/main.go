// Adaptive degree example: the barrier re-derives its tree degree at run
// time as the load imbalance changes — the adaptation the paper's
// conclusion proposes.
//
// Phase 1 is balanced: workers arrive nearly simultaneously, and the
// barrier keeps a narrow (deep) tree, which minimizes contention delay.
// Phase 2 injects heavy imbalance: arrivals spread over ~2ms, far wider
// than the assumed counter update cost, and the barrier widens its tree —
// with enough spread a nearly flat tree minimizes the update delay of the
// straggler.
package main

import (
	"fmt"
	"sync"
	"time"

	"softbarrier"
)

func main() {
	const workers = 16
	// Assume a 100µs counter update cost so the example's millisecond
	// sleeps register as heavy imbalance.
	b := softbarrier.NewAdaptive(workers, 4, 100e-6)

	runPhase := func(name string, episodes int, imbalance func(id int) time.Duration) {
		for k := 0; k < episodes; k++ {
			var wg sync.WaitGroup
			wg.Add(workers)
			for id := 0; id < workers; id++ {
				go func(id int) {
					defer wg.Done()
					if d := imbalance(id); d > 0 {
						time.Sleep(d)
					}
					b.Wait(id)
				}(id)
			}
			wg.Wait()
		}
		fmt.Printf("%-22s degree=%-3d σ estimate=%v adaptations=%d\n",
			name, b.Degree(), time.Duration(b.Sigma()*float64(time.Second)).Round(time.Microsecond), b.Adaptations())
	}

	fmt.Printf("start: degree=%d (the classic simultaneous-arrival optimum)\n", b.Degree())
	runPhase("after balanced phase:", 12, func(int) time.Duration { return 0 })
	// Spread arrivals over ~4ms — far beyond the assumed 100µs counter
	// update cost, so the model's optimum is decisively a wide tree.
	runPhase("after imbalanced phase:", 20, func(id int) time.Duration {
		return time.Duration(id) * 250 * time.Microsecond
	})
	if b.Degree() <= 4 {
		panic("barrier failed to widen under imbalance")
	}
	fmt.Println("the barrier widened its tree once arrivals spread out, as §4 predicts")
	rs := b.ReconfigStats()
	fmt.Printf("reconfiguration: epoch %d after %d rebuilds (%d plans evaluated, %d deferred by hysteresis)\n",
		rs.LastPlan.Epoch, rs.Rebuilds, rs.Evals, rs.Deferred)
}
