// AllReduce: a convergence loop where the termination test itself rides
// the barrier.
//
// Eight workers jointly estimate π by integrating 4/(1+x²) over [0,1]:
// each round every worker refines its own slice of the integral, then the
// cohort folds the per-worker deltas through the barrier's AllReduce.
// Everyone receives the same global delta bit-for-bit (sum-f64 folds in
// ascending worker id), so all workers agree on the round the loop stops
// — no coordinator, no extra synchronization phase. This is the pattern
// internal/sor.SolveSORParUntil uses for its residual test, in miniature.
//
// The example also shows Broadcast: worker 0 publishes the round count it
// observed and everyone adopts it, demonstrating that the collective
// modes mix freely on one barrier (one call shape per episode).
package main

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync"

	"softbarrier"
)

const (
	workers = 8
	eps     = 1e-12 // stop when a refinement round moves π by less than this
	maxRnd  = 40
)

// f is the integrand: ∫₀¹ 4/(1+x²) dx = π.
func f(x float64) float64 { return 4 / (1 + x*x) }

// slice integrates worker id's subinterval with n midpoint samples.
func slice(id, n int) float64 {
	lo, hi := float64(id)/workers, float64(id+1)/workers
	h := (hi - lo) / float64(n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += f(lo + (float64(i)+0.5)*h)
	}
	return sum * h
}

func main() {
	op := softbarrier.OpSumFloat64()
	b := softbarrier.NewCombiningTree(workers, 4, softbarrier.WithCollective(op))

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		rounds = make(map[int]int) // worker id -> round it stopped on
		pi     float64
		fail   error
	)
	wg.Add(workers)
	for id := 0; id < workers; id++ {
		go func(id int) {
			defer wg.Done()
			var cell [8]byte
			prev, n := 0.0, 2
			for round := 1; ; round++ {
				// Refine the local slice and contribute it; the release
				// wave returns the whole integral.
				binary.BigEndian.PutUint64(cell[:], math.Float64bits(slice(id, n)))
				if err := b.AllReduce(id, cell[:], cell[:]); err != nil {
					mu.Lock()
					fail = err
					mu.Unlock()
					return
				}
				est := math.Float64frombits(binary.BigEndian.Uint64(cell[:]))
				// Every worker computed the identical est, so this branch
				// is taken by all of them on the same round.
				if math.Abs(est-prev) < eps || round == maxRnd {
					// One more payload episode: worker 0 broadcasts the
					// round it stopped on and everyone adopts it, showing
					// Broadcast mixing with AllReduce on the same barrier.
					binary.BigEndian.PutUint64(cell[:], uint64(round))
					if err := b.Broadcast(id, 0, cell[:]); err != nil {
						mu.Lock()
						fail = err
						mu.Unlock()
						return
					}
					mu.Lock()
					rounds[id] = int(binary.BigEndian.Uint64(cell[:]))
					pi = est
					mu.Unlock()
					return
				}
				prev, n = est, n*2
			}
		}(id)
	}
	wg.Wait()

	if fail != nil {
		fmt.Fprintln(os.Stderr, fail)
		os.Exit(1)
	}
	round := rounds[0]
	for id, r := range rounds {
		if r != round {
			fmt.Fprintf(os.Stderr, "worker %d stopped on round %d, worker 0 on %d\n", id, r, round)
			os.Exit(1)
		}
	}
	fmt.Printf("%d workers converged together on round %d (deterministic AllReduce => unanimous stop)\n",
		workers, round)
	fmt.Printf("π ≈ %.15f (off by %.2g)\n", pi, math.Abs(pi-math.Pi))
}
