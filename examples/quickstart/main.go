// Quickstart: synchronize a pool of workers with a combining-tree barrier.
//
// Eight workers run ten supersteps; a barrier separates the steps so that
// no worker starts step k+1 before every worker finished step k. The
// barrier degree comes from the paper's analytic model via
// softbarrier.OptimalDegree.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"softbarrier"
)

func main() {
	const workers = 8
	const steps = 10

	// Expected arrival spread ≈ 50µs, counter update ≈ 1µs on this host:
	// the model picks the tree degree for us.
	degree := softbarrier.OptimalDegree(workers, 50e-6, 1e-6)
	fmt.Printf("model-recommended tree degree for %d workers: %d\n", workers, degree)

	b := softbarrier.NewCombiningTree(workers, degree)

	var perStep [steps]atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for id := 0; id < workers; id++ {
		go func(id int) {
			defer wg.Done()
			for step := 0; step < steps; step++ {
				perStep[step].Add(1) // the "work" of this superstep
				b.Wait(id)
				// After the barrier, every worker must have finished the
				// step — check it.
				if got := perStep[step].Load(); got != workers {
					panic(fmt.Sprintf("worker %d saw %d/%d arrivals after barrier", id, got, workers))
				}
			}
		}(id)
	}
	wg.Wait()
	fmt.Printf("%d workers × %d supersteps completed, every step fully synchronized\n", workers, steps)
}
