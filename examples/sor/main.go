// SOR example: the paper's §7 workload on real goroutines.
//
// A 2-D relaxation grid is partitioned along the x-dimension across
// workers; a fuzzy (phased) barrier separates iterations. Each worker
// relaxes its stripe, calls Arrive, performs stripe-local bookkeeping in
// the barrier's slack region, and only then blocks in Await — converting
// load imbalance into overlap instead of idle time, exactly the fuzzy-
// barrier usage the paper assumes for dynamic placement.
package main

import (
	"fmt"

	"softbarrier"
	"softbarrier/internal/sor"
)

func main() {
	const (
		workers = 7
		dxEach  = 12
		dy      = 64
		iters   = 120
	)
	nx := workers*dxEach + 2

	// Hot left boundary: heat diffuses into the grid.
	build := func() *sor.Grid {
		g := sor.NewGrid(nx, dy+2)
		for x := 0; x < nx; x++ {
			g.SetBoth(x, 0, 1)
		}
		return g
	}

	// Reference solution.
	ref := build()
	refBuf := ref.SolveSeq(iters)

	// Parallel solve with a phased MCS tree barrier.
	b := softbarrier.NewMCSTree(workers, 4)
	g := build()
	stripes := sor.Stripes(nx-2, workers)
	done := make(chan float64, workers)
	for id := 0; id < workers; id++ {
		go func(id int) {
			src := 0
			localMax := 0.0
			for k := 0; k < iters; k++ {
				g.RelaxRows(src, stripes[id][0], stripes[id][1])
				b.Arrive(id)
				// Slack region: stripe-local reduction that needs no other
				// stripe's data — runs while stragglers finish relaxing.
				for x := stripes[id][0]; x < stripes[id][1]; x++ {
					if v := g.At(1-src, x, 1); v > localMax {
						localMax = v
					}
				}
				b.Await(id)
				src = 1 - src
			}
			done <- localMax
		}(id)
	}
	globalMax := 0.0
	for i := 0; i < workers; i++ {
		if v := <-done; v > globalMax {
			globalMax = v
		}
	}

	buf := iters % 2
	if g.Checksum(buf) != ref.Checksum(refBuf) {
		panic("parallel SOR diverged from sequential reference")
	}
	fmt.Printf("SOR %dx%d, %d iterations on %d workers with a fuzzy MCS tree barrier\n", nx, dy+2, iters, workers)
	fmt.Printf("result matches the sequential solver (checksum %.6g)\n", g.Checksum(buf))
	fmt.Printf("max first-column temperature (computed in the slack region): %.4f\n", globalMax)
	fmt.Printf("residual after %d iterations: %.3g\n", iters, g.Residual(buf))
}
