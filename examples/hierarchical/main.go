// Hierarchical barrier example: one binary starts an in-process fleet —
// a root barrierd plus -leaves leaf shards on loopback — and drives 32
// clients, split evenly across the leaves, through 90 AllReduce
// episodes. Each leaf combines its local cohort through its own
// σ-planned tree, forwards one aggregated arrival (and one partial sum)
// per episode to the root, and fans the root's fleet-wide release back
// out; the demo is the two-process-level version of examples/netbarrier.
//
// Two things to watch in the output:
//
//   - The fold column: every release carries the fleet-wide sum, and the
//     demo checks it against the sequential fold every episode. The
//     contributions are integer-valued float64s, so the two-level
//     grouping (per-shard folds, folded in ascending shard id at the
//     root) is bit-identical to the flat left fold — the determinism the
//     wire protocol promises.
//   - The deg column per leaf: episodes 30–59 add per-worker jitter up
//     to 2 ms, inflating each leaf's measured σ. Leaves plan their local
//     trees independently, so their re-plans (marked <-) need not land
//     on the same episode, but each should widen during the noisy phase.
//
// The process exits non-zero if any client sees an error or a wrong fold.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sync"
	"time"

	"softbarrier"
	"softbarrier/internal/cli"
	"softbarrier/internal/netbarrier"
	"softbarrier/internal/shardbarrier"
)

const (
	workers  = 32
	episodes = 90
	jitterLo = 30 // first jittered episode
	jitterHi = 60 // first quiet episode after the burst
)

func main() {
	leaves := flag.Int("leaves", 2, "leaf shards in the fleet")
	quiet := flag.Bool("quiet", false, "print only the episodes around a degree change")
	flag.Parse()
	if *leaves < 1 || workers%*leaves != 0 {
		fmt.Fprintf(os.Stderr, "-leaves must divide %d clients, got %d\n", workers, *leaves)
		os.Exit(1)
	}

	op := softbarrier.OpSumFloat64()
	fleet, err := shardbarrier.StartFleet(shardbarrier.FleetOptions{
		Leaves: *leaves,
		Net: netbarrier.Options{
			Watchdog:    30 * time.Second,
			ReplanEvery: 5,
			Op:          &op,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer fleet.Close()
	addrs := fleet.LeafAddrs()
	fmt.Printf("%v, %d clients x %d episodes of sum-f64 AllReduce\n", fleet, workers, episodes)

	// Client i joins leaf i*leaves/workers; the first client of each leaf
	// records that leaf's release stream (leaf-mates share it).
	perLeaf := workers / *leaves
	rels := make([][]netbarrier.Release, *leaves)
	for l := range rels {
		rels[l] = make([]netbarrier.Release, episodes)
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			leaf := i * *leaves / workers
			c, err := netbarrier.Dial(addrs[leaf])
			if err == nil {
				err = c.Join("demo", perLeaf)
			}
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Leave()
			rng := rand.New(rand.NewSource(int64(i)*2654435761 + 1))
			for ep := 0; ep < episodes; ep++ {
				if ep >= jitterLo && ep < jitterHi {
					time.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
				}
				if err := c.ArriveReduce(f64bytes(contribution(i, ep))); err != nil {
					errs[i] = fmt.Errorf("episode %d: %w", ep, err)
					return
				}
				r, err := c.Await()
				if err != nil {
					errs[i] = fmt.Errorf("episode %d: %w", ep, err)
					return
				}
				if got, want := f64of(r.Result), expectedSum(ep); got != want {
					errs[i] = fmt.Errorf("episode %d: fleet fold %v, sequential fold %v", ep, got, want)
					return
				}
				if i == leaf*perLeaf {
					rels[leaf][ep] = r
				}
			}
		}(i)
	}
	wg.Wait()

	failed := false
	for i, err := range errs {
		if err != nil {
			fmt.Fprintf(os.Stderr, "client %d failed: %v\n", i, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}

	for l := 0; l < *leaves; l++ {
		fmt.Printf("\nleaf %d (%s):\n", l, addrs[l])
		fmt.Printf("%8s %5s %12s %12s %16s\n", "episode", "deg", "spread", "sigma", "fold")
		prev := -1
		for ep, r := range rels[l] {
			changed := r.Degree != prev
			if !*quiet || changed || ep == episodes-1 {
				mark := "  "
				if changed && prev != -1 {
					mark = "<- re-plan"
				}
				fmt.Printf("%8d %5d %12s %12s %16.0f %s\n", r.Episode, r.Degree,
					cli.Dur(r.Spread), cli.Dur(r.Sigma), f64of(r.Result), mark)
			}
			prev = r.Degree
		}
	}
	fmt.Printf("\nall %d clients completed %d ledger-verified episodes across %d leaves\n",
		workers, episodes, *leaves)
}

// contribution is client i's episode-ep input: integer-valued, so the
// fleet-wide sum (< 2^53) is exact under any fold grouping and the
// bit-identity check below is meaningful rather than tolerance-based.
func contribution(i, ep int) float64 { return float64(i*1000 + ep%7 + 1) }

// expectedSum is the sequential left fold of every client's contribution.
func expectedSum(ep int) float64 {
	s := 0.0
	for i := 0; i < workers; i++ {
		s += contribution(i, ep)
	}
	return s
}

func f64bytes(v float64) []byte {
	b := math.Float64bits(v)
	return []byte{byte(b >> 56), byte(b >> 48), byte(b >> 40), byte(b >> 32),
		byte(b >> 24), byte(b >> 16), byte(b >> 8), byte(b)}
}

func f64of(b []byte) float64 {
	if len(b) != 8 {
		return math.NaN()
	}
	v := uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
	return math.Float64frombits(v)
}
