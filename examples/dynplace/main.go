// Dynamic placement example: a systemically slow worker migrates to the
// root of the combining tree.
//
// Worker 5 carries extra work every iteration (systemic load imbalance).
// With a static tree it would pay the full O(log p) counter path on top of
// being last; the dynamic-placement barrier notices it keeps arriving last
// and swaps it upward until it sits at the root, synchronizing in a single
// counter update — the paper's §5 mechanism, observable via DepthOf.
package main

import (
	"fmt"
	"sync"
	"time"

	"softbarrier"
)

func main() {
	const workers = 16
	const slow = 5
	const episodes = 30

	b := softbarrier.NewDynamic(workers, 4)
	fmt.Printf("worker %d initial tree depth: %d\n", slow, b.DepthOf(slow))

	depths := make([]int, 0, episodes)
	for k := 0; k < episodes; k++ {
		var wg sync.WaitGroup
		wg.Add(workers)
		for id := 0; id < workers; id++ {
			go func(id int) {
				defer wg.Done()
				if id == slow {
					time.Sleep(2 * time.Millisecond) // systemic imbalance
				}
				b.Wait(id)
			}(id)
		}
		wg.Wait()
		depths = append(depths, b.DepthOf(slow))
	}

	fmt.Printf("worker %d depth per episode: %v\n", slow, depths)
	fmt.Printf("final depth: %d (1 = attached directly to the root counter)\n", b.DepthOf(slow))
	fmt.Printf("placement swaps performed: %d\n", b.Swaps())
	if b.DepthOf(slow) != 1 {
		panic("slow worker did not migrate to the root")
	}
	fmt.Println("the slow worker now synchronizes in O(1) instead of O(log p)")
}
