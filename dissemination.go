package softbarrier

import (
	"runtime"
	"sync/atomic"
)

// DisseminationBarrier is the classic dissemination barrier (Hensgen,
// Finkel & Manber): ⌈log₂ p⌉ rounds in which participant i signals
// participant (i + 2^round) mod p and waits for a signal from
// (i − 2^round) mod p. No participant ever spins on a remote location for
// long, and there is no combining tree to tune — it is the standard
// baseline the combining-tree literature (including the MCS paper the
// dynamic-placement barrier builds on) compares against.
//
// Under load imbalance its synchronization delay is Θ(log p) rounds
// *after the last arrival* regardless of the arrival spread, which is why
// the paper's imbalance-aware combining trees can beat it: they collapse
// toward O(1) for the late processor.
type DisseminationBarrier struct {
	p      int
	rounds int
	// flags[id][round][parity] is the arrival flag signalled to id.
	flags [][][2]atomic.Uint32
	// parity/sense are per-participant episode state.
	state []dissState
}

type dissState struct {
	parity int
	sense  uint32
	_      [48]byte
}

// NewDissemination returns a dissemination barrier for p participants.
func NewDissemination(p int) *DisseminationBarrier {
	if p < 1 {
		panic("softbarrier: need at least one participant")
	}
	rounds := 0
	for 1<<rounds < p {
		rounds++
	}
	b := &DisseminationBarrier{p: p, rounds: rounds}
	b.flags = make([][][2]atomic.Uint32, p)
	for i := range b.flags {
		b.flags[i] = make([][2]atomic.Uint32, rounds)
	}
	b.state = make([]dissState, p)
	for i := range b.state {
		b.state[i].sense = 1
	}
	return b
}

// Participants returns P.
func (b *DisseminationBarrier) Participants() int { return b.p }

// Rounds returns ⌈log₂ p⌉, the number of signalling rounds per episode.
func (b *DisseminationBarrier) Rounds() int { return b.rounds }

// Wait blocks until all participants arrive.
func (b *DisseminationBarrier) Wait(id int) {
	checkID(id, b.p)
	st := &b.state[id]
	for r := 0; r < b.rounds; r++ {
		partner := (id + (1 << r)) % b.p
		b.flags[partner][r][st.parity].Store(st.sense)
		for b.flags[id][r][st.parity].Load() != st.sense {
			runtime.Gosched()
		}
	}
	// Alternate parity each episode; flip sense when the parity wraps, so
	// the two in-flight episodes' flag values never collide (the MCS-paper
	// parity/sense scheme).
	if st.parity == 1 {
		st.sense = 1 - st.sense
	}
	st.parity = 1 - st.parity
}

var _ Barrier = (*DisseminationBarrier)(nil)
