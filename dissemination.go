package softbarrier

import (
	"context"

	rt "softbarrier/internal/runtime"
)

// DisseminationBarrier is the classic dissemination barrier (Hensgen,
// Finkel & Manber): ⌈log₂ p⌉ rounds in which participant i signals
// participant (i + 2^round) mod p and waits for a signal from
// (i − 2^round) mod p. No participant ever spins on a remote location for
// long, and there is no combining tree to tune — it is the standard
// baseline the combining-tree literature (including the MCS paper the
// dynamic-placement barrier builds on) compares against.
//
// Under load imbalance its synchronization delay is Θ(log p) rounds
// *after the last arrival* regardless of the arrival spread, which is why
// the paper's imbalance-aware combining trees can beat it: they collapse
// toward O(1) for the late processor.
//
// Each round's wait runs on the shared internal/runtime waiter: a bounded
// spin, a yielding phase, then a park — replacing the former unbounded
// Gosched loop. Flags carry the (monotone) episode number, with the
// classic parity split so the two in-flight episodes never share a slot.
type DisseminationBarrier struct {
	p      int
	rounds int
	policy rt.WaitPolicy
	// flags[id][2*round+parity] is the arrival flag signalled to id.
	flags [][]rt.Cell
	// state is each participant's episode counter.
	state []dissState
	rec   *rt.Recorder
	poisonCore
}

type dissState struct {
	episode uint64
	_       [56]byte
}

// NewDissemination returns a dissemination barrier for p participants.
func NewDissemination(p int, opts ...Option) *DisseminationBarrier {
	if p < 1 {
		panic("softbarrier: need at least one participant")
	}
	o := applyOptions(opts)
	rounds := 0
	for 1<<rounds < p {
		rounds++
	}
	b := &DisseminationBarrier{p: p, rounds: rounds, policy: o.policy}
	b.flags = make([][]rt.Cell, p)
	for i := range b.flags {
		b.flags[i] = make([]rt.Cell, 2*rounds)
		rt.InitCells(b.flags[i])
	}
	b.state = make([]dissState, p)
	b.rec = o.recorder(p, false)
	b.initPoison(p, o.watchdog, o.poisonNotify,
		func() {
			// No central gate: waking everyone means poisoning every round
			// flag — each participant is parked on (at most) one of its own.
			for i := range b.flags {
				for j := range b.flags[i] {
					b.flags[i][j].Poison()
				}
			}
		},
		func() {
			for i := range b.flags {
				for j := range b.flags[i] {
					b.flags[i][j].Reset()
				}
			}
			// The aborted episode left the per-participant counters
			// divergent; restart everyone from episode zero to match the
			// zeroed flags.
			for i := range b.state {
				b.state[i].episode = 0
			}
		})
	return b
}

// Participants returns P.
func (b *DisseminationBarrier) Participants() int { return b.p }

// Rounds returns ⌈log₂ p⌉, the number of signalling rounds per episode.
func (b *DisseminationBarrier) Rounds() int { return b.rounds }

// Wait blocks until all participants arrive. On a poisoned barrier it
// returns immediately; a participant woken mid-round by poison abandons
// the episode (its counter does not advance).
func (b *DisseminationBarrier) Wait(id int) {
	checkID(id, b.p)
	if b.poisoned() {
		return
	}
	b.noteArrive(id)
	st := &b.state[id]
	ep := st.episode
	b.rec.Arrive(id, ep)
	parity := int(ep & 1)
	// Flag values are the 1-based episode number: monotone per slot (each
	// parity slot sees every other episode), and never equal to a cell's
	// zero initial value.
	want := ep + 1
	for r := 0; r < b.rounds; r++ {
		partner := (id + (1 << r)) % b.p
		b.flags[partner][2*r+parity].Set(want)
		if b.flags[id][2*r+parity].AwaitAtLeast(want, b.policy) == rt.PoisonValue {
			return
		}
	}
	if id == 0 {
		// Participant 0 is the designated telemetry reporter: its exit
		// happens-after every participant's arrival (transitively through
		// the signalling rounds), and its own next arrival — which the
		// same-parity slots' reuse waits on — comes after this read.
		b.rec.Release(ep, rt.Extra{})
	}
	st.episode++
}

// WaitCtx is Wait with cancellation: if ctx ends while the wait is in
// flight the barrier is poisoned, and the poison error is returned.
func (b *DisseminationBarrier) WaitCtx(ctx context.Context, id int) error {
	checkID(id, b.p)
	return b.waitCtx(ctx, func() { b.Wait(id) })
}

var _ Barrier = (*DisseminationBarrier)(nil)
var _ ContextBarrier = (*DisseminationBarrier)(nil)
