package softbarrier

import (
	"context"
	"runtime"
	"sync/atomic"

	"softbarrier/internal/reconfig"
	rt "softbarrier/internal/runtime"
	"softbarrier/internal/topology"
)

// ReconfigurableBarrier is a combining-tree barrier whose configuration —
// tree degree and participant count — is an epoch managed by the shared
// internal/reconfig controller. Every episode the releasing participant
// folds the measured arrival spread into the EWMA σ estimate; on the
// replan cadence (and immediately when a membership change is pending)
// the controller derives a new Plan from the analytic model
// (OptimalDegree) with hysteresis, and the releaser applies it at the
// episode's quiescent point, before opening the release gate. This is the
// run-time degree adaptation the paper's conclusion proposes, extended to
// elastic membership: Grow/Shrink/RequestResize queue a participant-count
// change that lands at the next episode boundary, and Resize applies one
// immediately when the caller knows the barrier is idle.
//
// Elastic protocol, from a worker's point of view: a worker that may be
// shrunk away checks Participants after each Wait returns and stops when
// its id falls outside the membership (the swap is published before the
// release that wakes it, so the check is race-free). A newly grown worker
// waits until Participants covers its id and then calls Wait; Arrive
// internally holds it until the admitting epoch's release has happened, so
// it can never contribute to — or slip past — an episode of the epoch
// before it existed.
type ReconfigurableBarrier struct {
	tc float64

	gate  rt.Gate
	state atomic.Pointer[rcState] // replaced only at quiescent points

	ctrl *reconfig.Controller
	est  rt.SigmaEstimator // EWMA of per-episode arrival spread, seconds
	rec  *rt.Recorder      // always active: the control loop needs the spreads
	red  *rt.Reducer       // payload reducer; nil without WithCollective

	// Predictive straggler placement (WithPlacementPolicy). place and
	// lagBuf are touched only by the releasing participant.
	place  PlacementPolicy
	lagBuf []float64
	poisonCore
}

// rcState is one epoch's rebuildable configuration: the topology, its
// counters, and the per-participant generation slots.
type rcState struct {
	p        int
	degree   int
	epoch    uint64
	epochGen uint64 // gate generation at which this epoch becomes active
	tree     *topology.Tree
	counters []treeCounter
	// order is the placement order the epoch's tree was built with, nil
	// for the natural ascending-id placement.
	order []int
	// myGen holds each participant's episode generation. It only ever
	// grows across epochs (shrunk ids keep their slot so their final
	// Await still reads a valid generation while they drain out).
	myGen []rt.PaddedUint64
}

// ReconfigConfig tunes a ReconfigurableBarrier's replan cadence,
// hysteresis and model inputs. The zero value re-plans every episode with
// no hysteresis, starting at degree 4 with the paper's 20µs counter cost.
type ReconfigConfig struct {
	// ReplanEvery is how many episodes pass between degree
	// re-evaluations; 0 means every episode.
	ReplanEvery int
	// MinEpisodesBetween defers degree-only rebuilds until at least this
	// many episodes have passed since the last one; 0 disables the floor.
	// Membership changes are never deferred.
	MinEpisodesBetween int
	// MinDegreeDelta suppresses rebuilds whose recommended degree moved
	// by less than this; 0 means any change rebuilds.
	MinDegreeDelta int
	// Tc is the assumed counter update cost fed to the model, seconds;
	// 0 selects the paper's 20µs.
	Tc float64
	// InitialSigma is the arrival spread assumed before any episode has
	// been measured, seconds.
	InitialSigma float64
	// InitialDegree is the starting tree degree; 0 selects 4 (the
	// classic simultaneous-arrival optimum).
	InitialDegree int
}

// ReconfigStats is the unified reconfiguration telemetry every elastic
// barrier exposes — the in-process ReconfigurableBarrier and the
// netbarrier sessions report the same shape.
type ReconfigStats = reconfig.Stats

// ReconfigPlan is one epoch's configuration as planned by the controller.
type ReconfigPlan = reconfig.Plan

// Resizable is a barrier whose participant count can be changed at a
// quiescent point.
type Resizable interface {
	Participants() int
	Resize(p int) error
}

// NewReconfigurable returns an elastic adaptive barrier for p initial
// participants.
func NewReconfigurable(p int, cfg ReconfigConfig, opts ...Option) *ReconfigurableBarrier {
	if p < 1 {
		panic("softbarrier: need at least one participant")
	}
	if cfg.ReplanEvery < 0 {
		panic("softbarrier: negative replan cadence")
	}
	if cfg.Tc == 0 {
		cfg.Tc = 20e-6
	}
	if cfg.Tc < 0 {
		panic("softbarrier: negative counter update cost")
	}
	if cfg.InitialDegree == 0 {
		cfg.InitialDegree = 4
	}
	if cfg.InitialDegree < 2 {
		panic("softbarrier: tree degree must be ≥ 2")
	}
	o := applyOptions(opts)
	b := &ReconfigurableBarrier{tc: cfg.Tc, place: o.placement}
	b.gate.Init(o.policy)
	b.rec = o.recorder(p, true)
	b.est.Init(rt.DefaultSigmaWeight)
	b.ctrl = reconfig.New(
		reconfig.Config{
			ReplanEvery:        uint64(cfg.ReplanEvery),
			MinEpisodesBetween: uint64(cfg.MinEpisodesBetween),
			MinDegreeDelta:     cfg.MinDegreeDelta,
			InitialSigma:       cfg.InitialSigma,
		},
		&b.est,
		func(p int, sigma float64) (int, bool) { return OptimalDegree(p, sigma, b.tc), false },
		reconfig.Plan{P: p, Degree: cfg.InitialDegree},
	)
	st0 := newRCState(nil, b.ctrl.Current(), 0, nil, b.place != nil)
	b.state.Store(st0)
	b.red = o.reducer(p, len(st0.counters))
	b.initPoison(p, o.watchdog, o.poisonNotify,
		func() { b.gate.Poison() },
		func() {
			st := b.state.Load()
			for i := range st.counters {
				c := &st.counters[i]
				c.mu.Lock()
				c.count = 0
				c.mu.Unlock()
			}
			if b.red != nil {
				b.red.Reset()
			}
			b.gate.Unpoison()
		})
	return b
}

// newRCState builds the epoch described by plan, carrying forward the
// generation slots of prev (nil for the initial epoch). epochGen is the
// gate generation at which the epoch's first episode runs. order, when
// it covers plan.P, relabels the tree laggiest-first-shallowest
// (PlaceByDepth). mcs selects an MCS-shaped tree: a barrier with a
// placement policy builds MCS epochs, because a classic tree puts every
// participant at the same (leaf) depth and placement would choose
// nothing.
func newRCState(prev *rcState, plan reconfig.Plan, epochGen uint64, order []int, mcs bool) *rcState {
	var tree *topology.Tree
	if mcs {
		tree = topology.NewMCS(plan.P, plan.Degree)
	} else {
		tree = topology.NewClassic(plan.P, plan.Degree)
	}
	if len(order) == plan.P {
		tree = placeTree(tree, order)
	} else {
		order = nil
	}
	st := &rcState{
		p:        plan.P,
		degree:   plan.Degree,
		epoch:    plan.Epoch,
		epochGen: epochGen,
		tree:     tree,
		counters: make([]treeCounter, len(tree.Counters)),
		order:    order,
	}
	for i := range st.counters {
		st.counters[i].fanIn = tree.Counters[i].FanIn()
	}
	n := plan.P
	if prev != nil && len(prev.myGen) > n {
		n = len(prev.myGen)
	}
	st.myGen = make([]rt.PaddedUint64, n)
	if prev != nil {
		copy(st.myGen, prev.myGen)
	}
	return st
}

// Participants returns the current epoch's participant count. It reflects
// a committed membership change as soon as the changing episode's release
// is published, so a worker observing its id outside [0, Participants)
// after Wait returns has been shrunk away and must stop calling Wait.
func (b *ReconfigurableBarrier) Participants() int { return b.state.Load().p }

// Degree returns the current tree degree.
func (b *ReconfigurableBarrier) Degree() int { return b.state.Load().degree }

// Epoch returns the 0-based configuration epoch.
func (b *ReconfigurableBarrier) Epoch() uint64 { return b.state.Load().epoch }

// Sigma returns the current arrival-spread estimate in seconds.
func (b *ReconfigurableBarrier) Sigma() float64 { return b.est.Sigma() }

// Depths returns the current epoch's per-participant synchronization
// path lengths — how many counters each participant updates per episode.
// With a placement policy armed, predicted stragglers show the smallest
// depths after a placement rebuild. The epoch's tree is immutable, so
// Depths is safe from any goroutine; it reflects the epoch current at
// the call.
func (b *ReconfigurableBarrier) Depths() []int {
	st := b.state.Load()
	d := make([]int, st.p)
	for id := range d {
		d[id] = st.tree.Depth(st.tree.FirstCounter(id))
	}
	return d
}

// MeasuredSigma implements SigmaSource: the live σ estimate and the number
// of episodes it is based on, for feeding back into the planner.
func (b *ReconfigurableBarrier) MeasuredSigma() (sigma float64, episodes uint64) {
	return b.est.Sigma(), b.est.Episodes()
}

// Adaptations returns how many times the barrier has rebuilt its tree.
func (b *ReconfigurableBarrier) Adaptations() uint64 { return b.ctrl.Rebuilds() }

// ReconfigStats returns the unified reconfiguration telemetry: epoch and
// rebuild counts plus the last committed plan (σ at plan time included).
func (b *ReconfigurableBarrier) ReconfigStats() ReconfigStats { return b.ctrl.Stats() }

// Resize changes the participant count immediately. It may only be called
// at a quiescent point — no Wait/Arrive/Await in flight — exactly like
// Reset; use Grow/Shrink/RequestResize to change membership while the
// barrier is running.
func (b *ReconfigurableBarrier) Resize(p int) error {
	plan, err := b.ctrl.PlanResize(p)
	if err != nil {
		return err
	}
	// The new epoch is active right away: the gate generation does not
	// move at a quiescent Resize.
	b.apply(b.state.Load(), plan, b.gate.Seq())
	return nil
}

// RequestResize queues a membership change to p participants; the change
// is applied at the next episode boundary. Safe from any goroutine; the
// last request before the boundary wins.
func (b *ReconfigurableBarrier) RequestResize(p int) error { return b.ctrl.RequestP(p) }

// Grow queues the admission of n more participants at the next episode
// boundary and returns the resulting membership target. The new ids are
// the target's top n; a new worker must wait until Participants covers its
// id before its first Wait.
func (b *ReconfigurableBarrier) Grow(n int) (int, error) { return b.ctrl.RequestDelta(n) }

// Shrink queues the removal of the top n participant ids at the next
// episode boundary and returns the resulting membership target. Shrunk
// workers observe their removal when Wait returns with Participants no
// longer covering their id.
func (b *ReconfigurableBarrier) Shrink(n int) (int, error) { return b.ctrl.RequestDelta(-n) }

// Wait blocks until all participants arrive.
func (b *ReconfigurableBarrier) Wait(id int) {
	b.Arrive(id)
	b.Await(id)
}

// Arrive records the arrival time and performs the counter ascent,
// re-planning and releasing the episode if id completes the root. On a
// poisoned barrier it is a no-op, as it is for an id the current epoch has
// shrunk away (such a participant is draining out and must not touch the
// counters).
func (b *ReconfigurableBarrier) Arrive(id int) {
	st := b.state.Load()
	checkID(id, len(st.myGen))
	if id >= st.p {
		return // shrunk away; drain without contributing
	}
	// A freshly grown participant can observe the new epoch (Participants
	// covers it) before the admitting episode's release has opened the
	// gate. Entering then would stamp the old generation and unblock on
	// the wrong release, so hold until the epoch is active.
	for b.gate.Seq() < st.epochGen {
		if b.poisoned() {
			return
		}
		runtime.Gosched()
	}
	if b.poisoned() {
		return
	}
	b.noteArrive(id)
	gen := b.gate.Seq()
	b.rec.Arrive(id, gen)
	st.myGen[id].V = gen

	c := st.tree.FirstCounter(id)
	for c != topology.NoCounter {
		tc := &st.counters[c]
		tc.mu.Lock()
		tc.count++
		last := tc.count == tc.fanIn
		if last {
			tc.count = 0
		}
		tc.mu.Unlock()
		if !last {
			return
		}
		c = st.tree.Counters[c].Parent
	}
	b.release(st)
}

// release runs on the participant that completed the root: a quiescent
// point for the counters. It folds the measured spread into the σ
// estimate (and the per-participant lags into the placement policy),
// asks the controller whether a new epoch is due, applies the plan if
// so — otherwise rebuilds in place when the policy's predicted-straggler
// order changed on the replan cadence — emits the episode's telemetry,
// and opens the gate.
func (b *ReconfigurableBarrier) release(st *rcState) {
	seq := b.gate.Seq()
	m, _ := b.rec.Measure(seq)
	b.ctrl.Observe(m.Spread)
	if b.place != nil {
		if b.lagBuf = b.rec.LagsInto(seq, b.lagBuf); len(b.lagBuf) > 0 {
			b.place.Observe(b.lagBuf)
		}
	}
	if plan, ok := b.ctrl.Evaluate(); ok {
		// The new epoch's first episode runs at the generation the Open
		// below advances to.
		b.apply(st, plan, seq+1)
	} else if order := b.duePlacementOrder(st); order != nil {
		b.applyPlacement(st, order, seq+1)
	}
	cur := b.state.Load()
	b.rec.Emit(m, rt.Extra{Adaptations: b.ctrl.Rebuilds(), Degree: cur.degree, Epoch: cur.epoch})
	b.gate.Open()
}

// duePlacementOrder decides, on the replan cadence, whether the policy
// wants the running epoch's slots re-ordered: it returns the new order,
// or nil when none is due (off cadence, no policy opinion, opinion for a
// stale membership, or unchanged from the epoch's current placement).
// Order() is consumed at most once per release — hysteresis policies
// record what they emit.
func (b *ReconfigurableBarrier) duePlacementOrder(st *rcState) []int {
	if b.place == nil {
		return nil
	}
	n := b.ctrl.Episodes()
	if n == 0 || n%b.ctrl.Config().ReplanEvery != 0 {
		return nil
	}
	order := policyOrder(b.place, st.p)
	if order == nil || sameOrder(order, st.order, st.p) {
		return nil
	}
	return order
}

// apply installs plan as the running epoch. It must run at a quiescent
// point: the release path, or a caller-synchronized Resize.
func (b *ReconfigurableBarrier) apply(prev *rcState, plan reconfig.Plan, epochGen uint64) {
	order := policyOrder(b.place, plan.P)
	if order == nil && len(prev.order) == plan.P {
		// The policy has no (new) opinion for this membership; keep the
		// placement the previous epoch ran with rather than snapping back
		// to the identity order.
		order = prev.order
	}
	next := newRCState(prev, plan, epochGen, order, b.place != nil)
	if plan.P != prev.p {
		b.rec.Resize(plan.P)
		b.resizeArrivals(plan.P)
	}
	// The reducer's deposit cells and node accumulators are rebuilt for
	// the new tree; its published result buffers survive, so awaiters of
	// the pre-rebuild episode still copy their in-flight result.
	b.red.Resize(plan.P, len(next.counters))
	b.state.Store(next)
	b.ctrl.Commit(plan)
}

// applyPlacement rebuilds the running epoch's tree with a new placement
// order — same P, degree and epoch number, slots re-labelled so order[k]
// sits on the k-th shallowest slot. Like apply it runs only at the
// quiescent release point; ReconfigStats.Placements counts these
// rebuilds.
func (b *ReconfigurableBarrier) applyPlacement(prev *rcState, order []int, epochGen uint64) {
	plan := b.ctrl.Current()
	next := newRCState(prev, plan, epochGen, order, b.place != nil)
	b.red.Resize(plan.P, len(next.counters))
	b.state.Store(next)
	b.ctrl.NotePlacement()
}

// AllReduce contributes in, completes one episode, and copies the
// reduction of the epoch's contributions into out. A participant the
// current epoch has shrunk away drains without contributing and without a
// result — exactly as Wait drains it — so an elastic worker follows the
// same protocol as ever: check Participants after each collective call
// and stop once its id falls outside the membership (its final episode's
// result is then not delivered locally; netbarrier sessions deliver it in
// the Release frame instead). Epoch boundaries preserve in-flight
// contributions: the rebuild happens at the quiescent release point,
// after the episode's result is published into buffers that survive it.
func (b *ReconfigurableBarrier) AllReduce(id int, in, out []byte) error {
	if b.red == nil {
		return ErrNoCollective
	}
	b.arriveColl(id, in, reduceMode(b.red.Op()), 0)
	return b.AwaitResult(id, out)
}

// Reduce is AllReduce with the result delivered only to root. root must
// stay inside the membership for the episode.
func (b *ReconfigurableBarrier) Reduce(id, root int, in, out []byte) error {
	if b.red == nil {
		return ErrNoCollective
	}
	checkID(root, b.state.Load().p)
	b.arriveColl(id, in, reduceMode(b.red.Op()), 0)
	if id != root {
		out = nil
	}
	return b.AwaitResult(id, out)
}

// Broadcast completes one episode delivering root's buf into every other
// participant's buf.
func (b *ReconfigurableBarrier) Broadcast(id, root int, buf []byte) error {
	if b.red == nil {
		return ErrNoCollective
	}
	checkID(root, b.state.Load().p)
	b.arriveColl(id, buf, collBcast, root)
	if id == root {
		buf = nil
	}
	return b.AwaitResult(id, buf)
}

// ArriveReduce is the fuzzy half of AllReduce: contribute and ascend
// without waiting; collect with AwaitResult.
func (b *ReconfigurableBarrier) ArriveReduce(id int, in []byte) error {
	if b.red == nil {
		return ErrNoCollective
	}
	b.arriveColl(id, in, reduceMode(b.red.Op()), 0)
	return nil
}

// AwaitResult blocks until ArriveReduce's episode completes and copies
// its reduction into out (nil discards it). The copy is skipped — out is
// left untouched — when this participant is outside the membership after
// the release (it was draining, or was shrunk away at the episode's
// boundary): such a participant is no longer ordered against future
// episodes, so reading the shared result buffer would race with a later
// publish. Call AwaitResult exactly once per ArriveReduce, before the
// participant's next episode.
func (b *ReconfigurableBarrier) AwaitResult(id int, out []byte) error {
	if b.red == nil {
		return ErrNoCollective
	}
	st := b.state.Load()
	checkID(id, len(st.myGen))
	b.gate.Await(st.myGen[id].V)
	if err := b.Err(); err != nil {
		return err
	}
	// Re-load: the episode's release may have committed a new epoch, and
	// membership is judged against the post-release state.
	cur := b.state.Load()
	if out != nil && id < cur.p {
		b.red.CopyResult(cur.myGen[id].V, out)
	}
	return nil
}

// Reduced returns the published reduction of the given episode — see
// TreeBarrier.Reduced.
func (b *ReconfigurableBarrier) Reduced(episode uint64) []byte {
	if b.red == nil {
		return nil
	}
	return b.red.Result(episode)
}

// arriveColl is Arrive carrying a payload: Arrive's drain/hold protocol,
// plus the mode-selected payload step (greedy fold, deposit cell, or
// broadcast root deposit), with the episode's result published at the
// root completion before the release.
func (b *ReconfigurableBarrier) arriveColl(id int, in []byte, mode uint8, root int) {
	st := b.state.Load()
	checkID(id, len(st.myGen))
	checkContribution(b.red, in)
	if id >= st.p {
		return // shrunk away; drain without contributing
	}
	for b.gate.Seq() < st.epochGen {
		if b.poisoned() {
			return
		}
		runtime.Gosched()
	}
	if b.poisoned() {
		return
	}
	b.noteArrive(id)
	gen := b.gate.Seq()
	b.rec.Arrive(id, gen)
	st.myGen[id].V = gen
	switch mode {
	case collCells:
		b.red.Deposit(gen, id, in)
	case collBcast:
		if id == root {
			b.red.Deposit(gen, id, in)
		}
	}
	var carry []byte
	if mode == collGreedy {
		carry = in
	}

	c := st.tree.FirstCounter(id)
	for c != topology.NoCounter {
		tc := &st.counters[c]
		tc.mu.Lock()
		if mode == collGreedy {
			b.red.FoldNode(c, carry)
		}
		tc.count++
		last := tc.count == tc.fanIn
		if last {
			tc.count = 0
			if mode == collGreedy {
				carry = b.red.TakeNode(c)
			}
		}
		tc.mu.Unlock()
		if !last {
			return
		}
		c = st.tree.Counters[c].Parent
	}
	// Root completed: publish the result while the cells and accumulators
	// are quiescent — before release applies any epoch rebuild, so the
	// fold runs over this episode's membership and tree.
	switch mode {
	case collGreedy:
		b.red.PublishCarry(gen, carry)
	case collCells:
		b.red.FinishCells(gen, st.p)
	case collBcast:
		b.red.PublishCell(gen, root)
	}
	b.release(st)
}

// Await blocks participant id until the episode it arrived in completes
// or the barrier is poisoned.
func (b *ReconfigurableBarrier) Await(id int) {
	st := b.state.Load()
	checkID(id, len(st.myGen))
	b.gate.Await(st.myGen[id].V)
}

// WaitCtx is Wait with cancellation: if ctx ends while the wait is in
// flight the barrier is poisoned, and the poison error is returned.
func (b *ReconfigurableBarrier) WaitCtx(ctx context.Context, id int) error {
	checkID(id, len(b.state.Load().myGen))
	return b.waitCtx(ctx, func() { b.Wait(id) })
}

// AwaitCtx is Await with cancellation, with WaitCtx's poison semantics.
func (b *ReconfigurableBarrier) AwaitCtx(ctx context.Context, id int) error {
	checkID(id, len(b.state.Load().myGen))
	return b.waitCtx(ctx, func() { b.Await(id) })
}

var _ PhasedBarrier = (*ReconfigurableBarrier)(nil)
var _ ContextBarrier = (*ReconfigurableBarrier)(nil)
var _ Collective = (*ReconfigurableBarrier)(nil)
var _ Resizable = (*ReconfigurableBarrier)(nil)
var _ SigmaSource = (*ReconfigurableBarrier)(nil)
