package softbarrier

import (
	"sync"

	rt "softbarrier/internal/runtime"
)

// EpisodeStats is one completed barrier episode's telemetry: episode
// index, first/last arrival timestamps (nanoseconds on the barrier's
// monotonic clock), the measured arrival spread σ (seconds), the
// synchronization delay (release − last arrival, seconds), and the
// barrier's cumulative swap/adaptation counters. See the field
// documentation in internal/runtime.
type EpisodeStats = rt.EpisodeStats

// Observer receives one EpisodeStats per completed episode, invoked by the
// participant that released the episode. Calls are totally ordered by the
// barrier's own happens-before edges (episode k is always reported before
// episode k+1), so an implementation only needs synchronization against
// its own concurrent readers. Install one with WithObserver.
type Observer = rt.Observer

// Aggregate is an Observer that folds every episode into running
// aggregates — episode count, an EWMA estimate of the arrival spread σ,
// and sync-delay statistics. It is cheap enough to leave attached in
// production, and it implements SigmaSource, so its live σ estimate can be
// fed straight back into the planner (RecommendMeasured) — the
// measurement→model→barrier loop the paper's conclusion proposes.
type Aggregate struct {
	est rt.SigmaEstimator

	mu          sync.Mutex
	episodes    uint64
	p           int
	spreadSum   float64
	syncSum     float64
	syncMax     float64
	swaps       uint64
	adaptations uint64
	degree      int
}

// NewAggregate returns an empty aggregate using the default EWMA weight.
func NewAggregate() *Aggregate {
	a := &Aggregate{}
	a.est.Init(0)
	return a
}

// Episode implements Observer.
func (a *Aggregate) Episode(st EpisodeStats) {
	a.est.Observe(st.Spread)
	a.mu.Lock()
	a.episodes++
	a.p = st.P
	a.spreadSum += st.Spread
	a.syncSum += st.SyncDelay
	if st.SyncDelay > a.syncMax {
		a.syncMax = st.SyncDelay
	}
	a.swaps = st.Swaps
	a.adaptations = st.Adaptations
	a.degree = st.Degree
	a.mu.Unlock()
}

// MeasuredSigma implements SigmaSource: the EWMA σ estimate (seconds) and
// the number of episodes it is based on.
func (a *Aggregate) MeasuredSigma() (sigma float64, episodes uint64) {
	return a.est.Sigma(), a.est.Episodes()
}

// AggregateSummary is a consistent snapshot of an Aggregate.
type AggregateSummary struct {
	// Episodes is how many episodes have been observed.
	Episodes uint64
	// P is the participant count of the last observed episode.
	P int
	// Sigma is the EWMA arrival-spread estimate, seconds.
	Sigma float64
	// MeanSpread is the arithmetic mean of per-episode spreads, seconds.
	MeanSpread float64
	// MeanSyncDelay and MaxSyncDelay summarize per-episode sync delays,
	// seconds.
	MeanSyncDelay float64
	// MaxSyncDelay is the largest observed sync delay, seconds.
	MaxSyncDelay float64
	// Swaps and Adaptations are the barrier's cumulative counters as of
	// the last episode.
	Swaps uint64
	// Adaptations is the cumulative tree-rebuild count as of the last
	// episode.
	Adaptations uint64
	// Degree is the tree degree reported by the last episode (0 for
	// degree-free barriers).
	Degree int
}

// Summary returns a snapshot of the aggregates.
func (a *Aggregate) Summary() AggregateSummary {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := AggregateSummary{
		Episodes:     a.episodes,
		P:            a.p,
		Sigma:        a.est.Sigma(),
		MaxSyncDelay: a.syncMax,
		Swaps:        a.swaps,
		Adaptations:  a.adaptations,
		Degree:       a.degree,
	}
	if a.episodes > 0 {
		s.MeanSpread = a.spreadSum / float64(a.episodes)
		s.MeanSyncDelay = a.syncSum / float64(a.episodes)
	}
	return s
}
