package softbarrier

// The benchmark harness regenerates every table and figure of the paper:
// one Benchmark per artifact, each running the corresponding experiment at
// reduced replication per iteration (run cmd/experiments for full-fidelity
// tables) and reporting the headline quantity via b.ReportMetric. A final
// set of micro-benchmarks measures the runtime barrier implementations
// themselves.

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"

	"softbarrier/internal/experiments"
)

// benchOpts keeps per-iteration cost manageable.
func benchOpts() experiments.Options {
	return experiments.Options{Episodes: 10, Warmup: 4, Seed: 1995}
}

// runExperiment executes one experiment runner b.N times.
func runExperiment(b *testing.B, id string) *experiments.Table {
	runner, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab = runner(benchOpts())
	}
	return tab
}

// cell parses a leading float from a table cell like "16 (1.47)".
func cell(b *testing.B, s string) float64 {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("unparseable cell %q", s)
	}
	return v
}

func BenchmarkEq1(b *testing.B) {
	tab := runExperiment(b, "EQ1")
	// Headline: delay of degree 4 at σ=0 for 4K processors, in ms.
	b.ReportMetric(cell(b, tab.Rows[1][2]), "ms-delay-d4")
}

func BenchmarkFig2(b *testing.B) {
	tab := runExperiment(b, "FIG2")
	b.ReportMetric(cell(b, tab.Rows[1][4]), "ms-total-d4")
	b.ReportMetric(cell(b, tab.Rows[5][4]), "ms-total-d64")
}

func BenchmarkFig3(b *testing.B) {
	tab := runExperiment(b, "FIG3")
	// Headline: optimal degree for 4K processors at the largest σ.
	last := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(cell(b, last[len(last)-1]), "opt-degree-4K-max-sigma")
}

func BenchmarkFig4(b *testing.B) {
	tab := runExperiment(b, "FIG4")
	// Headline: the accuracy note carries the mean est/opt delay ratio.
	var ratio float64
	if _, err := fmt.Sscanf(tab.Notes[0], "mean simulated delay of estimated degree / optimal degree = %f", &ratio); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(ratio, "est/opt-delay-ratio")
}

func BenchmarkFig5(b *testing.B) {
	tab := runExperiment(b, "FIG5")
	b.ReportMetric(cell(b, tab.Rows[0][1]), "rank-corr-slack0")
	b.ReportMetric(cell(b, tab.Rows[len(tab.Rows)-1][1]), "rank-corr-slack16ms")
}

func BenchmarkFig8(b *testing.B) {
	tab := runExperiment(b, "FIG8")
	// Rows: depth/speedup/comm for degree 4, then degree 16.
	lastCol := len(tab.Header) - 1
	b.ReportMetric(cell(b, tab.Rows[1][lastCol]), "speedup-d4-slack16ms")
	b.ReportMetric(cell(b, tab.Rows[0][lastCol]), "depth-d4-slack16ms")
}

func BenchmarkFig9(b *testing.B) {
	tab := runExperiment(b, "FIG9")
	last := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(cell(b, last[1]), "ms-d4-4K-sigma0.5ms")
	b.ReportMetric(cell(b, last[2]), "ms-opt-4K-sigma0.5ms")
}

func BenchmarkFig10(b *testing.B) {
	tab := runExperiment(b, "FIG10")
	last := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(cell(b, last[3]), "speedup-4K")
}

func BenchmarkFig11(b *testing.B) {
	tab := runExperiment(b, "FIG11")
	last := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(cell(b, last[3]), "speedup-4K-d16")
}

func BenchmarkFig12(b *testing.B) {
	tab := runExperiment(b, "FIG12")
	last := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(cell(b, last[3]), "opt-degree-largest-dy")
	b.ReportMetric(cell(b, last[4]), "speedup-largest-dy")
}

func BenchmarkFig13(b *testing.B) {
	tab := runExperiment(b, "FIG13")
	lastCol := len(tab.Header) - 1
	b.ReportMetric(cell(b, tab.Rows[1][lastCol]), "speedup-d2-max-slack")
}

func BenchmarkExt1(b *testing.B) {
	tab := runExperiment(b, "EXT1")
	last := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(cell(b, last[2]), "ms-tree-opt-max-sigma")
	b.ReportMetric(cell(b, last[3]), "ms-dissemination-max-sigma")
}

func BenchmarkExt2(b *testing.B) {
	tab := runExperiment(b, "EXT2")
	b.ReportMetric(cell(b, tab.Rows[0][1]), "us-idle-min-slack")
	b.ReportMetric(cell(b, tab.Rows[len(tab.Rows)-1][1]), "us-idle-max-slack")
}

func BenchmarkExt3(b *testing.B) {
	tab := runExperiment(b, "EXT3")
	b.ReportMetric(cell(b, tab.Rows[1][5]), "adaptive-degree-after-shift")
}

func BenchmarkExt4(b *testing.B) {
	tab := runExperiment(b, "EXT4")
	last := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(cell(b, last[1]), "opt-degree-normal-25tc")
	b.ReportMetric(cell(b, last[3]), "opt-degree-exponential-25tc")
}

func BenchmarkExt5(b *testing.B) {
	tab := runExperiment(b, "EXT5")
	b.ReportMetric(cell(b, tab.Rows[0][1]), "opt-degree-ideal-lock-sigma0")
	b.ReportMetric(cell(b, tab.Rows[len(tab.Rows)-1][1]), "opt-degree-degraded-lock-sigma0")
}

func BenchmarkExt6(b *testing.B) {
	tab := runExperiment(b, "EXT6")
	b.ReportMetric(cell(b, tab.Rows[0][3]), "speedup-1088-d4")
}

func BenchmarkExt7(b *testing.B) {
	tab := runExperiment(b, "EXT7")
	last := tab.Rows[len(tab.Rows)-1]
	b.ReportMetric(cell(b, last[1]), "us-queue-56")
	b.ReportMetric(cell(b, last[2]), "us-tas-56")
}

func BenchmarkExt8(b *testing.B) {
	tab := runExperiment(b, "EXT8")
	b.ReportMetric(cell(b, tab.Rows[0][4]), "flat-max-link-util")
	b.ReportMetric(cell(b, tab.Rows[2][4]), "tree-d4-max-link-util")
}

// benchBarrier drives p goroutines through b.N episodes of bar.
func benchBarrier(b *testing.B, bar Barrier, p int) {
	b.ReportAllocs()
	var wg sync.WaitGroup
	wg.Add(p)
	b.ResetTimer()
	for id := 0; id < p; id++ {
		go func(id int) {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				bar.Wait(id)
			}
		}(id)
	}
	wg.Wait()
}

// BenchmarkWaiterPolicies compares the waiter's wait policies on the two
// barriers where the policy choice matters most — the central barrier
// (every participant parks on one gate) and the combining tree (gate
// release after a lock ascent) — at P well below, near, and above
// GOMAXPROCS. "spin" busy-polls long enough that episodes at these scales
// never park; "park" disables spinning and yields straight to the channel
// park; "default" is the shipped spin→yield→park ramp.
func BenchmarkWaiterPolicies(b *testing.B) {
	policies := []struct {
		name   string
		policy WaitPolicy
	}{
		{"default", DefaultWaitPolicy()},
		{"spin", WaitPolicy{Spin: 1 << 16, Yield: 1 << 10}},
		{"park", WaitPolicy{Spin: 0, Yield: 0}},
	}
	for _, p := range []int{4, 16, 64} {
		for _, pol := range policies {
			p, pol := p, pol
			b.Run(fmt.Sprintf("central/%s/p=%d", pol.name, p), func(b *testing.B) {
				benchBarrier(b, NewCentral(p, WithWaitPolicy(pol.policy)), p)
			})
			b.Run(fmt.Sprintf("tree-d4/%s/p=%d", pol.name, p), func(b *testing.B) {
				benchBarrier(b, NewCombiningTree(p, 4, WithWaitPolicy(pol.policy)), p)
			})
		}
	}
}

// BenchmarkRuntimeBarriers measures one full episode of each runtime
// barrier implementation at several participant counts. Absolute values
// reflect the Go scheduler on this host, not the paper's KSR1.
func BenchmarkRuntimeBarriers(b *testing.B) {
	for _, p := range []int{2, 8, 32} {
		p := p
		b.Run(fmt.Sprintf("central/p=%d", p), func(b *testing.B) { benchBarrier(b, NewCentral(p), p) })
		b.Run(fmt.Sprintf("tree-d4/p=%d", p), func(b *testing.B) { benchBarrier(b, NewCombiningTree(p, 4), p) })
		b.Run(fmt.Sprintf("mcs-d4/p=%d", p), func(b *testing.B) { benchBarrier(b, NewMCSTree(p, 4), p) })
		b.Run(fmt.Sprintf("dynamic-d4/p=%d", p), func(b *testing.B) { benchBarrier(b, NewDynamic(p, 4), p) })
		b.Run(fmt.Sprintf("adaptive/p=%d", p), func(b *testing.B) { benchBarrier(b, NewAdaptive(p, 64, 0), p) })
		b.Run(fmt.Sprintf("tree-d4-wakeup/p=%d", p), func(b *testing.B) {
			benchBarrier(b, NewCombiningTree(p, 4, WithTreeWakeup()), p)
		})
		b.Run(fmt.Sprintf("dissemination/p=%d", p), func(b *testing.B) { benchBarrier(b, NewDissemination(p), p) })
		b.Run(fmt.Sprintf("tournament/p=%d", p), func(b *testing.B) { benchBarrier(b, NewTournament(p), p) })
	}
}
