package softbarrier

import (
	"fmt"

	"softbarrier/internal/loadmodel"
)

// Profile describes a workload's synchronization-relevant properties, in
// the terms of the paper's evaluation: how many participants, how spread
// their arrivals are, what a counter update costs, how much fuzzy slack
// the program exposes, and whether the imbalance is systemic (the same
// participants are consistently late) rather than freshly random each
// iteration.
type Profile struct {
	// P is the number of participants.
	P int
	// Sigma is the standard deviation of arrival times, seconds.
	Sigma float64
	// Tc is the counter update cost, seconds; 0 selects the paper's 20µs.
	Tc float64
	// Slack is the fuzzy-barrier slack the program can expose, seconds
	// (0 for a plain barrier).
	Slack float64
	// Systemic reports whether the same participants tend to be late
	// every iteration.
	Systemic bool
	// Rings optionally constrains placement to ring-local moves (one
	// entry per ring); nil means no ring structure.
	Rings []int
}

// Recommendation is the planner's output: a barrier configuration with the
// reasoning that produced it.
type Recommendation struct {
	// Degree is the combining-tree degree from the analytic model.
	Degree int
	// Dynamic selects the dynamic-placement barrier.
	Dynamic bool
	// Fuzzy indicates the program should drive the barrier through
	// Arrive/Await to exploit its slack.
	Fuzzy bool
	// Rationale explains each choice for logs and humans.
	Rationale string
}

// RecommendConfig is the planner's decision procedure without the prose:
// the analytic model (§3–4) picks the tree degree from (p, σ, t_c), and
// dynamic placement (§5) is enabled exactly when the arrival order is
// predictable — systemic imbalance, or slack comfortably exceeding the
// per-iteration spread (the Fig. 5/8/13 condition; below that threshold
// dynamic placement measured slower than static). It allocates nothing,
// which is what per-episode re-planning loops (internal/reconfig) need:
// with the default every-episode cadence the recommender sits on the
// steady-state release path. It panics for P < 1 or negative quantities.
func RecommendConfig(pr Profile) (degree int, dynamic bool) {
	if pr.P < 1 {
		panic("softbarrier: profile needs at least one participant")
	}
	if pr.Sigma < 0 || pr.Tc < 0 || pr.Slack < 0 {
		panic("softbarrier: negative profile quantity")
	}
	tc := pr.Tc
	if tc == 0 {
		tc = 20e-6
	}
	degree = clampDegree(OptimalDegree(pr.P, pr.Sigma, tc), pr.P)
	// The §7 measurements put the static/dynamic crossover near the point
	// where the slack covers a few arrival spreads; require 2σ.
	predictable := pr.Systemic || (pr.Slack > 0 && pr.Slack >= 2*pr.Sigma)
	return degree, predictable && pr.P > 1
}

// Recommend is RecommendConfig with the reasoning attached: the same
// decisions, explained for logs and humans.
func Recommend(pr Profile) Recommendation {
	tc := pr.Tc
	if tc == 0 {
		tc = 20e-6
	}
	degree, dynamic := RecommendConfig(pr)
	rec := Recommendation{Degree: degree, Dynamic: dynamic}
	rationale := fmt.Sprintf("degree %d from the analytic model (p=%d, σ=%.3gs, t_c=%.3gs)",
		rec.Degree, pr.P, pr.Sigma, tc)
	if rec.Dynamic {
		if pr.Systemic {
			rationale += "; dynamic placement on (systemic imbalance makes the late arrivals predictable)"
		} else {
			rationale += fmt.Sprintf("; dynamic placement on (slack %.3gs ≥ 2σ keeps slow participants slow across iterations)", pr.Slack)
		}
	} else {
		rationale += "; dynamic placement off (arrival order not predictable enough to beat static placement)"
	}
	if pr.Slack > 0 {
		rec.Fuzzy = true
		rationale += "; drive the barrier via Arrive/Await to spend the slack"
	}
	rec.Rationale = rationale
	return rec
}

// clampDegree bounds a recommended tree degree to [2, p]: a combining
// tree needs fan-in ≥ 2 to combine anything, and a degree above p buys
// nothing over the flat central counter the tree degenerates to at
// degree p. For p < 2 the interval is empty and the floor wins — the
// degenerate one-participant tree accepts any degree. OptimalDegree
// applies the same clamp; repeating it here keeps the planner's contract
// independent of the model's, so a future model that returns raw optima
// cannot leak an unbuildable degree into a Recommendation.
func clampDegree(d, p int) int {
	if p >= 2 && d > p {
		d = p
	}
	if d < 2 {
		d = 2
	}
	return d
}

// SigmaSource supplies a measured arrival-spread estimate. AdaptiveBarrier
// and Aggregate implement it; any Observer that folds EpisodeStats.Spread
// into its own estimate can too. The episode count lets the planner tell a
// live estimate from an unseeded one.
type SigmaSource interface {
	// MeasuredSigma returns the σ estimate in seconds and the number of
	// episodes it is based on. episodes == 0 means "no data yet".
	MeasuredSigma() (sigma float64, episodes uint64)
}

// Measured returns a copy of the profile with Sigma replaced by src's live
// estimate, when src has observed at least one episode. This closes the
// paper's loop: run with WithObserver (or an AdaptiveBarrier), feed the
// measured spread back, and re-plan with real numbers instead of guesses.
func (pr Profile) Measured(src SigmaSource) Profile {
	if src != nil {
		if sigma, episodes := src.MeasuredSigma(); episodes > 0 {
			pr.Sigma = sigma
		}
	}
	return pr
}

// RecommendMeasured is Recommend over the measured profile: the assumed
// Sigma is overridden by src's estimate when one exists.
func RecommendMeasured(pr Profile, src SigmaSource) Recommendation {
	return Recommend(pr.Measured(src))
}

// Build constructs the recommended barrier for the profile.
func (r Recommendation) Build(pr Profile) Barrier {
	if r.Dynamic {
		if len(pr.Rings) > 0 {
			return NewDynamicRing(pr.Rings, r.Degree)
		}
		return NewDynamic(pr.P, r.Degree)
	}
	return NewCombiningTree(pr.P, r.Degree)
}

// Plan is Recommend followed by Build, for callers that do not need to
// inspect the recommendation.
func Plan(pr Profile) (Barrier, Recommendation) {
	rec := Recommend(pr)
	return rec.Build(pr), rec
}

// ReduceOrder converts per-participant lag estimates (seconds behind the
// episode's earliest arrival, e.g. an EWMA over observed episodes) into a
// placement order for a combining tree: participant ids sorted laggiest
// first. Feeding the order to topology.Tree.PlaceByDepth puts the
// consistently late participants on the shallow slots adjacent to the
// root — when a straggler finally arrives it climbs one or two counters
// instead of a full leaf-to-root path, so its contribution folds last and
// the release fires sooner — while the early arrivals sit at the leaves,
// pre-reducing the bulk of the payload during the spread the stragglers
// create. This is the static, measurement-driven counterpart of the §5
// dynamic-placement barrier: same placement rule, applied offline from a
// lag profile instead of online per episode. The sort is stable, so equal
// lags keep their id order and the policy degenerates to the identity
// order for uniform lag.
//
// ReduceOrder is loadmodel.Rank: the live placement policies (see
// WithPlacementPolicy) rank the same way.
func ReduceOrder(lags []float64) []int {
	return loadmodel.Rank(lags)
}
