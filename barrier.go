package softbarrier

import "context"

// Barrier synchronizes a fixed set of participants, numbered 0..P−1. Wait
// blocks participant id until every participant has called Wait for the
// current episode, then all calls return and the barrier is ready for the
// next episode. Each participant must call Wait exactly once per episode,
// and an id must not be used by two goroutines concurrently.
type Barrier interface {
	// Wait blocks until all participants of the episode have arrived.
	Wait(id int)
	// Participants returns the number of participants P.
	Participants() int
}

// PhasedBarrier is a barrier whose episode is split into an arrival phase
// and an await phase: Gupta's fuzzy barrier. Arrive announces that
// participant id has reached the barrier without blocking; Await blocks
// until the episode completes. Work placed between the two calls executes
// in the barrier's slack and hides load imbalance.
//
// Wait(id) is always equivalent to Arrive(id) followed by Await(id).
// Arrive/Await pairs must alternate per participant, and must not be mixed
// with Wait within the same episode for the same participant.
type PhasedBarrier interface {
	Barrier
	// Arrive announces arrival of participant id without blocking for the
	// episode.
	Arrive(id int)
	// Await blocks participant id until the episode it arrived in
	// completes.
	Await(id int)
}

// Abortable is the failure surface every barrier in this package
// implements. A barrier assumes every participant always arrives; when
// one cannot — it stalled, panicked, was cancelled — Poison is the escape
// hatch that turns a certain deadlock into an error every participant
// observes.
type Abortable interface {
	// Poison fails the barrier: every parked or spinning waiter wakes and
	// all future waits return immediately. The first error wins; nil
	// selects ErrPoisoned.
	Poison(err error)
	// Err returns the poison error, or nil while the barrier is healthy.
	Err() error
}

// ContextBarrier is a barrier whose waits can be abandoned through a
// context. WaitCtx is Wait except that cancellation or expiry of ctx
// poisons the barrier (the cancelled participant will never complete the
// episode, so every other participant must be released too) and the
// poison error — this ctx's or whichever came first — is returned.
// Every barrier in this package implements it.
type ContextBarrier interface {
	Barrier
	Abortable
	WaitCtx(ctx context.Context, id int) error
}

// checkID panics when a participant id is out of range, which would
// silently corrupt counter state otherwise.
func checkID(id, p int) {
	if id < 0 || id >= p {
		panic("softbarrier: participant id out of range")
	}
}
