// Package softbarrier is a library of software synchronization barriers
// for shared-memory parallel programs, reproducing the design space of
// Eichenberger & Abraham, "Impact of Load Imbalance on the Design of
// Software Barriers" (ICPP 1995).
//
// # Barriers
//
//   - CentralBarrier: a single sense-reversing counter — the simplest
//     barrier, optimal only when arrivals are widely spread.
//   - TreeBarrier: a combining tree of counters, either classic
//     (processors at the leaves; NewCombiningTree) or MCS-style (one
//     processor attached to every counter; NewMCSTree). The tree degree is
//     the central tuning knob: degree ≈ 4 is best under simultaneous
//     arrival, much wider trees are best under load imbalance.
//   - DynamicBarrier: the paper's contribution — an MCS-style tree whose
//     placement adapts at run time: a processor that keeps arriving last
//     migrates toward the root (victor/victim swaps), cutting its
//     synchronization path from O(log p) to O(1) when arrival order is
//     predictable (systemic imbalance, or fuzzy barriers with slack).
//   - ReconfigurableBarrier: a tree barrier built on an epoch-based
//     reconfiguration core (internal/reconfig): it measures the arrival
//     spread σ, re-derives its degree from the paper's analytic model —
//     the run-time adaptation the paper's conclusion proposes — and is
//     elastic: Grow/Shrink/Resize change the participant count at episode
//     boundaries while waiters drain safely. AdaptiveBarrier is an alias
//     for it. Every rebuild happens at a quiescent point via one atomic
//     pointer swap, with hysteresis damping σ noise; ReconfigStats
//     reports the epoch, rebuild and deferral history.
//
// The library also ships the classic baselines the paper compares
// against: DisseminationBarrier (the Hensgen/Finkel/Manber butterfly) and
// TournamentBarrier.
//
// All barriers implement Barrier; the tree-based ones also implement
// PhasedBarrier, whose split Arrive/Await pair is a fuzzy barrier (Gupta):
// code placed between the two phases overlaps with other processors'
// arrival, converting load imbalance into slack instead of idle time.
//
// # Waiting and telemetry
//
// Every barrier builds on one waiter core (internal/runtime) with a
// bounded spin → yield → park policy, tunable per barrier via
// WithWaitPolicy. WithObserver streams per-episode EpisodeStats —
// arrival spread, synchronization delay, swap and adaptation counts — to
// any Observer; with no observer installed the telemetry path costs
// nothing. The Aggregate observer folds episodes into a measured σ that
// RecommendMeasured feeds back into the planner.
//
// # Failure semantics
//
// Every barrier is Abortable: Poison(err) wakes all current and future
// waiters immediately and Err reports the cause. WaitCtx/AwaitCtx
// (ContextBarrier) tie a wait to a context — cancellation poisons the
// episode, since the cancelled participant will never arrive. The
// WithWatchdog option poisons a stalled episode with a StallError naming
// the un-arrived participants, and Group poisons the barrier when a
// worker panics or errors so the pool drains instead of deadlocking
// (healing the barrier afterwards, so the Group stays reusable). Reset,
// at a quiescent point, returns a poisoned barrier to service.
//
// # Collectives
//
// WithCollective(op) widens the barrier's waves to carry payloads: the
// arrival wave reduces every participant's fixed-width contribution with
// the associative Op and the release wave broadcasts the result —
// AllReduce, Reduce and Broadcast (the Collective interface) as barrier
// episodes, freely mixed with plain Wait. Commutative ops fold greedily
// in arrival order, pre-reducing early arrivals while stragglers still
// work; non-commutative ops (OpSumFloat64 — float addition does not
// associate) fold deterministically in ascending id order, so every
// participant receives the bit-identical sequential fold and can branch
// on it unanimously. ReduceOrder plus topology.PlaceByDepth place the
// laggiest participants nearest the root, shortening the straggler's
// fold path. The same reduction runs server-side in cmd/barrierd
// (-collective, Client.AllReduce); OpByName names the built-in ops on
// both sides of the wire.
//
// # Predictive straggler placement
//
// A PlacementPolicy (PlacementByName: reactive, ewma, trend, ewma-hys)
// watches each episode's arrival lags and predicts who will be late
// next; WithPlacementPolicy hands one to the ReconfigurableBarrier,
// which rebuilds its tree at the quiescent release point with predicted
// stragglers in the shallowest slots — an MCS-shaped epoch, where the
// root's local slot is the unique depth-1 position — so a straggler's
// late arrival climbs one counter instead of a leaf-to-root path
// (ReconfigStats.Placements counts these in-place rebuilds, Depths
// exposes the current placement). The ewma and trend policies average
// or extrapolate lag history so one noisy episode does not reorder the
// tree, and ewma-hys adds hysteresis against σ-level rank churn.
// WithPlacement applies a fixed laggiest-first order to the static
// trees; the netbarrier server (cmd/barrierd -placement) runs the same
// policies per session against remote arrival lags. The load models the
// policies are designed against — systemic skew, drifting, heavy-tail
// and bursty imbalance — live in internal/loadmodel.
//
// # Choosing a degree
//
// OptimalDegree applies the paper's analytic model (§3–4): give it the
// participant count, the standard deviation of arrival times, and the cost
// of a counter update, and it returns the delay-minimizing tree degree.
//
// # Networked barriers
//
// The same machinery runs across machine boundaries: cmd/barrierd (on
// internal/netbarrier) is a TCP coordination service whose sessions run a
// combining tree against remote arrivals, re-planning the tree degree
// from the measured arrival spread σ at episode boundaries — and, in
// elastic mode, admitting late joiners and absorbing departures at those
// same boundaries — and broadcasting poison causes in the wire form
// produced by
// EncodePoisonCause, so errors.As and errors.Is keep working on the far
// side of the network.
//
// At fleet scale the hierarchy gains a second level: leaf barrierds
// (internal/shardbarrier, barrierd -role leaf) each combine their local
// clients and forward one aggregated arrival per episode to a root
// barrierd, which combines the shards and fans a single fleet-wide
// release — with its participant-weighted fleet σ and, for collectives,
// the deterministically folded global result — back down.
//
// # Fidelity note
//
// These barriers are real concurrent data structures, but Go's scheduler
// multiplexes goroutines over OS threads, so wall-clock measurements of
// them do not reproduce the paper's per-processor placement behaviour.
// The quantitative reproduction of the paper lives in the internal
// simulator packages and is driven by the cmd/experiments binary; this
// package is the production-facing library.
package softbarrier
