package softbarrier

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	rt "softbarrier/internal/runtime"
)

// ErrPoisoned is the error a poisoned barrier reports when no more
// specific cause was given to Poison.
var ErrPoisoned = errors.New("softbarrier: barrier poisoned")

// StallError is the diagnostic a watchdog-poisoned barrier reports: an
// episode in which some participants arrived and then nothing moved for
// at least the watchdog duration. Extract it with errors.As to learn
// which participants never showed up.
type StallError struct {
	// Missing lists, in ascending order, the participant ids that had not
	// arrived at the stalled episode when the watchdog fired.
	Missing []int
	// Waited is how long the episode had made no progress.
	Waited time.Duration
}

func (e *StallError) Error() string {
	return fmt.Sprintf("softbarrier: episode stalled for %v: participants %v have not arrived", e.Waited, e.Missing)
}

// poisonCore is the abort machinery shared by every barrier in the
// package, embedded so that Poison, Err, Reset and Close are promoted
// onto each barrier type. The barrier supplies two callbacks at
// construction: wake poisons its wait primitives (gates, cells) so every
// parked and spinning waiter escapes, and clear reinitializes its episode
// state so Reset can return the barrier to service.
type poisonCore struct {
	wake   func()      // poison the barrier's wait primitives
	clear  func()      // reinitialize episode state; called only at quiescence
	notify func(error) // WithPoisonNotify hook; nil when not installed

	state atomic.Uint32 // 0 healthy, 1 poisoned; written after err below
	mu    sync.Mutex
	err   error

	// arrived counts each participant's arrivals (1-based episodes). The
	// owner bumps its own padded slot; only the watchdog — and, through
	// the promoted Arrivals method, remote coordinators — reads across.
	arrived *rt.Arrivals

	wdStop chan struct{}
	wdOnce sync.Once
}

// initPoison wires the core. watchdog > 0 starts the stall detector;
// notify, when non-nil, is invoked once when the barrier is poisoned.
func (c *poisonCore) initPoison(p int, watchdog time.Duration, notify func(error), wake, clear func()) {
	c.wake = wake
	c.clear = clear
	c.notify = notify
	c.arrived = rt.NewArrivals(p)
	if watchdog > 0 {
		c.wdStop = make(chan struct{})
		go c.runWatchdog(watchdog)
	}
}

// noteArrive records participant id's arrival for the watchdog.
func (c *poisonCore) noteArrive(id int) { c.arrived.Note(id) }

// resizeArrivals re-sizes the watchdog's counters for a membership change.
// It must run at the quiescent release point, like every other epoch
// application step; the counters restart from zero and the watchdog's
// next Scan observes the length change as progress.
func (c *poisonCore) resizeArrivals(p int) { c.arrived.Resize(p) }

// Arrivals returns a snapshot of the per-participant arrival counters:
// element id is how many episodes participant id has arrived at since
// construction (or the last Reset). It is the hook a remote coordinator
// uses to report per-client progress; the snapshot is taken slot by slot
// and is only episode-consistent at a quiescent point.
func (c *poisonCore) Arrivals() []uint64 { return c.arrived.Snapshot(nil) }

// poisoned is the hot-path check: one atomic load while healthy.
func (c *poisonCore) poisoned() bool { return c.state.Load() != 0 }

// Poison marks the barrier failed: every parked and spinning waiter
// wakes, and all future waits return immediately. Blocking calls made
// after the poisoning (Wait, Arrive, Await and the Ctx variants) are
// no-ops; Err reports the cause. The first error wins; nil selects
// ErrPoisoned. Poison is idempotent and safe from any goroutine,
// including concurrently with waits and releases.
func (c *poisonCore) Poison(err error) {
	if err == nil {
		err = ErrPoisoned
	}
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	c.err = err
	c.mu.Unlock()
	// Publish the flag only after the error is in place, so any waiter
	// that observes the poisoned state finds a non-nil Err.
	c.state.Store(1)
	c.wake()
	// Notify after the local waiters are released: the hook typically does
	// I/O (a networked barrier broadcasting the cause), and nothing it can
	// observe regresses — state and err are already published. Only the
	// goroutine that won the first-poison race runs it, so the hook fires
	// exactly once per poisoning.
	if c.notify != nil {
		c.notify(err)
	}
}

// Err returns the poison error, or nil while the barrier is healthy.
func (c *poisonCore) Err() error {
	if !c.poisoned() {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Reset returns a poisoned barrier to service. It may only be called at a
// quiescent point: no Wait/Arrive/Await (or Ctx variant) in flight, and
// every previously woken participant returned. Episode state is
// reinitialized; a watchdog installed with WithWatchdog resumes
// monitoring.
func (c *poisonCore) Reset() {
	c.clear()
	c.arrived.Reset()
	c.mu.Lock()
	c.err = nil
	c.mu.Unlock()
	c.state.Store(0)
}

// Close stops the watchdog goroutine installed by WithWatchdog; barriers
// built without one need no Close. Close does not poison the barrier —
// in-flight episodes complete normally, it only ends stall monitoring.
func (c *poisonCore) Close() {
	if c.wdStop != nil {
		c.wdOnce.Do(func() { close(c.wdStop) })
	}
}

// runWatchdog polls the arrival counters a few times per period d. An
// episode is stalled when the counters are frozen while unequal: someone
// arrived (its count leads) and the others made no progress. Frozen-equal
// counters mean the barrier is idle between episodes — participants off
// doing step work arbitrarily long — which is never poisoned. After d of
// no movement the core is poisoned with a StallError naming the absent
// ids, so the error that unblocks everyone says who to go debug.
func (c *poisonCore) runWatchdog(d time.Duration) {
	tick := d / 4
	if tick < 100*time.Microsecond {
		tick = 100 * time.Microsecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	var prev []uint64
	last := time.Now() // when progress (or quiescence) was last observed
	for {
		select {
		case <-c.wdStop:
			return
		case <-ticker.C:
		}
		if c.poisoned() {
			last = time.Now()
			continue
		}
		var changed, equal bool
		prev, changed, equal = c.arrived.Scan(prev)
		if changed || equal {
			last = time.Now()
			continue
		}
		stalled := time.Since(last)
		if stalled < d {
			continue
		}
		c.Poison(&StallError{Missing: rt.Missing(prev), Waited: stalled})
	}
}

// waitCtx wraps a blocking wait with cancellation: if ctx is cancelled or
// times out while the wait is in flight, the whole barrier is poisoned
// with ctx's error — the cancelled participant will not arrive (or stops
// awaiting), so poisoning is the only way the other participants can
// learn the episode is dead rather than parking forever.
func (c *poisonCore) waitCtx(ctx context.Context, wait func()) error {
	if err := c.Err(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		c.Poison(err)
		return c.Err()
	}
	stop := context.AfterFunc(ctx, func() { c.Poison(ctx.Err()) })
	wait()
	stop()
	return c.Err()
}

// Poison causes cross process boundaries: a networked barrier that aborts
// an episode must hand every remote waiter the cause, not just "poisoned".
// EncodePoisonCause renders an error in a compact, wire-stable binary form
// and DecodePoisonCause reconstructs it with its identity intact: a
// *StallError round-trips field for field (errors.As works across the
// wire), and ErrPoisoned, context.Canceled and context.DeadlineExceeded
// round-trip as the same sentinel values (errors.Is works). Any other
// error is carried as its message and decodes to an opaque error with
// that text.
const (
	causeGeneric  = 0x00
	causePoisoned = 0x01
	causeStall    = 0x02
	causeCanceled = 0x03
	causeDeadline = 0x04
)

// EncodePoisonCause appends the wire form of err to dst and returns the
// result. A nil err encodes like ErrPoisoned. Messages and missing-id
// lists are truncated to 64 KiB / 65535 entries, far beyond any real
// cause.
func EncodePoisonCause(dst []byte, err error) []byte {
	var stall *StallError
	switch {
	case err == nil, errors.Is(err, ErrPoisoned):
		return append(dst, causePoisoned)
	case errors.Is(err, context.Canceled):
		return append(dst, causeCanceled)
	case errors.Is(err, context.DeadlineExceeded):
		return append(dst, causeDeadline)
	case errors.As(err, &stall):
		n := len(stall.Missing)
		if n > 0xffff {
			n = 0xffff
		}
		dst = append(dst, causeStall, byte(n>>8), byte(n))
		for _, id := range stall.Missing[:n] {
			dst = append(dst, byte(uint32(id)>>24), byte(uint32(id)>>16), byte(uint32(id)>>8), byte(uint32(id)))
		}
		w := uint64(stall.Waited)
		for s := 56; s >= 0; s -= 8 {
			dst = append(dst, byte(w>>s))
		}
		return dst
	default:
		msg := err.Error()
		if len(msg) > 0xffff {
			msg = msg[:0xffff]
		}
		dst = append(dst, causeGeneric, byte(len(msg)>>8), byte(len(msg)))
		return append(dst, msg...)
	}
}

// DecodePoisonCause reconstructs a poison cause encoded by
// EncodePoisonCause. It is total: malformed input decodes to a generic
// error describing the malformation rather than failing, because the one
// thing a poison channel must never do is deliver nothing.
func DecodePoisonCause(b []byte) error {
	if len(b) == 0 {
		return ErrPoisoned
	}
	switch b[0] {
	case causePoisoned:
		return ErrPoisoned
	case causeCanceled:
		return context.Canceled
	case causeDeadline:
		return context.DeadlineExceeded
	case causeStall:
		if len(b) < 3 {
			return fmt.Errorf("softbarrier: malformed stall cause (%d bytes)", len(b))
		}
		n := int(b[1])<<8 | int(b[2])
		rest := b[3:]
		if len(rest) != 4*n+8 {
			return fmt.Errorf("softbarrier: malformed stall cause (%d ids, %d payload bytes)", n, len(rest))
		}
		st := &StallError{Missing: make([]int, n)}
		for i := 0; i < n; i++ {
			v := uint32(rest[0])<<24 | uint32(rest[1])<<16 | uint32(rest[2])<<8 | uint32(rest[3])
			st.Missing[i] = int(int32(v))
			rest = rest[4:]
		}
		w := uint64(0)
		for _, c := range rest[:8] {
			w = w<<8 | uint64(c)
		}
		st.Waited = time.Duration(w)
		return st
	case causeGeneric:
		if len(b) < 3 || len(b[3:]) != int(b[1])<<8|int(b[2]) {
			return fmt.Errorf("softbarrier: malformed generic cause (%d bytes)", len(b))
		}
		return errors.New(string(b[3:]))
	default:
		return fmt.Errorf("softbarrier: unknown poison cause tag %#02x", b[0])
	}
}
