package softbarrier

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	rt "softbarrier/internal/runtime"
)

// ErrPoisoned is the error a poisoned barrier reports when no more
// specific cause was given to Poison.
var ErrPoisoned = errors.New("softbarrier: barrier poisoned")

// StallError is the diagnostic a watchdog-poisoned barrier reports: an
// episode in which some participants arrived and then nothing moved for
// at least the watchdog duration. Extract it with errors.As to learn
// which participants never showed up.
type StallError struct {
	// Missing lists, in ascending order, the participant ids that had not
	// arrived at the stalled episode when the watchdog fired.
	Missing []int
	// Waited is how long the episode had made no progress.
	Waited time.Duration
}

func (e *StallError) Error() string {
	return fmt.Sprintf("softbarrier: episode stalled for %v: participants %v have not arrived", e.Waited, e.Missing)
}

// poisonCore is the abort machinery shared by every barrier in the
// package, embedded so that Poison, Err, Reset and Close are promoted
// onto each barrier type. The barrier supplies two callbacks at
// construction: wake poisons its wait primitives (gates, cells) so every
// parked and spinning waiter escapes, and clear reinitializes its episode
// state so Reset can return the barrier to service.
type poisonCore struct {
	wake  func() // poison the barrier's wait primitives
	clear func() // reinitialize episode state; called only at quiescence

	state atomic.Uint32 // 0 healthy, 1 poisoned; written after err below
	mu    sync.Mutex
	err   error

	// arrived counts each participant's arrivals (1-based episodes). The
	// owner bumps its own padded slot; only the watchdog reads across.
	arrived []rt.PaddedAtomicUint64

	wdStop chan struct{}
	wdOnce sync.Once
}

// initPoison wires the core. watchdog > 0 starts the stall detector.
func (c *poisonCore) initPoison(p int, watchdog time.Duration, wake, clear func()) {
	c.wake = wake
	c.clear = clear
	c.arrived = make([]rt.PaddedAtomicUint64, p)
	if watchdog > 0 {
		c.wdStop = make(chan struct{})
		go c.runWatchdog(watchdog)
	}
}

// noteArrive records participant id's arrival for the watchdog.
func (c *poisonCore) noteArrive(id int) { c.arrived[id].V.Add(1) }

// poisoned is the hot-path check: one atomic load while healthy.
func (c *poisonCore) poisoned() bool { return c.state.Load() != 0 }

// Poison marks the barrier failed: every parked and spinning waiter
// wakes, and all future waits return immediately. Blocking calls made
// after the poisoning (Wait, Arrive, Await and the Ctx variants) are
// no-ops; Err reports the cause. The first error wins; nil selects
// ErrPoisoned. Poison is idempotent and safe from any goroutine,
// including concurrently with waits and releases.
func (c *poisonCore) Poison(err error) {
	if err == nil {
		err = ErrPoisoned
	}
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	c.err = err
	c.mu.Unlock()
	// Publish the flag only after the error is in place, so any waiter
	// that observes the poisoned state finds a non-nil Err.
	c.state.Store(1)
	c.wake()
}

// Err returns the poison error, or nil while the barrier is healthy.
func (c *poisonCore) Err() error {
	if !c.poisoned() {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Reset returns a poisoned barrier to service. It may only be called at a
// quiescent point: no Wait/Arrive/Await (or Ctx variant) in flight, and
// every previously woken participant returned. Episode state is
// reinitialized; a watchdog installed with WithWatchdog resumes
// monitoring.
func (c *poisonCore) Reset() {
	c.clear()
	for i := range c.arrived {
		c.arrived[i].V.Store(0)
	}
	c.mu.Lock()
	c.err = nil
	c.mu.Unlock()
	c.state.Store(0)
}

// Close stops the watchdog goroutine installed by WithWatchdog; barriers
// built without one need no Close. Close does not poison the barrier —
// in-flight episodes complete normally, it only ends stall monitoring.
func (c *poisonCore) Close() {
	if c.wdStop != nil {
		c.wdOnce.Do(func() { close(c.wdStop) })
	}
}

// runWatchdog polls the arrival counters a few times per period d. An
// episode is stalled when the counters are frozen while unequal: someone
// arrived (its count leads) and the others made no progress. Frozen-equal
// counters mean the barrier is idle between episodes — participants off
// doing step work arbitrarily long — which is never poisoned. After d of
// no movement the core is poisoned with a StallError naming the absent
// ids, so the error that unblocks everyone says who to go debug.
func (c *poisonCore) runWatchdog(d time.Duration) {
	tick := d / 4
	if tick < 100*time.Microsecond {
		tick = 100 * time.Microsecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	prev := make([]uint64, len(c.arrived))
	cur := make([]uint64, len(c.arrived))
	last := time.Now() // when progress (or quiescence) was last observed
	for {
		select {
		case <-c.wdStop:
			return
		case <-ticker.C:
		}
		if c.poisoned() {
			last = time.Now()
			continue
		}
		changed := false
		hi, lo := uint64(0), ^uint64(0)
		for i := range cur {
			v := c.arrived[i].V.Load()
			cur[i] = v
			if v != prev[i] {
				changed = true
			}
			if v > hi {
				hi = v
			}
			if v < lo {
				lo = v
			}
		}
		copy(prev, cur)
		if changed || hi == lo {
			last = time.Now()
			continue
		}
		stalled := time.Since(last)
		if stalled < d {
			continue
		}
		missing := make([]int, 0, len(cur))
		for i, v := range cur {
			if v < hi {
				missing = append(missing, i)
			}
		}
		c.Poison(&StallError{Missing: missing, Waited: stalled})
	}
}

// waitCtx wraps a blocking wait with cancellation: if ctx is cancelled or
// times out while the wait is in flight, the whole barrier is poisoned
// with ctx's error — the cancelled participant will not arrive (or stops
// awaiting), so poisoning is the only way the other participants can
// learn the episode is dead rather than parking forever.
func (c *poisonCore) waitCtx(ctx context.Context, wait func()) error {
	if err := c.Err(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		c.Poison(err)
		return c.Err()
	}
	stop := context.AfterFunc(ctx, func() { c.Poison(ctx.Err()) })
	wait()
	stop()
	return c.Err()
}
