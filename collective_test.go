package softbarrier

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// opMat2 is 2×2 matrix multiplication over uint32 (wrapping): genuinely
// associative and non-commutative, so the deterministic id-order fold is
// observable — any reordering of operands changes the product.
func opMat2() Op {
	ident := make([]byte, 16)
	binary.BigEndian.PutUint32(ident[0:], 1)  // [[1 0]
	binary.BigEndian.PutUint32(ident[12:], 1) //  [0 1]]
	return Op{
		Name: "mat2-u32", Width: 16, Identity: ident,
		Fold: func(dst, src []byte) {
			var a, b [4]uint32
			for i := 0; i < 4; i++ {
				a[i] = binary.BigEndian.Uint32(dst[4*i:])
				b[i] = binary.BigEndian.Uint32(src[4*i:])
			}
			binary.BigEndian.PutUint32(dst[0:], a[0]*b[0]+a[1]*b[2])
			binary.BigEndian.PutUint32(dst[4:], a[0]*b[1]+a[1]*b[3])
			binary.BigEndian.PutUint32(dst[8:], a[2]*b[0]+a[3]*b[2])
			binary.BigEndian.PutUint32(dst[12:], a[2]*b[1]+a[3]*b[3])
		},
	}
}

// mat2Contribution derives a deterministic, order-sensitive contribution
// for one participant and episode.
func mat2Contribution(id int, episode int) []byte {
	c := make([]byte, 16)
	rng := rand.New(rand.NewSource(int64(id)*7919 + int64(episode)*104729 + 1))
	for i := 0; i < 4; i++ {
		binary.BigEndian.PutUint32(c[4*i:], rng.Uint32())
	}
	return c
}

// sequentialFold folds the contributions in ascending id order — the
// reference every collective must match bit for bit for non-commutative
// ops.
func sequentialFold(op Op, contribs [][]byte) []byte {
	out := make([]byte, op.Width)
	copy(out, contribs[0])
	for _, c := range contribs[1:] {
		op.Fold(out, c)
	}
	return out
}

// runAllReduceEpisodes drives E episodes of AllReduce on b with p
// participants, contributions scrambled in launch order and jittered in
// time, and checks every participant's result against want(e).
func runAllReduceEpisodes(t *testing.T, b Collective, p, episodes int, op Op,
	contrib func(id, e int) []byte, want func(e int) []byte) {
	t.Helper()
	var wg sync.WaitGroup
	results := make([][]byte, p)
	for id := 0; id < p; id++ {
		results[id] = make([]byte, op.Width)
	}
	rng := rand.New(rand.NewSource(42))
	for e := 0; e < episodes; e++ {
		order := rng.Perm(p)
		for _, id := range order {
			wg.Add(1)
			go func(id, e int, delay time.Duration) {
				defer wg.Done()
				time.Sleep(delay)
				if err := b.AllReduce(id, contrib(id, e), results[id]); err != nil {
					t.Errorf("episode %d participant %d: %v", e, id, err)
				}
			}(id, e, time.Duration(rng.Intn(200))*time.Microsecond)
		}
		wg.Wait()
		w := want(e)
		for id := 0; id < p; id++ {
			if !bytes.Equal(results[id], w) {
				t.Fatalf("episode %d participant %d: got %x, want %x", e, id, results[id], w)
			}
		}
	}
}

// TestCollectiveAllReduceDifferential checks every collective barrier's
// AllReduce against the sequential id-order fold, bit for bit, for a
// non-commutative op under scrambled arrival orders.
func TestCollectiveAllReduceDifferential(t *testing.T) {
	const p, episodes = 8, 40
	op := opMat2()
	contrib := func(id, e int) []byte { return mat2Contribution(id, e) }
	want := func(e int) []byte {
		cs := make([][]byte, p)
		for id := range cs {
			cs[id] = contrib(id, e)
		}
		return sequentialFold(op, cs)
	}
	barriers := map[string]Collective{
		"tree-d2":     NewCombiningTree(p, 2, WithCollective(op)),
		"tree-d4":     NewCombiningTree(p, 4, WithCollective(op)),
		"mcs-d3":      NewMCSTree(p, 3, WithCollective(op)),
		"tree-wakeup": NewCombiningTree(p, 2, WithCollective(op), WithTreeWakeup()),
		"dynamic-d2":  NewDynamic(p, 2, WithCollective(op)),
		"reconfig":    NewReconfigurable(p, ReconfigConfig{ReplanEvery: 4}, WithCollective(op)),
	}
	for name, b := range barriers {
		b := b
		t.Run(name, func(t *testing.T) {
			runAllReduceEpisodes(t, b, p, episodes, op, contrib, want)
		})
	}
}

// TestCollectiveAllReduceCommutative exercises the greedy arrival-order
// path: a commutative sum folded during the ascent.
func TestCollectiveAllReduceCommutative(t *testing.T) {
	const p, episodes = 7, 40
	op := OpSumUint64()
	contrib := func(id, e int) []byte {
		c := make([]byte, 8)
		binary.BigEndian.PutUint64(c, uint64(id+1)*uint64(e+1))
		return c
	}
	want := func(e int) []byte {
		var sum uint64
		for id := 0; id < p; id++ {
			sum += uint64(id+1) * uint64(e+1)
		}
		c := make([]byte, 8)
		binary.BigEndian.PutUint64(c, sum)
		return c
	}
	barriers := map[string]Collective{
		"tree-d3":    NewCombiningTree(p, 3, WithCollective(op)),
		"mcs-d2":     NewMCSTree(p, 2, WithCollective(op)),
		"dynamic-d3": NewDynamic(p, 3, WithCollective(op)),
		"reconfig":   NewReconfigurable(p, ReconfigConfig{}, WithCollective(op)),
	}
	for name, b := range barriers {
		b := b
		t.Run(name, func(t *testing.T) {
			runAllReduceEpisodes(t, b, p, episodes, op, contrib, want)
		})
	}
}

// TestCollectiveReduceAndBroadcast checks root-rooted delivery: Reduce
// fills only the root's out, Broadcast fans the root's buf to everyone.
func TestCollectiveReduceAndBroadcast(t *testing.T) {
	const p, root = 6, 2
	op := opMat2()
	for _, tc := range []struct {
		name string
		b    Collective
	}{
		{"tree", NewCombiningTree(p, 2, WithCollective(op))},
		{"dynamic", NewDynamic(p, 2, WithCollective(op))},
		{"reconfig", NewReconfigurable(p, ReconfigConfig{}, WithCollective(op))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Reduce: only root receives the fold.
			contribs := make([][]byte, p)
			for id := range contribs {
				contribs[id] = mat2Contribution(id, 0)
			}
			wantFold := sequentialFold(op, contribs)
			outs := make([][]byte, p)
			var wg sync.WaitGroup
			for id := 0; id < p; id++ {
				outs[id] = bytes.Repeat([]byte{0xEE}, op.Width)
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					if err := tc.b.Reduce(id, root, contribs[id], outs[id]); err != nil {
						t.Errorf("reduce %d: %v", id, err)
					}
				}(id)
			}
			wg.Wait()
			if !bytes.Equal(outs[root], wantFold) {
				t.Fatalf("root result %x, want %x", outs[root], wantFold)
			}
			for id := 0; id < p; id++ {
				if id != root && !bytes.Equal(outs[id], bytes.Repeat([]byte{0xEE}, op.Width)) {
					t.Fatalf("non-root %d received a reduce result", id)
				}
			}

			// Broadcast: everyone converges on root's value.
			msg := mat2Contribution(99, 7)
			bufs := make([][]byte, p)
			for id := 0; id < p; id++ {
				bufs[id] = make([]byte, op.Width)
				if id == root {
					copy(bufs[id], msg)
				}
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					if err := tc.b.Broadcast(id, root, bufs[id]); err != nil {
						t.Errorf("broadcast %d: %v", id, err)
					}
				}(id)
			}
			wg.Wait()
			for id := 0; id < p; id++ {
				if !bytes.Equal(bufs[id], msg) {
					t.Fatalf("participant %d broadcast buf %x, want %x", id, bufs[id], msg)
				}
			}
		})
	}
}

// TestCollectiveGrowShrink runs AllReduce through elastic membership
// changes in lockstep — one episode per round — and checks every
// delivered result against the sequential fold over that episode's
// membership, including the round whose boundary shrinks contributors
// away (they contributed; they just receive no result locally).
func TestCollectiveGrowShrink(t *testing.T) {
	op := opMat2()
	b := NewReconfigurable(4, ReconfigConfig{}, WithCollective(op))

	round := 0
	runRound := func(p int, expectResult func(id int) bool) {
		t.Helper()
		contribs := make([][]byte, p)
		for id := range contribs {
			contribs[id] = mat2Contribution(id, round)
		}
		want := sequentialFold(op, contribs)
		sentinel := bytes.Repeat([]byte{0xAB}, op.Width)
		outs := make([][]byte, p)
		var wg sync.WaitGroup
		for id := 0; id < p; id++ {
			outs[id] = bytes.Clone(sentinel)
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				if err := b.AllReduce(id, contribs[id], outs[id]); err != nil {
					t.Errorf("round %d participant %d: %v", round, id, err)
				}
			}(id)
		}
		wg.Wait()
		for id := 0; id < p; id++ {
			if expectResult(id) {
				if !bytes.Equal(outs[id], want) {
					t.Fatalf("round %d participant %d: got %x, want %x", round, id, outs[id], want)
				}
			} else if !bytes.Equal(outs[id], sentinel) {
				t.Fatalf("round %d shrunk participant %d received a result", round, id)
			}
		}
		round++
	}
	all := func(int) bool { return true }

	runRound(4, all) // steady state
	if _, err := b.Grow(2); err != nil {
		t.Fatal(err)
	}
	runRound(4, all) // boundary episode: still 4 members, grow lands at its release
	if got := b.Participants(); got != 6 {
		t.Fatalf("after grow: %d participants, want 6", got)
	}
	runRound(6, all) // new members contribute from their admitting epoch
	if _, err := b.Shrink(3); err != nil {
		t.Fatal(err)
	}
	// Boundary episode: all 6 contribute, ids 3..5 are shrunk at the
	// release and receive no result.
	runRound(6, func(id int) bool { return id < 3 })
	if got := b.Participants(); got != 3 {
		t.Fatalf("after shrink: %d participants, want 3", got)
	}
	runRound(3, all)
	runRound(3, all)
}

// TestCollectiveMixedWithWait interleaves plain Wait episodes with
// AllReduce episodes on the same barrier: the zero-payload episodes must
// not disturb the payload ones.
func TestCollectiveMixedWithWait(t *testing.T) {
	const p = 5
	op := OpSumUint64()
	b := NewCombiningTree(p, 2, WithCollective(op))
	var wg sync.WaitGroup
	results := make([][]byte, p)
	for e := 0; e < 20; e++ {
		for id := 0; id < p; id++ {
			results[id] = make([]byte, 8)
			wg.Add(1)
			go func(id, e int) {
				defer wg.Done()
				if e%2 == 0 {
					b.Wait(id)
					return
				}
				in := make([]byte, 8)
				binary.BigEndian.PutUint64(in, uint64(id))
				if err := b.AllReduce(id, in, results[id]); err != nil {
					t.Errorf("episode %d id %d: %v", e, id, err)
				}
			}(id, e)
		}
		wg.Wait()
		if e%2 == 1 {
			for id := 0; id < p; id++ {
				if got := binary.BigEndian.Uint64(results[id]); got != 10 {
					t.Fatalf("episode %d id %d: sum %d, want 10", e, id, got)
				}
			}
		}
	}
}

// TestCollectiveFuzzySplit drives ArriveReduce/AwaitResult separately —
// the fuzzy-barrier shape of AllReduce.
func TestCollectiveFuzzySplit(t *testing.T) {
	const p = 4
	op := OpSumUint64()
	for _, tc := range []struct {
		name string
		b    Collective
	}{
		{"tree", NewCombiningTree(p, 2, WithCollective(op))},
		{"reconfig", NewReconfigurable(p, ReconfigConfig{}, WithCollective(op))},
	} {
		type fuzzy interface {
			ArriveReduce(id int, in []byte) error
			AwaitResult(id int, out []byte) error
		}
		fb := tc.b.(fuzzy)
		t.Run(tc.name, func(t *testing.T) {
			var wg sync.WaitGroup
			sums := make([]uint64, p)
			for id := 0; id < p; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					in := make([]byte, 8)
					out := make([]byte, 8)
					binary.BigEndian.PutUint64(in, uint64(id+1))
					if err := fb.ArriveReduce(id, in); err != nil {
						t.Errorf("arrive %d: %v", id, err)
						return
					}
					// Slack work would go here.
					if err := fb.AwaitResult(id, out); err != nil {
						t.Errorf("await %d: %v", id, err)
						return
					}
					sums[id] = binary.BigEndian.Uint64(out)
				}(id)
			}
			wg.Wait()
			for id, s := range sums {
				if s != 10 {
					t.Fatalf("participant %d sum %d, want 10", id, s)
				}
			}
		})
	}
}

// TestCollectiveWithoutOption checks the ErrNoCollective contract.
func TestCollectiveWithoutOption(t *testing.T) {
	for _, b := range []Collective{
		NewCombiningTree(3, 2),
		NewDynamic(3, 2),
		NewReconfigurable(3, ReconfigConfig{}),
	} {
		if err := b.AllReduce(0, nil, nil); err != ErrNoCollective {
			t.Fatalf("AllReduce without option: %v", err)
		}
		if err := b.Reduce(0, 0, nil, nil); err != ErrNoCollective {
			t.Fatalf("Reduce without option: %v", err)
		}
		if err := b.Broadcast(0, 0, nil); err != ErrNoCollective {
			t.Fatalf("Broadcast without option: %v", err)
		}
	}
}

// TestOpByName pins the built-in registry used by cmd/barrierd.
func TestOpByName(t *testing.T) {
	for _, name := range OpNames() {
		op, ok := OpByName(name)
		if !ok {
			t.Fatalf("OpNames lists %q but OpByName misses it", name)
		}
		if op.Name != name {
			t.Fatalf("op %q reports name %q", name, op.Name)
		}
		if err := op.Validate(); err != nil {
			t.Fatalf("builtin op %q invalid: %v", name, err)
		}
	}
	if _, ok := OpByName("no-such-op"); ok {
		t.Fatal("unknown op resolved")
	}
}
