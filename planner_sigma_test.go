package softbarrier

import (
	"testing"

	"softbarrier/internal/barriersim"
	"softbarrier/internal/stats"
	"softbarrier/internal/topology"
)

func TestReduceOrder(t *testing.T) {
	order := ReduceOrder([]float64{0.1, 0.5, 0.2, 0.5, 0.0})
	want := []int{1, 3, 2, 0, 4} // laggiest first, ties stable by id
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	if got := ReduceOrder(nil); len(got) != 0 {
		t.Fatalf("empty lags produced %v", got)
	}
	// Uniform lag degenerates to the identity order.
	uniform := ReduceOrder([]float64{3, 3, 3})
	for i, p := range uniform {
		if p != i {
			t.Fatalf("uniform lags reordered: %v", uniform)
		}
	}
}

// TestReduceOrderPlacementSim measures the σ-aware placement policy in the
// event-driven simulator: under systemic imbalance (the same two
// processors late every episode), relabeling the MCS tree laggiest-
// shallowest must beat the naive id-order placement on mean sync delay,
// because the straggler that releases the barrier climbs one counter
// instead of a full leaf-to-root path.
func TestReduceOrderPlacementSim(t *testing.T) {
	const (
		p        = 15
		episodes = 300
		sigma    = 20e-6
		lagBig   = 500e-6
	)
	lags := make([]float64, p)
	lags[3], lags[11] = lagBig, 0.6*lagBig // systemic stragglers

	tree := topology.NewMCS(p, 2)
	placed, err := tree.PlaceByDepth(ReduceOrder(lags))
	if err != nil {
		t.Fatal(err)
	}
	if err := placed.Validate(); err != nil {
		t.Fatal(err)
	}

	run := func(tr *topology.Tree) float64 {
		sim := barriersim.New(tr, barriersim.Config{})
		rng := stats.NewRNG(7)
		var delays []float64
		for e := 0; e < episodes; e++ {
			arrivals := make([]float64, p)
			for i := range arrivals {
				arrivals[i] = rng.NormFloat64()*sigma + lags[i]
			}
			delays = append(delays, sim.Episode(arrivals).SyncDelay)
		}
		return stats.Mean(delays)
	}

	naive := run(tree)
	aware := run(placed)
	t.Logf("mean sync delay: naive %.3gs, σ-aware %.3gs", naive, aware)
	if aware >= naive {
		t.Fatalf("σ-aware placement (%.3gs) did not beat naive placement (%.3gs)", aware, naive)
	}
}
