package softbarrier

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// episodeCounter counts emitted episodes and keeps the latest stats.
type episodeCounter struct {
	n    atomic.Uint64
	mu   sync.Mutex
	last EpisodeStats
}

func (c *episodeCounter) Episode(s EpisodeStats) {
	c.mu.Lock()
	c.last = s
	c.mu.Unlock()
	c.n.Add(1)
}

func (c *episodeCounter) Last() EpisodeStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// elasticWorker loops barrier episodes until the barrier is poisoned or a
// membership change drops its id — the canonical drain pattern: the swap
// is published before the release that wakes Wait, so checking
// Participants after Wait is race-free.
func elasticWorker(b *ReconfigurableBarrier, id int, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		if b.Err() != nil || id >= b.Participants() {
			return
		}
		b.Wait(id)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestReconfigurableElasticMidRun(t *testing.T) {
	b := NewReconfigurable(8, ReconfigConfig{ReplanEvery: 2})
	episodes := func() uint64 { _, n := b.MeasuredSigma(); return n }

	var wg sync.WaitGroup
	wg.Add(8)
	for id := 0; id < 8; id++ {
		go elasticWorker(b, id, &wg)
	}
	waitFor(t, "warmup episodes", func() bool { return episodes() >= 50 })

	if _, err := b.Shrink(4); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "shrink to 4", func() bool { return b.Participants() == 4 })
	mark := episodes()
	waitFor(t, "episodes at p=4", func() bool { return episodes() >= mark+50 })

	if _, err := b.Grow(4); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "grow to 8", func() bool { return b.Participants() == 8 })
	wg.Add(4)
	for id := 4; id < 8; id++ {
		go elasticWorker(b, id, &wg)
	}
	mark = episodes()
	waitFor(t, "episodes at regrown p=8", func() bool { return episodes() >= mark+50 })

	b.Poison(nil)
	wg.Wait()
	if !errors.Is(b.Err(), ErrPoisoned) {
		t.Errorf("err = %v, want ErrPoisoned", b.Err())
	}
	st := b.ReconfigStats()
	if st.Rebuilds < 2 {
		t.Errorf("rebuilds = %d, want ≥ 2 (shrink + grow)", st.Rebuilds)
	}
	if st.Epochs != st.Rebuilds+1 {
		t.Errorf("epochs = %d, want rebuilds+1 = %d", st.Epochs, st.Rebuilds+1)
	}
	if st.LastPlan.P != 8 {
		t.Errorf("last plan P = %d, want 8", st.LastPlan.P)
	}
	if b.Epoch() != st.LastPlan.Epoch {
		t.Errorf("Epoch() = %d, last plan epoch %d", b.Epoch(), st.LastPlan.Epoch)
	}
}

func TestReconfigurableResizeImmediate(t *testing.T) {
	b := NewReconfigurable(4, ReconfigConfig{ReplanEvery: 1000})
	if err := b.Resize(6); err != nil {
		t.Fatal(err)
	}
	if got := b.Participants(); got != 6 {
		t.Fatalf("participants after resize = %d, want 6", got)
	}
	if b.Epoch() != 1 {
		t.Errorf("epoch after resize = %d, want 1", b.Epoch())
	}
	// The resized barrier must complete episodes at the new width.
	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		wg.Add(6)
		for id := 0; id < 6; id++ {
			go func(id int) { defer wg.Done(); b.Wait(id) }(id)
		}
		wg.Wait()
	}
	if err := b.Resize(2); err != nil {
		t.Fatal(err)
	}
	wg.Add(2)
	for id := 0; id < 2; id++ {
		go func(id int) { defer wg.Done(); b.Wait(id) }(id)
	}
	wg.Wait()
	if err := b.Resize(0); err == nil {
		t.Error("Resize(0) accepted")
	}
}

func TestReconfigurableEpochInObserver(t *testing.T) {
	var obs episodeCounter
	b := NewReconfigurable(4, ReconfigConfig{ReplanEvery: 1000}, WithObserver(&obs))
	runEpisode := func(p int) {
		var wg sync.WaitGroup
		wg.Add(p)
		for id := 0; id < p; id++ {
			go func(id int) { defer wg.Done(); b.Wait(id) }(id)
		}
		wg.Wait()
	}
	runEpisode(4)
	if got := obs.Last(); got.Epoch != 0 || got.P != 4 {
		t.Errorf("episode 0 stats = epoch %d p %d, want 0/4", got.Epoch, got.P)
	}
	if err := b.RequestResize(6); err != nil {
		t.Fatal(err)
	}
	// The request lands at the next boundary: the episode still completes
	// with 4 arrivals, and its stats report the newly applied epoch.
	runEpisode(4)
	if got := obs.Last(); got.Epoch != 1 {
		t.Errorf("episode 1 stats epoch = %d, want 1 (plan applied at its release)", got.Epoch)
	}
	if b.Participants() != 6 {
		t.Errorf("participants = %d, want 6", b.Participants())
	}
	runEpisode(6)
	if got := obs.n.Load(); got != 3 {
		t.Errorf("observed %d episodes, want 3", got)
	}
}

func TestElasticGroupGrowShrink(t *testing.T) {
	g := NewGroup(NewReconfigurable(4, ReconfigConfig{}))
	var steps atomic.Int64
	g.Run(3, func(id, step int) { steps.Add(1) })
	if got := steps.Load(); got != 12 {
		t.Fatalf("ran %d worker-steps, want 12", got)
	}
	if err := g.Grow(2); err != nil {
		t.Fatal(err)
	}
	if g.Workers() != 6 {
		t.Fatalf("workers after grow = %d, want 6", g.Workers())
	}
	steps.Store(0)
	g.Run(2, func(id, step int) { steps.Add(1) })
	if got := steps.Load(); got != 12 {
		t.Fatalf("ran %d worker-steps at 6 workers, want 12", got)
	}
	if err := g.Shrink(3); err != nil {
		t.Fatal(err)
	}
	if g.Workers() != 3 {
		t.Fatalf("workers after shrink = %d, want 3", g.Workers())
	}
	if err := g.Shrink(3); err == nil {
		t.Error("shrink to zero workers accepted")
	}
	if err := NewGroup(NewCentral(4)).Resize(8); err == nil {
		t.Error("resize of a non-resizable barrier accepted")
	}
}
