package softbarrier

import (
	"runtime"
	"sync/atomic"
)

// TournamentBarrier is the tournament barrier (Hensgen, Finkel & Manber;
// the variant with statically determined winners, as presented by
// Mellor-Crummey & Scott): participants pair up over ⌈log₂ p⌉ rounds. In
// each round the statically chosen loser signals its winner and drops out
// to wait; the winner advances. The overall champion (participant 0)
// observes the final round and broadcasts the release by flipping a global
// sense.
//
// Like the dissemination barrier it needs no degree tuning, and like the
// combining tree its arrival pattern is a (binary) tree — it is the other
// classic baseline for the paper's imbalance study.
type TournamentBarrier struct {
	p      int
	rounds int
	// arrive[round][winner] is set by the loser paired with winner.
	arrive [][]atomic.Uint32
	sense  atomic.Uint32
	local  []paddedU64
	epoch  []paddedU64 // per-participant episode counter (selects flag value)
}

// NewTournament returns a tournament barrier for p participants.
func NewTournament(p int) *TournamentBarrier {
	if p < 1 {
		panic("softbarrier: need at least one participant")
	}
	rounds := 0
	for 1<<rounds < p {
		rounds++
	}
	b := &TournamentBarrier{p: p, rounds: rounds}
	b.arrive = make([][]atomic.Uint32, rounds)
	for r := range b.arrive {
		b.arrive[r] = make([]atomic.Uint32, p)
	}
	b.local = make([]paddedU64, p)
	b.epoch = make([]paddedU64, p)
	return b
}

// Participants returns P.
func (b *TournamentBarrier) Participants() int { return b.p }

// Rounds returns ⌈log₂ p⌉.
func (b *TournamentBarrier) Rounds() int { return b.rounds }

// Wait blocks until all participants arrive.
func (b *TournamentBarrier) Wait(id int) {
	b.Arrive(id)
	b.Await(id)
}

// Arrive plays participant id's tournament rounds; the champion releases
// the episode.
func (b *TournamentBarrier) Arrive(id int) {
	checkID(id, b.p)
	b.local[id].v = uint64(b.sense.Load())
	b.epoch[id].v++
	want := uint32(b.epoch[id].v) // distinct per episode; never reset
	for r := 0; r < b.rounds; r++ {
		bit := 1 << r
		if id&bit != 0 {
			// Statically determined loser: signal the winner, drop out.
			b.arrive[r][id&^bit].Store(want)
			return
		}
		partner := id | bit
		if partner >= b.p {
			continue // bye: no opponent in this round
		}
		for b.arrive[r][id].Load() != want {
			runtime.Gosched()
		}
	}
	// Champion (id 0): everyone has arrived.
	b.sense.Add(1)
}

// Await spins until the episode's release.
func (b *TournamentBarrier) Await(id int) {
	checkID(id, b.p)
	mine := b.local[id].v
	for uint64(b.sense.Load()) == mine {
		runtime.Gosched()
	}
}

var _ PhasedBarrier = (*TournamentBarrier)(nil)
