package softbarrier

import (
	"context"

	rt "softbarrier/internal/runtime"
)

// TournamentBarrier is the tournament barrier (Hensgen, Finkel & Manber;
// the variant with statically determined winners, as presented by
// Mellor-Crummey & Scott): participants pair up over ⌈log₂ p⌉ rounds. In
// each round the statically chosen loser signals its winner and drops out
// to wait; the winner advances. The overall champion (participant 0)
// observes the final round and broadcasts the release.
//
// Like the dissemination barrier it needs no degree tuning, and like the
// combining tree its arrival pattern is a (binary) tree — it is the other
// classic baseline for the paper's imbalance study.
//
// Round flags and the release broadcast run on the shared
// internal/runtime waiter (bounded spin → yield → park); flags carry the
// monotone episode number, so no per-participant epoch bookkeeping is
// needed beyond the release gate's generation.
type TournamentBarrier struct {
	p      int
	rounds int
	policy rt.WaitPolicy
	// arrive[r][winner] is set by the loser paired with winner.
	arrive [][]rt.Cell
	gate   rt.Gate
	local  []rt.PaddedUint64
	rec    *rt.Recorder
	poisonCore
}

// NewTournament returns a tournament barrier for p participants.
func NewTournament(p int, opts ...Option) *TournamentBarrier {
	if p < 1 {
		panic("softbarrier: need at least one participant")
	}
	o := applyOptions(opts)
	rounds := 0
	for 1<<rounds < p {
		rounds++
	}
	b := &TournamentBarrier{p: p, rounds: rounds, policy: o.policy}
	b.arrive = make([][]rt.Cell, rounds)
	for r := range b.arrive {
		b.arrive[r] = make([]rt.Cell, p)
		rt.InitCells(b.arrive[r])
	}
	b.local = make([]rt.PaddedUint64, p)
	b.gate.Init(o.policy)
	b.rec = o.recorder(p, false)
	b.initPoison(p, o.watchdog, o.poisonNotify,
		func() {
			b.gate.Poison()
			for r := range b.arrive {
				for i := range b.arrive[r] {
					b.arrive[r][i].Poison()
				}
			}
		},
		func() {
			for r := range b.arrive {
				for i := range b.arrive[r] {
					b.arrive[r][i].Reset()
				}
			}
			b.gate.Unpoison()
		})
	return b
}

// Participants returns P.
func (b *TournamentBarrier) Participants() int { return b.p }

// Rounds returns ⌈log₂ p⌉.
func (b *TournamentBarrier) Rounds() int { return b.rounds }

// Wait blocks until all participants arrive.
func (b *TournamentBarrier) Wait(id int) {
	b.Arrive(id)
	b.Await(id)
}

// Arrive plays participant id's tournament rounds; the champion releases
// the episode. On a poisoned barrier it is a no-op; a winner woken from a
// round wait by poison abandons its remaining rounds.
func (b *TournamentBarrier) Arrive(id int) {
	checkID(id, b.p)
	if b.poisoned() {
		return
	}
	b.noteArrive(id)
	mine := b.gate.Seq() // the 0-based episode index; stable until release
	b.rec.Arrive(id, mine)
	b.local[id].V = mine
	want := mine + 1 // monotone per flag, never the zero initial value
	for r := 0; r < b.rounds; r++ {
		bit := 1 << r
		if id&bit != 0 {
			// Statically determined loser: signal the winner, drop out.
			b.arrive[r][id&^bit].Set(want)
			return
		}
		partner := id | bit
		if partner >= b.p {
			continue // bye: no opponent in this round
		}
		if b.arrive[r][id].AwaitAtLeast(want, b.policy) == rt.PoisonValue {
			return // poison wake: the episode is dead, the gate is poisoned too
		}
	}
	// Champion (id 0): everyone has arrived. Measure while the arrival
	// slots are quiescent, then broadcast the release.
	b.rec.Release(mine, rt.Extra{})
	b.gate.Open()
}

// Await blocks (spin → yield → park) until the episode's release or the
// barrier is poisoned.
func (b *TournamentBarrier) Await(id int) {
	checkID(id, b.p)
	b.gate.Await(b.local[id].V)
}

// WaitCtx is Wait with cancellation: if ctx ends while the wait is in
// flight the barrier is poisoned, and the poison error is returned.
func (b *TournamentBarrier) WaitCtx(ctx context.Context, id int) error {
	checkID(id, b.p)
	return b.waitCtx(ctx, func() { b.Wait(id) })
}

// AwaitCtx is Await with cancellation, with WaitCtx's poison semantics.
func (b *TournamentBarrier) AwaitCtx(ctx context.Context, id int) error {
	checkID(id, b.p)
	return b.waitCtx(ctx, func() { b.Await(id) })
}

var _ PhasedBarrier = (*TournamentBarrier)(nil)
var _ ContextBarrier = (*TournamentBarrier)(nil)
