package softbarrier

import (
	"runtime"
	"sync"
	"sync/atomic"

	"softbarrier/internal/topology"
)

// TreeBarrier is a software combining-tree barrier: a tree of counters,
// each protected by its own lock, so that at most degree+1 participants
// ever contend on the same cache line. A participant updates its first
// counter; whoever completes a counter's fan-in proceeds to the parent,
// and completing the root releases the episode.
//
// Construct with NewCombiningTree (participants at the leaves only, the
// Yew/Tzeng/Lawrie structure) or NewMCSTree (one participant attached to
// every counter, the Mellor-Crummey & Scott structure the paper's §5
// builds on).
type TreeBarrier struct {
	p        int
	tree     *topology.Tree
	counters []treeCounter

	relMu   sync.Mutex
	relCond *sync.Cond
	gen     uint64
	myGen   []paddedU64

	// Tree wakeup (optional): instead of a broadcast condition variable,
	// the releaser wakes participant 0, and each woken participant wakes
	// its two children in a binary heap layout — the MCS-style wakeup tree
	// that bounds the number of waiters per flag.
	treeWakeup bool
	wakeFlag   []paddedAtomicU64
}

// paddedAtomicU64 keeps per-participant wakeup flags on separate cache
// lines.
type paddedAtomicU64 struct {
	v atomic.Uint64
	_ [56]byte
}

// TreeOption configures a TreeBarrier at construction.
type TreeOption func(*TreeBarrier)

// WithTreeWakeup selects tree-propagated wakeup: released participants
// wake their two heap children instead of everyone blocking on one
// broadcast condition variable. This bounds the contention of the release
// path at the cost of log₂ p propagation hops.
func WithTreeWakeup() TreeOption {
	return func(b *TreeBarrier) { b.treeWakeup = true }
}

// treeCounter is one tree node's arrival counter.
type treeCounter struct {
	mu    sync.Mutex
	count int
	fanIn int
	_     [32]byte // separate counters across cache lines
}

// NewCombiningTree returns a classic combining-tree barrier for p
// participants with the given tree degree (≥2). Degree ≥ p degenerates to
// a flat central counter.
func NewCombiningTree(p, degree int, opts ...TreeOption) *TreeBarrier {
	return newTreeBarrier(topology.NewClassic(p, degree), opts)
}

// NewMCSTree returns an MCS-style tree barrier for p participants with the
// given degree: every counter has one statically attached participant,
// which shortens the average path (§4).
func NewMCSTree(p, degree int, opts ...TreeOption) *TreeBarrier {
	return newTreeBarrier(topology.NewMCS(p, degree), opts)
}

func newTreeBarrier(tree *topology.Tree, opts []TreeOption) *TreeBarrier {
	b := &TreeBarrier{
		p:        tree.P,
		tree:     tree,
		counters: make([]treeCounter, len(tree.Counters)),
		myGen:    make([]paddedU64, tree.P),
	}
	for i := range b.counters {
		b.counters[i].fanIn = tree.Counters[i].FanIn()
	}
	b.relCond = sync.NewCond(&b.relMu)
	for _, o := range opts {
		o(b)
	}
	if b.treeWakeup {
		b.wakeFlag = make([]paddedAtomicU64, b.p)
	}
	return b
}

// Participants returns P.
func (b *TreeBarrier) Participants() int { return b.p }

// Degree returns the tree's construction degree.
func (b *TreeBarrier) Degree() int { return b.tree.Degree }

// Levels returns the number of counter levels in the tree.
func (b *TreeBarrier) Levels() int { return b.tree.Levels }

// Wait blocks until all participants arrive.
func (b *TreeBarrier) Wait(id int) {
	b.Arrive(id)
	b.Await(id)
}

// Arrive performs participant id's counter ascent. If id completes the
// root counter it releases the episode before returning.
func (b *TreeBarrier) Arrive(id int) {
	checkID(id, b.p)
	b.relMu.Lock()
	b.myGen[id].v = b.gen
	b.relMu.Unlock()
	b.ascend(b.tree.FirstCounter(id))
}

// ascend climbs the counter chain starting at counter c, releasing the
// episode if the root completes.
func (b *TreeBarrier) ascend(c int) {
	for c != topology.NoCounter {
		tc := &b.counters[c]
		tc.mu.Lock()
		tc.count++
		last := tc.count == tc.fanIn
		if last {
			tc.count = 0
		}
		tc.mu.Unlock()
		if !last {
			return
		}
		c = b.tree.Counters[c].Parent
	}
	// Root completed: release everyone.
	b.relMu.Lock()
	b.gen++
	gen := b.gen
	b.relCond.Broadcast()
	b.relMu.Unlock()
	if b.treeWakeup {
		b.wakeFlag[0].v.Store(gen)
	}
}

// Await blocks participant id until the episode it arrived in completes.
func (b *TreeBarrier) Await(id int) {
	checkID(id, b.p)
	mine := b.myGen[id].v
	if b.treeWakeup {
		target := mine + 1
		var got uint64
		for {
			if got = b.wakeFlag[id].v.Load(); got >= target {
				break
			}
			runtime.Gosched()
		}
		// Propagate the wakeup (monotone values make overlapping episodes
		// safe: a flag may carry a newer generation, which is still a
		// release of our episode's successor and therefore of ours).
		for _, child := range [2]int{2*id + 1, 2*id + 2} {
			if child < b.p {
				if cur := b.wakeFlag[child].v.Load(); cur < got {
					b.wakeFlag[child].v.Store(got)
				}
			}
		}
		return
	}
	b.relMu.Lock()
	for b.gen == mine {
		b.relCond.Wait()
	}
	b.relMu.Unlock()
}

var _ PhasedBarrier = (*TreeBarrier)(nil)
