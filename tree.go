package softbarrier

import (
	"context"
	"sync"

	rt "softbarrier/internal/runtime"
	"softbarrier/internal/topology"
)

// TreeBarrier is a software combining-tree barrier: a tree of counters,
// each protected by its own lock, so that at most degree+1 participants
// ever contend on the same cache line. A participant updates its first
// counter; whoever completes a counter's fan-in proceeds to the parent,
// and completing the root releases the episode.
//
// Construct with NewCombiningTree (participants at the leaves only, the
// Yew/Tzeng/Lawrie structure) or NewMCSTree (one participant attached to
// every counter, the Mellor-Crummey & Scott structure the paper's §5
// builds on).
//
// The release path runs on the shared internal/runtime core: waiters
// follow the configured spin→yield→park policy, and WithTreeWakeup swaps
// the broadcast gate for an MCS-style binary wakeup tree whose flags park
// the same way.
type TreeBarrier struct {
	p        int
	tree     *topology.Tree
	counters []treeCounter

	gate  rt.Gate
	myGen []rt.PaddedUint64

	// Tree wakeup (optional): instead of the broadcast gate, the releaser
	// wakes participant 0, and each woken participant wakes its two
	// children in a binary heap layout — the MCS-style wakeup tree that
	// bounds the number of waiters per flag.
	treeWakeup bool
	policy     rt.WaitPolicy
	wakeFlag   []rt.Cell

	rec *rt.Recorder
	poisonCore
}

// treeCounter is one tree node's arrival counter.
type treeCounter struct {
	mu    sync.Mutex
	count int
	fanIn int
	_     [32]byte // separate counters across cache lines
}

// NewCombiningTree returns a classic combining-tree barrier for p
// participants with the given tree degree (≥2). Degree ≥ p degenerates to
// a flat central counter.
func NewCombiningTree(p, degree int, opts ...Option) *TreeBarrier {
	return newTreeBarrier(topology.NewClassic(p, degree), opts)
}

// NewMCSTree returns an MCS-style tree barrier for p participants with the
// given degree: every counter has one statically attached participant,
// which shortens the average path (§4).
func NewMCSTree(p, degree int, opts ...Option) *TreeBarrier {
	return newTreeBarrier(topology.NewMCS(p, degree), opts)
}

func newTreeBarrier(tree *topology.Tree, opts []Option) *TreeBarrier {
	o := applyOptions(opts)
	b := &TreeBarrier{
		p:          tree.P,
		tree:       tree,
		counters:   make([]treeCounter, len(tree.Counters)),
		myGen:      make([]rt.PaddedUint64, tree.P),
		treeWakeup: o.treeWakeup,
		policy:     o.policy,
	}
	for i := range b.counters {
		b.counters[i].fanIn = tree.Counters[i].FanIn()
	}
	b.gate.Init(o.policy)
	if b.treeWakeup {
		b.wakeFlag = make([]rt.Cell, b.p)
		rt.InitCells(b.wakeFlag)
	}
	b.rec = o.recorder(tree.P, false)
	b.initPoison(tree.P, o.watchdog, o.poisonNotify,
		func() {
			b.gate.Poison()
			for i := range b.wakeFlag {
				b.wakeFlag[i].Poison()
			}
		},
		func() {
			for i := range b.counters {
				c := &b.counters[i]
				c.mu.Lock()
				c.count = 0
				c.mu.Unlock()
			}
			for i := range b.wakeFlag {
				b.wakeFlag[i].Reset()
			}
			b.gate.Unpoison()
		})
	return b
}

// Participants returns P.
func (b *TreeBarrier) Participants() int { return b.p }

// Degree returns the tree's construction degree.
func (b *TreeBarrier) Degree() int { return b.tree.Degree }

// Levels returns the number of counter levels in the tree.
func (b *TreeBarrier) Levels() int { return b.tree.Levels }

// Wait blocks until all participants arrive.
func (b *TreeBarrier) Wait(id int) {
	b.Arrive(id)
	b.Await(id)
}

// Arrive performs participant id's counter ascent. If id completes the
// root counter it releases the episode before returning. On a poisoned
// barrier it is a no-op.
func (b *TreeBarrier) Arrive(id int) {
	checkID(id, b.p)
	if b.poisoned() {
		return
	}
	b.noteArrive(id)
	// The gate's generation is exactly this participant's episode index:
	// the episode cannot be released (advancing the generation) before
	// this arrival contributes to it.
	gen := b.gate.Seq()
	b.rec.Arrive(id, gen)
	b.myGen[id].V = gen
	b.ascend(b.tree.FirstCounter(id))
}

// ascend climbs the counter chain starting at counter c, releasing the
// episode if the root completes.
func (b *TreeBarrier) ascend(c int) {
	for c != topology.NoCounter {
		tc := &b.counters[c]
		tc.mu.Lock()
		tc.count++
		last := tc.count == tc.fanIn
		if last {
			tc.count = 0
		}
		tc.mu.Unlock()
		if !last {
			return
		}
		c = b.tree.Counters[c].Parent
	}
	// Root completed: measure while the arrival slots are quiescent, then
	// release everyone.
	b.rec.Release(b.gate.Seq(), rt.Extra{Degree: b.tree.Degree})
	gen := b.gate.Open()
	if b.treeWakeup {
		b.wakeFlag[0].Set(gen)
	}
}

// Await blocks participant id until the episode it arrived in completes.
func (b *TreeBarrier) Await(id int) {
	checkID(id, b.p)
	mine := b.myGen[id].V
	if b.treeWakeup {
		got := b.wakeFlag[id].AwaitAtLeast(mine+1, b.policy)
		if got == rt.PoisonValue {
			return // poison wake; siblings' flags were poisoned alongside
		}
		// Propagate the wakeup (monotone values make overlapping episodes
		// safe: a flag may carry a newer generation, which is still a
		// release of our episode's successor and therefore of ours).
		for _, child := range [2]int{2*id + 1, 2*id + 2} {
			if child < b.p {
				if cur := b.wakeFlag[child].Load(); cur < got {
					b.wakeFlag[child].Set(got)
				}
			}
		}
		return
	}
	b.gate.Await(mine)
}

// WaitCtx is Wait with cancellation: if ctx ends while the wait is in
// flight the barrier is poisoned, and the poison error is returned.
func (b *TreeBarrier) WaitCtx(ctx context.Context, id int) error {
	checkID(id, b.p)
	return b.waitCtx(ctx, func() { b.Wait(id) })
}

// AwaitCtx is Await with cancellation, with WaitCtx's poison semantics.
func (b *TreeBarrier) AwaitCtx(ctx context.Context, id int) error {
	checkID(id, b.p)
	return b.waitCtx(ctx, func() { b.Await(id) })
}

var _ PhasedBarrier = (*TreeBarrier)(nil)
var _ ContextBarrier = (*TreeBarrier)(nil)
