package softbarrier

import (
	"context"
	"sync"

	rt "softbarrier/internal/runtime"
	"softbarrier/internal/topology"
)

// TreeBarrier is a software combining-tree barrier: a tree of counters,
// each protected by its own lock, so that at most degree+1 participants
// ever contend on the same cache line. A participant updates its first
// counter; whoever completes a counter's fan-in proceeds to the parent,
// and completing the root releases the episode.
//
// Construct with NewCombiningTree (participants at the leaves only, the
// Yew/Tzeng/Lawrie structure) or NewMCSTree (one participant attached to
// every counter, the Mellor-Crummey & Scott structure the paper's §5
// builds on).
//
// The release path runs on the shared internal/runtime core: waiters
// follow the configured spin→yield→park policy, and WithTreeWakeup swaps
// the broadcast gate for an MCS-style binary wakeup tree whose flags park
// the same way.
type TreeBarrier struct {
	p        int
	tree     *topology.Tree
	counters []treeCounter

	gate  rt.Gate
	myGen []rt.PaddedUint64

	// Tree wakeup (optional): instead of the broadcast gate, the releaser
	// wakes participant 0, and each woken participant wakes its two
	// children in a binary heap layout — the MCS-style wakeup tree that
	// bounds the number of waiters per flag.
	treeWakeup bool
	policy     rt.WaitPolicy
	wakeFlag   []rt.Cell

	rec *rt.Recorder
	red *rt.Reducer // payload reducer; nil without WithCollective
	poisonCore
}

// treeCounter is one tree node's arrival counter.
type treeCounter struct {
	mu    sync.Mutex
	count int
	fanIn int
	_     [32]byte // separate counters across cache lines
}

// NewCombiningTree returns a classic combining-tree barrier for p
// participants with the given tree degree (≥2). Degree ≥ p degenerates to
// a flat central counter.
func NewCombiningTree(p, degree int, opts ...Option) *TreeBarrier {
	return newTreeBarrier(topology.NewClassic(p, degree), opts)
}

// NewMCSTree returns an MCS-style tree barrier for p participants with the
// given degree: every counter has one statically attached participant,
// which shortens the average path (§4).
func NewMCSTree(p, degree int, opts ...Option) *TreeBarrier {
	return newTreeBarrier(topology.NewMCS(p, degree), opts)
}

func newTreeBarrier(tree *topology.Tree, opts []Option) *TreeBarrier {
	o := applyOptions(opts)
	tree = placeTree(tree, o.placeOrder)
	b := &TreeBarrier{
		p:          tree.P,
		tree:       tree,
		counters:   make([]treeCounter, len(tree.Counters)),
		myGen:      make([]rt.PaddedUint64, tree.P),
		treeWakeup: o.treeWakeup,
		policy:     o.policy,
	}
	for i := range b.counters {
		b.counters[i].fanIn = tree.Counters[i].FanIn()
	}
	b.gate.Init(o.policy)
	if b.treeWakeup {
		b.wakeFlag = make([]rt.Cell, b.p)
		rt.InitCells(b.wakeFlag)
	}
	b.rec = o.recorder(tree.P, false)
	b.red = o.reducer(tree.P, len(tree.Counters))
	b.initPoison(tree.P, o.watchdog, o.poisonNotify,
		func() {
			b.gate.Poison()
			for i := range b.wakeFlag {
				b.wakeFlag[i].Poison()
			}
		},
		func() {
			for i := range b.counters {
				c := &b.counters[i]
				c.mu.Lock()
				c.count = 0
				c.mu.Unlock()
			}
			for i := range b.wakeFlag {
				b.wakeFlag[i].Reset()
			}
			if b.red != nil {
				b.red.Reset()
			}
			b.gate.Unpoison()
		})
	return b
}

// Participants returns P.
func (b *TreeBarrier) Participants() int { return b.p }

// Degree returns the tree's construction degree.
func (b *TreeBarrier) Degree() int { return b.tree.Degree }

// Levels returns the number of counter levels in the tree.
func (b *TreeBarrier) Levels() int { return b.tree.Levels }

// Depths returns each participant's synchronization path length — how
// many counters it updates per episode. The tree is immutable, so Depths
// is safe at any time; index k of the result is participant k's depth.
// With a placement applied (WithPlacement), the laggiest-ranked
// participants show the smallest depths.
func (b *TreeBarrier) Depths() []int {
	d := make([]int, b.p)
	for id := range d {
		d[id] = b.tree.Depth(b.tree.FirstCounter(id))
	}
	return d
}

// LagsInto reads the given episode's per-participant arrival lags
// (seconds behind the episode's earliest arrival) into dst, which is
// reused when it has the capacity. Like the recorder it wraps, it is
// releaser-only before the episode's release; it returns nil on a
// barrier built without an observer.
func (b *TreeBarrier) LagsInto(episode uint64, dst []float64) []float64 {
	return b.rec.LagsInto(episode, dst)
}

// Wait blocks until all participants arrive.
func (b *TreeBarrier) Wait(id int) {
	b.Arrive(id)
	b.Await(id)
}

// Arrive performs participant id's counter ascent. If id completes the
// root counter it releases the episode before returning. On a poisoned
// barrier it is a no-op.
func (b *TreeBarrier) Arrive(id int) {
	checkID(id, b.p)
	if b.poisoned() {
		return
	}
	b.noteArrive(id)
	// The gate's generation is exactly this participant's episode index:
	// the episode cannot be released (advancing the generation) before
	// this arrival contributes to it.
	gen := b.gate.Seq()
	b.rec.Arrive(id, gen)
	b.myGen[id].V = gen
	b.ascend(b.tree.FirstCounter(id))
}

// ascend climbs the counter chain starting at counter c, releasing the
// episode if the root completes.
func (b *TreeBarrier) ascend(c int) {
	for c != topology.NoCounter {
		tc := &b.counters[c]
		tc.mu.Lock()
		tc.count++
		last := tc.count == tc.fanIn
		if last {
			tc.count = 0
		}
		tc.mu.Unlock()
		if !last {
			return
		}
		c = b.tree.Counters[c].Parent
	}
	// Root completed: measure while the arrival slots are quiescent, then
	// release everyone.
	b.rec.Release(b.gate.Seq(), rt.Extra{Degree: b.tree.Degree})
	gen := b.gate.Open()
	if b.treeWakeup {
		b.wakeFlag[0].Set(gen)
	}
}

// AllReduce contributes in, completes one barrier episode, and copies the
// reduction of all p contributions into out (out may alias in, or be nil
// to discard). It returns ErrNoCollective on a barrier built without
// WithCollective, and the poison cause if the episode was aborted. Every
// participant must make the same collective call for the episode.
func (b *TreeBarrier) AllReduce(id int, in, out []byte) error {
	if b.red == nil {
		return ErrNoCollective
	}
	gen, ok := b.arriveColl(id, in, reduceMode(b.red.Op()), 0)
	return b.finishColl(id, gen, ok, out)
}

// Reduce is AllReduce with the result delivered only to root; the other
// participants' out arguments are ignored.
func (b *TreeBarrier) Reduce(id, root int, in, out []byte) error {
	if b.red == nil {
		return ErrNoCollective
	}
	checkID(root, b.p)
	gen, ok := b.arriveColl(id, in, reduceMode(b.red.Op()), 0)
	if id != root {
		out = nil
	}
	return b.finishColl(id, gen, ok, out)
}

// Broadcast completes one episode delivering root's buf into every other
// participant's buf (root's own buf is left untouched). buf must be
// Op.Width bytes for every participant.
func (b *TreeBarrier) Broadcast(id, root int, buf []byte) error {
	if b.red == nil {
		return ErrNoCollective
	}
	checkID(root, b.p)
	gen, ok := b.arriveColl(id, buf, collBcast, root)
	if id == root {
		buf = nil
	}
	return b.finishColl(id, gen, ok, buf)
}

// ArriveReduce is the fuzzy half of AllReduce/Reduce: it contributes in
// and performs the ascent without waiting — do slack work, then collect
// the result with AwaitResult. It returns ErrNoCollective on a barrier
// built without WithCollective; on a poisoned barrier it is a no-op (the
// matching AwaitResult reports the cause).
func (b *TreeBarrier) ArriveReduce(id int, in []byte) error {
	if b.red == nil {
		return ErrNoCollective
	}
	b.arriveColl(id, in, reduceMode(b.red.Op()), 0)
	return nil
}

// AwaitResult blocks until the episode ArriveReduce contributed to
// completes and copies its reduction into out (nil discards it).
func (b *TreeBarrier) AwaitResult(id int, out []byte) error {
	if b.red == nil {
		return ErrNoCollective
	}
	checkID(id, b.p)
	return b.finishColl(id, b.myGen[id].V, true, out)
}

// Reduced returns the published reduction of the given episode, for
// coordinators that drive the barrier through ArriveReduce on behalf of
// remote participants (internal/netbarrier). The slice is read-only and
// valid until the episode two generations later is published; it is nil
// without WithCollective.
func (b *TreeBarrier) Reduced(episode uint64) []byte {
	if b.red == nil {
		return nil
	}
	return b.red.Result(episode)
}

// arriveColl is Arrive carrying a payload: mode selects how the
// contribution travels (greedy fold during the ascent, deposit cell for
// the releaser's id-order fold, or broadcast root deposit). It reports
// the episode generation and whether the contribution was actually made
// (false on a poisoned barrier).
func (b *TreeBarrier) arriveColl(id int, in []byte, mode uint8, root int) (gen uint64, ok bool) {
	checkID(id, b.p)
	checkContribution(b.red, in)
	if b.poisoned() {
		return 0, false
	}
	b.noteArrive(id)
	gen = b.gate.Seq()
	b.rec.Arrive(id, gen)
	b.myGen[id].V = gen
	switch mode {
	case collCells:
		b.red.Deposit(gen, id, in)
	case collBcast:
		if id == root {
			b.red.Deposit(gen, id, in)
		}
	}
	var carry []byte
	if mode == collGreedy {
		carry = in
	}
	b.ascendColl(b.tree.FirstCounter(id), carry, mode, root, gen)
	return gen, true
}

// ascendColl is ascend with the payload fold threaded through: in greedy
// mode each counter's critical section additionally folds the carry, and
// the root completion publishes the episode's result before the release.
func (b *TreeBarrier) ascendColl(c int, carry []byte, mode uint8, root int, gen uint64) {
	for c != topology.NoCounter {
		tc := &b.counters[c]
		tc.mu.Lock()
		if mode == collGreedy {
			b.red.FoldNode(c, carry)
		}
		tc.count++
		last := tc.count == tc.fanIn
		if last {
			tc.count = 0
			if mode == collGreedy {
				carry = b.red.TakeNode(c)
			}
		}
		tc.mu.Unlock()
		if !last {
			return
		}
		c = b.tree.Counters[c].Parent
	}
	// Root completed: publish the episode's result while the cells and
	// accumulators are quiescent, then measure and release as usual.
	switch mode {
	case collGreedy:
		b.red.PublishCarry(gen, carry)
	case collCells:
		b.red.FinishCells(gen, b.p)
	case collBcast:
		b.red.PublishCell(gen, root)
	}
	b.rec.Release(b.gate.Seq(), rt.Extra{Degree: b.tree.Degree})
	g := b.gate.Open()
	if b.treeWakeup {
		b.wakeFlag[0].Set(g)
	}
}

// finishColl awaits the episode and copies its result out. contributed is
// false when the arrival was a poisoned no-op — then there is no result
// to copy, and Err carries the cause.
func (b *TreeBarrier) finishColl(id int, gen uint64, contributed bool, out []byte) error {
	b.Await(id)
	if err := b.Err(); err != nil {
		return err
	}
	if contributed && out != nil {
		b.red.CopyResult(gen, out)
	}
	return nil
}

// Await blocks participant id until the episode it arrived in completes.
func (b *TreeBarrier) Await(id int) {
	checkID(id, b.p)
	mine := b.myGen[id].V
	if b.treeWakeup {
		got := b.wakeFlag[id].AwaitAtLeast(mine+1, b.policy)
		if got == rt.PoisonValue {
			return // poison wake; siblings' flags were poisoned alongside
		}
		// Propagate the wakeup (monotone values make overlapping episodes
		// safe: a flag may carry a newer generation, which is still a
		// release of our episode's successor and therefore of ours).
		for _, child := range [2]int{2*id + 1, 2*id + 2} {
			if child < b.p {
				if cur := b.wakeFlag[child].Load(); cur < got {
					b.wakeFlag[child].Set(got)
				}
			}
		}
		return
	}
	b.gate.Await(mine)
}

// WaitCtx is Wait with cancellation: if ctx ends while the wait is in
// flight the barrier is poisoned, and the poison error is returned.
func (b *TreeBarrier) WaitCtx(ctx context.Context, id int) error {
	checkID(id, b.p)
	return b.waitCtx(ctx, func() { b.Wait(id) })
}

// AwaitCtx is Await with cancellation, with WaitCtx's poison semantics.
func (b *TreeBarrier) AwaitCtx(ctx context.Context, id int) error {
	checkID(id, b.p)
	return b.waitCtx(ctx, func() { b.Await(id) })
}

var _ PhasedBarrier = (*TreeBarrier)(nil)
var _ ContextBarrier = (*TreeBarrier)(nil)
var _ Collective = (*TreeBarrier)(nil)
