package softbarrier

import (
	"testing"
	"testing/quick"

	"softbarrier/internal/barriersim"
	"softbarrier/internal/stats"
	"softbarrier/internal/topology"
)

// Differential test: the runtime DynamicBarrier and the simulator
// implement the same placement algorithm, so driving both with identical
// arrival orders must produce identical placements.
//
// Arrive never blocks (a non-final participant just returns), so a single
// goroutine can execute a whole episode deterministically by calling
// Arrive in arrival order — giving us exact control over the completion
// order that the swaps depend on.

// driveRuntime executes the episodes' arrival orders on a runtime barrier
// and returns each participant's final first counter (pending evictions
// resolved).
func driveRuntime(tree *topology.Tree, orders [][]int) []int {
	b := NewDynamicFromTree(tree)
	for _, order := range orders {
		for _, proc := range order {
			b.Arrive(proc)
		}
	}
	out := make([]int, b.p)
	for id := range out {
		c := b.FirstCounterOf(id)
		if dc := &b.counters[c]; dc.evicted == id {
			c = dc.destination
		}
		out[id] = c
	}
	return out
}

// driveSim executes the same orders on the simulator, spacing arrivals so
// the service order equals the arrival order (gaps ≫ t_c remove overlap
// ambiguity at distinct counters; same-counter order follows arrival
// order either way).
func driveSim(tree *topology.Tree, orders [][]int) []int {
	s := barriersim.New(tree, barriersim.Config{Dynamic: true})
	p := tree.P
	arr := make([]float64, p)
	for _, order := range orders {
		for pos, proc := range order {
			// Huge spacing: every update completes before the next
			// processor arrives, exactly like the sequential runtime
			// drive.
			arr[proc] = float64(pos) * 1e6 * barriersim.DefaultTc
		}
		s.Episode(arr)
	}
	out := make([]int, p)
	for id := range out {
		out[id] = s.Tree().FirstCounter(id)
	}
	return out
}

func ordersFromSeed(p, episodes int, seed uint64) [][]int {
	r := stats.NewRNG(seed)
	orders := make([][]int, episodes)
	for k := range orders {
		orders[k] = r.Perm(p)
	}
	return orders
}

func TestDynamicBarrierMatchesSimulatorPlacement(t *testing.T) {
	configs := []struct {
		name string
		mk   func() *topology.Tree
	}{
		{"mcs-16-d2", func() *topology.Tree { return topology.NewMCS(16, 2) }},
		{"mcs-24-d4", func() *topology.Tree { return topology.NewMCS(24, 4) }},
		{"mcs-64-d4", func() *topology.Tree { return topology.NewMCS(64, 4) }},
		{"ring-2x8-d2", func() *topology.Tree { return topology.NewRing([]int{8, 8}, 2) }},
		{"ring-3x6-d4", func() *topology.Tree { return topology.NewRing([]int{6, 6, 6}, 4) }},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			p := cfg.mk().P
			for seed := uint64(0); seed < 8; seed++ {
				orders := ordersFromSeed(p, 6, 100+seed)
				rt := driveRuntime(cfg.mk(), orders)
				sm := driveSim(cfg.mk(), orders)
				for id := range rt {
					if rt[id] != sm[id] {
						t.Fatalf("seed %d: participant %d placed at %d (runtime) vs %d (simulator)",
							seed, id, rt[id], sm[id])
					}
				}
			}
		})
	}
}

// Property form over random shapes and longer runs.
func TestDynamicPlacementDifferentialProperty(t *testing.T) {
	f := func(seed uint32, pRaw, dRaw uint8, episodes uint8) bool {
		p := 4 + int(pRaw)%40
		d := 2 + int(dRaw)%4
		k := 1 + int(episodes)%8
		orders := ordersFromSeed(p, k, uint64(seed))
		rt := driveRuntime(topology.NewMCS(p, d), orders)
		sm := driveSim(topology.NewMCS(p, d), orders)
		for id := range rt {
			if rt[id] != sm[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
