package softbarrier

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// abortableVariants enumerates every root barrier type (plus the tree
// wakeup and ring-constrained variants) under a fixed participant count,
// so the poison / watchdog / cancellation contracts are pinned uniformly.
// The opts slice is copied before appending so table entries never alias
// each other's backing arrays.
func abortableVariants(p int, opts ...Option) []struct {
	name  string
	build func() ContextBarrier
} {
	mk := func(f func(o []Option) ContextBarrier) func() ContextBarrier {
		own := append([]Option(nil), opts...)
		return func() ContextBarrier { return f(own) }
	}
	return []struct {
		name  string
		build func() ContextBarrier
	}{
		{"central", mk(func(o []Option) ContextBarrier { return NewCentral(p, o...) })},
		{"tree-gate", mk(func(o []Option) ContextBarrier { return NewCombiningTree(p, 2, o...) })},
		{"tree-wakeup", mk(func(o []Option) ContextBarrier {
			return NewMCSTree(p, 2, append(append([]Option(nil), o...), WithTreeWakeup())...)
		})},
		{"tournament", mk(func(o []Option) ContextBarrier { return NewTournament(p, o...) })},
		{"dissemination", mk(func(o []Option) ContextBarrier { return NewDissemination(p, o...) })},
		{"dynamic", mk(func(o []Option) ContextBarrier { return NewDynamic(p, 2, o...) })},
		{"dynamic-ring", mk(func(o []Option) ContextBarrier {
			return NewDynamicRing([]int{p / 2, p - p/2}, 2, o...)
		})},
		{"adaptive", mk(func(o []Option) ContextBarrier { return NewAdaptive(p, 8, 0, o...) })},
	}
}

// runHealthyEpisodes drives n full episodes with every participant, to
// prove a barrier is (still) operational.
func runHealthyEpisodes(t *testing.T, b ContextBarrier, n int) {
	t.Helper()
	p := b.Participants()
	var wg sync.WaitGroup
	wg.Add(p)
	for id := 0; id < p; id++ {
		go func(id int) {
			defer wg.Done()
			for e := 0; e < n; e++ {
				b.Wait(id)
			}
		}(id)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("healthy episodes deadlocked")
	}
	if err := b.Err(); err != nil {
		t.Fatalf("healthy episodes poisoned the barrier: %v", err)
	}
}

// TestPoisonUnblocksWaiters is the core abort contract: participants
// parked in an episode that will never complete (one participant is
// missing) all release promptly once the barrier is poisoned, Err reports
// the cause, and every subsequent Wait returns immediately.
func TestPoisonUnblocksWaiters(t *testing.T) {
	const p = 4
	cause := errors.New("test: abandon ship")
	for _, v := range abortableVariants(p, WithWaitPolicy(WaitPolicy{})) {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			b := v.build()
			var wg sync.WaitGroup
			wg.Add(p - 1)
			for id := 0; id < p-1; id++ { // participant p-1 never arrives
				go func(id int) {
					defer wg.Done()
					b.Wait(id)
				}(id)
			}
			time.Sleep(5 * time.Millisecond) // let the waiters park
			b.Poison(cause)

			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("poison did not release the parked waiters")
			}
			if err := b.Err(); !errors.Is(err, cause) {
				t.Fatalf("Err() = %v, want %v", err, cause)
			}

			// All future waits — including the straggler's — return at once.
			quick := make(chan struct{})
			go func() {
				for id := 0; id < p; id++ {
					b.Wait(id)
				}
				close(quick)
			}()
			select {
			case <-quick:
			case <-time.After(5 * time.Second):
				t.Fatal("Wait on a poisoned barrier blocked")
			}

			// First error wins: a second Poison must not overwrite it.
			b.Poison(errors.New("test: too late"))
			if err := b.Err(); !errors.Is(err, cause) {
				t.Fatalf("second Poison overwrote the error: %v", err)
			}
		})
	}
}

// TestPoisonResetRestoresBarrier checks that Reset at a quiescent point
// clears the poison and the barrier completes full episodes again.
func TestPoisonResetRestoresBarrier(t *testing.T) {
	const p = 4
	for _, v := range abortableVariants(p, WithWaitPolicy(WaitPolicy{})) {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			b := v.build()
			runHealthyEpisodes(t, b, 3)

			// Strand an episode, poison it, drain the waiters.
			var wg sync.WaitGroup
			wg.Add(p - 1)
			for id := 0; id < p-1; id++ {
				go func(id int) {
					defer wg.Done()
					b.Wait(id)
				}(id)
			}
			time.Sleep(2 * time.Millisecond)
			b.Poison(errors.New("test: stranded"))
			wg.Wait()

			r, ok := b.(interface{ Reset() })
			if !ok {
				t.Fatal("barrier does not expose Reset")
			}
			r.Reset()
			if err := b.Err(); err != nil {
				t.Fatalf("Err() after Reset = %v", err)
			}
			runHealthyEpisodes(t, b, 3)
		})
	}
}

// TestWaitCtxCancelPoisons checks context-aware waits: cancelling the
// context of one blocked participant poisons the whole episode, so every
// sibling (plain Wait or WaitCtx alike) releases, and the context error is
// what WaitCtx and Err report.
func TestWaitCtxCancelPoisons(t *testing.T) {
	const p = 4
	for _, v := range abortableVariants(p, WithWaitPolicy(WaitPolicy{})) {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			b := v.build()
			ctx, cancel := context.WithCancel(context.Background())
			errs := make([]error, p-1)
			var wg sync.WaitGroup
			wg.Add(p - 1) // participant p-1 never arrives
			for id := 0; id < p-1; id++ {
				go func(id int) {
					defer wg.Done()
					errs[id] = b.WaitCtx(ctx, id)
				}(id)
			}
			time.Sleep(5 * time.Millisecond) // let the waiters block
			cancel()

			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("cancellation did not release the waiters")
			}
			for id, err := range errs {
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("worker %d: WaitCtx = %v, want context.Canceled", id, err)
				}
			}
			if err := b.Err(); !errors.Is(err, context.Canceled) {
				t.Fatalf("Err() = %v, want context.Canceled", err)
			}
		})
	}
}

// TestWaitCtxPreCancelled checks that a context that is already dead
// poisons the barrier without ever entering the wait: the caller was never
// going to arrive, so letting the others park would strand them.
func TestWaitCtxPreCancelled(t *testing.T) {
	const p = 4
	for _, v := range abortableVariants(p, WithWaitPolicy(WaitPolicy{})) {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			b := v.build()
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if err := b.WaitCtx(ctx, 0); !errors.Is(err, context.Canceled) {
				t.Fatalf("WaitCtx(dead ctx) = %v, want context.Canceled", err)
			}
			if err := b.Err(); !errors.Is(err, context.Canceled) {
				t.Fatalf("Err() = %v, want context.Canceled", err)
			}
		})
	}
}

// TestWaitCtxCompletesNormally checks the non-cancellation path: with
// every participant arriving, WaitCtx behaves exactly like Wait and
// returns nil with the context still live.
func TestWaitCtxCompletesNormally(t *testing.T) {
	const p = 4
	for _, v := range abortableVariants(p, WithWaitPolicy(WaitPolicy{})) {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			b := v.build()
			ctx := context.Background()
			for e := 0; e < 3; e++ {
				var wg sync.WaitGroup
				wg.Add(p)
				errs := make([]error, p)
				for id := 0; id < p; id++ {
					go func(id int) {
						defer wg.Done()
						errs[id] = b.WaitCtx(ctx, id)
					}(id)
				}
				wg.Wait()
				for id, err := range errs {
					if err != nil {
						t.Fatalf("episode %d worker %d: WaitCtx = %v", e, id, err)
					}
				}
			}
			if err := b.Err(); err != nil {
				t.Fatalf("Err() = %v after healthy WaitCtx episodes", err)
			}
		})
	}
}

// TestWatchdogPoisonsStalledEpisode checks the deadlock watchdog: healthy
// episodes never trip it, but an episode missing one participant is
// poisoned with a StallError naming exactly the absent ids, releasing
// everyone parked.
func TestWatchdogPoisonsStalledEpisode(t *testing.T) {
	const p = 4
	const missing = 3
	for _, v := range abortableVariants(p, WithWaitPolicy(WaitPolicy{}), WithWatchdog(75*time.Millisecond)) {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			b := v.build()
			defer b.(interface{ Close() }).Close()
			runHealthyEpisodes(t, b, 3)

			var wg sync.WaitGroup
			wg.Add(p - 1)
			for id := 0; id < p; id++ {
				if id == missing {
					continue
				}
				go func(id int) {
					defer wg.Done()
					b.Wait(id)
				}(id)
			}
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("watchdog never released the stalled episode")
			}
			var stall *StallError
			if err := b.Err(); !errors.As(err, &stall) {
				t.Fatalf("Err() = %v, want a *StallError", err)
			}
			if len(stall.Missing) != 1 || stall.Missing[0] != missing {
				t.Fatalf("StallError.Missing = %v, want [%d]", stall.Missing, missing)
			}
			if stall.Waited <= 0 {
				t.Fatalf("StallError.Waited = %v, want > 0", stall.Waited)
			}
		})
	}
}

// TestWatchdogIdleBarrierNotPoisoned checks the flip side: a barrier that
// is simply idle (no episode in flight) must never be poisoned, no matter
// how long the watchdog watches it.
func TestWatchdogIdleBarrierNotPoisoned(t *testing.T) {
	const p = 4
	for _, v := range abortableVariants(p, WithWaitPolicy(WaitPolicy{}), WithWatchdog(20*time.Millisecond)) {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			b := v.build()
			defer b.(interface{ Close() }).Close()
			runHealthyEpisodes(t, b, 2)
			time.Sleep(150 * time.Millisecond) // many watchdog periods of idleness
			if err := b.Err(); err != nil {
				t.Fatalf("idle barrier poisoned: %v", err)
			}
			runHealthyEpisodes(t, b, 2)
		})
	}
}

// TestGroupPoisonOnPanicHeals checks the Group rewiring: a panicking
// worker poisons the barrier (so parked siblings release instead of
// deadlocking), the panic re-raises from Run, and the barrier is healed —
// the same Group runs cleanly afterwards.
func TestGroupPoisonOnPanicHeals(t *testing.T) {
	const p, steps = 4, 5
	for _, v := range abortableVariants(p, WithWaitPolicy(WaitPolicy{})) {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			b := v.build()
			g := NewGroup(b)
			func() {
				defer func() {
					if r := recover(); r != "kaboom" {
						t.Fatalf("recovered %v, want the worker's panic", r)
					}
				}()
				g.Run(steps, func(id, step int) {
					if id == 2 && step == 1 {
						panic("kaboom")
					}
				})
				t.Fatal("Run returned instead of panicking")
			}()
			if err := b.Err(); err != nil {
				t.Fatalf("barrier still poisoned after Run returned: %v", err)
			}
			g.Run(steps, func(id, step int) {}) // group is reusable
		})
	}
}

// TestGroupPoisonOnErrorHeals is the RunErr analogue: a failing worker
// poisons the barrier mid-run, the error comes back, the barrier heals.
func TestGroupPoisonOnErrorHeals(t *testing.T) {
	const p, steps = 4, 5
	wantErr := errors.New("test: worker failure")
	for _, v := range abortableVariants(p, WithWaitPolicy(WaitPolicy{})) {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			b := v.build()
			g := NewGroup(b)
			err := g.RunErr(steps, func(id, step int) error {
				if id == 1 && step == 2 {
					return wantErr
				}
				return nil
			})
			if !errors.Is(err, wantErr) {
				t.Fatalf("RunErr = %v, want %v", err, wantErr)
			}
			if err := b.Err(); err != nil {
				t.Fatalf("barrier still poisoned after RunErr: %v", err)
			}
			if err := g.RunErr(steps, func(id, step int) error { return nil }); err != nil {
				t.Fatalf("healed group failed: %v", err)
			}
		})
	}
}

// TestGroupExternalPoisonPropagates checks that a poison the group did not
// inject itself — here, applied before the run even starts — is treated as
// fatal: RunErr returns it, and it stays sticky (no heal).
func TestGroupExternalPoisonPropagates(t *testing.T) {
	const p, steps = 4, 5
	cause := errors.New("test: external abort")
	for _, v := range abortableVariants(p, WithWaitPolicy(WaitPolicy{})) {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			b := v.build()
			b.Poison(cause)
			g := NewGroup(b)
			if err := g.RunErr(steps, func(id, step int) error { return nil }); !errors.Is(err, cause) {
				t.Fatalf("RunErr = %v, want the external poison %v", err, cause)
			}
			if err := b.Err(); !errors.Is(err, cause) {
				t.Fatalf("external poison was healed away: %v", err)
			}
		})
	}
}

// TestGroupExternalPoisonPanicsRun is the Run analogue of the external
// poison contract: mid-run poison from outside stops the pool and
// re-raises as a panic carrying the poison error.
func TestGroupExternalPoisonPanicsRun(t *testing.T) {
	const p = 4
	cause := errors.New("test: operator abort")
	for _, v := range abortableVariants(p, WithWaitPolicy(WaitPolicy{})) {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			b := v.build()
			g := NewGroup(b)
			defer func() {
				r := recover()
				err, ok := r.(error)
				if !ok || !errors.Is(err, cause) {
					t.Fatalf("recovered %v, want the poison error", r)
				}
			}()
			g.Run(1000, func(id, step int) {
				if id == 0 && step == 3 {
					b.Poison(cause)
				}
			})
			t.Fatal("Run returned despite external poison")
		})
	}
}

// TestPoisonConcurrentWithArrivals hammers Poison against a full episode
// load: p participants loop Wait while an outside goroutine poisons
// mid-flight. Nothing may deadlock and every participant must exit.
// Primarily a -race target.
func TestPoisonConcurrentWithArrivals(t *testing.T) {
	const p = 4
	for _, v := range abortableVariants(p) { // default spin/yield/park policy
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			b := v.build()
			var wg sync.WaitGroup
			wg.Add(p)
			for id := 0; id < p; id++ {
				go func(id int) {
					defer wg.Done()
					for e := 0; e < 200; e++ {
						b.Wait(id)
						if b.Err() != nil {
							return
						}
					}
				}(id)
			}
			go func() {
				time.Sleep(500 * time.Microsecond)
				b.Poison(fmt.Errorf("test: concurrent poison"))
			}()
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("concurrent poison deadlocked the pool")
			}
		})
	}
}

// TestPoisonCauseRoundTrip pins the wire codec: causes keep their
// identity across EncodePoisonCause / DecodePoisonCause, so errors.Is and
// errors.As work on the far side of a network hop exactly as they do
// in-process.
func TestPoisonCauseRoundTrip(t *testing.T) {
	st := &StallError{Missing: []int{3, 17}, Waited: 1500 * time.Millisecond}
	var back *StallError
	if got := DecodePoisonCause(EncodePoisonCause(nil, st)); !errors.As(got, &back) {
		t.Fatalf("stall cause decoded to %T (%v), want *StallError", got, got)
	}
	if len(back.Missing) != 2 || back.Missing[0] != 3 || back.Missing[1] != 17 || back.Waited != st.Waited {
		t.Errorf("stall fields changed on the wire: %+v, want %+v", back, st)
	}
	// A wrapped stall still travels as a stall.
	wrapped := fmt.Errorf("episode 9: %w", st)
	if got := DecodePoisonCause(EncodePoisonCause(nil, wrapped)); !errors.As(got, &back) {
		t.Errorf("wrapped stall decoded to %T, want *StallError", got)
	}

	for _, c := range []struct {
		in   error
		want error
	}{
		{nil, ErrPoisoned},
		{ErrPoisoned, ErrPoisoned},
		{fmt.Errorf("run: %w", ErrPoisoned), ErrPoisoned},
		{context.Canceled, context.Canceled},
		{context.DeadlineExceeded, context.DeadlineExceeded},
	} {
		if got := DecodePoisonCause(EncodePoisonCause(nil, c.in)); !errors.Is(got, c.want) {
			t.Errorf("EncodePoisonCause(%v) decoded to %v, want errors.Is %v", c.in, got, c.want)
		}
	}

	generic := errors.New("worker 3 exploded")
	if got := DecodePoisonCause(EncodePoisonCause(nil, generic)); got == nil || got.Error() != generic.Error() {
		t.Errorf("generic cause decoded to %v, want message %q", got, generic.Error())
	}
}

// TestDecodePoisonCauseTotal: the decoder must never fail or panic —
// a poison channel that delivers nothing is a hang. Malformed bytes
// decode to a descriptive generic error instead.
func TestDecodePoisonCauseTotal(t *testing.T) {
	if got := DecodePoisonCause(nil); !errors.Is(got, ErrPoisoned) {
		t.Errorf("empty cause = %v, want ErrPoisoned", got)
	}
	for _, b := range [][]byte{
		{causeStall},                   // stall missing count
		{causeStall, 0, 1},             // stall missing ids
		{causeStall, 0, 1, 0, 0, 0, 5}, // stall missing waited
		{causeGeneric, 0xff, 0xff},     // generic length overruns
		{causeGeneric, 0, 1},           // generic message truncated
		{causeGeneric, 0, 1, 'a', 'b'}, // generic trailing garbage
		{0x77},                         // unknown tag
	} {
		if got := DecodePoisonCause(b); got == nil {
			t.Errorf("malformed cause %v decoded to nil", b)
		}
	}
}

// TestWithPoisonNotifyFiresOncePerPoisoning: the notify hook runs exactly
// once per poisoning no matter how many goroutines race to poison, fires
// after local waiters are woken, and arms again after Reset.
func TestWithPoisonNotifyFiresOncePerPoisoning(t *testing.T) {
	var calls atomic.Int32
	var last atomic.Value
	b := NewCombiningTree(4, 2, WithPoisonNotify(func(err error) {
		calls.Add(1)
		last.Store(err)
	}))

	cause := errors.New("first")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Poison(cause)
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("notify fired %d times for one poisoning, want 1", n)
	}
	if got := last.Load(); got != cause {
		t.Errorf("notify saw %v, want the winning cause %v", got, cause)
	}

	b.Reset()
	b.Poison(errors.New("second"))
	if n := calls.Load(); n != 2 {
		t.Errorf("notify fired %d times after Reset+Poison, want 2", n)
	}
}

// TestArrivalsSnapshot checks the exported per-participant arrival
// counters a remote coordinator reads: they count episodes per id, are
// episode-consistent at quiescent points, and Reset zeroes them.
func TestArrivalsSnapshot(t *testing.T) {
	const p, episodes = 3, 5
	b := NewCombiningTree(p, 2)
	var wg sync.WaitGroup
	for id := 0; id < p; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for e := 0; e < episodes; e++ {
				b.Wait(id)
			}
		}(id)
	}
	wg.Wait()
	counts := b.Arrivals()
	if len(counts) != p {
		t.Fatalf("Arrivals() has %d slots, want %d", len(counts), p)
	}
	for id, n := range counts {
		if n != episodes {
			t.Errorf("participant %d arrived %d times, want %d", id, n, episodes)
		}
	}
	b.Reset()
	for _, n := range b.Arrivals() {
		if n != 0 {
			t.Fatalf("Reset left arrival counts %v, want zeros", b.Arrivals())
		}
	}
}
