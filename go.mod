module softbarrier

go 1.22
