package softbarrier

import (
	"encoding/binary"
	"errors"
	"math"

	rt "softbarrier/internal/runtime"
)

// Op is an associative combining operator over fixed-width byte strings:
// the payload a collective barrier carries. See the field docs on
// internal/runtime.Op — in particular the Commutative contract, which
// selects greedy arrival-order folding during the ascent (the σ-aware
// "pre-reduce early arrivals" policy) versus the deterministic
// ascending-id fold at the root.
type Op = rt.Op

// ErrNoCollective is returned by the collective methods of a barrier that
// was built without WithCollective.
var ErrNoCollective = errors.New("softbarrier: barrier built without WithCollective")

// Collective is a barrier whose release wave carries data: the reduction
// of every participant's contribution (AllReduce), delivered to one root
// (Reduce), or one root's value fanned out to everyone (Broadcast). All
// three piggyback on the ordinary episode — a collective call is a
// barrier episode that happens to move Op.Width bytes — and may be mixed
// freely with plain Wait episodes on the same barrier, as long as all
// participants make the same call per episode.
//
// TreeBarrier, DynamicBarrier and ReconfigurableBarrier implement it when
// constructed with WithCollective.
type Collective interface {
	PhasedBarrier
	// AllReduce contributes in, waits for the episode, and copies the
	// reduction of all contributions into out (out may be in).
	AllReduce(id int, in, out []byte) error
	// Reduce is AllReduce with the result delivered only to root; other
	// participants' out is ignored.
	Reduce(id, root int, in, out []byte) error
	// Broadcast delivers root's buf to every participant's buf.
	Broadcast(id, root int, buf []byte) error
}

// Collective episode modes, threaded through the ascent in the releaser's
// stack frame: every participant of one episode must use the same mode
// (the "same call per episode" contract above), so no shared mode state
// is needed.
const (
	collGreedy uint8 = iota + 1 // commutative: fold during the ascent
	collCells                   // deposit; the releaser folds in id order
	collBcast                   // root deposits; the releaser selects its cell
)

// reduceMode picks the reduction path the op's contract allows.
func reduceMode(op Op) uint8 {
	if op.Commutative {
		return collGreedy
	}
	return collCells
}

// checkContribution enforces the contribution-width contract, which is a
// programming error like a bad participant id.
func checkContribution(red *rt.Reducer, in []byte) {
	if len(in) != red.Width() {
		panic("softbarrier: contribution length does not match the collective op's width")
	}
}

// OpSumUint64 returns uint64 addition (big-endian, wrapping): commutative,
// identity 0.
func OpSumUint64() Op {
	return Op{
		Name: "sum-u64", Width: 8, Commutative: true,
		Fold: func(dst, src []byte) {
			binary.BigEndian.PutUint64(dst, binary.BigEndian.Uint64(dst)+binary.BigEndian.Uint64(src))
		},
	}
}

// OpMinUint64 returns the uint64 minimum: commutative, identity MaxUint64.
func OpMinUint64() Op {
	ident := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	return Op{
		Name: "min-u64", Width: 8, Commutative: true, Identity: ident,
		Fold: func(dst, src []byte) {
			if binary.BigEndian.Uint64(src) < binary.BigEndian.Uint64(dst) {
				copy(dst, src)
			}
		},
	}
}

// OpMaxUint64 returns the uint64 maximum: commutative, identity 0.
func OpMaxUint64() Op {
	return Op{
		Name: "max-u64", Width: 8, Commutative: true,
		Fold: func(dst, src []byte) {
			if binary.BigEndian.Uint64(src) > binary.BigEndian.Uint64(dst) {
				copy(dst, src)
			}
		},
	}
}

// OpXorUint64 returns uint64 exclusive-or: commutative, identity 0.
func OpXorUint64() Op {
	return Op{
		Name: "xor-u64", Width: 8, Commutative: true,
		Fold: func(dst, src []byte) {
			binary.BigEndian.PutUint64(dst, binary.BigEndian.Uint64(dst)^binary.BigEndian.Uint64(src))
		},
	}
}

// OpSumFloat64 returns float64 addition over IEEE-754 bits. It is
// deliberately not marked Commutative: float addition is not associative,
// so the deterministic ascending-id fold is used and every episode's
// result is bit-for-bit the sequential fold — at the cost of skipping the
// greedy pre-reduce. Identity +0.0.
func OpSumFloat64() Op {
	return Op{
		Name: "sum-f64", Width: 8,
		Fold: func(dst, src []byte) {
			v := math.Float64frombits(binary.BigEndian.Uint64(dst)) +
				math.Float64frombits(binary.BigEndian.Uint64(src))
			binary.BigEndian.PutUint64(dst, math.Float64bits(v))
		},
	}
}

// builtinOps is the by-name registry OpByName consults. Ops cannot travel
// the wire (they are code), so a networked session configures the op by
// name on both sides — cmd/barrierd's -collective flag resolves here.
var builtinOps = map[string]func() Op{
	"sum-u64": OpSumUint64,
	"min-u64": OpMinUint64,
	"max-u64": OpMaxUint64,
	"xor-u64": OpXorUint64,
	"sum-f64": OpSumFloat64,
}

// OpByName resolves a built-in op by its wire name. It returns false for
// unknown names; OpNames lists the known ones.
func OpByName(name string) (Op, bool) {
	f, ok := builtinOps[name]
	if !ok {
		return Op{}, false
	}
	return f(), true
}

// OpNames returns the built-in op names in sorted order.
func OpNames() []string {
	names := make([]string, 0, len(builtinOps))
	for n := range builtinOps {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
