package softbarrier

import (
	"context"
	"sync/atomic"

	rt "softbarrier/internal/runtime"
	"softbarrier/internal/topology"
)

// AdaptiveBarrier is a combining-tree barrier that re-derives its own tree
// degree at run time from the measured load imbalance — the adaptation the
// paper's conclusion proposes ("barriers that would adapt their degree at
// run time to minimize their synchronization delay").
//
// Every episode the shared internal/runtime recorder measures the spread
// of participant arrival times, and the releaser folds it into the shared
// EWMA σ estimator. Every Interval episodes the participant releasing the
// barrier re-evaluates the analytic model (OptimalDegree) and, if the
// recommended degree changed, rebuilds the counter tree before releasing
// the episode — a point at which no participant can be touching the
// counters. The same measurements feed any installed Observer and, via
// MeasuredSigma, the planner's measured profiles (RecommendMeasured).
type AdaptiveBarrier struct {
	p int
	// interval is the number of episodes between degree re-evaluations.
	interval int
	// tc is the assumed counter update cost fed to the model.
	tc float64

	gate  rt.Gate
	myGen []rt.PaddedUint64

	state atomic.Pointer[adaptiveState] // replaced only before a release

	rec         *rt.Recorder      // always active: the control loop needs the spreads
	est         rt.SigmaEstimator // EWMA of per-episode arrival spread, seconds
	adaptations atomic.Uint64
	poisonCore
}

// adaptiveState is the rebuildable part: a topology plus its counters.
type adaptiveState struct {
	tree     *topology.Tree
	counters []treeCounter
	degree   int
}

// NewAdaptive returns an adaptive barrier for p participants, starting at
// degree 4 (the classic simultaneous-arrival optimum), re-evaluating every
// interval episodes (≥1), assuming counter update cost tc seconds (0
// selects the paper's 20µs — pass a measured value for real deployments).
func NewAdaptive(p, interval int, tc float64, opts ...Option) *AdaptiveBarrier {
	if p < 1 {
		panic("softbarrier: need at least one participant")
	}
	if interval < 1 {
		panic("softbarrier: adaptation interval must be ≥ 1")
	}
	if tc == 0 {
		tc = 20e-6
	}
	if tc < 0 {
		panic("softbarrier: negative counter update cost")
	}
	o := applyOptions(opts)
	b := &AdaptiveBarrier{
		p:        p,
		interval: interval,
		tc:       tc,
		myGen:    make([]rt.PaddedUint64, p),
	}
	b.gate.Init(o.policy)
	b.rec = o.recorder(p, true)
	b.est.Init(rt.DefaultSigmaWeight)
	b.state.Store(newAdaptiveState(p, 4))
	b.initPoison(p, o.watchdog, o.poisonNotify,
		func() { b.gate.Poison() },
		func() {
			st := b.state.Load()
			for i := range st.counters {
				c := &st.counters[i]
				c.mu.Lock()
				c.count = 0
				c.mu.Unlock()
			}
			b.gate.Unpoison()
		})
	return b
}

func newAdaptiveState(p, degree int) *adaptiveState {
	tree := topology.NewClassic(p, degree)
	st := &adaptiveState{tree: tree, counters: make([]treeCounter, len(tree.Counters)), degree: degree}
	for i := range st.counters {
		st.counters[i].fanIn = tree.Counters[i].FanIn()
	}
	return st
}

// Participants returns P.
func (b *AdaptiveBarrier) Participants() int { return b.p }

// Degree returns the current tree degree.
func (b *AdaptiveBarrier) Degree() int { return b.state.Load().degree }

// Sigma returns the current arrival-spread estimate in seconds.
func (b *AdaptiveBarrier) Sigma() float64 { return b.est.Sigma() }

// MeasuredSigma implements SigmaSource: the live σ estimate and the number
// of episodes it is based on, for feeding back into the planner.
func (b *AdaptiveBarrier) MeasuredSigma() (sigma float64, episodes uint64) {
	return b.est.Sigma(), b.est.Episodes()
}

// Adaptations returns how many times the barrier has rebuilt its tree.
func (b *AdaptiveBarrier) Adaptations() uint64 { return b.adaptations.Load() }

// Wait blocks until all participants arrive.
func (b *AdaptiveBarrier) Wait(id int) {
	b.Arrive(id)
	b.Await(id)
}

// Arrive records the arrival time and performs the counter ascent,
// adapting and releasing the episode if id completes the root. On a
// poisoned barrier it is a no-op.
func (b *AdaptiveBarrier) Arrive(id int) {
	checkID(id, b.p)
	if b.poisoned() {
		return
	}
	b.noteArrive(id)
	gen := b.gate.Seq()
	b.rec.Arrive(id, gen)
	b.myGen[id].V = gen

	st := b.state.Load()
	c := st.tree.FirstCounter(id)
	for c != topology.NoCounter {
		tc := &st.counters[c]
		tc.mu.Lock()
		tc.count++
		last := tc.count == tc.fanIn
		if last {
			tc.count = 0
		}
		tc.mu.Unlock()
		if !last {
			return
		}
		c = st.tree.Counters[c].Parent
	}
	b.releaseAndMaybeAdapt(st)
}

// releaseAndMaybeAdapt runs on the participant that completed the root: a
// quiescent point for the counters (every participant has finished its
// ascent). It folds the measured spread into the σ estimate, rebuilds the
// tree if due, emits the episode's telemetry, and releases the episode.
func (b *AdaptiveBarrier) releaseAndMaybeAdapt(st *adaptiveState) {
	m, _ := b.rec.Measure(b.gate.Seq())
	b.est.Observe(m.Spread)
	if b.est.Episodes()%uint64(b.interval) == 0 {
		if d := OptimalDegree(b.p, b.est.Sigma(), b.tc); d != st.degree {
			b.state.Store(newAdaptiveState(b.p, d))
			b.adaptations.Add(1)
		}
	}
	b.rec.Emit(m, rt.Extra{Adaptations: b.adaptations.Load(), Degree: b.Degree()})
	b.gate.Open()
}

// Await blocks participant id until the episode it arrived in completes
// or the barrier is poisoned.
func (b *AdaptiveBarrier) Await(id int) {
	checkID(id, b.p)
	b.gate.Await(b.myGen[id].V)
}

// WaitCtx is Wait with cancellation: if ctx ends while the wait is in
// flight the barrier is poisoned, and the poison error is returned.
func (b *AdaptiveBarrier) WaitCtx(ctx context.Context, id int) error {
	checkID(id, b.p)
	return b.waitCtx(ctx, func() { b.Wait(id) })
}

// AwaitCtx is Await with cancellation, with WaitCtx's poison semantics.
func (b *AdaptiveBarrier) AwaitCtx(ctx context.Context, id int) error {
	checkID(id, b.p)
	return b.waitCtx(ctx, func() { b.Await(id) })
}

var _ PhasedBarrier = (*AdaptiveBarrier)(nil)
var _ ContextBarrier = (*AdaptiveBarrier)(nil)
