package softbarrier

import (
	"sync"
	"sync/atomic"
	"time"

	"softbarrier/internal/stats"
	"softbarrier/internal/topology"
)

// AdaptiveBarrier is a combining-tree barrier that re-derives its own tree
// degree at run time from the measured load imbalance — the adaptation the
// paper's conclusion proposes ("barriers that would adapt their degree at
// run time to minimize their synchronization delay").
//
// Every episode it measures the spread of participant arrival times and
// folds it into an exponentially weighted estimate of σ. Every Interval
// episodes the participant releasing the barrier re-evaluates the analytic
// model (OptimalDegree) and, if the recommended degree changed, rebuilds
// the counter tree before releasing the episode — a point at which no
// participant can be touching the counters.
type AdaptiveBarrier struct {
	p int
	// Interval is the number of episodes between degree re-evaluations.
	interval int
	// tc is the assumed counter update cost fed to the model.
	tc float64

	relMu   sync.Mutex
	relCond *sync.Cond
	gen     uint64
	myGen   []paddedU64

	state   atomic.Pointer[adaptiveState] // replaced only before a release
	arrival []paddedI64

	episodes    int
	sigma       float64 // EWMA of per-episode arrival spread, seconds
	adaptations uint64
	now         func() int64 // nanosecond clock, replaceable in tests
}

// adaptiveState is the rebuildable part: a topology plus its counters.
type adaptiveState struct {
	tree     *topology.Tree
	counters []treeCounter
	degree   int
}

// paddedI64 avoids false sharing between per-participant arrival slots.
type paddedI64 struct {
	v int64
	_ [56]byte
}

// sigmaEWMAWeight is the weight of the newest episode's spread in the σ
// estimate.
const sigmaEWMAWeight = 0.2

// NewAdaptive returns an adaptive barrier for p participants, starting at
// degree 4 (the classic simultaneous-arrival optimum), re-evaluating every
// interval episodes (≥1), assuming counter update cost tc seconds (0
// selects the paper's 20µs — pass a measured value for real deployments).
func NewAdaptive(p, interval int, tc float64) *AdaptiveBarrier {
	if p < 1 {
		panic("softbarrier: need at least one participant")
	}
	if interval < 1 {
		panic("softbarrier: adaptation interval must be ≥ 1")
	}
	if tc == 0 {
		tc = 20e-6
	}
	if tc < 0 {
		panic("softbarrier: negative counter update cost")
	}
	b := &AdaptiveBarrier{
		p:        p,
		interval: interval,
		tc:       tc,
		myGen:    make([]paddedU64, p),
		arrival:  make([]paddedI64, p),
		now:      func() int64 { return time.Now().UnixNano() },
	}
	b.relCond = sync.NewCond(&b.relMu)
	b.state.Store(newAdaptiveState(p, 4))
	return b
}

func newAdaptiveState(p, degree int) *adaptiveState {
	tree := topology.NewClassic(p, degree)
	st := &adaptiveState{tree: tree, counters: make([]treeCounter, len(tree.Counters)), degree: degree}
	for i := range st.counters {
		st.counters[i].fanIn = tree.Counters[i].FanIn()
	}
	return st
}

// Participants returns P.
func (b *AdaptiveBarrier) Participants() int { return b.p }

// Degree returns the current tree degree.
func (b *AdaptiveBarrier) Degree() int { return b.state.Load().degree }

// Sigma returns the current arrival-spread estimate in seconds.
func (b *AdaptiveBarrier) Sigma() float64 {
	b.relMu.Lock()
	defer b.relMu.Unlock()
	return b.sigma
}

// Adaptations returns how many times the barrier has rebuilt its tree.
func (b *AdaptiveBarrier) Adaptations() uint64 { return atomic.LoadUint64(&b.adaptations) }

// Wait blocks until all participants arrive.
func (b *AdaptiveBarrier) Wait(id int) {
	b.Arrive(id)
	b.Await(id)
}

// Arrive records the arrival time and performs the counter ascent,
// adapting and releasing the episode if id completes the root.
func (b *AdaptiveBarrier) Arrive(id int) {
	checkID(id, b.p)
	b.relMu.Lock()
	b.myGen[id].v = b.gen
	b.relMu.Unlock()
	b.arrival[id].v = b.now()

	st := b.state.Load()
	c := st.tree.FirstCounter(id)
	for c != topology.NoCounter {
		tc := &st.counters[c]
		tc.mu.Lock()
		tc.count++
		last := tc.count == tc.fanIn
		if last {
			tc.count = 0
		}
		tc.mu.Unlock()
		if !last {
			return
		}
		c = st.tree.Counters[c].Parent
	}
	b.releaseAndMaybeAdapt(st)
}

// releaseAndMaybeAdapt runs on the participant that completed the root: a
// quiescent point for the counters (every participant has finished its
// ascent). It updates the σ estimate, rebuilds the tree if due, and
// releases the episode.
func (b *AdaptiveBarrier) releaseAndMaybeAdapt(st *adaptiveState) {
	b.relMu.Lock()
	spread := b.arrivalSpread()
	if b.episodes == 0 {
		b.sigma = spread
	} else {
		b.sigma = (1-sigmaEWMAWeight)*b.sigma + sigmaEWMAWeight*spread
	}
	b.episodes++
	if b.episodes%b.interval == 0 {
		if d := OptimalDegree(b.p, b.sigma, b.tc); d != st.degree {
			b.state.Store(newAdaptiveState(b.p, d))
			atomic.AddUint64(&b.adaptations, 1)
		}
	}
	b.gen++
	b.relCond.Broadcast()
	b.relMu.Unlock()
}

// arrivalSpread returns the sample standard deviation of this episode's
// arrival times in seconds.
func (b *AdaptiveBarrier) arrivalSpread() float64 {
	xs := make([]float64, b.p)
	for i := range xs {
		xs[i] = float64(b.arrival[i].v) * 1e-9
	}
	return stats.StdDev(xs)
}

// Await blocks participant id until the episode it arrived in completes.
func (b *AdaptiveBarrier) Await(id int) {
	checkID(id, b.p)
	mine := b.myGen[id].v
	b.relMu.Lock()
	for b.gen == mine {
		b.relCond.Wait()
	}
	b.relMu.Unlock()
}

var _ PhasedBarrier = (*AdaptiveBarrier)(nil)
