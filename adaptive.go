package softbarrier

// AdaptiveBarrier is a combining-tree barrier that re-derives its own tree
// degree at run time from the measured load imbalance — the adaptation the
// paper's conclusion proposes ("barriers that would adapt their degree at
// run time to minimize their synchronization delay").
//
// It is the fixed-membership face of ReconfigurableBarrier: the same
// epoch-based reconfiguration core (internal/reconfig) drives its degree
// changes, and the elastic operations (Grow/Shrink/Resize) are available
// on it too. Every episode the shared internal/runtime recorder measures
// the spread of participant arrival times, the releaser folds it into the
// shared EWMA σ estimator, and every Interval episodes the controller
// re-evaluates the analytic model (OptimalDegree); a changed
// recommendation rebuilds the counter tree before the episode's release —
// a point at which no participant can be touching the counters. The same
// measurements feed any installed Observer and, via MeasuredSigma, the
// planner's measured profiles (RecommendMeasured).
type AdaptiveBarrier = ReconfigurableBarrier

// NewAdaptive returns an adaptive barrier for p participants, starting at
// degree 4 (the classic simultaneous-arrival optimum), re-evaluating every
// interval episodes (≥1), assuming counter update cost tc seconds (0
// selects the paper's 20µs — pass a measured value for real deployments).
func NewAdaptive(p, interval int, tc float64, opts ...Option) *AdaptiveBarrier {
	if p < 1 {
		panic("softbarrier: need at least one participant")
	}
	if interval < 1 {
		panic("softbarrier: adaptation interval must be ≥ 1")
	}
	if tc == 0 {
		tc = 20e-6
	}
	if tc < 0 {
		panic("softbarrier: negative counter update cost")
	}
	return NewReconfigurable(p, ReconfigConfig{
		ReplanEvery:   interval,
		Tc:            tc,
		InitialDegree: 4,
	}, opts...)
}
