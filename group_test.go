package softbarrier

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestGroupRunPanicReleasesAndRethrows: a panicking worker must not strand
// the others mid-episode; everyone stops at the panicking step's boundary
// and the original panic value re-raises from Run.
func TestGroupRunPanicReleasesAndRethrows(t *testing.T) {
	const p, steps, panicStep = 4, 6, 2
	g := NewGroup(NewCombiningTree(p, 4))
	var maxStep atomic.Int64
	maxStep.Store(-1)

	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		g.Run(steps, func(id, step int) {
			for {
				cur := maxStep.Load()
				if int64(step) <= cur || maxStep.CompareAndSwap(cur, int64(step)) {
					break
				}
			}
			if id == 1 && step == panicStep {
				panic("worker 1 boom")
			}
		})
	}()

	select {
	case r := <-done:
		if r == nil {
			t.Fatal("Run swallowed the panic")
		}
		if s, ok := r.(string); !ok || s != "worker 1 boom" {
			t.Fatalf("re-raised panic value = %v, want the original string", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run deadlocked after a worker panic: remaining participants were not released")
	}
	// No worker may have started a step past the panic boundary.
	if got := maxStep.Load(); got != panicStep {
		t.Errorf("max executed step = %d, want %d (panic boundary)", got, panicStep)
	}
	st := g.Stats()
	if st.Runs != 1 {
		t.Errorf("stats runs = %d, want 1", st.Runs)
	}
	if st.Steps != panicStep+1 {
		t.Errorf("stats steps = %d, want %d (steps actually executed)", st.Steps, panicStep+1)
	}
}

// TestGroupRunEarliestPanicWins: with two panics in different steps, the
// earlier step's panic is the one re-raised.
func TestGroupRunEarliestPanicWins(t *testing.T) {
	const p, steps = 4, 6
	g := NewGroup(NewCentral(p))
	var r any
	func() {
		defer func() { r = recover() }()
		g.Run(steps, func(id, step int) {
			// Worker 3 panics in step 1; worker 0 panics in step 0 of the
			// same run. Step 0's panic must win even though both fire.
			if id == 0 && step == 0 {
				panic("step 0 panic")
			}
			if id == 3 && step == 0 {
				panic("other step 0 panic")
			}
		})
	}()
	if s, ok := r.(string); !ok || s != "step 0 panic" {
		t.Fatalf("re-raised %v, want the lowest-numbered worker's step-0 panic", r)
	}
}

// TestGroupRunFuzzyPanic: panic recovery also covers the fuzzy runner, in
// both the dependent and the slack function.
func TestGroupRunFuzzyPanic(t *testing.T) {
	const p, steps = 3, 4
	for _, tc := range []struct {
		name    string
		inSlack bool
	}{
		{"dependent-fn", false},
		{"slack-fn", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := NewGroup(NewDynamic(p, 2))
			done := make(chan any, 1)
			go func() {
				defer func() { done <- recover() }()
				fn := func(id, step int) {
					if !tc.inSlack && id == 2 && step == 1 {
						panic(errors.New("fuzzy boom"))
					}
				}
				slack := func(id, step int) {
					if tc.inSlack && id == 2 && step == 1 {
						panic(errors.New("fuzzy boom"))
					}
				}
				g.RunFuzzy(steps, fn, slack)
			}()
			select {
			case r := <-done:
				err, ok := r.(error)
				if !ok || err.Error() != "fuzzy boom" {
					t.Fatalf("re-raised %v, want the original error value", r)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("RunFuzzy deadlocked after a panic")
			}
		})
	}
}

// TestGroupRunErrPanicTakesPrecedence: when a panic and an error occur,
// the panic re-raises (the error would otherwise be silently dropped).
func TestGroupRunErrPanic(t *testing.T) {
	const p, steps = 3, 4
	g := NewGroup(NewCentral(p))
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		_ = g.RunErr(steps, func(id, step int) error {
			if id == 0 && step == 1 {
				return errors.New("plain failure")
			}
			if id == 1 && step == 1 {
				panic("err-run boom")
			}
			return nil
		})
	}()
	select {
	case r := <-done:
		if s, ok := r.(string); !ok || s != "err-run boom" {
			t.Fatalf("re-raised %v, want the panic", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunErr deadlocked after a panic")
	}
}

// TestGroupStats checks the aggregate superstep accounting across runs.
func TestGroupStats(t *testing.T) {
	const p = 4
	g := NewGroup(NewCombiningTree(p, 4))
	g.Run(3, func(id, step int) {})
	g.Run(2, func(id, step int) {})
	if err := g.RunErr(4, func(id, step int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Runs != 3 {
		t.Errorf("runs = %d, want 3", st.Runs)
	}
	if st.Steps != 3+2+4 {
		t.Errorf("steps = %d, want 9", st.Steps)
	}
	if st.Wall <= 0 {
		t.Errorf("wall = %v, want > 0", st.Wall)
	}
}

// TestGroupRunErrStillWorks pins the earliest-failing-step error semantics
// after the panic-tracker refactor.
func TestGroupRunErrSemantics(t *testing.T) {
	const p, steps = 4, 6
	g := NewGroup(NewCentral(p))
	wantErr := errors.New("step 2, worker 1")
	var maxStep atomic.Int64
	maxStep.Store(-1)
	err := g.RunErr(steps, func(id, step int) error {
		for {
			cur := maxStep.Load()
			if int64(step) <= cur || maxStep.CompareAndSwap(cur, int64(step)) {
				break
			}
		}
		if step == 2 {
			if id == 1 {
				return wantErr
			}
			if id == 3 {
				return errors.New("step 2, worker 3")
			}
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want the lowest-numbered worker's error", err)
	}
	// Workers finish the failing step; nobody starts past it.
	if got := maxStep.Load(); got != 2 {
		t.Errorf("max executed step = %d, want 2", got)
	}
}

// TestPanicTrackerStoppedBoundary pins the off-by-one contract of the
// panic boundary: the panicking step itself is NOT stopped (every worker
// must finish it so the barrier episode completes), only steps strictly
// beyond it are.
func TestPanicTrackerStoppedBoundary(t *testing.T) {
	const p, steps = 4, 6
	tr := newPanicTracker(p, steps, nil)
	for s := 0; s < steps; s++ {
		if tr.stopped(s) {
			t.Fatalf("fresh tracker stopped(%d)", s)
		}
	}
	if tr.failed() {
		t.Fatal("fresh tracker reports failed")
	}

	tr.call(1, 2, func() { panic("boom") })

	if !tr.failed() {
		t.Fatal("tracker did not record the panic")
	}
	if tr.stopped(1) {
		t.Fatal("step before the boundary reported stopped")
	}
	if tr.stopped(2) {
		t.Fatal("the panicking step itself must not be stopped")
	}
	if !tr.stopped(3) {
		t.Fatal("step past the boundary not stopped")
	}
	if got := tr.executed(steps); got != 3 {
		t.Fatalf("executed = %d, want 3 (steps 0..2)", got)
	}

	// An earlier panic moves the boundary down; a later one does not.
	tr.call(2, 4, func() { panic("late") })
	if tr.stopped(2) || !tr.stopped(3) {
		t.Fatal("later panic moved the boundary")
	}
	tr.call(3, 0, func() { panic("early") })
	if tr.stopped(0) || !tr.stopped(1) {
		t.Fatal("earlier panic did not move the boundary")
	}
}
