package chaos

import (
	"errors"
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"softbarrier/internal/wire"
	"softbarrier/internal/wire/memnet"
)

// TestScheduleDeterminism: the schedule is a pure function of (seed,
// conn, direction) — two transports with the same seed and config agree
// byte for byte, and a different seed diverges.
func TestScheduleDeterminism(t *testing.T) {
	cfg := Config{
		WriteLatency: time.Millisecond, WriteJitter: 5 * time.Millisecond,
		ReadLatency: time.Millisecond, ReadJitter: 3 * time.Millisecond,
		ResetProb: 0.05, TruncateProb: 0.05, StallProb: 0.1,
		PartitionProb: 0.02, SlowLorisProb: 0.1,
	}
	a := New(memnet.New(), 42, cfg)
	b := New(memnet.New(), 42, cfg)
	c := New(memnet.New(), 43, cfg)
	for conn := 0; conn < 8; conn++ {
		for _, write := range []bool{false, true} {
			sa := a.Schedule(conn, write, 512)
			sb := b.Schedule(conn, write, 512)
			if !reflect.DeepEqual(sa, sb) {
				t.Fatalf("conn %d write=%v: same seed, different schedules", conn, write)
			}
			if reflect.DeepEqual(sa, c.Schedule(conn, write, 512)) {
				t.Fatalf("conn %d write=%v: different seeds, identical schedules", conn, write)
			}
		}
	}
	// The fault mix actually appears in a long enough schedule.
	seen := map[string]bool{}
	for conn := 0; conn < 8; conn++ {
		for _, ev := range a.Schedule(conn, true, 512) {
			seen[kindOf(ev)] = true
		}
		for _, ev := range a.Schedule(conn, false, 512) {
			seen[kindOf(ev)] = true
		}
	}
	for _, kind := range []string{"latency", "reset", "truncate", "stall", "partition", "slowloris"} {
		if !seen[kind] {
			t.Errorf("no %s event in 8×512-op schedule at these probabilities", kind)
		}
	}
}

func kindOf(ev string) string {
	for i := 0; i < len(ev); i++ {
		if ev[i] == ' ' {
			return ev[:i]
		}
	}
	return ev
}

// TestStallHonorsWriteDeadline: an injected stall against an armed write
// deadline produces the deadline error, like a stalled TCP socket.
func TestStallHonorsWriteDeadline(t *testing.T) {
	mn := memnet.New()
	ln, _ := mn.Listen("x:0")
	defer ln.Close()
	go func() {
		c, _ := ln.Accept()
		_ = c
	}()
	tr := New(mn, 1, Config{StallProb: 1, StallFor: 10 * time.Second})
	conn, err := tr.Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetWriteDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	_, err = conn.Write([]byte("frame"))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled write error = %v; want deadline exceeded", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("stalled write held the deadline for %v", d)
	}
}

// TestTruncateBreaksFrame: the peer of a truncated write reads a strict
// prefix and then EOF — a mid-frame cut the frame decoder must reject.
func TestTruncateBreaksFrame(t *testing.T) {
	mn := memnet.New()
	ln, _ := mn.Listen("x:0")
	defer ln.Close()
	accepted := make(chan wire.Conn, 1)
	go func() {
		c, _ := ln.Accept()
		accepted <- c
	}()
	tr := New(mn, 7, Config{TruncateProb: 1})
	conn, err := tr.Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := make([]byte, 64)
	n, err := conn.Write(payload)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("write error = %v; want ErrTruncated", err)
	}
	if n <= 0 || n >= len(payload) {
		t.Fatalf("truncated write delivered %d of %d bytes; want a strict prefix", n, len(payload))
	}
	peer := <-accepted
	fc := wire.NewFrameConn(peer)
	if _, err := fc.ReadFrame(); err == nil {
		t.Fatal("peer decoded a frame from a truncated write")
	}
}

// TestPartitionFreezesBothDirections: after an injected partition neither
// direction moves until it heals, then both do.
func TestPartitionFreezesBothDirections(t *testing.T) {
	mn := memnet.New()
	ln, _ := mn.Listen("x:0")
	defer ln.Close()
	accepted := make(chan wire.Conn, 1)
	go func() {
		c, _ := ln.Accept()
		accepted <- c
	}()
	tr := New(mn, 3, Config{PartitionProb: 1, PartitionFor: 300 * time.Millisecond})
	conn, err := tr.Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	peer := <-accepted

	start := time.Now()
	if _, err := conn.Write([]byte("hi")); err != nil { // draws the partition, waits it out
		t.Fatal(err)
	}
	if d := time.Since(start); d < 250*time.Millisecond {
		t.Fatalf("partitioned write completed in %v; want ≥ partition length", d)
	}
	buf := make([]byte, 2)
	if _, err := peer.Read(buf); err != nil {
		t.Fatal(err)
	}
}

// TestSlowLorisTrickles: a slow-loris read delivers the stream one byte
// at a time, paced.
func TestSlowLorisTrickles(t *testing.T) {
	mn := memnet.New()
	ln, _ := mn.Listen("x:0")
	defer ln.Close()
	accepted := make(chan wire.Conn, 1)
	go func() {
		c, _ := ln.Accept()
		accepted <- c
	}()
	tr := New(mn, 9, Config{SlowLorisProb: 1, SlowLorisPace: 5 * time.Millisecond, SlowLorisBytes: 8})
	conn, err := tr.Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	peer := <-accepted
	if _, err := peer.Write(make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	start := time.Now()
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("slow-loris read returned %d bytes; want 1", n)
	}
	if time.Since(start) < 4*time.Millisecond {
		t.Fatal("slow-loris read was not paced")
	}
}

// TestResetFailsConn: an injected reset fails the op and kills the
// connection for good.
func TestResetFailsConn(t *testing.T) {
	mn := memnet.New()
	ln, _ := mn.Listen("x:0")
	defer ln.Close()
	go func() {
		c, _ := ln.Accept()
		_ = c
	}()
	tr := New(mn, 11, Config{ResetProb: 1})
	conn, err := tr.Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("x")); !errors.Is(err, ErrReset) {
		t.Fatalf("write error = %v; want ErrReset", err)
	}
	if _, err := conn.Write([]byte("x")); err == nil {
		t.Fatal("write after reset succeeded")
	}
}

// TestChaosLiveReplayDeterminism runs real traffic — a frame-speaking
// client against an echoing server over memnet, single connection,
// lockstep ops — twice with the same seed and requires the recorded
// injected-event logs and the observed episode ledgers to be identical.
// (The netbarrier-level twin of this test lives in the netbarrier suite;
// this one isolates the transport.)
func TestChaosLiveReplayDeterminism(t *testing.T) {
	run := func(seed uint64) (events []string, ledger []string) {
		mn := memnet.New()
		ln, _ := mn.Listen("x:0")
		defer ln.Close()
		go func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				go func() {
					fc := wire.NewFrameConn(c)
					for {
						f, err := fc.ReadFrame()
						if err != nil {
							c.Close()
							return
						}
						f.Episode++ // echo, advanced
						if fc.WriteFrame(f) != nil {
							c.Close()
							return
						}
					}
				}()
			}
		}()

		tr := New(mn, seed, Config{
			WriteLatency: 100 * time.Microsecond, WriteJitter: 300 * time.Microsecond,
			TruncateProb: 0.02, ResetProb: 0.01, SlowLorisProb: 0.05,
			SlowLorisPace: time.Millisecond, SlowLorisBytes: 4,
		})
		tr.Record = true
		conn, err := tr.Dial(ln.Addr().String(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		fc := wire.NewFrameConn(conn)
		for ep := uint64(0); ep < 400; ep++ {
			if err := fc.WriteFrame(wire.Frame{Type: wire.TypeArrive, Episode: ep}); err != nil {
				ledger = append(ledger, fmt.Sprintf("write %d: %v", ep, err))
				break
			}
			f, err := fc.ReadFrame()
			if err != nil {
				ledger = append(ledger, fmt.Sprintf("read %d: error", ep))
				break
			}
			ledger = append(ledger, fmt.Sprintf("echo %d->%d", ep, f.Episode))
		}
		return tr.Events(), ledger
	}

	ev1, led1 := run(1234)
	ev2, led2 := run(1234)
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("same seed, different injected-event logs:\n%v\nvs\n%v", ev1, ev2)
	}
	if !reflect.DeepEqual(led1, led2) {
		t.Fatalf("same seed, different ledgers:\n%v\nvs\n%v", led1, led2)
	}
	if len(ev1) == 0 {
		t.Fatal("no events injected; the run exercised nothing")
	}
	ev3, _ := run(99)
	if reflect.DeepEqual(ev1, ev3) {
		t.Fatal("different seeds, identical event logs")
	}
}
