// Package chaos is a seeded, deterministic fault-injecting wrapper around
// any wire.Transport. It perturbs the byte streams of dialed connections —
// per-direction latency and jitter, frame truncation, stalled writes,
// mid-epoch partitions, connection resets, slow-loris reads — according to
// a schedule that is a pure function of (seed, connection index,
// direction, operation index): replaying a run with the same seed and the
// same per-connection operation sequence injects byte-identically the same
// faults.
//
// Only dialed connections are wrapped; Listen passes through to the inner
// transport. That covers both directions of every link — write faults hit
// the client→server stream, read faults hit the server→client stream —
// without double-injecting when one Transport serves both ends in
// process, and it keeps the schedule independent of accept-order races:
// connection indices are assigned in dial order.
//
// Faults fire at operation boundaries and honor the connection's
// deadlines: an injected stall on a write with a deadline armed produces
// exactly the timeout the server's fan-out machinery expects from a
// stalled TCP socket.
package chaos

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"softbarrier/internal/wire"
)

// ErrReset is the error a connection reports after an injected reset.
var ErrReset = errors.New("chaos: connection reset")

// ErrTruncated is the error the writer sees after an injected mid-frame
// truncation (the peer sees a short read and a decode failure).
var ErrTruncated = errors.New("chaos: frame truncated mid-write")

// Config sets the fault mix. Probabilities are per operation (one frame
// write or one read call) in [0, 1]; at most one fault fires per
// operation, checked in the order reset, truncate, stall, partition
// (writes) / reset, slow-loris (reads). The zero value injects nothing.
type Config struct {
	// WriteLatency/WriteJitter delay each fault-free write by
	// WriteLatency + uniform[0, WriteJitter); ReadLatency/ReadJitter do
	// the same for reads.
	WriteLatency, WriteJitter time.Duration
	ReadLatency, ReadJitter   time.Duration

	// ResetProb abruptly closes the connection before the operation, on
	// either direction.
	ResetProb float64

	// TruncateProb cuts a write short — a strict prefix of the buffer is
	// delivered, then the connection is closed — so the peer's frame
	// decoder sees a mid-frame cut.
	TruncateProb float64

	// StallProb freezes a write for StallFor (0 selects 2s) before it
	// proceeds; with a write deadline armed that expires first, the write
	// fails with the deadline error, exactly like a stalled TCP socket.
	StallProb float64
	StallFor  time.Duration

	// PartitionProb (drawn on writes) freezes BOTH directions of the
	// connection for PartitionFor (0 selects 2s): a mid-epoch partition.
	// Nothing is closed; progress resumes when the partition heals, by
	// which time a session watchdog may have poisoned the episode.
	PartitionProb float64
	PartitionFor  time.Duration

	// SlowLorisProb switches the reader into trickle mode for the next
	// SlowLorisBytes bytes (0 selects 16): each is delivered alone after
	// SlowLorisPace (0 selects 10ms).
	SlowLorisProb  float64
	SlowLorisPace  time.Duration
	SlowLorisBytes int
}

func (c *Config) stallFor() time.Duration {
	if c.StallFor > 0 {
		return c.StallFor
	}
	return 2 * time.Second
}

func (c *Config) partitionFor() time.Duration {
	if c.PartitionFor > 0 {
		return c.PartitionFor
	}
	return 2 * time.Second
}

func (c *Config) lorisPace() time.Duration {
	if c.SlowLorisPace > 0 {
		return c.SlowLorisPace
	}
	return 10 * time.Millisecond
}

func (c *Config) lorisBytes() int {
	if c.SlowLorisBytes > 0 {
		return c.SlowLorisBytes
	}
	return 16
}

// Transport wraps Inner, injecting Config's faults on dialed connections
// according to the deterministic schedule Seed selects.
type Transport struct {
	Inner  wire.Transport
	Seed   uint64
	Config Config
	// Record, when set, keeps a log of every injected event, retrievable
	// with Events. Off by default: a large fault run logs a lot.
	Record bool

	mu    sync.Mutex
	nconn int
	log   []string
}

// New wraps inner with the given seed and fault mix.
func New(inner wire.Transport, seed uint64, cfg Config) *Transport {
	return &Transport{Inner: inner, Seed: seed, Config: cfg}
}

// Listen delegates to the inner transport: accepted connections are not
// wrapped (see the package comment).
func (t *Transport) Listen(addr string) (wire.Listener, error) { return t.Inner.Listen(addr) }

// Dial dials through the inner transport and wraps the connection with
// the next connection index's fault schedule.
func (t *Transport) Dial(addr string, timeout time.Duration) (wire.Conn, error) {
	inner, err := t.Inner.Dial(addr, timeout)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	id := t.nconn
	t.nconn++
	t.mu.Unlock()
	c := &conn{Conn: inner, tr: t, id: id}
	c.rrng = rngFor(t.Seed, id, false)
	c.wrng = rngFor(t.Seed, id, true)
	return c, nil
}

// Events returns every recorded injected event, sorted into the canonical
// (connection, direction, operation) order, so two runs with identical
// per-connection operation sequences yield byte-identical slices
// regardless of goroutine interleaving. Requires Record.
func (t *Transport) Events() []string {
	t.mu.Lock()
	out := append([]string(nil), t.log...)
	t.mu.Unlock()
	sort.Strings(out)
	return out
}

func (t *Transport) record(id int, write bool, seq int, ev event) {
	if !t.Record {
		return
	}
	dir := "r"
	if write {
		dir = "w"
	}
	line := fmt.Sprintf("c%06d %s#%09d %s", id, dir, seq, ev)
	t.mu.Lock()
	t.log = append(t.log, line)
	t.mu.Unlock()
}

// Event kinds, in scheduling order.
const (
	evNone      = ""
	evLatency   = "latency"
	evReset     = "reset"
	evTruncate  = "truncate"
	evStall     = "stall"
	evPartition = "partition"
	evSlowLoris = "slowloris"
)

// event is one scheduled decision: what happens to operation seq of one
// direction of one connection.
type event struct {
	Kind  string
	Delay time.Duration // latency events: the injected delay
	Frac  float64       // truncate events: prefix fraction of the buffer
}

func (e event) String() string {
	switch e.Kind {
	case evLatency:
		return fmt.Sprintf("latency %v", e.Delay)
	case evTruncate:
		return fmt.Sprintf("truncate %.6f", e.Frac)
	default:
		return e.Kind
	}
}

// splitmix64; the finalizer scrambles the (seed, conn, dir) mix so
// adjacent connection indices get uncorrelated streams.
type prng struct{ s uint64 }

func (p *prng) next() uint64 {
	p.s += 0x9e3779b97f4a7c15
	z := p.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func (p *prng) float() float64 { return float64(p.next()>>11) / (1 << 53) }

func rngFor(seed uint64, conn int, write bool) prng {
	s := seed ^ (uint64(conn) * 0x9e3779b97f4a7c15)
	if write {
		s ^= 0xd1342543de82ef95
	}
	// One warm-up scramble so seed 0 / conn 0 is not the raw counter.
	p := prng{s: s}
	p.next()
	return p
}

// draw advances one direction's schedule by one operation. It is the
// single source of truth for both the live connections and Schedule, and
// always consumes exactly three draws per operation, so the stream stays
// aligned whatever the config enables.
func draw(r *prng, cfg *Config, write bool) event {
	u := r.float()  // fault selector
	uj := r.float() // jitter fraction
	ua := r.float() // fault argument
	if write {
		switch {
		case u < cfg.ResetProb:
			return event{Kind: evReset}
		case u < cfg.ResetProb+cfg.TruncateProb:
			return event{Kind: evTruncate, Frac: ua}
		case u < cfg.ResetProb+cfg.TruncateProb+cfg.StallProb:
			return event{Kind: evStall}
		case u < cfg.ResetProb+cfg.TruncateProb+cfg.StallProb+cfg.PartitionProb:
			return event{Kind: evPartition}
		}
		if d := cfg.WriteLatency + time.Duration(uj*float64(cfg.WriteJitter)); d > 0 {
			return event{Kind: evLatency, Delay: d}
		}
		return event{Kind: evNone}
	}
	switch {
	case u < cfg.ResetProb:
		return event{Kind: evReset}
	case u < cfg.ResetProb+cfg.SlowLorisProb:
		return event{Kind: evSlowLoris}
	}
	if d := cfg.ReadLatency + time.Duration(uj*float64(cfg.ReadJitter)); d > 0 {
		return event{Kind: evLatency, Delay: d}
	}
	return event{Kind: evNone}
}

// Schedule returns the first n events of one direction of connection
// conn's schedule — a pure function of (Seed, Config, conn, write): what
// a live connection will inject on its first n operations.
func (t *Transport) Schedule(conn int, write bool, n int) []string {
	r := rngFor(t.Seed, conn, write)
	out := make([]string, n)
	for i := range out {
		out[i] = draw(&r, &t.Config, write).String()
	}
	return out
}

// conn wraps one dialed connection. The read half (rrng, rseq, trickle)
// is owned by the reader goroutine, the write half by writers serialized
// under wmu — the same two-halves discipline as wire.FrameConn. The
// partition deadline is shared (either direction may be frozen by it).
type conn struct {
	wire.Conn
	tr *Transport
	id int

	rmu     sync.Mutex
	rrng    prng
	rseq    int
	trickle int // slow-loris bytes still to trickle

	wmu  sync.Mutex
	wrng prng
	wseq int

	dlmu sync.Mutex
	rdl  time.Time
	wdl  time.Time

	partmu    sync.Mutex
	partUntil time.Time
}

func (c *conn) SetReadDeadline(t time.Time) error {
	c.dlmu.Lock()
	c.rdl = t
	c.dlmu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *conn) SetWriteDeadline(t time.Time) error {
	c.dlmu.Lock()
	c.wdl = t
	c.dlmu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

func (c *conn) SetDeadline(t time.Time) error {
	c.dlmu.Lock()
	c.rdl, c.wdl = t, t
	c.dlmu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *conn) deadline(write bool) time.Time {
	c.dlmu.Lock()
	defer c.dlmu.Unlock()
	if write {
		return c.wdl
	}
	return c.rdl
}

// sleep pauses for d, honoring the direction's deadline: if it expires
// first, sleep only until it and report the timeout.
func (c *conn) sleep(d time.Duration, write bool) error {
	wake := time.Now().Add(d)
	if dl := c.deadline(write); !dl.IsZero() && dl.Before(wake) {
		if until := time.Until(dl); until > 0 {
			time.Sleep(until)
		}
		return os.ErrDeadlineExceeded
	}
	time.Sleep(d)
	return nil
}

// waitPartition blocks while the connection is partitioned.
func (c *conn) waitPartition(write bool) error {
	c.partmu.Lock()
	until := c.partUntil
	c.partmu.Unlock()
	if until.IsZero() {
		return nil
	}
	if d := time.Until(until); d > 0 {
		return c.sleep(d, write)
	}
	return nil
}

func (c *conn) partition(d time.Duration) {
	c.partmu.Lock()
	c.partUntil = time.Now().Add(d)
	c.partmu.Unlock()
}

func (c *conn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	ev := draw(&c.wrng, &c.tr.Config, true)
	seq := c.wseq
	c.wseq++
	c.wmu.Unlock()
	if ev.Kind != evNone {
		c.tr.record(c.id, true, seq, ev)
	}
	if err := c.waitPartition(true); err != nil {
		return 0, err
	}
	switch ev.Kind {
	case evLatency:
		if err := c.sleep(ev.Delay, true); err != nil {
			return 0, err
		}
	case evReset:
		c.Conn.Close()
		return 0, ErrReset
	case evTruncate:
		k := 1 + int(ev.Frac*float64(len(p)-1))
		if k >= len(p) {
			k = len(p) - 1
		}
		if k < 1 {
			k = 1
		}
		n, _ := c.Conn.Write(p[:k])
		c.Conn.Close()
		return n, ErrTruncated
	case evStall:
		if err := c.sleep(c.tr.Config.stallFor(), true); err != nil {
			return 0, err
		}
	case evPartition:
		c.partition(c.tr.Config.partitionFor())
		if err := c.waitPartition(true); err != nil {
			return 0, err
		}
	}
	return c.Conn.Write(p)
}

func (c *conn) Read(p []byte) (int, error) {
	c.rmu.Lock()
	if c.trickle > 0 {
		c.trickle--
		c.rmu.Unlock()
		if err := c.sleep(c.tr.Config.lorisPace(), false); err != nil {
			return 0, err
		}
		if len(p) > 1 {
			p = p[:1]
		}
		return c.Conn.Read(p)
	}
	ev := draw(&c.rrng, &c.tr.Config, false)
	seq := c.rseq
	c.rseq++
	if ev.Kind == evSlowLoris {
		c.trickle = c.tr.Config.lorisBytes()
	}
	c.rmu.Unlock()
	if ev.Kind != evNone {
		c.tr.record(c.id, false, seq, ev)
	}
	if err := c.waitPartition(false); err != nil {
		return 0, err
	}
	switch ev.Kind {
	case evLatency:
		if err := c.sleep(ev.Delay, false); err != nil {
			return 0, err
		}
	case evReset:
		c.Conn.Close()
		return 0, ErrReset
	case evSlowLoris:
		if err := c.sleep(c.tr.Config.lorisPace(), false); err != nil {
			return 0, err
		}
		if len(p) > 1 {
			p = p[:1]
		}
	}
	return c.Conn.Read(p)
}
