package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// floatBits / bitsFloat move float64 fields on and off the wire as raw
// IEEE-754 bits, so any value — including NaN payloads — survives a
// round trip bit for bit.
func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// The wire protocol is a stream of length-prefixed binary frames:
//
//	frame   := length(uint32, big-endian, of body) body
//	body    := type(1 byte) payload
//
// Eleven frame types cover the whole lifecycle. A client joins a named
// session (JoinReq/JoinResp), then alternates Arrive (client → server)
// with Release (server → client) once per episode, and finally departs
// with Leave. Poison (server → client) replaces Release when the episode
// is aborted; its payload is the softbarrier wire-encoded cause, so the
// remote waiter gets the same *StallError / sentinel error a local waiter
// would. Collective sessions substitute ArriveData for Arrive (the
// arrival carries the client's contribution bytes) and Result for
// Release (the release carries the folded result). The three shard frames
// (ShardJoin/ShardArrive/ShardRelease) are the inter-shard dialect of the
// same lifecycle, spoken by a leaf barrierd to its root: one aggregated
// arrival per leaf per episode instead of one per client. All integers
// are big-endian; floats travel as IEEE-754 bits.
//
// Every handshake frame (JoinReq, JoinResp, ShardJoin) leads with a
// protocol version byte. The decoder rejects any other version with an
// explicit mismatch error, so a leaf and a root built from different
// protocol revisions fail fast at join time instead of mis-decoding each
// other's episode frames. Post-handshake frames ride the version the
// handshake established and carry no byte of their own.
const (
	// TypeJoinReq (client → server) opens a session membership:
	// version(1) nameLen(uint16) name p(uint32) id(int32; -1 = server
	// assigns).
	TypeJoinReq = byte(1)
	// TypeJoinResp (server → client) answers a join:
	// version(1) id(uint32) p(uint32) degree(uint32) episode(uint64)
	// errLen(uint16) err. A non-empty err refuses the join; the other
	// fields are then meaningless.
	TypeJoinResp = byte(2)
	// TypeArrive (client → server) announces arrival at an episode:
	// episode(uint64). The episode must be the session's current one.
	TypeArrive = byte(3)
	// TypeRelease (server → client) completes an episode:
	// episode(uint64) degree(uint32) p(uint32) epoch(uint64)
	// spreadBits(uint64) sigmaBits(uint64). degree, p and epoch describe
	// the configuration the *next* episode will run at (they change when
	// the session re-plans its degree or, in elastic sessions, its
	// membership), spread is the episode's measured arrival spread in
	// seconds, sigma the session's EWMA σ estimate.
	TypeRelease = byte(4)
	// TypePoison (server → client) aborts the session:
	// causeLen(uint16) cause, where cause is the
	// softbarrier.EncodePoisonCause encoding of the poison error.
	TypePoison = byte(5)
	// TypeLeave (client → server) departs gracefully after a release;
	// empty payload. A connection that drops without Leave poisons the
	// session.
	TypeLeave = byte(6)
	// TypeArriveData (client → server) announces arrival with a
	// collective contribution: episode(uint64) dataLen(uint16) data. The
	// data length must match the session op's width; a plain Arrive in a
	// collective session contributes the op's identity instead.
	TypeArriveData = byte(7)
	// TypeResult (server → client) completes a collective episode: the
	// Release payload followed by resultLen(uint16) result, the folded
	// contribution of every participant (deterministic ascending-id fold
	// for non-commutative ops).
	TypeResult = byte(8)
	// TypeShardJoin (leaf → root) registers a leaf barrierd shard as one
	// aggregated participant of a session's inter-shard cohort:
	// version(1) nameLen(uint16) name shards(uint32) id(int32; -1 = root
	// assigns). shards is the session's shard-cohort size, exactly as a
	// JoinReq's p is its client-cohort size; the root answers with a
	// JoinResp.
	TypeShardJoin = byte(9)
	// TypeShardArrive (leaf → root) forwards a leaf's combined arrival at
	// an episode: episode(uint64) localP(uint32) spreadBits(uint64)
	// sigmaBits(uint64) dataLen(uint16) data. localP is how many local
	// clients the leaf combined into this arrival, spread/sigma its local
	// arrival measurements, and data the leaf's locally folded collective
	// contribution (empty for plain sessions).
	TypeShardArrive = byte(10)
	// TypeShardRelease (root → leaf) completes an inter-shard episode:
	// episode(uint64) degree(uint32) shards(uint32) epoch(uint64)
	// spreadBits(uint64) sigmaBits(uint64) fleetP(uint32)
	// resultLen(uint16) result. degree/shards/epoch describe the root
	// tree's next-episode configuration, spread is the measured
	// inter-shard arrival spread, sigma the fleet-wide σ aggregated from
	// the shards' reports, fleetP the fleet-wide participant count, and
	// result the globally folded collective payload (empty for plain
	// sessions).
	TypeShardRelease = byte(11)
)

// ProtocolVersion is the wire-protocol revision this binary speaks. It is
// carried by every handshake frame and checked by the decoder: any other
// value is rejected with a mismatch error naming both revisions, so
// mixed-revision deployments (a leaf and a root built from different
// releases) fail fast and legibly at join time.
const ProtocolVersion = byte(1)

// FrameName returns the symbolic name of a frame type for error messages
// and logs, or "type(N)" for an unknown type.
func FrameName(t byte) string {
	switch t {
	case TypeJoinReq:
		return "join-req"
	case TypeJoinResp:
		return "join-resp"
	case TypeArrive:
		return "arrive"
	case TypeRelease:
		return "release"
	case TypePoison:
		return "poison"
	case TypeLeave:
		return "leave"
	case TypeArriveData:
		return "arrive-data"
	case TypeResult:
		return "result"
	case TypeShardJoin:
		return "shard-join"
	case TypeShardArrive:
		return "shard-arrive"
	case TypeShardRelease:
		return "shard-release"
	default:
		return fmt.Sprintf("type(%d)", t)
	}
}

const (
	// MaxName bounds the session-name length in a JoinReq.
	MaxName = 255
	// MaxFrame bounds a frame body; larger length prefixes are rejected
	// before any allocation, so a corrupt peer cannot balloon memory.
	MaxFrame = 1 << 17
	// MaxData bounds the collective payload of an ArriveData or Result
	// frame: the uint16 length prefix caps it at 64KiB−1, comfortably
	// inside MaxFrame even with the largest surrounding header.
	MaxData = 0xffff
	// lenSize is the length-prefix size.
	lenSize = 4
)

// Frame is the decoded form of any protocol frame: Type selects which
// fields are meaningful (see the Type constants).
type Frame struct {
	Type    byte
	Version byte    // JoinReq, JoinResp, ShardJoin: protocol revision (encoder always writes ProtocolVersion)
	Name    string  // JoinReq, ShardJoin: session name
	P       int     // JoinReq, JoinResp, Release: participant count; ShardJoin, ShardRelease: shard count; ShardArrive: local participant count
	ID      int     // JoinReq, ShardJoin: requested id (-1 = any); JoinResp: assigned id
	Degree  int     // JoinResp, Release, ShardRelease: current tree degree
	Episode uint64  // JoinResp, Arrive, Release, ShardArrive, ShardRelease: episode index
	Epoch   uint64  // Release, ShardRelease: configuration epoch index
	Spread  float64 // Release, ShardRelease: measured arrival spread; ShardArrive: the leaf's local spread, seconds
	Sigma   float64 // Release, ShardRelease: EWMA σ estimate; ShardArrive: the leaf's local σ, seconds
	FleetP  int     // ShardRelease: fleet-wide participant count across every shard
	Err     string  // JoinResp: refusal reason ("" = accepted)
	Cause   []byte  // Poison: wire-encoded poison cause
	Data    []byte  // ArriveData: contribution; Result: folded result; ShardArrive: leaf-folded contribution; ShardRelease: globally folded result
}

// AppendFrame appends f's complete wire form — length prefix included —
// to dst and returns the result. It errors on unencodable frames
// (unknown type, oversized name/error/cause/data) rather than emitting a
// frame the decoder would reject; every bound is checked before a byte
// is written, so dst is untouched on error.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	switch f.Type {
	case TypeJoinReq, TypeShardJoin:
		if len(f.Name) > MaxName {
			return nil, fmt.Errorf("wire: %s session name %d bytes exceeds %d", FrameName(f.Type), len(f.Name), MaxName)
		}
	case TypeJoinResp:
		if len(f.Err) > 0xffff {
			return nil, fmt.Errorf("wire: %s error %d bytes exceeds %d", FrameName(f.Type), len(f.Err), 0xffff)
		}
	case TypePoison:
		if len(f.Cause) > 0xffff {
			return nil, fmt.Errorf("wire: %s cause %d bytes exceeds %d", FrameName(f.Type), len(f.Cause), 0xffff)
		}
	case TypeArriveData, TypeResult, TypeShardArrive, TypeShardRelease:
		if len(f.Data) > MaxData {
			return nil, fmt.Errorf("wire: %s payload %d bytes exceeds %d", FrameName(f.Type), len(f.Data), MaxData)
		}
	case TypeArrive, TypeRelease, TypeLeave:
		// fixed-size payloads
	default:
		return nil, fmt.Errorf("wire: cannot encode frame %s", FrameName(f.Type))
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length back-patched below
	dst = append(dst, f.Type)
	switch f.Type {
	case TypeJoinReq, TypeShardJoin:
		dst = append(dst, ProtocolVersion)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(f.Name)))
		dst = append(dst, f.Name...)
		dst = binary.BigEndian.AppendUint32(dst, uint32(f.P))
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(f.ID)))
	case TypeJoinResp:
		dst = append(dst, ProtocolVersion)
		dst = binary.BigEndian.AppendUint32(dst, uint32(f.ID))
		dst = binary.BigEndian.AppendUint32(dst, uint32(f.P))
		dst = binary.BigEndian.AppendUint32(dst, uint32(f.Degree))
		dst = binary.BigEndian.AppendUint64(dst, f.Episode)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(f.Err)))
		dst = append(dst, f.Err...)
	case TypeArrive:
		dst = binary.BigEndian.AppendUint64(dst, f.Episode)
	case TypeRelease:
		dst = binary.BigEndian.AppendUint64(dst, f.Episode)
		dst = binary.BigEndian.AppendUint32(dst, uint32(f.Degree))
		dst = binary.BigEndian.AppendUint32(dst, uint32(f.P))
		dst = binary.BigEndian.AppendUint64(dst, f.Epoch)
		dst = binary.BigEndian.AppendUint64(dst, floatBits(f.Spread))
		dst = binary.BigEndian.AppendUint64(dst, floatBits(f.Sigma))
	case TypePoison:
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(f.Cause)))
		dst = append(dst, f.Cause...)
	case TypeLeave:
		// empty payload
	case TypeArriveData:
		dst = binary.BigEndian.AppendUint64(dst, f.Episode)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(f.Data)))
		dst = append(dst, f.Data...)
	case TypeResult:
		dst = binary.BigEndian.AppendUint64(dst, f.Episode)
		dst = binary.BigEndian.AppendUint32(dst, uint32(f.Degree))
		dst = binary.BigEndian.AppendUint32(dst, uint32(f.P))
		dst = binary.BigEndian.AppendUint64(dst, f.Epoch)
		dst = binary.BigEndian.AppendUint64(dst, floatBits(f.Spread))
		dst = binary.BigEndian.AppendUint64(dst, floatBits(f.Sigma))
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(f.Data)))
		dst = append(dst, f.Data...)
	case TypeShardArrive:
		dst = binary.BigEndian.AppendUint64(dst, f.Episode)
		dst = binary.BigEndian.AppendUint32(dst, uint32(f.P))
		dst = binary.BigEndian.AppendUint64(dst, floatBits(f.Spread))
		dst = binary.BigEndian.AppendUint64(dst, floatBits(f.Sigma))
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(f.Data)))
		dst = append(dst, f.Data...)
	case TypeShardRelease:
		dst = binary.BigEndian.AppendUint64(dst, f.Episode)
		dst = binary.BigEndian.AppendUint32(dst, uint32(f.Degree))
		dst = binary.BigEndian.AppendUint32(dst, uint32(f.P))
		dst = binary.BigEndian.AppendUint64(dst, f.Epoch)
		dst = binary.BigEndian.AppendUint64(dst, floatBits(f.Spread))
		dst = binary.BigEndian.AppendUint64(dst, floatBits(f.Sigma))
		dst = binary.BigEndian.AppendUint32(dst, uint32(f.FleetP))
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(f.Data)))
		dst = append(dst, f.Data...)
	}
	body := len(dst) - start - lenSize
	if body > MaxFrame {
		return nil, fmt.Errorf("wire: %s body %d bytes exceeds %d", FrameName(f.Type), body, MaxFrame)
	}
	binary.BigEndian.PutUint32(dst[start:], uint32(body))
	return dst, nil
}

// DecodeFrame decodes one frame body (the bytes after the length prefix).
// Every length field is validated against the actual payload, and frames
// with trailing garbage are rejected, so a frame that decodes is exactly
// a frame AppendFrame could have produced.
func DecodeFrame(body []byte) (Frame, error) {
	if len(body) == 0 {
		return Frame{}, fmt.Errorf("wire: empty frame body")
	}
	if len(body) > MaxFrame {
		return Frame{}, fmt.Errorf("wire: frame body %d bytes exceeds %d", len(body), MaxFrame)
	}
	f := Frame{Type: body[0]}
	b := body[1:]
	switch f.Type {
	case TypeJoinReq, TypeShardJoin:
		var err error
		if b, err = checkVersion(f.Type, b); err != nil {
			return Frame{}, err
		}
		f.Version = ProtocolVersion
		n, rest, err := lengthPrefixed(b, "session name", MaxName)
		if err != nil {
			return Frame{}, err
		}
		if len(rest) != 8 {
			return Frame{}, fmt.Errorf("wire: %s wants 8 trailing bytes, has %d", FrameName(f.Type), len(rest))
		}
		f.Name = string(n)
		f.P = int(binary.BigEndian.Uint32(rest))
		f.ID = int(int32(binary.BigEndian.Uint32(rest[4:])))
	case TypeJoinResp:
		var err error
		if b, err = checkVersion(f.Type, b); err != nil {
			return Frame{}, err
		}
		f.Version = ProtocolVersion
		if len(b) < 22 {
			return Frame{}, fmt.Errorf("wire: join response wants ≥ 22 bytes, has %d", len(b))
		}
		f.ID = int(binary.BigEndian.Uint32(b))
		f.P = int(binary.BigEndian.Uint32(b[4:]))
		f.Degree = int(binary.BigEndian.Uint32(b[8:]))
		f.Episode = binary.BigEndian.Uint64(b[12:])
		e, rest, err := lengthPrefixed(b[20:], "join error", 0xffff)
		if err != nil {
			return Frame{}, err
		}
		if len(rest) != 0 {
			return Frame{}, fmt.Errorf("wire: %d trailing bytes after join response", len(rest))
		}
		f.Err = string(e)
	case TypeArrive:
		if len(b) != 8 {
			return Frame{}, fmt.Errorf("wire: arrive wants 8 bytes, has %d", len(b))
		}
		f.Episode = binary.BigEndian.Uint64(b)
	case TypeRelease:
		if len(b) != 40 {
			return Frame{}, fmt.Errorf("wire: release wants 40 bytes, has %d", len(b))
		}
		f.Episode = binary.BigEndian.Uint64(b)
		f.Degree = int(binary.BigEndian.Uint32(b[8:]))
		f.P = int(binary.BigEndian.Uint32(b[12:]))
		f.Epoch = binary.BigEndian.Uint64(b[16:])
		f.Spread = bitsFloat(binary.BigEndian.Uint64(b[24:]))
		f.Sigma = bitsFloat(binary.BigEndian.Uint64(b[32:]))
	case TypePoison:
		c, rest, err := lengthPrefixed(b, "poison cause", 0xffff)
		if err != nil {
			return Frame{}, err
		}
		if len(rest) != 0 {
			return Frame{}, fmt.Errorf("wire: %d trailing bytes after poison", len(rest))
		}
		f.Cause = c
	case TypeLeave:
		if len(b) != 0 {
			return Frame{}, fmt.Errorf("wire: leave wants no payload, has %d bytes", len(b))
		}
	case TypeArriveData:
		if len(b) < 8 {
			return Frame{}, fmt.Errorf("wire: %s wants ≥ 8 bytes, has %d", FrameName(f.Type), len(b))
		}
		f.Episode = binary.BigEndian.Uint64(b)
		d, rest, err := lengthPrefixed(b[8:], "arrive-data payload", MaxData)
		if err != nil {
			return Frame{}, err
		}
		if len(rest) != 0 {
			return Frame{}, fmt.Errorf("wire: %d trailing bytes after %s", len(rest), FrameName(f.Type))
		}
		f.Data = d
	case TypeResult:
		if len(b) < 40 {
			return Frame{}, fmt.Errorf("wire: %s wants ≥ 40 bytes, has %d", FrameName(f.Type), len(b))
		}
		f.Episode = binary.BigEndian.Uint64(b)
		f.Degree = int(binary.BigEndian.Uint32(b[8:]))
		f.P = int(binary.BigEndian.Uint32(b[12:]))
		f.Epoch = binary.BigEndian.Uint64(b[16:])
		f.Spread = bitsFloat(binary.BigEndian.Uint64(b[24:]))
		f.Sigma = bitsFloat(binary.BigEndian.Uint64(b[32:]))
		d, rest, err := lengthPrefixed(b[40:], "result payload", MaxData)
		if err != nil {
			return Frame{}, err
		}
		if len(rest) != 0 {
			return Frame{}, fmt.Errorf("wire: %d trailing bytes after %s", len(rest), FrameName(f.Type))
		}
		f.Data = d
	case TypeShardArrive:
		if len(b) < 28 {
			return Frame{}, fmt.Errorf("wire: %s wants ≥ 28 bytes, has %d", FrameName(f.Type), len(b))
		}
		f.Episode = binary.BigEndian.Uint64(b)
		f.P = int(binary.BigEndian.Uint32(b[8:]))
		f.Spread = bitsFloat(binary.BigEndian.Uint64(b[12:]))
		f.Sigma = bitsFloat(binary.BigEndian.Uint64(b[20:]))
		d, rest, err := lengthPrefixed(b[28:], "shard-arrive payload", MaxData)
		if err != nil {
			return Frame{}, err
		}
		if len(rest) != 0 {
			return Frame{}, fmt.Errorf("wire: %d trailing bytes after %s", len(rest), FrameName(f.Type))
		}
		f.Data = d
	case TypeShardRelease:
		if len(b) < 44 {
			return Frame{}, fmt.Errorf("wire: %s wants ≥ 44 bytes, has %d", FrameName(f.Type), len(b))
		}
		f.Episode = binary.BigEndian.Uint64(b)
		f.Degree = int(binary.BigEndian.Uint32(b[8:]))
		f.P = int(binary.BigEndian.Uint32(b[12:]))
		f.Epoch = binary.BigEndian.Uint64(b[16:])
		f.Spread = bitsFloat(binary.BigEndian.Uint64(b[24:]))
		f.Sigma = bitsFloat(binary.BigEndian.Uint64(b[32:]))
		f.FleetP = int(binary.BigEndian.Uint32(b[40:]))
		d, rest, err := lengthPrefixed(b[44:], "shard-release payload", MaxData)
		if err != nil {
			return Frame{}, err
		}
		if len(rest) != 0 {
			return Frame{}, fmt.Errorf("wire: %d trailing bytes after %s", len(rest), FrameName(f.Type))
		}
		f.Data = d
	default:
		return Frame{}, fmt.Errorf("wire: unknown frame %s", FrameName(f.Type))
	}
	return f, nil
}

// checkVersion consumes the leading protocol-version byte of a handshake
// frame, rejecting any revision other than the one this binary speaks.
// The mismatch error is deliberately explicit: it is the one diagnostic a
// mixed-revision deployment (say, a leaf barrierd from one release joined
// to a root from another) gets before the connection is torn down.
func checkVersion(t byte, b []byte) ([]byte, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("wire: %s missing protocol version byte", FrameName(t))
	}
	if b[0] != ProtocolVersion {
		return nil, fmt.Errorf("wire: protocol version mismatch: peer's %s speaks v%d, this binary speaks v%d — both ends must run the same protocol revision", FrameName(t), b[0], ProtocolVersion)
	}
	return b[1:], nil
}

// lengthPrefixed splits a uint16-length-prefixed field off b, enforcing
// the field-specific maximum.
func lengthPrefixed(b []byte, what string, max int) (field, rest []byte, err error) {
	if len(b) < 2 {
		return nil, nil, fmt.Errorf("wire: truncated %s length", what)
	}
	n := int(binary.BigEndian.Uint16(b))
	if n > max {
		return nil, nil, fmt.Errorf("wire: %s %d bytes exceeds %d", what, n, max)
	}
	if len(b)-2 < n {
		return nil, nil, fmt.Errorf("wire: truncated %s (%d of %d bytes)", what, len(b)-2, n)
	}
	return b[2 : 2+n], b[2+n:], nil
}

// ReadFrame reads and decodes one frame from r, enforcing MaxFrame before
// allocating the body. Each call allocates a fresh body, so the returned
// frame's byte fields are caller-owned; hot loops use ReadFrameInto
// instead.
func ReadFrame(r io.Reader) (Frame, error) {
	var buf []byte
	return ReadFrameInto(r, &buf)
}

// ReadFrameInto reads and decodes one frame from r using *buf as the body
// buffer, growing it (once, up to MaxFrame) as needed and writing the
// grown buffer back through buf. In steady state — after the first frame
// of the connection's working size — it performs zero heap allocations.
//
// The returned frame's reference fields (Data, Cause) alias *buf and are
// valid only until the next ReadFrameInto call with the same buffer; a
// caller that retains them across frames must copy. String fields (Name,
// Err) are copied by the decoder and always safe to keep.
func ReadFrameInto(r io.Reader, buf *[]byte) (Frame, error) {
	// The length prefix is read into the reusable buffer too: a local
	// [4]byte array would escape through the io.ReadFull interface call and
	// cost one heap allocation per frame — the body overwrites it once the
	// length is parsed, so nothing is lost.
	b := *buf
	if cap(b) < lenSize {
		b = make([]byte, lenSize, 256)
		*buf = b
	}
	hdr := b[:lenSize]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n == 0 || n > MaxFrame {
		return Frame{}, fmt.Errorf("wire: frame length %d outside (0, %d]", n, MaxFrame)
	}
	if uint32(cap(b)) < n {
		b = make([]byte, n)
		*buf = b
	}
	body := b[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	return DecodeFrame(body)
}

// WriteFrame encodes f and writes it to w in one Write call, so a
// buffered writer coalesces it into the socket's pending batch.
func WriteFrame(w io.Writer, f Frame) error {
	buf, err := AppendFrame(nil, f)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}
