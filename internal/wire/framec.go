package wire

import (
	"bufio"
	"time"
)

// FrameConn is one peer's framed view of a Conn: buffered reader and
// writer plus the reusable encode/decode scratch that makes the
// steady-state read and write paths allocation-free. It is the I/O core
// shared by the netbarrier client and the shardbarrier leaf→root link.
//
// A FrameConn is not one lock's worth of state but two independent
// halves. The read half (ReadFrame, SetReadDeadline) and the write half
// (WriteFrame and friends) share no buffers, so one goroutine may own
// each half — the leaf link runs exactly that split, its reader
// completing episodes while the session's releaser writes. Neither half
// tolerates two concurrent users; callers serialize per half.
type FrameConn struct {
	conn Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	rbuf []byte // reusable frame-body buffer (read half)
	wbuf []byte // reusable frame-encode scratch (write half)
}

// NewFrameConn wraps an established connection.
func NewFrameConn(conn Conn) *FrameConn {
	return &FrameConn{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
}

// Conn returns the underlying connection.
func (fc *FrameConn) Conn() Conn { return fc.conn }

// ReadFrame reads and decodes the next frame. The returned frame's
// reference fields (Data, Cause) alias the connection's reusable buffer
// and are valid only until the next ReadFrame; retain by copying.
func (fc *FrameConn) ReadFrame() (Frame, error) {
	return ReadFrameInto(fc.br, &fc.rbuf)
}

// WriteFrame encodes f into the reusable scratch and sends it with a
// single flush — zero allocations on the steady-state arrive path.
func (fc *FrameConn) WriteFrame(f Frame) error {
	buf, err := AppendFrame(fc.wbuf[:0], f)
	if err != nil {
		return err
	}
	fc.wbuf = buf
	if _, err := fc.bw.Write(buf); err != nil {
		return err
	}
	return fc.bw.Flush()
}

// WriteFrameTimeout is WriteFrame with the write bounded by d (0 = no
// bound). The deadline stays armed afterwards; callers that interleave
// bounded and unbounded writes clear it with SetWriteDeadline.
func (fc *FrameConn) WriteFrameTimeout(f Frame, d time.Duration) error {
	if d > 0 {
		fc.conn.SetWriteDeadline(time.Now().Add(d))
	}
	return fc.WriteFrame(f)
}

// SetReadDeadline bounds the read half: a deadline in the past unblocks a
// pending ReadFrame, which is how context-cancelled waits abandon the
// connection.
func (fc *FrameConn) SetReadDeadline(t time.Time) error { return fc.conn.SetReadDeadline(t) }

// SetWriteDeadline bounds the write half.
func (fc *FrameConn) SetWriteDeadline(t time.Time) error { return fc.conn.SetWriteDeadline(t) }

// Close closes the underlying connection; pending reads and writes on
// both halves fail.
func (fc *FrameConn) Close() error { return fc.conn.Close() }
