package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strings"
	"testing"
)

// sampleFrames covers every frame type with representative field values,
// including edge cases (empty strings, negative ids, NaN floats).
func sampleFrames() []Frame {
	return []Frame{
		{Type: TypeJoinReq, Version: ProtocolVersion, Name: "sor-sweep", P: 64, ID: -1},
		{Type: TypeJoinReq, Version: ProtocolVersion, Name: "x", P: 1, ID: 0},
		{Type: TypeJoinResp, Version: ProtocolVersion, ID: 7, P: 64, Degree: 4, Episode: 12},
		{Type: TypeJoinResp, Version: ProtocolVersion, Err: "session is full"},
		{Type: TypeShardJoin, Version: ProtocolVersion, Name: "fleet", P: 4, ID: -1},
		{Type: TypeShardJoin, Version: ProtocolVersion, Name: "s", P: 1, ID: 0},
		{Type: TypeShardArrive, Episode: 17, P: 64, Spread: 1.5e-4, Sigma: 2.5e-4, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Type: TypeShardArrive, Episode: 1<<63 - 1, P: 1, Spread: math.NaN(), Sigma: math.Inf(1), Data: []byte{}},
		{Type: TypeShardRelease, Episode: 17, Degree: 2, P: 4, Epoch: 3, Spread: 1.5e-4, Sigma: 2.5e-4, FleetP: 256, Data: []byte{0xca, 0xfe}},
		{Type: TypeShardRelease, Episode: 0, Degree: 2, P: 1, FleetP: 1, Spread: math.Inf(-1), Sigma: math.NaN(), Data: []byte{}},
		{Type: TypeArrive, Episode: 0},
		{Type: TypeArrive, Episode: 1<<63 - 1},
		{Type: TypeRelease, Episode: 999, Degree: 64, P: 128, Epoch: 7, Spread: 3.25e-4, Sigma: 2.5e-4},
		{Type: TypeRelease, Episode: 0, Degree: 2, P: 2, Epoch: 0, Spread: math.NaN(), Sigma: math.Inf(1)},
		{Type: TypePoison, Cause: []byte{0x01}},
		{Type: TypePoison, Cause: []byte{}},
		{Type: TypeLeave},
		{Type: TypeArriveData, Episode: 3, Data: []byte{0, 0, 0, 0, 0, 0, 0, 42}},
		{Type: TypeArriveData, Episode: 1<<63 - 1, Data: []byte{}},
		{Type: TypeResult, Episode: 999, Degree: 4, P: 64, Epoch: 7, Spread: 3.25e-4, Sigma: 2.5e-4, Data: []byte{0xde, 0xad, 0xbe, 0xef}},
		{Type: TypeResult, Episode: 0, Degree: 2, P: 2, Spread: math.NaN(), Sigma: math.Inf(-1), Data: bytes.Repeat([]byte{7}, 128)},
	}
}

// framesEqual compares frames treating float fields by bit pattern (NaN ==
// NaN on the wire) and nil/empty byte slices as equal.
func framesEqual(a, b Frame) bool {
	if a.Type != b.Type || a.Version != b.Version || a.Name != b.Name ||
		a.P != b.P || a.ID != b.ID || a.FleetP != b.FleetP ||
		a.Degree != b.Degree || a.Episode != b.Episode || a.Epoch != b.Epoch ||
		a.Err != b.Err {
		return false
	}
	if math.Float64bits(a.Spread) != math.Float64bits(b.Spread) ||
		math.Float64bits(a.Sigma) != math.Float64bits(b.Sigma) {
		return false
	}
	return bytes.Equal(a.Cause, b.Cause) && bytes.Equal(a.Data, b.Data)
}

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range sampleFrames() {
		buf, err := AppendFrame(nil, f)
		if err != nil {
			t.Fatalf("encode %+v: %v", f, err)
		}
		got, err := ReadFrame(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("read back %+v: %v", f, err)
		}
		want := f
		if want.Cause != nil && len(want.Cause) == 0 {
			want.Cause = nil // empty and absent cause are the same frame
		}
		if got.Cause != nil && len(got.Cause) == 0 {
			got.Cause = nil
		}
		if !framesEqual(got, want) {
			t.Errorf("round trip changed frame:\n  sent %+v\n  got  %+v", f, got)
		}
	}
}

func TestWriteFrameMatchesAppendFrame(t *testing.T) {
	for _, f := range sampleFrames() {
		want, err := AppendFrame(nil, f)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("WriteFrame and AppendFrame disagree for type %d", f.Type)
		}
	}
}

func TestDecodeFrameRejects(t *testing.T) {
	cases := map[string][]byte{
		"empty body":                  {},
		"unknown type":                {42},
		"truncated join name":         {TypeJoinReq, 0},
		"join name overruns":          {TypeJoinReq, 0, 5, 'a', 'b'},
		"join missing p/id":           {TypeJoinReq, 0, 1, 'a', 0, 0},
		"join trailing garbage":       {TypeJoinReq, 0, 0, 0, 0, 0, 1, 0xff, 0xff, 0xff, 0xff, 9},
		"arrive short":                {TypeArrive, 1, 2, 3},
		"arrive long":                 {TypeArrive, 1, 2, 3, 4, 5, 6, 7, 8, 9},
		"release short":               {TypeRelease, 0},
		"leave with payload":          {TypeLeave, 1},
		"poison truncated cause":      {TypePoison, 0, 9, 1},
		"joinresp short":              {TypeJoinResp, 0, 0, 0, 1},
		"arrive-data short":           {TypeArriveData, 1, 2, 3},
		"arrive-data truncated len":   {TypeArriveData, 0, 0, 0, 0, 0, 0, 0, 0, 7},
		"arrive-data payload overrun": {TypeArriveData, 0, 0, 0, 0, 0, 0, 0, 0, 0, 9, 1, 2},
		"arrive-data trailing":        append(mustEncodeBody(Frame{Type: TypeArriveData, Episode: 1, Data: []byte{5}}), 0xff),
		"result short":                {TypeResult, 1, 2, 3},
		"result truncated len":        append(append([]byte{TypeResult}, make([]byte, 40)...), 0, 9),
		"result trailing":             append(mustEncodeBody(Frame{Type: TypeResult, Data: []byte{5}}), 0xff),
		"shard-join no version":       {TypeShardJoin},
		"shard-join truncated name":   {TypeShardJoin, ProtocolVersion, 0},
		"shard-join missing id":       {TypeShardJoin, ProtocolVersion, 0, 1, 's', 0, 0},
		"shard-arrive short":          {TypeShardArrive, 1, 2, 3},
		"shard-arrive truncated len":  append(append([]byte{TypeShardArrive}, make([]byte, 28)...), 0, 9),
		"shard-arrive trailing":       append(mustEncodeBody(Frame{Type: TypeShardArrive, Episode: 1, Data: []byte{5}}), 0xff),
		"shard-release short":         {TypeShardRelease, 1, 2, 3},
		"shard-release truncated len": append(append([]byte{TypeShardRelease}, make([]byte, 44)...), 0, 9),
		"shard-release trailing":      append(mustEncodeBody(Frame{Type: TypeShardRelease, Data: []byte{5}}), 0xff),
	}
	for name, body := range cases {
		if _, err := DecodeFrame(body); err == nil {
			t.Errorf("%s: decode accepted %v", name, body)
		}
	}
}

// mustEncodeBody returns f's encoded body (without the length prefix) for
// building corrupt variants.
func mustEncodeBody(f Frame) []byte {
	buf, err := AppendFrame(nil, f)
	if err != nil {
		panic(err)
	}
	return buf[lenSize:]
}

// TestProtocolVersionMismatch pins the fail-fast contract for
// mixed-revision deployments: a handshake frame carrying any revision
// other than ProtocolVersion is rejected with an error naming both
// revisions, never mis-decoded into a plausible-looking frame.
func TestProtocolVersionMismatch(t *testing.T) {
	for _, typ := range []byte{TypeJoinReq, TypeJoinResp, TypeShardJoin} {
		var good Frame
		switch typ {
		case TypeJoinReq, TypeShardJoin:
			good = Frame{Type: typ, Name: "s", P: 2, ID: -1}
		case TypeJoinResp:
			good = Frame{Type: typ, ID: 1, P: 2, Degree: 2, Episode: 3}
		}
		body := mustEncodeBody(good)
		if body[1] != ProtocolVersion {
			t.Fatalf("%s: version byte not at offset 1", FrameName(typ))
		}
		body[1] = ProtocolVersion + 1
		_, err := DecodeFrame(body)
		if err == nil {
			t.Fatalf("%s: future-revision frame decoded", FrameName(typ))
		}
		msg := err.Error()
		for _, want := range []string{"version mismatch",
			fmt.Sprintf("v%d", ProtocolVersion+1), fmt.Sprintf("v%d", ProtocolVersion)} {
			if !strings.Contains(msg, want) {
				t.Errorf("%s: mismatch error %q does not mention %q", FrameName(typ), msg, want)
			}
		}
	}
	// Episode frames carry no version byte: the handshake already
	// established it, and the hot path should not pay for re-checking.
	body := mustEncodeBody(Frame{Type: TypeArrive, Episode: 5})
	if got, err := DecodeFrame(body); err != nil || got.Episode != 5 {
		t.Fatalf("arrive decode = %+v, %v", got, err)
	}
}

// TestDecodeFrameErrorsNameTypes pins the symbolic frame names in decoder
// and encoder errors: diagnostics must say "arrive-data", not "type 7".
func TestDecodeFrameErrorsNameTypes(t *testing.T) {
	if got := FrameName(TypeArriveData); got != "arrive-data" {
		t.Fatalf("FrameName(TypeArriveData) = %q", got)
	}
	if got := FrameName(200); got != "type(200)" {
		t.Fatalf("FrameName(200) = %q", got)
	}
	for _, tc := range []struct {
		body []byte
		want string
	}{
		{[]byte{TypeArriveData, 1}, "arrive-data"},
		{[]byte{TypeResult, 1}, "result"},
		{[]byte{200}, "type(200)"},
	} {
		_, err := DecodeFrame(tc.body)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("decode %v: error %q does not name %q", tc.body, err, tc.want)
		}
	}
	_, err := AppendFrame(nil, Frame{Type: TypeResult, Data: make([]byte, MaxData+1)})
	if err == nil || !strings.Contains(err.Error(), "result") {
		t.Errorf("oversize result encode error %q does not name the frame", err)
	}
}

func TestReadFrameBoundsLength(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); err == nil || !strings.Contains(err.Error(), "frame length") {
		t.Fatalf("oversized length prefix not rejected: %v", err)
	}
	binary.BigEndian.PutUint32(hdr[:], 0)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("zero length prefix not rejected")
	}
}

// FuzzDecodeFrame asserts the decoder is total (no panics, no
// out-of-bounds) and canonical: any body that decodes re-encodes to a
// frame that decodes to the same value.
func FuzzDecodeFrame(f *testing.F) {
	for _, fr := range sampleFrames() {
		buf, err := AppendFrame(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf[lenSize:]) // seed with the body, which is what DecodeFrame sees
	}
	f.Add([]byte{})
	f.Add([]byte{TypeJoinReq, 0xff, 0xff})
	f.Add([]byte{TypePoison, 0, 3, 2, 0, 1})
	f.Add([]byte{TypeJoinReq, ProtocolVersion + 1, 0, 1, 'a', 0, 0, 0, 2, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{TypeShardJoin, ProtocolVersion, 0xff, 0xff})
	f.Add([]byte{TypeShardArrive, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 9})
	f.Fuzz(func(t *testing.T, body []byte) {
		fr, err := DecodeFrame(body)
		if err != nil {
			return
		}
		buf, err := AppendFrame(nil, fr)
		if err != nil {
			t.Fatalf("decoded frame %+v does not re-encode: %v", fr, err)
		}
		again, err := DecodeFrame(buf[lenSize:])
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if !framesEqual(fr, again) {
			t.Fatalf("decode/encode/decode not stable:\n  first  %+v\n  second %+v", fr, again)
		}
	})
}

// TestFrameEncodeRejectsOversize pins the encoder-side limits the decoder
// enforces, so an unencodable frame can never be produced in the first
// place.
func TestFrameEncodeRejectsOversize(t *testing.T) {
	if _, err := AppendFrame(nil, Frame{Type: TypeJoinReq, Name: strings.Repeat("n", MaxName+1)}); err == nil {
		t.Error("oversized session name encoded")
	}
	if _, err := AppendFrame(nil, Frame{Type: TypePoison, Cause: make([]byte, 1<<16)}); err == nil {
		t.Error("oversized poison cause encoded")
	}
	if _, err := AppendFrame(nil, Frame{Type: 99}); err == nil {
		t.Error("unknown frame type encoded")
	}
	// Oversize collective payloads are refused before a byte is encoded.
	dst := []byte{0xAA}
	if _, err := AppendFrame(dst, Frame{Type: TypeArriveData, Data: make([]byte, MaxData+1)}); err == nil {
		t.Error("oversized arrive-data payload encoded")
	}
	if _, err := AppendFrame(dst, Frame{Type: TypeResult, Data: make([]byte, MaxData+1)}); err == nil {
		t.Error("oversized result payload encoded")
	}
	if len(dst) != 1 || dst[0] != 0xAA {
		t.Error("rejected encode mutated dst")
	}
}

func TestReadFrameIntoReusesBuffer(t *testing.T) {
	frames := []Frame{
		{Type: TypeArrive, Episode: 7},
		{Type: TypeRelease, Episode: 7, Degree: 4, P: 8, Epoch: 2, Spread: 1e-4, Sigma: 2e-4},
		{Type: TypeArriveData, Episode: 8, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Type: TypeArrive, Episode: 9},
	}
	var wire []byte
	for _, f := range frames {
		var err error
		wire, err = AppendFrame(wire, f)
		if err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(wire)
	var buf []byte
	for i, want := range frames {
		got, err := ReadFrameInto(r, &buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Episode != want.Episode || !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("frame %d = %+v, want %+v", i, got, want)
		}
		if i > 0 && buf == nil {
			t.Fatal("ReadFrameInto never populated the reusable buffer")
		}
	}
	// Once the buffer has grown to cover the largest frame, further reads
	// must not allocate (this is the hot loop's contract; the client and
	// server per-connection read paths rely on it).
	r2 := bytes.NewReader(wire)
	avg := testing.AllocsPerRun(50, func() {
		if _, err := r2.Seek(0, 0); err != nil {
			t.Fatal(err)
		}
		for range frames {
			if _, err := ReadFrameInto(r2, &buf); err != nil {
				t.Fatal(err)
			}
		}
	})
	if avg != 0 {
		t.Fatalf("warm ReadFrameInto allocated %.2f times per wire replay, want 0", avg)
	}
}

func TestReadFrameIntoShortBody(t *testing.T) {
	full, err := AppendFrame(nil, Frame{Type: TypeRelease, Episode: 3, Degree: 4, P: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	if _, err := ReadFrameInto(bytes.NewReader(full[:len(full)-2]), &buf); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated body: err = %v, want io.ErrUnexpectedEOF", err)
	}
	if _, err := ReadFrameInto(bytes.NewReader(full[:2]), &buf); err == nil {
		t.Fatal("truncated header: want an error")
	}
}
