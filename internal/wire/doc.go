// Package wire is the transport layer under the networked barrier stack:
// the frame codec the peers speak, the transport abstraction they speak it
// over, and the shared per-connection frame I/O machinery.
//
// The package splits into three layers:
//
//   - The frame codec (frame.go): eleven length-prefixed binary frame
//     types covering the whole session lifecycle — join handshakes
//     (version-checked), per-episode arrivals and releases, collective
//     payloads, poison causes, and the inter-shard dialect a leaf barrierd
//     speaks to its root. AppendFrame/DecodeFrame are total and
//     fuzz-tested; ReadFrameInto is the zero-allocation steady-state read
//     path every connection runs on.
//
//   - The transport abstraction (transport.go): Conn and Listener are
//     plain net.Conn/net.Listener — deadlines included, which the
//     watchdog, stall, and cancellation machinery all lean on — and
//     Dialer/Transport abstract how connections are made. TCP is the
//     production transport (Nagle disabled, OS keepalive armed, both
//     configurable); Redial wraps any Dialer with the bounded
//     backoff-retry loop fleet bringup needs. The in-process memnet
//     transport and the fault-injecting chaos wrapper live in the
//     subpackages wire/memnet and wire/chaos.
//
//   - FrameConn (framec.go): one peer's framed view of a Conn — buffered
//     reader/writer plus reusable encode/decode scratch, so the
//     steady-state read and write paths allocate nothing. It is the I/O
//     core shared by the netbarrier client and the shardbarrier leaf→root
//     link, which previously each carried a copy of it.
//
// Everything above this package — netbarrier's client and server,
// shardbarrier's leaves and root links, cmd/barrierd — is written against
// Dialer/Transport/Conn, so a test (or a chaos run) swaps the whole stack
// onto an in-process or fault-injecting network by passing a different
// Transport; no consumer knows the difference.
package wire
