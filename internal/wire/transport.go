package wire

import (
	"fmt"
	"net"
	"time"
)

// Conn is the stream a barrierd peer speaks frames over. It is exactly
// net.Conn — deadlines included, which the join timeout, stall watchdog,
// and context-cancelled waits all rely on — aliased so alternative
// transports (memnet, chaos) slot in without adapters.
type Conn = net.Conn

// Listener accepts Conns; it is exactly net.Listener for the same reason.
type Listener = net.Listener

// Dialer establishes connections to a barrierd peer. timeout bounds the
// whole connection attempt (0 = no bound).
type Dialer interface {
	Dial(addr string, timeout time.Duration) (Conn, error)
}

// Transport is a bidirectional transport: it dials peers and binds
// listeners in one address namespace, so a server listening on an address
// is reachable by dialing that same address through the same Transport.
type Transport interface {
	Dialer
	Listen(addr string) (Listener, error)
}

// DefaultKeepAlive is the OS keepalive probe period TCP uses when none is
// configured: long enough not to matter on a healthy link, short enough
// that a peer that silently vanished — powered off, cable pulled, NAT
// state dropped — is detected even between episodes, when neither side is
// writing.
const DefaultKeepAlive = 15 * time.Second

// TCP is the production transport: TCP with Nagle disabled (arrive and
// release frames are latency-bound; batching them behind delayed ACKs
// costs episode time) and OS keepalive armed on both dialed and accepted
// connections. The zero value is the stack's default configuration.
type TCP struct {
	// KeepAlive is the keepalive probe period armed on every connection:
	// 0 selects DefaultKeepAlive, negative disables probing entirely.
	KeepAlive time.Duration
	// Nagle re-enables Nagle's algorithm (leaves TCP_NODELAY unset) for
	// workloads that prefer batching over per-frame latency.
	Nagle bool
}

// DefaultTCP is the transport consumers fall back to when none is
// configured: default keepalive, Nagle off.
var DefaultTCP = &TCP{}

func (t *TCP) keepAlive() time.Duration {
	switch {
	case t.KeepAlive == 0:
		return DefaultKeepAlive
	case t.KeepAlive < 0:
		return -1 // net.Dialer's "disable" convention
	default:
		return t.KeepAlive
	}
}

// tune applies the transport's socket options to a dialed or accepted
// connection. Keepalive is armed here only on the accept side; the dial
// side configures it through net.Dialer.
func (t *TCP) tune(conn Conn, accepted bool) {
	tc, ok := conn.(*net.TCPConn)
	if !ok {
		return
	}
	if !t.Nagle {
		tc.SetNoDelay(true)
	}
	if accepted {
		if ka := t.keepAlive(); ka > 0 {
			tc.SetKeepAlive(true)
			tc.SetKeepAlivePeriod(ka)
		}
	}
}

// Dial implements Dialer: one TCP connection attempt bounded by timeout,
// with the transport's keepalive and Nagle settings applied.
func (t *TCP) Dial(addr string, timeout time.Duration) (Conn, error) {
	d := net.Dialer{Timeout: timeout, KeepAlive: t.keepAlive()}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	t.tune(conn, false)
	return conn, nil
}

// Listen implements Transport. Accepted connections get the same socket
// options as dialed ones, so a peer behind either end of the link is
// detected by keepalive and pays no Nagle latency.
func (t *TCP) Listen(addr string) (Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{Listener: ln, t: t}, nil
}

type tcpListener struct {
	net.Listener
	t *TCP
}

func (l *tcpListener) Accept() (Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.t.tune(conn, true)
	return conn, nil
}

// Redial is Dial with a bounded reconnect loop: up to attempts tries
// through d, sleeping backoff after the first failure and doubling it
// after each subsequent one (capped at 30× the initial backoff). It
// returns the first successful connection or the last dial error. The
// inter-shard leaf→root link uses it so a root that is still starting up —
// the common fleet-bringup race — is retried instead of failing the first
// session, while a root that is genuinely gone still fails within a bound
// the caller chose.
func Redial(d Dialer, addr string, timeout time.Duration, attempts int, backoff time.Duration) (Conn, error) {
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	sleep := backoff
	for try := 0; try < attempts; try++ {
		if try > 0 && sleep > 0 {
			time.Sleep(sleep)
			if sleep < 30*backoff {
				sleep *= 2
			}
		}
		conn, err := d.Dial(addr, timeout)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("wire: dialing %s failed after %d attempts: %w", addr, attempts, lastErr)
}
