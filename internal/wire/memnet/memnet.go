// Package memnet is an in-process wire.Transport: goroutine-scheduled
// connections over buffered byte pipes, one address namespace per Net.
// Protocol tests run on it instead of loopback TCP — no kernel socket
// costs, no ephemeral-port collisions, no listen backlog — and the chaos
// wrapper (wire/chaos) composes over it for deterministic fault runs.
//
// Fidelity: connections are streams with full deadline support (read and
// write, including the deadline-in-the-past unblock the cancellation
// machinery relies on), bounded buffering (writes block when the peer
// stops reading, so write timeouts are as real as on TCP), and TCP-like
// close semantics (a peer's reads drain buffered bytes before EOF; writes
// to a closed peer fail). What it deliberately lacks: keepalive probes
// (nothing can silently vanish in-process) and any notion of latency —
// the chaos wrapper injects that.
package memnet

import (
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"softbarrier/internal/wire"
)

// bufCap bounds each direction's in-flight bytes. Larger than any frame
// (wire.MaxFrame is 1 MiB-bounded payloads are not used by the stack;
// steady-state frames are tens of bytes) yet small enough that a reader
// that stops draining exerts backpressure like a full TCP window.
const bufCap = 1 << 18

// Net is one in-process network: an address namespace of listeners.
// The zero value is not usable; construct with New. A Net implements
// wire.Transport, so a server listening on an address is reachable by
// dialing that address through the same Net.
type Net struct {
	mu        sync.Mutex
	listeners map[string]*listener
	nextPort  int
	nextConn  int
}

// New returns an empty in-process network.
func New() *Net {
	return &Net{listeners: make(map[string]*listener), nextPort: 49152}
}

// addr is a memnet address.
type addr string

func (a addr) Network() string { return "mem" }
func (a addr) String() string  { return string(a) }

// canonical resolves the "host:0" ephemeral-port convention TCP callers
// use, so code written against net.Listen("tcp", "127.0.0.1:0") runs
// unchanged on a memnet.
func (n *Net) canonical(s string) string {
	host := s
	if i := strings.LastIndexByte(s, ':'); i >= 0 {
		port := s[i+1:]
		host = s[:i]
		if port != "0" && port != "" {
			return s
		}
	}
	if host == "" {
		host = "mem"
	}
	n.nextPort++
	return fmt.Sprintf("%s:%d", host, n.nextPort)
}

// Listen binds a listener on addr within this Net's namespace. A port of
// ":0" (or a bare host) allocates a fresh address, mirroring TCP's
// ephemeral ports.
func (n *Net) Listen(s string) (wire.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := n.canonical(s)
	if _, taken := n.listeners[key]; taken {
		return nil, &net.OpError{Op: "listen", Net: "mem", Addr: addr(key), Err: fmt.Errorf("address already in use")}
	}
	ln := &listener{net: n, addr: addr(key), ch: make(chan wire.Conn, 128), done: make(chan struct{})}
	n.listeners[key] = ln
	return ln, nil
}

// Dial connects to a listener in this Net's namespace, bounded by timeout
// (0 = no bound). Dialing an address nobody listens on is refused
// immediately, like TCP loopback.
func (n *Net) Dial(s string, timeout time.Duration) (wire.Conn, error) {
	n.mu.Lock()
	ln := n.listeners[s]
	n.nextConn++
	local := addr(fmt.Sprintf("mem:c%d", n.nextConn))
	n.mu.Unlock()
	if ln == nil {
		return nil, &net.OpError{Op: "dial", Net: "mem", Addr: addr(s), Err: fmt.Errorf("connection refused")}
	}
	up, down := newPipe(), newPipe()
	client := &conn{local: local, remote: ln.addr, rd: down, wr: up}
	server := &conn{local: ln.addr, remote: local, rd: up, wr: down}
	var expire <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expire = t.C
	}
	select {
	case ln.ch <- server:
		return client, nil
	case <-ln.done:
		return nil, &net.OpError{Op: "dial", Net: "mem", Addr: addr(s), Err: fmt.Errorf("connection refused")}
	case <-expire:
		return nil, &net.OpError{Op: "dial", Net: "mem", Addr: addr(s), Err: os.ErrDeadlineExceeded}
	}
}

// listener accepts the server halves Dial enqueues.
type listener struct {
	net  *Net
	addr addr
	ch   chan wire.Conn
	done chan struct{}
	once sync.Once
}

func (l *listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, &net.OpError{Op: "accept", Net: "mem", Addr: l.addr, Err: net.ErrClosed}
	}
}

func (l *listener) Addr() net.Addr { return l.addr }

func (l *listener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		if cur := l.net.listeners[string(l.addr)]; cur == l {
			delete(l.net.listeners, string(l.addr))
		}
		l.net.mu.Unlock()
		// Connections already queued but never accepted are dead ends;
		// close them so their dialers' reads fail instead of hanging.
		for {
			select {
			case c := <-l.ch:
				c.Close()
			default:
				return
			}
		}
	})
	return nil
}

// conn is one endpoint: it reads from rd and writes to wr.
type conn struct {
	local, remote addr
	rd, wr        *pipe
	closed        sync.Once
}

func (c *conn) Read(p []byte) (int, error)  { return c.rd.read(p) }
func (c *conn) Write(p []byte) (int, error) { return c.wr.write(p) }

func (c *conn) Close() error {
	c.closed.Do(func() {
		// Outgoing half: the peer drains what was written, then sees EOF.
		c.wr.closeWrite()
		// Incoming half: our own pending and future reads fail, and the
		// peer's writes fail — the "connection reset" side of a TCP close.
		c.rd.closeRead()
	})
	return nil
}

func (c *conn) LocalAddr() net.Addr  { return c.local }
func (c *conn) RemoteAddr() net.Addr { return c.remote }

func (c *conn) SetDeadline(t time.Time) error {
	c.rd.setReadDeadline(t)
	c.wr.setWriteDeadline(t)
	return nil
}
func (c *conn) SetReadDeadline(t time.Time) error  { c.rd.setReadDeadline(t); return nil }
func (c *conn) SetWriteDeadline(t time.Time) error { c.wr.setWriteDeadline(t); return nil }

// pipe is one direction of a connection: a bounded FIFO of bytes with
// deadline-aware blocking reads and writes.
type pipe struct {
	mu   sync.Mutex
	cond *sync.Cond

	buf []byte
	off int // consumed prefix of buf

	wclosed bool // writer hung up: reads drain, then EOF
	rclosed bool // reader hung up: reads fail; writes get one grace then fail
	rst     bool // a write already landed after rclosed: the RST is back

	rdeadline, wdeadline time.Time
	rtimer, wtimer       *time.Timer
}

func newPipe() *pipe {
	p := &pipe{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *pipe) pending() int { return len(p.buf) - p.off }

func (p *pipe) read(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.rclosed {
			return 0, &net.OpError{Op: "read", Net: "mem", Err: net.ErrClosed}
		}
		if p.pending() > 0 {
			n := copy(b, p.buf[p.off:])
			p.off += n
			if p.off == len(p.buf) {
				p.buf = p.buf[:0]
				p.off = 0
			}
			p.cond.Broadcast() // space freed: wake writers
			return n, nil
		}
		if p.wclosed {
			// Plain io.EOF, exactly like a TCP read after the peer's FIN:
			// the frame reader distinguishes clean EOF from a mid-frame cut.
			return 0, io.EOF
		}
		if !p.rdeadline.IsZero() && !time.Now().Before(p.rdeadline) {
			return 0, &net.OpError{Op: "read", Net: "mem", Err: os.ErrDeadlineExceeded}
		}
		p.cond.Wait()
	}
}

func (p *pipe) write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for {
		if p.wclosed {
			return total, &net.OpError{Op: "write", Net: "mem", Err: fmt.Errorf("write on closed connection")}
		}
		if p.rclosed {
			// TCP-like: the first write after the peer's close is accepted
			// locally (and discarded — nobody will read it), exactly as a
			// kernel buffers a write racing the peer's FIN; the RST that
			// write provokes fails every later write, like EPIPE.
			if p.rst {
				return total, &net.OpError{Op: "write", Net: "mem", Err: fmt.Errorf("connection reset by peer")}
			}
			p.rst = true
			return total + len(b), nil
		}
		if space := bufCap - p.pending(); space > 0 && len(b) > 0 {
			n := len(b)
			if n > space {
				n = space
			}
			p.buf = append(p.buf, b[:n]...)
			b = b[n:]
			total += n
			p.cond.Broadcast() // bytes available: wake readers
		}
		if len(b) == 0 {
			return total, nil
		}
		if !p.wdeadline.IsZero() && !time.Now().Before(p.wdeadline) {
			return total, &net.OpError{Op: "write", Net: "mem", Err: os.ErrDeadlineExceeded}
		}
		p.cond.Wait()
	}
}

func (p *pipe) closeWrite() {
	p.mu.Lock()
	p.wclosed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *pipe) closeRead() {
	p.mu.Lock()
	p.rclosed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// setReadDeadline arms the read half's deadline: blocked reads are woken
// when it expires (a deadline already in the past wakes them now, the
// unblock the cancellation machinery relies on).
func (p *pipe) setReadDeadline(t time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rdeadline = t
	if p.rtimer != nil {
		p.rtimer.Stop()
		p.rtimer = nil
	}
	if !t.IsZero() {
		if d := time.Until(t); d > 0 {
			p.rtimer = time.AfterFunc(d, p.cond.Broadcast)
		}
	}
	p.cond.Broadcast()
}

func (p *pipe) setWriteDeadline(t time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wdeadline = t
	if p.wtimer != nil {
		p.wtimer.Stop()
		p.wtimer = nil
	}
	if !t.IsZero() {
		if d := time.Until(t); d > 0 {
			p.wtimer = time.AfterFunc(d, p.cond.Broadcast)
		}
	}
	p.cond.Broadcast()
}

