package memnet

import (
	"bytes"
	"errors"
	"io"
	"os"
	"sync"
	"testing"
	"time"

	"softbarrier/internal/wire"
)

// TestMemNetRoundTrip drives a full frame exchange through a memnet
// listener: the same codec path the netbarrier stack runs, minus TCP.
func TestMemNetRoundTrip(t *testing.T) {
	n := New()
	ln, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	want := wire.Frame{Type: wire.TypeArriveData, Episode: 7, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		fc := wire.NewFrameConn(conn)
		f, err := fc.ReadFrame()
		if err != nil {
			done <- err
			return
		}
		if f.Type != want.Type || f.Episode != want.Episode || !bytes.Equal(f.Data, want.Data) {
			done <- errors.New("frame mangled in transit")
			return
		}
		done <- fc.WriteFrame(wire.Frame{Type: wire.TypeRelease, Episode: 7, P: 2, Degree: 2})
	}()

	conn, err := n.Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fc := wire.NewFrameConn(conn)
	if err := fc.WriteFrame(want); err != nil {
		t.Fatal(err)
	}
	rel, err := fc.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if rel.Type != wire.TypeRelease || rel.Episode != 7 {
		t.Fatalf("got %s episode %d; want release of episode 7", wire.FrameName(rel.Type), rel.Episode)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestMemNetEphemeralAddrsDistinct(t *testing.T) {
	n := New()
	a, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if a.Addr().String() == b.Addr().String() {
		t.Fatalf("two ephemeral listeners share address %s", a.Addr())
	}
	if _, err := n.Listen(a.Addr().String()); err == nil {
		t.Fatal("rebinding a bound address succeeded")
	}
	a.Close()
	if _, err := n.Listen(a.Addr().String()); err != nil {
		t.Fatalf("rebinding after close: %v", err)
	}
	_ = b
}

func TestMemNetDialRefused(t *testing.T) {
	n := New()
	if _, err := n.Dial("nobody:1", time.Second); err == nil {
		t.Fatal("dialing an unbound address succeeded")
	}
}

// TestMemNetReadDeadline checks both expiry while blocked and the
// deadline-in-the-past unblock that cancellation relies on.
func TestMemNetReadDeadline(t *testing.T) {
	n := New()
	ln, _ := n.Listen("x:0")
	defer ln.Close()
	go func() {
		c, _ := ln.Accept()
		_ = c // never writes
	}()
	conn, err := n.Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 1)
	start := time.Now()
	_, err = conn.Read(buf)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("read error = %v; want deadline exceeded", err)
	}
	if since := time.Since(start); since > time.Second {
		t.Fatalf("deadline took %v to fire", since)
	}
	var ne interface{ Timeout() bool }
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("deadline error %v is not a net timeout", err)
	}

	// Unblock a read already in flight by setting a past deadline.
	conn.SetReadDeadline(time.Time{})
	got := make(chan error, 1)
	go func() {
		_, err := conn.Read(buf)
		got <- err
	}()
	time.Sleep(20 * time.Millisecond)
	conn.SetReadDeadline(time.Unix(0, 1))
	select {
	case err := <-got:
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("unblocked read error = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("past deadline did not unblock the pending read")
	}
}

// TestMemNetBackpressure: a reader that stops draining blocks the writer,
// whose write deadline then fires — the semantics the server's fan-out
// write timeout depends on.
func TestMemNetBackpressure(t *testing.T) {
	n := New()
	ln, _ := n.Listen("x:0")
	defer ln.Close()
	accepted := make(chan wire.Conn, 1)
	go func() {
		c, _ := ln.Accept()
		accepted <- c
	}()
	conn, err := n.Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	<-accepted // peer exists but never reads

	conn.SetWriteDeadline(time.Now().Add(100 * time.Millisecond))
	chunk := make([]byte, 64<<10)
	var total int
	for {
		m, err := conn.Write(chunk)
		total += m
		if err != nil {
			if !errors.Is(err, os.ErrDeadlineExceeded) {
				t.Fatalf("write error = %v; want deadline exceeded", err)
			}
			break
		}
		if total > 64<<20 {
			t.Fatal("wrote 64 MiB into an unread connection; no backpressure")
		}
	}
}

// TestMemNetCloseSemantics: peer reads drain buffered bytes then see EOF;
// writes into a closed connection fail.
func TestMemNetCloseSemantics(t *testing.T) {
	n := New()
	ln, _ := n.Listen("x:0")
	defer ln.Close()
	accepted := make(chan wire.Conn, 1)
	go func() {
		c, _ := ln.Accept()
		accepted <- c
	}()
	conn, err := n.Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	server := <-accepted

	if _, err := conn.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	got, err := io.ReadAll(server)
	if err != nil {
		t.Fatalf("drain after close: %v", err)
	}
	if string(got) != "tail" {
		t.Fatalf("drained %q; want %q", got, "tail")
	}
	// Like TCP, the first write racing the peer's close is accepted (the
	// kernel buffers it; the RST comes back after) — the second fails.
	if _, err := server.Write([]byte("x")); err != nil {
		t.Fatalf("first write after peer close: %v; want TCP-like buffered success", err)
	}
	if _, err := server.Write([]byte("x")); err == nil {
		t.Fatal("second write to a closed peer succeeded")
	}
	if _, err := conn.Write([]byte("x")); err == nil {
		t.Fatal("write on a closed conn succeeded")
	}
}

// TestMemNetConcurrentConns runs many connections at once to shake out
// races in the namespace and pipes (meaningful under -race).
func TestMemNetConcurrentConns(t *testing.T) {
	n := New()
	ln, _ := n.Listen("x:0")
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c) // echo
			}()
		}
	}()
	const conns = 32
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := n.Dial(ln.Addr().String(), 5*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			msg := bytes.Repeat([]byte{byte(i)}, 1024)
			go c.Write(msg)
			buf := make([]byte, len(msg))
			if _, err := io.ReadFull(c, buf); err != nil {
				t.Errorf("conn %d: %v", i, err)
				return
			}
			if !bytes.Equal(buf, msg) {
				t.Errorf("conn %d: echo mangled", i)
			}
		}(i)
	}
	wg.Wait()
}
