package cli

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"softbarrier/internal/sweep"
)

func TestEngineFlags(t *testing.T) {
	f := &EngineFlags{Workers: 3}
	e, err := f.Engine(nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.Workers != 3 || e.Cache != nil {
		t.Fatalf("engine = %+v", e)
	}

	f.CacheDir = filepath.Join(t.TempDir(), "cache")
	e, err = f.Engine(nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.Cache == nil || e.Cache.Dir() != f.CacheDir {
		t.Fatalf("cache not opened at %q", f.CacheDir)
	}
}

func TestBuilderKinds(t *testing.T) {
	for _, kind := range []string{"classic", "mcs", "ring"} {
		f := &TreeFlags{Kind: kind, Rings: 2}
		build, err := f.Builder()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		tree := build(16, 4)
		if tree.P != 16 {
			t.Errorf("%s: built tree for %d processors", kind, tree.P)
		}
	}
	if _, err := (&TreeFlags{Kind: "heap"}).Builder(); err == nil {
		t.Error("unknown kind must error")
	}
	if _, err := (&TreeFlags{Kind: "ring", Rings: 0}).Builder(); err == nil {
		t.Error("zero rings must error")
	}
}

func TestRingBuilderDistributesRemainder(t *testing.T) {
	f := &TreeFlags{Kind: "ring", Rings: 3}
	tree, err := f.Build(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tree.P != 10 {
		t.Fatalf("ring tree covers %d processors, want 10", tree.P)
	}
}

func TestProgressPrinterThrottles(t *testing.T) {
	var b strings.Builder
	report := ProgressPrinter(&b)
	// Below the 2s threshold: silent.
	report(sweep.Progress{Done: 1, Total: 10, Elapsed: 100 * time.Millisecond})
	if b.Len() != 0 {
		t.Fatalf("printed too early: %q", b.String())
	}
	report(sweep.Progress{Done: 5, Total: 10, Elapsed: 3 * time.Second, Remaining: 3 * time.Second, CacheHits: 2})
	out := b.String()
	if !strings.Contains(out, "5/10") || !strings.Contains(out, "2 cached") || !strings.Contains(out, "eta") {
		t.Fatalf("progress line %q", out)
	}
	// Within a second of the last line: throttled.
	n := b.Len()
	report(sweep.Progress{Done: 6, Total: 10, Elapsed: 3*time.Second + 200*time.Millisecond})
	if b.Len() != n {
		t.Fatalf("throttle failed: %q", b.String())
	}
	// Completion always prints.
	report(sweep.Progress{Done: 10, Total: 10, Elapsed: 3*time.Second + 300*time.Millisecond})
	if !strings.Contains(b.String(), "10/10") {
		t.Fatalf("final line missing: %q", b.String())
	}
}

func TestDur(t *testing.T) {
	if d := Dur(0.0005); d != 500*time.Microsecond {
		t.Fatalf("Dur(0.0005) = %v", d)
	}
}

func TestNetFlagsOptions(t *testing.T) {
	f := &NetFlags{Watchdog: 3 * time.Second, Replan: 5, Dynamic: true, Tc: 1e-5, Sigma: 2e-4}
	opt, err := f.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opt.Watchdog != 3*time.Second || opt.ReplanEvery != 5 || !opt.Dynamic ||
		opt.Tc != 1e-5 || opt.InitialSigma != 2e-4 {
		t.Fatalf("options = %+v do not mirror flags %+v", opt, f)
	}
	if opt.Logf != nil {
		t.Fatal("Options must leave Logf for the caller to wire")
	}
	if opt.Op != nil {
		t.Fatal("no -collective flag must leave Op nil")
	}

	f.Collective = "sum-u64"
	opt, err = f.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opt.Op == nil || opt.Op.Name != "sum-u64" {
		t.Fatalf("collective flag not resolved: %+v", opt.Op)
	}

	f.Collective = "no-such-op"
	if _, err = f.Options(); err == nil {
		t.Fatal("unknown collective op accepted")
	}
}
