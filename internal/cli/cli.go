// Package cli holds the configuration plumbing shared by the simulation
// commands (cmd/experiments, cmd/degreeopt, cmd/barriersim): the
// -workers/-cache sweep-engine flags, tree-builder selection, a throttled
// progress printer, and duration formatting. Keeping it here means each
// main declares only the flags specific to its own question.
package cli

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"softbarrier"
	"softbarrier/internal/barriersim"
	"softbarrier/internal/netbarrier"
	"softbarrier/internal/sweep"
	"softbarrier/internal/topology"
	"softbarrier/internal/wire"
)

// EngineFlags carries the shared parallel-sweep configuration.
type EngineFlags struct {
	// Workers is the worker-pool bound; 0 selects all CPUs, 1 runs
	// sequentially. Results are identical either way (internal/sweep).
	Workers int
	// CacheDir, when non-empty, is the on-disk result cache directory;
	// it is created if absent.
	CacheDir string
}

// AddEngineFlags registers -workers and -cache on the default FlagSet.
func AddEngineFlags() *EngineFlags {
	f := &EngineFlags{}
	flag.IntVar(&f.Workers, "workers", 0, "parallel sweep workers (0 = all CPUs, 1 = sequential; results identical)")
	flag.StringVar(&f.CacheDir, "cache", "", "directory for the on-disk sweep result cache (empty = no cache)")
	return f
}

// Engine builds the sweep engine the flags describe. Progress is reported
// to w (nil disables reporting) for sweeps that run long enough to matter.
func (f *EngineFlags) Engine(w io.Writer) (*sweep.Engine, error) {
	e := &sweep.Engine{Workers: f.Workers}
	if f.CacheDir != "" {
		c, err := sweep.OpenCache(f.CacheDir)
		if err != nil {
			return nil, err
		}
		e.Cache = c
	}
	if w != nil {
		e.Report = ProgressPrinter(w)
	}
	return e, nil
}

// ProgressPrinter returns a sweep progress callback that prints points
// done / total with an ETA to w. It stays silent for sweeps that finish
// within two seconds and then throttles itself to one line per second, so
// fast grids produce no output at all.
func ProgressPrinter(w io.Writer) func(sweep.Progress) {
	var last time.Duration
	started := false
	return func(p sweep.Progress) {
		if p.Elapsed < 2*time.Second {
			return
		}
		if started && p.Done < p.Total && p.Elapsed-last < time.Second {
			return
		}
		started = true
		last = p.Elapsed
		line := fmt.Sprintf("sweep %d/%d points", p.Done, p.Total)
		if p.CacheHits > 0 {
			line += fmt.Sprintf(" (%d cached)", p.CacheHits)
		}
		line += fmt.Sprintf(", elapsed %s", p.Elapsed.Round(100*time.Millisecond))
		if p.Remaining > 0 {
			line += fmt.Sprintf(", eta %s", p.Remaining.Round(100*time.Millisecond))
		}
		fmt.Fprintln(w, line)
	}
}

// TreeFlags carries the shared combining-tree topology configuration.
type TreeFlags struct {
	// Kind is "classic", "mcs" or "ring".
	Kind string
	// Rings is the ring count for Kind "ring".
	Rings int
}

// AddTreeFlags registers -tree and -rings on the default FlagSet.
func AddTreeFlags() *TreeFlags {
	f := &TreeFlags{}
	flag.StringVar(&f.Kind, "tree", "classic", "tree kind: classic | mcs | ring")
	flag.IntVar(&f.Rings, "rings", 2, "number of rings for -tree ring")
	return f
}

// Builder returns the TreeBuilder the flags select. The ring builder
// splits p processors over the configured number of rings as evenly as
// possible (earlier rings take the remainder).
func (f *TreeFlags) Builder() (barriersim.TreeBuilder, error) {
	switch f.Kind {
	case "classic":
		return topology.NewClassic, nil
	case "mcs":
		return topology.NewMCS, nil
	case "ring":
		rings := f.Rings
		if rings <= 0 {
			return nil, fmt.Errorf("cli: -rings must be positive, got %d", rings)
		}
		return func(p, d int) *topology.Tree {
			sizes := make([]int, rings)
			for i := range sizes {
				sizes[i] = p / rings
				if i < p%rings {
					sizes[i]++
				}
			}
			return topology.NewRing(sizes, d)
		}, nil
	}
	return nil, fmt.Errorf("cli: unknown tree kind %q (want classic, mcs or ring)", f.Kind)
}

// Build constructs the tree for p processors at the given degree.
func (f *TreeFlags) Build(p, degree int) (*topology.Tree, error) {
	build, err := f.Builder()
	if err != nil {
		return nil, err
	}
	return build(p, degree), nil
}

// Dur renders a duration in seconds as a time.Duration rounded for
// display, the formatting shared by the simulation commands.
func Dur(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second)).Round(100 * time.Nanosecond)
}

// NetFlags carries the networked-barrier service configuration shared by
// cmd/barrierd and examples/netbarrier, mirroring netbarrier.Options
// field for field where a flag makes sense.
type NetFlags struct {
	// Listen is the TCP listen address.
	Listen string
	// Watchdog is the per-session stall deadline; 0 disables detection.
	Watchdog time.Duration
	// Replan is how many episodes pass between planner re-evaluations.
	Replan int
	// Dynamic marks imbalance as systemic, selecting dynamic placement.
	Dynamic bool
	// Elastic lets session membership change between episodes: late
	// joiners are parked and admitted at the next boundary, leavers shrink
	// the cohort instead of stalling it.
	Elastic bool
	// Collective names a built-in reduction op (softbarrier.OpByName);
	// "" serves plain barrier sessions.
	Collective string
	// Placement names a predictive straggler-placement policy
	// (softbarrier.PlacementByName); "" (or "static") keeps the natural
	// placement.
	Placement string
	// Tc is the model's counter-update cost in seconds; 0 = the paper's 20µs.
	Tc float64
	// Sigma is the arrival spread assumed before any episode is measured.
	Sigma float64
	// Role selects the daemon's place in a hierarchical deployment:
	// "standalone" (the default single-server mode), "root" (the
	// inter-shard coordinator leaf barrierds synchronize through), or
	// "leaf" (a shard combining local clients and forwarding one
	// aggregated arrival per episode to -root).
	Role string
	// Root is the root barrierd's address; required for -role leaf.
	Root string
	// ShardID is this leaf's shard index — its slot in the root's
	// deterministic ascending-id fold. Leaves of one fleet use distinct
	// ids in [0, -shards).
	ShardID int
	// Shards is how many leaf shards join the root for each session.
	Shards int
	// KeepAlive is the TCP keepalive probe period armed on every
	// connection (listener and leaf→root links alike): 0 selects
	// wire.DefaultKeepAlive (15s), negative disables probing. A silently
	// vanished peer — powered off, cable pulled, NAT state dropped — is
	// detected within roughly this period even between episodes, when
	// neither side is writing.
	KeepAlive time.Duration
	// DialTimeout bounds each leaf→root connection attempt; 0 selects 5s.
	DialTimeout time.Duration
	// DialAttempts is how many times a failed root dial is retried; 0
	// selects 3.
	DialAttempts int
	// DialBackoff is the sleep after the first failed root dial, doubling
	// per subsequent failure; 0 selects 100ms.
	DialBackoff time.Duration
}

// AddNetFlags registers the barrierd service flags on the default FlagSet.
func AddNetFlags() *NetFlags {
	f := &NetFlags{}
	flag.StringVar(&f.Listen, "listen", "127.0.0.1:7643", "TCP listen address")
	flag.DurationVar(&f.Watchdog, "watchdog", 10*time.Second, "per-session stall deadline (0 disables stall detection)")
	flag.IntVar(&f.Replan, "replan", 10, "episodes between tree-degree re-plans (0 = every episode)")
	flag.BoolVar(&f.Dynamic, "dynamic", false, "treat imbalance as systemic: use dynamic-placement trees")
	flag.BoolVar(&f.Elastic, "elastic", false, "elastic sessions: admit joins and absorb leaves at episode boundaries")
	flag.Float64Var(&f.Tc, "tc", 0, "model counter-update cost in seconds (0 = 20µs)")
	flag.Float64Var(&f.Sigma, "sigma", 0, "assumed arrival spread in seconds before measurement")
	flag.StringVar(&f.Collective, "collective", "",
		"serve collective sessions folding contributions with this op, one of: "+strings.Join(softbarrier.OpNames(), ", "))
	flag.StringVar(&f.Placement, "placement", "",
		"predictive straggler-placement policy, one of: "+strings.Join(softbarrier.PlacementNames(), ", "))
	flag.StringVar(&f.Role, "role", "standalone", "deployment role: standalone | root | leaf")
	flag.StringVar(&f.Root, "root", "", "root barrierd address (required with -role leaf)")
	flag.IntVar(&f.ShardID, "shard-id", 0, "this leaf's shard index in [0, -shards) (-role leaf)")
	flag.IntVar(&f.Shards, "shards", 1, "leaf shards joining the root per session (-role leaf)")
	flag.DurationVar(&f.KeepAlive, "keepalive", 0, "TCP keepalive probe period (0 = 15s default, negative disables)")
	flag.DurationVar(&f.DialTimeout, "dial-timeout", 0, "bound on each leaf→root connection attempt (0 = 5s)")
	flag.IntVar(&f.DialAttempts, "dial-attempts", 0, "retries for a failed root dial (0 = 3)")
	flag.DurationVar(&f.DialBackoff, "dial-backoff", 0, "sleep after the first failed root dial, doubling per failure (0 = 100ms)")
	return f
}

// Transport builds the TCP transport the flags describe: every listener
// and leaf→root link the daemon opens shares the configured keepalive.
// The hard-coded 15s probe period and dial parameters that used to live
// as literals in the client and leaf dial paths are all reachable from
// here.
func (f *NetFlags) Transport() *wire.TCP {
	return &wire.TCP{KeepAlive: f.KeepAlive}
}

// ValidateRole checks the hierarchical-deployment flag combination.
func (f *NetFlags) ValidateRole() error {
	switch f.Role {
	case "standalone", "root":
		if f.Root != "" {
			return fmt.Errorf("-root is only meaningful with -role leaf")
		}
		return nil
	case "leaf":
		if f.Root == "" {
			return fmt.Errorf("-role leaf requires -root ADDR")
		}
		if f.Shards < 1 {
			return fmt.Errorf("-shards must be ≥ 1, got %d", f.Shards)
		}
		if f.ShardID < 0 || f.ShardID >= f.Shards {
			return fmt.Errorf("-shard-id %d outside [0, %d)", f.ShardID, f.Shards)
		}
		return nil
	}
	return fmt.Errorf("unknown -role %q (want standalone, root or leaf)", f.Role)
}

// Placement resolves a policy name to its constructor, erroring on an
// unknown name with the valid ones listed. "" resolves to no policy
// (nil, nil): the natural placement.
func Placement(name string) (func() softbarrier.PlacementPolicy, error) {
	if name == "" {
		return nil, nil
	}
	mk, ok := softbarrier.PlacementByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown placement policy %q (have: %s)", name, strings.Join(softbarrier.PlacementNames(), ", "))
	}
	return mk, nil
}

// Options maps the flags onto a netbarrier server configuration. Logf is
// left nil; callers wire their own logger. It errors on an unknown
// -collective op name, listing the valid ones.
func (f *NetFlags) Options() (netbarrier.Options, error) {
	opt := netbarrier.Options{
		Watchdog:     f.Watchdog,
		ReplanEvery:  f.Replan,
		Dynamic:      f.Dynamic,
		Elastic:      f.Elastic,
		Tc:           f.Tc,
		InitialSigma: f.Sigma,
		Transport:    f.Transport(),
	}
	if f.Collective != "" {
		op, ok := softbarrier.OpByName(f.Collective)
		if !ok {
			return opt, fmt.Errorf("unknown collective op %q (have: %s)", f.Collective, strings.Join(softbarrier.OpNames(), ", "))
		}
		opt.Op = &op
	}
	mk, err := Placement(f.Placement)
	if err != nil {
		return opt, err
	}
	opt.Placement = mk
	return opt, nil
}
