// Package cli holds the configuration plumbing shared by the simulation
// commands (cmd/experiments, cmd/degreeopt, cmd/barriersim): the
// -workers/-cache sweep-engine flags, tree-builder selection, a throttled
// progress printer, and duration formatting. Keeping it here means each
// main declares only the flags specific to its own question.
package cli

import (
	"flag"
	"fmt"
	"io"
	"time"

	"softbarrier/internal/barriersim"
	"softbarrier/internal/sweep"
	"softbarrier/internal/topology"
)

// EngineFlags carries the shared parallel-sweep configuration.
type EngineFlags struct {
	// Workers is the worker-pool bound; 0 selects all CPUs, 1 runs
	// sequentially. Results are identical either way (internal/sweep).
	Workers int
	// CacheDir, when non-empty, is the on-disk result cache directory;
	// it is created if absent.
	CacheDir string
}

// AddEngineFlags registers -workers and -cache on the default FlagSet.
func AddEngineFlags() *EngineFlags {
	f := &EngineFlags{}
	flag.IntVar(&f.Workers, "workers", 0, "parallel sweep workers (0 = all CPUs, 1 = sequential; results identical)")
	flag.StringVar(&f.CacheDir, "cache", "", "directory for the on-disk sweep result cache (empty = no cache)")
	return f
}

// Engine builds the sweep engine the flags describe. Progress is reported
// to w (nil disables reporting) for sweeps that run long enough to matter.
func (f *EngineFlags) Engine(w io.Writer) (*sweep.Engine, error) {
	e := &sweep.Engine{Workers: f.Workers}
	if f.CacheDir != "" {
		c, err := sweep.OpenCache(f.CacheDir)
		if err != nil {
			return nil, err
		}
		e.Cache = c
	}
	if w != nil {
		e.Report = ProgressPrinter(w)
	}
	return e, nil
}

// ProgressPrinter returns a sweep progress callback that prints points
// done / total with an ETA to w. It stays silent for sweeps that finish
// within two seconds and then throttles itself to one line per second, so
// fast grids produce no output at all.
func ProgressPrinter(w io.Writer) func(sweep.Progress) {
	var last time.Duration
	started := false
	return func(p sweep.Progress) {
		if p.Elapsed < 2*time.Second {
			return
		}
		if started && p.Done < p.Total && p.Elapsed-last < time.Second {
			return
		}
		started = true
		last = p.Elapsed
		line := fmt.Sprintf("sweep %d/%d points", p.Done, p.Total)
		if p.CacheHits > 0 {
			line += fmt.Sprintf(" (%d cached)", p.CacheHits)
		}
		line += fmt.Sprintf(", elapsed %s", p.Elapsed.Round(100*time.Millisecond))
		if p.Remaining > 0 {
			line += fmt.Sprintf(", eta %s", p.Remaining.Round(100*time.Millisecond))
		}
		fmt.Fprintln(w, line)
	}
}

// TreeFlags carries the shared combining-tree topology configuration.
type TreeFlags struct {
	// Kind is "classic", "mcs" or "ring".
	Kind string
	// Rings is the ring count for Kind "ring".
	Rings int
}

// AddTreeFlags registers -tree and -rings on the default FlagSet.
func AddTreeFlags() *TreeFlags {
	f := &TreeFlags{}
	flag.StringVar(&f.Kind, "tree", "classic", "tree kind: classic | mcs | ring")
	flag.IntVar(&f.Rings, "rings", 2, "number of rings for -tree ring")
	return f
}

// Builder returns the TreeBuilder the flags select. The ring builder
// splits p processors over the configured number of rings as evenly as
// possible (earlier rings take the remainder).
func (f *TreeFlags) Builder() (barriersim.TreeBuilder, error) {
	switch f.Kind {
	case "classic":
		return topology.NewClassic, nil
	case "mcs":
		return topology.NewMCS, nil
	case "ring":
		rings := f.Rings
		if rings <= 0 {
			return nil, fmt.Errorf("cli: -rings must be positive, got %d", rings)
		}
		return func(p, d int) *topology.Tree {
			sizes := make([]int, rings)
			for i := range sizes {
				sizes[i] = p / rings
				if i < p%rings {
					sizes[i]++
				}
			}
			return topology.NewRing(sizes, d)
		}, nil
	}
	return nil, fmt.Errorf("cli: unknown tree kind %q (want classic, mcs or ring)", f.Kind)
}

// Build constructs the tree for p processors at the given degree.
func (f *TreeFlags) Build(p, degree int) (*topology.Tree, error) {
	build, err := f.Builder()
	if err != nil {
		return nil, err
	}
	return build(p, degree), nil
}

// Dur renders a duration in seconds as a time.Duration rounded for
// display, the formatting shared by the simulation commands.
func Dur(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second)).Round(100 * time.Nanosecond)
}
