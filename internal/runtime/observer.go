package runtime

// EpisodeStats is one completed barrier episode's telemetry, emitted by
// whichever participant released the episode. Timestamps are nanoseconds on
// the barrier's own monotonic clock (zero at construction).
type EpisodeStats struct {
	// Episode is the 0-based episode index; successive emissions increase
	// it by exactly one.
	Episode uint64
	// P is the barrier's participant count.
	P int
	// FirstArrival and LastArrival bound the episode's arrival times.
	FirstArrival int64
	// LastArrival is the latest arrival timestamp of the episode.
	LastArrival int64
	// Released is when the releasing participant published the release.
	Released int64
	// Spread is the sample standard deviation of the episode's arrival
	// times, in seconds — the σ the paper's model consumes.
	Spread float64
	// SyncDelay is Released − LastArrival in seconds, clamped at zero: the
	// synchronization cost the paper charges to the barrier itself.
	SyncDelay float64
	// Swaps is the barrier's cumulative placement-swap count (dynamic
	// placement barriers; zero elsewhere).
	Swaps uint64
	// Adaptations is the barrier's cumulative tree-rebuild count (adaptive
	// barriers; zero elsewhere).
	Adaptations uint64
	// Degree is the current combining-tree degree (zero for degree-free
	// barriers such as central, dissemination and tournament).
	Degree int
	// Epoch is the barrier's 0-based configuration epoch (reconfigurable
	// barriers; zero elsewhere). It increments when a rebuild is applied
	// at the episode's release point, so the emitting episode already ran
	// the configuration of the *previous* epoch.
	Epoch uint64
}

// Observer receives one EpisodeStats per completed episode. Episode is
// invoked by the releasing participant, so successive calls may come from
// different goroutines but are totally ordered by the barrier's own
// happens-before edges; an implementation needs synchronization only
// against its *own* concurrent readers, not against other Episode calls.
type Observer interface {
	Episode(EpisodeStats)
}

// Extra carries the barrier-specific EpisodeStats fields into
// Recorder.Emit; barriers without the corresponding feature leave the
// fields zero.
type Extra struct {
	Swaps       uint64
	Adaptations uint64
	Degree      int
	Epoch       uint64
}
