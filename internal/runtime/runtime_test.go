package runtime

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// parkOnly forces the park path immediately, exercising the blocking
// primitives rather than the spin/yield escape hatches.
var parkOnly = WaitPolicy{Spin: 0, Yield: 0}

func TestGateOpenWakesParkedWaiters(t *testing.T) {
	var g Gate
	g.Init(parkOnly)
	const waiters = 8
	var woken atomic.Int64
	var wg sync.WaitGroup
	wg.Add(waiters)
	mine := g.Seq()
	for i := 0; i < waiters; i++ {
		go func() {
			defer wg.Done()
			g.Await(mine)
			woken.Add(1)
		}()
	}
	time.Sleep(2 * time.Millisecond) // let the waiters park
	if got := woken.Load(); got != 0 {
		t.Fatalf("%d waiters returned before Open", got)
	}
	if next := g.Open(); next != mine+1 {
		t.Fatalf("Open returned %d, want %d", next, mine+1)
	}
	wg.Wait()
	if got := woken.Load(); got != waiters {
		t.Fatalf("woke %d of %d waiters", got, waiters)
	}
}

func TestGateAwaitPastGenerationReturnsImmediately(t *testing.T) {
	var g Gate
	g.Init(parkOnly)
	g.Open()
	done := make(chan struct{})
	go func() {
		g.Await(0) // generation already passed
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Await(past generation) blocked")
	}
}

func TestGateManyGenerations(t *testing.T) {
	// Two goroutines ping-pong through generations with every wait parked:
	// a missed wakeup deadlocks (caught by the test timeout).
	var g Gate
	g.Init(parkOnly)
	const rounds = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < rounds; i++ {
			g.Await(i)
		}
	}()
	for i := 0; i < rounds; i++ {
		time.Sleep(50 * time.Microsecond)
		g.Open()
	}
	wg.Wait()
}

func TestCellParkUnpark(t *testing.T) {
	var c Cell
	c.Init()
	const episodes = 300
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := uint64(1); v <= episodes; v++ {
			if got := c.AwaitAtLeast(v, parkOnly); got < v {
				t.Errorf("AwaitAtLeast(%d) returned %d", v, got)
				return
			}
		}
	}()
	for v := uint64(1); v <= episodes; v++ {
		if v%3 == 0 {
			time.Sleep(20 * time.Microsecond) // let the waiter park sometimes
		}
		c.Set(v)
	}
	wg.Wait()
}

func TestCellAwaitSatisfiedValueNeverBlocks(t *testing.T) {
	var c Cell
	c.Init()
	c.Set(5)
	if got := c.AwaitAtLeast(3, parkOnly); got != 5 {
		t.Fatalf("AwaitAtLeast(3) = %d, want 5", got)
	}
}

func TestCellSpinPolicyStillCorrect(t *testing.T) {
	var c Cell
	c.Init()
	spin := WaitPolicy{Spin: 1 << 20, Yield: 1 << 10}
	done := make(chan uint64, 1)
	go func() { done <- c.AwaitAtLeast(1, spin) }()
	time.Sleep(time.Millisecond)
	c.Set(1)
	select {
	case got := <-done:
		if got != 1 {
			t.Fatalf("got %d, want 1", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("spin-policy wait never completed")
	}
}

func TestGatePoisonWakesParkedWaiters(t *testing.T) {
	var g Gate
	g.Init(parkOnly)
	const waiters = 8
	var woken atomic.Int64
	var wg sync.WaitGroup
	wg.Add(waiters)
	mine := g.Seq()
	for i := 0; i < waiters; i++ {
		go func() {
			defer wg.Done()
			g.Await(mine)
			woken.Add(1)
		}()
	}
	time.Sleep(2 * time.Millisecond) // let the waiters park
	if got := woken.Load(); got != 0 {
		t.Fatalf("%d waiters returned before Poison", got)
	}
	g.Poison()
	wg.Wait()
	if !g.Poisoned() {
		t.Fatal("gate not poisoned after Poison")
	}

	// Every future Await returns immediately, whatever generation it asks for.
	done := make(chan struct{})
	go func() {
		g.Await(g.Seq())
		g.Await(0)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Await on poisoned gate blocked")
	}

	// Unpoison at a quiescent point restores normal operation.
	g.Unpoison()
	if g.Poisoned() {
		t.Fatal("gate still poisoned after Unpoison")
	}
	mine = g.Seq()
	released := make(chan struct{})
	go func() {
		g.Await(mine)
		close(released)
	}()
	time.Sleep(time.Millisecond)
	select {
	case <-released:
		t.Fatal("Await returned without Open on unpoisoned gate")
	default:
	}
	g.Open()
	<-released
}

func TestGatePoisonStickyUnderOpen(t *testing.T) {
	// Open's generation bump must not clear the poison bit.
	var g Gate
	g.Init(parkOnly)
	g.Poison()
	g.Open()
	if !g.Poisoned() {
		t.Fatal("Open cleared the poison bit")
	}
	done := make(chan struct{})
	go func() {
		g.Await(g.Seq())
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Await blocked on a gate poisoned before Open")
	}
}

func TestCellPoisonWakesWaiterAndStays(t *testing.T) {
	var c Cell
	c.Init()
	done := make(chan uint64, 1)
	go func() { done <- c.AwaitAtLeast(5, parkOnly) }()
	time.Sleep(time.Millisecond) // let the waiter park
	c.Poison()
	select {
	case got := <-done:
		if got != PoisonValue {
			t.Fatalf("poisoned wait returned %d, want PoisonValue", got)
		}
	case <-time.After(time.Second):
		t.Fatal("Poison did not wake the parked waiter")
	}
	if !c.Poisoned() {
		t.Fatal("cell not poisoned")
	}

	// A racing signaller's Set must not lower the value back below poison.
	c.Set(7)
	if !c.Poisoned() {
		t.Fatal("Set un-poisoned the cell")
	}
	if got := c.AwaitAtLeast(1<<40, parkOnly); got != PoisonValue {
		t.Fatalf("wait after poison returned %d, want PoisonValue", got)
	}

	// Reset restores a usable zero-valued cell.
	c.Reset()
	if c.Poisoned() {
		t.Fatal("cell still poisoned after Reset")
	}
	c.Set(1)
	if got := c.AwaitAtLeast(1, parkOnly); got != 1 {
		t.Fatalf("post-Reset wait returned %d, want 1", got)
	}
}

func TestCellSetIsMonotone(t *testing.T) {
	var c Cell
	c.Init()
	c.Set(10)
	c.Set(3) // stale signaller: must not regress the value
	if got := c.AwaitAtLeast(10, parkOnly); got != 10 {
		t.Fatalf("value regressed to %d after stale Set", got)
	}
}

func TestSigmaEstimatorConcurrentObserve(t *testing.T) {
	// All observations equal: the EWMA fixed point is the value itself, so
	// any lost update or double-seed shows up as a wrong count or σ.
	var e SigmaEstimator
	e.Init(0.25)
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				e.Observe(1.0)
			}
		}()
	}
	wg.Wait()
	if got := e.Episodes(); got != goroutines*perG {
		t.Fatalf("episodes = %d, want %d (lost updates)", got, goroutines*perG)
	}
	if got := e.Sigma(); got != 1.0 {
		t.Fatalf("σ = %v, want exactly 1.0", got)
	}
}

func TestSigmaEstimatorEWMA(t *testing.T) {
	var e SigmaEstimator
	e.Init(0.5)
	if e.Sigma() != 0 || e.Episodes() != 0 {
		t.Fatal("fresh estimator not zero")
	}
	e.Observe(4) // seeds directly
	if got := e.Sigma(); got != 4 {
		t.Fatalf("after seed: σ = %v, want 4", got)
	}
	e.Observe(8) // 0.5*4 + 0.5*8 = 6
	if got := e.Sigma(); math.Abs(got-6) > 1e-12 {
		t.Fatalf("after second observation: σ = %v, want 6", got)
	}
	if e.Episodes() != 2 {
		t.Fatalf("episodes = %d, want 2", e.Episodes())
	}
}

func TestSigmaEstimatorDefaultWeight(t *testing.T) {
	var e SigmaEstimator
	e.Init(0) // out of range → default
	e.Observe(1)
	e.Observe(0)
	want := (1 - DefaultSigmaWeight) * 1.0
	if got := e.Sigma(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("σ = %v, want %v", got, want)
	}
}

// sliceObserver appends every emission.
type sliceObserver struct {
	mu  sync.Mutex
	eps []EpisodeStats
}

func (o *sliceObserver) Episode(st EpisodeStats) {
	o.mu.Lock()
	o.eps = append(o.eps, st)
	o.mu.Unlock()
}

func TestRecorderNilFastPath(t *testing.T) {
	r := New(4, nil, nil, false)
	if r != nil {
		t.Fatal("recorder without observer should be nil")
	}
	// All methods must be safe on the nil recorder.
	r.Arrive(0, 0)
	if _, ok := r.Measure(0); ok {
		t.Fatal("nil recorder Measure reported ok")
	}
	r.Emit(Measurement{}, Extra{})
	r.Release(0, Extra{})
	if r.Active() {
		t.Fatal("nil recorder reports active")
	}
}

func TestRecorderMeasuresSpreadAndDelay(t *testing.T) {
	now := int64(0)
	clock := func() int64 { return now }
	obs := &sliceObserver{}
	r := New(3, obs, clock, false)

	// Episode 0: arrivals at 0, 1000, 2000 ns; release at 2500 ns.
	for id, at := range []int64{0, 1000, 2000} {
		now = at
		r.Arrive(id, 0)
	}
	now = 2500
	r.Release(0, Extra{Degree: 4})

	// Episode 1 uses the other parity buffer.
	for id, at := range []int64{3000, 3100, 3200} {
		now = at
		r.Arrive(id, 1)
	}
	now = 4200
	r.Release(1, Extra{Swaps: 7})

	if len(obs.eps) != 2 {
		t.Fatalf("got %d emissions, want 2", len(obs.eps))
	}
	e0 := obs.eps[0]
	if e0.Episode != 0 || e0.P != 3 || e0.FirstArrival != 0 || e0.LastArrival != 2000 || e0.Degree != 4 {
		t.Fatalf("episode 0 stats wrong: %+v", e0)
	}
	if want := 500e-9; math.Abs(e0.SyncDelay-want) > 1e-15 {
		t.Fatalf("episode 0 sync delay %v, want %v", e0.SyncDelay, want)
	}
	if e0.Spread <= 0 {
		t.Fatalf("episode 0 spread %v, want > 0", e0.Spread)
	}
	e1 := obs.eps[1]
	if e1.Episode != 1 || e1.FirstArrival != 3000 || e1.LastArrival != 3200 || e1.Swaps != 7 {
		t.Fatalf("episode 1 stats wrong: %+v", e1)
	}
	if want := 1000e-9; math.Abs(e1.SyncDelay-want) > 1e-15 {
		t.Fatalf("episode 1 sync delay %v, want %v", e1.SyncDelay, want)
	}
}

func TestRecorderAlwaysActiveWithoutObserver(t *testing.T) {
	r := New(2, nil, nil, true)
	if !r.Active() {
		t.Fatal("always-on recorder inactive")
	}
	r.Arrive(0, 0)
	r.Arrive(1, 0)
	m, ok := r.Measure(0)
	if !ok {
		t.Fatal("Measure not ok")
	}
	if m.Last < m.First {
		t.Fatalf("last %d before first %d", m.Last, m.First)
	}
	r.Emit(m, Extra{}) // no observer: must not panic
}
