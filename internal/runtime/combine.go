package runtime

import (
	"fmt"
	"sync"
)

// Op is an associative combining operator over fixed-width byte strings —
// what turns an arrival-counting tree into a reduction tree. Fold must be
// associative over Width-byte values; Commutative additionally promises
// that operand order does not matter, which lets the barrier fold
// contributions greedily in arrival order during the ascent (the
// pre-reduce-early-arrivals policy) instead of deferring to a
// deterministic id-order fold at the root.
//
// Note the fine print on Commutative: the greedy path's parenthesization
// follows the arrival order, so an op that is commutative but not exactly
// associative (float addition) will produce run-to-run result wobble.
// Leave Commutative false when bit-for-bit reproducibility matters; the
// id-order fold is deterministic regardless of arrival order.
type Op struct {
	// Name identifies the op on the wire and in logs (both sides of a
	// networked session must configure the same op out-of-band).
	Name string
	// Width is the contribution size in bytes; every Deposit and Fold
	// operand is exactly Width bytes.
	Width int
	// Commutative enables greedy arrival-order folding during the ascent.
	Commutative bool
	// Identity, when non-nil, is the op's identity element (folded for
	// members that depart without contributing). nil means Width zero
	// bytes.
	Identity []byte
	// Fold combines src into dst in place: dst = dst ∘ src.
	Fold func(dst, src []byte)
}

// Validate reports whether the op is usable.
func (op Op) Validate() error {
	if op.Width <= 0 {
		return fmt.Errorf("runtime: op %q width %d must be positive", op.Name, op.Width)
	}
	if op.Fold == nil {
		return fmt.Errorf("runtime: op %q has no fold function", op.Name)
	}
	if op.Identity != nil && len(op.Identity) != op.Width {
		return fmt.Errorf("runtime: op %q identity is %d bytes, want %d", op.Name, len(op.Identity), op.Width)
	}
	return nil
}

// identity returns the identity element, materializing the all-zero
// default.
func (op Op) identity() []byte {
	if op.Identity != nil {
		return op.Identity
	}
	return make([]byte, op.Width)
}

// cellStride rounds a contribution width up to a cache-line multiple so
// adjacent participants' deposit cells never share a line.
func cellStride(width int) int { return (width + 63) &^ 63 }

// Reducer carries the payload side of a combining-tree episode: padded
// per-participant deposit cells, per-node fold accumulators, and the
// published per-episode result. It is the payload twin of the Recorder
// and inherits its memory-safety argument wholesale: cells and results
// are double-buffered by episode parity, a participant racing ahead into
// episode k+1 uses the other buffer, and nobody can reach episode k+2
// (parity of k) before the episode-k releaser — who folds and publishes
// before opening the gate — is done. Node accumulators need no parity at
// all: they are guarded by the tree's own counter locks and are
// quiescently empty (every fold consumed) whenever the root completes.
type Reducer struct {
	op     Op
	ident  []byte
	stride int
	p      int
	cells  [2][]byte // p*stride each; deposit slots, owner-written
	accN   []int     // per-node fold count; guarded by the node's counter lock
	acc    []byte    // nodes*stride; guarded likewise
	res    [2][]byte // width each; releaser-written, parity-stable across Resize
	mu     sync.Mutex
}

// NewReducer builds a reducer for p participants over a tree of nodes
// counters. It panics on an invalid op — collective configuration is a
// construction-time contract, like a bad tree degree.
func NewReducer(op Op, p, nodes int) *Reducer {
	if err := op.Validate(); err != nil {
		panic(err.Error())
	}
	r := &Reducer{op: op, ident: op.identity(), stride: cellStride(op.Width)}
	r.res[0] = make([]byte, op.Width)
	r.res[1] = make([]byte, op.Width)
	r.alloc(p, nodes)
	return r
}

func (r *Reducer) alloc(p, nodes int) {
	r.p = p
	r.cells[0] = make([]byte, p*r.stride)
	r.cells[1] = make([]byte, p*r.stride)
	r.accN = make([]int, nodes)
	r.acc = make([]byte, nodes*r.stride)
}

// Op returns the configured operator.
func (r *Reducer) Op() Op { return r.op }

// Width returns the contribution size in bytes.
func (r *Reducer) Width() int { return r.op.Width }

// Identity returns the op's identity element. Callers must not mutate it.
func (r *Reducer) Identity() []byte { return r.ident }

// cell returns participant id's deposit cell for the given parity.
func (r *Reducer) cell(parity uint64, id int) []byte {
	off := id * r.stride
	return r.cells[parity&1][off : off+r.op.Width]
}

// Deposit stores participant id's contribution for the episode with the
// given parity. Must be called by the owning participant before it
// contributes to the episode's completion, exactly like Recorder.Arrive.
func (r *Reducer) Deposit(parity uint64, id int, src []byte) {
	if len(src) != r.op.Width {
		panic(fmt.Sprintf("runtime: contribution is %d bytes, op %q wants %d", len(src), r.op.Name, r.op.Width))
	}
	copy(r.cell(parity, id), src)
}

// DepositIdentity deposits the op's identity for id — the contribution of
// a member that departs (or abstains) mid-episode.
func (r *Reducer) DepositIdentity(parity uint64, id int) {
	copy(r.cell(parity, id), r.ident)
}

// FoldNode folds src into node's accumulator. The caller must hold the
// node's counter lock — the accumulator shares the counter's critical
// section, which is what makes the greedy path lock-free beyond the locks
// the barrier already takes.
func (r *Reducer) FoldNode(node int, src []byte) {
	off := node * r.stride
	dst := r.acc[off : off+r.op.Width]
	if r.accN[node] == 0 {
		copy(dst, src)
	} else {
		r.op.Fold(dst, src)
	}
	r.accN[node]++
}

// TakeNode consumes node's accumulator after its fan-in completed,
// returning the folded value as the carry for the parent. The caller must
// hold the node's counter lock when calling; the returned slice stays
// valid after unlock because nobody can fold into this node again before
// the episode's release, and the carry is folded onward before that.
func (r *Reducer) TakeNode(node int) []byte {
	r.accN[node] = 0
	off := node * r.stride
	return r.acc[off : off+r.op.Width]
}

// FinishCells folds the first n deposit cells in ascending id order into
// the episode's result slot and returns it — the deterministic path for
// non-commutative ops. Releaser-only, before the episode's release.
func (r *Reducer) FinishCells(parity uint64, n int) []byte {
	dst := r.res[parity&1]
	copy(dst, r.cell(parity, 0))
	for id := 1; id < n; id++ {
		r.op.Fold(dst, r.cell(parity, id))
	}
	return dst
}

// PublishCarry publishes the greedy path's root carry as the episode's
// result. Releaser-only, before the episode's release.
func (r *Reducer) PublishCarry(parity uint64, carry []byte) {
	copy(r.res[parity&1], carry)
}

// PublishCell publishes participant id's deposit cell as the episode's
// result — the broadcast path. Releaser-only, before the release.
func (r *Reducer) PublishCell(parity uint64, id int) {
	copy(r.res[parity&1], r.cell(parity, id))
}

// Result returns the published result for the episode with the given
// parity. Valid from the episode's release until its parity buffer is
// republished two episodes later; see the type comment for why every
// participant that contributed to the episode reads it in time.
func (r *Reducer) Result(parity uint64) []byte { return r.res[parity&1] }

// CopyResult copies the published result into dst.
func (r *Reducer) CopyResult(parity uint64, dst []byte) {
	copy(dst, r.res[parity&1])
}

// Resize re-buffers the deposit cells and node accumulators for a new
// epoch. Like Recorder.Resize it must run at the quiescent release point:
// no deposit of the next episode can precede the current release, and the
// accumulators are quiescently empty there. The result buffers are
// deliberately kept — a slow awaiter of the pre-rebuild episode still
// copies its result from the same backing array.
func (r *Reducer) Resize(p, nodes int) {
	if r == nil || (p == r.p && nodes == len(r.accN)) {
		return
	}
	r.alloc(p, nodes)
}

// Reset clears the node accumulators after a poisoned episode, so a
// Reset barrier starts from empty folds. Quiescent-only, like the
// barrier-side clear it is called from.
func (r *Reducer) Reset() {
	for i := range r.accN {
		r.accN[i] = 0
	}
}

// LagEstimator maintains a per-participant EWMA of arrival lag — how far
// behind the episode's first arrival each participant reached the barrier
// — the measured signal behind the σ-aware reduction placement: rank
// participants by this estimate and put the laggiest nearest the root so
// their contributions fold last. Observe is releaser-only; Lags may be
// read from any goroutine.
type LagEstimator struct {
	mu     sync.Mutex
	weight float64
	lags   []float64
	n      uint64
}

// NewLagEstimator returns an estimator for p participants; weight is the
// EWMA weight of the newest episode (0 selects DefaultSigmaWeight).
func NewLagEstimator(p int, weight float64) *LagEstimator {
	if weight <= 0 || weight > 1 {
		weight = DefaultSigmaWeight
	}
	return &LagEstimator{weight: weight, lags: make([]float64, p)}
}

// Observe folds one episode's arrival times (any base — the minimum is
// subtracted) into the per-participant lag estimates. A length change
// re-seeds the estimator at the new membership.
func (e *LagEstimator) Observe(arrivals []float64) {
	if len(arrivals) == 0 {
		return
	}
	first := arrivals[0]
	for _, a := range arrivals[1:] {
		if a < first {
			first = a
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(arrivals) != len(e.lags) {
		e.lags = make([]float64, len(arrivals))
		e.n = 0
	}
	if e.n == 0 {
		for i, a := range arrivals {
			e.lags[i] = a - first
		}
	} else {
		w := e.weight
		for i, a := range arrivals {
			e.lags[i] += w * ((a - first) - e.lags[i])
		}
	}
	e.n++
}

// Lags returns a snapshot of the per-participant lag estimates, seconds.
func (e *LagEstimator) Lags() []float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]float64, len(e.lags))
	copy(out, e.lags)
	return out
}

// Episodes returns how many episodes the estimate is based on.
func (e *LagEstimator) Episodes() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// FoldLags feeds the episode's recorded arrival timestamps into est. Like
// Measure it is releaser-only and must run before the episode's release,
// while the parity buffer is quiescent. A nil recorder is a no-op.
func (r *Recorder) FoldLags(episode uint64, est *LagEstimator) {
	if r == nil || est == nil {
		return
	}
	slots := r.arrivals[episode&1]
	arr := make([]float64, len(slots))
	for i := range slots {
		arr[i] = float64(slots[i].V) * 1e-9
	}
	est.Observe(arr)
}
