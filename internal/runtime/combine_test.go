package runtime

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func sumOp() Op {
	return Op{
		Name: "sum-u64", Width: 8, Commutative: true,
		Fold: func(dst, src []byte) {
			binary.BigEndian.PutUint64(dst, binary.BigEndian.Uint64(dst)+binary.BigEndian.Uint64(src))
		},
	}
}

// concatFirstByte is a deliberately non-commutative op over 4 bytes:
// dst = dst<<8 | src[3] (keeps the last byte of each operand in order).
func shiftOp() Op {
	return Op{
		Name: "shift", Width: 4,
		Fold: func(dst, src []byte) {
			v := binary.BigEndian.Uint32(dst)<<8 | uint32(src[3])
			binary.BigEndian.PutUint32(dst, v)
		},
	}
}

func TestOpValidate(t *testing.T) {
	if err := (Op{Width: 8, Fold: func(dst, src []byte) {}}).Validate(); err != nil {
		t.Fatalf("valid op rejected: %v", err)
	}
	bad := []Op{
		{Width: 0, Fold: func(dst, src []byte) {}},
		{Width: -1, Fold: func(dst, src []byte) {}},
		{Width: 8},
		{Width: 8, Fold: func(dst, src []byte) {}, Identity: make([]byte, 4)},
	}
	for i, op := range bad {
		if err := op.Validate(); err == nil {
			t.Errorf("bad op %d validated", i)
		}
	}
}

func TestReducerGreedyPath(t *testing.T) {
	// One node with fan-in 3: fold three contributions through
	// FoldNode/TakeNode and check the sum.
	r := NewReducer(sumOp(), 3, 1)
	buf := make([]byte, 8)
	for _, v := range []uint64{10, 200, 3000} {
		binary.BigEndian.PutUint64(buf, v)
		r.FoldNode(0, buf)
	}
	got := binary.BigEndian.Uint64(r.TakeNode(0))
	if got != 3210 {
		t.Fatalf("greedy fold = %d, want 3210", got)
	}
	// The accumulator must be consumable again for the next episode.
	binary.BigEndian.PutUint64(buf, 7)
	r.FoldNode(0, buf)
	if got := binary.BigEndian.Uint64(r.TakeNode(0)); got != 7 {
		t.Fatalf("post-take fold = %d, want 7", got)
	}
}

func TestReducerCellsPathDeterministic(t *testing.T) {
	const p = 5
	r := NewReducer(shiftOp(), p, 3)
	// Deposit in a scrambled order; the id-order fold must still equal the
	// sequential fold 0,1,2,3,4.
	for _, id := range []int{3, 0, 4, 1, 2} {
		var c [4]byte
		c[3] = byte(0x10 + id)
		r.Deposit(0, id, c[:])
	}
	res := r.FinishCells(0, p)
	want := []byte{0x11, 0x12, 0x13, 0x14} // 0x10 shifted out of the 4-byte window
	if !bytes.Equal(res, want) {
		t.Fatalf("cells fold = %x, want %x", res, want)
	}
	if got := r.Result(0); !bytes.Equal(got, want) {
		t.Fatalf("Result(0) = %x, want %x", got, want)
	}
}

func TestReducerParityAndResize(t *testing.T) {
	r := NewReducer(sumOp(), 2, 1)
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, 41)
	r.Deposit(0, 0, buf)
	binary.BigEndian.PutUint64(buf, 1)
	r.Deposit(0, 1, buf)
	even := r.FinishCells(0, 2)
	if got := binary.BigEndian.Uint64(even); got != 42 {
		t.Fatalf("even episode = %d, want 42", got)
	}
	// Odd-parity episode with different membership after a resize: the
	// even result must survive the rebuffer.
	r.Resize(3, 2)
	for id := 0; id < 3; id++ {
		binary.BigEndian.PutUint64(buf, uint64(id+1))
		r.Deposit(1, id, buf)
	}
	odd := r.FinishCells(1, 3)
	if got := binary.BigEndian.Uint64(odd); got != 6 {
		t.Fatalf("odd episode = %d, want 6", got)
	}
	if got := binary.BigEndian.Uint64(r.Result(0)); got != 42 {
		t.Fatalf("even result clobbered by resize: %d, want 42", got)
	}
	out := make([]byte, 8)
	r.CopyResult(1, out)
	if got := binary.BigEndian.Uint64(out); got != 6 {
		t.Fatalf("CopyResult(1) = %d, want 6", got)
	}
}

func TestReducerIdentity(t *testing.T) {
	op := sumOp()
	op.Identity = make([]byte, 8) // explicit zero identity
	r := NewReducer(op, 2, 1)
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, 9)
	r.Deposit(0, 0, buf)
	r.DepositIdentity(0, 1)
	if got := binary.BigEndian.Uint64(r.FinishCells(0, 2)); got != 9 {
		t.Fatalf("identity-padded fold = %d, want 9", got)
	}
}

func TestReducerDepositWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short deposit did not panic")
		}
	}()
	NewReducer(sumOp(), 1, 1).Deposit(0, 0, []byte{1, 2})
}

func TestLagEstimator(t *testing.T) {
	e := NewLagEstimator(3, 0.5)
	e.Observe([]float64{10, 11, 13})
	lags := e.Lags()
	want := []float64{0, 1, 3}
	for i := range want {
		if lags[i] != want[i] {
			t.Fatalf("seed lags = %v, want %v", lags, want)
		}
	}
	// Second episode: participant 2 on time, participant 0 late.
	e.Observe([]float64{25, 20, 20})
	lags = e.Lags()
	if lags[0] != 2.5 || lags[1] != 0.5 || lags[2] != 1.5 {
		t.Fatalf("EWMA lags = %v, want [2.5 0.5 1.5]", lags)
	}
	if e.Episodes() != 2 {
		t.Fatalf("episodes = %d, want 2", e.Episodes())
	}
	// Membership change re-seeds.
	e.Observe([]float64{5, 5})
	if got := e.Lags(); len(got) != 2 || got[0] != 0 || got[1] != 0 {
		t.Fatalf("post-resize lags = %v, want [0 0]", got)
	}
	if e.Episodes() != 1 {
		t.Fatalf("post-resize episodes = %d, want 1", e.Episodes())
	}
}

func TestRecorderFoldLags(t *testing.T) {
	now := int64(0)
	clock := func() int64 { return now }
	r := New(3, nil, clock, true)
	est := NewLagEstimator(3, 1)
	for id, at := range []int64{0, 1e9, 3e9} {
		now = at
		r.Arrive(id, 0)
	}
	r.FoldLags(0, est)
	lags := est.Lags()
	if lags[0] != 0 || lags[1] != 1 || lags[2] != 3 {
		t.Fatalf("folded lags = %v, want [0 1 3]", lags)
	}
}
