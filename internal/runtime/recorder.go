package runtime

import (
	"time"

	"softbarrier/internal/stats"
)

// Recorder collects per-episode arrival timestamps and turns them into
// EpisodeStats for an Observer. A nil *Recorder is the disabled fast path:
// every method is a nil-check and return, so barriers built without an
// observer pay one predictable branch and zero allocations per episode.
//
// Arrival slots are double-buffered by episode parity: a participant racing
// ahead into episode k+1 writes the other buffer, and it cannot reach
// episode k+2 (same parity as k) before the episode-k releaser — who must
// release k before anyone passes k+1 — has finished reading. Measure/Emit
// are called only by the releasing participant, at a point ordered before
// the episode's release, so they need no locking.
type Recorder struct {
	obs      Observer
	clock    func() int64
	p        int
	episode  uint64 // next episode index; releaser-only
	arrivals [2][]PaddedInt64
	scratch  []float64 // spread computation buffer; releaser-only
}

// New returns a recorder for p participants reporting to obs. When obs is
// nil and always is false it returns nil — the disabled recorder. always
// forces recording without an observer, for barriers (adaptive) whose own
// control loop needs the measurements. clock overrides the nanosecond
// clock; nil selects a monotonic clock zeroed at construction.
func New(p int, obs Observer, clock func() int64, always bool) *Recorder {
	if obs == nil && !always {
		return nil
	}
	if clock == nil {
		base := time.Now()
		clock = func() int64 { return int64(time.Since(base)) }
	}
	r := &Recorder{obs: obs, clock: clock, p: p, scratch: make([]float64, p)}
	r.arrivals[0] = make([]PaddedInt64, p)
	r.arrivals[1] = make([]PaddedInt64, p)
	return r
}

// Active reports whether arrivals are being recorded.
func (r *Recorder) Active() bool { return r != nil }

// Resize re-buffers the recorder for p participants. It must be called by
// the releasing participant after Measure and before the episode's
// release — the only point where both parity buffers are quiescent — so an
// elastic barrier can change membership without tearing a measurement.
func (r *Recorder) Resize(p int) {
	if r == nil || p == r.p {
		return
	}
	r.p = p
	r.arrivals[0] = make([]PaddedInt64, p)
	r.arrivals[1] = make([]PaddedInt64, p)
	r.scratch = make([]float64, p)
}

// Arrive timestamps participant id's arrival for the given episode. It
// must be called before the participant contributes to the episode's
// completion (counter update, flag signal, …) so the releaser's read of
// the slot is ordered after the write.
func (r *Recorder) Arrive(id int, episode uint64) {
	if r == nil {
		return
	}
	r.arrivals[episode&1][id].V = r.clock()
}

// Measurement is one episode's raw measurement, produced by Measure and
// consumed by Emit; the split lets a barrier act on the measured spread
// (adaptation) before publishing the episode to the observer.
type Measurement struct {
	First, Last, Released int64
	Spread                float64
}

// Measure reads the episode's arrival slots and timestamps the release. It
// must be called by the releasing participant before the episode is
// released, when the slots are quiescent. ok is false on a nil recorder.
func (r *Recorder) Measure(episode uint64) (m Measurement, ok bool) {
	if r == nil {
		return Measurement{}, false
	}
	slots := r.arrivals[episode&1]
	if len(slots) == 0 {
		// A recorder shrunk to zero participants has nothing to measure;
		// still stamp the release so Emit's delay math stays sane.
		return Measurement{Released: r.clock()}, true
	}
	first, last := slots[0].V, slots[0].V
	for i := range slots {
		v := slots[i].V
		r.scratch[i] = float64(v) * 1e-9
		if v < first {
			first = v
		}
		if v > last {
			last = v
		}
	}
	return Measurement{First: first, Last: last, Released: r.clock(), Spread: stats.StdDev(r.scratch)}, true
}

// LagsInto reads the episode's arrival slots into dst as per-participant
// lags — arrival time minus the episode's earliest arrival, seconds —
// the signal a placement policy consumes. dst is reused when it has the
// capacity. Like Measure it is releaser-only, before the episode's
// release; a nil recorder returns nil, and a recorder shrunk to zero
// participants returns dst[:0] (there is no earliest arrival to lag
// behind, and indexing an empty slot array would panic).
func (r *Recorder) LagsInto(episode uint64, dst []float64) []float64 {
	if r == nil {
		return nil
	}
	slots := r.arrivals[episode&1]
	if len(slots) == 0 {
		return dst[:0]
	}
	if cap(dst) < len(slots) {
		dst = make([]float64, len(slots))
	}
	dst = dst[:len(slots)]
	first := slots[0].V
	for i := range slots {
		if slots[i].V < first {
			first = slots[i].V
		}
	}
	for i := range slots {
		dst[i] = float64(slots[i].V-first) * 1e-9
	}
	return dst
}

// Emit publishes the measurement to the observer (if any) and advances the
// episode counter. Like Measure it runs on the releasing participant only.
func (r *Recorder) Emit(m Measurement, ex Extra) {
	if r == nil {
		return
	}
	ep := r.episode
	r.episode++
	if r.obs == nil {
		return
	}
	delay := float64(m.Released-m.Last) * 1e-9
	if delay < 0 {
		delay = 0 // wall-clock skew guard; the clock is monotonic, but stay defensive
	}
	r.obs.Episode(EpisodeStats{
		Episode:      ep,
		P:            r.p,
		FirstArrival: m.First,
		LastArrival:  m.Last,
		Released:     m.Released,
		Spread:       m.Spread,
		SyncDelay:    delay,
		Swaps:        ex.Swaps,
		Adaptations:  ex.Adaptations,
		Degree:       ex.Degree,
		Epoch:        ex.Epoch,
	})
}

// Release is Measure followed by Emit, for barriers that do not act on the
// measurement themselves.
func (r *Recorder) Release(episode uint64, ex Extra) {
	if r == nil {
		return
	}
	m, _ := r.Measure(episode)
	r.Emit(m, ex)
}
