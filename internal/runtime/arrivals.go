package runtime

// Arrivals is a set of per-participant arrival counters, one cache-padded
// atomic slot per participant. It is the shared substrate of the package's
// stall detection: each participant (or, for a networked barrier, the
// goroutine reading that participant's socket) bumps its own slot with
// Note, and a monitor goroutine — the WithWatchdog poller, or a remote
// coordinator reporting per-client progress — reads across all slots with
// Snapshot/Scan. The counters are exported so that remote barrier servers
// can surface "who has arrived how often" without reaching into a
// barrier's internals.
type Arrivals struct {
	slots []PaddedAtomicUint64
}

// NewArrivals returns counters for p participants, all zero.
func NewArrivals(p int) *Arrivals {
	return &Arrivals{slots: make([]PaddedAtomicUint64, p)}
}

// Len returns the number of participants.
func (a *Arrivals) Len() int { return len(a.slots) }

// Note records one arrival of participant id. Each id's slot is written by
// its owner only; Note is safe against concurrent readers.
func (a *Arrivals) Note(id int) { a.slots[id].V.Add(1) }

// Count returns participant id's arrival count.
func (a *Arrivals) Count(id int) uint64 { return a.slots[id].V.Load() }

// Snapshot copies the current counts into dst, which is grown as needed,
// and returns it. Pass a reused buffer to avoid per-call allocation.
func (a *Arrivals) Snapshot(dst []uint64) []uint64 {
	if cap(dst) < len(a.slots) {
		dst = make([]uint64, len(a.slots))
	}
	dst = dst[:len(a.slots)]
	for i := range a.slots {
		dst[i] = a.slots[i].V.Load()
	}
	return dst
}

// Scan snapshots the counters into prev (overwriting it) and classifies
// the step since prev's previous contents: changed reports whether any
// counter moved, equal whether all counters now agree. A watchdog treats
// "changed" as progress and "equal" as quiescence between episodes; a scan
// that is neither — frozen while unequal — is a stalled episode. prev must
// have length Len.
func (a *Arrivals) Scan(prev []uint64) (changed, equal bool) {
	equal = true
	hi, lo := uint64(0), ^uint64(0)
	for i := range a.slots {
		v := a.slots[i].V.Load()
		if v != prev[i] {
			changed = true
		}
		prev[i] = v
		if v > hi {
			hi = v
		}
		if v < lo {
			lo = v
		}
	}
	equal = hi == lo
	return changed, equal
}

// Reset zeroes every counter. Only meaningful at a quiescent point.
func (a *Arrivals) Reset() {
	for i := range a.slots {
		a.slots[i].V.Store(0)
	}
}

// Missing returns, in ascending order, the participant ids whose count in
// counts is strictly below the maximum — the participants that had not
// arrived at the episode the snapshot caught in flight.
func Missing(counts []uint64) []int {
	hi := uint64(0)
	for _, v := range counts {
		if v > hi {
			hi = v
		}
	}
	ids := make([]int, 0, len(counts))
	for i, v := range counts {
		if v < hi {
			ids = append(ids, i)
		}
	}
	return ids
}
