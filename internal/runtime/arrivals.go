package runtime

import "sync/atomic"

// arrivalShardSize is how many participant counters share one shard — one
// 64-byte cache line's worth of uint64s, so a shard is exactly one line.
const arrivalShardSize = 8

// arrivalShard is one cache line of arrival counters. Participants
// id*8 … id*8+7 share it.
type arrivalShard struct {
	v [arrivalShardSize]atomic.Uint64
}

// arrivalSet is one epoch's counters: p participants packed 8 per shard
// line. p is carried separately because the last shard may be partial.
type arrivalSet struct {
	p      int
	shards []arrivalShard
}

func newArrivalSet(p int) *arrivalSet {
	return &arrivalSet{p: p, shards: make([]arrivalShard, (p+arrivalShardSize-1)/arrivalShardSize)}
}

func (s *arrivalSet) at(id int) *atomic.Uint64 {
	return &s.shards[id/arrivalShardSize].v[id%arrivalShardSize]
}

// Arrivals is a set of per-participant arrival counters, sharded eight to
// a cache line. It is the shared substrate of the package's stall
// detection: each participant (or, for a networked barrier, the goroutine
// reading that participant's socket) bumps its own counter with Note, and
// a monitor goroutine — the WithWatchdog poller, or a remote coordinator
// reporting per-client progress — reads across all counters with
// Snapshot/Scan. The counters are exported so that remote barrier servers
// can surface "who has arrived how often" without reaching into a
// barrier's internals.
//
// Sharding choice: each counter is written once per episode by its owner
// but read p-at-a-time by every watchdog scan, so the counters are packed
// shard-per-cache-line (eight participants per 64-byte line) rather than
// padded one-per-line — a scan at p participants touches p/8 lines instead
// of p, cutting the monitor's cross-core traffic 8× at high p, while the
// writers' false sharing costs one line bounce per arrival at worst.
//
// The shard slice sits behind an atomic pointer so an elastic barrier can
// Resize the participant count at an episode boundary while the watchdog
// goroutine keeps scanning: readers always see either the old or the new
// set, never a torn one.
type Arrivals struct {
	set atomic.Pointer[arrivalSet]
}

// NewArrivals returns counters for p participants, all zero.
func NewArrivals(p int) *Arrivals {
	a := &Arrivals{}
	a.set.Store(newArrivalSet(p))
	return a
}

// Resize replaces the counters with p fresh zeroed slots. It must run at a
// quiescent point (no participant between Note calls for the same
// episode); all counts restart from zero so a concurrent Scan sees a
// uniform baseline rather than phantom laggards.
func (a *Arrivals) Resize(p int) {
	a.set.Store(newArrivalSet(p))
}

// Len returns the number of participants.
func (a *Arrivals) Len() int { return a.set.Load().p }

// Note records one arrival of participant id. Each id's counter is written
// by its owner only; Note is safe against concurrent readers.
func (a *Arrivals) Note(id int) { a.set.Load().at(id).Add(1) }

// Count returns participant id's arrival count.
func (a *Arrivals) Count(id int) uint64 { return a.set.Load().at(id).Load() }

// Snapshot copies the current counts into dst, which is grown as needed,
// and returns it. Pass a reused buffer to avoid per-call allocation.
func (a *Arrivals) Snapshot(dst []uint64) []uint64 {
	s := a.set.Load()
	if cap(dst) < s.p {
		dst = make([]uint64, s.p)
	}
	dst = dst[:s.p]
	for i := range dst {
		dst[i] = s.at(i).Load()
	}
	return dst
}

// Scan snapshots the counters and classifies the step since prev (a
// snapshot from an earlier Scan; nil on the first call): changed reports
// whether any counter moved, equal whether all counters now agree. A
// watchdog treats "changed" as progress and "equal" as quiescence between
// episodes; a scan that is neither — frozen while unequal — is a stalled
// episode. The returned slice holds the new snapshot and must be passed to
// the next Scan. A Resize between scans changes the slot count; Scan then
// reallocates and reports progress, restarting the watchdog's clock for
// the new epoch.
func (a *Arrivals) Scan(prev []uint64) (next []uint64, changed, equal bool) {
	s := a.set.Load()
	if len(prev) != s.p {
		prev = make([]uint64, s.p)
		changed = true // membership changed: that is progress
	}
	hi, lo := uint64(0), ^uint64(0)
	for i := range prev {
		v := s.at(i).Load()
		if v != prev[i] {
			changed = true
		}
		prev[i] = v
		if v > hi {
			hi = v
		}
		if v < lo {
			lo = v
		}
	}
	equal = hi == lo
	return prev, changed, equal
}

// Reset zeroes every counter. Only meaningful at a quiescent point.
func (a *Arrivals) Reset() {
	s := a.set.Load()
	for i := 0; i < s.p; i++ {
		s.at(i).Store(0)
	}
}

// Missing returns, in ascending order, the participant ids whose count in
// counts is strictly below the maximum — the participants that had not
// arrived at the episode the snapshot caught in flight.
func Missing(counts []uint64) []int {
	hi := uint64(0)
	for _, v := range counts {
		if v > hi {
			hi = v
		}
	}
	ids := make([]int, 0, len(counts))
	for i, v := range counts {
		if v < hi {
			ids = append(ids, i)
		}
	}
	return ids
}
