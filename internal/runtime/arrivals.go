package runtime

import "sync/atomic"

// Arrivals is a set of per-participant arrival counters, one cache-padded
// atomic slot per participant. It is the shared substrate of the package's
// stall detection: each participant (or, for a networked barrier, the
// goroutine reading that participant's socket) bumps its own slot with
// Note, and a monitor goroutine — the WithWatchdog poller, or a remote
// coordinator reporting per-client progress — reads across all slots with
// Snapshot/Scan. The counters are exported so that remote barrier servers
// can surface "who has arrived how often" without reaching into a
// barrier's internals.
//
// The slot slice sits behind an atomic pointer so an elastic barrier can
// Resize the participant count at an episode boundary while the watchdog
// goroutine keeps scanning: readers always see either the old or the new
// slice, never a torn one.
type Arrivals struct {
	slots atomic.Pointer[[]PaddedAtomicUint64]
}

// NewArrivals returns counters for p participants, all zero.
func NewArrivals(p int) *Arrivals {
	a := &Arrivals{}
	s := make([]PaddedAtomicUint64, p)
	a.slots.Store(&s)
	return a
}

// Resize replaces the counters with p fresh zeroed slots. It must run at a
// quiescent point (no participant between Note calls for the same
// episode); all counts restart from zero so a concurrent Scan sees a
// uniform baseline rather than phantom laggards.
func (a *Arrivals) Resize(p int) {
	s := make([]PaddedAtomicUint64, p)
	a.slots.Store(&s)
}

// Len returns the number of participants.
func (a *Arrivals) Len() int { return len(*a.slots.Load()) }

// Note records one arrival of participant id. Each id's slot is written by
// its owner only; Note is safe against concurrent readers.
func (a *Arrivals) Note(id int) { (*a.slots.Load())[id].V.Add(1) }

// Count returns participant id's arrival count.
func (a *Arrivals) Count(id int) uint64 { return (*a.slots.Load())[id].V.Load() }

// Snapshot copies the current counts into dst, which is grown as needed,
// and returns it. Pass a reused buffer to avoid per-call allocation.
func (a *Arrivals) Snapshot(dst []uint64) []uint64 {
	slots := *a.slots.Load()
	if cap(dst) < len(slots) {
		dst = make([]uint64, len(slots))
	}
	dst = dst[:len(slots)]
	for i := range slots {
		dst[i] = slots[i].V.Load()
	}
	return dst
}

// Scan snapshots the counters and classifies the step since prev (a
// snapshot from an earlier Scan; nil on the first call): changed reports
// whether any counter moved, equal whether all counters now agree. A
// watchdog treats "changed" as progress and "equal" as quiescence between
// episodes; a scan that is neither — frozen while unequal — is a stalled
// episode. The returned slice holds the new snapshot and must be passed to
// the next Scan. A Resize between scans changes the slot count; Scan then
// reallocates and reports progress, restarting the watchdog's clock for
// the new epoch.
func (a *Arrivals) Scan(prev []uint64) (next []uint64, changed, equal bool) {
	slots := *a.slots.Load()
	if len(prev) != len(slots) {
		prev = make([]uint64, len(slots))
		changed = true // membership changed: that is progress
	}
	hi, lo := uint64(0), ^uint64(0)
	for i := range slots {
		v := slots[i].V.Load()
		if v != prev[i] {
			changed = true
		}
		prev[i] = v
		if v > hi {
			hi = v
		}
		if v < lo {
			lo = v
		}
	}
	equal = hi == lo
	return prev, changed, equal
}

// Reset zeroes every counter. Only meaningful at a quiescent point.
func (a *Arrivals) Reset() {
	slots := *a.slots.Load()
	for i := range slots {
		slots[i].V.Store(0)
	}
}

// Missing returns, in ascending order, the participant ids whose count in
// counts is strictly below the maximum — the participants that had not
// arrived at the episode the snapshot caught in flight.
func Missing(counts []uint64) []int {
	hi := uint64(0)
	for _, v := range counts {
		if v > hi {
			hi = v
		}
	}
	ids := make([]int, 0, len(counts))
	for i, v := range counts {
		if v < hi {
			ids = append(ids, i)
		}
	}
	return ids
}
