package runtime

import (
	"math"
	"sync/atomic"
)

// DefaultSigmaWeight is the weight of the newest episode's spread in the
// EWMA σ estimate — the value the adaptive barrier has always used.
const DefaultSigmaWeight = 0.2

// SigmaEstimator maintains an exponentially weighted moving average of
// per-episode arrival spreads: the measured σ that run-time adaptation and
// the planner's measured profiles consume. Observe is called by one
// goroutine at a time (the episode's releaser, serialized by the barrier's
// own happens-before edges); Sigma and Episodes may be read concurrently
// by anyone.
type SigmaEstimator struct {
	weight float64
	bits   atomic.Uint64 // math.Float64bits of the current estimate
	n      atomic.Uint64
}

// Init sets the EWMA weight; values outside (0, 1] select
// DefaultSigmaWeight. The zero estimator must be initialized before use.
func (e *SigmaEstimator) Init(weight float64) {
	if weight <= 0 || weight > 1 {
		weight = DefaultSigmaWeight
	}
	e.weight = weight
}

// Observe folds one episode's spread (seconds) into the estimate. The
// first observation seeds the EWMA directly.
func (e *SigmaEstimator) Observe(spread float64) {
	cur := spread
	if e.n.Load() > 0 {
		cur = (1-e.weight)*math.Float64frombits(e.bits.Load()) + e.weight*spread
	}
	e.bits.Store(math.Float64bits(cur))
	e.n.Add(1)
}

// Sigma returns the current σ estimate in seconds (0 before any episode).
func (e *SigmaEstimator) Sigma() float64 { return math.Float64frombits(e.bits.Load()) }

// Episodes returns how many spreads have been observed.
func (e *SigmaEstimator) Episodes() uint64 { return e.n.Load() }
