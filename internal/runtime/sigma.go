package runtime

import (
	"math"
	"sync/atomic"
)

// DefaultSigmaWeight is the weight of the newest episode's spread in the
// EWMA σ estimate — the value the adaptive barrier has always used.
const DefaultSigmaWeight = 0.2

// SigmaEstimator maintains an exponentially weighted moving average of
// per-episode arrival spreads: the measured σ that run-time adaptation and
// the planner's measured profiles consume. All methods are safe for
// concurrent use: Observe folds its sample in with a CAS loop, so
// concurrent observers (several barriers sharing one estimator, or an
// estimator fed from outside the release path) cannot lose updates.
type SigmaEstimator struct {
	weight float64
	bits   atomic.Uint64 // math.Float64bits of the current estimate
	n      atomic.Uint64
}

// unseededBits marks an estimator that has not observed anything yet: a
// quiet-NaN payload no arithmetic on real spreads can produce. Keeping the
// "unseeded" state inside the same word as the estimate lets Observe
// decide seed-vs-fold atomically with its CAS, so two racing first
// observations cannot overwrite each other.
const unseededBits = 0x7ff8_0000_0000_0001

// Init sets the EWMA weight; values outside (0, 1] select
// DefaultSigmaWeight. The zero estimator must be initialized before use.
func (e *SigmaEstimator) Init(weight float64) {
	if weight <= 0 || weight > 1 {
		weight = DefaultSigmaWeight
	}
	e.weight = weight
	e.bits.Store(unseededBits)
}

// Observe folds one episode's spread (seconds) into the estimate. The
// first observation seeds the EWMA directly. Concurrent observers are
// safe: the whole load-fold-store is retried on interference.
func (e *SigmaEstimator) Observe(spread float64) {
	for {
		old := e.bits.Load()
		cur := spread
		if old != unseededBits {
			cur = (1-e.weight)*math.Float64frombits(old) + e.weight*spread
		}
		if e.bits.CompareAndSwap(old, math.Float64bits(cur)) {
			e.n.Add(1)
			return
		}
	}
}

// Sigma returns the current σ estimate in seconds (0 before any episode).
func (e *SigmaEstimator) Sigma() float64 {
	b := e.bits.Load()
	if b == unseededBits {
		return 0
	}
	return math.Float64frombits(b)
}

// Episodes returns how many spreads have been observed.
func (e *SigmaEstimator) Episodes() uint64 { return e.n.Load() }
