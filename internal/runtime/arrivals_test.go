package runtime

import (
	"testing"
	"unsafe"
)

// TestArrivalShardIsOneCacheLine pins the sharding invariant: eight
// counters pack exactly one 64-byte line, so a watchdog scan touches p/8
// lines instead of p.
func TestArrivalShardIsOneCacheLine(t *testing.T) {
	if got := unsafe.Sizeof(arrivalShard{}); got != 64 {
		t.Fatalf("arrivalShard is %d bytes, want 64 (one cache line)", got)
	}
}

func TestArrivalsNoteCountAcrossShards(t *testing.T) {
	// 20 participants span 2.5 shards, exercising the partial last shard.
	const p = 20
	a := NewArrivals(p)
	if a.Len() != p {
		t.Fatalf("Len = %d, want %d", a.Len(), p)
	}
	for id := 0; id < p; id++ {
		for k := 0; k <= id; k++ {
			a.Note(id)
		}
	}
	for id := 0; id < p; id++ {
		if got := a.Count(id); got != uint64(id+1) {
			t.Fatalf("Count(%d) = %d, want %d", id, got, id+1)
		}
	}
	snap := a.Snapshot(nil)
	if len(snap) != p {
		t.Fatalf("Snapshot len = %d, want %d", len(snap), p)
	}
	for id, v := range snap {
		if v != uint64(id+1) {
			t.Fatalf("Snapshot[%d] = %d, want %d", id, v, id+1)
		}
	}
	// Participant p-1 has the max (p); everyone else is missing.
	missing := Missing(snap)
	if len(missing) != p-1 {
		t.Fatalf("Missing = %v, want the %d participants below the max", missing, p-1)
	}
}

func TestArrivalsScanAndResize(t *testing.T) {
	a := NewArrivals(9) // one full shard plus one counter
	snap, changed, equal := a.Scan(nil)
	if !changed || !equal {
		t.Fatalf("first scan: changed=%v equal=%v, want true/true (fresh slice counts as progress; all zero)", changed, equal)
	}
	a.Note(3)
	snap, changed, equal = a.Scan(snap)
	if !changed || equal {
		t.Fatalf("after one arrival: changed=%v equal=%v, want true/false", changed, equal)
	}
	snap, changed, equal = a.Scan(snap)
	if changed || equal {
		t.Fatalf("frozen mid-episode: changed=%v equal=%v, want false/false (the stall signature)", changed, equal)
	}
	for id := 0; id < 9; id++ {
		if id != 3 {
			a.Note(id)
		}
	}
	snap, changed, equal = a.Scan(snap)
	if !changed || !equal {
		t.Fatalf("episode complete: changed=%v equal=%v, want true/true", changed, equal)
	}

	a.Resize(17)
	if a.Len() != 17 {
		t.Fatalf("Len after Resize = %d, want 17", a.Len())
	}
	snap, changed, equal = a.Scan(snap)
	if !changed || !equal {
		t.Fatalf("post-resize scan: changed=%v equal=%v, want true/true (resize restarts the clock)", changed, equal)
	}
	if len(snap) != 17 {
		t.Fatalf("post-resize snapshot len = %d, want 17", len(snap))
	}

	a.Note(16)
	a.Reset()
	for id := 0; id < 17; id++ {
		if got := a.Count(id); got != 0 {
			t.Fatalf("Count(%d) after Reset = %d, want 0", id, got)
		}
	}
}

// TestRecorderShrinkToZero is the regression test for the empty-slot-array
// panic: a recorder resized to zero participants must measure and report
// lags without indexing slots[0].
func TestRecorderShrinkToZero(t *testing.T) {
	r := New(4, nil, nil, true)
	for id := 0; id < 4; id++ {
		r.Arrive(id, 0)
	}
	if lags := r.LagsInto(0, nil); len(lags) != 4 {
		t.Fatalf("LagsInto before shrink: %d lags, want 4", len(lags))
	}
	r.Resize(0)
	dst := make([]float64, 0, 8)
	if lags := r.LagsInto(1, dst); len(lags) != 0 {
		t.Fatalf("LagsInto on a zero-p recorder = %v, want empty", lags)
	}
	m, ok := r.Measure(1)
	if !ok {
		t.Fatal("Measure on a zero-p recorder reported not-ok; want an empty measurement")
	}
	if m.Spread != 0 || m.First != 0 || m.Last != 0 {
		t.Fatalf("zero-p measurement = %+v, want zero arrivals", m)
	}
	r.Emit(m, Extra{}) // must not panic either
}
