// Package runtime is the shared wait/instrumentation core under every
// barrier in the root softbarrier package. It provides:
//
//   - a tuned waiter primitive with a bounded spin → yield → park policy
//     (Gate for broadcast releases, Cell for single-waiter signalling),
//     replacing the per-barrier ad-hoc spin loops and sync.Cond paths;
//   - cache-line-padded per-participant slots (PaddedUint64, PaddedInt64)
//     shared by all sense-reversing barriers;
//   - per-episode arrival telemetry (Observer, EpisodeStats, Recorder)
//     with a nil-recorder fast path that costs nothing on the hot path;
//   - the EWMA σ estimator (SigmaEstimator) the adaptive barrier and the
//     planner's measured profiles consume.
package runtime

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// WaitPolicy bounds the phases a waiter goes through before it parks:
// Spin busy-polls on the watched atomic, Yield interleaves polls with
// runtime.Gosched(), and after both budgets are exhausted the waiter parks
// on a blocking primitive until the signaller wakes it. The zero value
// parks immediately; DefaultWaitPolicy is the tuned hybrid.
type WaitPolicy struct {
	// Spin is the number of busy-poll iterations before yielding.
	Spin int
	// Yield is the number of poll+Gosched iterations before parking.
	Yield int
}

// DefaultWaitPolicy returns the tuned hybrid policy: a short busy-poll for
// arrivals already in flight, a yielding phase that keeps the scheduler fed
// on oversubscribed hosts, then a park so waiters stop burning CPU. On a
// single-P runtime busy-polling can never observe progress (the signaller
// cannot be running), so the spin phase is skipped — the same multicore
// gate the Go runtime applies to its own active spinning.
func DefaultWaitPolicy() WaitPolicy {
	if runtime.GOMAXPROCS(0) == 1 {
		return WaitPolicy{Spin: 0, Yield: 128}
	}
	return WaitPolicy{Spin: 128, Yield: 128}
}

// PaddedUint64 is a uint64 on its own cache line, for owner-written
// per-participant slots (sense snapshots, generation numbers).
type PaddedUint64 struct {
	V uint64
	_ [56]byte
}

// PaddedInt64 is an int64 on its own cache line, for owner-written
// per-participant slots (arrival timestamps).
type PaddedInt64 struct {
	V int64
	_ [56]byte
}

// PaddedAtomicUint64 is an atomic uint64 on its own cache line, for
// owner-written per-participant slots that a second goroutine (the
// watchdog) reads concurrently.
type PaddedAtomicUint64 struct {
	V atomic.Uint64
	_ [56]byte
}

// GatePoisonBit is the high bit of the gate's generation word. Poison sets
// it (and nothing ever clears it short of Unpoison), so a single atomic
// load distinguishes "generation advanced" from "barrier poisoned" on the
// wait fast path; episode indices live in the low 63 bits and can never
// carry into it.
const GatePoisonBit = uint64(1) << 63

// Gate is the broadcast half of a sense-reversing barrier: a monotone
// generation counter that waiters watch and the episode's releaser bumps.
// Await runs the spin→yield→park progression; parked waiters block on a
// condition variable the releaser broadcasts. The zero Gate must be
// prepared with Init before use.
//
// A gate can be poisoned: Poison sets the generation word's high bit,
// which wakes every parked and spinning waiter and makes all future
// Awaits return immediately, whatever generation they sampled. Open keeps
// working on a poisoned gate (the bit is sticky under the low-bits
// increment), so release paths racing with an abort need no special
// casing.
type Gate struct {
	seq atomic.Uint64
	_   [56]byte // keep the hot counter off the mutex's cache line

	policy WaitPolicy
	mu     sync.Mutex
	cond   *sync.Cond
}

// Init prepares the gate with the given wait policy.
func (g *Gate) Init(p WaitPolicy) {
	g.policy = p
	g.cond = sync.NewCond(&g.mu)
}

// Seq returns the current generation. A participant samples it on arrival
// and passes the sample to Await; it also doubles as the 0-based episode
// index while the episode is open.
func (g *Gate) Seq() uint64 { return g.seq.Load() }

// Open releases the current generation: it bumps the counter and wakes
// every parked waiter, returning the new generation. Only the episode's
// releasing participant may call it.
func (g *Gate) Open() uint64 {
	// The bump happens under the mutex so a waiter that re-checked the
	// generation while holding it cannot miss the broadcast.
	g.mu.Lock()
	n := g.seq.Add(1)
	g.cond.Broadcast()
	g.mu.Unlock()
	return n
}

// released reports whether a waiter that sampled generation mine may stop
// waiting: the generation moved on, or the gate is poisoned (the bit check
// also covers a sample taken after the poisoning, for which s == mine).
func released(s, mine uint64) bool {
	return s != mine || s&GatePoisonBit != 0
}

// Await blocks until the generation differs from mine, spinning and
// yielding within the policy's budgets before parking. It also returns —
// immediately, for a post-poison sample — when the gate is poisoned.
func (g *Gate) Await(mine uint64) {
	for i := 0; i <= g.policy.Spin; i++ {
		if released(g.seq.Load(), mine) {
			return
		}
	}
	for i := 0; i < g.policy.Yield; i++ {
		runtime.Gosched()
		if released(g.seq.Load(), mine) {
			return
		}
	}
	g.mu.Lock()
	for !released(g.seq.Load(), mine) {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// Poison sets the generation's poison bit and wakes every parked waiter.
// It is idempotent and safe to call concurrently with Open and Await.
func (g *Gate) Poison() {
	g.mu.Lock()
	for {
		s := g.seq.Load()
		if s&GatePoisonBit != 0 || g.seq.CompareAndSwap(s, s|GatePoisonBit) {
			break
		}
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

// Poisoned reports whether the gate has been poisoned.
func (g *Gate) Poisoned() bool { return g.seq.Load()&GatePoisonBit != 0 }

// Unpoison clears the poison bit, restoring the pre-poison generation.
// Only meaningful at a quiescent point: no Await may be in flight.
func (g *Gate) Unpoison() {
	g.mu.Lock()
	for {
		s := g.seq.Load()
		if s&GatePoisonBit == 0 || g.seq.CompareAndSwap(s, s&^GatePoisonBit) {
			break
		}
	}
	g.mu.Unlock()
}

// PoisonValue is the cell poison sentinel: the maximum uint64. Because
// cell waits are of the form "value ≥ target" and episode numbers are
// small, publishing it wakes any waiter whatever its target and makes all
// future waits return immediately — a waiter distinguishes a poison wake
// from a real release by comparing AwaitAtLeast's result against it.
const PoisonValue = ^uint64(0)

// Cell is a cache-line-padded signalling slot carrying a monotonically
// increasing value, with park support for a single waiter — the building
// block for dissemination/tournament round flags and tree-propagated
// wakeups. Writers publish with Set; the (single) waiter blocks with
// AwaitAtLeast. A Cell must be prepared with Init (or InitCells) before
// use and must not be copied afterwards.
//
// Set enforces the monotone contract, so Poison — which publishes the
// maximal PoisonValue — is sticky even against a signaller racing with
// the abort.
type Cell struct {
	v      atomic.Uint64
	parked atomic.Uint32
	_      [4]byte
	wake   chan struct{}
	_      [40]byte
}

// Init allocates the cell's wakeup channel.
func (c *Cell) Init() { c.wake = make(chan struct{}, 1) }

// InitCells initializes every cell of a freshly allocated slice.
func InitCells(cells []Cell) {
	for i := range cells {
		cells[i].Init()
	}
}

// Load returns the cell's current value.
func (c *Cell) Load() uint64 { return c.v.Load() }

// Set publishes v and wakes the parked waiter, if any. Values are
// monotone: a v at or below the current value is ignored, which keeps a
// racing signaller from ever lowering the slot — in particular from
// un-poisoning it.
func (c *Cell) Set(v uint64) {
	for {
		cur := c.v.Load()
		if cur >= v || c.v.CompareAndSwap(cur, v) {
			break
		}
	}
	// The waiter announces itself (parked=1) before re-checking the value,
	// and sync/atomic is sequentially consistent, so either we observe the
	// announcement here or the waiter's re-check observes our store.
	if c.parked.Load() != 0 {
		select {
		case c.wake <- struct{}{}:
		default:
		}
	}
}

// Poison publishes PoisonValue: the parked or spinning waiter wakes, and
// every future AwaitAtLeast returns immediately (with PoisonValue).
func (c *Cell) Poison() { c.Set(PoisonValue) }

// Poisoned reports whether the cell carries the poison sentinel.
func (c *Cell) Poisoned() bool { return c.v.Load() == PoisonValue }

// Reset returns the cell to its initial state (value 0, no pending wakeup
// token). Only meaningful at a quiescent point: no waiter in flight.
func (c *Cell) Reset() {
	c.v.Store(0)
	c.parked.Store(0)
	select {
	case <-c.wake:
	default:
	}
}

// AwaitAtLeast blocks until the cell's value reaches target, returning the
// value observed. Only one goroutine may wait on a cell at a time.
func (c *Cell) AwaitAtLeast(target uint64, p WaitPolicy) uint64 {
	for i := 0; i <= p.Spin; i++ {
		if v := c.v.Load(); v >= target {
			return v
		}
	}
	for i := 0; i < p.Yield; i++ {
		runtime.Gosched()
		if v := c.v.Load(); v >= target {
			return v
		}
	}
	for {
		c.parked.Store(1)
		if v := c.v.Load(); v >= target {
			c.parked.Store(0)
			// Drain a token raced in by the signaller so it cannot wake
			// the next episode's wait spuriously. (A leftover token is
			// harmless anyway — the park loop re-checks the value — but
			// draining keeps wakeups tight.)
			select {
			case <-c.wake:
			default:
			}
			return v
		}
		<-c.wake
	}
}
