// Package runtime is the shared wait/instrumentation core under every
// barrier in the root softbarrier package. It provides:
//
//   - a tuned waiter primitive with a bounded spin → yield → park policy
//     (Gate for broadcast releases, Cell for single-waiter signalling),
//     replacing the per-barrier ad-hoc spin loops and sync.Cond paths;
//   - cache-line-padded per-participant slots (PaddedUint64, PaddedInt64)
//     shared by all sense-reversing barriers;
//   - per-episode arrival telemetry (Observer, EpisodeStats, Recorder)
//     with a nil-recorder fast path that costs nothing on the hot path;
//   - the EWMA σ estimator (SigmaEstimator) the adaptive barrier and the
//     planner's measured profiles consume.
package runtime

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// WaitPolicy bounds the phases a waiter goes through before it parks:
// Spin busy-polls on the watched atomic, Yield interleaves polls with
// runtime.Gosched(), and after both budgets are exhausted the waiter parks
// on a blocking primitive until the signaller wakes it. The zero value
// parks immediately; DefaultWaitPolicy is the tuned hybrid.
type WaitPolicy struct {
	// Spin is the number of busy-poll iterations before yielding.
	Spin int
	// Yield is the number of poll+Gosched iterations before parking.
	Yield int
}

// DefaultWaitPolicy returns the tuned hybrid policy: a short busy-poll for
// arrivals already in flight, a yielding phase that keeps the scheduler fed
// on oversubscribed hosts, then a park so waiters stop burning CPU. On a
// single-P runtime busy-polling can never observe progress (the signaller
// cannot be running), so the spin phase is skipped — the same multicore
// gate the Go runtime applies to its own active spinning.
func DefaultWaitPolicy() WaitPolicy {
	if runtime.GOMAXPROCS(0) == 1 {
		return WaitPolicy{Spin: 0, Yield: 128}
	}
	return WaitPolicy{Spin: 128, Yield: 128}
}

// PaddedUint64 is a uint64 on its own cache line, for owner-written
// per-participant slots (sense snapshots, generation numbers).
type PaddedUint64 struct {
	V uint64
	_ [56]byte
}

// PaddedInt64 is an int64 on its own cache line, for owner-written
// per-participant slots (arrival timestamps).
type PaddedInt64 struct {
	V int64
	_ [56]byte
}

// Gate is the broadcast half of a sense-reversing barrier: a monotone
// generation counter that waiters watch and the episode's releaser bumps.
// Await runs the spin→yield→park progression; parked waiters block on a
// condition variable the releaser broadcasts. The zero Gate must be
// prepared with Init before use.
type Gate struct {
	seq atomic.Uint64
	_   [56]byte // keep the hot counter off the mutex's cache line

	policy WaitPolicy
	mu     sync.Mutex
	cond   *sync.Cond
}

// Init prepares the gate with the given wait policy.
func (g *Gate) Init(p WaitPolicy) {
	g.policy = p
	g.cond = sync.NewCond(&g.mu)
}

// Seq returns the current generation. A participant samples it on arrival
// and passes the sample to Await; it also doubles as the 0-based episode
// index while the episode is open.
func (g *Gate) Seq() uint64 { return g.seq.Load() }

// Open releases the current generation: it bumps the counter and wakes
// every parked waiter, returning the new generation. Only the episode's
// releasing participant may call it.
func (g *Gate) Open() uint64 {
	// The bump happens under the mutex so a waiter that re-checked the
	// generation while holding it cannot miss the broadcast.
	g.mu.Lock()
	n := g.seq.Add(1)
	g.cond.Broadcast()
	g.mu.Unlock()
	return n
}

// Await blocks until the generation differs from mine, spinning and
// yielding within the policy's budgets before parking.
func (g *Gate) Await(mine uint64) {
	for i := 0; i <= g.policy.Spin; i++ {
		if g.seq.Load() != mine {
			return
		}
	}
	for i := 0; i < g.policy.Yield; i++ {
		runtime.Gosched()
		if g.seq.Load() != mine {
			return
		}
	}
	g.mu.Lock()
	for g.seq.Load() == mine {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// Cell is a cache-line-padded signalling slot carrying a monotonically
// increasing value, with park support for a single waiter — the building
// block for dissemination/tournament round flags and tree-propagated
// wakeups. Writers publish with Set; the (single) waiter blocks with
// AwaitAtLeast. A Cell must be prepared with Init (or InitCells) before
// use and must not be copied afterwards.
type Cell struct {
	v      atomic.Uint64
	parked atomic.Uint32
	_      [4]byte
	wake   chan struct{}
	_      [40]byte
}

// Init allocates the cell's wakeup channel.
func (c *Cell) Init() { c.wake = make(chan struct{}, 1) }

// InitCells initializes every cell of a freshly allocated slice.
func InitCells(cells []Cell) {
	for i := range cells {
		cells[i].Init()
	}
}

// Load returns the cell's current value.
func (c *Cell) Load() uint64 { return c.v.Load() }

// Set publishes v — which must not decrease the cell's value — and wakes
// the parked waiter, if any.
func (c *Cell) Set(v uint64) {
	c.v.Store(v)
	// The waiter announces itself (parked=1) before re-checking the value,
	// and sync/atomic is sequentially consistent, so either we observe the
	// announcement here or the waiter's re-check observes our store.
	if c.parked.Load() != 0 {
		select {
		case c.wake <- struct{}{}:
		default:
		}
	}
}

// AwaitAtLeast blocks until the cell's value reaches target, returning the
// value observed. Only one goroutine may wait on a cell at a time.
func (c *Cell) AwaitAtLeast(target uint64, p WaitPolicy) uint64 {
	for i := 0; i <= p.Spin; i++ {
		if v := c.v.Load(); v >= target {
			return v
		}
	}
	for i := 0; i < p.Yield; i++ {
		runtime.Gosched()
		if v := c.v.Load(); v >= target {
			return v
		}
	}
	for {
		c.parked.Store(1)
		if v := c.v.Load(); v >= target {
			c.parked.Store(0)
			// Drain a token raced in by the signaller so it cannot wake
			// the next episode's wait spuriously. (A leftover token is
			// harmless anyway — the park loop re-checks the value — but
			// draining keeps wakeups tight.)
			select {
			case <-c.wake:
			default:
			}
			return v
		}
		<-c.wake
	}
}
