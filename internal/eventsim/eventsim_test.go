package eventsim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	var s Simulator
	var got []float64
	times := []float64{5, 1, 3, 2, 4}
	for _, tm := range times {
		tm := tm
		s.ScheduleAt(tm, func() { got = append(got, tm) })
	}
	end := s.Run()
	if end != 5 {
		t.Fatalf("final time %v, want 5", end)
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events out of order: %v", got)
	}
	if len(got) != len(times) {
		t.Fatalf("ran %d events, want %d", len(got), len(times))
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	var s Simulator
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.ScheduleAt(1, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	var s Simulator
	var trace []float64
	s.ScheduleAt(1, func() {
		trace = append(trace, s.Now())
		s.Schedule(2, func() { trace = append(trace, s.Now()) })
		s.Schedule(0.5, func() { trace = append(trace, s.Now()) })
	})
	s.Run()
	want := []float64{1, 1.5, 3}
	if len(trace) != len(want) {
		t.Fatalf("trace %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var s Simulator
	s.ScheduleAt(10, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.ScheduleAt(5, func() {})
}

func TestRunUntil(t *testing.T) {
	var s Simulator
	fired := 0
	for _, tm := range []float64{1, 2, 3, 4} {
		s.ScheduleAt(tm, func() { fired++ })
	}
	if now := s.RunUntil(2.5); now != 2.5 {
		t.Fatalf("RunUntil time %v, want 2.5", now)
	}
	if fired != 2 {
		t.Fatalf("fired %d events, want 2", fired)
	}
	if s.Pending() != 2 {
		t.Fatalf("pending %d, want 2", s.Pending())
	}
	s.Run()
	if fired != 4 {
		t.Fatalf("fired %d events after Run, want 4", fired)
	}
}

func TestStop(t *testing.T) {
	var s Simulator
	fired := 0
	s.ScheduleAt(1, func() { fired++; s.Stop() })
	s.ScheduleAt(2, func() { fired++ })
	s.Run()
	if fired != 1 {
		t.Fatalf("Stop did not halt the run: fired=%d", fired)
	}
	s.Run() // resumes
	if fired != 2 {
		t.Fatalf("second Run did not resume: fired=%d", fired)
	}
}

func TestProcessedCount(t *testing.T) {
	var s Simulator
	for i := 0; i < 5; i++ {
		s.ScheduleAt(float64(i), func() {})
	}
	s.Run()
	if s.Processed != 5 {
		t.Fatalf("Processed = %d, want 5", s.Processed)
	}
}

func TestResourceSerializesOverlapping(t *testing.T) {
	var r Resource
	s1, e1 := r.Use(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first use [%v, %v), want [0, 10)", s1, e1)
	}
	s2, e2 := r.Use(5, 10)
	if s2 != 10 || e2 != 20 {
		t.Fatalf("queued use [%v, %v), want [10, 20)", s2, e2)
	}
	s3, e3 := r.Use(50, 10)
	if s3 != 50 || e3 != 60 {
		t.Fatalf("idle use [%v, %v), want [50, 60)", s3, e3)
	}
}

func TestResourceMetrics(t *testing.T) {
	var r Resource
	r.Use(0, 10)
	r.Use(5, 10) // waits 5
	r.Use(6, 10) // waits 14
	if r.Uses != 3 {
		t.Fatalf("Uses = %d", r.Uses)
	}
	if r.TotalWait != 19 {
		t.Fatalf("TotalWait = %v, want 19", r.TotalWait)
	}
	if r.MaxWait != 14 {
		t.Fatalf("MaxWait = %v, want 14", r.MaxWait)
	}
	if r.TotalService != 30 {
		t.Fatalf("TotalService = %v, want 30", r.TotalService)
	}
	r.ResetMetrics()
	if r.Uses != 0 || r.TotalWait != 0 {
		t.Fatal("ResetMetrics did not clear")
	}
	if r.FreeAt() != 30 {
		t.Fatal("ResetMetrics must not clear schedule state")
	}
	r.Reset()
	if r.FreeAt() != 0 {
		t.Fatal("Reset must clear schedule state")
	}
}

func TestResourceBackwardsRequestPanics(t *testing.T) {
	var r Resource
	r.Use(10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards request did not panic")
		}
	}()
	r.Use(5, 1)
}

func TestResourceNegativeServicePanics(t *testing.T) {
	var r Resource
	defer func() {
		if recover() == nil {
			t.Fatal("negative service did not panic")
		}
	}()
	r.Use(0, -1)
}

// Property: for any request sequence with non-decreasing timestamps, grants
// do not overlap, respect request order, and never start before the request.
func TestResourceNoOverlapProperty(t *testing.T) {
	f := func(rawArrivals []uint16, rawService []uint8) bool {
		var r Resource
		now := 0.0
		prevEnd := 0.0
		n := len(rawArrivals)
		if len(rawService) < n {
			n = len(rawService)
		}
		for i := 0; i < n; i++ {
			now += float64(rawArrivals[i]) / 100
			svc := float64(rawService[i]) / 10
			start, end := r.Use(now, svc)
			if start < now || end != start+svc || start < prevEnd {
				return false
			}
			prevEnd = end
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
