package eventsim

import "fmt"

// Resource models a unit-capacity FIFO server: each Use occupies the
// resource exclusively for its service time, and requests are served in the
// order they are issued. The barrier simulator gives every combining-tree
// counter one Resource; an update's service time is the counter-update
// latency t_c.
//
// Correct FIFO behaviour relies on requests being issued in non-decreasing
// time order, which holds whenever Use is called from inside simulator
// events (the engine fires events in time order). Use panics if called with
// a timestamp that goes backwards, as that indicates the caller broke the
// discipline.
type Resource struct {
	// Name labels the resource in diagnostics.
	Name string

	nextFree float64
	lastReq  float64

	// Metrics, reset by ResetMetrics.
	Uses         uint64  // number of completed service grants
	TotalWait    float64 // cumulative time requests spent queued
	TotalService float64 // cumulative service time
	MaxWait      float64 // largest single queueing delay
}

// Use requests the resource at time now for the given service duration and
// returns the interval [start, end) during which the request holds the
// resource. service must be non-negative.
func (r *Resource) Use(now, service float64) (start, end float64) {
	if now < r.lastReq {
		panic(fmt.Sprintf("eventsim: resource %q request at %v after one at %v", r.Name, now, r.lastReq))
	}
	if service < 0 {
		panic("eventsim: negative service time")
	}
	r.lastReq = now
	start = now
	if r.nextFree > start {
		start = r.nextFree
	}
	end = start + service
	r.nextFree = end

	wait := start - now
	r.Uses++
	r.TotalWait += wait
	r.TotalService += service
	if wait > r.MaxWait {
		r.MaxWait = wait
	}
	return start, end
}

// FreeAt returns the earliest time a new request issued now would start
// service.
func (r *Resource) FreeAt() float64 { return r.nextFree }

// ResetMetrics clears the accumulated metrics but keeps the schedule state.
func (r *Resource) ResetMetrics() {
	r.Uses = 0
	r.TotalWait = 0
	r.TotalService = 0
	r.MaxWait = 0
}

// Reset returns the resource to an idle state at time 0 and clears metrics.
func (r *Resource) Reset() {
	r.nextFree = 0
	r.lastReq = 0
	r.ResetMetrics()
}
