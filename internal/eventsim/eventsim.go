// Package eventsim implements a minimal deterministic discrete-event
// simulation engine: a simulated clock, an event heap, and FIFO resources
// with exclusive service times. The barrier simulator is built on top of it;
// the engine itself knows nothing about barriers.
//
// Determinism: events scheduled for the same instant fire in scheduling
// order (a monotone sequence number breaks ties), so a simulation run is a
// pure function of its inputs.
package eventsim

import (
	"container/heap"
	"fmt"
	"math"
)

// event is a scheduled callback.
type event struct {
	t   float64
	seq uint64
	fn  func()
}

// eventHeap orders events by (time, sequence).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Simulator is a discrete-event simulator. The zero value is ready to use
// with the clock at 0.
type Simulator struct {
	now     float64
	seq     uint64
	events  eventHeap
	stopped bool
	// Processed counts events executed by Run/RunUntil/Step.
	Processed uint64
}

// Now returns the current simulated time.
func (s *Simulator) Now() float64 { return s.now }

// ScheduleAt schedules fn to run at absolute simulated time t. Scheduling in
// the past (t < Now) panics: it would silently corrupt causality.
func (s *Simulator) ScheduleAt(t float64, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("eventsim: schedule at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) {
		panic("eventsim: schedule at NaN")
	}
	s.seq++
	heap.Push(&s.events, event{t: t, seq: s.seq, fn: fn})
}

// Schedule schedules fn to run delay time units from now. Negative delays
// panic.
func (s *Simulator) Schedule(delay float64, fn func()) {
	s.ScheduleAt(s.now+delay, fn)
}

// Pending returns the number of events not yet executed.
func (s *Simulator) Pending() int { return len(s.events) }

// Stop makes the current Run call return after the in-flight event.
func (s *Simulator) Stop() { s.stopped = true }

// Step executes the single earliest pending event and reports whether one
// was executed.
func (s *Simulator) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(event)
	s.now = e.t
	s.Processed++
	e.fn()
	return true
}

// Run executes events in time order until the event set is exhausted or
// Stop is called. It returns the final simulated time.
func (s *Simulator) Run() float64 {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
	return s.now
}

// RunUntil executes events with time ≤ t, then advances the clock to t
// (if the clock has not already passed it) and returns the simulated time.
func (s *Simulator) RunUntil(t float64) float64 {
	s.stopped = false
	for !s.stopped && len(s.events) > 0 && s.events[0].t <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
	return s.now
}
