// Package ringsim models the KSR1-style interconnect at the message
// level: unidirectional slotted rings (ring:0) whose links are occupied
// for one slot time per passing message, optionally joined by a top-level
// ring:1 through per-ring interface nodes. Messages pipeline naturally
// (spatial reuse) and queue FIFO at each link, so converging traffic —
// the hot spot of Pfister & Norton that the paper's §2 cites as the
// motivation for combining — creates honest link contention.
//
// The barrier experiments use it to compare the *network* cost of flat
// versus combining-tree gathers (EXT8), complementing the counter-
// serialization cost the rest of the study models.
package ringsim

import (
	"fmt"

	"softbarrier/internal/eventsim"
)

// Ring is one unidirectional slotted ring of N nodes. Link i carries
// traffic from node i to node (i+1) mod N; each message occupies a link
// for SlotTime.
type Ring struct {
	N        int
	SlotTime float64
	links    []eventsim.Resource
}

// NewRing creates a ring of n nodes with the given per-hop slot time.
func NewRing(n int, slotTime float64) *Ring {
	if n < 2 {
		panic("ringsim: ring needs at least two nodes")
	}
	if slotTime <= 0 {
		panic("ringsim: slot time must be positive")
	}
	r := &Ring{N: n, SlotTime: slotTime, links: make([]eventsim.Resource, n)}
	for i := range r.links {
		r.links[i].Name = fmt.Sprintf("link%d", i)
	}
	return r
}

// Hops returns the number of links a message from src to dst traverses.
func (r *Ring) Hops(src, dst int) int {
	return (dst - src + r.N) % r.N
}

// Transit moves a message from src to dst starting at the current
// simulated time, hopping link by link, and calls done with the delivery
// time. src == dst delivers immediately.
func (r *Ring) Transit(sim *eventsim.Simulator, src, dst int, done func(t float64)) {
	if src < 0 || src >= r.N || dst < 0 || dst >= r.N {
		panic("ringsim: node out of range")
	}
	var hop func(node int)
	hop = func(node int) {
		if node == dst {
			done(sim.Now())
			return
		}
		_, end := r.links[node].Use(sim.Now(), r.SlotTime)
		next := (node + 1) % r.N
		sim.ScheduleAt(end, func() { hop(next) })
	}
	hop(src)
}

// MaxLinkUtilization returns the largest fraction of the interval
// [0, horizon] any link spent busy, a hot-spot indicator.
func (r *Ring) MaxLinkUtilization(horizon float64) float64 {
	if horizon <= 0 {
		panic("ringsim: non-positive horizon")
	}
	max := 0.0
	for i := range r.links {
		if u := r.links[i].TotalService / horizon; u > max {
			max = u
		}
	}
	return max
}

// Reset clears all link state.
func (r *Ring) Reset() {
	for i := range r.links {
		r.links[i].Reset()
	}
}

// Interconnect is a two-level hierarchy: one ring:0 per group, joined by a
// ring:1 whose node i is the interface of ring i. Global node numbering is
// ring-major: node g = ring·ring0Size + local.
type Interconnect struct {
	Ring0s []*Ring
	Ring1  *Ring
	// Iface[i] is the ring:0 node hosting ring i's ring:1 interface.
	Iface []int
}

// NewInterconnect builds rings ring:0s of size each, joined by a ring:1
// with the given slot times. Interfaces sit at local node 0 of every ring.
// A single ring omits ring:1.
func NewInterconnect(rings, size int, slot0, slot1 float64) *Interconnect {
	if rings < 1 {
		panic("ringsim: need at least one ring")
	}
	ic := &Interconnect{}
	for i := 0; i < rings; i++ {
		ic.Ring0s = append(ic.Ring0s, NewRing(size, slot0))
		ic.Iface = append(ic.Iface, 0)
	}
	if rings > 1 {
		ic.Ring1 = NewRing(rings, slot1)
	}
	return ic
}

// P returns the total node count.
func (ic *Interconnect) P() int { return len(ic.Ring0s) * ic.Ring0s[0].N }

// Split returns the ring index and local node of a global node.
func (ic *Interconnect) Split(g int) (ring, local int) {
	size := ic.Ring0s[0].N
	return g / size, g % size
}

// Send delivers a message from global node src to global node dst,
// calling done with the delivery time. Cross-ring messages hop
// ring:0 → ring:1 → ring:0 through the interface nodes.
func (ic *Interconnect) Send(sim *eventsim.Simulator, src, dst int, done func(t float64)) {
	sr, sl := ic.Split(src)
	dr, dl := ic.Split(dst)
	if sr == dr {
		ic.Ring0s[sr].Transit(sim, sl, dl, done)
		return
	}
	// To the local interface, across ring:1, then to the destination.
	ic.Ring0s[sr].Transit(sim, sl, ic.Iface[sr], func(float64) {
		ic.Ring1.Transit(sim, sr, dr, func(float64) {
			ic.Ring0s[dr].Transit(sim, ic.Iface[dr], dl, done)
		})
	})
}

// Reset clears all link state.
func (ic *Interconnect) Reset() {
	for _, r := range ic.Ring0s {
		r.Reset()
	}
	if ic.Ring1 != nil {
		ic.Ring1.Reset()
	}
}
