package ringsim

import (
	"softbarrier/internal/eventsim"
	"softbarrier/internal/topology"
)

// GatherResult reports one simulated barrier-gather's network behaviour.
type GatherResult struct {
	// Completion is when the last message of the gather is delivered. On
	// a unidirectional ring any gather needs Ω(N) slots of propagation
	// (information must physically circle), so completion alone does not
	// separate the schemes.
	Completion float64
	// Messages is the number of point-to-point messages sent.
	Messages int
	// TotalTraffic is the total link occupancy in slot·hops — the
	// bandwidth the gather steals from data traffic. This is where
	// combining wins: Θ(N²) for the flat gather versus Θ(N·d) for the
	// tree (Yew/Tzeng/Lawrie's "distributing the hot spot").
	TotalTraffic float64
	// MaxLinkUtilization is the busiest link's busy fraction over the
	// gather.
	MaxLinkUtilization float64
}

// measure finalizes the shared result fields.
func (g *GatherResult) measure(r *Ring) {
	total := 0.0
	for i := range r.links {
		total += r.links[i].TotalService
	}
	g.TotalTraffic = total
	if g.Completion > 0 {
		g.MaxLinkUtilization = r.MaxLinkUtilization(g.Completion)
	}
}

// FlatGather simulates the network traffic of a flat barrier's arrival
// phase on a single ring: every node sends one message to the counter's
// home node (the ring's last node, so all traffic flows forward). The
// links feeding the home node carry Θ(N) messages each — the §2 hot spot.
func FlatGather(r *Ring) GatherResult {
	r.Reset()
	home := r.N - 1
	var sim eventsim.Simulator
	res := GatherResult{}
	for n := 0; n < r.N; n++ {
		if n == home {
			continue
		}
		src := n
		res.Messages++
		sim.ScheduleAt(0, func() {
			r.Transit(&sim, src, home, func(t float64) {
				if t > res.Completion {
					res.Completion = t
				}
			})
		})
	}
	sim.Run()
	res.measure(r)
	return res
}

// CounterHomes assigns each tree counter a home node with locality: a
// counter with an attached local processor lives in that processor's
// cache; otherwise a leaf counter lives at its last member's node and an
// internal counter at its last child's home. Every message then travels a
// distance bounded by its subtree's span — the placement a real runtime
// would choose on a ring.
func CounterHomes(tree *topology.Tree) []int {
	homes := make([]int, len(tree.Counters))
	// Children always have lower IDs than their parent (layered
	// construction), so one ascending pass suffices.
	for c := range tree.Counters {
		tc := &tree.Counters[c]
		switch {
		case tc.Local != topology.NoProc:
			homes[c] = tc.Local
		case len(tc.Procs) > 0:
			homes[c] = tc.Procs[len(tc.Procs)-1]
		case len(tc.Children) > 0:
			homes[c] = homes[tc.Children[len(tc.Children)-1]]
		default:
			homes[c] = 0
		}
	}
	return homes
}

// HierarchicalGather simulates a ring-constrained tree barrier's arrival
// traffic on a two-level interconnect (the §7 machine shape): counters are
// homed with locality inside each ring, and only the per-ring subtree
// roots' messages cross ring:1 to the merge root. It returns the gather's
// completion and total ring:1 crossings — the quantity the ring-constraint
// exists to minimize.
func HierarchicalGather(ic *Interconnect, tree *topology.Tree) (completion float64, ring1Crossings int) {
	if tree.P != ic.P() {
		panic("ringsim: tree size does not match interconnect size")
	}
	var sim eventsim.Simulator
	homes := CounterHomes(tree)

	pending := make([]int, len(tree.Counters))
	for i := range tree.Counters {
		pending[i] = tree.Counters[i].FanIn()
	}

	var deliver func(counter int, t float64)
	send := func(from, counter int) {
		sr, _ := ic.Split(from)
		dr, _ := ic.Split(homes[counter])
		if sr != dr {
			ring1Crossings++
		}
		ic.Send(&sim, from, homes[counter], func(t float64) { deliver(counter, t) })
	}
	deliver = func(counter int, t float64) {
		pending[counter]--
		if pending[counter] > 0 {
			return
		}
		parent := tree.Counters[counter].Parent
		if parent == topology.NoCounter {
			if t > completion {
				completion = t
			}
			return
		}
		send(homes[counter], parent)
	}

	for proc := 0; proc < tree.P; proc++ {
		proc := proc
		sim.ScheduleAt(0, func() { send(proc, tree.FirstCounter(proc)) })
	}
	sim.Run()
	return completion, ring1Crossings
}

// TreeGather simulates the network traffic of a combining-tree barrier's
// arrival phase on a single ring: every processor sends to its first
// counter's home, and each completed counter sends one message to its
// parent's home. Message causality follows the tree: a counter's
// parent-message departs only when all its children's messages arrived.
func TreeGather(r *Ring, tree *topology.Tree) GatherResult {
	if tree.P != r.N {
		panic("ringsim: tree size does not match ring size")
	}
	r.Reset()
	var sim eventsim.Simulator
	res := GatherResult{}
	homes := CounterHomes(tree)

	pending := make([]int, len(tree.Counters))
	for i := range tree.Counters {
		pending[i] = tree.Counters[i].FanIn()
	}

	var deliver func(counter int, t float64)
	send := func(from, counter int) {
		res.Messages++
		r.Transit(&sim, from, homes[counter], func(t float64) { deliver(counter, t) })
	}
	deliver = func(counter int, t float64) {
		pending[counter]--
		if pending[counter] > 0 {
			return
		}
		// Counter complete: notify the parent, or finish at the root.
		parent := tree.Counters[counter].Parent
		if parent == topology.NoCounter {
			if t > res.Completion {
				res.Completion = t
			}
			return
		}
		send(homes[counter], parent)
	}

	for proc := 0; proc < tree.P; proc++ {
		proc := proc
		sim.ScheduleAt(0, func() { send(proc, tree.FirstCounter(proc)) })
	}
	sim.Run()
	res.measure(r)
	return res
}
