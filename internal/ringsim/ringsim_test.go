package ringsim

import (
	"math"
	"testing"

	"softbarrier/internal/eventsim"
	"softbarrier/internal/topology"
)

const slot = 1e-6

func transitTime(r *Ring, src, dst int) float64 {
	var sim eventsim.Simulator
	var done float64 = -1
	sim.ScheduleAt(0, func() {
		r.Transit(&sim, src, dst, func(t float64) { done = t })
	})
	sim.Run()
	return done
}

func TestTransitLatencyIsHopsTimesSlot(t *testing.T) {
	r := NewRing(8, slot)
	cases := []struct {
		src, dst, hops int
	}{
		{0, 1, 1}, {0, 7, 7}, {7, 0, 1}, {3, 3, 0}, {5, 2, 5},
	}
	for _, c := range cases {
		r.Reset()
		got := transitTime(r, c.src, c.dst)
		want := float64(c.hops) * slot
		if math.Abs(got-want) > 1e-15 {
			t.Errorf("%d→%d: %v, want %v", c.src, c.dst, got, want)
		}
		if r.Hops(c.src, c.dst) != c.hops {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, r.Hops(c.src, c.dst), c.hops)
		}
	}
}

func TestMessagesPipelineOnSharedPath(t *testing.T) {
	// Two messages 0→4 started together share links; the second trails one
	// slot behind (pipelining, not full serialization).
	r := NewRing(8, slot)
	var sim eventsim.Simulator
	var t1, t2 float64
	sim.ScheduleAt(0, func() {
		r.Transit(&sim, 0, 4, func(t float64) { t1 = t })
		r.Transit(&sim, 0, 4, func(t float64) { t2 = t })
	})
	sim.Run()
	if math.Abs(t1-4*slot) > 1e-15 {
		t.Errorf("first message %v, want %v", t1, 4*slot)
	}
	if math.Abs(t2-5*slot) > 1e-15 {
		t.Errorf("second message %v, want %v (one slot behind)", t2, 5*slot)
	}
}

func TestDisjointPathsDoNotInteract(t *testing.T) {
	r := NewRing(8, slot)
	var sim eventsim.Simulator
	var t1, t2 float64
	sim.ScheduleAt(0, func() {
		r.Transit(&sim, 0, 2, func(t float64) { t1 = t })
		r.Transit(&sim, 4, 6, func(t float64) { t2 = t })
	})
	sim.Run()
	if t1 != 2*slot || t2 != 2*slot {
		t.Errorf("disjoint messages %v, %v; want both %v", t1, t2, 2*slot)
	}
}

func TestRingPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewRing(1, slot) },
		func() { NewRing(4, 0) },
		func() { NewInterconnect(0, 4, slot, slot) },
		func() { NewRing(4, slot).MaxLinkUtilization(0) },
		func() {
			r := NewRing(4, slot)
			var sim eventsim.Simulator
			r.Transit(&sim, 0, 9, nil)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestInterconnectCrossRing(t *testing.T) {
	ic := NewInterconnect(2, 4, slot, 10*slot)
	if ic.P() != 8 {
		t.Fatalf("P = %d", ic.P())
	}
	var sim eventsim.Simulator
	var done float64 = -1
	// Node 1 (ring 0, local 1) to node 6 (ring 1, local 2):
	// local 1→0 (3 hops), ring1 0→1 (1 hop × 10 slots), local 0→2 (2 hops).
	sim.ScheduleAt(0, func() {
		ic.Send(&sim, 1, 6, func(t float64) { done = t })
	})
	sim.Run()
	want := 3*slot + 10*slot + 2*slot
	if math.Abs(done-want) > 1e-15 {
		t.Errorf("cross-ring delivery %v, want %v", done, want)
	}
	// Same-ring send takes the local path only.
	ic.Reset()
	var sim2 eventsim.Simulator
	done = -1
	sim2.ScheduleAt(0, func() {
		ic.Send(&sim2, 1, 3, func(t float64) { done = t })
	})
	sim2.Run()
	if math.Abs(done-2*slot) > 1e-15 {
		t.Errorf("local delivery %v, want %v", done, 2*slot)
	}
}

func TestFlatGatherHotSpot(t *testing.T) {
	r := NewRing(32, slot)
	res := FlatGather(r)
	if res.Messages != 31 {
		t.Fatalf("messages = %d", res.Messages)
	}
	// The last link into the home node carries all 31 messages: completion
	// is at least 31 slots, and that link is (nearly) saturated.
	if res.Completion < 31*slot-1e-15 {
		t.Errorf("completion %v below the hot-spot floor %v", res.Completion, 31*slot)
	}
	if res.MaxLinkUtilization < 0.9 {
		t.Errorf("hot link utilization %v, want ≈1", res.MaxLinkUtilization)
	}
	// Total traffic is the full Σ hops ≈ N²/2.
	if want := float64(31*32/2) * slot; math.Abs(res.TotalTraffic-want) > 1e-12 {
		t.Errorf("flat traffic %v, want %v", res.TotalTraffic, want)
	}
}

func TestTreeGatherSavesBandwidth(t *testing.T) {
	// On a unidirectional ring any gather needs Ω(N) propagation, so the
	// tree's win is bandwidth: its locality-homed counters cut the total
	// link occupancy from Θ(N²) to Θ(N·d) — Yew/Tzeng/Lawrie's point —
	// and lower the busiest link's load.
	const n = 64
	flat := FlatGather(NewRing(n, slot))
	tree := TreeGather(NewRing(n, slot), topology.NewClassic(n, 4))
	if tree.TotalTraffic >= flat.TotalTraffic/2 {
		t.Errorf("tree traffic %v not ≪ flat traffic %v", tree.TotalTraffic, flat.TotalTraffic)
	}
	if tree.MaxLinkUtilization >= flat.MaxLinkUtilization {
		t.Errorf("tree max utilization %v not below flat %v",
			tree.MaxLinkUtilization, flat.MaxLinkUtilization)
	}
	if tree.Messages <= flat.Messages {
		t.Errorf("tree sends %d messages, flat %d — tree sends more (smaller) messages",
			tree.Messages, flat.Messages)
	}
	// Neither scheme escapes the ring's Ω(N) propagation floor.
	const eps = 1e-12
	if tree.Completion < float64(n-1)*slot/2-eps || flat.Completion < float64(n-1)*slot-eps {
		t.Errorf("completions below propagation floor: tree %v flat %v", tree.Completion, flat.Completion)
	}
}

func TestCounterHomesLocality(t *testing.T) {
	tr := topology.NewClassic(64, 4)
	homes := CounterHomes(tr)
	// A leaf's home is its last member; every member's forward distance to
	// it is < d.
	r := NewRing(64, slot)
	for i := range tr.Counters {
		c := &tr.Counters[i]
		if len(c.Children) > 0 {
			continue
		}
		for _, p := range c.Procs {
			if h := r.Hops(p, homes[i]); h >= 4 {
				t.Errorf("proc %d is %d hops from its leaf home", p, h)
			}
		}
	}
	// Root home is the last node.
	if homes[tr.Root] != 63 {
		t.Errorf("root home %d, want 63", homes[tr.Root])
	}
}

func TestTreeGatherMessageCount(t *testing.T) {
	// One message per processor plus one per non-root counter.
	n := 64
	tr := topology.NewClassic(n, 4)
	res := TreeGather(NewRing(n, slot), tr)
	want := n + tr.NumCounters() - 1
	if res.Messages != want {
		t.Fatalf("messages = %d, want %d", res.Messages, want)
	}
}

func TestTreeGatherSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	TreeGather(NewRing(8, slot), topology.NewClassic(16, 4))
}

func TestHierarchicalGatherMinimizesRing1Crossings(t *testing.T) {
	// A ring-constrained tree on a 2×8 interconnect: only the per-ring
	// subtree roots cross ring:1, so exactly... the merge root is homed in
	// ring 0 (locality homing follows its last child), and only messages
	// whose source ring differs from the merge root's ring cross — one per
	// non-resident ring subtree.
	ic := NewInterconnect(2, 8, slot, 10*slot)
	tree := topology.NewRing([]int{8, 8}, 4)
	completion, crossings := HierarchicalGather(ic, tree)
	if completion <= 0 {
		t.Fatal("gather did not complete")
	}
	if crossings > 1 {
		t.Errorf("ring:1 crossings = %d, want ≤ 1 (only the remote subtree root)", crossings)
	}
	// Contrast: a ring-oblivious classic tree scatters counters across
	// rings and crosses ring:1 many times.
	ic2 := NewInterconnect(2, 8, slot, 10*slot)
	oblivious := topology.NewClassic(16, 4)
	_, obliviousCrossings := HierarchicalGather(ic2, oblivious)
	if obliviousCrossings <= crossings {
		t.Errorf("ring-oblivious tree crossed ring:1 %d times, constrained %d — constraint should win",
			obliviousCrossings, crossings)
	}
}

func TestHierarchicalGatherSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	HierarchicalGather(NewInterconnect(2, 8, slot, slot), topology.NewClassic(8, 4))
}
