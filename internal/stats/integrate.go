package stats

import "math"

// gaussLegendre integrates f over [a, b] with composite 16-point
// Gauss-Legendre quadrature over panels sub-intervals.
func gaussLegendre(f func(float64) float64, a, b float64, panels int) float64 {
	if panels < 1 {
		panels = 1
	}
	h := (b - a) / float64(panels)
	sum := 0.0
	for p := 0; p < panels; p++ {
		lo := a + float64(p)*h
		mid := lo + h/2
		half := h / 2
		for i, x := range gl16Nodes {
			sum += gl16Weights[i] * (f(mid+half*x) + f(mid-half*x)) * half
		}
	}
	return sum
}

// 16-point Gauss-Legendre nodes and weights on [-1, 1] (positive half;
// the quadrature mirrors them).
var gl16Nodes = [8]float64{
	0.0950125098376374, 0.2816035507792589,
	0.4580167776572274, 0.6178762444026438,
	0.7554044083550030, 0.8656312023878318,
	0.9445750230732326, 0.9894009349916499,
}

var gl16Weights = [8]float64{
	0.1894506104550685, 0.1826034150449236,
	0.1691565193950025, 0.1495959888165767,
	0.1246289712555339, 0.0951585116824928,
	0.0622535239386479, 0.0271524594117541,
}

// AdaptiveSimpson integrates f over [a, b] with adaptive Simpson's rule to
// absolute tolerance tol. It is used by tests as an independent check of the
// Gauss-Legendre results.
func AdaptiveSimpson(f func(float64) float64, a, b, tol float64) float64 {
	c := (a + b) / 2
	fa, fb, fc := f(a), f(b), f(c)
	whole := (b - a) / 6 * (fa + 4*fc + fb)
	return adaptiveSimpsonAux(f, a, b, tol, whole, fa, fb, fc, 50)
}

func adaptiveSimpsonAux(f func(float64) float64, a, b, tol, whole, fa, fb, fc float64, depth int) float64 {
	c := (a + b) / 2
	d, e := (a+c)/2, (c+b)/2
	fd, fe := f(d), f(e)
	left := (c - a) / 6 * (fa + 4*fd + fc)
	right := (b - c) / 6 * (fc + 4*fe + fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptiveSimpsonAux(f, a, c, tol/2, left, fa, fc, fd, depth-1) +
		adaptiveSimpsonAux(f, c, b, tol/2, right, fc, fb, fe, depth-1)
}
