// Package stats provides the statistical substrate for the barrier study:
// a deterministic PRNG, the normal distribution (density, CDF, quantile),
// general sampling distributions, order statistics, and descriptive
// statistics. Everything is implemented from scratch on top of the standard
// library so that simulation runs are reproducible across platforms.
package stats

import (
	"math"
	"math/bits"
)

// RNG is a deterministic pseudo-random number generator based on
// xoshiro256++ with splitmix64 seeding. It is not safe for concurrent use;
// derive per-goroutine generators with Split.
type RNG struct {
	s [4]uint64
	// cached second normal variate from the polar Box-Muller transform
	haveGauss bool
	gauss     float64
}

// NewRNG returns a generator seeded from the given seed. Distinct seeds
// yield independent-looking streams; the same seed always yields the same
// stream.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from a single 64-bit seed using
// splitmix64, which guarantees a full-entropy state even for small seeds.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	r.haveGauss = false
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value of the xoshiro256++ sequence.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[0]+r.s[3], 23) + r.s[0]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform variate in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) Box-Muller transform, caching the paired variate.
func (r *RNG) NormFloat64() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.haveGauss = true
		return u * f
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle applies a Fisher-Yates shuffle over n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Split derives an independent generator from the current stream. The
// derived stream is decorrelated by reseeding through splitmix64.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}
