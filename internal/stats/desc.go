package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for fewer than two
// samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (p in [0, 100]) of xs using linear
// interpolation between closest ranks. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P50    float64
	P95    float64
	Max    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		P50:    Percentile(xs, 50),
		P95:    Percentile(xs, 95),
		Max:    Max(xs),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g min=%.6g p50=%.6g p95=%.6g max=%.6g",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P95, s.Max)
}

// Ranks returns the fractional ranks of xs (1-based; ties get the average
// rank), as used by the Spearman correlation.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Spearman returns the Spearman rank correlation of paired samples xs, ys.
// It panics if the lengths differ and returns 0 for samples shorter than 2
// or with zero rank variance. The barrier study uses it to quantify how well
// one iteration's arrival order predicts the next (Fig. 5).
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Spearman with mismatched lengths")
	}
	if len(xs) < 2 {
		return 0
	}
	rx, ry := Ranks(xs), Ranks(ys)
	mx, my := Mean(rx), Mean(ry)
	var num, dx, dy float64
	for i := range rx {
		a, b := rx[i]-mx, ry[i]-my
		num += a * b
		dx += a * a
		dy += b * b
	}
	if dx == 0 || dy == 0 {
		return 0
	}
	return num / math.Sqrt(dx*dy)
}

// Histogram is a fixed-width bucketing of a sample.
type Histogram struct {
	Lo, Hi  float64 // histogram range
	Counts  []int   // per-bucket counts
	Under   int     // samples below Lo
	Over    int     // samples at or above Hi
	Samples int     // total samples observed
}

// NewHistogram creates a histogram over [lo, hi) with buckets buckets.
// It panics for a non-positive bucket count or an empty range.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets <= 0 {
		panic("stats: histogram needs at least one bucket")
	}
	if !(hi > lo) {
		panic("stats: histogram range must be non-empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, buckets)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.Samples++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) { // guard the x == Hi-ε rounding edge
			i--
		}
		h.Counts[i]++
	}
}

// BucketWidth returns the width of each bucket.
func (h *Histogram) BucketWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }
