package stats

import (
	"fmt"
	"math"
)

// Distribution is a one-dimensional sampling distribution used for
// processor execution and arrival times.
type Distribution interface {
	// Sample draws one variate using the supplied generator.
	Sample(r *RNG) float64
	// Mean returns the distribution mean.
	Mean() float64
	// StdDev returns the distribution standard deviation.
	StdDev() float64
	// Quantile returns the p-quantile for p in (0, 1).
	Quantile(p float64) float64
	// String describes the distribution for logs and table captions.
	String() string
}

// Normal is the N(Mu, Sigma²) distribution. Sigma must be non-negative;
// Sigma == 0 degenerates to a point mass at Mu, which the barrier study uses
// for the classic simultaneous-arrival assumption.
type Normal struct {
	Mu    float64
	Sigma float64
}

// Sample draws a normal variate.
func (n Normal) Sample(r *RNG) float64 {
	if n.Sigma == 0 {
		return n.Mu
	}
	return n.Mu + n.Sigma*r.NormFloat64()
}

// Mean returns Mu.
func (n Normal) Mean() float64 { return n.Mu }

// StdDev returns Sigma.
func (n Normal) StdDev() float64 { return n.Sigma }

// Quantile returns Mu + Sigma·Φ⁻¹(p).
func (n Normal) Quantile(p float64) float64 {
	if n.Sigma == 0 {
		return n.Mu
	}
	return n.Mu + n.Sigma*NormalQuantile(p)
}

func (n Normal) String() string { return fmt.Sprintf("Normal(µ=%g, σ=%g)", n.Mu, n.Sigma) }

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample draws a uniform variate on [Lo, Hi).
func (u Uniform) Sample(r *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*r.Float64() }

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// StdDev returns (Hi−Lo)/√12.
func (u Uniform) StdDev() float64 { return (u.Hi - u.Lo) / math.Sqrt(12) }

// Quantile returns Lo + p·(Hi−Lo).
func (u Uniform) Quantile(p float64) float64 { return u.Lo + p*(u.Hi-u.Lo) }

func (u Uniform) String() string { return fmt.Sprintf("Uniform[%g, %g)", u.Lo, u.Hi) }

// Exponential is the exponential distribution with the given Rate,
// optionally shifted by Shift. Its long right tail models the asymmetric
// arrival distributions observed under fuzzy barriers (§8 of the paper).
type Exponential struct {
	Rate  float64
	Shift float64
}

// Sample draws an exponential variate.
func (e Exponential) Sample(r *RNG) float64 { return e.Shift + r.ExpFloat64()/e.Rate }

// Mean returns Shift + 1/Rate.
func (e Exponential) Mean() float64 { return e.Shift + 1/e.Rate }

// StdDev returns 1/Rate.
func (e Exponential) StdDev() float64 { return 1 / e.Rate }

// Quantile returns Shift − ln(1−p)/Rate.
func (e Exponential) Quantile(p float64) float64 { return e.Shift - math.Log(1-p)/e.Rate }

func (e Exponential) String() string {
	return fmt.Sprintf("Exponential(rate=%g, shift=%g)", e.Rate, e.Shift)
}

// Degenerate is the point mass at V: every processor arrives at exactly V.
type Degenerate struct {
	V float64
}

// Sample returns V.
func (d Degenerate) Sample(*RNG) float64 { return d.V }

// Mean returns V.
func (d Degenerate) Mean() float64 { return d.V }

// StdDev returns 0.
func (d Degenerate) StdDev() float64 { return 0 }

// Quantile returns V for all p.
func (d Degenerate) Quantile(float64) float64 { return d.V }

func (d Degenerate) String() string { return fmt.Sprintf("Degenerate(%g)", d.V) }

// Shifted wraps a distribution and adds a constant offset to every draw,
// used to give individual processors a systemic head start or handicap.
type Shifted struct {
	Base   Distribution
	Offset float64
}

// Sample draws from Base and adds Offset.
func (s Shifted) Sample(r *RNG) float64 { return s.Base.Sample(r) + s.Offset }

// Mean returns Base.Mean() + Offset.
func (s Shifted) Mean() float64 { return s.Base.Mean() + s.Offset }

// StdDev returns Base.StdDev().
func (s Shifted) StdDev() float64 { return s.Base.StdDev() }

// Quantile returns Base.Quantile(p) + Offset.
func (s Shifted) Quantile(p float64) float64 { return s.Base.Quantile(p) + s.Offset }

func (s Shifted) String() string { return fmt.Sprintf("%v + %g", s.Base, s.Offset) }
