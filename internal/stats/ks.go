package stats

import (
	"math"
	"sort"
)

// KolmogorovSmirnov returns the one-sample Kolmogorov-Smirnov statistic
// D_n = sup_x |F_n(x) − F(x)| of the sample xs against the continuous
// distribution function cdf. The barrier study uses it to verify the
// normality assumptions imported from [13] and [15] on its own generators,
// and tests use it to validate the PRNG's samplers against their target
// distributions. It panics on an empty sample.
func KolmogorovSmirnov(xs []float64, cdf func(float64) float64) float64 {
	n := len(xs)
	if n == 0 {
		panic("stats: KS statistic of empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	d := 0.0
	for i, x := range sorted {
		f := cdf(x)
		// Compare against the empirical CDF just before and at x.
		lo := f - float64(i)/float64(n)
		hi := float64(i+1)/float64(n) - f
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d
}

// KSNormal returns the KS statistic of xs against N(mu, sigma²).
func KSNormal(xs []float64, mu, sigma float64) float64 {
	if sigma <= 0 {
		panic("stats: KSNormal needs positive sigma")
	}
	return KolmogorovSmirnov(xs, func(x float64) float64 {
		return NormalCDF((x - mu) / sigma)
	})
}

// KSCriticalValue returns the asymptotic critical value of the one-sample
// KS statistic at significance level alpha (two-sided): c(α)/√n with
// c(α) = √(−ln(α/2)/2). For α = 0.05 this is the familiar 1.358/√n. It
// panics for alpha outside (0, 1) or n < 1.
func KSCriticalValue(n int, alpha float64) float64 {
	if n < 1 {
		panic("stats: KS critical value needs n ≥ 1")
	}
	if alpha <= 0 || alpha >= 1 {
		panic("stats: KS significance level must be in (0, 1)")
	}
	return math.Sqrt(-math.Log(alpha/2)/2) / math.Sqrt(float64(n))
}
