package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{3, 0.9986501019683699},
		{-6, 9.865876450376946e-10},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 1e-12*math.Max(1, math.Abs(c.want)) && math.Abs(got-c.want) > 1e-15 {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalPDFKnownValues(t *testing.T) {
	if got, want := NormalPDF(0), 1/math.Sqrt(2*math.Pi); math.Abs(got-want) > 1e-15 {
		t.Errorf("NormalPDF(0) = %v, want %v", got, want)
	}
	if got, want := NormalPDF(1), math.Exp(-0.5)/math.Sqrt(2*math.Pi); math.Abs(got-want) > 1e-15 {
		t.Errorf("NormalPDF(1) = %v, want %v", got, want)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.8413447460685429, 1},
		{0.99, 2.3263478740408408},
		{0.999, 3.090232306167813},
		{1e-10, -6.361340902404056},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Error("NormalQuantile(0) should be -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Error("NormalQuantile(1) should be +Inf")
	}
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if !math.IsNaN(NormalQuantile(p)) {
			t.Errorf("NormalQuantile(%v) should be NaN", p)
		}
	}
}

// Property: Φ(Φ⁻¹(p)) == p to high accuracy across (0, 1).
func TestNormalQuantileRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Abs(math.Mod(raw, 1))
		if p == 0 {
			p = 0.37
		}
		x := NormalQuantile(p)
		back := NormalCDF(x)
		return math.Abs(back-p) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the quantile function is symmetric, Φ⁻¹(1−p) = −Φ⁻¹(p).
// Computing 1−p in float64 itself loses up to one ulp of 1, which the steep
// tail amplifies, so extreme tails get a proportionally looser tolerance.
func TestNormalQuantileSymmetry(t *testing.T) {
	for _, p := range []float64{1e-9, 1e-6, 0.01, 0.1, 0.25, 0.49} {
		a, b := NormalQuantile(p), NormalQuantile(1-p)
		tol := 1e-10 + 2e-16/NormalPDF(a)
		if math.Abs(a+b) > tol {
			t.Errorf("asymmetry at p=%v: %v vs %v (tol %v)", p, a, b, tol)
		}
	}
}

// Property: the quantile function is strictly increasing.
func TestNormalQuantileMonotone(t *testing.T) {
	prev := math.Inf(-1)
	for p := 0.001; p < 1; p += 0.001 {
		q := NormalQuantile(p)
		if q <= prev {
			t.Fatalf("quantile not increasing at p=%v: %v <= %v", p, q, prev)
		}
		prev = q
	}
}

func TestNormalDistribution(t *testing.T) {
	d := Normal{Mu: 10, Sigma: 2}
	if d.Mean() != 10 || d.StdDev() != 2 {
		t.Fatal("Normal moments wrong")
	}
	if got := d.Quantile(0.5); math.Abs(got-10) > 1e-12 {
		t.Errorf("Normal median = %v, want 10", got)
	}
	r := NewRNG(5)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = d.Sample(r)
	}
	if m := Mean(xs); math.Abs(m-10) > 0.05 {
		t.Errorf("sample mean %v, want ~10", m)
	}
	if sd := StdDev(xs); math.Abs(sd-2) > 0.05 {
		t.Errorf("sample sd %v, want ~2", sd)
	}
}

func TestNormalSigmaZeroDegenerates(t *testing.T) {
	d := Normal{Mu: 3, Sigma: 0}
	r := NewRNG(1)
	for i := 0; i < 10; i++ {
		if v := d.Sample(r); v != 3 {
			t.Fatalf("σ=0 sample = %v, want 3", v)
		}
	}
	if d.Quantile(0.99) != 3 {
		t.Fatal("σ=0 quantile should be the point mass")
	}
}

func TestUniformDistribution(t *testing.T) {
	d := Uniform{Lo: -1, Hi: 3}
	if got := d.Mean(); got != 1 {
		t.Errorf("Uniform mean = %v, want 1", got)
	}
	if got := d.Quantile(0.25); got != 0 {
		t.Errorf("Uniform q(0.25) = %v, want 0", got)
	}
	r := NewRNG(2)
	for i := 0; i < 10000; i++ {
		v := d.Sample(r)
		if v < -1 || v >= 3 {
			t.Fatalf("Uniform sample %v out of range", v)
		}
	}
}

func TestExponentialDistribution(t *testing.T) {
	d := Exponential{Rate: 2, Shift: 1}
	if got := d.Mean(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Exponential mean = %v, want 1.5", got)
	}
	if got := d.Quantile(0); got != 1 {
		t.Errorf("Exponential q(0) = %v, want shift 1", got)
	}
	r := NewRNG(4)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = d.Sample(r)
		if xs[i] < 1 {
			t.Fatalf("Exponential sample %v below shift", xs[i])
		}
	}
	if m := Mean(xs); math.Abs(m-1.5) > 0.02 {
		t.Errorf("Exponential sample mean %v, want ~1.5", m)
	}
}

func TestDegenerateAndShifted(t *testing.T) {
	d := Degenerate{V: 7}
	if d.Sample(nil) != 7 || d.Mean() != 7 || d.StdDev() != 0 || d.Quantile(0.9) != 7 {
		t.Fatal("Degenerate distribution misbehaves")
	}
	s := Shifted{Base: Degenerate{V: 7}, Offset: -2}
	if s.Sample(nil) != 5 || s.Mean() != 5 || s.Quantile(0.1) != 5 {
		t.Fatal("Shifted distribution misbehaves")
	}
	if s.StdDev() != 0 {
		t.Fatal("Shifted must preserve spread")
	}
}

func TestDistributionStrings(t *testing.T) {
	for _, d := range []Distribution{
		Normal{Mu: 1, Sigma: 2}, Uniform{Lo: 0, Hi: 1},
		Exponential{Rate: 1}, Degenerate{V: 0},
		Shifted{Base: Normal{}, Offset: 1},
	} {
		if d.String() == "" {
			t.Errorf("%T has empty String()", d)
		}
	}
}
