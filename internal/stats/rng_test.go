package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical values in 100 draws", same)
	}
}

func TestRNGZeroSeedNonDegenerate(t *testing.T) {
	r := NewRNG(0)
	zeros := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Fatalf("seed 0 produced %d zero outputs", zeros)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64()
	}
	if m := Mean(xs); math.Abs(m-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", m)
	}
	if sd := StdDev(xs); math.Abs(sd-1/math.Sqrt(12)) > 0.005 {
		t.Errorf("uniform sd = %v, want ~%v", sd, 1/math.Sqrt(12))
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(7) bucket %d count %d outside [9000, 11000]", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	if m := Mean(xs); math.Abs(m) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", m)
	}
	if sd := StdDev(xs); math.Abs(sd-1) > 0.01 {
		t.Errorf("normal sd = %v, want ~1", sd)
	}
	// Empirical CDF at a few points should match Φ.
	for _, x := range []float64{-1.5, 0, 1.5} {
		cnt := 0
		for _, v := range xs {
			if v <= x {
				cnt++
			}
		}
		got := float64(cnt) / n
		want := NormalCDF(x)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("empirical CDF(%v) = %v, want ~%v", x, got, want)
		}
	}
}

func TestExpFloat64Moments(t *testing.T) {
	r := NewRNG(17)
	const n = 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.ExpFloat64()
	}
	if m := Mean(xs); math.Abs(m-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", m)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(19)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(23)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream matched parent %d times", same)
	}
}

func TestSeedResetsGaussCache(t *testing.T) {
	r := NewRNG(29)
	_ = r.NormFloat64() // populate cache
	r.Seed(29)
	a := r.NormFloat64()
	r2 := NewRNG(29)
	b := r2.NormFloat64()
	if a != b {
		t.Fatalf("Seed did not reset cached gaussian: %v != %v", a, b)
	}
}
