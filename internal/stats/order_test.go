package stats

import (
	"math"
	"testing"
)

func TestExpectedMaxExactSmallN(t *testing.T) {
	// Closed forms: E[max of 2] = 1/√π, E[max of 3] = 3/(2√π).
	cases := []struct {
		n    int
		want float64
	}{
		{1, 0},
		{2, 1 / math.Sqrt(math.Pi)},
		{3, 3 / (2 * math.Sqrt(math.Pi))},
	}
	for _, c := range cases {
		if got := ExpectedMaxNormalExact(c.n); math.Abs(got-c.want) > 1e-8 {
			t.Errorf("ExpectedMaxNormalExact(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestExpectedMaxExactMatchesMonteCarlo(t *testing.T) {
	r := NewRNG(99)
	for _, n := range []int{4, 16, 64} {
		const trials = 20000
		sum := 0.0
		for tr := 0; tr < trials; tr++ {
			m := math.Inf(-1)
			for i := 0; i < n; i++ {
				if v := r.NormFloat64(); v > m {
					m = v
				}
			}
			sum += m
		}
		mc := sum / trials
		exact := ExpectedMaxNormalExact(n)
		if math.Abs(mc-exact) > 0.02 {
			t.Errorf("n=%d: exact %v vs Monte Carlo %v", n, exact, mc)
		}
	}
}

func TestAsymptoticApproachesExact(t *testing.T) {
	// The Eq. 5 asymptote should be within a few percent of the exact value
	// for the system sizes the paper studies.
	for _, n := range []int{64, 256, 1024, 4096} {
		exact := ExpectedMaxNormalExact(n)
		asym := ExpectedMaxNormalAsymptotic(n)
		rel := math.Abs(asym-exact) / exact
		if rel > 0.06 {
			t.Errorf("n=%d: asymptote %v vs exact %v (rel err %.3f)", n, asym, exact, rel)
		}
	}
}

func TestExpectedMaxMonotoneInN(t *testing.T) {
	prev := 0.0
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096} {
		v := ExpectedMaxNormalExact(n)
		if v <= prev {
			t.Fatalf("expected max not increasing at n=%d: %v <= %v", n, v, prev)
		}
		prev = v
	}
}

func TestOrderStatisticSymmetry(t *testing.T) {
	// E[X_(k)] = −E[X_(n+1−k)] by symmetry of the normal.
	for _, n := range []int{5, 10, 31} {
		for k := 1; k <= n; k++ {
			a := ExpectedOrderStatisticNormal(n, k)
			b := ExpectedOrderStatisticNormal(n, n+1-k)
			if math.Abs(a+b) > 1e-7 {
				t.Errorf("n=%d k=%d: %v and %v not symmetric", n, k, a, b)
			}
		}
	}
}

func TestOrderStatisticMedianOfOddSampleIsZero(t *testing.T) {
	for _, n := range []int{3, 7, 15} {
		if got := ExpectedOrderStatisticNormal(n, (n+1)/2); math.Abs(got) > 1e-8 {
			t.Errorf("median order statistic of n=%d = %v, want 0", n, got)
		}
	}
}

func TestOrderStatisticMonotoneInK(t *testing.T) {
	n := 20
	prev := math.Inf(-1)
	for k := 1; k <= n; k++ {
		v := ExpectedOrderStatisticNormal(n, k)
		if v <= prev {
			t.Fatalf("order statistics not increasing at k=%d: %v <= %v", k, v, prev)
		}
		prev = v
	}
}

func TestOrderStatisticPanicsOutOfRange(t *testing.T) {
	for _, k := range []int{0, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d did not panic", k)
				}
			}()
			ExpectedOrderStatisticNormal(5, k)
		}()
	}
}

func TestAsymptoticSmallN(t *testing.T) {
	if got := ExpectedMaxNormalAsymptotic(1); got != 0 {
		t.Errorf("asymptote for n=1 = %v, want 0", got)
	}
	if got := ExpectedMaxNormalAsymptotic(0); got != 0 {
		t.Errorf("asymptote for n=0 = %v, want 0", got)
	}
}

func TestAdaptiveSimpsonAgreesWithGaussLegendre(t *testing.T) {
	f := func(x float64) float64 { return NormalPDF(x) }
	gl := gaussLegendre(f, -8, 8, 32)
	as := AdaptiveSimpson(f, -8, 8, 1e-12)
	if math.Abs(gl-1) > 1e-10 {
		t.Errorf("Gauss-Legendre ∫φ = %v, want 1", gl)
	}
	if math.Abs(as-1) > 1e-9 {
		t.Errorf("adaptive Simpson ∫φ = %v, want 1", as)
	}
}
