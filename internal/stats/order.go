package stats

import "math"

// ExpectedMaxNormalAsymptotic returns the paper's Eq. 5 asymptotic
// approximation for the expected maximum of p iid standard normal variates:
//
//	E[M_p] ≈ √(2 ln p) − (ln ln p + ln 4π) / (2 √(2 ln p))
//
// It is accurate to a few percent for p ≥ 16 and is what the analytic model
// uses for the arrival time of the last processor. For p < 2 it returns 0.
func ExpectedMaxNormalAsymptotic(p int) float64 {
	if p < 2 {
		return 0
	}
	lp := math.Log(float64(p))
	s := math.Sqrt(2 * lp)
	return s - (math.Log(lp)+math.Log(4*math.Pi))/(2*s)
}

// ExpectedMaxNormalExact returns the expected maximum of n iid standard
// normal variates computed by numerical integration of
//
//	E[M_n] = ∫ x · n · φ(x) · Φ(x)^(n−1) dx.
//
// It is exact to the precision of the quadrature (~1e-10) and serves as the
// reference implementation the asymptote is validated against.
func ExpectedMaxNormalExact(n int) float64 {
	if n <= 1 {
		return 0
	}
	return ExpectedOrderStatisticNormal(n, n)
}

// ExpectedOrderStatisticNormal returns the expectation of the k-th order
// statistic (1-based, k = n is the maximum) of n iid standard normal
// variates, by numerically integrating its density
//
//	f_(k)(x) = n·C(n−1, k−1)·Φ(x)^(k−1)·(1−Φ(x))^(n−k)·φ(x).
//
// Binomial factors are computed in log space so the routine is stable for
// large n (the study uses n up to 4096). It panics if k is out of range.
func ExpectedOrderStatisticNormal(n, k int) float64 {
	if k < 1 || k > n {
		panic("stats: order statistic index out of range")
	}
	logC := logBinomial(n-1, k-1) + math.Log(float64(n))
	integrand := func(x float64) float64 {
		cdf := NormalCDF(x)
		if cdf <= 0 || cdf >= 1 {
			// Far tails: the log-space density underflows anyway.
			if (cdf <= 0 && k > 1) || (cdf >= 1 && k < n) {
				return 0
			}
		}
		logF := logC + float64(k-1)*safeLog(cdf) + float64(n-k)*safeLog(1-cdf) - 0.5*x*x - 0.5*math.Log(2*math.Pi)
		if logF < -745 { // below exp underflow
			return 0
		}
		return x * math.Exp(logF)
	}
	// The density of any normal order statistic is negligible outside
	// ±(√(2 ln n) + 8).
	bound := math.Sqrt(2*math.Log(float64(n)+1)) + 8
	return gaussLegendre(integrand, -bound, bound, 64)
}

func safeLog(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return math.Log(x)
}

// logBinomial returns ln C(n, k) using log-gamma.
func logBinomial(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x) + 1)
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}
