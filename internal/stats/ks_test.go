package stats

import (
	"math"
	"testing"
)

func TestKSNormalAcceptsNormalSamples(t *testing.T) {
	r := NewRNG(41)
	const n = 5000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 3 + 2*r.NormFloat64()
	}
	d := KSNormal(xs, 3, 2)
	crit := KSCriticalValue(n, 0.01)
	if d > crit {
		t.Errorf("normal sample rejected: D=%v > crit=%v", d, crit)
	}
}

func TestKSNormalRejectsExponentialSamples(t *testing.T) {
	r := NewRNG(43)
	const n = 5000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.ExpFloat64()
	}
	// Match the first two moments (mean 1, sd 1) — shape alone must fail.
	d := KSNormal(xs, 1, 1)
	crit := KSCriticalValue(n, 0.01)
	if d <= crit {
		t.Errorf("exponential sample accepted as normal: D=%v ≤ crit=%v", d, crit)
	}
}

func TestKSUniformSampler(t *testing.T) {
	r := NewRNG(47)
	const n = 5000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64()
	}
	d := KolmogorovSmirnov(xs, func(x float64) float64 {
		switch {
		case x < 0:
			return 0
		case x > 1:
			return 1
		default:
			return x
		}
	})
	if crit := KSCriticalValue(n, 0.01); d > crit {
		t.Errorf("uniform sample rejected: D=%v > crit=%v", d, crit)
	}
}

func TestKSExactSmallSample(t *testing.T) {
	// Sample {0.5} against U(0,1): F_n jumps 0→1 at 0.5, F(0.5)=0.5,
	// so D = 0.5.
	d := KolmogorovSmirnov([]float64{0.5}, func(x float64) float64 { return x })
	if math.Abs(d-0.5) > 1e-12 {
		t.Errorf("D = %v, want 0.5", d)
	}
}

func TestKSCriticalValueKnown(t *testing.T) {
	// The classic α=0.05 constant is 1.3581/√n.
	if got := KSCriticalValue(100, 0.05) * 10; math.Abs(got-1.3581) > 1e-3 {
		t.Errorf("c(0.05) = %v, want ≈1.3581", got)
	}
	// Monotone: stricter α → larger threshold.
	if KSCriticalValue(100, 0.01) <= KSCriticalValue(100, 0.05) {
		t.Error("critical value not monotone in α")
	}
}

func TestKSPanics(t *testing.T) {
	for _, f := range []func(){
		func() { KolmogorovSmirnov(nil, func(float64) float64 { return 0 }) },
		func() { KSNormal([]float64{1}, 0, 0) },
		func() { KSCriticalValue(0, 0.05) },
		func() { KSCriticalValue(10, 0) },
		func() { KSCriticalValue(10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestKSDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	KolmogorovSmirnov(xs, NormalCDF)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("KS mutated its input")
	}
}
