package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("empty/singleton moments should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("Min/Max wrong")
	}
}

func TestMinMaxPanicOnEmpty(t *testing.T) {
	for name, f := range map[string]func([]float64) float64{"Min": Min, "Max": Max} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(nil) did not panic", name)
				}
			}()
			f(nil)
		}()
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty sample should summarize to zero value")
	}
}

func TestRanksWithTies(t *testing.T) {
	ranks := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", ranks, want)
		}
	}
}

func TestSpearmanPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{10, 30, 50, 70, 90}
	if got := Spearman(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Errorf("Spearman increasing = %v, want 1", got)
	}
	rev := []float64{90, 70, 50, 30, 10}
	if got := Spearman(xs, rev); math.Abs(got+1) > 1e-12 {
		t.Errorf("Spearman decreasing = %v, want -1", got)
	}
}

func TestSpearmanUncorrelated(t *testing.T) {
	r := NewRNG(31)
	n := 10000
	xs, ys := make([]float64, n), make([]float64, n)
	for i := range xs {
		xs[i], ys[i] = r.Float64(), r.Float64()
	}
	if got := Spearman(xs, ys); math.Abs(got) > 0.05 {
		t.Errorf("Spearman of independent samples = %v, want ~0", got)
	}
}

func TestSpearmanDegenerate(t *testing.T) {
	if Spearman([]float64{1}, []float64{2}) != 0 {
		t.Error("short sample should give 0")
	}
	if Spearman([]float64{1, 1, 1}, []float64{1, 2, 3}) != 0 {
		t.Error("zero-variance sample should give 0")
	}
}

func TestSpearmanPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	Spearman([]float64{1, 2}, []float64{1})
}

// Property: Spearman is bounded in [-1, 1] and invariant to monotone
// transformations of either argument.
func TestSpearmanProperties(t *testing.T) {
	r := NewRNG(37)
	f := func(seed uint32) bool {
		rr := NewRNG(uint64(seed))
		n := 3 + rr.Intn(50)
		xs, ys := make([]float64, n), make([]float64, n)
		for i := range xs {
			xs[i], ys[i] = rr.NormFloat64(), rr.NormFloat64()
		}
		rho := Spearman(xs, ys)
		if rho < -1-1e-12 || rho > 1+1e-12 {
			return false
		}
		// exp is strictly monotone, so ranks are unchanged.
		exps := make([]float64, n)
		for i, x := range xs {
			exps[i] = math.Exp(x)
		}
		return math.Abs(Spearman(exps, ys)-rho) < 1e-9
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.999, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 || h.Samples != 7 {
		t.Fatalf("bad histogram tails: %+v", h)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Fatalf("bad histogram buckets: %v", h.Counts)
	}
	if h.BucketWidth() != 2 {
		t.Fatalf("bucket width %v, want 2", h.BucketWidth())
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
