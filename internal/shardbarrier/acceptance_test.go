package shardbarrier

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"softbarrier"
	"softbarrier/internal/netbarrier"
)

// TestHierarchicalAcceptance is the tentpole acceptance run: 1 root +
// 4 leaf shards, 256 clients, 500 consecutive AllReduce episodes with an
// arrival-jitter phase in the middle that moves each leaf's measured σ
// enough for its planner to re-plan mid-run. Every episode's fold is
// ledger-verified bit-identical to the sequential fold (integer-valued
// f64 contributions make any grouping exact — see contribution). Run with
// -race to check the whole two-level stack; -short scales the run down.
func TestHierarchicalAcceptance(t *testing.T) {
	leaves, p, episodes := 4, 256, 500
	jitterLo, jitterHi := 150, 280
	if testing.Short() {
		leaves, p, episodes = 2, 32, 120
		jitterLo, jitterHi = 40, 80
	}
	op := softbarrier.OpSumFloat64()
	f := startFleet(t, FleetOptions{
		Leaves: leaves,
		Net: netbarrier.Options{
			Watchdog:    60 * time.Second,
			ReplanEvery: 4,
			Op:          &op,
		},
	})
	addrs := f.LeafAddrs()

	type result struct {
		degrees []int // client-visible degree history (the leaf's re-plans)
		err     error
	}
	results := make([]result, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res := &results[i]
			leaf := leafFor(i, p, leaves)
			c, err := testDial(addrs[leaf])
			if err != nil {
				res.err = err
				return
			}
			if err := c.Join("acceptance", p/leaves); err != nil {
				res.err = err
				c.Close()
				return
			}
			defer c.Leave()
			rng := rand.New(rand.NewSource(int64(i)*7919 + 13))
			last := -1
			for ep := uint64(0); ep < uint64(episodes); ep++ {
				if ep >= uint64(jitterLo) && ep < uint64(jitterHi) {
					// The load-imbalance phase: arrivals spread over ~2ms,
					// inflating every leaf's local σ so the model answers
					// with a wider tree than in the synchronous phases.
					time.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
				}
				if err := c.ArriveReduce(f64bytes(contribution(i, ep))); err != nil {
					res.err = fmt.Errorf("episode %d: %w", ep, err)
					return
				}
				r, err := c.Await()
				if err != nil {
					res.err = fmt.Errorf("episode %d: %w", ep, err)
					return
				}
				if r.Episode != ep {
					res.err = fmt.Errorf("episode %d released as %d", ep, r.Episode)
					return
				}
				// The ledger check: the fleet-wide fold must be the exact
				// (hence sequential-fold-identical) sum.
				if got, want := f64of(r.Result), expectedSum(p, ep); got != want {
					res.err = fmt.Errorf("episode %d: fleet fold %v, sequential fold %v", ep, got, want)
					return
				}
				if r.Degree != last {
					res.degrees = append(res.degrees, r.Degree)
					last = r.Degree
				}
			}
		}(i)
	}
	wg.Wait()

	for i := range results {
		if results[i].err != nil {
			t.Fatalf("client %d: %v", i, results[i].err)
		}
	}
	// Clients of the same leaf share a release stream, so they saw the
	// same degree history; the jitter phase must have re-planned at least
	// one leaf mid-run.
	replanned := false
	perLeaf := p / leaves
	for l := 0; l < leaves; l++ {
		base := results[l*perLeaf].degrees
		t.Logf("leaf %d degree history: %v", l, base)
		for i := l * perLeaf; i < (l+1)*perLeaf; i++ {
			if fmt.Sprint(results[i].degrees) != fmt.Sprint(base) {
				t.Fatalf("client %d saw degree history %v; leaf-mate saw %v", i, results[i].degrees, base)
			}
		}
		if len(base) > 1 {
			replanned = true
		}
	}
	if !replanned {
		t.Error("no leaf re-planned its tree during the jitter phase")
	}
}

// TestHierarchicalRaceSmoke is the CI race gate's hierarchical step: one
// root, two in-process leaves, 64 clients × 200 plain episodes. It is a
// smaller, collective-free cousin of the acceptance run, sized so -race
// finishes quickly while still driving the full leaf→root→leaf release
// path every episode.
func TestHierarchicalRaceSmoke(t *testing.T) {
	const leaves, p, episodes = 2, 64, 200
	f := startFleet(t, FleetOptions{
		Leaves: leaves,
		Net:    netbarrier.Options{Watchdog: 60 * time.Second, ReplanEvery: 8},
	})
	addrs := f.LeafAddrs()

	var wg sync.WaitGroup
	errs := make([]error, p)
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := dialJoin(t, addrs[leafFor(i, p, leaves)], "smoke", p/leaves, -1)
			defer c.Leave()
			for ep := 0; ep < episodes; ep++ {
				r, err := c.Wait()
				if err != nil {
					errs[i] = fmt.Errorf("episode %d: %w", ep, err)
					return
				}
				if r.Episode != uint64(ep) {
					errs[i] = fmt.Errorf("episode %d released as %d", ep, r.Episode)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
}

// BenchmarkHierarchical measures one full fleet episode — every client's
// Arrive combined at its leaf, one aggregated arrival per leaf at the
// root, the release fanned back down — over loopback TCP, at the
// topology points the flat BenchmarkNetBarrier covers with a single
// server, so BENCH_<n>.json carries the flat-vs-sharded episode latency
// comparison at equal client counts.
func BenchmarkHierarchical(b *testing.B) {
	for _, tc := range []struct{ leaves, clients int }{
		{2, 64}, {4, 64}, {4, 256},
	} {
		b.Run(fmt.Sprintf("%dleaves/%dclients", tc.leaves, tc.clients), func(b *testing.B) {
			b.ReportAllocs()
			f := startTCPFleet(b, FleetOptions{
				Leaves: tc.leaves,
				Net:    netbarrier.Options{Watchdog: 60 * time.Second},
			})
			addrs := f.LeafAddrs()
			clients := make([]*netbarrier.Client, tc.clients)
			for i := range clients {
				clients[i] = dialJoin(b, addrs[leafFor(i, tc.clients, tc.leaves)], "bench", tc.clients/tc.leaves, -1)
			}
			defer func() {
				for _, c := range clients {
					c.Leave()
				}
			}()

			var wg sync.WaitGroup
			errs := make([]error, tc.clients)
			b.ResetTimer()
			for i, c := range clients {
				wg.Add(1)
				go func(i int, c *netbarrier.Client) {
					defer wg.Done()
					for ep := 0; ep < b.N; ep++ {
						if _, err := c.Wait(); err != nil {
							errs[i] = err
							return
						}
					}
				}(i, c)
			}
			wg.Wait()
			b.StopTimer()
			for i, err := range errs {
				if err != nil {
					b.Fatalf("client %d: %v", i, err)
				}
			}
		})
	}
}
