package shardbarrier

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"softbarrier"
	"softbarrier/internal/netbarrier"
	"softbarrier/internal/wire"
)

// ErrLeafClosed is the cause sessions receive when their leaf shuts down.
var ErrLeafClosed = errors.New("shardbarrier: leaf closed")

// LeafOptions configures one leaf shard of a hierarchical deployment.
type LeafOptions struct {
	// Net configures the leaf's local netbarrier server — watchdog,
	// elasticity, collective op, planner knobs — exactly as for a
	// standalone barrierd. Net.Upstream is overwritten: wiring the leaf to
	// its root is this package's job.
	Net netbarrier.Options
	// Root is the root barrierd's address (host:port).
	Root string
	// Index is this leaf's default shard id: its slot in the root's
	// deterministic ascending-id fold for sessions that span the whole
	// fleet. Leaves must use distinct indices in [0, Shards).
	Index int
	// Shards is the default session span: how many leaf shards join the
	// root for each session. 0 selects 1 (a fleet of one).
	Shards int
	// SessionSlot, when non-nil, overrides Shards/Index per session: it
	// returns the session's span and this leaf's shard id within it. An id
	// of -1 means the session is not placed on this leaf (consistent-hash
	// placement routed its clients elsewhere); a client that dials the
	// wrong leaf is then refused with a placement error instead of
	// corrupting another shard's slot. Fleet wires this to Ring.Span.
	SessionSlot func(session string) (shards, id int)
	// Transport is the network both sides of the leaf run over: the local
	// listener ListenAndServe binds and the dialer the leaf→root links use.
	// Nil selects Net.Transport, then wire.DefaultTCP — so a fleet on an
	// in-process memnet (or under a chaos wrapper) configures one transport
	// and every hop follows.
	Transport wire.Transport
	// DialTimeout bounds each connection attempt to the root; 0 selects 5s.
	DialTimeout time.Duration
	// DialAttempts is how many times a failed root dial is retried before
	// the session is poisoned with the dial error; 0 selects 3.
	DialAttempts int
	// DialBackoff is the sleep after the first failed attempt, doubling
	// after each subsequent one; 0 selects 100ms.
	DialBackoff time.Duration
	// WriteTimeout bounds each frame write on the root link; 0 selects 10s.
	WriteTimeout time.Duration
}

func (o *LeafOptions) transport() wire.Transport {
	if o.Transport != nil {
		return o.Transport
	}
	if o.Net.Transport != nil {
		return o.Net.Transport
	}
	return wire.DefaultTCP
}

func (o *LeafOptions) dialTimeout() time.Duration {
	if o.DialTimeout > 0 {
		return o.DialTimeout
	}
	return 5 * time.Second
}

func (o *LeafOptions) dialAttempts() int {
	if o.DialAttempts > 0 {
		return o.DialAttempts
	}
	return 3
}

func (o *LeafOptions) dialBackoff() time.Duration {
	if o.DialBackoff > 0 {
		return o.DialBackoff
	}
	return 100 * time.Millisecond
}

func (o *LeafOptions) writeTimeout() time.Duration {
	if o.WriteTimeout > 0 {
		return o.WriteTimeout
	}
	return 10 * time.Second
}

func (o *LeafOptions) slot(session string) (shards, id int) {
	if o.SessionSlot != nil {
		return o.SessionSlot(session)
	}
	shards = o.Shards
	if shards <= 0 {
		shards = 1
	}
	return shards, o.Index
}

// Leaf is one shard of a hierarchical barrierd fleet: a full netbarrier
// server for its local clients, whose sessions forward one aggregated
// arrival per episode to the root and fan the root's fleet-wide release
// back out. It implements netbarrier.Upstream; construct it with NewLeaf,
// which wires itself into the server's options.
type Leaf struct {
	opt LeafOptions
	srv *netbarrier.Server

	mu     sync.Mutex
	links  map[string]*link
	closed bool
}

// NewLeaf returns a leaf serving opt.Net locally and synchronizing
// through the root at opt.Root. Start it with Serve/ListenAndServe, like
// the server it wraps.
func NewLeaf(opt LeafOptions) *Leaf {
	l := &Leaf{opt: opt, links: make(map[string]*link)}
	l.opt.Net.Upstream = l
	if l.opt.Net.Transport == nil {
		l.opt.Net.Transport = l.opt.transport()
	}
	l.srv = netbarrier.NewServer(l.opt.Net)
	return l
}

// Server exposes the leaf's local netbarrier server (for stats, Addr,
// and session inspection).
func (l *Leaf) Server() *netbarrier.Server { return l.srv }

// ListenAndServe listens on addr through the leaf's transport and serves
// local clients until Close.
func (l *Leaf) ListenAndServe(addr string) error {
	ln, err := l.opt.transport().Listen(addr)
	if err != nil {
		return err
	}
	return l.Serve(ln)
}

// Serve accepts local client connections on ln until Close and blocks for
// the duration.
func (l *Leaf) Serve(ln wire.Listener) error { return l.srv.Serve(ln) }

// Close shuts the leaf down: local sessions are poisoned (their causes
// travel both down to local clients and up to the root, so the rest of
// the fleet fails with "leaf closed" rather than a bare disconnect), and
// every root link is torn down.
func (l *Leaf) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	err := l.srv.Close() // poisons live sessions; their ShardClose tears down their links
	l.mu.Lock()
	links := make([]*link, 0, len(l.links))
	for _, lk := range l.links {
		links = append(links, lk)
	}
	l.mu.Unlock()
	for _, lk := range links {
		lk.poison(ErrLeafClosed)
	}
	return err
}

// ShardArrive implements netbarrier.Upstream: it forwards the session's
// combined local arrival to the root over the session's link (dialing and
// shard-joining on first use) and arranges for done to run when the
// root's release — or the fleet's poison cause — comes back.
func (l *Leaf) ShardArrive(session string, episode uint64, localP int, spread, sigma float64, data []byte, done func(netbarrier.ShardOutcome)) {
	lk, err := l.link(session)
	if err != nil {
		done(netbarrier.ShardOutcome{Err: err})
		return
	}
	lk.arrive(localP, spread, sigma, data, done)
}

// ShardClose implements netbarrier.Upstream: the session's link departs
// the root gracefully (nil cause) or forwards the local poison cause so
// the rest of the fleet fails with the original error.
func (l *Leaf) ShardClose(session string, cause error) {
	l.mu.Lock()
	lk := l.links[session]
	l.mu.Unlock()
	if lk == nil {
		return
	}
	if cause != nil {
		lk.poison(cause)
		return
	}
	lk.leave()
}

// link returns the session's root link, establishing it on first use.
// Sessions are serialized at their episode boundaries, so per-session
// calls never race; the once guards only the map entry's handshake.
func (l *Leaf) link(session string) (*link, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrLeafClosed
	}
	lk := l.links[session]
	if lk == nil {
		lk = &link{leaf: l, name: session}
		l.links[session] = lk
	}
	l.mu.Unlock()
	lk.ready.Do(func() { lk.joinErr = lk.dial() })
	if lk.joinErr != nil {
		l.drop(lk)
		return nil, lk.joinErr
	}
	return lk, nil
}

// drop removes a dead link so the session name can re-link later (a new
// session instance under a reused name dials fresh).
func (l *Leaf) drop(lk *link) {
	l.mu.Lock()
	if cur := l.links[lk.name]; cur == lk {
		delete(l.links, lk.name)
	}
	l.mu.Unlock()
}

// link is one session's connection to the root: the leaf side of the
// ShardJoin/ShardArrive/ShardRelease protocol. The session's episode
// serialization — its local cohort cannot begin episode k+1 before the
// release of k has been fanned out — means at most one forwarded arrival
// is ever outstanding, so a single pending-callback slot suffices.
//
// Concurrency: the session's releaser goroutine writes (arrive, leave,
// poison) and the link's reader goroutine completes (release, poison from
// the root); mu guards the write half of fc, the episode counter, and the
// pending slot; the reader goroutine owns the read half exclusively —
// exactly the two-halves split wire.FrameConn is documented for.
type link struct {
	leaf *Leaf
	name string

	ready   sync.Once
	joinErr error

	fc *wire.FrameConn

	mu      sync.Mutex
	episode uint64
	pending func(netbarrier.ShardOutcome)
	closing bool // graceful leave deferred past the in-flight episode
	dead    bool

	resBuf []byte // reader-owned: the fleet result handed to pending
}

// dial connects to the root through the leaf's transport and performs the
// ShardJoin handshake.
func (lk *link) dial() error {
	opt := &lk.leaf.opt
	shards, id := opt.slot(lk.name)
	if id < 0 {
		return fmt.Errorf("shardbarrier: session %q is not placed on this leaf (consistent-hash placement routes it elsewhere)", lk.name)
	}
	conn, err := wire.Redial(opt.transport(), opt.Root, opt.dialTimeout(), opt.dialAttempts(), opt.dialBackoff())
	if err != nil {
		return fmt.Errorf("shardbarrier: session %q cannot reach root: %w", lk.name, err)
	}
	fc := wire.NewFrameConn(conn)
	err = fc.WriteFrameTimeout(netbarrier.Frame{Type: netbarrier.TypeShardJoin, Name: lk.name, P: shards, ID: id}, opt.writeTimeout())
	if err != nil {
		fc.Close()
		return fmt.Errorf("shardbarrier: session %q shard-join write failed: %w", lk.name, err)
	}
	fc.SetReadDeadline(time.Now().Add(opt.dialTimeout() + opt.writeTimeout()))
	resp, err := fc.ReadFrame()
	switch {
	case err != nil:
		fc.Close()
		return fmt.Errorf("shardbarrier: session %q shard-join failed: %w", lk.name, err)
	case resp.Type != netbarrier.TypeJoinResp:
		fc.Close()
		return fmt.Errorf("shardbarrier: session %q shard-join answered with %s", lk.name, netbarrier.FrameName(resp.Type))
	case resp.Err != "":
		fc.Close()
		return fmt.Errorf("shardbarrier: session %q shard-join refused by root: %s", lk.name, resp.Err)
	}
	fc.SetReadDeadline(time.Time{})
	fc.SetWriteDeadline(time.Time{})
	lk.fc = fc
	lk.episode = resp.Episode
	go lk.read()
	return nil
}

// arrive forwards one aggregated arrival. The pending slot is armed
// before the frame is flushed, so a release (or poison) racing back on
// the reader goroutine always finds its callback.
func (lk *link) arrive(localP int, spread, sigma float64, data []byte, done func(netbarrier.ShardOutcome)) {
	lk.mu.Lock()
	if lk.dead {
		lk.mu.Unlock()
		done(netbarrier.ShardOutcome{Err: fmt.Errorf("shardbarrier: session %q root link is down", lk.name)})
		return
	}
	lk.pending = done
	err := lk.writeLocked(netbarrier.Frame{
		Type: netbarrier.TypeShardArrive, Episode: lk.episode,
		P: localP, Spread: spread, Sigma: sigma, Data: data,
	})
	if err != nil {
		lk.pending = nil
		lk.dead = true
		lk.mu.Unlock()
		lk.fc.Close()
		lk.leaf.drop(lk)
		done(netbarrier.ShardOutcome{Err: fmt.Errorf("shardbarrier: session %q lost root link: %w", lk.name, err)})
		return
	}
	lk.mu.Unlock()
}

// read is the link's reader loop: it completes forwarded arrivals with
// the root's releases and converts a root-side poison — or the link
// dying — into the session's poison cause. A failure with no arrival
// outstanding poisons the local session directly (PoisonSession): the
// root died between episodes, and local clients must not hang until the
// next arrival discovers it.
func (lk *link) read() {
	for {
		f, err := lk.fc.ReadFrame()
		if err != nil {
			lk.fail(fmt.Errorf("shardbarrier: session %q root link failed: %w", lk.name, err))
			return
		}
		switch f.Type {
		case netbarrier.TypeShardRelease:
			lk.mu.Lock()
			done := lk.pending
			lk.pending = nil
			lk.episode = f.Episode + 1
			closing := lk.closing
			lk.mu.Unlock()
			if done == nil {
				lk.fail(fmt.Errorf("shardbarrier: session %q: root released episode %d with no arrival outstanding", lk.name, f.Episode))
				return
			}
			out := netbarrier.ShardOutcome{FleetP: f.FleetP, Sigma: f.Sigma}
			if len(f.Data) > 0 {
				lk.resBuf = append(lk.resBuf[:0], f.Data...)
				out.Result = lk.resBuf
			}
			done(out)
			if closing {
				lk.shutdown(netbarrier.Frame{Type: netbarrier.TypeLeave})
				return
			}
		case netbarrier.TypePoison:
			lk.fail(softbarrier.DecodePoisonCause(f.Cause))
			return
		default:
			lk.fail(fmt.Errorf("shardbarrier: session %q: unexpected %s from root", lk.name, netbarrier.FrameName(f.Type)))
			return
		}
	}
}

// fail tears the link down with cause, delivering it through the pending
// callback when an arrival is outstanding and by poisoning the local
// session otherwise. Idempotent.
func (lk *link) fail(cause error) {
	lk.mu.Lock()
	if lk.dead {
		lk.mu.Unlock()
		return
	}
	lk.dead = true
	done := lk.pending
	lk.pending = nil
	lk.mu.Unlock()
	lk.fc.Close()
	lk.leaf.drop(lk)
	if done != nil {
		done(netbarrier.ShardOutcome{Err: cause})
		return
	}
	lk.leaf.srv.PoisonSession(lk.name, cause)
}

// poison hands the local session's cause up to the root (best effort) and
// tears the link down. The root fails the fleet-wide session with the
// original error, identity intact, so every other shard's clients see
// why. Idempotent; safe on a link whose handshake never completed.
func (lk *link) poison(cause error) {
	lk.mu.Lock()
	if lk.dead || lk.fc == nil {
		lk.dead = true
		lk.pending = nil
		lk.mu.Unlock()
		return
	}
	lk.dead = true
	lk.pending = nil // the local session already has its cause
	lk.writeLocked(netbarrier.Frame{Type: netbarrier.TypePoison, Cause: softbarrier.EncodePoisonCause(nil, cause)})
	lk.mu.Unlock()
	lk.fc.Close()
	lk.leaf.drop(lk)
}

// leave departs the root gracefully. With an arrival still outstanding —
// every local client arrived and then left without awaiting — the
// departure is deferred until the in-flight episode's release, keeping
// the root's arrival accounting exact.
func (lk *link) leave() {
	lk.mu.Lock()
	if lk.dead || lk.fc == nil {
		lk.dead = true
		lk.mu.Unlock()
		return
	}
	if lk.pending != nil {
		lk.closing = true
		lk.mu.Unlock()
		return
	}
	lk.dead = true
	lk.writeLocked(netbarrier.Frame{Type: netbarrier.TypeLeave})
	lk.mu.Unlock()
	lk.fc.Close()
	lk.leaf.drop(lk)
}

// shutdown (reader-goroutine only) sends a final frame and tears down,
// for the deferred-leave path.
func (lk *link) shutdown(f netbarrier.Frame) {
	lk.mu.Lock()
	lk.dead = true
	lk.writeLocked(f)
	lk.mu.Unlock()
	lk.fc.Close()
	lk.leaf.drop(lk)
}

// writeLocked sends one frame on the write half under lk.mu, bounded by
// the leaf's write timeout.
func (lk *link) writeLocked(f netbarrier.Frame) error {
	return lk.fc.WriteFrameTimeout(f, lk.leaf.opt.writeTimeout())
}
