package shardbarrier

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"softbarrier"
	"softbarrier/internal/netbarrier"
	"softbarrier/internal/wire/chaos"
	"softbarrier/internal/wire/memnet"
)

// The chaos acceptance run: a hierarchical fleet on a fault-injecting
// transport, a thousand-plus clients arriving in waves of cohorts, and
// three properties that must hold no matter what the chaos schedule does:
//
//  1. No stuck episodes. Every blocking call either completes or returns
//     an error within stuckAfter — a fault may poison a session, but it
//     may never strand a client.
//  2. Every poison cause is delivered: when a member is killed mid-episode
//     its cohort-mates all learn promptly, and directed scenarios check
//     the cause's errors.Is/As identity survives the leaf→root→leaf trip.
//  3. Every AllReduce result that IS delivered is ledger-verified: the
//     folded value equals the sequential sum of the cohort's deterministic
//     contributions — faults may abort an episode, never corrupt one.

const stuckAfter = 30 * time.Second

var errStuck = errors.New("chaos acceptance: call exceeded the stuck deadline")

// await runs f with the stuck detector: exceeding stuckAfter is the one
// unforgivable outcome, reported immediately.
func await(t *testing.T, what string, f func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- f() }()
	select {
	case err := <-done:
		return err
	case <-time.After(stuckAfter):
		t.Errorf("STUCK: %s made no progress for %v", what, stuckAfter)
		return errStuck
	}
}

func u64bytes(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

func TestChaosAcceptanceFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos acceptance is the long fleet run")
	}
	const (
		leaves = 4

		ledgerSlots, ledgerP, ledgerGens, ledgerEpisodes = 16, 8, 5, 4
		churnSlots, churnP, churnGens, churnEpisodes     = 16, 4, 8, 3
	)
	op := softbarrier.OpSumUint64()
	tr := chaos.New(memnet.New(), 0xACCE55, chaos.Config{
		WriteLatency: 50 * time.Microsecond, WriteJitter: 200 * time.Microsecond,
		ReadLatency: 50 * time.Microsecond, ReadJitter: 200 * time.Microsecond,
		ResetProb: 0.002, TruncateProb: 0.002,
		StallProb: 0.005, StallFor: 50 * time.Millisecond,
		PartitionProb: 0.001, PartitionFor: 50 * time.Millisecond,
		SlowLorisProb: 0.005, SlowLorisPace: time.Millisecond, SlowLorisBytes: 8,
	})
	f, err := StartFleet(FleetOptions{
		Leaves:    leaves,
		Transport: tr,
		Bind:      "mem:0",
		Net: netbarrier.Options{
			Watchdog:     2 * time.Second,
			WriteTimeout: 2 * time.Second,
			Op:           &op,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	addrs := f.LeafAddrs()

	var (
		joins, poisons, episodes, ledgerChecks atomic.Int64
		kills, killDeliveries                  atomic.Int64
	)

	// dialJoinRetry absorbs chaos-killed handshakes: a reset JoinReq or a
	// truncated JoinResp just means dial again. A refusal can also be
	// transient — "id already taken" until the server notices the previous
	// incarnation's dead socket — so everything retries within a budget.
	dialJoinRetry := func(addr, session string, p, id int) (*netbarrier.Client, error) {
		deadline := time.Now().Add(8 * time.Second)
		for {
			c, err := netbarrier.DialVia(tr, addr, 2*time.Second)
			if err == nil {
				if err = c.JoinAs(session, p, id); err == nil {
					joins.Add(1)
					return c, nil
				}
				c.Close()
			}
			if time.Now().After(deadline) {
				return nil, err
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// contribution is (global id, episode)-deterministic, so the expected
	// fold is computable without coordination. Wrapping u64 addition is
	// exact under any grouping, so the hierarchical fold must match it
	// bit for bit.
	contribution := func(i int, ep int) uint64 { return uint64(i)*1_000_003 + uint64(ep) + 1 }
	expected := func(p, ep int) uint64 {
		var sum uint64
		for i := 0; i < p; i++ {
			sum += contribution(i, ep)
		}
		return sum
	}

	// runLedger drives one collective cohort generation: join everywhere,
	// AllReduce ledgerEpisodes times, verify each delivered result. A
	// chaos-poisoned generation just ends; a wrong result or a stuck call
	// fails the test.
	runLedger := func(slot, gen int) {
		name := fmt.Sprintf("led-%02d-g%d", slot, gen)
		perLeaf := ledgerP / leaves
		cs := make([]*netbarrier.Client, ledgerP)
		for i := range cs {
			leaf := leafFor(i, ledgerP, leaves)
			c, err := dialJoinRetry(addrs[leaf], name, perLeaf, i-leaf*perLeaf)
			if err != nil {
				// The cohort can't form (chaos ate the joins); abandon the
				// generation. Closing the joined members poisons the
				// session, which is itself a delivery path under test.
				for _, c := range cs[:i] {
					c.Close()
				}
				return
			}
			cs[i] = c
		}
		var wg sync.WaitGroup
		for i, c := range cs {
			wg.Add(1)
			go func(i int, c *netbarrier.Client) {
				defer wg.Done()
				defer c.Close()
				for ep := 0; ep < ledgerEpisodes; ep++ {
					var res []byte
					err := await(t, fmt.Sprintf("%s member %d episode %d", name, i, ep), func() error {
						var err error
						res, err = c.AllReduce(u64bytes(contribution(i, ep)))
						return err
					})
					if err != nil {
						poisons.Add(1)
						return
					}
					episodes.Add(1)
					if got := binary.BigEndian.Uint64(res); got != expected(ledgerP, ep) {
						t.Errorf("%s member %d episode %d: folded %d, ledger says %d",
							name, i, ep, got, expected(ledgerP, ep))
						return
					}
					ledgerChecks.Add(1)
				}
				c.Leave() // graceful: an abrupt Close would poison mates whose releases are in flight
			}(i, c)
		}
		wg.Wait()
	}

	// runChurn drives one plain-barrier cohort generation. Every third
	// generation ends with a mid-episode kill: the victim closes without
	// arriving and each cohort-mate must learn of it — the
	// every-poison-delivered half of the acceptance.
	runChurn := func(slot, gen int) {
		name := fmt.Sprintf("churn-%02d-g%d", slot, gen)
		kill := gen%3 == 0
		cs := make([]*netbarrier.Client, churnP)
		for i := range cs {
			leaf := leafFor(i, churnP, leaves)
			c, err := dialJoinRetry(addrs[leaf], name, churnP/leaves, -1)
			if err != nil {
				for _, c := range cs[:i] {
					c.Close()
				}
				return
			}
			cs[i] = c
		}
		clean := make([]atomic.Bool, churnP)
		var wg sync.WaitGroup
		for i, c := range cs {
			wg.Add(1)
			go func(i int, c *netbarrier.Client) {
				defer wg.Done()
				for ep := 0; ep < churnEpisodes; ep++ {
					err := await(t, fmt.Sprintf("%s member %d episode %d", name, i, ep), func() error {
						_, err := c.Wait()
						return err
					})
					if err != nil {
						poisons.Add(1)
						return
					}
					episodes.Add(1)
				}
				clean[i].Store(true)
			}(i, c)
		}
		wg.Wait()
		allClean := true
		for i := range clean {
			if !clean[i].Load() {
				allClean = false
			}
		}
		if kill && allClean {
			// One more episode: members 1..n wait, member 0 dies unarrived.
			kills.Add(1)
			var peers sync.WaitGroup
			for _, c := range cs[1:] {
				peers.Add(1)
				go func(c *netbarrier.Client) {
					defer peers.Done()
					err := await(t, name+" kill-episode waiter", func() error {
						_, err := c.Wait()
						return err
					})
					if err != nil && err != errStuck {
						killDeliveries.Add(1)
					}
				}(c)
			}
			time.Sleep(5 * time.Millisecond)
			cs[0].Close()
			peers.Wait()
		} else {
			for _, c := range cs {
				c.Leave()
			}
			return
		}
		for _, c := range cs[1:] {
			c.Close()
		}
	}

	var slots sync.WaitGroup
	for s := 0; s < ledgerSlots; s++ {
		slots.Add(1)
		go func(s int) {
			defer slots.Done()
			for g := 0; g < ledgerGens; g++ {
				runLedger(s, g)
			}
		}(s)
	}
	for s := 0; s < churnSlots; s++ {
		slots.Add(1)
		go func(s int) {
			defer slots.Done()
			for g := 0; g < churnGens; g++ {
				runChurn(s, g)
			}
		}(s)
	}
	slots.Wait()

	// Directed identity scenarios on the same chaotic fleet: a chaos fault
	// can poison the session before the directed cause lands, so each
	// scenario retries until its cause is the one observed.

	// errors.Is identity: a member poisons with context.Canceled; the
	// sentinel must come out of every other member's Wait.
	cancelOK := false
	for attempt := 0; attempt < 5 && !cancelOK; attempt++ {
		name := fmt.Sprintf("ident-cancel-%d", attempt)
		cs := make([]*netbarrier.Client, leaves)
		ok := true
		for i := range cs {
			c, err := dialJoinRetry(addrs[i], name, 1, -1)
			if err != nil {
				ok = false
				break
			}
			cs[i] = c
		}
		if !ok {
			for _, c := range cs {
				if c != nil {
					c.Close()
				}
			}
			continue
		}
		// Warmup episode: every leaf's root link must exist before the
		// poison, or the cause has no path up.
		var cold atomic.Bool
		var warmWG sync.WaitGroup
		for _, c := range cs {
			warmWG.Add(1)
			go func(c *netbarrier.Client) {
				defer warmWG.Done()
				if await(t, name+" warmup", func() error { _, err := c.Wait(); return err }) != nil {
					cold.Store(true)
				}
			}(c)
		}
		warmWG.Wait()
		if cold.Load() {
			for _, c := range cs {
				c.Close()
			}
			continue
		}
		errsCh := make(chan error, leaves-1)
		var wg sync.WaitGroup
		for _, c := range cs[1:] {
			wg.Add(1)
			go func(c *netbarrier.Client) {
				defer wg.Done()
				errsCh <- await(t, name+" waiter", func() error {
					_, err := c.Wait()
					return err
				})
			}(c)
		}
		time.Sleep(5 * time.Millisecond)
		cs[0].Poison(context.Canceled)
		wg.Wait()
		close(errsCh)
		got := true
		for err := range errsCh {
			if !errors.Is(err, context.Canceled) {
				got = false
			}
		}
		cancelOK = got
		for _, c := range cs {
			c.Close()
		}
	}
	if !cancelOK {
		t.Error("context.Canceled never crossed the fleet with errors.Is identity intact")
	}

	// errors.As identity: a member that never arrives trips the leaf
	// watchdog; the StallError naming it must come out of the arrived
	// members' Wait, fields intact.
	stallOK := false
	for attempt := 0; attempt < 5 && !stallOK; attempt++ {
		name := fmt.Sprintf("ident-stall-%d", attempt)
		cs := make([]*netbarrier.Client, 3)
		ok := true
		for i := range cs {
			c, err := dialJoinRetry(addrs[0], name, 3, i)
			if err != nil {
				ok = false
				break
			}
			cs[i] = c
		}
		if !ok {
			for _, c := range cs {
				if c != nil {
					c.Close()
				}
			}
			continue
		}
		errsCh := make(chan error, 2)
		var wg sync.WaitGroup
		for _, c := range cs[:2] {
			wg.Add(1)
			go func(c *netbarrier.Client) {
				defer wg.Done()
				errsCh <- await(t, name+" waiter", func() error {
					_, err := c.Wait()
					return err
				})
			}(c)
		}
		wg.Wait() // member 2 never arrives; the 2s watchdog poisons
		close(errsCh)
		got := true
		for err := range errsCh {
			var stall *softbarrier.StallError
			if !errors.As(err, &stall) {
				got = false
				continue
			}
			found := false
			for _, id := range stall.Missing {
				if id == 2 {
					found = true
				}
			}
			if !found {
				t.Errorf("StallError crossed the wire but lost the missing id: %+v", stall)
			}
		}
		stallOK = got
		for _, c := range cs {
			c.Close()
		}
	}
	if !stallOK {
		t.Error("StallError never crossed the fleet with errors.As identity intact")
	}

	t.Logf("chaos acceptance: %d joins, %d episodes (%d ledger-verified), %d poisons delivered, %d/%d kill deliveries",
		joins.Load(), episodes.Load(), ledgerChecks.Load(), poisons.Load(),
		killDeliveries.Load(), kills.Load()*int64(churnP-1))

	if j := joins.Load(); j < 1000 {
		t.Errorf("acceptance ran %d clients; the bar is 1000+", j)
	}
	if ledgerChecks.Load() < 100 {
		t.Errorf("only %d AllReduce results survived to be ledger-verified; chaos config is drowning the fleet", ledgerChecks.Load())
	}
	if want := kills.Load() * int64(churnP-1); killDeliveries.Load() != want {
		t.Errorf("%d of %d kill poisons delivered; every cohort-mate of a killed member must learn of it", killDeliveries.Load(), want)
	}
	if kills.Load() == 0 {
		t.Error("no kill generation completed cleanly; the delivery property went unexercised")
	}
}

// TestChaosFleetQuietSmoke is the cheap always-on twin of the acceptance
// run: a fault-free chaos wrapper (latency only) over a fleet, a handful
// of cohorts, every result ledger-verified. It keeps the chaos-over-fleet
// wiring covered in -short runs where the full acceptance is skipped.
func TestChaosFleetQuietSmoke(t *testing.T) {
	const leaves, p, eps = 2, 4, 5
	op := softbarrier.OpSumUint64()
	tr := chaos.New(memnet.New(), 7, chaos.Config{
		WriteLatency: 20 * time.Microsecond, WriteJitter: 100 * time.Microsecond,
		ReadLatency: 20 * time.Microsecond, ReadJitter: 100 * time.Microsecond,
	})
	f, err := StartFleet(FleetOptions{
		Leaves:    leaves,
		Transport: tr,
		Bind:      "mem:0",
		Net:       netbarrier.Options{Watchdog: 10 * time.Second, Op: &op},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	addrs := f.LeafAddrs()

	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			leaf := leafFor(i, p, leaves)
			c, err := netbarrier.DialVia(tr, addrs[leaf], 5*time.Second)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer c.Leave()
			if err := c.Join("quiet", p/leaves); err != nil {
				t.Errorf("client %d join: %v", i, err)
				return
			}
			for ep := 0; ep < eps; ep++ {
				res, err := c.AllReduce(u64bytes(uint64(i*10 + ep)))
				if err != nil {
					t.Errorf("client %d episode %d: %v", i, ep, err)
					return
				}
				var want uint64
				for j := 0; j < p; j++ {
					want += uint64(j*10 + ep)
				}
				if got := binary.BigEndian.Uint64(res); got != want {
					t.Errorf("client %d episode %d: folded %d, want %d", i, ep, got, want)
				}
			}
		}(i)
	}
	wg.Wait()
	if !strings.HasPrefix(addrs[0], "mem:") {
		t.Fatalf("fleet bound %q; want mem: addresses for the chaos run", addrs[0])
	}
}
