package shardbarrier

import (
	"encoding/binary"
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"softbarrier"
	"softbarrier/internal/netbarrier"
	"softbarrier/internal/wire"
	"softbarrier/internal/wire/memnet"
)

// testNet is the in-process network the protocol-logic tests run on; the
// TCP smoke (TestTCPSmokeHierarchicalEpisodes) keeps one fleet on real
// loopback sockets.
var testNet = memnet.New()

// startFleet launches an in-process fleet on the test memnet, torn down
// with the test.
func startFleet(t testing.TB, opt FleetOptions) *Fleet {
	t.Helper()
	if opt.Transport == nil {
		opt.Transport = testNet
		opt.Bind = "mem:0"
	}
	f, err := StartFleet(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// startTCPFleet is startFleet on real loopback sockets — the production
// transport, for the TCP smoke and the benchmarks.
func startTCPFleet(t testing.TB, opt FleetOptions) *Fleet {
	t.Helper()
	opt.Transport = wire.DefaultTCP
	opt.Bind = "127.0.0.1:0"
	return startFleet(t, opt)
}

// testDial routes an address to the transport that owns it: testNet for
// memnet addresses, TCP otherwise.
func testDial(addr string) (*netbarrier.Client, error) {
	if strings.HasPrefix(addr, "mem:") {
		return netbarrier.DialVia(testNet, addr, 5*time.Second)
	}
	return netbarrier.DialTimeout(addr, 5*time.Second)
}

// dialJoin connects a client to addr and joins, failing the test on error.
func dialJoin(t testing.TB, addr, session string, p, id int) *netbarrier.Client {
	t.Helper()
	c, err := testDial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.JoinAs(session, p, id); err != nil {
		c.Close()
		t.Fatalf("join %s: %v", session, err)
	}
	return c
}

// leafFor assigns client i of p to a leaf, contiguously: ids [0, p/n) on
// leaf 0, the next block on leaf 1, and so on. Contiguous blocks plus
// pinned shard indices are what make the hierarchical fold's grouping
// deterministic.
func leafFor(i, p, leaves int) int { return i * leaves / p }

func f64bytes(v float64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
	return b[:]
}

func f64of(b []byte) float64 { return math.Float64frombits(binary.BigEndian.Uint64(b)) }

// contribution is client i's deterministic episode contribution. The
// values are integer-valued float64s with sums far below 2^53, so float
// addition over them is exact under any grouping — a hierarchical fold
// (per-leaf partial sums folded at the root) must therefore be
// bit-identical to the flat sequential fold, and any discrepancy is a
// protocol bug, not rounding.
func contribution(i int, ep uint64) float64 { return float64(i*1000 + int(ep%7) + 1) }

func expectedSum(p int, ep uint64) float64 {
	sum := 0.0
	for i := 0; i < p; i++ {
		sum += contribution(i, ep)
	}
	return sum
}

// TestRingPlacement checks the consistent-hash ring: determinism, span
// distinctness, coverage, and the consistency property — removing one
// leaf only moves the sessions that leaf owned.
func TestRingPlacement(t *testing.T) {
	leaves := []string{"leaf-a:1", "leaf-b:1", "leaf-c:1", "leaf-d:1"}
	r := NewRing(leaves, 0)
	r2 := NewRing(leaves, 0)

	owned := make(map[int]int)
	for i := 0; i < 400; i++ {
		name := fmt.Sprintf("session-%d", i)
		leaf := r.Leaf(name)
		if leaf != r2.Leaf(name) {
			t.Fatalf("ring placement of %q is not deterministic", name)
		}
		if leaf < 0 || leaf >= len(leaves) {
			t.Fatalf("session %q placed on leaf %d", name, leaf)
		}
		owned[leaf]++
		span := r.Span(name, 3)
		if len(span) != 3 {
			t.Fatalf("Span(%q, 3) = %v", name, span)
		}
		if span[0] != leaf {
			t.Errorf("Span(%q)[0] = %d, Leaf = %d", name, span[0], leaf)
		}
		seen := map[int]bool{}
		for _, l := range span {
			if seen[l] {
				t.Fatalf("Span(%q, 3) repeats a leaf: %v", name, span)
			}
			seen[l] = true
		}
	}
	for i := range leaves {
		if owned[i] == 0 {
			t.Errorf("leaf %d owns no sessions out of 400", i)
		}
	}

	// Consistency: dropping leaf-d moves only leaf-d's sessions.
	shrunk := NewRing(leaves[:3], 0)
	for i := 0; i < 400; i++ {
		name := fmt.Sprintf("session-%d", i)
		if was := r.Leaf(name); was != 3 && shrunk.Leaf(name) != was {
			t.Fatalf("session %q moved from leaf %d to %d when an unrelated leaf left",
				name, was, shrunk.Leaf(name))
		}
	}

	if NewRing(nil, 0).Leaf("x") != -1 || NewRing(nil, 0).Addr("x") != "" {
		t.Error("empty ring should place nothing")
	}
}

// TestHierarchicalEpisodes runs a plain (no collective) session spanning
// two leaves and checks that every client sees the same totally ordered
// episode sequence — the root's release is what serializes the fleet.
func TestHierarchicalEpisodes(t *testing.T) {
	const leaves, p, episodes = 2, 8, 50
	f := startFleet(t, FleetOptions{
		Leaves: leaves,
		Net:    netbarrier.Options{Watchdog: 10 * time.Second},
	})
	addrs := f.LeafAddrs()

	var wg sync.WaitGroup
	errs := make([]error, p)
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			local := p / leaves
			c := dialJoin(t, addrs[leafFor(i, p, leaves)], "episodes", local, -1)
			defer c.Leave()
			for ep := 0; ep < episodes; ep++ {
				r, err := c.Wait()
				if err != nil {
					errs[i] = fmt.Errorf("episode %d: %w", ep, err)
					return
				}
				if r.Episode != uint64(ep) {
					errs[i] = fmt.Errorf("episode %d released as %d", ep, r.Episode)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}

	// The root hosted the fleet session as a shard-kind cohort.
	if st, ok := f.Root.SessionStats("episodes"); ok {
		if !st.Shard {
			t.Error("root session is not shard-kind")
		}
	}
}

// TestHierarchicalAllReduceDifferential is the satellite differential: the
// same cohort, same per-episode contributions, run once through a 2-leaf
// hierarchy and once through a flat single server, must produce
// bit-identical AllReduce results — which both must equal the sequential
// ascending-id fold. sum-f64 is non-commutative in general; the
// integer-valued contributions (see contribution) make every grouping
// exact, so equality is required, not hoped for.
func TestHierarchicalAllReduceDifferential(t *testing.T) {
	const leaves, p, episodes = 2, 8, 30
	op := softbarrier.OpSumFloat64()

	run := func(dial func(i int) *netbarrier.Client) [][]byte {
		results := make([][]byte, episodes) // client 0's view; all clients verify their own
		var wg sync.WaitGroup
		errs := make([]error, p)
		for i := 0; i < p; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c := dial(i)
				defer c.Leave()
				for ep := uint64(0); ep < episodes; ep++ {
					got, err := c.AllReduce(f64bytes(contribution(i, ep)))
					if err != nil {
						errs[i] = fmt.Errorf("episode %d: %w", ep, err)
						return
					}
					if want := expectedSum(p, ep); f64of(got) != want {
						errs[i] = fmt.Errorf("episode %d: folded %v, sequential fold %v", ep, f64of(got), want)
						return
					}
					if i == 0 {
						results[ep] = append([]byte(nil), got...)
					}
				}
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("client %d: %v", i, err)
			}
		}
		return results
	}

	f := startFleet(t, FleetOptions{
		Leaves: leaves,
		Net:    netbarrier.Options{Watchdog: 10 * time.Second, Op: &op},
	})
	addrs := f.LeafAddrs()
	hier := run(func(i int) *netbarrier.Client {
		return dialJoin(t, addrs[leafFor(i, p, leaves)], "diff", p/leaves, -1)
	})

	flatAddr, flatSrv := startFlatServer(t, testNet, "mem:0", netbarrier.Options{Watchdog: 10 * time.Second, Op: &op})
	_ = flatSrv
	flat := run(func(i int) *netbarrier.Client {
		return dialJoin(t, flatAddr, "diff", p, -1)
	})

	for ep := 0; ep < episodes; ep++ {
		if string(hier[ep]) != string(flat[ep]) {
			t.Fatalf("episode %d: hierarchical fold % x != flat fold % x", ep, hier[ep], flat[ep])
		}
	}
}

// startFlatServer runs a standalone netbarrier server for differential
// comparison.
func startFlatServer(t testing.TB, tr wire.Transport, bind string, opt netbarrier.Options) (string, *netbarrier.Server) {
	t.Helper()
	ln, err := tr.Listen(bind)
	if err != nil {
		t.Fatal(err)
	}
	srv := netbarrier.NewServer(opt)
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String(), srv
}

// TestLeafKillPoisonsEveryShard kills one leaf mid-episode — the other
// leaf's aggregated arrival is already at the root — and requires the
// poison cause to reach every client on every shard over the wire: the
// dying leaf's clients get the local cause, and the surviving leaf's
// clients get a cause naming the dead shard.
func TestLeafKillPoisonsEveryShard(t *testing.T) {
	const leaves, perLeaf = 2, 3
	f := startFleet(t, FleetOptions{
		Leaves: leaves,
		Net:    netbarrier.Options{Watchdog: 30 * time.Second},
	})
	addrs := f.LeafAddrs()

	var clients [leaves][]*netbarrier.Client
	for l := 0; l < leaves; l++ {
		for i := 0; i < perLeaf; i++ {
			clients[l] = append(clients[l], dialJoin(t, addrs[l], "kill", perLeaf, -1))
		}
	}
	defer func() {
		for l := range clients {
			for _, c := range clients[l] {
				c.Close()
			}
		}
	}()

	// Warm-up episode: every leaf's root link is established.
	var wg sync.WaitGroup
	for l := range clients {
		for _, c := range clients[l] {
			wg.Add(1)
			go func(c *netbarrier.Client) {
				defer wg.Done()
				if _, err := c.Wait(); err != nil {
					t.Errorf("warmup: %v", err)
				}
			}(c)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal("warmup episode failed; aborting")
	}

	// Mid-episode: leaf 1's whole cohort arrives (its aggregated arrival
	// reaches the root); leaf 0's clients block in Await without arriving.
	errs := make([][]error, leaves)
	for l := range clients {
		errs[l] = make([]error, perLeaf)
		for i, c := range clients[l] {
			wg.Add(1)
			go func(l, i int, c *netbarrier.Client) {
				defer wg.Done()
				var err error
				if l == 1 {
					_, err = c.Wait()
				} else {
					_, err = c.Await()
				}
				errs[l][i] = err
			}(l, i, c)
		}
	}
	time.Sleep(100 * time.Millisecond) // let leaf 1's shard arrival reach the root
	start := time.Now()
	f.Leaves[0].Close()
	wg.Wait()

	for i, err := range errs[0] {
		if err == nil || !strings.Contains(err.Error(), "server closed") {
			t.Errorf("dying leaf's client %d: got %v, want the local close cause", i, err)
		}
	}
	for i, err := range errs[1] {
		if err == nil {
			t.Fatalf("surviving leaf's client %d completed an episode the fleet never finished", i)
		}
		if !strings.Contains(err.Error(), "shard 0 poisoned") {
			t.Errorf("surviving leaf's client %d: cause %v does not name the dead shard", i, err)
		}
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cross-shard poison took %v", d)
	}
}

// TestDeadRootPoisonsLeafSessions closes the root between episodes: the
// leaves' link readers must convert the root's poison into local session
// poisons promptly — clients get a wire-delivered cause, not a hang.
func TestDeadRootPoisonsLeafSessions(t *testing.T) {
	const leaves, perLeaf = 2, 2
	f := startFleet(t, FleetOptions{
		Leaves: leaves,
		Net:    netbarrier.Options{Watchdog: 30 * time.Second},
	})
	addrs := f.LeafAddrs()

	var clients []*netbarrier.Client
	for l := 0; l < leaves; l++ {
		for i := 0; i < perLeaf; i++ {
			clients = append(clients, dialJoin(t, addrs[l], "deadroot", perLeaf, -1))
		}
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	var wg sync.WaitGroup
	errs := make([]error, len(clients))
	start := time.Now()
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *netbarrier.Client) {
			defer wg.Done()
			for ep := 0; ; ep++ {
				if _, err := c.Wait(); err != nil {
					errs[i] = err
					return
				}
				if ep == 0 && i == 0 {
					// After the first fleet episode the links are live;
					// kill the root from one client's goroutine.
					go f.Root.Close()
				}
			}
		}(i, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "server closed") {
			t.Errorf("client %d: got %v, want the root's close cause", i, err)
		}
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Errorf("root death took %v to reach clients", d)
	}
}

// TestRingSpanIsolation runs a span-1 fleet — sessions placed on single
// leaves by the ring — and checks the acceptance property: killing one
// leaf poisons exactly that leaf's sessions, while sessions on the other
// leaf keep completing episodes.
func TestRingSpanIsolation(t *testing.T) {
	const leaves = 2
	f := startFleet(t, FleetOptions{
		Leaves: leaves,
		Span:   1,
		Net:    netbarrier.Options{Watchdog: 30 * time.Second},
	})

	// Probe the ring for one session owned by each leaf.
	session := make([]string, leaves)
	for i := 0; len(session[0]) == 0 || len(session[1]) == 0; i++ {
		name := fmt.Sprintf("iso-%d", i)
		if l := f.Ring().Leaf(name); session[l] == "" {
			session[l] = name
		}
	}

	cs := make([]*netbarrier.Client, leaves)
	for l := 0; l < leaves; l++ {
		cs[l] = dialJoin(t, f.LeafAddr(session[l]), session[l], 1, -1)
		defer cs[l].Close()
		if _, err := cs[l].Wait(); err != nil { // warm-up: link established
			t.Fatalf("leaf %d warmup: %v", l, err)
		}
	}

	f.Leaves[0].Close()
	if _, err := cs[0].Wait(); err == nil || !strings.Contains(err.Error(), "server closed") {
		t.Errorf("dead leaf's session: got %v, want its close cause", err)
	}
	for ep := 0; ep < 5; ep++ {
		if _, err := cs[1].Wait(); err != nil {
			t.Fatalf("surviving leaf's session poisoned by an unrelated leaf death: %v", err)
		}
	}
}

// TestMisroutedClientRefused dials the leaf the ring did NOT pick for a
// span-1 session: the first episode must fail with a placement error
// instead of silently joining the wrong shard slot.
func TestMisroutedClientRefused(t *testing.T) {
	const leaves = 2
	f := startFleet(t, FleetOptions{
		Leaves: leaves,
		Span:   1,
		Net:    netbarrier.Options{Watchdog: 30 * time.Second},
	})
	name := "misroute-probe"
	wrong := f.LeafAddrs()[1-f.Ring().Leaf(name)]
	c := dialJoin(t, wrong, name, 1, -1)
	defer c.Close()
	if _, err := c.Wait(); err == nil || !strings.Contains(err.Error(), "not placed on this leaf") {
		t.Fatalf("misrouted client: got %v, want a placement refusal", err)
	}
}

// TestVersionMismatchRefusedByRoot sends the root a ShardJoin whose
// version byte is from the future and requires the refusal to say so —
// the satellite's fail-fast contract for mixed-revision fleets, checked
// end-to-end over a real socket.
func TestVersionMismatchRefusedByRoot(t *testing.T) {
	addr, _ := startFlatServer(t, wire.DefaultTCP, "127.0.0.1:0", netbarrier.Options{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf, err := netbarrier.AppendFrame(nil, netbarrier.Frame{Type: netbarrier.TypeShardJoin, Name: "v", P: 2, ID: 0})
	if err != nil {
		t.Fatal(err)
	}
	buf[5]++ // the version byte, right after the length prefix and type
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := netbarrier.ReadFrame(conn)
	if err != nil {
		t.Fatalf("no refusal frame: %v", err)
	}
	if resp.Type != netbarrier.TypeJoinResp || !strings.Contains(resp.Err, "version mismatch") {
		t.Fatalf("got %s %q, want a version-mismatch refusal", netbarrier.FrameName(resp.Type), resp.Err)
	}
}

// TestTCPSmokeHierarchicalEpisodes keeps one hierarchical scenario on real
// loopback sockets now that the protocol-logic tests run on memnet: a
// 2-leaf fleet, a handful of fleet-wide episodes, totally ordered.
func TestTCPSmokeHierarchicalEpisodes(t *testing.T) {
	const leaves, p, episodes = 2, 4, 5
	f := startTCPFleet(t, FleetOptions{
		Leaves: leaves,
		Net:    netbarrier.Options{Watchdog: 10 * time.Second},
	})
	addrs := f.LeafAddrs()

	var wg sync.WaitGroup
	errs := make([]error, p)
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := dialJoin(t, addrs[leafFor(i, p, leaves)], "tcp-smoke", p/leaves, -1)
			defer c.Leave()
			for ep := 0; ep < episodes; ep++ {
				r, err := c.Wait()
				if err != nil {
					errs[i] = fmt.Errorf("episode %d: %w", ep, err)
					return
				}
				if r.Episode != uint64(ep) {
					errs[i] = fmt.Errorf("episode %d released as %d", ep, r.Episode)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
}
