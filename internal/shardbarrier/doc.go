// Package shardbarrier scales barrierd past one process: a two-level
// combining hierarchy in which leaf barrierd shards each combine their
// local clients through the ordinary server-side tree, then synchronize —
// and reduce collective payloads — through an inter-shard root speaking
// the wire protocol's shard frames (ShardJoin/ShardArrive/ShardRelease).
//
// The shape mirrors the paper's core argument at a second level: just as
// the in-process tree's degree is chosen from the arrival population's
// size and imbalance, the fleet splits a large population into shards
// whose local trees absorb local imbalance, leaving the root a P-of-shards
// barrier over one aggregated arrival per shard per episode. Each leaf
// forwards its locally folded contribution, local participant count, and
// measured σ; the root folds contributions in ascending shard id (so
// non-commutative collectives stay deterministic fleet-wide), aggregates
// the shards' σ reports into a fleet estimate (P-weighted EWMA), and both
// levels re-plan their trees independently at their own quiescent release
// points.
//
// Leaf sits behind netbarrier.Options.Upstream: a leaf session's episode
// does not complete when its local tree fills — that completion is one
// aggregated arrival of the fleet episode, forwarded over the session's
// root link; the local release fans out only when the root's
// ShardRelease (fleet result, fleet P, fleet σ) comes back. Failure flows
// both ways through the existing poison-cause machinery: a leaf-side
// poison travels up with its cause intact and fails the fleet session,
// and a root-side poison (another shard died, the root shut down) comes
// down the link and poisons the local cohort, so every client on every
// shard learns the original error.
//
// Session placement uses a consistent-hash Ring over the leaf addresses:
// clients derive their leaf from the session name with no coordination,
// and sessions that span a subset of the fleet (FleetOptions.Span) get
// their shard ids from the ring's placement order. Fleet wires a root
// plus N leaves on loopback for tests and single-host deployments;
// `barrierd -role root|leaf` runs the same wiring across machines.
package shardbarrier
