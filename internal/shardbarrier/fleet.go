package shardbarrier

import (
	"fmt"
	"time"

	"softbarrier/internal/netbarrier"
	"softbarrier/internal/wire"
)

// FleetOptions configures StartFleet.
type FleetOptions struct {
	// Leaves is how many leaf shards to start. 0 selects 2.
	Leaves int
	// Span is how many leaves each session spans: 0 (or ≥ Leaves) spans
	// the whole fleet — every leaf joins the root for every session, the
	// all-shards-synchronize shape — while a smaller span places each
	// session on Span ring-consecutive leaves (Ring.Span order assigns the
	// shard ids), isolating unrelated sessions onto disjoint shard sets.
	Span int
	// Net configures every leaf's local server (op, watchdog, planner
	// knobs). The root runs the same options minus Upstream.
	Net netbarrier.Options
	// RootNet, when non-nil, overrides the root server's options.
	RootNet *netbarrier.Options
	// Transport is the network the whole fleet runs over — the root and
	// leaf listeners, and the leaf→root links. Nil selects Net.Transport,
	// then loopback TCP; an in-process fleet (tests, chaos runs) passes a
	// memnet or a chaos wrapper and every hop follows.
	Transport wire.Transport
	// Bind is the listen address pattern for the root and every leaf;
	// empty selects "127.0.0.1:0" (ephemeral loopback ports). A memnet
	// fleet passes "mem:0" so its addresses carry the mem: scheme.
	Bind string
	// DialTimeout/DialAttempts/DialBackoff tune the leaf→root links (see
	// LeafOptions).
	DialTimeout  time.Duration
	DialAttempts int
	DialBackoff  time.Duration
}

func (o *FleetOptions) transport() wire.Transport {
	if o.Transport != nil {
		return o.Transport
	}
	if o.Net.Transport != nil {
		return o.Net.Transport
	}
	return wire.DefaultTCP
}

// Fleet is an in-process hierarchical deployment — one root barrierd and
// N leaf shards on loopback listeners — for tests, benchmarks, and
// single-host scale-out. Production fleets run the same wiring across
// processes via `barrierd -role root` / `-role leaf`.
type Fleet struct {
	Root   *netbarrier.Server
	Leaves []*Leaf

	ring      *Ring
	span      int
	rootAddr  string
	leafAddrs []string
}

// StartFleet launches a root and opt.Leaves leaf shards on ephemeral
// loopback ports, fully wired: leaves know the root, and the fleet's ring
// places sessions across the leaves. Callers route each client to
// LeafAddr(session) (or any leaf, for whole-fleet spans) and must Close
// the fleet when done.
func StartFleet(opt FleetOptions) (*Fleet, error) {
	n := opt.Leaves
	if n <= 0 {
		n = 2
	}
	span := opt.Span
	if span <= 0 || span > n {
		span = n
	}
	rootOpt := opt.Net
	if opt.RootNet != nil {
		rootOpt = *opt.RootNet
	}
	rootOpt.Upstream = nil
	tr := opt.transport()
	bind := opt.Bind
	if bind == "" {
		bind = "127.0.0.1:0"
	}
	f := &Fleet{Root: netbarrier.NewServer(rootOpt), span: span}
	rootLn, err := tr.Listen(bind)
	if err != nil {
		return nil, err
	}
	f.rootAddr = rootLn.Addr().String()
	go f.Root.Serve(rootLn)

	lns := make([]wire.Listener, n)
	f.leafAddrs = make([]string, n)
	for i := range lns {
		ln, err := tr.Listen(bind)
		if err != nil {
			f.Close()
			return nil, err
		}
		lns[i] = ln
		f.leafAddrs[i] = ln.Addr().String()
	}
	f.ring = NewRing(f.leafAddrs, 0)
	for i := 0; i < n; i++ {
		leaf := NewLeaf(LeafOptions{
			Net:          opt.Net,
			Root:         f.rootAddr,
			Index:        i,
			Shards:       span,
			SessionSlot:  f.slotFor(i),
			Transport:    tr,
			DialTimeout:  opt.DialTimeout,
			DialAttempts: opt.DialAttempts,
			DialBackoff:  opt.DialBackoff,
		})
		f.Leaves = append(f.Leaves, leaf)
		go leaf.Serve(lns[i])
	}
	return f, nil
}

// slotFor builds leaf i's SessionSlot: for whole-fleet spans every leaf
// participates with its own index; for partial spans the ring decides
// which leaves host the session, and a participating leaf's shard id is
// its rank in the ring's placement order.
func (f *Fleet) slotFor(i int) func(string) (int, int) {
	if f.span == len(f.leafAddrs) {
		return nil // LeafOptions defaults: span = Shards, id = Index
	}
	return func(session string) (int, int) {
		for rank, leaf := range f.ring.Span(session, f.span) {
			if leaf == i {
				return f.span, rank
			}
		}
		return f.span, -1
	}
}

// RootAddr returns the root's listen address.
func (f *Fleet) RootAddr() string { return f.rootAddr }

// LeafAddrs returns every leaf's listen address, in shard-index order.
func (f *Fleet) LeafAddrs() []string { return append([]string(nil), f.leafAddrs...) }

// LeafAddr returns the address a client of the session should dial: the
// ring's owner for partial spans, and the session's first ring leaf —
// any leaf works, this one just spreads load deterministically — for
// whole-fleet spans.
func (f *Fleet) LeafAddr(session string) string { return f.ring.Addr(session) }

// Ring exposes the fleet's placement ring.
func (f *Fleet) Ring() *Ring { return f.ring }

// Close shuts the fleet down, leaves first (so their sessions poison
// with leaf-side causes rather than root disconnects), then the root.
func (f *Fleet) Close() error {
	var first error
	for _, leaf := range f.Leaves {
		if err := leaf.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := f.Root.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// String describes the fleet topology.
func (f *Fleet) String() string {
	return fmt.Sprintf("fleet{root %s, %d leaves, span %d}", f.rootAddr, len(f.Leaves), f.span)
}
