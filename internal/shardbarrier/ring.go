package shardbarrier

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node count per leaf the fleet helpers use:
// enough points that the largest leaf's share of the session keyspace
// stays within a few percent of 1/n, cheap enough that ring construction
// is microseconds.
const DefaultVnodes = 128

// Ring is a consistent-hash ring over the fleet's leaves, used to place
// sessions: every client of a session — and the leaf slot assignment for
// sessions that span a subset of the fleet — derives the same leaf
// ordering from the session name alone, with no coordination. Adding or
// removing a leaf moves only the sessions whose arc it owned (the classic
// consistent-hashing property), so a fleet resize does not re-shuffle
// every session.
//
// A Ring is immutable after NewRing and safe for concurrent use.
type Ring struct {
	leaves []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	leaf int // index into leaves
}

// NewRing builds a ring over the given leaves (identified by address or
// any stable name), with vnodes virtual points per leaf; vnodes ≤ 0
// selects DefaultVnodes. The leaf slice is copied.
func NewRing(leaves []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{
		leaves: append([]string(nil), leaves...),
		points: make([]ringPoint, 0, len(leaves)*vnodes),
	}
	for i, leaf := range r.leaves {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(leaf + "#" + strconv.Itoa(v)), leaf: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Tie-break on leaf index so the ring order is deterministic even
		// under (astronomically unlikely) hash collisions.
		return r.points[a].leaf < r.points[b].leaf
	})
	return r
}

// Leaves returns the names the ring was built over, in index order.
func (r *Ring) Leaves() []string { return append([]string(nil), r.leaves...) }

// Leaf returns the index of the leaf owning the session: the first point
// at or clockwise of the session name's hash. It returns -1 for an empty
// ring.
func (r *Ring) Leaf(session string) int {
	if len(r.points) == 0 {
		return -1
	}
	return r.points[r.search(session)].leaf
}

// Addr returns the name/address of the leaf owning the session, or "" for
// an empty ring.
func (r *Ring) Addr(session string) string {
	i := r.Leaf(session)
	if i < 0 {
		return ""
	}
	return r.leaves[i]
}

// Span returns the first n distinct leaves clockwise of the session
// name's hash — the shard set of a session that spans n of the fleet's
// leaves, in placement order (a participating leaf's rank in this slice
// is its shard id for the session). n is clamped to the leaf count.
func (r *Ring) Span(session string, n int) []int {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.leaves) {
		n = len(r.leaves)
	}
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for i, start := 0, r.search(session); i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.leaf] {
			seen[p.leaf] = true
			out = append(out, p.leaf)
		}
	}
	return out
}

// search returns the index of the first point at or clockwise of the
// session's hash (wrapping past the top of the hash space).
func (r *Ring) search(session string) int {
	h := ringHash(session)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// ringHash is FNV-64a — deterministic across processes and Go releases,
// both ends of every wire must agree on placement — finished with the
// splitmix64 mixer: FNV diffuses suffix changes poorly, so the vnode
// points of one leaf ("addr#0", "addr#1", …) would otherwise land in
// near-consecutive runs and the arcs would be badly unbalanced.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
