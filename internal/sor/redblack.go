package sor

import (
	"fmt"
	"math"
	"sync"
)

// This file implements true successive over-relaxation with red/black
// ordering and a relaxation factor ω — the classically convergent variant
// of the §7 workload (the paper's measured program is the two-array
// Jacobi-style sweep in grid.go; red/black SOR is the extension a
// production solver would ship). Points are colored by (x+y) parity; all
// red points update in place from black neighbors, a barrier separates the
// half-sweeps, then black points update from the new red values. Within a
// half-sweep every update reads only the other color, so the parallel
// result is bitwise identical to the sequential one.

// OmegaOpt returns the asymptotically optimal over-relaxation factor for
// the 5-point Laplacian on an n×m interior grid:
// ω* = 2 / (1 + √(1−ρ²)), ρ = (cos(π/(n+1)) + cos(π/(m+1)))/2.
func OmegaOpt(n, m int) float64 {
	if n < 1 || m < 1 {
		panic("sor: OmegaOpt needs a non-empty interior")
	}
	rho := (math.Cos(math.Pi/float64(n+1)) + math.Cos(math.Pi/float64(m+1))) / 2
	return 2 / (1 + math.Sqrt(1-rho*rho))
}

// relaxColorRows updates the points of the given color (0 or 1, by (x+y)
// parity) in interior rows [x0, x1) of buffer b, in place, with relaxation
// factor omega.
func (g *Grid) relaxColorRows(b int, color int, omega float64, x0, x1 int) {
	if x0 < 1 {
		x0 = 1
	}
	if x1 > g.NX-1 {
		x1 = g.NX - 1
	}
	u := g.buf[b]
	ny := g.NY
	for x := x0; x < x1; x++ {
		row := x * ny
		y0 := 1 + (x+1+color)%2
		for y := y0; y < ny-1; y += 2 {
			i := row + y
			gs := 0.25 * (u[i-ny] + u[i+ny] + u[i-1] + u[i+1])
			u[i] += omega * (gs - u[i])
		}
	}
}

// SolveSORSeq runs iters red/black SOR sweeps in place on buffer 0 with
// relaxation factor omega (ω = 1 is Gauss-Seidel; OmegaOpt accelerates
// convergence). It panics for ω outside (0, 2), the convergence range.
func (g *Grid) SolveSORSeq(omega float64, iters int) {
	checkOmega(omega)
	for k := 0; k < iters; k++ {
		g.relaxColorRows(0, 0, omega, 1, g.NX-1)
		g.relaxColorRows(0, 1, omega, 1, g.NX-1)
	}
}

// SolveSORPar runs iters red/black SOR sweeps with p goroutines
// partitioned along the x-dimension, synchronized by barrier b after each
// half-sweep (two barrier episodes per iteration). The result is bitwise
// identical to SolveSORSeq.
func (g *Grid) SolveSORPar(p int, omega float64, iters int, b Barrier) {
	checkOmega(omega)
	stripes := Stripes(g.NX-2, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for id := 0; id < p; id++ {
		go func(id int) {
			defer wg.Done()
			for k := 0; k < iters; k++ {
				g.relaxColorRows(0, 0, omega, stripes[id][0], stripes[id][1])
				b.Wait(id)
				g.relaxColorRows(0, 1, omega, stripes[id][0], stripes[id][1])
				b.Wait(id)
			}
		}(id)
	}
	wg.Wait()
}

// SweepsToResidual runs SOR sweeps until Residual(0) ≤ eps and returns the
// sweep count, capped at maxIters (returning maxIters if not converged).
func (g *Grid) SweepsToResidual(omega, eps float64, maxIters int) int {
	checkOmega(omega)
	for k := 0; k < maxIters; k++ {
		if g.Residual(0) <= eps {
			return k
		}
		g.relaxColorRows(0, 0, omega, 1, g.NX-1)
		g.relaxColorRows(0, 1, omega, 1, g.NX-1)
	}
	return maxIters
}

func checkOmega(omega float64) {
	if !(omega > 0 && omega < 2) {
		panic(fmt.Sprintf("sor: relaxation factor %v outside (0, 2)", omega))
	}
}
