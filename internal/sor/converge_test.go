package sor

import (
	"errors"
	"math"
	"testing"

	"softbarrier"
)

// hotGrid builds an n×n grid with a hot upper boundary, the same driving
// condition cmd/sorbench uses.
func hotGrid(n int) *Grid {
	g := NewGrid(n, n)
	for y := 0; y < n; y++ {
		g.SetBoth(0, y, 1)
	}
	return g
}

func TestResidualSumRows(t *testing.T) {
	g := NewGrid(8, 8)
	if s := g.ResidualSumRows(0, 1, 7); s != 0 {
		t.Fatalf("zero grid has residual sum %v", s)
	}
	g = hotGrid(8)
	full := g.ResidualSumRows(0, 1, 7)
	if full <= 0 {
		t.Fatalf("hot boundary gives residual sum %v", full)
	}
	if clipped := g.ResidualSumRows(0, -3, 99); clipped != full {
		t.Fatalf("clipping changed the sum: %v vs %v", clipped, full)
	}
	// Only row 1 feels the hot boundary before any sweep: each of its 6
	// interior points is off by 0.25·1.
	if want := 6 * 0.25 * 0.25; full != want {
		t.Fatalf("initial residual sum %v, want %v", full, want)
	}
	if rows := g.ResidualSumRows(0, 2, 7); rows != 0 {
		t.Fatalf("rows away from the boundary have residual sum %v", rows)
	}
}

func TestSolveSORParUntilMatchesSeq(t *testing.T) {
	const (
		n          = 34
		p          = 4
		eps        = 1e-6
		checkEvery = 5
		maxIters   = 5000
	)
	omega := OmegaOpt(n-2, n-2)
	ref := hotGrid(n)
	seqSweeps, seqRMS := ref.SolveSORSeqUntil(omega, eps, checkEvery, maxIters, p)
	if seqSweeps >= maxIters {
		t.Fatalf("sequential reference did not converge in %d sweeps", maxIters)
	}
	if seqSweeps%checkEvery != 0 {
		t.Fatalf("converged at sweep %d, not a multiple of checkEvery %d", seqSweeps, checkEvery)
	}

	for _, tc := range []struct {
		name string
		b    ConvergeBarrier
	}{
		{"tree-d2", softbarrier.NewCombiningTree(p, 2, softbarrier.WithCollective(softbarrier.OpSumFloat64()))},
		{"mcs-d3", softbarrier.NewMCSTree(p, 3, softbarrier.WithCollective(softbarrier.OpSumFloat64()))},
		{"dynamic-d2", softbarrier.NewDynamic(p, 2, softbarrier.WithCollective(softbarrier.OpSumFloat64()))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := hotGrid(n)
			sweeps, rms, err := g.SolveSORParUntil(p, omega, eps, checkEvery, maxIters, tc.b)
			if err != nil {
				t.Fatal(err)
			}
			if sweeps != seqSweeps {
				t.Fatalf("parallel converged at sweep %d, sequential at %d", sweeps, seqSweeps)
			}
			if math.Float64bits(rms) != math.Float64bits(seqRMS) {
				t.Fatalf("parallel RMS %v not bit-identical to sequential %v", rms, seqRMS)
			}
			if g.Checksum(0) != ref.Checksum(0) {
				t.Fatalf("grids diverged: checksum %v vs %v", g.Checksum(0), ref.Checksum(0))
			}
		})
	}
}

func TestSolveSORParUntilHitsMaxIters(t *testing.T) {
	g := hotGrid(12)
	b := softbarrier.NewCombiningTree(3, 2, softbarrier.WithCollective(softbarrier.OpSumFloat64()))
	sweeps, rms, err := g.SolveSORParUntil(3, 1.0, 0 /* eps: unreachable */, 4, 10, b)
	if err != nil {
		t.Fatal(err)
	}
	if sweeps != 10 || rms <= 0 {
		t.Fatalf("gave up after %d sweeps with RMS %v, want 10 and positive", sweeps, rms)
	}
	// The last check window is clipped: 4+4+2 sweeps, and the sequential
	// cadence matches.
	seqSweeps, seqRMS := hotGrid(12).SolveSORSeqUntil(1.0, 0, 4, 10, 3)
	if seqSweeps != 10 || math.Float64bits(seqRMS) != math.Float64bits(rms) {
		t.Fatalf("sequential gave %d sweeps RMS %v, parallel %d RMS %v", seqSweeps, seqRMS, 10, rms)
	}
}

func TestSolveSORParUntilNeedsCollective(t *testing.T) {
	g := hotGrid(12)
	b := softbarrier.NewCombiningTree(3, 2) // no WithCollective
	_, _, err := g.SolveSORParUntil(3, 1.0, 1e-6, 4, 8, b)
	if !errors.Is(err, softbarrier.ErrNoCollective) {
		t.Fatalf("err = %v, want ErrNoCollective", err)
	}
}
