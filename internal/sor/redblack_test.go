package sor

import (
	"math"
	"testing"
)

// hotBoundaryGrid returns a grid with unit Dirichlet boundary and zero
// interior: a standard convergence benchmark (solution ≡ 1).
func hotBoundaryGrid(n int) *Grid {
	g := NewGrid(n, n)
	for i := 0; i < n; i++ {
		g.SetBoth(i, 0, 1)
		g.SetBoth(i, n-1, 1)
		g.SetBoth(0, i, 1)
		g.SetBoth(n-1, i, 1)
	}
	return g
}

func TestOmegaOpt(t *testing.T) {
	// Known value: for a large square grid ω* → 2; for tiny grids it is
	// modestly above 1 and inside (1, 2).
	for _, n := range []int{4, 16, 64} {
		w := OmegaOpt(n, n)
		if w <= 1 || w >= 2 {
			t.Errorf("ω*(%d) = %v outside (1, 2)", n, w)
		}
	}
	if OmegaOpt(16, 16) <= OmegaOpt(4, 4) {
		t.Error("ω* should grow with grid size")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty interior")
		}
	}()
	OmegaOpt(0, 5)
}

func TestSORFixedPointPreserved(t *testing.T) {
	// A harmonic function is a fixed point of SOR for any ω.
	g := NewGrid(10, 12)
	g.Fill(func(x, y int) float64 { return float64(2*x - 3*y) })
	g.SolveSORSeq(1.5, 5)
	for x := 0; x < g.NX; x++ {
		for y := 0; y < g.NY; y++ {
			if got := g.At(0, x, y); got != float64(2*x-3*y) {
				t.Fatalf("(%d,%d) = %v, want %v", x, y, got, float64(2*x-3*y))
			}
		}
	}
}

func TestSORConvergesToBoundary(t *testing.T) {
	g := hotBoundaryGrid(12)
	g.SolveSORSeq(OmegaOpt(10, 10), 200)
	for x := 1; x < 11; x++ {
		for y := 1; y < 11; y++ {
			if v := g.At(0, x, y); math.Abs(v-1) > 1e-8 {
				t.Fatalf("(%d,%d) = %v, not converged", x, y, v)
			}
		}
	}
}

func TestSORBeatsGaussSeidelBeatsJacobi(t *testing.T) {
	// Sweeps to reach the same residual: over-relaxed SOR < Gauss-Seidel
	// (ω=1); and Gauss-Seidel < Jacobi (counted via SolveSeq sweeps).
	const n, eps = 20, 1e-6
	sorSweeps := hotBoundaryGrid(n).SweepsToResidual(OmegaOpt(n-2, n-2), eps, 10000)
	gsSweeps := hotBoundaryGrid(n).SweepsToResidual(1.0, eps, 10000)
	jacobi := hotBoundaryGrid(n)
	jacobiSweeps := 0
	for ; jacobiSweeps < 10000; jacobiSweeps++ {
		if jacobi.Residual(jacobiSweeps%2) <= eps {
			break
		}
		jacobi.Relax(jacobiSweeps % 2)
	}
	if !(sorSweeps < gsSweeps && gsSweeps < jacobiSweeps) {
		t.Fatalf("sweep counts not ordered: SOR %d, GS %d, Jacobi %d", sorSweeps, gsSweeps, jacobiSweeps)
	}
	// The classic asymptotic: optimal SOR is dramatically faster.
	if sorSweeps*3 > gsSweeps {
		t.Errorf("optimal SOR (%d) should be ≫ faster than Gauss-Seidel (%d)", sorSweeps, gsSweeps)
	}
}

func TestSORParallelMatchesSequential(t *testing.T) {
	mk := func() *Grid {
		g := NewGrid(26, 15)
		g.Fill(func(x, y int) float64 { return float64((x*7 + y*3) % 5) })
		return g
	}
	ref := mk()
	ref.SolveSORSeq(1.7, 30)
	for _, p := range []int{1, 2, 3, 8, 24} {
		g := mk()
		g.SolveSORPar(p, 1.7, 30, NewWaitGroupBarrier(p))
		for x := 0; x < g.NX; x++ {
			for y := 0; y < g.NY; y++ {
				if g.At(0, x, y) != ref.At(0, x, y) {
					t.Fatalf("p=%d: mismatch at (%d,%d)", p, x, y)
				}
			}
		}
	}
}

func TestSORPanicsOnBadOmega(t *testing.T) {
	g := NewGrid(5, 5)
	for _, w := range []float64{0, -1, 2, 2.5} {
		w := w
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ω=%v accepted", w)
				}
			}()
			g.SolveSORSeq(w, 1)
		}()
	}
}

func TestSweepsToResidualCaps(t *testing.T) {
	g := hotBoundaryGrid(16)
	if got := g.SweepsToResidual(1.0, 0, 7); got != 7 {
		t.Fatalf("cap not applied: %d", got)
	}
	// Already converged: zero sweeps.
	flat := NewGrid(5, 5)
	if got := flat.SweepsToResidual(1.0, 1e-12, 10); got != 0 {
		t.Fatalf("converged grid needed %d sweeps", got)
	}
}
