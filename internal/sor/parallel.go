package sor

import "sync"

// Barrier is the synchronization contract the parallel solver needs: Wait
// blocks participant id until all participants of the episode have called
// Wait. Every barrier in the softbarrier root package satisfies it.
type Barrier interface {
	Wait(id int)
}

// WaitGroupBarrier is a trivial reference Barrier built from stdlib
// primitives, used to cross-check the library barriers in tests.
type WaitGroupBarrier struct {
	n    int
	mu   sync.Mutex
	cond *sync.Cond
	cnt  int
	gen  uint64
}

// NewWaitGroupBarrier returns a reference barrier for n participants.
func NewWaitGroupBarrier(n int) *WaitGroupBarrier {
	b := &WaitGroupBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all n participants have arrived.
func (b *WaitGroupBarrier) Wait(int) {
	b.mu.Lock()
	gen := b.gen
	b.cnt++
	if b.cnt == b.n {
		b.cnt = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// SolvePar runs iters relaxation sweeps of g with p goroutines partitioned
// along the x-dimension, synchronized by barrier b after every sweep, and
// returns the index of the buffer holding the final values. The result is
// bitwise identical to SolveSeq(iters) because each element's update reads
// only the previous iteration's buffer.
func (g *Grid) SolvePar(p, iters int, b Barrier) int {
	stripes := Stripes(g.NX-2, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for id := 0; id < p; id++ {
		go func(id int) {
			defer wg.Done()
			src := 0
			for k := 0; k < iters; k++ {
				g.RelaxRows(src, stripes[id][0], stripes[id][1])
				b.Wait(id)
				src = 1 - src
			}
		}(id)
	}
	wg.Wait()
	return iters % 2
}
