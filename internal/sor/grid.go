// Package sor implements the successive-over-relaxation workload of the
// paper's §7 measurements: a two-dimensional relaxation where each element
// is averaged with its four neighbors, performed in two alternating arrays
// and partitioned along the x-dimension across processors.
//
// The package provides three views of the same workload: a sequential
// numeric kernel (the reference), a goroutine-parallel solver driven by a
// caller-supplied barrier (used by the runtime-barrier examples and
// benchmarks), and a KSR1 timing model that turns the workload's
// communication structure into per-iteration execution-time distributions
// for the barrier simulator (the §7 substitution, see DESIGN.md).
package sor

import "fmt"

// Grid is a two-buffer relaxation grid of NX×NY points, including a fixed
// (Dirichlet) boundary of one point on every side. Interior points are
// averaged with their four neighbors from the source buffer into the
// destination buffer.
type Grid struct {
	NX, NY int
	buf    [2][]float64
}

// NewGrid allocates an NX×NY grid (both ≥ 3 so an interior exists), zero
// everywhere.
func NewGrid(nx, ny int) *Grid {
	if nx < 3 || ny < 3 {
		panic("sor: grid needs at least 3 points per dimension")
	}
	g := &Grid{NX: nx, NY: ny}
	g.buf[0] = make([]float64, nx*ny)
	g.buf[1] = make([]float64, nx*ny)
	return g
}

// At returns the value at (x, y) of buffer b.
func (g *Grid) At(b, x, y int) float64 { return g.buf[b][x*g.NY+y] }

// Set writes v at (x, y) of buffer b.
func (g *Grid) Set(b, x, y int, v float64) { g.buf[b][x*g.NY+y] = v }

// SetBoth writes v at (x, y) of both buffers, as boundary initialization
// must.
func (g *Grid) SetBoth(x, y int, v float64) {
	g.Set(0, x, y, v)
	g.Set(1, x, y, v)
}

// Fill sets every point of both buffers to f(x, y).
func (g *Grid) Fill(f func(x, y int) float64) {
	for x := 0; x < g.NX; x++ {
		for y := 0; y < g.NY; y++ {
			g.SetBoth(x, y, f(x, y))
		}
	}
}

// RelaxRows relaxes interior rows [x0, x1) from buffer src into buffer
// 1−src. Rows 0 and NX−1 are boundary and never written; callers passing
// them are clipped.
func (g *Grid) RelaxRows(src, x0, x1 int) {
	if x0 < 1 {
		x0 = 1
	}
	if x1 > g.NX-1 {
		x1 = g.NX - 1
	}
	s, d := g.buf[src], g.buf[1-src]
	ny := g.NY
	for x := x0; x < x1; x++ {
		row := x * ny
		for y := 1; y < ny-1; y++ {
			i := row + y
			d[i] = 0.25 * (s[i-ny] + s[i+ny] + s[i-1] + s[i+1])
		}
	}
}

// Relax performs one full relaxation sweep from buffer src into 1−src.
func (g *Grid) Relax(src int) { g.RelaxRows(src, 1, g.NX-1) }

// SolveSeq runs iters sequential relaxation sweeps starting from buffer 0
// and returns the index of the buffer holding the final values.
func (g *Grid) SolveSeq(iters int) int {
	src := 0
	for k := 0; k < iters; k++ {
		g.Relax(src)
		src = 1 - src
	}
	return src
}

// Residual returns the maximum absolute difference between buffer b and
// one further relaxation sweep of it: 0 means b is a fixed point.
func (g *Grid) Residual(b int) float64 {
	max := 0.0
	s := g.buf[b]
	ny := g.NY
	for x := 1; x < g.NX-1; x++ {
		for y := 1; y < ny-1; y++ {
			i := x*ny + y
			next := 0.25 * (s[i-ny] + s[i+ny] + s[i-1] + s[i+1])
			if d := next - s[i]; d > max {
				max = d
			} else if -d > max {
				max = -d
			}
		}
	}
	return max
}

// Checksum returns the sum of buffer b, a cheap equality probe for
// comparing solver variants.
func (g *Grid) Checksum(b int) float64 {
	sum := 0.0
	for _, v := range g.buf[b] {
		sum += v
	}
	return sum
}

// Stripes partitions n interior rows among p processors into contiguous
// [start, end) ranges (1-based, excluding boundary rows), balanced to
// within one row. It panics if p exceeds n or either is non-positive.
func Stripes(n, p int) [][2]int {
	if p < 1 || n < 1 {
		panic("sor: need positive rows and processors")
	}
	if p > n {
		panic(fmt.Sprintf("sor: %d processors for %d rows", p, n))
	}
	out := make([][2]int, p)
	start := 1
	for i := 0; i < p; i++ {
		share := n / p
		if i < n%p {
			share++
		}
		out[i] = [2]int{start, start + share}
		start += share
	}
	return out
}
