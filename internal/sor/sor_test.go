package sor

import (
	"math"
	"testing"
	"testing/quick"

	"softbarrier/internal/ksr"
	"softbarrier/internal/stats"
)

func TestLinearFunctionIsFixedPoint(t *testing.T) {
	// f(x, y) = x is harmonic: the 4-neighbor average leaves it unchanged,
	// so relaxation must be an exact no-op.
	g := NewGrid(12, 9)
	g.Fill(func(x, y int) float64 { return float64(x) })
	g.Relax(0)
	for x := 0; x < g.NX; x++ {
		for y := 0; y < g.NY; y++ {
			if got := g.At(1, x, y); got != float64(x) {
				t.Fatalf("(%d,%d) = %v after relaxation, want %v", x, y, got, float64(x))
			}
		}
	}
	if r := g.Residual(0); r != 0 {
		t.Fatalf("residual of fixed point = %v", r)
	}
}

func TestRelaxationConvergesToBoundary(t *testing.T) {
	// Dirichlet boundary of 1 everywhere: the interior must converge to 1.
	g := NewGrid(10, 10)
	for x := 0; x < 10; x++ {
		g.SetBoth(x, 0, 1)
		g.SetBoth(x, 9, 1)
	}
	for y := 0; y < 10; y++ {
		g.SetBoth(0, y, 1)
		g.SetBoth(9, y, 1)
	}
	b := g.SolveSeq(2000)
	for x := 1; x < 9; x++ {
		for y := 1; y < 9; y++ {
			if v := g.At(b, x, y); math.Abs(v-1) > 1e-6 {
				t.Fatalf("(%d,%d) = %v, not converged to 1", x, y, v)
			}
		}
	}
}

func TestResidualDecreasesMonotonically(t *testing.T) {
	g := NewGrid(20, 20)
	g.SetBoth(0, 10, 100) // single hot boundary point
	prev := math.Inf(1)
	src := 0
	for k := 0; k < 50; k++ {
		g.Relax(src)
		src = 1 - src
		r := g.Residual(src)
		if r > prev*(1+1e-12) {
			t.Fatalf("residual rose at iteration %d: %v > %v", k, r, prev)
		}
		prev = r
	}
}

func TestGridPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewGrid(2, 5) },
		func() { Stripes(4, 5) },
		func() { Stripes(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestStripesCoverExactly(t *testing.T) {
	f := func(nRaw, pRaw uint8) bool {
		n := int(nRaw%200) + 1
		p := int(pRaw)%n + 1
		s := Stripes(n, p)
		if len(s) != p || s[0][0] != 1 || s[p-1][1] != n+1 {
			return false
		}
		for i := 0; i < p; i++ {
			size := s[i][1] - s[i][0]
			if size < 1 {
				return false
			}
			if i > 0 {
				if s[i][0] != s[i-1][1] {
					return false
				}
				if d := size - (s[i-1][1] - s[i-1][0]); d > 0 {
					return false // earlier stripes get the remainder
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	mk := func() *Grid {
		g := NewGrid(30, 17)
		g.Fill(func(x, y int) float64 { return float64((x*31 + y*17) % 7) })
		return g
	}
	ref := mk()
	refBuf := ref.SolveSeq(25)

	for _, p := range []int{1, 2, 3, 7, 28} {
		g := mk()
		buf := g.SolvePar(p, 25, NewWaitGroupBarrier(p))
		if buf != refBuf {
			t.Fatalf("p=%d: buffer %d, want %d", p, buf, refBuf)
		}
		for x := 0; x < g.NX; x++ {
			for y := 0; y < g.NY; y++ {
				if g.At(buf, x, y) != ref.At(refBuf, x, y) {
					t.Fatalf("p=%d: mismatch at (%d,%d)", p, x, y)
				}
			}
		}
	}
}

func TestWaitGroupBarrierReleasesAll(t *testing.T) {
	const n = 8
	b := NewWaitGroupBarrier(n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(id int) {
			for k := 0; k < 100; k++ {
				b.Wait(id)
			}
			done <- id
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

func TestTimingModelCalibration(t *testing.T) {
	// §7: 56 processors, d_x = 60, d_y = 210 ⇒ execution time ≈ 9.5 ms,
	// σ ≈ 110 µs.
	tm := NewTimingModel(ksr.New56(), 60, 210)
	if m := tm.MeanTime(); math.Abs(m-9.5e-3) > 0.5e-3 {
		t.Errorf("mean iteration time %v, want ≈ 9.5ms", m)
	}
	if s := tm.PredictedSigma(); math.Abs(s-110e-6) > 15e-6 {
		t.Errorf("predicted σ %v, want ≈ 110µs", s)
	}
	if s := tm.MeasuredSigma(300, 1); math.Abs(s-110e-6) > 20e-6 {
		t.Errorf("measured σ %v, want ≈ 110µs", s)
	}
}

func TestTimingSigmaGrowsWithDY(t *testing.T) {
	// Fig. 12: increasing d_y increases the number of communications and
	// with it the standard deviation of execution times.
	m := ksr.New56()
	prev := 0.0
	for _, dy := range []int{30, 60, 120, 210, 480, 960} {
		s := NewTimingModel(m, 60, dy).MeasuredSigma(200, 2)
		if s <= prev {
			t.Fatalf("σ(dy=%d) = %v did not grow past %v", dy, s, prev)
		}
		prev = s
	}
}

func TestTimingCommEvents(t *testing.T) {
	tm := NewTimingModel(ksr.New56(), 60, 210)
	// Paper: 4·⌈d_y/16⌉ communication events per processor.
	if got := tm.CommEvents(); got != 4*14 {
		t.Errorf("comm events %d, want 56", got)
	}
}

func TestTimingMomentsMatchAnalytic(t *testing.T) {
	tm := NewTimingModel(ksr.New56(), 60, 210)
	r := stats.NewRNG(3)
	dst := make([]float64, tm.P())
	var all []float64
	for k := 0; k < 200; k++ {
		tm.Times(k, r, dst)
		all = append(all, dst...)
	}
	if m := stats.Mean(all); math.Abs(m-tm.MeanTime()) > tm.MeanTime()*0.01 {
		t.Errorf("sample mean %v vs analytic %v", m, tm.MeanTime())
	}
	if s := stats.StdDev(all); math.Abs(s-tm.PredictedSigma()) > tm.PredictedSigma()*0.1 {
		t.Errorf("sample σ %v vs analytic %v", s, tm.PredictedSigma())
	}
}

func TestTimingModelWorkloadInterface(t *testing.T) {
	tm := NewTimingModel(ksr.New56(), 60, 210)
	if tm.P() != 56 {
		t.Fatalf("P = %d", tm.P())
	}
	if tm.String() == "" {
		t.Fatal("empty description")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid stripe did not panic")
		}
	}()
	NewTimingModel(ksr.New56(), 0, 10)
}
