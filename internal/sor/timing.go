package sor

import (
	"fmt"
	"math"

	"softbarrier/internal/ksr"
	"softbarrier/internal/stats"
)

// DefaultJitter is the default per-communication contention jitter mean,
// calibrated so that the d_y = 210 configuration of the paper's §7 setup
// reproduces its measured per-iteration standard deviation of ≈110µs:
// σ = jitter·√(4·⌈210/16⌉) ⇒ jitter ≈ 14.7µs.
const DefaultJitter = 14.7e-6

// TimingModel is a workload.Workload producing the per-iteration execution
// times of the SOR program on a KSR machine model: a deterministic compute
// term proportional to the stripe size plus one randomly delayed remote
// transfer per communicated cache sub-line.
//
// Following the paper's own accounting, every processor performs
// 4·⌈d_y/16⌉ communication events per iteration (two neighbor rows in each
// of the two arrays, at sub-line granularity). Each transfer costs the
// intra-ring remote latency plus an exponentially distributed contention
// delay; the exponential's long right tail reflects the asymmetric
// distributions the paper observes under fuzzy barriers (§8). Ring:1
// crossings are not surcharged — the paper's uniform event count implies
// the measured variance was contention-dominated, and a per-processor
// ring:1 surcharge would add a systemic spread the measurements do not
// show.
type TimingModel struct {
	// M is the machine model.
	M ksr.Machine
	// DX is the number of grid rows per processor (60 in §7).
	DX int
	// DY is the grid's y-dimension, which sets the communication volume.
	DY int
	// Jitter is the mean of the exponential per-transfer contention
	// delay; 0 selects DefaultJitter.
	Jitter float64
}

// NewTimingModel builds a timing model, validating its parameters.
func NewTimingModel(m ksr.Machine, dx, dy int) *TimingModel {
	if dx < 1 || dy < 1 {
		panic(fmt.Sprintf("sor: invalid stripe %dx%d", dx, dy))
	}
	return &TimingModel{M: m, DX: dx, DY: dy}
}

// P returns the machine's processor count.
func (t *TimingModel) P() int { return t.M.P() }

// CommEvents returns the number of sub-line transfers per processor per
// iteration, the paper's 4·⌈d_y/16⌉.
func (t *TimingModel) CommEvents() int { return 4 * ksr.SubLines(t.DY) }

// jitter returns the effective jitter mean.
func (t *TimingModel) jitter() float64 {
	if t.Jitter > 0 {
		return t.Jitter
	}
	return DefaultJitter
}

// Times fills dst with one iteration of per-processor execution times.
func (t *TimingModel) Times(_ int, r *stats.RNG, dst []float64) {
	compute := float64(t.DX*t.DY) * t.M.ComputePerElement
	j := t.jitter()
	events := t.CommEvents()
	for i := 0; i < t.P(); i++ {
		w := compute
		for e := 0; e < events; e++ {
			w += t.M.RingAccess + j*r.ExpFloat64()
		}
		dst[i] = w
	}
}

// MeanTime returns the expected per-iteration execution time of a
// processor.
func (t *TimingModel) MeanTime() float64 {
	compute := float64(t.DX*t.DY) * t.M.ComputePerElement
	return compute + float64(t.CommEvents())*(t.M.RingAccess+t.jitter())
}

// PredictedSigma returns the analytic standard deviation of a processor's
// iteration time, √(events)·jitter.
func (t *TimingModel) PredictedSigma() float64 {
	return t.jitter() * math.Sqrt(float64(t.CommEvents()))
}

func (t *TimingModel) String() string {
	return fmt.Sprintf("sor p=%d dx=%d dy=%d jitter=%g", t.P(), t.DX, t.DY, t.jitter())
}

// MeasuredSigma samples iters iterations and returns the mean
// within-iteration standard deviation of processor times, the quantity the
// paper's Fig. 12 reports as the "experimentally determined standard
// deviation".
func (t *TimingModel) MeasuredSigma(iters int, seed uint64) float64 {
	r := stats.NewRNG(seed)
	dst := make([]float64, t.P())
	sum := 0.0
	for k := 0; k < iters; k++ {
		t.Times(k, r, dst)
		sum += stats.StdDev(dst)
	}
	return sum / float64(iters)
}
