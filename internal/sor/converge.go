package sor

import (
	"encoding/binary"
	"math"
	"sync"
)

// This file adds convergence-driven termination to the parallel red/black
// solver. The fixed-iteration solvers answer the paper's timing question;
// a production solver instead asks "is the residual small enough yet?" —
// a question whose answer is a *global* sum every worker needs, i.e. an
// AllReduce. The solver folds per-stripe residual sums through the same
// combining tree that synchronizes the half-sweeps (softbarrier's
// Collective barriers), so the convergence test costs one payload-carrying
// episode instead of a separate reduction phase.
//
// Determinism: the sum-f64 op folds contributions in ascending worker id,
// which is exactly the stripe order the sequential reference uses, so the
// parallel run converges on the same sweep with the bit-identical residual.

// ConvergeBarrier synchronizes half-sweeps and folds every worker's
// 8-byte partial residual into one shared sum. softbarrier's tree,
// dynamic and reconfigurable barriers satisfy it when constructed with
// WithCollective(OpSumFloat64()).
type ConvergeBarrier interface {
	Barrier
	AllReduce(id int, in, out []byte) error
}

// ResidualSumRows returns the sum of squared residuals of buffer b over
// interior rows [x0, x1): for each point, the squared difference between
// its value and one further relaxation of its neighbors. Callers passing
// boundary rows are clipped, as in RelaxRows.
func (g *Grid) ResidualSumRows(b, x0, x1 int) float64 {
	if x0 < 1 {
		x0 = 1
	}
	if x1 > g.NX-1 {
		x1 = g.NX - 1
	}
	s := g.buf[b]
	ny := g.NY
	sum := 0.0
	for x := x0; x < x1; x++ {
		row := x * ny
		for y := 1; y < ny-1; y++ {
			i := row + y
			d := 0.25*(s[i-ny]+s[i+ny]+s[i-1]+s[i+1]) - s[i]
			sum += d * d
		}
	}
	return sum
}

// rmsOf converts a grid-wide squared-residual sum into the root-mean-square
// residual over the interior.
func (g *Grid) rmsOf(sum float64) float64 {
	return math.Sqrt(sum / float64((g.NX-2)*(g.NY-2)))
}

// SolveSORSeqUntil runs red/black SOR sweeps on buffer 0 until the RMS
// residual drops to eps, testing every checkEvery sweeps and giving up at
// maxIters. It returns the sweeps executed and the last RMS residual
// measured. The residual sum is folded stripe by stripe for p workers so
// the float additions associate exactly as SolveSORParUntil's AllReduce
// does: with equal arguments the two return bit-identical residuals and
// identical sweep counts.
func (g *Grid) SolveSORSeqUntil(omega, eps float64, checkEvery, maxIters, p int) (int, float64) {
	checkOmega(omega)
	checkCadence(checkEvery, maxIters)
	stripes := Stripes(g.NX-2, p)
	for k := 0; k < maxIters; {
		n := min(checkEvery, maxIters-k)
		for s := 0; s < n; s++ {
			g.relaxColorRows(0, 0, omega, 1, g.NX-1)
			g.relaxColorRows(0, 1, omega, 1, g.NX-1)
		}
		k += n
		sum := 0.0
		for _, st := range stripes {
			sum += g.ResidualSumRows(0, st[0], st[1])
		}
		if rms := g.rmsOf(sum); rms <= eps || k >= maxIters {
			return k, rms
		}
	}
	return 0, 0 // unreachable: maxIters ≥ 1 forces a return above
}

// SolveSORParUntil is SolveSORSeqUntil with p goroutines: half-sweeps are
// separated by b.Wait as in SolveSORPar, and every checkEvery sweeps each
// worker folds its stripe's squared-residual sum through b.AllReduce.
// Every worker receives the same folded sum (bit-identical — sum-f64
// folds in ascending id order), so all of them agree on the termination
// sweep without any extra coordination. It returns the sweeps executed,
// the final RMS residual, and the first AllReduce error if the barrier
// fails (the grid is left mid-solve in that case).
func (g *Grid) SolveSORParUntil(p int, omega, eps float64, checkEvery, maxIters int, b ConvergeBarrier) (int, float64, error) {
	checkOmega(omega)
	checkCadence(checkEvery, maxIters)
	stripes := Stripes(g.NX-2, p)
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		sweep int
		rms   float64
		fail  error
	)
	wg.Add(p)
	for id := 0; id < p; id++ {
		go func(id int) {
			defer wg.Done()
			var cell [8]byte
			for k := 0; k < maxIters; {
				n := min(checkEvery, maxIters-k)
				for s := 0; s < n; s++ {
					g.relaxColorRows(0, 0, omega, stripes[id][0], stripes[id][1])
					b.Wait(id)
					g.relaxColorRows(0, 1, omega, stripes[id][0], stripes[id][1])
					b.Wait(id)
				}
				k += n
				local := g.ResidualSumRows(0, stripes[id][0], stripes[id][1])
				binary.BigEndian.PutUint64(cell[:], math.Float64bits(local))
				if err := b.AllReduce(id, cell[:], cell[:]); err != nil {
					mu.Lock()
					if fail == nil {
						fail = err
					}
					mu.Unlock()
					return
				}
				sum := math.Float64frombits(binary.BigEndian.Uint64(cell[:]))
				if r := g.rmsOf(sum); r <= eps || k >= maxIters {
					if id == 0 { // every worker computed the same k and r
						mu.Lock()
						sweep, rms = k, r
						mu.Unlock()
					}
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if fail != nil {
		return 0, 0, fail
	}
	return sweep, rms, nil
}

func checkCadence(checkEvery, maxIters int) {
	if checkEvery < 1 || maxIters < 1 {
		panic("sor: convergence checks need positive checkEvery and maxIters")
	}
}
