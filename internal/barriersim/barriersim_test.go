package barriersim

import (
	"math"
	"testing"

	"softbarrier/internal/stats"
	"softbarrier/internal/topology"
	"softbarrier/internal/workload"
)

const tc = DefaultTc

// almostEq compares within a small absolute tolerance scaled to t_c.
func almostEq(a, b float64) bool { return math.Abs(a-b) < tc*1e-9 }

func TestSimultaneousArrivalClassicFullTree(t *testing.T) {
	// §3: with simultaneous arrivals a full classic tree of degree d and L
	// levels has synchronization delay exactly L·d·t_c.
	for _, c := range []struct{ p, d, levels int }{
		{64, 4, 3}, {64, 8, 2}, {256, 4, 4}, {4096, 16, 3},
	} {
		tree := topology.NewClassic(c.p, c.d)
		s := New(tree, Config{})
		er := s.Episode(make([]float64, c.p))
		want := float64(c.levels*c.d) * tc
		if !almostEq(er.SyncDelay, want) {
			t.Errorf("p=%d d=%d: delay %v, want %v", c.p, c.d, er.SyncDelay, want)
		}
		if wantU := float64(c.levels) * tc; !almostEq(er.UpdateDelay, wantU) {
			t.Errorf("p=%d d=%d: update %v, want %v", c.p, c.d, er.UpdateDelay, wantU)
		}
		if !almostEq(er.ContentionDelay, want-float64(c.levels)*tc) {
			t.Errorf("p=%d d=%d: contention %v", c.p, c.d, er.ContentionDelay)
		}
	}
}

func TestFlatBarrierSerializesEveryone(t *testing.T) {
	// A single counter with p simultaneous arrivals takes p·t_c.
	p := 64
	tree := topology.NewClassic(p, p)
	s := New(tree, Config{})
	er := s.Episode(make([]float64, p))
	if !almostEq(er.SyncDelay, float64(p)*tc) {
		t.Errorf("flat delay %v, want %v", er.SyncDelay, float64(p)*tc)
	}
}

func TestWideDistributionRemovesContention(t *testing.T) {
	// With arrivals spread far wider than t_c, the last processor walks an
	// uncontended path: delay ≈ depth·t_c even for a flat tree.
	p := 64
	tree := topology.NewClassic(p, p)
	s := New(tree, Config{})
	arr := make([]float64, p)
	for i := range arr {
		arr[i] = float64(i) * 100 * tc
	}
	er := s.Episode(arr)
	if !almostEq(er.SyncDelay, tc) {
		t.Errorf("uncontended flat delay %v, want %v", er.SyncDelay, tc)
	}
	if er.ContentionDelay > tc*1e-9 {
		t.Errorf("contention %v, want 0", er.ContentionDelay)
	}
}

func TestSingleLateProcessorSeesOnlyUpdateDelay(t *testing.T) {
	// One processor far later than the rest: by the time it arrives every
	// other subtree has drained, so delay = L·t_c exactly (Eq. 7 path).
	tree := topology.NewClassic(256, 4) // 4 levels
	s := New(tree, Config{})
	arr := make([]float64, 256)
	arr[17] = 1000 * tc
	er := s.Episode(arr)
	if !almostEq(er.SyncDelay, 4*tc) {
		t.Errorf("late-processor delay %v, want %v", er.SyncDelay, 4*tc)
	}
}

func TestReleaseAfterLastArrivalAlways(t *testing.T) {
	tree := topology.NewClassic(64, 4)
	s := New(tree, Config{})
	r := stats.NewRNG(1)
	for k := 0; k < 50; k++ {
		arr := workload.SampleArrivals(64, stats.Normal{Sigma: 5 * tc}, r)
		er := s.Episode(arr)
		if er.SyncDelay < 3*tc-tc*1e-9 {
			t.Fatalf("delay %v below update floor", er.SyncDelay)
		}
		if er.Release < er.LastArrival {
			t.Fatalf("release %v before last arrival %v", er.Release, er.LastArrival)
		}
	}
}

func TestNegativeArrivalTimesHandled(t *testing.T) {
	// Arrivals drawn from N(0, σ) are frequently negative; the simulator
	// must shift them internally and report results in the caller's base.
	tree := topology.NewClassic(64, 4)
	s := New(tree, Config{})
	arr := make([]float64, 64)
	for i := range arr {
		arr[i] = -1 + float64(i)*tc/10
	}
	er := s.Episode(arr)
	if er.LastArrival != arr[63] {
		t.Errorf("LastArrival %v, want %v", er.LastArrival, arr[63])
	}
	if er.Release <= er.LastArrival {
		t.Error("release not after last arrival")
	}
}

func TestEpisodeCommsEqualBase(t *testing.T) {
	tree := topology.NewMCS(64, 4)
	s := New(tree, Config{})
	er := s.Episode(make([]float64, 64))
	if er.Comms != s.BaseComms() {
		t.Errorf("static comms %d, want base %d", er.Comms, s.BaseComms())
	}
	// Base = one update per processor + one per non-root counter.
	want := 64 + tree.NumCounters() - 1
	if s.BaseComms() != want {
		t.Errorf("base comms %d, want %d", s.BaseComms(), want)
	}
}

func TestEpisodePanicsOnWrongArity(t *testing.T) {
	s := New(topology.NewClassic(8, 4), Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong arrival count")
		}
	}()
	s.Episode(make([]float64, 7))
}

func TestDeterminism(t *testing.T) {
	run := func() RunResult {
		return RunIID(topology.NewClassic(256, 8), Config{}, stats.Normal{Sigma: 10 * tc}, 20, 42)
	}
	a, b := run(), run()
	if a.MeanSync != b.MeanSync || a.MeanLastDepth != b.MeanLastDepth {
		t.Fatalf("runs differ: %v vs %v", a.MeanSync, b.MeanSync)
	}
}

func TestCallersTreeNotMutated(t *testing.T) {
	tree := topology.NewMCS(64, 4)
	before := tree.FirstCounter(5)
	s := New(tree, Config{Dynamic: true})
	it := workload.NewIterator(
		workload.Systemic{
			Base:    workload.IID{N: 64, Dist: stats.Normal{Sigma: tc}},
			Offsets: workload.LinearOffsets(64, 100*tc),
		}, 1e9, 7)
	s.Run(it, 5, 10)
	if tree.FirstCounter(5) != before {
		t.Fatal("simulator mutated the caller's tree")
	}
	if err := s.Tree().Validate(); err != nil {
		t.Fatalf("simulator tree invalid after swaps: %v", err)
	}
}

func TestDynamicPlacementMovesSystemicallySlowProcToRoot(t *testing.T) {
	// A single systemically slow processor must migrate into the root's
	// local slot and then release the barrier with depth 1.
	p := 64
	tree := topology.NewMCS(p, 4)
	off := make([]float64, p)
	off[13] = 500 * tc // processor 13 is always very late
	s := New(tree, Config{Dynamic: true})
	it := workload.NewIterator(
		workload.Systemic{Base: workload.IID{N: p, Dist: stats.Normal{Sigma: tc / 10}}, Offsets: off},
		1e9, 3)
	rr := s.Run(it, 10, 20)
	if got := s.Tree().Counters[s.Tree().Root].Local; got != 13 {
		t.Fatalf("root local = %d, want 13", got)
	}
	if rr.MeanLastDepth > 1.01 {
		t.Errorf("mean last depth %v, want ≈1", rr.MeanLastDepth)
	}
}

func TestDynamicPlacementReducesDelayUnderSystemicImbalance(t *testing.T) {
	p := 256
	// Reverse the offsets so the systemically slow processors are the
	// low-numbered ones, which start on leaf counters.
	off := workload.LinearOffsets(p, 200*tc)
	for i, j := 0, len(off)-1; i < j; i, j = i+1, j-1 {
		off[i], off[j] = off[j], off[i]
	}
	mkIter := func(seed uint64) *workload.Iterator {
		return workload.NewIterator(
			workload.Systemic{
				Base:    workload.IID{N: p, Dist: stats.Normal{Sigma: tc}},
				Offsets: off,
			}, 1e9, seed)
	}
	static := New(topology.NewMCS(p, 4), Config{}).Run(mkIter(5), 10, 50)
	dynamic := New(topology.NewMCS(p, 4), Config{Dynamic: true}).Run(mkIter(5), 10, 50)
	if dynamic.MeanSync >= static.MeanSync {
		t.Errorf("dynamic %v not faster than static %v", dynamic.MeanSync, static.MeanSync)
	}
	if dynamic.MeanLastDepth >= static.MeanLastDepth {
		t.Errorf("dynamic depth %v not below static %v", dynamic.MeanLastDepth, static.MeanLastDepth)
	}
}

func TestDynamicPlacementUselessAtZeroSlack(t *testing.T) {
	// Fig. 8, slack-0 column: with slack 0 the arrival order is
	// unpredictable, so dynamic placement gives no speedup (ratio ≈ 1).
	p := 256
	mkIter := func() *workload.Iterator {
		return workload.NewIterator(workload.IID{N: p, Dist: stats.Normal{Mu: 100 * tc, Sigma: 12.5 * tc}}, 0, 9)
	}
	static := New(topology.NewMCS(p, 4), Config{}).Run(mkIter(), 10, 60)
	dynamic := New(topology.NewMCS(p, 4), Config{Dynamic: true}).Run(mkIter(), 10, 60)
	ratio := static.MeanSync / dynamic.MeanSync
	if ratio > 1.15 || ratio < 0.8 {
		t.Errorf("slack-0 speedup %v, want ≈1", ratio)
	}
}

func TestDynamicCommOverheadBounded(t *testing.T) {
	// §5.1: the overhead is at most one extra communication per swap and
	// there is at most one swap per counter, so overhead ≤ 1 + 1/(d+1).
	p := 256
	d := 4
	it := workload.NewIterator(workload.IID{N: p, Dist: stats.Normal{Sigma: 12.5 * tc}}, 0, 11)
	rr := New(topology.NewMCS(p, d), Config{Dynamic: true}).Run(it, 5, 50)
	if rr.CommOverhead > 1+1.0/float64(d+1)+1e-9 {
		t.Errorf("comm overhead %v exceeds bound %v", rr.CommOverhead, 1+1.0/float64(d+1))
	}
	if rr.CommOverhead < 1 {
		t.Errorf("comm overhead %v below 1", rr.CommOverhead)
	}
}

func TestStaticRunHasNoSwapsAndUnitOverhead(t *testing.T) {
	it := workload.NewIterator(workload.IID{N: 64, Dist: stats.Normal{Sigma: 5 * tc}}, 0, 13)
	rr := New(topology.NewMCS(64, 4), Config{}).Run(it, 0, 20)
	if rr.MeanSwaps != 0 || rr.CommOverhead != 1 {
		t.Errorf("static run: swaps %v overhead %v", rr.MeanSwaps, rr.CommOverhead)
	}
}

func TestDynamicOnClassicTreeIsNoOp(t *testing.T) {
	// Classic trees have no local slots, so dynamic placement cannot swap.
	it := workload.NewIterator(workload.IID{N: 64, Dist: stats.Normal{Sigma: 5 * tc}}, 1e9, 15)
	rr := New(topology.NewClassic(64, 4), Config{Dynamic: true}).Run(it, 0, 20)
	if rr.MeanSwaps != 0 {
		t.Errorf("classic tree produced %v swaps", rr.MeanSwaps)
	}
}

func TestRingTreeSwapsStayInRing(t *testing.T) {
	rings := []int{28, 28}
	tree := topology.NewRing(rings, 4)
	off := make([]float64, 56)
	off[3] = 500 * tc // slow processor in ring 0
	s := New(tree, Config{Dynamic: true})
	it := workload.NewIterator(
		workload.Systemic{Base: workload.IID{N: 56, Dist: stats.Normal{Sigma: tc / 10}}, Offsets: off},
		1e9, 17)
	s.Run(it, 10, 20)
	if got := s.Tree().RingOf(3); got != 0 {
		t.Fatalf("processor 3 moved to ring %d", got)
	}
	// The merge root belongs to ring 0, so a slow ring-0 processor can
	// reach depth 1.
	if d := s.Tree().Depth(s.Tree().FirstCounter(3)); d != 1 {
		t.Errorf("slow ring-0 processor depth %d, want 1", d)
	}
	if err := s.Tree().Validate(); err != nil {
		t.Fatal(err)
	}

	// A slow ring-1 processor is capped at its ring's subtree root
	// (depth 2): placement never crosses ring boundaries.
	off2 := make([]float64, 56)
	off2[40] = 500 * tc
	s2 := New(topology.NewRing(rings, 4), Config{Dynamic: true})
	it2 := workload.NewIterator(
		workload.Systemic{Base: workload.IID{N: 56, Dist: stats.Normal{Sigma: tc / 10}}, Offsets: off2},
		1e9, 18)
	s2.Run(it2, 10, 20)
	if got := s2.Tree().RingOf(40); got != 1 {
		t.Fatalf("processor 40 moved to ring %d", got)
	}
	if d := s2.Tree().Depth(s2.Tree().FirstCounter(40)); d != 2 {
		t.Errorf("slow ring-1 processor depth %d, want 2", d)
	}
}

func TestVictimPaysPenaltyNextEpisode(t *testing.T) {
	p := 8
	tree := topology.NewMCS(p, 4)
	s := New(tree, Config{Dynamic: true, CommCost: 5 * tc})
	// Episode 1: proc 0 (a leaf processor) very late -> becomes a victor,
	// swaps toward the root.
	arr := make([]float64, p)
	arr[0] = 100 * tc
	er := s.Episode(arr)
	if er.Swaps == 0 {
		t.Fatal("expected at least one swap")
	}
	// Episode 2: a victim consumes its penalty -> extra comms counted.
	er2 := s.Episode(make([]float64, p))
	if er2.Comms <= s.BaseComms() {
		t.Errorf("episode after swap has comms %d, want > base %d", er2.Comms, s.BaseComms())
	}
}

func TestRunResultAggregates(t *testing.T) {
	it := workload.NewIterator(workload.IID{N: 64, Dist: stats.Normal{Mu: 50 * tc, Sigma: 2 * tc}}, 0, 19)
	rr := New(topology.NewClassic(64, 4), Config{}).Run(it, 2, 25)
	if rr.Episodes != 25 || len(rr.SyncDelays) != 25 {
		t.Fatalf("episodes %d, delays %d", rr.Episodes, len(rr.SyncDelays))
	}
	if m := stats.Mean(rr.SyncDelays); !almostEq(m, rr.MeanSync) {
		t.Errorf("MeanSync %v vs recomputed %v", rr.MeanSync, m)
	}
	if rr.MeanSync <= 0 || rr.MeanLastDepth < 1 {
		t.Errorf("implausible aggregates: %+v", rr)
	}
	if math.Abs(rr.MeanSync-rr.MeanUpdate-rr.MeanContention) > tc*1e-6 {
		t.Error("delay components do not sum")
	}
}

func TestRunPanicsOnZeroEpisodes(t *testing.T) {
	it := workload.NewIterator(workload.IID{N: 4, Dist: stats.Degenerate{V: 1}}, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(topology.NewClassic(4, 2), Config{}).Run(it, 0, 0)
}

func TestConfigDefaults(t *testing.T) {
	s := New(topology.NewClassic(4, 2), Config{})
	if s.Tc() != DefaultTc {
		t.Errorf("default tc %v", s.Tc())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative tc did not panic")
		}
	}()
	New(topology.NewClassic(4, 2), Config{Tc: -1})
}

func TestLockDegradationInflatesContention(t *testing.T) {
	// With simultaneous arrivals, a degrading lock must strictly inflate
	// the delay of any contended tree, and leave an uncontended (spread)
	// episode untouched.
	p := 64
	tree := topology.NewClassic(p, 8)
	ideal := New(tree, Config{}).Episode(make([]float64, p))
	degraded := New(tree, Config{LockDegradation: 1}).Episode(make([]float64, p))
	if degraded.SyncDelay <= ideal.SyncDelay {
		t.Errorf("degraded delay %v not above ideal %v", degraded.SyncDelay, ideal.SyncDelay)
	}

	spread := make([]float64, p)
	for i := range spread {
		spread[i] = float64(i) * 100 * tc
	}
	a := New(tree, Config{}).Episode(spread)
	b := New(tree, Config{LockDegradation: 1}).Episode(spread)
	if a.SyncDelay != b.SyncDelay {
		t.Errorf("uncontended episode changed under degradation: %v vs %v", a.SyncDelay, b.SyncDelay)
	}
}

func TestLockDegradationShiftsOptimumNarrower(t *testing.T) {
	// At σ=0 the ideal-lock optimum is degree 4 (tied with 2); under heavy
	// degradation fewer waiters per counter win: degree 2.
	best, _, _ := OptimalDegree(64, topology.NewClassic, Config{LockDegradation: 1}, stats.Degenerate{}, 1, 1)
	if best.Degree != 2 {
		t.Errorf("degraded-lock optimum %d at σ=0, want 2", best.Degree)
	}
}

func TestNegativeLockDegradationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(topology.NewClassic(4, 2), Config{LockDegradation: -1})
}
