package barriersim

import (
	"fmt"
	"sort"

	"softbarrier/internal/stats"
	"softbarrier/internal/sweep"
	"softbarrier/internal/topology"
)

// DegreeCandidates returns the tree degrees worth trying for p processors:
// every power of two from 2 up to p, plus p itself (the flat single-counter
// barrier) when p is not a power of two. This matches the degree grid of
// the paper's exhaustive search.
func DegreeCandidates(p int) []int {
	var ds []int
	for d := 2; d < p; d *= 2 {
		ds = append(ds, d)
	}
	ds = append(ds, p) // flat barrier
	return ds
}

// TreeBuilder constructs a tree for p processors and degree d. Use
// topology.NewClassic or topology.NewMCS.
type TreeBuilder func(p, d int) *topology.Tree

// DegreeResult is the outcome of simulating one candidate degree.
type DegreeResult struct {
	Degree   int
	MeanSync float64
	Levels   int
}

// DegreeSweep simulates every candidate degree with identical arrival
// streams (common random numbers, so degree comparisons are paired) and
// returns the per-degree results sorted by degree. Degrees run
// sequentially; use DegreeSweepOn to fan them out over an engine.
func DegreeSweep(p int, build TreeBuilder, cfg Config, dist stats.Distribution, episodes int, seed uint64) []DegreeResult {
	return DegreeSweepOn(nil, p, build, cfg, dist, episodes, seed)
}

// DegreeSweepOn is DegreeSweep running on the given sweep engine: each
// candidate degree is one point, executed in parallel up to the engine's
// worker bound and cached under the point's full configuration. Every
// degree deliberately reuses the caller's seed — not the engine's derived
// per-point seed — so that degree comparisons stay paired (common random
// numbers); results are identical for every worker count and identical to
// DegreeSweep.
func DegreeSweepOn(eng *sweep.Engine, p int, build TreeBuilder, cfg Config, dist stats.Distribution, episodes int, seed uint64) []DegreeResult {
	ds := DegreeCandidates(p)
	trees := make([]*topology.Tree, len(ds))
	keys := make([]string, len(ds))
	for i, d := range ds {
		trees[i] = build(p, d)
		keys[i] = fmt.Sprintf("p=%d d=%d kind=%s cfg=%+v dist=%v episodes=%d",
			p, d, trees[i].Kind, cfg, dist, episodes)
	}
	out := sweep.Run(eng, sweep.Spec{Name: "degree-sweep", Keys: keys, BaseSeed: seed},
		func(i int, _ uint64) DegreeResult {
			rr := RunIID(trees[i], cfg, dist, episodes, seed)
			return DegreeResult{Degree: ds[i], MeanSync: rr.MeanSync, Levels: trees[i].Levels}
		})
	sort.Slice(out, func(i, j int) bool { return out[i].Degree < out[j].Degree })
	return out
}

// Best returns the result with the smallest mean delay. Ties (within
// floating-point noise) go to the larger degree: equal delay with a wider
// tree means fewer counters and hence fewer communications. This matches
// the paper's degree-4 optimum at σ = 0, where degrees 2 and 4 both yield
// exactly L·d·t_c. It panics on an empty sweep.
func Best(results []DegreeResult) DegreeResult {
	if len(results) == 0 {
		panic("barriersim: empty degree sweep")
	}
	best := results[0]
	for _, r := range results[1:] {
		switch {
		case r.MeanSync < best.MeanSync*(1-1e-9):
			best = r
		case r.MeanSync < best.MeanSync*(1+1e-9) && r.Degree > best.Degree:
			best = r
		}
	}
	return best
}

// DelayOf returns the mean delay of degree d in results, or NaN-free zero
// and false if d was not part of the sweep.
func DelayOf(results []DegreeResult, d int) (float64, bool) {
	for _, r := range results {
		if r.Degree == d {
			return r.MeanSync, true
		}
	}
	return 0, false
}

// OptimalDegree runs a sweep and returns the delay-minimizing degree with
// its speedup over a degree-4 tree (the previously assumed optimum), the
// paper's headline metric in Figs. 3 and 12.
func OptimalDegree(p int, build TreeBuilder, cfg Config, dist stats.Distribution, episodes int, seed uint64) (best DegreeResult, speedupVs4 float64, all []DegreeResult) {
	return OptimalDegreeOn(nil, p, build, cfg, dist, episodes, seed)
}

// OptimalDegreeOn is OptimalDegree with the underlying sweep running on
// the given engine.
func OptimalDegreeOn(eng *sweep.Engine, p int, build TreeBuilder, cfg Config, dist stats.Distribution, episodes int, seed uint64) (best DegreeResult, speedupVs4 float64, all []DegreeResult) {
	all = DegreeSweepOn(eng, p, build, cfg, dist, episodes, seed)
	best = Best(all)
	if d4, ok := DelayOf(all, 4); ok && best.MeanSync > 0 {
		speedupVs4 = d4 / best.MeanSync
	} else {
		speedupVs4 = 1
	}
	return best, speedupVs4, all
}
