package barriersim

import (
	"math"
	"testing"
	"testing/quick"

	"softbarrier/internal/stats"
	"softbarrier/internal/topology"
	"softbarrier/internal/workload"
)

// Metamorphic properties of the episode simulation: relations that must
// hold between related inputs regardless of tree shape.

// genArrivals produces a deterministic arrival vector from a seed.
func genArrivals(p int, seed uint64, sigma float64) []float64 {
	r := stats.NewRNG(seed)
	return workload.SampleArrivals(p, stats.Normal{Sigma: sigma}, r)
}

// Property: shifting every arrival by a constant shifts the release by the
// same constant and leaves the synchronization delay unchanged.
func TestEpisodeShiftInvariance(t *testing.T) {
	f := func(seed uint32, shiftRaw int16) bool {
		p := 64
		tree := topology.NewClassic(p, 4)
		arr := genArrivals(p, uint64(seed), 5*tc)
		shift := float64(shiftRaw) * tc
		shifted := make([]float64, p)
		for i, a := range arr {
			shifted[i] = a + shift
		}
		a := New(tree, Config{}).Episode(arr)
		b := New(tree, Config{}).Episode(shifted)
		return math.Abs(a.SyncDelay-b.SyncDelay) < tc*1e-6 &&
			math.Abs((b.Release-a.Release)-shift) < tc*1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: delaying one processor's arrival never makes the release
// earlier (the simulation is monotone in its inputs).
func TestEpisodeMonotoneInArrivals(t *testing.T) {
	f := func(seed uint32, whoRaw uint8, extraRaw uint8) bool {
		p := 64
		tree := topology.NewMCS(p, 4)
		arr := genArrivals(p, uint64(seed), 5*tc)
		later := append([]float64(nil), arr...)
		later[int(whoRaw)%p] += float64(extraRaw) * tc / 4
		a := New(tree, Config{}).Episode(arr)
		b := New(tree, Config{}).Episode(later)
		return b.Release >= a.Release-tc*1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the synchronization delay is bounded below by the last
// arriver's uncontended path and above by the fully serialized machine:
// depth·t_c ≤ delay ≤ (p + counters)·t_c.
func TestEpisodeDelayBounds(t *testing.T) {
	f := func(seed uint32, dRaw uint8, sigmaRaw uint8) bool {
		p := 128
		d := 2 + int(dRaw)%16
		sigma := float64(sigmaRaw) * tc / 4
		tree := topology.NewClassic(p, d)
		arr := genArrivals(p, uint64(seed), sigma)
		er := New(tree, Config{}).Episode(arr)
		lo := er.UpdateDelay
		hi := float64(p+tree.NumCounters()) * tc
		return er.SyncDelay >= lo-tc*1e-9 && er.SyncDelay <= hi+tc*1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: for any tree kind and arrivals, the releaser is a valid
// processor and its reported depth matches the topology.
func TestEpisodeReleaserConsistency(t *testing.T) {
	f := func(seed uint32, mcs bool) bool {
		p := 96
		var tree *topology.Tree
		if mcs {
			tree = topology.NewMCS(p, 4)
		} else {
			tree = topology.NewClassic(p, 4)
		}
		s := New(tree, Config{})
		arr := genArrivals(p, uint64(seed), 10*tc)
		er := s.Episode(arr)
		if er.Releaser < 0 || er.Releaser >= p {
			return false
		}
		return er.LastProcDepth == s.Tree().Depth(s.Tree().FirstCounter(er.Releaser))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: under dynamic placement, any sequence of episodes keeps the
// simulator's tree structurally valid.
func TestDynamicEpisodesPreserveTreeValidity(t *testing.T) {
	f := func(seed uint32, ringTree bool) bool {
		var tree *topology.Tree
		if ringTree {
			tree = topology.NewRing([]int{20, 20}, 3)
		} else {
			tree = topology.NewMCS(40, 3)
		}
		s := New(tree, Config{Dynamic: true})
		r := stats.NewRNG(uint64(seed))
		for k := 0; k < 15; k++ {
			s.Episode(workload.SampleArrivals(40, stats.Normal{Sigma: 20 * tc}, r))
			if s.Tree().Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: static and dynamic placement agree exactly when arrivals make
// no processor ever climb above its own counter's completion (i.e. the
// first episode, before any swap, on identical arrivals).
func TestFirstEpisodeStaticDynamicAgree(t *testing.T) {
	f := func(seed uint32) bool {
		p := 64
		tree := topology.NewMCS(p, 4)
		arr := genArrivals(p, uint64(seed), 8*tc)
		a := New(tree, Config{}).Episode(arr)
		b := New(tree, Config{Dynamic: true}).Episode(arr)
		// The swap happens after the release is determined, so episode 1
		// metrics are identical.
		return a.SyncDelay == b.SyncDelay && a.Release == b.Release && a.Releaser == b.Releaser
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
