package barriersim

import (
	"fmt"
	"math"

	"softbarrier/internal/stats"
	"softbarrier/internal/workload"
)

// This file models the classic non-combining barriers — dissemination and
// tournament — under load imbalance, as baselines for the paper's
// combining trees (the paper's §2 relates to both). Their synchronization
// structures are static butterflies/trees of point-to-point signals, so
// their delay follows a deterministic recurrence over the arrival times;
// no event queue is needed.

// DisseminationDelay returns the synchronization delay of a dissemination
// barrier: processor i finishes round r once both it and its partner
// (i − 2^r mod p) have finished round r−1, paying tc per round for the
// signal. The delay is the last processor's completion of the final round
// minus the last arrival. It is Θ(log₂ p · tc) after the last arrival for
// any arrival spread — the structural reason imbalance-aware combining
// trees can beat it.
func DisseminationDelay(arrivals []float64, tc float64) float64 {
	p := len(arrivals)
	if p == 0 {
		panic("barriersim: no arrivals")
	}
	cur := append([]float64(nil), arrivals...)
	next := make([]float64, p)
	last := stats.Max(arrivals)
	for dist := 1; dist < p; dist *= 2 {
		for i := 0; i < p; i++ {
			from := (i - dist + p) % p
			next[i] = math.Max(cur[i], cur[from]) + tc
		}
		cur, next = next, cur
	}
	if p == 1 {
		return 0
	}
	return stats.Max(cur) - last
}

// TournamentDelay returns the synchronization delay of a tournament
// barrier with statically determined winners: in round r the loser
// (bit r set) signals its winner, which proceeds after max(own, loser's)
// time plus tc. The champion's final time plus one release-flag update is
// the release. The delay is release minus last arrival.
func TournamentDelay(arrivals []float64, tc float64) float64 {
	p := len(arrivals)
	if p == 0 {
		panic("barriersim: no arrivals")
	}
	if p == 1 {
		return 0
	}
	t := append([]float64(nil), arrivals...)
	last := stats.Max(arrivals)
	for bit := 1; bit < p; bit *= 2 {
		for i := 0; i < p; i++ {
			if i&bit != 0 || i|bit >= p {
				continue
			}
			t[i] = math.Max(t[i], t[i|bit]) + tc
		}
	}
	release := t[0] + tc // champion flips the global release flag
	return release - last
}

// CentralDelay returns the synchronization delay of a flat central-counter
// barrier: p serialized updates of one counter. It equals the combining
// tree of degree ≥ p and is provided for closed-form cross-checks.
func CentralDelay(arrivals []float64, tc float64) float64 {
	p := len(arrivals)
	if p == 0 {
		panic("barriersim: no arrivals")
	}
	free := math.Inf(-1)
	sorted := append([]float64(nil), arrivals...)
	// Serve in arrival order.
	sortFloat64s(sorted)
	for _, a := range sorted {
		start := math.Max(a, free)
		free = start + tc
	}
	return free - sorted[p-1]
}

func sortFloat64s(xs []float64) {
	// Insertion sort is fine for the sizes used here? No — p reaches 4096.
	// Use a simple heap sort to stay allocation-free and O(n log n).
	n := len(xs)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(xs, i, n)
	}
	for end := n - 1; end > 0; end-- {
		xs[0], xs[end] = xs[end], xs[0]
		siftDown(xs, 0, end)
	}
}

func siftDown(xs []float64, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && xs[child+1] > xs[child] {
			child++
		}
		if xs[root] >= xs[child] {
			return
		}
		xs[root], xs[child] = xs[child], xs[root]
		root = child
	}
}

// BaselineKind selects a baseline barrier structure.
type BaselineKind int

// Baseline barrier structures.
const (
	// Dissemination is the Hensgen/Finkel/Manber butterfly barrier.
	Dissemination BaselineKind = iota
	// Tournament is the statically-seeded tournament barrier.
	Tournament
	// Central is the flat single-counter barrier.
	Central
)

func (k BaselineKind) String() string {
	switch k {
	case Dissemination:
		return "dissemination"
	case Tournament:
		return "tournament"
	case Central:
		return "central"
	default:
		return fmt.Sprintf("BaselineKind(%d)", int(k))
	}
}

// BaselineDelay dispatches on kind.
func BaselineDelay(kind BaselineKind, arrivals []float64, tc float64) float64 {
	switch kind {
	case Dissemination:
		return DisseminationDelay(arrivals, tc)
	case Tournament:
		return TournamentDelay(arrivals, tc)
	case Central:
		return CentralDelay(arrivals, tc)
	default:
		panic("barriersim: unknown baseline kind")
	}
}

// RunBaselineIID measures a baseline barrier over independent episodes of
// iid arrivals, mirroring RunIID's protocol so results are comparable.
func RunBaselineIID(kind BaselineKind, p int, tc float64, dist stats.Distribution, episodes int, seed uint64) RunResult {
	if episodes <= 0 {
		panic("barriersim: need at least one episode")
	}
	if tc == 0 {
		tc = DefaultTc
	}
	r := stats.NewRNG(seed)
	rr := RunResult{Episodes: episodes, SyncDelays: make([]float64, 0, episodes), CommOverhead: 1}
	for k := 0; k < episodes; k++ {
		arr := workload.SampleArrivals(p, dist, r)
		d := BaselineDelay(kind, arr, tc)
		rr.MeanSync += d
		rr.SyncDelays = append(rr.SyncDelays, d)
	}
	rr.MeanSync /= float64(episodes)
	return rr
}
