// Package barriersim simulates combining-tree barrier episodes with
// counter contention, reproducing the event-driven simulator of the paper.
//
// A barrier episode starts with every processor arriving at its first
// counter at a given time. Updating a counter occupies it exclusively for
// the counter-update time t_c, and concurrent updates serialize in FIFO
// order. The processor whose update completes a counter's fan-in proceeds
// to the parent counter; the update completing the root counter releases
// the barrier. The synchronization delay of the episode is the release
// time minus the latest arrival time.
//
// With dynamic placement enabled (the paper's §5 contribution), a
// processor that was the final updater of counters above its own swaps
// into the local slot of the highest such counter at the end of the
// episode, displacing that counter's previous local processor (the
// victim). The victim pays one extra communication at the start of the
// next episode to discover its new first counter.
package barriersim

import (
	"fmt"
	"math"

	"softbarrier/internal/eventsim"
	"softbarrier/internal/stats"
	"softbarrier/internal/topology"
	"softbarrier/internal/workload"
)

// DefaultTc is the counter update time measured on the KSR1 and used for
// every simulation in the paper: 20µs, expressed in seconds.
const DefaultTc = 20e-6

// Config configures a barrier simulation.
type Config struct {
	// Tc is the counter update time; 0 selects DefaultTc.
	Tc float64
	// Dynamic enables dynamic placement (victor/victim swaps). It has an
	// effect only on trees whose counters have local slots (MCS, Ring).
	Dynamic bool
	// CommCost is the latency a swap victim pays at its next episode to
	// read its Destination entry; 0 selects Tc.
	CommCost float64
	// LockDegradation models test-and-set-style locks whose update cost
	// grows with contention: an update issued while w earlier updates are
	// still queued costs Tc·(1 + LockDegradation·w) instead of Tc. The
	// paper's simulations assume an ideal queue lock (0, the default);
	// the EXT5 ablation sweeps this knob.
	LockDegradation float64
}

// EpisodeResult reports one barrier episode.
type EpisodeResult struct {
	// Release is the completion time of the final root update, in the
	// caller's (workload) time base.
	Release float64
	// LastArrival is the latest processor arrival, in the caller's time
	// base.
	LastArrival float64
	// SyncDelay is Release − LastArrival.
	SyncDelay float64
	// UpdateDelay is the contention-free floor of the delay: the number of
	// counters on the last arriver's path times t_c.
	UpdateDelay float64
	// ContentionDelay is SyncDelay − UpdateDelay.
	ContentionDelay float64
	// LastProcDepth is the number of counters updated by the processor
	// that performed the final root update (the paper's "depth seen by
	// the last processor releasing the barrier").
	LastProcDepth int
	// Comms counts remote communications: one per counter update plus one
	// per pending victim notification consumed this episode.
	Comms int
	// Swaps counts placement swaps performed at the end of this episode.
	Swaps int
	// Releaser is the processor that performed the final root update.
	Releaser int
}

// Tracer observes the events of a simulated episode. All times are in the
// simulator's internal (shifted, non-negative) time base of that episode.
// Implementations must not call back into the Sim.
type Tracer interface {
	// BeginEpisode starts a new episode trace.
	BeginEpisode()
	// Arrival records processor proc reaching the barrier at time t.
	Arrival(proc int, t float64)
	// Update records processor proc holding counter c during [start, end);
	// last reports whether this update completed the counter's fan-in.
	Update(proc, c int, start, end float64, last bool)
	// Swap records a dynamic-placement swap of victor into counter c,
	// displacing victim.
	Swap(victor, victim, c int)
	// Release records the episode's release by processor proc at time t.
	Release(proc int, t float64)
}

// Sim simulates successive barrier episodes over one combining tree. It is
// not safe for concurrent use.
type Sim struct {
	tc       float64
	commCost float64
	degrade  float64
	dynamic  bool
	tree     *topology.Tree

	res       []eventsim.Resource
	count     []int
	highest   []int     // per proc: highest counter it completed this episode (-1 none)
	penalty   []float64 // per proc: pending victim-notification latency
	baseComms int

	release  float64
	releaser int

	tracer Tracer
}

// SetTracer installs (or, with nil, removes) an episode tracer.
func (s *Sim) SetTracer(tr Tracer) { s.tracer = tr }

// New creates a simulator over a clone of tree (the caller's tree is never
// mutated, even under dynamic placement).
func New(tree *topology.Tree, cfg Config) *Sim {
	if cfg.Tc == 0 {
		cfg.Tc = DefaultTc
	}
	if cfg.Tc < 0 {
		panic("barriersim: negative t_c")
	}
	if cfg.CommCost == 0 {
		cfg.CommCost = cfg.Tc
	}
	if cfg.LockDegradation < 0 {
		panic("barriersim: negative lock degradation")
	}
	t := tree.Clone()
	s := &Sim{
		tc:       cfg.Tc,
		commCost: cfg.CommCost,
		degrade:  cfg.LockDegradation,
		dynamic:  cfg.Dynamic,
		tree:     t,
		res:      make([]eventsim.Resource, len(t.Counters)),
		count:    make([]int, len(t.Counters)),
		highest:  make([]int, t.P),
		penalty:  make([]float64, t.P),
	}
	for i := range s.res {
		s.res[i].Name = fmt.Sprintf("counter%d", i)
	}
	// Every counter receives exactly fan-in updates per episode.
	for i := range t.Counters {
		s.baseComms += t.Counters[i].FanIn()
	}
	return s
}

// Tree returns the simulator's (mutating) tree, for inspection of the
// current placement.
func (s *Sim) Tree() *topology.Tree { return s.tree }

// Tc returns the configured counter update time.
func (s *Sim) Tc() float64 { return s.tc }

// BaseComms returns the fixed number of counter updates per episode.
func (s *Sim) BaseComms() int { return s.baseComms }

// Episode simulates one barrier episode with the given arrival times
// (len = P, any time base) and returns its metrics. Under dynamic
// placement the tree's placement may change as a side effect, taking
// effect from the next episode.
func (s *Sim) Episode(arrivals []float64) EpisodeResult {
	if len(arrivals) != s.tree.P {
		panic(fmt.Sprintf("barriersim: %d arrivals for %d processors", len(arrivals), s.tree.P))
	}
	// Normalize to a non-negative time base for the event engine.
	shift := -arrivals[0]
	for _, a := range arrivals[1:] {
		if -a > shift {
			shift = -a
		}
	}

	for i := range s.count {
		s.count[i] = 0
		s.res[i].Reset()
	}
	for i := range s.highest {
		s.highest[i] = -1
	}
	s.release = math.NaN()
	s.releaser = -1

	var sim eventsim.Simulator
	comms := s.baseComms
	lastArrival := math.Inf(-1)
	lastArriver := 0
	if s.tracer != nil {
		s.tracer.BeginEpisode()
	}
	for i, a := range arrivals {
		t := a + shift
		if a > lastArrival {
			lastArrival = a
			lastArriver = i
		}
		if p := s.penalty[i]; p > 0 {
			t += p
			s.penalty[i] = 0
			comms++
		}
		if s.tracer != nil {
			s.tracer.Arrival(i, t)
		}
		proc := i
		sim.ScheduleAt(t, func() { s.arrive(&sim, proc, s.tree.FirstCounter(proc)) })
	}
	sim.Run()
	if math.IsNaN(s.release) {
		panic("barriersim: episode ended without a release")
	}

	res := EpisodeResult{
		Release:       s.release - shift,
		LastArrival:   lastArrival,
		SyncDelay:     s.release - shift - lastArrival,
		UpdateDelay:   float64(s.tree.Depth(s.tree.FirstCounter(lastArriver))) * s.tc,
		LastProcDepth: s.tree.Depth(s.tree.FirstCounter(s.releaser)),
		Releaser:      s.releaser,
	}
	res.ContentionDelay = res.SyncDelay - res.UpdateDelay

	if s.dynamic {
		res.Swaps = s.applySwaps()
	}
	res.Comms = comms
	return res
}

// arrive processes processor proc's update of counter c at the current
// simulated time.
func (s *Sim) arrive(sim *eventsim.Simulator, proc, c int) {
	service := s.tc
	if s.degrade > 0 {
		// Test-and-set-style degradation: cost grows with the number of
		// updates still queued ahead of this one.
		if backlog := s.res[c].FreeAt() - sim.Now(); backlog > 0 {
			service = s.tc * (1 + s.degrade*backlog/s.tc)
		}
	}
	start, end := s.res[c].Use(sim.Now(), service)
	s.count[c]++
	last := s.count[c] == s.tree.Counters[c].FanIn()
	if s.tracer != nil {
		s.tracer.Update(proc, c, start, end, last)
	}
	if !last {
		return
	}
	// proc's update completed the counter: it is the final updater.
	s.highest[proc] = c
	if c == s.tree.Root {
		s.release = end
		s.releaser = proc
		if s.tracer != nil {
			s.tracer.Release(proc, end)
		}
		return
	}
	parent := s.tree.Counters[c].Parent
	sim.ScheduleAt(end, func() { s.arrive(sim, proc, parent) })
}

// applySwaps performs the end-of-episode placement swaps, mirroring the
// runtime DynamicBarrier's chained ascent: a processor that completed
// counters above its own swaps into each of them in turn (each swap's
// victim drops into the slot the victor just vacated), ending at the
// highest legal completed counter. Every victim is charged one pending
// communication for its next episode. It returns the number of swaps.
func (s *Sim) applySwaps() int {
	swaps := 0
	for proc := 0; proc < s.tree.P; proc++ {
		top := s.highest[proc]
		if top < 0 || top == s.tree.FirstCounter(proc) {
			continue
		}
		// The completed chain runs from the processor's first counter up
		// to (and including) top.
		path := s.tree.PathToRoot(s.tree.FirstCounter(proc))
		for _, c := range path[1:] {
			if s.tree.CanSwap(proc, c) {
				victim := s.tree.Swap(proc, c)
				s.penalty[victim] += s.commCost
				swaps++
				if s.tracer != nil {
					s.tracer.Swap(proc, victim, c)
				}
			}
			if c == top {
				break
			}
		}
	}
	return swaps
}

// RunResult aggregates a multi-episode run.
type RunResult struct {
	// Episodes is the number of measured episodes (after warm-up).
	Episodes int
	// MeanSync, MeanUpdate and MeanContention are mean per-episode delays.
	MeanSync, MeanUpdate, MeanContention float64
	// MeanLastDepth is the mean depth of the releasing processor.
	MeanLastDepth float64
	// CommOverhead is total communications divided by the static baseline
	// (episodes × base updates); 1.0 means no overhead.
	CommOverhead float64
	// MeanSwaps is the mean number of swaps per episode.
	MeanSwaps float64
	// SyncDelays holds the per-episode synchronization delays.
	SyncDelays []float64
}

// Run simulates episodes barrier episodes fed by the workload iterator,
// discarding the first warmup episodes (placement convergence) from the
// aggregates. The iterator observes every episode's release, including
// warm-up ones.
func (s *Sim) Run(it *workload.Iterator, warmup, episodes int) RunResult {
	if episodes <= 0 {
		panic("barriersim: need at least one measured episode")
	}
	rr := RunResult{Episodes: episodes, SyncDelays: make([]float64, 0, episodes)}
	comms := 0
	for k := 0; k < warmup+episodes; k++ {
		er := s.Episode(it.Next())
		it.Complete(er.Release)
		if k < warmup {
			continue
		}
		rr.MeanSync += er.SyncDelay
		rr.MeanUpdate += er.UpdateDelay
		rr.MeanContention += er.ContentionDelay
		rr.MeanLastDepth += float64(er.LastProcDepth)
		rr.MeanSwaps += float64(er.Swaps)
		comms += er.Comms
		rr.SyncDelays = append(rr.SyncDelays, er.SyncDelay)
	}
	n := float64(episodes)
	rr.MeanSync /= n
	rr.MeanUpdate /= n
	rr.MeanContention /= n
	rr.MeanLastDepth /= n
	rr.MeanSwaps /= n
	rr.CommOverhead = float64(comms) / (n * float64(s.baseComms))
	return rr
}

// RunIID simulates independent episodes whose arrivals are drawn iid from
// dist (the single-barrier experiments of Figs. 2–4 and 9); episodes are
// causally unlinked, so there is no warm-up or slack feedback.
func RunIID(tree *topology.Tree, cfg Config, dist stats.Distribution, episodes int, seed uint64) RunResult {
	if episodes <= 0 {
		panic("barriersim: need at least one episode")
	}
	s := New(tree, cfg)
	r := stats.NewRNG(seed)
	rr := RunResult{Episodes: episodes, SyncDelays: make([]float64, 0, episodes)}
	comms := 0
	for k := 0; k < episodes; k++ {
		er := s.Episode(workload.SampleArrivals(tree.P, dist, r))
		rr.MeanSync += er.SyncDelay
		rr.MeanUpdate += er.UpdateDelay
		rr.MeanContention += er.ContentionDelay
		rr.MeanLastDepth += float64(er.LastProcDepth)
		rr.MeanSwaps += float64(er.Swaps)
		comms += er.Comms
		rr.SyncDelays = append(rr.SyncDelays, er.SyncDelay)
	}
	n := float64(episodes)
	rr.MeanSync /= n
	rr.MeanUpdate /= n
	rr.MeanContention /= n
	rr.MeanLastDepth /= n
	rr.MeanSwaps /= n
	rr.CommOverhead = float64(comms) / (n * float64(s.baseComms))
	return rr
}
