package barriersim

import (
	"runtime"
	"testing"

	"softbarrier/internal/stats"
	"softbarrier/internal/sweep"
	"softbarrier/internal/topology"
)

func TestDegreeCandidates(t *testing.T) {
	got := DegreeCandidates(64)
	want := []int{2, 4, 8, 16, 32, 64}
	if len(got) != len(want) {
		t.Fatalf("candidates %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidates %v, want %v", got, want)
		}
	}
	got56 := DegreeCandidates(56)
	if got56[len(got56)-1] != 56 {
		t.Fatalf("candidates for 56 must end with the flat barrier: %v", got56)
	}
}

func TestOptimalDegreeIsFourAtZeroSigma(t *testing.T) {
	// Fig. 3, σ = 0 column: degree 4 is optimal for every system size.
	for _, p := range []int{64, 256} {
		best, speedup, _ := OptimalDegree(p, topology.NewClassic, Config{}, stats.Degenerate{V: 0}, 1, 1)
		if best.Degree != 4 {
			t.Errorf("p=%d: optimal degree %d at σ=0, want 4", p, best.Degree)
		}
		if speedup != 1 {
			t.Errorf("p=%d: speedup vs 4 = %v, want 1", p, speedup)
		}
	}
}

func TestOptimalDegreeGrowsWithSigma(t *testing.T) {
	// Fig. 3 rows: the optimal degree increases with load imbalance.
	p := 64
	prevBest := 0
	for _, sigma := range []float64{0, 6.2 * tc, 25 * tc} {
		best, _, _ := OptimalDegree(p, topology.NewClassic, Config{}, stats.Normal{Sigma: sigma}, 40, 3)
		if best.Degree < prevBest {
			t.Errorf("σ=%v: optimal degree %d dropped below %d", sigma, best.Degree, prevBest)
		}
		prevBest = best.Degree
	}
	if prevBest < 16 {
		t.Errorf("optimal degree at σ=25t_c is %d, expected a wide tree", prevBest)
	}
}

func TestFlatBarrierOptimalAtLargeSigma(t *testing.T) {
	// Paper: "when 64 processors are distributed with a standard deviation
	// of 25 t_c, a single counter yields the smallest synchronization
	// delay".
	best, speedup, _ := OptimalDegree(64, topology.NewClassic, Config{}, stats.Normal{Sigma: 25 * tc}, 60, 5)
	if best.Degree < 32 {
		t.Errorf("optimal degree %d at σ=25t_c, want ≥32", best.Degree)
	}
	if speedup < 1 {
		t.Errorf("speedup vs degree 4 = %v, want ≥ 1", speedup)
	}
}

func TestBestAndDelayOf(t *testing.T) {
	rs := []DegreeResult{{Degree: 2, MeanSync: 5}, {Degree: 4, MeanSync: 3}, {Degree: 8, MeanSync: 3}}
	if b := Best(rs); b.Degree != 8 {
		t.Errorf("Best picked degree %d, want 8 (ties to larger)", b.Degree)
	}
	if d, ok := DelayOf(rs, 8); !ok || d != 3 {
		t.Error("DelayOf(8) wrong")
	}
	if _, ok := DelayOf(rs, 16); ok {
		t.Error("DelayOf missing degree should report false")
	}
}

func TestBestPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Best(nil)
}

func TestSweepPairsRandomStreams(t *testing.T) {
	// Same seed must give identical results on repeat (common random
	// numbers across degrees and runs).
	a := DegreeSweep(64, topology.NewClassic, Config{}, stats.Normal{Sigma: 5 * tc}, 10, 7)
	b := DegreeSweep(64, topology.NewClassic, Config{}, stats.Normal{Sigma: 5 * tc}, 10, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sweep not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDegreeSweepOnMatchesSequential(t *testing.T) {
	// The engine-backed sweep must be bit-identical to the plain one for
	// every worker count, and must round-trip through the cache.
	sequential := DegreeSweep(64, topology.NewClassic, Config{}, stats.Normal{Sigma: 5 * tc}, 10, 7)
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	engines := []*sweep.Engine{
		{Workers: 1},
		{Workers: 4},
		{Workers: runtime.GOMAXPROCS(0)},
		{Workers: 3, Cache: cache}, // cold cache
		{Workers: 3, Cache: cache}, // warm cache
	}
	for n, eng := range engines {
		got := DegreeSweepOn(eng, 64, topology.NewClassic, Config{}, stats.Normal{Sigma: 5 * tc}, 10, 7)
		if len(got) != len(sequential) {
			t.Fatalf("engine %d: %d results, want %d", n, len(got), len(sequential))
		}
		for i := range got {
			if got[i] != sequential[i] {
				t.Fatalf("engine %d: result %d = %+v, want %+v", n, i, got[i], sequential[i])
			}
		}
	}
	if cache.Hits() == 0 {
		t.Error("warm engine never hit the cache")
	}
}
