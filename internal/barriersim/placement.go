package barriersim

import (
	"softbarrier/internal/loadmodel"
	"softbarrier/internal/stats"
	"softbarrier/internal/topology"
)

// PolicyRun extends RunResult with the placement activity of a
// policy-driven run.
type PolicyRun struct {
	RunResult
	// Rebuilds counts the placement rebuilds the policy triggered (each
	// discards counter-contention state, like the runtime's epoch swap).
	Rebuilds int
}

// RunPlacement simulates episodes fed by gen while pol predicts straggler
// placement: after every episode the policy observes the arrival lags, and
// every replanEvery episodes (<=1 means every episode) its current ranking
// — when it has one that differs from the placement in force — rebuilds
// the tree with tree.PlaceByDepth, putting predicted stragglers in the
// shallowest slots. A nil pol is the static baseline: same workload, same
// seed, natural placement throughout. The first warmup episodes (policy
// convergence) are excluded from the aggregates.
//
// The caller's tree is never mutated; rebuilds re-place the original.
func RunPlacement(tree *topology.Tree, cfg Config, gen loadmodel.Generator, pol loadmodel.PlacementPolicy, replanEvery, warmup, episodes int, seed uint64) PolicyRun {
	if episodes <= 0 {
		panic("barriersim: need at least one measured episode")
	}
	if gen.P() != tree.P {
		panic("barriersim: generator and tree disagree on P")
	}
	if replanEvery <= 0 {
		replanEvery = 1
	}
	r := stats.NewRNG(seed)
	sim := New(tree, cfg)
	pr := PolicyRun{RunResult: RunResult{Episodes: episodes, SyncDelays: make([]float64, 0, episodes)}}
	arrivals := make([]float64, tree.P)
	lags := make([]float64, tree.P)
	var cur []int // order in force; nil = natural placement
	comms := 0
	for k := 0; k < warmup+episodes; k++ {
		gen.Times(k, r, arrivals)
		er := sim.Episode(arrivals)
		if k >= warmup {
			pr.MeanSync += er.SyncDelay
			pr.MeanUpdate += er.UpdateDelay
			pr.MeanContention += er.ContentionDelay
			pr.MeanLastDepth += float64(er.LastProcDepth)
			pr.MeanSwaps += float64(er.Swaps)
			comms += er.Comms
			pr.SyncDelays = append(pr.SyncDelays, er.SyncDelay)
		}
		if pol == nil {
			continue
		}
		first := arrivals[0]
		for _, a := range arrivals[1:] {
			if a < first {
				first = a
			}
		}
		for i, a := range arrivals {
			lags[i] = a - first
		}
		pol.Observe(lags)
		if (k+1)%replanEvery != 0 {
			continue
		}
		order := pol.Order()
		if order == nil || orderEq(order, cur, tree.P) {
			continue
		}
		placed, err := tree.PlaceByDepth(order)
		if err != nil {
			panic("barriersim: " + err.Error())
		}
		sim = New(placed, cfg)
		cur = append(cur[:0], order...)
		pr.Rebuilds++
	}
	n := float64(episodes)
	pr.MeanSync /= n
	pr.MeanUpdate /= n
	pr.MeanContention /= n
	pr.MeanLastDepth /= n
	pr.MeanSwaps /= n
	pr.CommOverhead = float64(comms) / (n * float64(sim.baseComms))
	return pr
}

// orderEq reports whether a and b describe the same placement of p
// processors; nil means the identity (natural) placement.
func orderEq(a, b []int, p int) bool {
	id := func(o []int, i int) int {
		if o == nil {
			return i
		}
		return o[i]
	}
	for i := 0; i < p; i++ {
		if id(a, i) != id(b, i) {
			return false
		}
	}
	return true
}
