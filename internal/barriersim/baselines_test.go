package barriersim

import (
	"math"
	"testing"

	"softbarrier/internal/stats"
	"softbarrier/internal/topology"
	"softbarrier/internal/workload"
)

func TestDisseminationSimultaneous(t *testing.T) {
	// σ = 0: exactly ⌈log₂ p⌉ rounds of t_c.
	for _, c := range []struct{ p, rounds int }{{2, 1}, {4, 2}, {8, 3}, {64, 6}, {100, 7}} {
		got := DisseminationDelay(make([]float64, c.p), tc)
		want := float64(c.rounds) * tc
		if !almostEq(got, want) {
			t.Errorf("p=%d: delay %v, want %v", c.p, got, want)
		}
	}
}

func TestDisseminationLateProcessorStillPaysLogP(t *testing.T) {
	// The structural weakness vs combining trees: even one very late
	// processor pays the full ⌈log₂ p⌉ rounds after arriving.
	p := 64
	arr := make([]float64, p)
	arr[10] = 1000 * tc
	got := DisseminationDelay(arr, tc)
	if !almostEq(got, 6*tc) {
		t.Errorf("late-processor delay %v, want %v", got, 6*tc)
	}
}

func TestTournamentSimultaneous(t *testing.T) {
	// σ = 0: champion waits ⌈log₂ p⌉ rounds, plus one release update.
	for _, c := range []struct{ p, rounds int }{{2, 1}, {8, 3}, {64, 6}} {
		got := TournamentDelay(make([]float64, c.p), tc)
		want := float64(c.rounds+1) * tc
		if !almostEq(got, want) {
			t.Errorf("p=%d: delay %v, want %v", c.p, got, want)
		}
	}
}

func TestTournamentLateChampionShortPath(t *testing.T) {
	// If the champion (processor 0) is last, every loser has already
	// signalled: it pays its rounds back-to-back plus the release.
	p := 64
	arr := make([]float64, p)
	arr[0] = 1000 * tc
	got := TournamentDelay(arr, tc)
	if !almostEq(got, 7*tc) {
		t.Errorf("late-champion delay %v, want %v", got, 7*tc)
	}
}

func TestCentralDelayMatchesFlatTreeSimulation(t *testing.T) {
	// The closed-form central barrier must agree with the event-driven
	// simulator's flat combining tree on identical arrivals.
	p := 64
	r := stats.NewRNG(3)
	s := New(topology.NewClassic(p, p), Config{})
	for k := 0; k < 20; k++ {
		arr := workload.SampleArrivals(p, stats.Normal{Sigma: 5 * tc}, r)
		want := s.Episode(arr).SyncDelay
		got := CentralDelay(arr, tc)
		if math.Abs(got-want) > tc*1e-6 {
			t.Fatalf("episode %d: closed form %v vs simulated %v", k, got, want)
		}
	}
}

func TestCentralDelaySimultaneous(t *testing.T) {
	if got := CentralDelay(make([]float64, 64), tc); !almostEq(got, 64*tc) {
		t.Errorf("central delay %v, want %v", got, 64*tc)
	}
}

func TestBaselinesSingleProcessor(t *testing.T) {
	for _, kind := range []BaselineKind{Dissemination, Tournament} {
		if got := BaselineDelay(kind, []float64{5}, tc); got != 0 {
			t.Errorf("%v: single-processor delay %v, want 0", kind, got)
		}
	}
	if got := CentralDelay([]float64{5}, tc); !almostEq(got, tc) {
		t.Errorf("central single-processor delay %v, want tc", got)
	}
}

func TestBaselinePanics(t *testing.T) {
	for _, f := range []func(){
		func() { DisseminationDelay(nil, tc) },
		func() { TournamentDelay(nil, tc) },
		func() { CentralDelay(nil, tc) },
		func() { BaselineDelay(BaselineKind(99), []float64{0}, tc) },
		func() { RunBaselineIID(Central, 4, tc, stats.Degenerate{}, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBaselineKindString(t *testing.T) {
	if Dissemination.String() != "dissemination" || Tournament.String() != "tournament" || Central.String() != "central" {
		t.Fatal("kind strings wrong")
	}
	if BaselineKind(99).String() == "" {
		t.Fatal("unknown kind should still print")
	}
}

func TestRunBaselineIID(t *testing.T) {
	rr := RunBaselineIID(Dissemination, 64, 0, stats.Normal{Sigma: 5 * tc}, 30, 7)
	if rr.Episodes != 30 || len(rr.SyncDelays) != 30 {
		t.Fatalf("bad run shape: %+v", rr)
	}
	// Dissemination delay is at least rounds·t_c always.
	if rr.MeanSync < 6*tc-tc*1e-9 {
		t.Errorf("mean %v below structural floor", rr.MeanSync)
	}
	// Determinism.
	rr2 := RunBaselineIID(Dissemination, 64, 0, stats.Normal{Sigma: 5 * tc}, 30, 7)
	if rr.MeanSync != rr2.MeanSync {
		t.Error("baseline run not deterministic")
	}
}

func TestCombiningTreeBeatsDisseminationUnderImbalance(t *testing.T) {
	// The thesis of the extension experiment: with wide arrivals, a wide
	// combining tree (low depth) beats the rigid log₂ p structure.
	p := 256
	dist := stats.Normal{Sigma: 50 * tc}
	diss := RunBaselineIID(Dissemination, p, tc, dist, 40, 11)
	sweep := DegreeSweep(p, topology.NewClassic, Config{}, dist, 40, 11)
	best := Best(sweep)
	if best.MeanSync >= diss.MeanSync {
		t.Errorf("optimal tree %v not better than dissemination %v at σ=50t_c", best.MeanSync, diss.MeanSync)
	}
}
