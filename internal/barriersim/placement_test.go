package barriersim

import (
	"testing"

	"softbarrier/internal/loadmodel"
	"softbarrier/internal/stats"
	"softbarrier/internal/topology"
)

// straggler2 is the PR-6 σ-aware placement baseline workload: p=15, two
// systemic stragglers at +500µs and +300µs over σ=20µs noise.
func straggler2() loadmodel.Generator {
	offsets := make([]float64, 15)
	offsets[3], offsets[11] = 500e-6, 300e-6
	return loadmodel.StaticSkew{
		Base:    loadmodel.IID{N: 15, Dist: stats.Normal{Sigma: 20e-6}},
		Offsets: offsets,
	}
}

// TestRunPlacementPolicyComparison reproduces the 4× σ-aware placement
// result with the policy engine in the loop instead of a hand-placed
// tree: on the 2-straggler systemic workload, every predictive policy
// must converge to stragglers-shallowest and land near the hand-placed
// 20µs mean sync delay, against the static baseline's ~80µs.
func TestRunPlacementPolicyComparison(t *testing.T) {
	const (
		warmup   = 20
		episodes = 300
		seed     = 7
	)
	tree := topology.NewMCS(15, 2)
	gen := straggler2()
	cfg := Config{}

	static := RunPlacement(tree, cfg, gen, nil, 5, warmup, episodes, seed)
	if static.Rebuilds != 0 {
		t.Fatalf("static run rebuilt %d times", static.Rebuilds)
	}
	for _, name := range []string{"reactive", "ewma", "trend", "ewma-hys"} {
		mk, ok := loadmodel.PolicyByName(name)
		if !ok {
			t.Fatalf("no policy %q", name)
		}
		pr := RunPlacement(tree, cfg, gen, mk(), 5, warmup, episodes, seed)
		ratio := static.MeanSync / pr.MeanSync
		t.Logf("%-9s mean sync %7.1fµs (static %.1fµs, %.2fx), %d rebuilds",
			name, pr.MeanSync*1e6, static.MeanSync*1e6, ratio, pr.Rebuilds)
		if pr.Rebuilds < 1 {
			t.Errorf("%s: never rebuilt the tree", name)
		}
		if ratio < 3 {
			t.Errorf("%s: mean sync %.3gs vs static %.3gs, want ≥3x improvement",
				name, pr.MeanSync, static.MeanSync)
		}
	}
}

// TestRunPlacementEWMAStability drives the policies with noise on the
// same scale as the systemic skew (σ=150µs over a 0–400µs linear lag
// ramp). Reactive re-ranks on every noisy episode, so its placements
// chase noise; EWMA averages the skew out of the noise. EWMA must not do
// worse than reactive on mean sync delay, and hysteresis must cut the
// rebuild count well below reactive's while staying in the same delay
// band.
func TestRunPlacementEWMAStability(t *testing.T) {
	const (
		p        = 15
		warmup   = 30
		episodes = 400
		seed     = 11
	)
	tree := topology.NewMCS(p, 2)
	gen := loadmodel.StaticSkew{
		Base:    loadmodel.IID{N: p, Dist: stats.Normal{Sigma: 150e-6}},
		Offsets: loadmodel.LinearOffsets(p, 400e-6),
	}
	cfg := Config{}

	run := func(name string) PolicyRun {
		mk, ok := loadmodel.PolicyByName(name)
		if !ok {
			t.Fatalf("no policy %q", name)
		}
		pr := RunPlacement(tree, cfg, gen, mk(), 2, warmup, episodes, seed)
		t.Logf("%-9s mean sync %7.1fµs, %d rebuilds", name, pr.MeanSync*1e6, pr.Rebuilds)
		return pr
	}
	reactive := run("reactive")
	ewma := run("ewma")
	hys := run("ewma-hys")

	if ewma.MeanSync > reactive.MeanSync*1.02 {
		t.Errorf("ewma mean sync %.3gs worse than reactive %.3gs under noise",
			ewma.MeanSync, reactive.MeanSync)
	}
	if hys.Rebuilds*2 >= reactive.Rebuilds {
		t.Errorf("hysteresis rebuilt %d times vs reactive %d, want <half",
			hys.Rebuilds, reactive.Rebuilds)
	}
	if hys.MeanSync > ewma.MeanSync*1.10 {
		t.Errorf("hysteresis mean sync %.3gs strays >10%% from ewma %.3gs",
			hys.MeanSync, ewma.MeanSync)
	}
}

// BenchmarkPlacementPolicies times a policy-driven simulation run and
// reports the achieved mean sync delay as simsync-ns/op, so benchtraj
// records the predictive-vs-reactive quality gap alongside the cost.
func BenchmarkPlacementPolicies(b *testing.B) {
	tree := topology.NewMCS(15, 2)
	for _, name := range []string{"static", "reactive", "ewma"} {
		mk, ok := loadmodel.PolicyByName(name)
		if !ok {
			b.Fatalf("no policy %q", name)
		}
		b.Run(name, func(b *testing.B) {
			var sync float64
			for i := 0; i < b.N; i++ {
				var pol loadmodel.PlacementPolicy
				if name != "static" {
					pol = mk()
				}
				pr := RunPlacement(tree, Config{}, straggler2(), pol, 5, 20, 100, 7)
				sync = pr.MeanSync
			}
			b.ReportMetric(sync*1e9, "simsync-ns/op")
		})
	}
}
