// Package trace records and renders barrier-episode traces from the
// simulator: a per-counter busy timeline (an ASCII Gantt chart of the
// contention structure) and per-processor path summaries. It exists to
// make the simulator's behaviour inspectable — the Figure 1 intuition of
// the paper ("how subsets merge into the last processor's path") becomes
// directly visible.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"softbarrier/internal/barriersim"
)

// UpdateEvent is one counter occupancy interval.
type UpdateEvent struct {
	Proc    int
	Counter int
	Start   float64
	End     float64
	Last    bool // completed the counter's fan-in
}

// SwapEvent is one dynamic-placement swap.
type SwapEvent struct {
	Victor, Victim, Counter int
}

// Episode is the recorded trace of one barrier episode.
type Episode struct {
	Arrivals map[int]float64
	Updates  []UpdateEvent
	Swaps    []SwapEvent
	Releaser int
	Release  float64
}

// Recorder implements barriersim.Tracer, keeping every episode.
type Recorder struct {
	Episodes []Episode
	// Keep bounds the number of retained episodes (0 = unbounded); older
	// episodes are dropped from the front.
	Keep int
}

var _ barriersim.Tracer = (*Recorder)(nil)

// BeginEpisode starts recording a new episode.
func (r *Recorder) BeginEpisode() {
	r.Episodes = append(r.Episodes, Episode{Arrivals: make(map[int]float64), Releaser: -1})
	if r.Keep > 0 && len(r.Episodes) > r.Keep {
		r.Episodes = r.Episodes[len(r.Episodes)-r.Keep:]
	}
}

func (r *Recorder) cur() *Episode {
	if len(r.Episodes) == 0 {
		// Tolerate tracers attached mid-run.
		r.BeginEpisode()
	}
	return &r.Episodes[len(r.Episodes)-1]
}

// Arrival records a processor arrival.
func (r *Recorder) Arrival(proc int, t float64) { r.cur().Arrivals[proc] = t }

// Update records a counter occupancy interval.
func (r *Recorder) Update(proc, c int, start, end float64, last bool) {
	e := r.cur()
	e.Updates = append(e.Updates, UpdateEvent{Proc: proc, Counter: c, Start: start, End: end, Last: last})
}

// Swap records a placement swap.
func (r *Recorder) Swap(victor, victim, c int) {
	e := r.cur()
	e.Swaps = append(e.Swaps, SwapEvent{Victor: victor, Victim: victim, Counter: c})
}

// Release records the episode release.
func (r *Recorder) Release(proc int, t float64) {
	e := r.cur()
	e.Releaser = proc
	e.Release = t
}

// Last returns the most recent episode, or nil if none was recorded.
func (r *Recorder) Last() *Episode {
	if len(r.Episodes) == 0 {
		return nil
	}
	return &r.Episodes[len(r.Episodes)-1]
}

// PathOf returns the counters processor proc updated during the episode,
// in ascent order.
func (e *Episode) PathOf(proc int) []int {
	var path []int
	for _, u := range e.Updates {
		if u.Proc == proc {
			path = append(path, u.Counter)
		}
	}
	return path
}

// Span returns the episode's time range [min arrival, release].
func (e *Episode) Span() (lo, hi float64) {
	first := true
	for _, t := range e.Arrivals {
		if first || t < lo {
			lo = t
		}
		first = false
	}
	hi = e.Release
	for _, u := range e.Updates {
		if u.End > hi {
			hi = u.End
		}
	}
	return lo, hi
}

// Timeline renders the episode as an ASCII Gantt chart: one lane per
// counter that saw traffic, time bucketed into width columns. Each bucket
// shows '#' when the counter is busy and '.' when idle; the release
// instant is marked with '|' on a footer rule. Counters are ordered by ID.
func (e *Episode) Timeline(width int) string {
	if width < 10 {
		width = 10
	}
	lo, hi := e.Span()
	if !(hi > lo) {
		hi = lo + 1
	}
	scale := float64(width) / (hi - lo)

	counters := map[int][]UpdateEvent{}
	for _, u := range e.Updates {
		counters[u.Counter] = append(counters[u.Counter], u)
	}
	var ids []int
	for c := range counters {
		ids = append(ids, c)
	}
	sort.Ints(ids)

	var b strings.Builder
	fmt.Fprintf(&b, "episode: %d updates on %d counters, release %.4gs after first arrival (releaser p%d)\n",
		len(e.Updates), len(ids), e.Release-lo, e.Releaser)
	for _, c := range ids {
		lane := make([]byte, width)
		for i := range lane {
			lane[i] = '.'
		}
		for _, u := range counters[c] {
			s := int((u.Start - lo) * scale)
			f := int((u.End - lo) * scale)
			if f >= width {
				f = width - 1
			}
			for i := s; i <= f && i < width; i++ {
				lane[i] = '#'
			}
		}
		fmt.Fprintf(&b, "c%-5d %s\n", c, lane)
	}
	rule := make([]byte, width)
	for i := range rule {
		rule[i] = '-'
	}
	if pos := int((e.Release - lo) * scale); pos >= 0 {
		if pos >= width {
			pos = width - 1 // release typically coincides with the span end
		}
		rule[pos] = '|'
	}
	fmt.Fprintf(&b, "       %s\n", rule)
	return b.String()
}

// Summary renders per-processor statistics: arrival order of the latest
// arrivals, the releaser's path, and swap activity.
func (e *Episode) Summary() string {
	var b strings.Builder
	type pa struct {
		proc int
		t    float64
	}
	var arr []pa
	for p, t := range e.Arrivals {
		arr = append(arr, pa{p, t})
	}
	sort.Slice(arr, func(i, j int) bool { return arr[i].t > arr[j].t })
	n := 5
	if len(arr) < n {
		n = len(arr)
	}
	b.WriteString("latest arrivals:")
	for _, a := range arr[:n] {
		fmt.Fprintf(&b, " p%d@%.3g", a.proc, a.t)
	}
	b.WriteByte('\n')
	if e.Releaser >= 0 {
		fmt.Fprintf(&b, "releaser p%d path: %v\n", e.Releaser, e.PathOf(e.Releaser))
	}
	if len(e.Swaps) > 0 {
		fmt.Fprintf(&b, "swaps: ")
		for i, s := range e.Swaps {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "p%d→c%d (displacing p%d)", s.Victor, s.Counter, s.Victim)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
