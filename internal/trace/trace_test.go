package trace

import (
	"strings"
	"testing"

	"softbarrier/internal/barriersim"
	"softbarrier/internal/topology"
)

func runTraced(t *testing.T, dynamic bool, arrivals []float64) (*barriersim.Sim, *Recorder) {
	t.Helper()
	tree := topology.NewMCS(len(arrivals), 4)
	s := barriersim.New(tree, barriersim.Config{Dynamic: dynamic})
	rec := &Recorder{}
	s.SetTracer(rec)
	s.Episode(arrivals)
	return s, rec
}

func TestRecorderCapturesEpisode(t *testing.T) {
	p := 16
	_, rec := runTraced(t, false, make([]float64, p))
	if len(rec.Episodes) != 1 {
		t.Fatalf("episodes = %d", len(rec.Episodes))
	}
	e := rec.Last()
	if len(e.Arrivals) != p {
		t.Errorf("arrivals = %d, want %d", len(e.Arrivals), p)
	}
	// Every counter receives exactly fan-in updates: total = P + C − 1.
	tree := topology.NewMCS(p, 4)
	if want := p + tree.NumCounters() - 1; len(e.Updates) != want {
		t.Errorf("updates = %d, want %d", len(e.Updates), want)
	}
	if e.Releaser < 0 || e.Release <= 0 {
		t.Errorf("release not recorded: %+v", e.Releaser)
	}
}

func TestUpdatesNeverOverlapPerCounter(t *testing.T) {
	arr := make([]float64, 32)
	_, rec := runTraced(t, false, arr)
	e := rec.Last()
	byCounter := map[int][]UpdateEvent{}
	for _, u := range e.Updates {
		byCounter[u.Counter] = append(byCounter[u.Counter], u)
	}
	for c, us := range byCounter {
		for i := range us {
			for j := i + 1; j < len(us); j++ {
				a, b := us[i], us[j]
				if a.Start < b.End && b.Start < a.End {
					t.Fatalf("counter %d: overlapping updates %+v and %+v", c, a, b)
				}
			}
		}
	}
}

func TestExactlyOneLastPerCounter(t *testing.T) {
	_, rec := runTraced(t, false, make([]float64, 20))
	lastCount := map[int]int{}
	for _, u := range rec.Last().Updates {
		if u.Last {
			lastCount[u.Counter]++
		}
	}
	for c, n := range lastCount {
		if n != 1 {
			t.Fatalf("counter %d has %d final updates", c, n)
		}
	}
}

func TestPathOfReleaserEndsAtRoot(t *testing.T) {
	s, rec := runTraced(t, false, make([]float64, 16))
	e := rec.Last()
	path := e.PathOf(e.Releaser)
	if len(path) == 0 || path[len(path)-1] != s.Tree().Root {
		t.Fatalf("releaser path %v does not end at root %d", path, s.Tree().Root)
	}
}

func TestSwapRecorded(t *testing.T) {
	p := 16
	arr := make([]float64, p)
	arr[2] = 100 * barriersim.DefaultTc // proc 2 very late → victor
	_, rec := runTraced(t, true, arr)
	e := rec.Last()
	if len(e.Swaps) == 0 {
		t.Fatal("no swap recorded")
	}
	for _, s := range e.Swaps {
		if s.Victor != 2 {
			t.Errorf("unexpected victor %d", s.Victor)
		}
	}
}

func TestTimelineRendering(t *testing.T) {
	_, rec := runTraced(t, false, make([]float64, 16))
	out := rec.Last().Timeline(60)
	if !strings.Contains(out, "#") || !strings.Contains(out, "c0") {
		t.Fatalf("timeline missing lanes:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + one lane per active counter + rule.
	tree := topology.NewMCS(16, 4)
	if want := tree.NumCounters() + 2; len(lines) != want {
		t.Fatalf("timeline has %d lines, want %d:\n%s", len(lines), want, out)
	}
	if !strings.Contains(lines[len(lines)-1], "|") {
		t.Error("release marker missing from rule")
	}
}

func TestTimelineWidthClamp(t *testing.T) {
	_, rec := runTraced(t, false, make([]float64, 8))
	out := rec.Last().Timeline(1) // clamped to 10
	if out == "" {
		t.Fatal("empty timeline")
	}
}

func TestSummaryRendering(t *testing.T) {
	p := 16
	arr := make([]float64, p)
	arr[5] = 50 * barriersim.DefaultTc
	_, rec := runTraced(t, true, arr)
	sum := rec.Last().Summary()
	for _, want := range []string{"latest arrivals", "p5", "releaser", "swaps"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestRecorderKeepBound(t *testing.T) {
	tree := topology.NewClassic(8, 4)
	s := barriersim.New(tree, barriersim.Config{})
	rec := &Recorder{Keep: 3}
	s.SetTracer(rec)
	for k := 0; k < 10; k++ {
		s.Episode(make([]float64, 8))
	}
	if len(rec.Episodes) != 3 {
		t.Fatalf("kept %d episodes, want 3", len(rec.Episodes))
	}
}

func TestRecorderToleratesMidRunAttachment(t *testing.T) {
	rec := &Recorder{}
	rec.Arrival(0, 1) // no BeginEpisode yet
	if len(rec.Episodes) != 1 {
		t.Fatal("implicit episode not created")
	}
	if rec.Last() == nil {
		t.Fatal("Last returned nil")
	}
	empty := &Recorder{}
	if empty.Last() != nil {
		t.Fatal("empty recorder should return nil")
	}
}

func TestSpan(t *testing.T) {
	e := &Episode{
		Arrivals: map[int]float64{0: 2, 1: 5},
		Updates:  []UpdateEvent{{Start: 5, End: 9}},
		Release:  8,
	}
	lo, hi := e.Span()
	if lo != 2 || hi != 9 {
		t.Fatalf("span [%v, %v], want [2, 9]", lo, hi)
	}
}
