package loadmodel

import (
	"fmt"
	"sort"

	rt "softbarrier/internal/runtime"
)

// PlacementPolicy consumes per-participant arrival-lag history and emits
// the order in which participants should occupy a combining tree's slots,
// laggiest-predicted-first — rank k goes to the k-th shallowest slot via
// topology.PlaceByDepth, so predicted stragglers sit nearest the root and
// their late arrival climbs the fewest levels.
//
// Observe is called once per episode with that episode's lags: arrival
// times minus the episode's earliest arrival, in seconds, indexed by
// participant id. A length change means membership changed; policies
// must reset their history. Order returns the current laggiest-first
// permutation of [0, p), or nil when the policy has no (new) opinion —
// callers treat nil as "keep the current placement". Policies are not
// safe for concurrent use; barriers call them from the releaser only.
type PlacementPolicy interface {
	Observe(lags []float64)
	Order() []int
	String() string
}

// Rank returns the stable laggiest-first permutation of its input:
// Rank([0, 5ms, 1ms]) = [1, 2, 0]. Ties keep ascending-id order, so a
// uniform episode yields the identity permutation.
func Rank(lags []float64) []int {
	order := make([]int, len(lags))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return lags[order[a]] > lags[order[b]]
	})
	return order
}

// Static is the do-nothing policy: it never emits an order, so the tree
// keeps its natural ascending-id placement. It is the baseline every
// predictive policy is measured against.
type Static struct{}

// Observe discards the episode.
func (Static) Observe([]float64) {}

// Order always returns nil.
func (Static) Order() []int { return nil }

func (Static) String() string { return "static" }

// Reactive ranks by the last episode's lags only — the paper's dynamic
// placement generalized from "move the single last arrival" to a full
// laggiest-first order. It has zero memory: one noisy episode fully
// reorders the tree, which is exactly the weakness the EWMA and Trend
// policies (and the Hysteresis wrapper) address.
type Reactive struct {
	order []int
}

// Observe ranks the episode's lags.
func (p *Reactive) Observe(lags []float64) { p.order = Rank(lags) }

// Order returns the last episode's ranking, nil before any episode.
func (p *Reactive) Order() []int { return p.order }

func (p *Reactive) String() string { return "reactive" }

// EWMA ranks by an exponentially weighted moving average of each
// participant's lag (runtime.LagEstimator), so persistent stragglers
// dominate one-off noise. Weight 0 selects runtime.DefaultSigmaWeight.
type EWMA struct {
	Weight float64

	p   int
	est *rt.LagEstimator
}

// Observe folds the episode into the per-participant EWMA.
func (p *EWMA) Observe(lags []float64) {
	if p.est == nil || len(lags) != p.p {
		p.p = len(lags)
		p.est = rt.NewLagEstimator(len(lags), p.Weight)
	}
	p.est.Observe(lags)
}

// Order ranks the EWMA lags, nil before any episode.
func (p *EWMA) Order() []int {
	if p.est == nil || p.est.Episodes() == 0 {
		return nil
	}
	return Rank(p.est.Lags())
}

func (p *EWMA) String() string { return "ewma" }

// Trend keeps a sliding window of recent episodes per participant and
// ranks by a one-step least-squares extrapolation of each participant's
// lag — it predicts who will be late *next* episode, so a participant
// whose lag is climbing outranks one whose equal lag is fading. Window 0
// selects 8. With fewer than two observed episodes it has no opinion.
type Trend struct {
	// Window is the history length in episodes; 0 selects 8.
	Window int

	hist [][]float64 // hist[i] = participant i's recent lags, oldest first
	pred []float64
}

// Observe appends the episode to each participant's window.
func (p *Trend) Observe(lags []float64) {
	w := p.Window
	if w <= 0 {
		w = 8
	}
	if len(p.hist) != len(lags) {
		p.hist = make([][]float64, len(lags))
		p.pred = make([]float64, len(lags))
	}
	for i, l := range lags {
		h := append(p.hist[i], l)
		if len(h) > w {
			h = h[1:]
		}
		p.hist[i] = h
	}
}

// Order ranks the one-step extrapolations, nil with under two episodes.
func (p *Trend) Order() []int {
	if len(p.hist) == 0 || len(p.hist[0]) < 2 {
		return nil
	}
	for i, h := range p.hist {
		p.pred[i] = extrapolate(h)
	}
	return Rank(p.pred)
}

func (p *Trend) String() string { return fmt.Sprintf("trend(w=%d)", p.Window) }

// extrapolate fits lag = a + b·t over t = 0..n-1 by least squares and
// returns the value at t = n (one step past the window).
func extrapolate(h []float64) float64 {
	n := float64(len(h))
	var sumT, sumY, sumTY, sumTT float64
	for t, y := range h {
		ft := float64(t)
		sumT += ft
		sumY += y
		sumTY += ft * y
		sumTT += ft * ft
	}
	den := n*sumTT - sumT*sumT
	if den == 0 {
		return sumY / n
	}
	b := (n*sumTY - sumT*sumY) / den
	a := (sumY - b*sumT) / n
	return a + b*n
}

// Hysteresis wraps an inner policy and suppresses its order unless it
// differs enough from the last order Hysteresis emitted: the largest
// single rank displacement, normalized by p, must reach MinShift
// (0 selects 0.25) — a genuine straggler change moves someone to or from
// the front and scores near 1, while σ-noise permuting near-tied
// neighbours scores 1/p. Without it, σ-level noise in the lag estimates
// permutes near-tied participants every episode and each permutation is
// a full tree rebuild; with it, only a genuine straggler change pays the
// rebuild cost. A length change (membership change) always passes.
type Hysteresis struct {
	Inner PlacementPolicy
	// MinShift is the emission threshold in [0, 1]; 0 selects 0.25.
	MinShift float64

	last []int
}

// Observe forwards to the inner policy.
func (p *Hysteresis) Observe(lags []float64) { p.Inner.Observe(lags) }

// Order returns the inner order when it has shifted by at least
// MinShift since the last emission, nil otherwise.
func (p *Hysteresis) Order() []int {
	order := p.Inner.Order()
	if order == nil {
		return nil
	}
	if p.last == nil || len(p.last) != len(order) {
		p.last = order
		return order
	}
	min := p.MinShift
	if min == 0 {
		min = 0.25
	}
	if rankShift(p.last, order) >= min {
		p.last = order
		return order
	}
	return nil
}

func (p *Hysteresis) String() string { return fmt.Sprintf("%v+hys(%g)", p.Inner, p.MinShift) }

// rankShift is the largest absolute rank displacement between two
// permutations of the same ids, normalized by the length: 0 for equal
// orders, (p-1)/p when an id moves between the two ends.
func rankShift(a, b []int) float64 {
	rank := make([]int, len(a))
	for r, id := range a {
		rank[id] = r
	}
	max := 0
	for r, id := range b {
		d := rank[id] - r
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return float64(max) / float64(len(a))
}

// policyFactories maps the stable CLI/config names to constructors. A
// fresh instance per call: policies are stateful and single-owner.
var policyFactories = []struct {
	name string
	make func() PlacementPolicy
}{
	{"static", func() PlacementPolicy { return Static{} }},
	{"reactive", func() PlacementPolicy { return &Reactive{} }},
	{"ewma", func() PlacementPolicy { return &EWMA{} }},
	{"trend", func() PlacementPolicy { return &Trend{} }},
	{"ewma-hys", func() PlacementPolicy { return &Hysteresis{Inner: &EWMA{}} }},
}

// PolicyByName returns a factory for the named placement policy. Names
// are stable across releases: static, reactive, ewma, trend, ewma-hys.
func PolicyByName(name string) (func() PlacementPolicy, bool) {
	for _, f := range policyFactories {
		if f.name == name {
			return f.make, true
		}
	}
	return nil, false
}

// PolicyNames lists the registered policy names in registration order.
func PolicyNames() []string {
	names := make([]string, len(policyFactories))
	for i, f := range policyFactories {
		names[i] = f.name
	}
	return names
}
