// Package loadmodel is the pluggable load-imbalance subsystem: Generator
// produces per-participant imbalance (the work/arrival times that drive
// simulations, experiments and live jitter loops), and PlacementPolicy
// (policy.go) consumes per-participant arrival-lag history and emits the
// placement order that puts predicted stragglers in a combining tree's
// shallowest slots.
//
// The package owns the imbalance regimes that used to live in
// internal/workload — iid draws, static per-participant skew (the paper's
// systemic imbalance), AR(1) drift (evolving imbalance) — plus the
// injector shapes the related work motivates: multiplicative history
// noise (charm++ load_imb_by_history), heavy right tails, bursty
// correlated slowdowns, and chunk-boundary-aligned skew (the LFSR
// cycle-distribution study: C work chunks over N workers leave C mod N
// workers one chunk heavier). internal/workload re-exports the paper's
// three regimes under their historical names.
package loadmodel

import (
	"fmt"
	"math"

	"softbarrier/internal/stats"
)

// Generator produces per-participant work times, one episode at a time.
// It is the interface the simulator, the experiment tables and the live
// examples all draw imbalance from, so a new imbalance model plugs into
// every consumer at once.
type Generator interface {
	// P returns the number of participants.
	P() int
	// Times fills dst (length P) with the work times of episode k,
	// drawing randomness from r. Episodes must be requested in order
	// starting at 0; implementations may keep per-participant state.
	Times(k int, r *stats.RNG, dst []float64)
	// String describes the generator for table captions and cache keys.
	String() string
}

// IID draws every participant's work time independently from Dist each
// episode: the paper's non-deterministic load imbalance.
type IID struct {
	N    int
	Dist stats.Distribution
}

// P returns the participant count.
func (w IID) P() int { return w.N }

// Times draws N iid samples.
func (w IID) Times(_ int, r *stats.RNG, dst []float64) {
	for i := range dst[:w.N] {
		dst[i] = w.Dist.Sample(r)
	}
}

func (w IID) String() string { return fmt.Sprintf("iid p=%d %v", w.N, w.Dist) }

// StaticSkew adds a fixed per-participant offset to a base generator: the
// paper's systemic load imbalance, where the same participants are
// consistently late. internal/workload aliases it as Systemic.
type StaticSkew struct {
	Base    Generator
	Offsets []float64
}

// P returns the participant count.
func (w StaticSkew) P() int { return w.Base.P() }

// Times draws base times and adds the fixed offsets.
func (w StaticSkew) Times(k int, r *stats.RNG, dst []float64) {
	w.Base.Times(k, r, dst)
	for i := range dst[:w.P()] {
		dst[i] += w.Offsets[i]
	}
}

func (w StaticSkew) String() string { return fmt.Sprintf("systemic over %v", w.Base) }

// LinearOffsets returns p offsets evenly spaced in [-spread/2, spread/2],
// a simple systemic-imbalance profile.
func LinearOffsets(p int, spread float64) []float64 {
	off := make([]float64, p)
	if p == 1 {
		return off
	}
	for i := range off {
		off[i] = spread * (float64(i)/float64(p-1) - 0.5)
	}
	return off
}

// Drift drifts each participant's bias as an AR(1) process with
// autocorrelation Rho and innovation scale InnovSigma, on top of iid draws
// from Dist: the paper's evolving workload imbalance, "where the workload
// slowly fluctuates from iteration to iteration". internal/workload
// aliases it as Evolving.
type Drift struct {
	N          int
	Dist       stats.Distribution
	Rho        float64
	InnovSigma float64

	bias []float64
}

// P returns the participant count.
func (w *Drift) P() int { return w.N }

// Times draws iid samples plus the drifting per-participant bias.
func (w *Drift) Times(_ int, r *stats.RNG, dst []float64) {
	if w.bias == nil {
		w.bias = make([]float64, w.N)
	}
	for i := range dst[:w.N] {
		w.bias[i] = w.Rho*w.bias[i] + w.InnovSigma*r.NormFloat64()
		dst[i] = w.Dist.Sample(r) + w.bias[i]
	}
}

func (w *Drift) String() string {
	return fmt.Sprintf("evolving p=%d %v rho=%g innov=%g", w.N, w.Dist, w.Rho, w.InnovSigma)
}

// HistoryNoise multiplies a base generator's times by per-participant
// multiplicative random-walk factors — the charm++ load_imb_by_history
// injector shape: a participant's relative speed wanders slowly, so its
// recent history predicts its near future without being constant. Each
// episode every factor is multiplied by (1 + U[-Step, Step]) and clamped
// to [1/Limit, Limit].
type HistoryNoise struct {
	Base Generator
	// Step is the per-episode multiplicative step bound; 0 selects 0.05.
	Step float64
	// Limit bounds the walk's factor away from 0 and ∞; 0 selects 4.
	Limit float64

	fac []float64
}

// P returns the participant count.
func (w *HistoryNoise) P() int { return w.Base.P() }

// Times draws base times and applies the per-participant walk factors.
func (w *HistoryNoise) Times(k int, r *stats.RNG, dst []float64) {
	step, limit := w.Step, w.Limit
	if step == 0 {
		step = 0.05
	}
	if limit == 0 {
		limit = 4
	}
	if w.fac == nil {
		w.fac = make([]float64, w.P())
		for i := range w.fac {
			w.fac[i] = 1
		}
	}
	w.Base.Times(k, r, dst)
	for i := range dst[:w.P()] {
		f := w.fac[i] * (1 + step*(2*r.Float64()-1))
		if f > limit {
			f = limit
		} else if f < 1/limit {
			f = 1 / limit
		}
		w.fac[i] = f
		dst[i] *= f
	}
}

func (w *HistoryNoise) String() string {
	return fmt.Sprintf("history-noise(step=%g) over %v", w.Step, w.Base)
}

// HeavyTail draws iid Pareto-tailed delays: Scale·(U^(-1/Alpha) − 1),
// which starts at 0 and has a power-law right tail — occasional
// participants are very late, with no persistence across episodes.
// Alpha must exceed 1 for a finite mean; 0 selects 2.
type HeavyTail struct {
	N     int
	Scale float64
	Alpha float64
}

// P returns the participant count.
func (w HeavyTail) P() int { return w.N }

// Times draws N iid Pareto-tailed samples.
func (w HeavyTail) Times(_ int, r *stats.RNG, dst []float64) {
	alpha := w.Alpha
	if alpha == 0 {
		alpha = 2
	}
	for i := range dst[:w.N] {
		u := r.Float64()
		if u == 0 {
			u = math.SmallestNonzeroFloat64
		}
		dst[i] = w.Scale * (math.Pow(u, -1/alpha) - 1)
	}
}

func (w HeavyTail) String() string {
	return fmt.Sprintf("heavy-tail p=%d scale=%g alpha=%g", w.N, w.Scale, w.Alpha)
}

// Bursty overlays correlated slowdown bursts on a base generator: each
// participant carries a two-state Markov chain (quiet/bursting) and adds
// Extra to its time while bursting. OnProb is the per-episode probability
// of entering a burst, StayProb of remaining in one — so bursts have
// geometric length 1/(1−StayProb) and the same participant is slow for
// several consecutive episodes, which is exactly the regime where
// history-based placement beats reacting to the last arrival.
type Bursty struct {
	Base  Generator
	Extra float64
	// OnProb is P(enter burst | quiet); 0 selects 0.02.
	OnProb float64
	// StayProb is P(stay | bursting); 0 selects 0.9.
	StayProb float64

	state []bool
}

// P returns the participant count.
func (w *Bursty) P() int { return w.Base.P() }

// Times draws base times, advances each participant's burst chain, and
// adds Extra to the bursting ones.
func (w *Bursty) Times(k int, r *stats.RNG, dst []float64) {
	on, stay := w.OnProb, w.StayProb
	if on == 0 {
		on = 0.02
	}
	if stay == 0 {
		stay = 0.9
	}
	if w.state == nil {
		w.state = make([]bool, w.P())
	}
	w.Base.Times(k, r, dst)
	for i := range dst[:w.P()] {
		u := r.Float64()
		if w.state[i] {
			w.state[i] = u < stay
		} else {
			w.state[i] = u < on
		}
		if w.state[i] {
			dst[i] += w.Extra
		}
	}
}

func (w *Bursty) String() string {
	return fmt.Sprintf("bursty(extra=%g on=%g stay=%g) over %v", w.Extra, w.OnProb, w.StayProb, w.Base)
}

// ChunkSkew models chunk-quantization imbalance, the LFSR cycle-study
// shape: Chunks equal work chunks of ChunkTime each are dealt round-robin
// over N participants, so the first Chunks mod N participants carry one
// extra chunk every episode — a systemic step imbalance whose magnitude
// is one chunk, aligned to the chunk boundary rather than drawn from a
// distribution. Jitter, when non-nil, adds an iid sample per participant.
type ChunkSkew struct {
	N         int
	Chunks    int
	ChunkTime float64
	Jitter    stats.Distribution
}

// P returns the participant count.
func (w ChunkSkew) P() int { return w.N }

// Times assigns each participant its chunk count times ChunkTime.
func (w ChunkSkew) Times(_ int, r *stats.RNG, dst []float64) {
	base := w.Chunks / w.N
	extra := w.Chunks % w.N
	for i := range dst[:w.N] {
		n := base
		if i < extra {
			n++
		}
		dst[i] = float64(n) * w.ChunkTime
		if w.Jitter != nil {
			dst[i] += w.Jitter.Sample(r)
		}
	}
}

func (w ChunkSkew) String() string {
	return fmt.Sprintf("chunk-skew p=%d chunks=%d t=%g", w.N, w.Chunks, w.ChunkTime)
}

// Phase is one segment of a Phased generator.
type Phase struct {
	// Episodes is how many episodes the phase lasts; the final phase's
	// count is ignored (it runs forever).
	Episodes int
	// Gen produces the phase's times; all phases must agree on P.
	Gen Generator
}

// Phased switches generators on an episode schedule — the "quiet, then
// imbalanced, then quiet again" workloads the examples and adaptation
// demos drive, without a hand-rolled jitter loop per call site. Each
// phase's generator sees episode indices local to the phase.
type Phased struct {
	Phases []Phase
}

// P returns the participant count (of the first phase).
func (w Phased) P() int { return w.Phases[0].Gen.P() }

// Times dispatches episode k to its phase's generator.
func (w Phased) Times(k int, r *stats.RNG, dst []float64) {
	local := k
	for i, ph := range w.Phases {
		if i == len(w.Phases)-1 || local < ph.Episodes {
			ph.Gen.Times(local, r, dst)
			return
		}
		local -= ph.Episodes
	}
}

func (w Phased) String() string {
	s := "phased["
	for i, ph := range w.Phases {
		if i > 0 {
			s += "; "
		}
		s += fmt.Sprintf("%d x %v", ph.Episodes, ph.Gen)
	}
	return s + "]"
}

// Schedule materializes episodes of per-participant times from g,
// seeded deterministically — the helper that turns any Generator into a
// precomputed sleep schedule for live jitter loops (examples, demos),
// replacing per-client hand-rolled rand loops.
func Schedule(g Generator, episodes int, seed uint64) [][]float64 {
	r := stats.NewRNG(seed)
	out := make([][]float64, episodes)
	for k := range out {
		out[k] = make([]float64, g.P())
		g.Times(k, r, out[k])
	}
	return out
}
