package loadmodel

import (
	"math"
	"reflect"
	"testing"

	"softbarrier/internal/stats"
)

func TestLoadModelGenerators(t *testing.T) {
	r := stats.NewRNG(1)
	dst := make([]float64, 8)

	t.Run("static skew offsets persist", func(t *testing.T) {
		g := StaticSkew{Base: IID{N: 8, Dist: stats.Degenerate{V: 1}}, Offsets: LinearOffsets(8, 0.8)}
		for k := 0; k < 3; k++ {
			g.Times(k, r, dst)
			if got := dst[7] - dst[0]; math.Abs(got-0.8) > 1e-12 {
				t.Fatalf("episode %d: spread = %g, want 0.8", k, got)
			}
		}
	})

	t.Run("heavy tail nonnegative", func(t *testing.T) {
		g := HeavyTail{N: 8, Scale: 1e-3, Alpha: 2}
		for k := 0; k < 100; k++ {
			g.Times(k, r, dst)
			for i, v := range dst {
				if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
					t.Fatalf("episode %d participant %d: %g", k, i, v)
				}
			}
		}
	})

	t.Run("bursty adds extra only in bursts", func(t *testing.T) {
		g := &Bursty{Base: IID{N: 8, Dist: stats.Degenerate{V: 0}}, Extra: 1, OnProb: 0.5, StayProb: 0.9}
		bursts := 0
		for k := 0; k < 200; k++ {
			g.Times(k, r, dst)
			for _, v := range dst {
				switch v {
				case 0:
				case 1:
					bursts++
				default:
					t.Fatalf("episode %d: time %g not 0 or Extra", k, v)
				}
			}
		}
		if bursts == 0 {
			t.Fatal("no bursts in 200 episodes at OnProb=0.5")
		}
	})

	t.Run("history noise clamps factors", func(t *testing.T) {
		g := &HistoryNoise{Base: IID{N: 8, Dist: stats.Degenerate{V: 1}}, Step: 0.5, Limit: 2}
		for k := 0; k < 500; k++ {
			g.Times(k, r, dst)
			for i, v := range dst {
				if v < 0.5-1e-12 || v > 2+1e-12 {
					t.Fatalf("episode %d participant %d: %g outside [1/Limit, Limit]", k, i, v)
				}
			}
		}
	})

	t.Run("chunk skew deals remainder to low ids", func(t *testing.T) {
		g := ChunkSkew{N: 8, Chunks: 11, ChunkTime: 1e-3}
		g.Times(0, r, dst)
		for i, v := range dst {
			want := 1e-3
			if i < 3 { // 11 mod 8 = 3 participants carry 2 chunks
				want = 2e-3
			}
			if math.Abs(v-want) > 1e-15 {
				t.Fatalf("participant %d: %g, want %g", i, v, want)
			}
		}
	})

	t.Run("phased switches on schedule", func(t *testing.T) {
		g := Phased{Phases: []Phase{
			{Episodes: 2, Gen: IID{N: 8, Dist: stats.Degenerate{V: 1}}},
			{Episodes: 3, Gen: IID{N: 8, Dist: stats.Degenerate{V: 2}}},
			{Gen: IID{N: 8, Dist: stats.Degenerate{V: 3}}},
		}}
		want := []float64{1, 1, 2, 2, 2, 3, 3, 3, 3, 3}
		for k, w := range want {
			g.Times(k, r, dst)
			if dst[0] != w {
				t.Fatalf("episode %d: %g, want %g", k, dst[0], w)
			}
		}
	})
}

// TestLoadModelDriftMatchesLegacy pins the Drift sample stream: the sweep
// cache keys experiment results by workload String() + seed, so the
// refactor out of internal/workload must not change a single draw.
func TestLoadModelDriftMatchesLegacy(t *testing.T) {
	gen := &Drift{N: 4, Dist: stats.Normal{Mu: 1e-3, Sigma: 1e-4}, Rho: 0.9, InnovSigma: 1e-4}
	r := stats.NewRNG(42)
	dst := make([]float64, 4)

	// Reference: the pre-refactor Evolving.Times body, inlined.
	bias := make([]float64, 4)
	rr := stats.NewRNG(42)
	want := make([]float64, 4)
	for k := 0; k < 50; k++ {
		gen.Times(k, r, dst)
		for i := range want {
			bias[i] = 0.9*bias[i] + 1e-4*rr.NormFloat64()
			want[i] = (stats.Normal{Mu: 1e-3, Sigma: 1e-4}).Sample(rr) + bias[i]
		}
		if !reflect.DeepEqual(dst, want) {
			t.Fatalf("episode %d: draw stream diverged: %v != %v", k, dst, want)
		}
	}
}

func TestLoadModelSchedule(t *testing.T) {
	g := StaticSkew{Base: IID{N: 4, Dist: stats.Degenerate{V: 1e-3}}, Offsets: LinearOffsets(4, 1e-3)}
	a := Schedule(g, 10, 7)
	b := Schedule(g, 10, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Schedule not deterministic for equal seeds")
	}
	if len(a) != 10 || len(a[0]) != 4 {
		t.Fatalf("shape %dx%d, want 10x4", len(a), len(a[0]))
	}
}

func TestPlacementRank(t *testing.T) {
	got := Rank([]float64{0, 5e-3, 1e-3})
	if !reflect.DeepEqual(got, []int{1, 2, 0}) {
		t.Fatalf("Rank = %v, want [1 2 0]", got)
	}
	// Ties keep ascending-id order: uniform lags rank as identity.
	if got := Rank([]float64{1, 1, 1, 1}); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("uniform Rank = %v, want identity", got)
	}
}

func TestPlacementPolicies(t *testing.T) {
	straggler5 := []float64{0, 0, 0, 0, 0, 5e-4, 0, 0}
	straggler2 := []float64{0, 0, 5e-4, 0, 0, 0, 0, 0}

	t.Run("static never orders", func(t *testing.T) {
		var p Static
		p.Observe(straggler5)
		if p.Order() != nil {
			t.Fatal("Static emitted an order")
		}
	})

	t.Run("reactive tracks last episode", func(t *testing.T) {
		p := &Reactive{}
		if p.Order() != nil {
			t.Fatal("order before any episode")
		}
		p.Observe(straggler5)
		if ord := p.Order(); ord[0] != 5 {
			t.Fatalf("order %v, want 5 first", ord)
		}
		p.Observe(straggler2)
		if ord := p.Order(); ord[0] != 2 {
			t.Fatalf("order %v after switch, want 2 first", ord)
		}
	})

	t.Run("ewma resists one-off noise", func(t *testing.T) {
		p := &EWMA{}
		for i := 0; i < 20; i++ {
			p.Observe(straggler5)
		}
		p.Observe(straggler2) // single noisy episode
		if ord := p.Order(); ord[0] != 5 {
			t.Fatalf("order %v after one noisy episode, want 5 still first", ord)
		}
		for i := 0; i < 40; i++ {
			p.Observe(straggler2)
		}
		if ord := p.Order(); ord[0] != 2 {
			t.Fatalf("order %v after sustained switch, want 2 first", ord)
		}
	})

	t.Run("ewma resets on membership change", func(t *testing.T) {
		p := &EWMA{}
		p.Observe(straggler5)
		p.Observe([]float64{0, 1e-3, 0, 0}) // p changed 8 -> 4
		ord := p.Order()
		if len(ord) != 4 || ord[0] != 1 {
			t.Fatalf("order %v after resize, want len 4 with 1 first", ord)
		}
	})

	t.Run("trend predicts the climber", func(t *testing.T) {
		p := &Trend{Window: 6}
		if p.Order() != nil {
			t.Fatal("order before two episodes")
		}
		// Participant 1 holds a constant 4e-4 lag; participant 6 climbs
		// through it and should outrank it on the extrapolation.
		for k := 0; k < 5; k++ {
			lags := make([]float64, 8)
			lags[1] = 4e-4
			lags[6] = float64(k) * 1e-4 // reaches 4e-4, predicted 5e-4 next
			p.Observe(lags)
		}
		if ord := p.Order(); ord[0] != 6 {
			t.Fatalf("order %v, want climbing participant 6 first", ord)
		}
	})

	t.Run("hysteresis suppresses small shifts", func(t *testing.T) {
		p := &Hysteresis{Inner: &Reactive{}, MinShift: 0.25}
		p.Observe(straggler5)
		first := p.Order()
		if first == nil || first[0] != 5 {
			t.Fatalf("first order %v, want emitted with 5 first", first)
		}
		// Tiny perturbation: same straggler, near-tied tail ids jitter.
		perturbed := []float64{0, 1e-9, 0, 0, 0, 5e-4, 0, 0}
		p.Observe(perturbed)
		if ord := p.Order(); ord != nil {
			t.Fatalf("hysteresis leaked a near-identical order %v", ord)
		}
		// A genuine straggler change passes.
		p.Observe(straggler2)
		if ord := p.Order(); ord == nil || ord[0] != 2 {
			t.Fatalf("order %v after real switch, want 2 first", ord)
		}
	})

	t.Run("registry", func(t *testing.T) {
		for _, name := range PolicyNames() {
			mk, ok := PolicyByName(name)
			if !ok {
				t.Fatalf("PolicyByName(%q) missing", name)
			}
			pol := mk()
			if pol == nil {
				t.Fatalf("factory %q returned nil", name)
			}
			pol.Observe(straggler5)
			pol.Observe(straggler5)
			ord := pol.Order()
			if name != "static" && (ord == nil || ord[0] != 5) {
				t.Fatalf("%s: order %v after two straggler episodes, want 5 first", name, ord)
			}
			if name == "static" && ord != nil {
				t.Fatalf("static emitted %v", ord)
			}
		}
		if _, ok := PolicyByName("nope"); ok {
			t.Fatal("unknown name resolved")
		}
	})
}

func TestPlacementRankShift(t *testing.T) {
	a := []int{0, 1, 2, 3}
	if s := rankShift(a, []int{0, 1, 2, 3}); s != 0 {
		t.Fatalf("equal orders shift %g, want 0", s)
	}
	if s := rankShift(a, []int{3, 2, 1, 0}); math.Abs(s-0.75) > 1e-12 {
		t.Fatalf("reversal shift %g, want 0.75", s)
	}
	if s := rankShift(a, []int{1, 0, 2, 3}); math.Abs(s-0.25) > 1e-12 {
		t.Fatalf("adjacent swap shift %g, want 0.25", s)
	}
}
