package workload

import (
	"bytes"
	"strings"
	"testing"

	"softbarrier/internal/stats"
)

func TestTraceReplayAndWrap(t *testing.T) {
	tr, err := NewTrace([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.P() != 2 || tr.Iterations() != 2 {
		t.Fatalf("shape %d/%d", tr.P(), tr.Iterations())
	}
	dst := make([]float64, 2)
	tr.Times(0, nil, dst)
	if dst[0] != 1 || dst[1] != 2 {
		t.Fatalf("row 0 = %v", dst)
	}
	tr.Times(3, nil, dst) // wraps to row 1
	if dst[0] != 3 || dst[1] != 4 {
		t.Fatalf("row 3 (wrap) = %v", dst)
	}
	if tr.String() == "" {
		t.Fatal("empty description")
	}
}

func TestNewTraceValidation(t *testing.T) {
	if _, err := NewTrace(nil); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := NewTrace([][]float64{{}}); err == nil {
		t.Error("empty rows accepted")
	}
	if _, err := NewTrace([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged trace accepted")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	orig := Record(IID{N: 5, Dist: stats.Normal{Mu: 1e-3, Sigma: 1e-4}}, 7, 3)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.P() != orig.P() || back.Iterations() != orig.Iterations() {
		t.Fatalf("shape changed: %d/%d", back.P(), back.Iterations())
	}
	for k := range orig.Rows {
		for i := range orig.Rows[k] {
			if orig.Rows[k][i] != back.Rows[k][i] {
				t.Fatalf("value changed at [%d][%d]", k, i)
			}
		}
	}
}

func TestParseTraceCommentsAndErrors(t *testing.T) {
	tr, err := ParseTrace(strings.NewReader("# header\n\n1, 2\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Iterations() != 2 || tr.P() != 2 {
		t.Fatalf("shape %d/%d", tr.Iterations(), tr.P())
	}
	if _, err := ParseTrace(strings.NewReader("1,x\n")); err == nil {
		t.Error("bad number accepted")
	}
	if _, err := ParseTrace(strings.NewReader("# only comments\n")); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := ParseTrace(strings.NewReader("1,2\n3\n")); err == nil {
		t.Error("ragged trace accepted")
	}
}

func TestRecordMatchesDirectSampling(t *testing.T) {
	w := IID{N: 3, Dist: stats.Normal{Sigma: 1}}
	tr := Record(w, 4, 9)
	// Same seed, same workload: direct sampling must agree row by row.
	r := stats.NewRNG(9)
	dst := make([]float64, 3)
	for k := 0; k < 4; k++ {
		w.Times(k, r, dst)
		for i := range dst {
			if tr.Rows[k][i] != dst[i] {
				t.Fatalf("recorded row %d differs", k)
			}
		}
	}
}

func TestRecordPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Record(IID{N: 1, Dist: stats.Degenerate{}}, 0, 1)
}

func TestTraceDrivesIterator(t *testing.T) {
	tr := Record(IID{N: 8, Dist: stats.Normal{Mu: 1, Sigma: 0.1}}, 10, 11)
	it := NewIterator(tr, 0, 13)
	for k := 0; k < 20; k++ { // wraps past the recording
		arr := it.Next()
		it.Complete(stats.Max(arr))
	}
	if it.Iteration() != 20 {
		t.Fatalf("iterations %d", it.Iteration())
	}
}
