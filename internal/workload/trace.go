package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"softbarrier/internal/stats"
)

// Trace replays recorded per-iteration execution times: row k holds the p
// work times of iteration k, and iterations past the recording wrap
// around. It stands in for the production traces a site would feed the
// simulator (we have none; synthetic workloads generate equivalent
// recordings — see DESIGN.md's substitution table).
type Trace struct {
	Rows [][]float64
}

// NewTrace validates and wraps recorded rows: at least one row, all rows
// the same positive width, all times finite.
func NewTrace(rows [][]float64) (*Trace, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("workload: trace has no iterations")
	}
	p := len(rows[0])
	if p == 0 {
		return nil, fmt.Errorf("workload: trace rows are empty")
	}
	for k, row := range rows {
		if len(row) != p {
			return nil, fmt.Errorf("workload: row %d has %d entries, want %d", k, len(row), p)
		}
	}
	return &Trace{Rows: rows}, nil
}

// P returns the processor count.
func (t *Trace) P() int { return len(t.Rows[0]) }

// Iterations returns the number of recorded iterations.
func (t *Trace) Iterations() int { return len(t.Rows) }

// Times replays iteration k (mod the recording length).
func (t *Trace) Times(k int, _ *stats.RNG, dst []float64) {
	copy(dst, t.Rows[k%len(t.Rows)])
}

func (t *Trace) String() string {
	return fmt.Sprintf("trace p=%d iterations=%d", t.P(), t.Iterations())
}

// ParseTrace reads a trace in the textual format written by WriteTrace:
// one iteration per line, comma-separated per-processor work times in
// seconds; blank lines and lines starting with '#' are ignored.
func ParseTrace(r io.Reader) (*Trace, error) {
	var rows [][]float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		row := make([]float64, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("workload: trace line %d: %v", lineNo, err)
			}
			row = append(row, v)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %v", err)
	}
	return NewTrace(rows)
}

// WriteTrace writes the trace in the format ParseTrace reads.
func WriteTrace(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# barrier workload trace: %d processors, %d iterations\n", t.P(), t.Iterations()); err != nil {
		return err
	}
	for _, row := range t.Rows {
		for i, v := range row {
			if i > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%g", v); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Record samples iterations iterations of w into a replayable Trace using
// the given seed, the bridge from synthetic workloads to trace files.
func Record(w Workload, iterations int, seed uint64) *Trace {
	if iterations < 1 {
		panic("workload: need at least one iteration to record")
	}
	r := stats.NewRNG(seed)
	rows := make([][]float64, iterations)
	for k := range rows {
		rows[k] = make([]float64, w.P())
		w.Times(k, r, rows[k])
	}
	return &Trace{Rows: rows}
}
