package workload

import (
	"fmt"

	"softbarrier/internal/stats"
)

// Iterator produces the per-episode arrival times of an iterated
// computation separated by fuzzy barriers with a given slack, following the
// accumulation model of the authors' earlier fuzzy-barrier analysis:
//
//	e_i(k) = max(e_i(k-1), R(k-1) − slack) + w_i(k)
//
// where e_i(k) is processor i's arrival at the enforce point of iteration
// k, R(k−1) the previous episode's release time, and w_i(k) its work time.
//
// With slack 0 every processor restarts from the previous release, so
// arrival times are iid each iteration and the previous arrival order
// carries no information (dynamic placement then cannot help — Fig. 8's
// slack-0 column). With large slack, lateness accumulates as a random walk
// and slow processors stay slow for many iterations (Fig. 5), which is what
// makes history-based placement work.
type Iterator struct {
	Slack float64
	W     Workload

	rng     *stats.RNG
	enforce []float64 // e_i of the previous iteration
	buf     []float64 // scratch for work times
	iter    int
	started bool
}

// NewIterator creates an iterator over episodes of workload w with the
// given fuzzy-barrier slack, drawing randomness from seed.
func NewIterator(w Workload, slack float64, seed uint64) *Iterator {
	if slack < 0 {
		panic("workload: negative slack")
	}
	return &Iterator{
		Slack:   slack,
		W:       w,
		rng:     stats.NewRNG(seed),
		enforce: make([]float64, w.P()),
		buf:     make([]float64, w.P()),
	}
}

// Iteration returns the index of the episode the next call to Next will
// produce.
func (it *Iterator) Iteration() int { return it.iter }

// Next returns the arrival times of the next episode. The returned slice
// is owned by the iterator and overwritten by the following call; copy it
// to retain. After simulating the episode the caller must report the
// release time with Complete before calling Next again.
func (it *Iterator) Next() []float64 {
	if it.started {
		panic("workload: Next called before Complete")
	}
	it.started = true
	it.W.Times(it.iter, it.rng, it.buf)
	for i := range it.enforce {
		it.enforce[i] += it.buf[i]
	}
	it.iter++
	return it.enforce
}

// Complete feeds back the episode's release time R(k), which caps how far
// any processor may lag into the next iteration. release must be at least
// the latest arrival.
func (it *Iterator) Complete(release float64) {
	if !it.started {
		panic("workload: Complete without Next")
	}
	it.started = false
	floor := release - it.Slack
	for i, e := range it.enforce {
		if e < floor {
			it.enforce[i] = floor
		}
	}
}

func (it *Iterator) String() string {
	return fmt.Sprintf("slack=%g over %v", it.Slack, it.W)
}
