package workload

import (
	"math"
	"testing"

	"softbarrier/internal/stats"
)

func TestIIDMoments(t *testing.T) {
	w := IID{N: 1000, Dist: stats.Normal{Mu: 5, Sigma: 2}}
	r := stats.NewRNG(1)
	dst := make([]float64, w.P())
	var all []float64
	for k := 0; k < 100; k++ {
		w.Times(k, r, dst)
		all = append(all, dst...)
	}
	if m := stats.Mean(all); math.Abs(m-5) > 0.05 {
		t.Errorf("mean %v, want ~5", m)
	}
	if sd := stats.StdDev(all); math.Abs(sd-2) > 0.05 {
		t.Errorf("sd %v, want ~2", sd)
	}
}

func TestSystemicOffsetsPersist(t *testing.T) {
	p := 64
	off := LinearOffsets(p, 10)
	w := Systemic{Base: IID{N: p, Dist: stats.Normal{Sigma: 0.01}}, Offsets: off}
	r := stats.NewRNG(2)
	dst := make([]float64, p)
	// With tiny noise, the slowest processor must be the one with the
	// largest offset on every iteration.
	for k := 0; k < 20; k++ {
		w.Times(k, r, dst)
		argmax := 0
		for i, v := range dst {
			if v > dst[argmax] {
				argmax = i
			}
		}
		if argmax != p-1 {
			t.Fatalf("iteration %d: slowest proc %d, want %d", k, argmax, p-1)
		}
	}
}

func TestLinearOffsets(t *testing.T) {
	off := LinearOffsets(5, 4)
	want := []float64{-2, -1, 0, 1, 2}
	for i := range want {
		if math.Abs(off[i]-want[i]) > 1e-12 {
			t.Fatalf("offsets %v, want %v", off, want)
		}
	}
	if one := LinearOffsets(1, 4); one[0] != 0 {
		t.Fatal("single processor offset should be 0")
	}
}

func TestEvolvingAutocorrelation(t *testing.T) {
	p := 256
	w := &Evolving{N: p, Dist: stats.Normal{Sigma: 0.1}, Rho: 0.95, InnovSigma: 1}
	r := stats.NewRNG(3)
	prev := make([]float64, p)
	cur := make([]float64, p)
	// Warm up so biases reach stationarity.
	for k := 0; k < 100; k++ {
		w.Times(k, r, cur)
	}
	copy(prev, cur)
	w.Times(100, r, cur)
	if rho := stats.Spearman(prev, cur); rho < 0.7 {
		t.Errorf("evolving workload lag-1 rank correlation %v, want > 0.7", rho)
	}
}

func TestEvolvingZeroRhoIsIID(t *testing.T) {
	p := 512
	w := &Evolving{N: p, Dist: stats.Normal{Sigma: 1}, Rho: 0, InnovSigma: 0}
	r := stats.NewRNG(4)
	a, b := make([]float64, p), make([]float64, p)
	w.Times(0, r, a)
	w.Times(1, r, b)
	if rho := stats.Spearman(a, b); math.Abs(rho) > 0.15 {
		t.Errorf("rho=0 workload correlated across iterations: %v", rho)
	}
}

func TestSampleArrivals(t *testing.T) {
	r := stats.NewRNG(5)
	xs := SampleArrivals(10000, stats.Normal{Sigma: 3}, r)
	if len(xs) != 10000 {
		t.Fatalf("got %d arrivals", len(xs))
	}
	if sd := stats.StdDev(xs); math.Abs(sd-3) > 0.1 {
		t.Errorf("arrival sd %v, want ~3", sd)
	}
}

func TestIteratorSlackZeroDecorrelates(t *testing.T) {
	p := 512
	it := NewIterator(IID{N: p, Dist: stats.Normal{Mu: 1, Sigma: 0.1}}, 0, 6)
	prev := make([]float64, p)
	var rhoSum float64
	const iters = 30
	for k := 0; k < iters; k++ {
		arr := it.Next()
		if k > 0 {
			rhoSum += stats.Spearman(prev, arr)
		}
		copy(prev, arr)
		it.Complete(stats.Max(arr)) // perfect barrier: release at last arrival
	}
	if avg := rhoSum / (iters - 1); math.Abs(avg) > 0.15 {
		t.Errorf("slack-0 lag-1 correlation %v, want ~0", avg)
	}
}

func TestIteratorLargeSlackPersists(t *testing.T) {
	p := 512
	it := NewIterator(IID{N: p, Dist: stats.Normal{Mu: 1, Sigma: 0.1}}, 1e9, 7)
	prev := make([]float64, p)
	var rhoSum float64
	const iters = 30
	for k := 0; k < iters; k++ {
		arr := it.Next()
		if k > 0 {
			rhoSum += stats.Spearman(prev, arr)
		}
		copy(prev, arr)
		it.Complete(stats.Max(arr))
	}
	if avg := rhoSum / (iters - 1); avg < 0.8 {
		t.Errorf("large-slack lag-1 correlation %v, want > 0.8", avg)
	}
}

func TestIteratorSlackZeroArrivalsRestartFromRelease(t *testing.T) {
	p := 8
	it := NewIterator(IID{N: p, Dist: stats.Degenerate{V: 2}}, 0, 8)
	arr := append([]float64(nil), it.Next()...)
	for _, a := range arr {
		if a != 2 {
			t.Fatalf("first arrivals %v, want all 2", arr)
		}
	}
	it.Complete(5) // release with extra synchronization delay
	arr2 := it.Next()
	for _, a := range arr2 {
		if a != 7 {
			t.Fatalf("second arrivals %v, want all 7 (release 5 + work 2)", arr2)
		}
	}
}

func TestIteratorProtocolViolations(t *testing.T) {
	it := NewIterator(IID{N: 2, Dist: stats.Degenerate{V: 1}}, 0, 9)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Complete before Next did not panic")
			}
		}()
		it.Complete(1)
	}()
	it.Next()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Next did not panic")
			}
		}()
		it.Next()
	}()
}

func TestIteratorNegativeSlackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative slack did not panic")
		}
	}()
	NewIterator(IID{N: 1, Dist: stats.Degenerate{V: 1}}, -1, 0)
}

func TestIteratorIterationCounter(t *testing.T) {
	it := NewIterator(IID{N: 2, Dist: stats.Degenerate{V: 1}}, 0, 10)
	if it.Iteration() != 0 {
		t.Fatal("initial iteration != 0")
	}
	arr := it.Next()
	it.Complete(stats.Max(arr))
	if it.Iteration() != 1 {
		t.Fatal("iteration not advanced")
	}
}

func TestWorkloadStrings(t *testing.T) {
	ws := []Workload{
		IID{N: 2, Dist: stats.Normal{}},
		Systemic{Base: IID{N: 2, Dist: stats.Normal{}}, Offsets: []float64{0, 0}},
		&Evolving{N: 2, Dist: stats.Normal{}},
	}
	for _, w := range ws {
		if w.String() == "" {
			t.Errorf("%T empty string", w)
		}
	}
	it := NewIterator(ws[0], 1, 0)
	if it.String() == "" {
		t.Error("iterator empty string")
	}
}
