// Package workload generates the processor execution times that drive the
// barrier study: iid samples per iteration (non-deterministic imbalance),
// persistent per-processor offsets (systemic imbalance), slowly drifting
// offsets (evolving imbalance), and the fuzzy-barrier slack model that
// couples consecutive barrier episodes.
package workload

import (
	"fmt"

	"softbarrier/internal/stats"
)

// Workload produces per-iteration work times for a fixed set of processors.
type Workload interface {
	// P returns the number of processors.
	P() int
	// Times fills dst (length P) with the work times of iteration k,
	// drawing randomness from r. Iterations must be requested in order
	// starting at 0; implementations may keep per-processor state.
	Times(k int, r *stats.RNG, dst []float64)
	// String describes the workload for table captions.
	String() string
}

// IID draws every processor's work time independently from Dist each
// iteration: the paper's non-deterministic load imbalance.
type IID struct {
	N    int
	Dist stats.Distribution
}

// P returns the processor count.
func (w IID) P() int { return w.N }

// Times draws N iid samples.
func (w IID) Times(_ int, r *stats.RNG, dst []float64) {
	for i := range dst[:w.N] {
		dst[i] = w.Dist.Sample(r)
	}
}

func (w IID) String() string { return fmt.Sprintf("iid p=%d %v", w.N, w.Dist) }

// Systemic adds a fixed per-processor offset to a base workload: the
// paper's systemic load imbalance, where the same processors are
// consistently late.
type Systemic struct {
	Base    Workload
	Offsets []float64
}

// P returns the processor count.
func (w Systemic) P() int { return w.Base.P() }

// Times draws base times and adds the fixed offsets.
func (w Systemic) Times(k int, r *stats.RNG, dst []float64) {
	w.Base.Times(k, r, dst)
	for i := range dst[:w.P()] {
		dst[i] += w.Offsets[i]
	}
}

func (w Systemic) String() string { return fmt.Sprintf("systemic over %v", w.Base) }

// LinearOffsets returns p offsets evenly spaced in [-spread/2, spread/2],
// a simple systemic-imbalance profile.
func LinearOffsets(p int, spread float64) []float64 {
	off := make([]float64, p)
	if p == 1 {
		return off
	}
	for i := range off {
		off[i] = spread * (float64(i)/float64(p-1) - 0.5)
	}
	return off
}

// Evolving drifts each processor's bias as an AR(1) process with
// autocorrelation Rho and innovation scale InnovSigma, on top of iid draws
// from Dist: the paper's evolving workload imbalance, "where the workload
// slowly fluctuates from iteration to iteration".
type Evolving struct {
	N          int
	Dist       stats.Distribution
	Rho        float64
	InnovSigma float64

	bias []float64
}

// P returns the processor count.
func (w *Evolving) P() int { return w.N }

// Times draws iid samples plus the drifting per-processor bias.
func (w *Evolving) Times(_ int, r *stats.RNG, dst []float64) {
	if w.bias == nil {
		w.bias = make([]float64, w.N)
	}
	for i := range dst[:w.N] {
		w.bias[i] = w.Rho*w.bias[i] + w.InnovSigma*r.NormFloat64()
		dst[i] = w.Dist.Sample(r) + w.bias[i]
	}
}

func (w *Evolving) String() string {
	return fmt.Sprintf("evolving p=%d %v rho=%g innov=%g", w.N, w.Dist, w.Rho, w.InnovSigma)
}

// SampleArrivals draws a single episode of arrival times for p processors
// iid from dist: the single-barrier experiments of Figs. 2–4 and 9.
func SampleArrivals(p int, dist stats.Distribution, r *stats.RNG) []float64 {
	dst := make([]float64, p)
	for i := range dst {
		dst[i] = dist.Sample(r)
	}
	return dst
}
