// Package workload names the paper's three imbalance regimes — iid samples
// per iteration (non-deterministic imbalance), persistent per-processor
// offsets (systemic imbalance), slowly drifting offsets (evolving
// imbalance) — plus the fuzzy-barrier slack model that couples consecutive
// barrier episodes.
//
// The generators themselves live in internal/loadmodel (the pluggable
// load-imbalance subsystem); this package re-exports them under the
// paper's historical names so the experiment tables keep reading like the
// paper. New imbalance shapes (heavy-tail, bursty, chunk skew, phased
// schedules) are used through loadmodel directly.
package workload

import (
	"softbarrier/internal/loadmodel"
	"softbarrier/internal/stats"
)

// Workload produces per-iteration work times for a fixed set of
// processors. It is loadmodel.Generator under the paper's vocabulary.
type Workload = loadmodel.Generator

// IID draws every processor's work time independently from Dist each
// iteration: the paper's non-deterministic load imbalance.
type IID = loadmodel.IID

// Systemic adds a fixed per-processor offset to a base workload: the
// paper's systemic load imbalance, where the same processors are
// consistently late.
type Systemic = loadmodel.StaticSkew

// Evolving drifts each processor's bias as an AR(1) process: the paper's
// evolving workload imbalance, "where the workload slowly fluctuates from
// iteration to iteration".
type Evolving = loadmodel.Drift

// LinearOffsets returns p offsets evenly spaced in [-spread/2, spread/2],
// a simple systemic-imbalance profile.
func LinearOffsets(p int, spread float64) []float64 {
	return loadmodel.LinearOffsets(p, spread)
}

// SampleArrivals draws a single episode of arrival times for p processors
// iid from dist: the single-barrier experiments of Figs. 2–4 and 9.
func SampleArrivals(p int, dist stats.Distribution, r *stats.RNG) []float64 {
	dst := make([]float64, p)
	for i := range dst {
		dst[i] = dist.Sample(r)
	}
	return dst
}
