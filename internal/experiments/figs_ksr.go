package experiments

import (
	"fmt"

	"softbarrier/internal/barriersim"
	"softbarrier/internal/ksr"
	"softbarrier/internal/sor"
	"softbarrier/internal/topology"
	"softbarrier/internal/workload"
)

// fig12DYs is the d_y sweep of the Fig. 12 reproduction. The paper's exact
// grid is not recoverable from the source text; this grid spans the same
// regime (d_y = 210 is the calibrated §7 configuration).
var fig12DYs = []int{8, 30, 60, 120, 210, 480, 960}

// fig13Slacks is the slack sweep of the Fig. 13 reproduction, in seconds.
var fig13Slacks = []float64{0, 0.25e-3, 0.5e-3, 1e-3, 2e-3, 4e-3}

// ksrDegrees are the tree degrees measurable on the 56-processor machine.
var ksrDegrees = []int{2, 4, 8, 16, 32, 56}

// runKSRWorkload simulates episodes of the SOR timing workload over the
// given ring-constrained tree.
func runKSRWorkload(o Options, m ksr.Machine, tree *topology.Tree, tm *sor.TimingModel, slack float64, dynamic bool, seed uint64) barriersim.RunResult {
	it := workload.NewIterator(tm, slack, seed)
	cfg := barriersim.Config{Tc: m.Tc, Dynamic: dynamic}
	return barriersim.New(tree, cfg).Run(it, o.Warmup, o.Episodes)
}

// fig12Cell is one d_y point of the Fig. 12 grid.
type fig12Cell struct {
	Sigma     float64
	OptDegree int
	Speedup   float64
}

// Fig12 reproduces Figure 12: the measured optimal combining-tree degree
// of the SOR program on the (modelled) 56-processor KSR1, per data size
// d_y, with the measured execution-time standard deviation and the speedup
// of the optimal degree over degree 4.
func Fig12(o Options) *Table {
	t := &Table{
		ID:     "FIG12",
		Title:  "SOR on modelled KSR1, 56 procs, dx=60: optimal degree per dy",
		Header: []string{"dy", "σ (µs)", "σ/tc", "opt degree", "speedup vs d=4"},
	}
	m := ksr.New56()
	cells := grid(o, "fig12", gridKeys("ksr56 sor dx=60 dy=%d", fig12DYs),
		func(i int, seed uint64) fig12Cell {
			dy := fig12DYs[i]
			tm := sor.NewTimingModel(m, 60, dy)
			sigma := tm.MeasuredSigma(200, o.Seed)
			// The degrees share one seed: paired comparisons, as in the
			// root degree sweep.
			var results []barriersim.DegreeResult
			for _, d := range ksrDegrees {
				rr := runKSRWorkload(o, m, m.Tree(d), tm, 0, false, seed)
				results = append(results, barriersim.DegreeResult{Degree: d, MeanSync: rr.MeanSync})
			}
			best := barriersim.Best(results)
			d4, _ := barriersim.DelayOf(results, 4)
			return fig12Cell{Sigma: sigma, OptDegree: best.Degree, Speedup: d4 / best.MeanSync}
		})
	for i, dy := range fig12DYs {
		c := cells[i]
		t.AddRow(fmt.Sprintf("%d", dy), us(c.Sigma), fmt.Sprintf("%.1f", c.Sigma/m.Tc),
			fmt.Sprintf("%d", c.OptDegree), fmt.Sprintf("%.2f", c.Speedup))
	}
	t.AddNote("paper shape: σ grows with dy; the optimal degree rises from 4 to 32 and the speedup from 1.00 to ≈1.23")
	return t
}

// Fig13Row is one measured configuration of Figure 13.
type Fig13Row struct {
	Degree    int
	Slack     float64
	LastDepth float64
	Speedup   float64
}

// Fig13Data measures dynamic vs static placement for the SOR workload
// (d_y = 210) on ring-constrained trees, one sweep point per
// (degree, slack) pair.
func Fig13Data(o Options, degrees []int) []Fig13Row {
	m := ksr.New56()
	tm := sor.NewTimingModel(m, 60, 210)
	type point struct {
		Degree int
		Slack  float64
	}
	var points []point
	var keys []string
	for _, d := range degrees {
		for _, slack := range fig13Slacks {
			points = append(points, point{d, slack})
			keys = append(keys, fmt.Sprintf("ksr56 sor dy=210 d=%d slack=%g", d, slack))
		}
	}
	return grid(o, "fig13", keys, func(i int, seed uint64) Fig13Row {
		pt := points[i]
		tree := m.Tree(pt.Degree)
		static := runKSRWorkload(o, m, tree, tm, pt.Slack, false, seed)
		dynamic := runKSRWorkload(o, m, tree, tm, pt.Slack, true, seed)
		return Fig13Row{
			Degree:    pt.Degree,
			Slack:     pt.Slack,
			LastDepth: dynamic.MeanLastDepth,
			Speedup:   static.MeanSync / dynamic.MeanSync,
		}
	})
}

// Fig13 reproduces Figure 13: dynamic placement of the SOR program on the
// modelled KSR1 (d_y = 210, σ ≈ 110µs), for tree degrees 2, 4 and 16,
// across fuzzy-barrier slacks. Placement never crosses ring boundaries.
func Fig13(o Options) *Table {
	t := &Table{
		ID:     "FIG13",
		Title:  "SOR dynamic placement on modelled KSR1 (56 procs, dy=210)",
		Header: []string{"degree", "metric"},
	}
	for _, s := range fig13Slacks {
		t.Header = append(t.Header, fmt.Sprintf("slack %gms", s*1e3))
	}
	degrees := []int{2, 4, 16}
	rows := Fig13Data(o, degrees)
	i := 0
	for _, d := range degrees {
		depth := []string{fmt.Sprintf("%d", d), "last proc depth"}
		speed := []string{"", "sync speedup"}
		for range fig13Slacks {
			r := rows[i]
			i++
			depth = append(depth, fmt.Sprintf("%.2f", r.LastDepth))
			speed = append(speed, fmt.Sprintf("%.2f", r.Speedup))
		}
		t.AddRow(depth...)
		t.AddRow(speed...)
	}
	t.AddNote("paper: depth 4.38→1.67 (d=2) and 2.88→1.24 (d=16); dynamic placement loses slightly below ≈1ms slack and wins up to 1.73 (d=2) / 1.32 (d=16) beyond")
	return t
}
