package experiments

import (
	"fmt"

	"softbarrier/internal/sweep"
)

// grid runs one independent simulation per key on the options' engine
// (nil runs the points sequentially) and returns the results in key
// order. Every key is suffixed with the harness fidelity (episodes,
// warm-up), so callers only encode the parameters of their own grid; the
// engine's cache addressing adds the derived seed. Results are
// engine-independent: see internal/sweep for the determinism contract.
func grid[R any](o Options, name string, keys []string, fn sweep.PointFunc[R]) []R {
	full := make([]string, len(keys))
	for i, k := range keys {
		full[i] = fmt.Sprintf("%s episodes=%d warmup=%d", k, o.Episodes, o.Warmup)
	}
	return sweep.Run(o.Engine, sweep.Spec{Name: name, Keys: full, BaseSeed: o.Seed}, fn)
}

// gridKeys formats one key per element of a grid axis (or pre-flattened
// grid) with the given format applied to each element.
func gridKeys[T any](format string, axis []T) []string {
	keys := make([]string, len(axis))
	for i, v := range axis {
		keys[i] = fmt.Sprintf(format, v)
	}
	return keys
}
