package experiments

import (
	"fmt"

	"softbarrier/internal/barriersim"
	"softbarrier/internal/stats"
	"softbarrier/internal/topology"
	"softbarrier/internal/workload"
)

// fig8Sigma is the arrival spread of the §5 experiments: 0.25 ms.
const fig8Sigma = 0.25e-3

// fig8Slacks are the fuzzy-barrier slacks of Figure 8, in seconds.
var fig8Slacks = []float64{0, 1e-3, 2e-3, 4e-3, 16e-3}

// Fig5 reproduces the §5 persistence observation (Figure 5): with fuzzy
// slack, a processor that is slow now remains slow for many iterations.
// It reports the Spearman rank correlation between the arrival orders of
// iterations k and k+lag, under the slack iteration model with a perfect
// (zero-delay) barrier.
func Fig5(o Options) *Table {
	t := &Table{
		ID:     "FIG5",
		Title:  "arrival-order rank correlation vs iteration lag (p=4096, σ=0.25ms)",
		Header: []string{"slack (ms)"},
	}
	lags := []int{1, 2, 5, 10, 20}
	for _, lag := range lags {
		t.Header = append(t.Header, fmt.Sprintf("lag %d", lag))
	}
	const p = 4096
	iters := o.Warmup + o.Episodes
	if iters < 40 {
		iters = 40
	}
	for _, slack := range []float64{0, 1e-3, 4e-3, 16e-3} {
		it := workload.NewIterator(workload.IID{N: p, Dist: stats.Normal{Sigma: fig8Sigma}}, slack, o.Seed+uint64(slack*1e6))
		history := make([][]float64, 0, iters)
		for k := 0; k < iters; k++ {
			arr := it.Next()
			history = append(history, append([]float64(nil), arr...))
			it.Complete(stats.Max(arr)) // perfect barrier
		}
		row := []string{fmt.Sprintf("%g", slack*1e3)}
		for _, lag := range lags {
			sum, n := 0.0, 0
			for k := o.Warmup; k+lag < len(history); k++ {
				sum += stats.Spearman(history[k], history[k+lag])
				n++
			}
			row = append(row, fmt.Sprintf("%.2f", sum/float64(n)))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper shape: slack 0 gives no persistence (correlation ≈0); large slack keeps slow processors slow for ≥20 iterations")
	return t
}

// Fig8Row is one measured configuration of Figure 8.
type Fig8Row struct {
	Degree       int
	Slack        float64
	LastDepth    float64 // dynamic placement, mean releaser depth
	Speedup      float64 // static delay / dynamic delay
	CommOverhead float64
	StaticDepth  float64
}

// Fig8Data measures the dynamic-placement barrier against static placement
// for 4K processors over the slack grid.
func Fig8Data(o Options, degrees []int, p int) []Fig8Row {
	var rows []Fig8Row
	dist := stats.Normal{Sigma: fig8Sigma}
	for _, d := range degrees {
		tree := topology.NewMCS(p, d)
		for _, slack := range fig8Slacks {
			seed := o.Seed + uint64(d*1000) + uint64(slack*1e6)
			mkIter := func() *workload.Iterator {
				return workload.NewIterator(workload.IID{N: p, Dist: dist}, slack, seed)
			}
			static := barriersim.New(tree, barriersim.Config{}).Run(mkIter(), o.Warmup, o.Episodes)
			dynamic := barriersim.New(tree, barriersim.Config{Dynamic: true}).Run(mkIter(), o.Warmup, o.Episodes)
			rows = append(rows, Fig8Row{
				Degree:       d,
				Slack:        slack,
				LastDepth:    dynamic.MeanLastDepth,
				Speedup:      static.MeanSync / dynamic.MeanSync,
				CommOverhead: dynamic.CommOverhead,
				StaticDepth:  static.MeanLastDepth,
			})
		}
	}
	return rows
}

// Fig8 reproduces Figure 8: last-processor depth, synchronization speedup
// over static placement, and communication overhead of the dynamic
// placement barrier for 4K processors, degrees 4 and 16, across slacks.
func Fig8(o Options) *Table {
	t := &Table{
		ID:     "FIG8",
		Title:  "dynamic placement, 4K procs, σ=0.25ms",
		Header: []string{"degree", "metric"},
	}
	for _, s := range fig8Slacks {
		t.Header = append(t.Header, fmt.Sprintf("slack %gms", s*1e3))
	}
	rows := Fig8Data(o, []int{4, 16}, 4096)
	i := 0
	for _, d := range []int{4, 16} {
		depth := []string{fmt.Sprintf("%d", d), "last proc depth"}
		speed := []string{"", "sync speedup"}
		comm := []string{"", "comm overhead"}
		for range fig8Slacks {
			r := rows[i]
			i++
			depth = append(depth, fmt.Sprintf("%.2f", r.LastDepth))
			speed = append(speed, fmt.Sprintf("%.2f", r.Speedup))
			comm = append(comm, fmt.Sprintf("%.3f", r.CommOverhead))
		}
		t.AddRow(depth...)
		t.AddRow(speed...)
		t.AddRow(comm...)
	}
	t.AddNote("paper: depth 5.85→1.24 (d=4) and 2.99→1.21 (d=16); speedup 1.00→4.71 and 0.99→2.45; comm overhead ≤1.09, shrinking with slack")
	return t
}
