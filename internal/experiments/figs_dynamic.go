package experiments

import (
	"fmt"

	"softbarrier/internal/barriersim"
	"softbarrier/internal/stats"
	"softbarrier/internal/topology"
	"softbarrier/internal/workload"
)

// fig8Sigma is the arrival spread of the §5 experiments: 0.25 ms.
const fig8Sigma = 0.25e-3

// fig8Slacks are the fuzzy-barrier slacks of Figure 8, in seconds.
var fig8Slacks = []float64{0, 1e-3, 2e-3, 4e-3, 16e-3}

// fig5Slacks is the slack axis of Figure 5, in seconds.
var fig5Slacks = []float64{0, 1e-3, 4e-3, 16e-3}

// fig5Lags is the iteration-lag axis of Figure 5.
var fig5Lags = []int{1, 2, 5, 10, 20}

// Fig5 reproduces the §5 persistence observation (Figure 5): with fuzzy
// slack, a processor that is slow now remains slow for many iterations.
// It reports the Spearman rank correlation between the arrival orders of
// iterations k and k+lag, under the slack iteration model with a perfect
// (zero-delay) barrier.
func Fig5(o Options) *Table {
	t := &Table{
		ID:     "FIG5",
		Title:  "arrival-order rank correlation vs iteration lag (p=4096, σ=0.25ms)",
		Header: []string{"slack (ms)"},
	}
	for _, lag := range fig5Lags {
		t.Header = append(t.Header, fmt.Sprintf("lag %d", lag))
	}
	const p = 4096
	iters := o.Warmup + o.Episodes
	if iters < 40 {
		iters = 40
	}
	rows := grid(o, "fig5", gridKeys(fmt.Sprintf("p=%d sigma=%g slack=%%g", p, fig8Sigma), fig5Slacks),
		func(i int, seed uint64) []float64 {
			it := workload.NewIterator(workload.IID{N: p, Dist: stats.Normal{Sigma: fig8Sigma}}, fig5Slacks[i], seed)
			history := make([][]float64, 0, iters)
			for k := 0; k < iters; k++ {
				arr := it.Next()
				history = append(history, append([]float64(nil), arr...))
				it.Complete(stats.Max(arr)) // perfect barrier
			}
			corrs := make([]float64, 0, len(fig5Lags))
			for _, lag := range fig5Lags {
				sum, n := 0.0, 0
				for k := o.Warmup; k+lag < len(history); k++ {
					sum += stats.Spearman(history[k], history[k+lag])
					n++
				}
				corrs = append(corrs, sum/float64(n))
			}
			return corrs
		})
	for i, slack := range fig5Slacks {
		row := []string{fmt.Sprintf("%g", slack*1e3)}
		for _, c := range rows[i] {
			row = append(row, fmt.Sprintf("%.2f", c))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper shape: slack 0 gives no persistence (correlation ≈0); large slack keeps slow processors slow for ≥20 iterations")
	return t
}

// Fig8Row is one measured configuration of Figure 8.
type Fig8Row struct {
	Degree       int
	Slack        float64
	LastDepth    float64 // dynamic placement, mean releaser depth
	Speedup      float64 // static delay / dynamic delay
	CommOverhead float64
	StaticDepth  float64
}

// Fig8Data measures the dynamic-placement barrier against static placement
// for p processors over the slack grid, one sweep point per
// (degree, slack) pair.
func Fig8Data(o Options, degrees []int, p int) []Fig8Row {
	dist := stats.Normal{Sigma: fig8Sigma}
	type point struct {
		Degree int
		Slack  float64
	}
	var points []point
	var keys []string
	for _, d := range degrees {
		for _, slack := range fig8Slacks {
			points = append(points, point{d, slack})
			keys = append(keys, fmt.Sprintf("p=%d d=%d sigma=%g slack=%g mcs", p, d, fig8Sigma, slack))
		}
	}
	return grid(o, "fig8", keys, func(i int, seed uint64) Fig8Row {
		pt := points[i]
		tree := topology.NewMCS(p, pt.Degree)
		mkIter := func() *workload.Iterator {
			return workload.NewIterator(workload.IID{N: p, Dist: dist}, pt.Slack, seed)
		}
		static := barriersim.New(tree, barriersim.Config{}).Run(mkIter(), o.Warmup, o.Episodes)
		dynamic := barriersim.New(tree, barriersim.Config{Dynamic: true}).Run(mkIter(), o.Warmup, o.Episodes)
		return Fig8Row{
			Degree:       pt.Degree,
			Slack:        pt.Slack,
			LastDepth:    dynamic.MeanLastDepth,
			Speedup:      static.MeanSync / dynamic.MeanSync,
			CommOverhead: dynamic.CommOverhead,
			StaticDepth:  static.MeanLastDepth,
		}
	})
}

// Fig8 reproduces Figure 8: last-processor depth, synchronization speedup
// over static placement, and communication overhead of the dynamic
// placement barrier for 4K processors, degrees 4 and 16, across slacks.
func Fig8(o Options) *Table {
	t := &Table{
		ID:     "FIG8",
		Title:  "dynamic placement, 4K procs, σ=0.25ms",
		Header: []string{"degree", "metric"},
	}
	for _, s := range fig8Slacks {
		t.Header = append(t.Header, fmt.Sprintf("slack %gms", s*1e3))
	}
	rows := Fig8Data(o, []int{4, 16}, 4096)
	i := 0
	for _, d := range []int{4, 16} {
		depth := []string{fmt.Sprintf("%d", d), "last proc depth"}
		speed := []string{"", "sync speedup"}
		comm := []string{"", "comm overhead"}
		for range fig8Slacks {
			r := rows[i]
			i++
			depth = append(depth, fmt.Sprintf("%.2f", r.LastDepth))
			speed = append(speed, fmt.Sprintf("%.2f", r.Speedup))
			comm = append(comm, fmt.Sprintf("%.3f", r.CommOverhead))
		}
		t.AddRow(depth...)
		t.AddRow(speed...)
		t.AddRow(comm...)
	}
	t.AddNote("paper: depth 5.85→1.24 (d=4) and 2.99→1.21 (d=16); speedup 1.00→4.71 and 0.99→2.45; comm overhead ≤1.09, shrinking with slack")
	return t
}
