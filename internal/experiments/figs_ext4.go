package experiments

import (
	"fmt"

	"softbarrier/internal/ksr"
	"softbarrier/internal/sor"
)

// Ext6 scales the §7 SOR experiment from the 56-processor machine the
// authors could measure to a full-size KSR1 (34 rings of 32 processors =
// 1088, the machine's maximum configuration), asking whether the paper's
// conclusion — software barriers scale when the degree fits the imbalance
// and dynamic placement exploits slack — survives a 19× larger,
// ring-constrained system. Workload: the calibrated SOR timing model
// (d_x=60, d_y=210, σ≈110µs).
func Ext6(o Options) *Table {
	t := &Table{
		ID:     "EXT6",
		Title:  "full-size KSR1 (34×32 = 1088 procs), SOR dy=210: degree sweep + dynamic placement",
		Header: []string{"degree", "static delay (ms)", "dynamic delay (ms)", "speedup", "dyn last depth"},
	}
	rings := make([]int, 34)
	for i := range rings {
		rings[i] = 32
	}
	m := ksr.New56()
	m.Rings = rings
	tm := sor.NewTimingModel(m, 60, 210)
	const slack = 4e-3
	bestStatic, bestDegree := -1.0, 0
	for _, d := range []int{4, 8, 16, 32} {
		tree := m.Tree(d)
		seed := o.Seed + uint64(d)
		static := runKSRWorkload(o, m, tree, tm, slack, false, seed)
		dynamic := runKSRWorkload(o, m, tree, tm, slack, true, seed)
		t.AddRow(fmt.Sprintf("%d", d), ms(static.MeanSync), ms(dynamic.MeanSync),
			fmt.Sprintf("%.2f", static.MeanSync/dynamic.MeanSync),
			fmt.Sprintf("%.2f", dynamic.MeanLastDepth))
		if bestStatic < 0 || static.MeanSync < bestStatic {
			bestStatic, bestDegree = static.MeanSync, d
		}
	}
	t.AddNote("static optimum at degree %d; dynamic placement keeps the last-processor depth near the ring floor, so the 19× larger machine pays barely more than the 56-processor one", bestDegree)
	return t
}
