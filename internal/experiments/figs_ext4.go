package experiments

import (
	"fmt"

	"softbarrier/internal/ksr"
	"softbarrier/internal/sor"
)

// ext6Degrees is the degree axis of the EXT6 scale-out.
var ext6Degrees = []int{4, 8, 16, 32}

// ext6Cell is one degree point of the EXT6 grid.
type ext6Cell struct {
	Static  float64
	Dynamic float64
	LastDep float64
}

// Ext6 scales the §7 SOR experiment from the 56-processor machine the
// authors could measure to a full-size KSR1 (34 rings of 32 processors =
// 1088, the machine's maximum configuration), asking whether the paper's
// conclusion — software barriers scale when the degree fits the imbalance
// and dynamic placement exploits slack — survives a 19× larger,
// ring-constrained system. Workload: the calibrated SOR timing model
// (d_x=60, d_y=210, σ≈110µs).
func Ext6(o Options) *Table {
	t := &Table{
		ID:     "EXT6",
		Title:  "full-size KSR1 (34×32 = 1088 procs), SOR dy=210: degree sweep + dynamic placement",
		Header: []string{"degree", "static delay (ms)", "dynamic delay (ms)", "speedup", "dyn last depth"},
	}
	rings := make([]int, 34)
	for i := range rings {
		rings[i] = 32
	}
	m := ksr.New56()
	m.Rings = rings
	tm := sor.NewTimingModel(m, 60, 210)
	const slack = 4e-3
	cells := grid(o, "ext6", gridKeys("ksr34x32 sor dy=210 slack=4ms d=%d", ext6Degrees),
		func(i int, seed uint64) ext6Cell {
			d := ext6Degrees[i]
			static := runKSRWorkload(o, m, m.Tree(d), tm, slack, false, seed)
			dynamic := runKSRWorkload(o, m, m.Tree(d), tm, slack, true, seed)
			return ext6Cell{Static: static.MeanSync, Dynamic: dynamic.MeanSync,
				LastDep: dynamic.MeanLastDepth}
		})
	bestStatic, bestDegree := -1.0, 0
	for i, d := range ext6Degrees {
		c := cells[i]
		t.AddRow(fmt.Sprintf("%d", d), ms(c.Static), ms(c.Dynamic),
			fmt.Sprintf("%.2f", c.Static/c.Dynamic),
			fmt.Sprintf("%.2f", c.LastDep))
		if bestStatic < 0 || c.Static < bestStatic {
			bestStatic, bestDegree = c.Static, d
		}
	}
	t.AddNote("static optimum at degree %d; dynamic placement keeps the last-processor depth near the ring floor, so the 19× larger machine pays barely more than the 56-processor one", bestDegree)
	return t
}
