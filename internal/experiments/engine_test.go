package experiments

import (
	"runtime"
	"testing"

	"softbarrier/internal/sweep"
)

// tablesJSON renders a set of representative experiments under the given
// engine. The chosen runners cover the distinct grid shapes: paired degree
// sweeps (FIG3), coupled static/dynamic pairs (FIG10), baseline
// comparisons (EXT1) and distribution grids (EXT4).
func tablesJSON(t *testing.T, o Options) string {
	t.Helper()
	out := ""
	for _, run := range []Runner{Fig3, Fig10, Ext1, Ext4} {
		s, err := run(o).JSON()
		if err != nil {
			t.Fatal(err)
		}
		out += s + "\n"
	}
	return out
}

// TestEngineDeterminism is the acceptance criterion of the sweep engine at
// the experiment layer: the rendered tables are byte-identical for
// sequential execution, workers=1, workers=4 and workers=GOMAXPROCS.
func TestEngineDeterminism(t *testing.T) {
	o := Options{Episodes: 8, Warmup: 3, Seed: 7}
	want := tablesJSON(t, o)
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		po := o
		po.Engine = &sweep.Engine{Workers: workers}
		if got := tablesJSON(t, po); got != want {
			t.Errorf("workers=%d: tables differ from sequential run", workers)
		}
	}
}

// TestEngineCacheRoundTrip re-runs an experiment against a warm cache and
// requires every grid point to hit with unchanged output.
func TestEngineCacheRoundTrip(t *testing.T) {
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Episodes: 8, Warmup: 3, Seed: 7, Engine: &sweep.Engine{Workers: 2, Cache: cache}}
	cold, err := Fig3(o).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if cache.Hits() != 0 || cache.Misses() == 0 {
		t.Fatalf("cold run: hits=%d misses=%d", cache.Hits(), cache.Misses())
	}
	points := cache.Misses()
	warm, err := Fig3(o).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if warm != cold {
		t.Error("cached table differs from computed table")
	}
	if cache.Hits() != points {
		t.Errorf("warm run hit %d of %d points", cache.Hits(), points)
	}

	// Changing the fidelity must change the keys, not resurface stale rows.
	o.Episodes++
	if _, err := Fig3(o).JSON(); err != nil {
		t.Fatal(err)
	}
	if cache.Misses() != 2*points {
		t.Errorf("episodes bump reused stale cache entries: misses=%d want %d", cache.Misses(), 2*points)
	}
}
