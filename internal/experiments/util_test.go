package experiments

import "fmt"

// fmtSscan wraps fmt.Sscan so tests can parse formatted table cells.
func fmtSscan(s string, out ...interface{}) (int, error) {
	return fmt.Sscan(s, out...)
}
