// Package experiments reproduces every table and figure of the paper's
// evaluation. Each runner returns a Table whose rows mirror the paper's
// presentation; cmd/experiments renders them all and EXPERIMENTS.md records
// the paper-vs-measured comparison.
//
// Runners take an Options value so benchmarks can trade replication count
// against runtime; DefaultOptions matches the fidelity used for the
// recorded results.
package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"softbarrier/internal/sweep"
)

// Options tunes the experiment harness.
type Options struct {
	// Episodes is the number of measured barrier episodes per
	// configuration.
	Episodes int
	// Warmup is the number of discarded leading episodes for runs with
	// cross-episode state (dynamic placement, slack feedback).
	Warmup int
	// Seed is the base PRNG seed; every configuration derives from it
	// deterministically.
	Seed uint64
	// Engine executes each experiment's parameter grid; nil runs the grid
	// points sequentially. Tables are bit-identical for every engine
	// configuration (see internal/sweep).
	Engine *sweep.Engine
}

// DefaultOptions is the fidelity used for the recorded EXPERIMENTS.md
// results.
func DefaultOptions() Options {
	return Options{Episodes: 100, Warmup: 20, Seed: 1995}
}

// Scaled returns a copy with episode counts scaled by f (minimum 5/2).
func (o Options) Scaled(f float64) Options {
	o.Episodes = int(float64(o.Episodes) * f)
	if o.Episodes < 5 {
		o.Episodes = 5
	}
	o.Warmup = int(float64(o.Warmup) * f)
	if o.Warmup < 2 {
		o.Warmup = 2
	}
	return o
}

// Table is one reproduced figure or table. Its JSON form (field names in
// lower case) is stable and intended for regression diffing via
// cmd/experiments -json.
type Table struct {
	// ID is the experiment identifier (e.g. "FIG3").
	ID string `json:"id"`
	// Title restates what the paper artifact shows.
	Title string `json:"title"`
	// Header names the columns.
	Header []string `json:"header"`
	// Rows holds the formatted cells.
	Rows [][]string `json:"rows"`
	// Notes carries shape observations and caveats.
	Notes []string `json:"notes,omitempty"`
}

// JSON renders the table as indented JSON.
func (t *Table) JSON() (string, error) {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a formatted note.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

// ms formats a duration in seconds as milliseconds with three decimals.
func ms(sec float64) string { return fmt.Sprintf("%.3f", sec*1e3) }

// us formats a duration in seconds as microseconds with one decimal.
func us(sec float64) string { return fmt.Sprintf("%.1f", sec*1e6) }
