package experiments

import (
	"strings"
	"testing"
)

func demoTable() *Table {
	t := &Table{ID: "T", Header: []string{"x", "y1", "y2"}}
	t.AddRow("1", "10", "1 (0.5)")
	t.AddRow("2", "20", "2 (0.6)")
	t.AddRow("4", "40", "3 (0.7)")
	return t
}

func TestPlotRendersCurves(t *testing.T) {
	tab := demoTable()
	out, err := tab.Plot(PlotSpec{XCol: 0, YCols: []int{1, 2}, Title: "demo"}, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a = y1", "b = y2", "demo", "┤"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Error("curve marks missing")
	}
}

func TestPlotLogX(t *testing.T) {
	tab := demoTable()
	out, err := tab.Plot(PlotSpec{XCol: 0, YCols: []int{1}, LogX: true}, 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Log-2 spacing of x = 1, 2, 4 is uniform: the marks on a 40-wide grid
	// land at columns 0, ~19/20, 39. Verify the middle mark is centered.
	lines := strings.Split(out, "\n")
	for _, line := range lines {
		if i := strings.IndexByte(line, 'a'); i >= 0 {
			bar := strings.IndexAny(line, "│┤")
			col := i - bar - len("│") + 1
			_ = col // positions checked loosely below
		}
	}
	if !strings.Contains(out, "4") {
		t.Error("x-axis labels missing")
	}
}

func TestPlotParsesCompositeCells(t *testing.T) {
	// "1 (0.5)" must parse as 1.
	tab := demoTable()
	if _, err := tab.Plot(PlotSpec{XCol: 0, YCols: []int{2}}, 30, 6); err != nil {
		t.Fatal(err)
	}
}

func TestPlotErrors(t *testing.T) {
	empty := &Table{ID: "E", Header: []string{"x", "y"}}
	if _, err := empty.Plot(PlotSpec{XCol: 0, YCols: []int{1}}, 30, 6); err == nil {
		t.Error("empty table accepted")
	}
	bad := &Table{ID: "B", Header: []string{"x", "y"}}
	bad.AddRow("foo", "1")
	if _, err := bad.Plot(PlotSpec{XCol: 0, YCols: []int{1}}, 30, 6); err == nil {
		t.Error("unparseable x accepted")
	}
	neg := &Table{ID: "N", Header: []string{"x", "y"}}
	neg.AddRow("-1", "1")
	if _, err := neg.Plot(PlotSpec{XCol: 0, YCols: []int{1}, LogX: true}, 30, 6); err == nil {
		t.Error("log of non-positive x accepted")
	}
	badY := &Table{ID: "Y", Header: []string{"x", "y"}}
	badY.AddRow("1", "zzz")
	if _, err := badY.Plot(PlotSpec{XCol: 0, YCols: []int{1}}, 30, 6); err == nil {
		t.Error("unparseable y accepted")
	}
}

func TestPlotDegenerateRanges(t *testing.T) {
	flat := &Table{ID: "F", Header: []string{"x", "y"}}
	flat.AddRow("1", "5")
	flat.AddRow("1", "5")
	out, err := flat.Plot(PlotSpec{XCol: 0, YCols: []int{1}}, 5, 2) // sizes clamp to 20×5
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Fatal("empty plot")
	}
}

func TestSpecForKnownFigures(t *testing.T) {
	for _, id := range []string{"FIG9", "FIG10", "FIG11", "EXT1", "EXT2"} {
		if _, ok := SpecFor(id); !ok {
			t.Errorf("no plot spec for %s", id)
		}
	}
	if _, ok := SpecFor("EQ1"); ok {
		t.Error("EQ1 should have no plot spec")
	}
}

func TestRegisteredSpecsRenderOnRealTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs figure experiments")
	}
	o := Options{Episodes: 5, Warmup: 2, Seed: 7}
	for id, spec := range plotSpecs {
		runner, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		tab := runner(o)
		if _, err := tab.Plot(spec, 60, 12); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
}
