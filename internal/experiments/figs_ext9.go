package experiments

import (
	"fmt"

	"softbarrier/internal/barriersim"
	"softbarrier/internal/loadmodel"
	"softbarrier/internal/stats"
	"softbarrier/internal/topology"
)

// ext9P is the processor count of the EXT9 comparison — the PR-6 σ-aware
// placement baseline shape (p=15 MCS tree of degree 2).
const ext9P = 15

// ext9Workloads are the imbalance regimes the placement policies face.
// Generators are stateful, so each grid point constructs its own.
var ext9Workloads = []struct {
	name string
	mk   func() loadmodel.Generator
}{
	{"2-straggler", func() loadmodel.Generator {
		off := make([]float64, ext9P)
		off[3], off[11] = 500e-6, 300e-6
		return loadmodel.StaticSkew{
			Base:    loadmodel.IID{N: ext9P, Dist: stats.Normal{Sigma: 20e-6}},
			Offsets: off,
		}
	}},
	{"linear+noise", func() loadmodel.Generator {
		return loadmodel.StaticSkew{
			Base:    loadmodel.IID{N: ext9P, Dist: stats.Normal{Sigma: 150e-6}},
			Offsets: loadmodel.LinearOffsets(ext9P, 400e-6),
		}
	}},
	{"drift", func() loadmodel.Generator {
		return &loadmodel.Drift{
			N: ext9P, Dist: stats.Normal{Sigma: 50e-6},
			Rho: 0.95, InnovSigma: 40e-6,
		}
	}},
	{"bursty", func() loadmodel.Generator {
		return &loadmodel.Bursty{
			Base:  loadmodel.IID{N: ext9P, Dist: stats.Normal{Sigma: 20e-6}},
			Extra: 400e-6, OnProb: 0.05, StayProb: 0.9,
		}
	}},
}

// ext9Policies are the placement-policy columns, by registry name.
var ext9Policies = []string{"static", "reactive", "ewma", "trend", "ewma-hys"}

// ext9Cell is one (workload, policy) measurement.
type ext9Cell struct {
	Sync     float64
	Rebuilds int
}

// Ext9 compares the predictive straggler-placement policies across
// imbalance regimes: each policy observes every episode's arrival lags
// and periodically rebuilds the p=15 degree-2 MCS tree with its
// laggiest-first ranking in the shallowest slots (barriersim.
// RunPlacement). The 2-straggler row is the PR-6 σ-aware placement
// baseline (static ≈80µs vs placed ≈20µs, 4×), now reached by the
// policies at run time instead of a hand-fed lag profile. On systemic
// skew with σ-scale noise, the EWMA and trend policies beat reactive's
// noise-chasing; under drift the history policies track the moving
// stragglers; bursty imbalance is near-unpredictable, bounding what any
// placement can do.
func Ext9(o Options) *Table {
	t := &Table{
		ID:     "EXT9",
		Title:  "predictive straggler placement: mean sync delay by policy (µs, 15 procs MCS d=2)",
		Header: append([]string{"workload"}, ext9Policies...),
	}
	var keys []string
	type point struct{ w, pol int }
	var points []point
	for wi, w := range ext9Workloads {
		for pi, pol := range ext9Policies {
			points = append(points, point{wi, pi})
			keys = append(keys, fmt.Sprintf("p=%d d=2 mcs workload=%s placement=%s replan=5", ext9P, w.name, pol))
		}
	}
	cells := grid(o, "ext9", keys, func(i int, seed uint64) ext9Cell {
		pt := points[i]
		mkPol, ok := loadmodel.PolicyByName(ext9Policies[pt.pol])
		if !ok {
			panic("ext9: unknown policy " + ext9Policies[pt.pol])
		}
		tree := topology.NewMCS(ext9P, 2)
		pr := barriersim.RunPlacement(tree, barriersim.Config{},
			ext9Workloads[pt.w].mk(), mkPol(), 5, o.Warmup, o.Episodes, seed)
		return ext9Cell{Sync: pr.MeanSync, Rebuilds: pr.Rebuilds}
	})
	i := 0
	for _, w := range ext9Workloads {
		row := []string{w.name}
		for range ext9Policies {
			c := cells[i]
			i++
			row = append(row, fmt.Sprintf("%.1f (%d)", c.Sync*1e6, c.Rebuilds))
		}
		t.AddRow(row...)
	}
	t.AddNote("entries are mean sync delay in µs (placement rebuilds in parens); stragglers placed shallowest every 5 episodes; the 2-straggler row reproduces the 4× static-vs-placed baseline")
	return t
}
