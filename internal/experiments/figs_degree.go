package experiments

import (
	"fmt"

	"softbarrier/internal/barriersim"
	"softbarrier/internal/model"
	"softbarrier/internal/stats"
	"softbarrier/internal/topology"
)

// Tc is the counter update time used throughout, the paper's 20µs.
const Tc = barriersim.DefaultTc

// SigmaGrid is the load-imbalance grid of Figs. 3 and 4, in units of t_c.
var SigmaGrid = []float64{0, 1.6, 6.2, 12.5, 25, 50}

// ProcGrid is the system-size grid of Figs. 3 and 4.
var ProcGrid = []int{64, 256, 4096}

// procSigmaGrid flattens ProcGrid × SigmaGrid in row-major order, the
// point order shared by Figs. 3 and 4.
func procSigmaGrid() (points []struct {
	P     int
	Sigma float64
}, keys []string) {
	for _, p := range ProcGrid {
		for _, s := range SigmaGrid {
			points = append(points, struct {
				P     int
				Sigma float64
			}{p, s})
			keys = append(keys, fmt.Sprintf("p=%d sigma=%gtc", p, s))
		}
	}
	return points, keys
}

// fig2Cell is the simulated half of one FIG2 row.
type fig2Cell struct {
	Levels                   int
	Update, Contention, Sync float64
}

// fig2Degrees is the degree axis of Figure 2.
var fig2Degrees = []int{2, 4, 8, 16, 32, 64}

// Fig2 reproduces Figure 2: simulated vs. approximated synchronization
// delay per combining-tree degree for 4K processors at σ = 0.25 ms
// (12.5·t_c). The simulated bar splits into update and contention delay;
// the approximation exists only for full-tree degrees, so degree 32 has no
// estimate — exactly as in the paper.
func Fig2(o Options) *Table {
	t := &Table{
		ID:     "FIG2",
		Title:  "sync delay per degree, 4K procs, σ=0.25ms (ms)",
		Header: []string{"degree", "depth", "sim update", "sim contention", "sim total", "model"},
	}
	const p = 4096
	sigma := 12.5 * Tc
	// Every degree reuses the base seed: common random numbers keep the
	// per-degree comparison paired.
	cells := grid(o, "fig2", gridKeys("p=4096 sigma=12.5tc d=%d", fig2Degrees),
		func(i int, _ uint64) fig2Cell {
			tree := topology.NewClassic(p, fig2Degrees[i])
			rr := barriersim.RunIID(tree, barriersim.Config{}, stats.Normal{Sigma: sigma}, o.Episodes, o.Seed)
			return fig2Cell{Levels: tree.Levels, Update: rr.MeanUpdate, Contention: rr.MeanContention, Sync: rr.MeanSync}
		})
	estOf := model.EstimateByDegree(p, sigma, Tc)
	for i, d := range fig2Degrees {
		c := cells[i]
		est := "-"
		if delay, ok := estOf[d]; ok {
			est = ms(delay)
		}
		t.AddRow(fmt.Sprintf("%d", d), fmt.Sprintf("%d", c.Levels),
			ms(c.Update), ms(c.Contention), ms(c.Sync), est)
	}
	t.AddNote("paper shape: update delay ∝ depth; contention explodes past a threshold degree; model tracks the simulated totals for full-tree degrees")
	return t
}

// Fig3Cell is one entry of the Fig. 3 grid.
type Fig3Cell struct {
	P         int
	SigmaTc   float64 // σ in units of t_c
	OptDegree int
	Speedup   float64 // delay(degree 4) / delay(optimal)
}

// Fig3Data computes the simulated optimal-degree grid.
func Fig3Data(o Options) []Fig3Cell {
	points, keys := procSigmaGrid()
	return grid(o, "fig3", keys, func(i int, seed uint64) Fig3Cell {
		pt := points[i]
		best, speedup, _ := barriersim.OptimalDegree(
			pt.P, topology.NewClassic, barriersim.Config{},
			stats.Normal{Sigma: pt.Sigma * Tc}, o.Episodes, seed)
		return Fig3Cell{P: pt.P, SigmaTc: pt.Sigma, OptDegree: best.Degree, Speedup: speedup}
	})
}

// Fig3 reproduces Figure 3: the simulated optimal combining-tree degree
// (and its speedup over degree 4) for each system size and load imbalance.
func Fig3(o Options) *Table {
	t := &Table{
		ID:     "FIG3",
		Title:  "simulated optimal degree (speedup vs degree 4)",
		Header: []string{"procs"},
	}
	for _, s := range SigmaGrid {
		t.Header = append(t.Header, fmt.Sprintf("σ=%gtc", s))
	}
	cells := Fig3Data(o)
	i := 0
	for _, p := range ProcGrid {
		row := []string{fmt.Sprintf("%d", p)}
		for range SigmaGrid {
			c := cells[i]
			i++
			row = append(row, fmt.Sprintf("%d (%.2f)", c.OptDegree, c.Speedup))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper shape: degree 4 optimal at σ=0; optimal degree and speedup grow with σ and with p (paper reaches degree 128+ and speedup ≈3 on 4K)")
	return t
}

// fig4Cell is one simulated-vs-estimated cell of the Fig. 4 grid.
type fig4Cell struct {
	OptDegree int
	OptDelay  float64
	D4        float64
	EstDegree int
	EstDelay  float64
}

// Fig4 reproduces Figure 4: the analytic model's estimated optimal degree
// against the simulated optimum, with both speedups relative to degree 4,
// plus the paper's headline accuracy metric (mean estimated/optimal delay
// ratio; paper: 1.07).
func Fig4(o Options) *Table {
	t := &Table{
		ID:     "FIG4",
		Title:  "simulated (opt) vs estimated (est) optimal degree (speedup vs degree 4)",
		Header: []string{"procs", "row"},
	}
	for _, s := range SigmaGrid {
		t.Header = append(t.Header, fmt.Sprintf("σ=%gtc", s))
	}
	points, keys := procSigmaGrid()
	cells := grid(o, "fig4", keys, func(i int, seed uint64) fig4Cell {
		pt := points[i]
		sweep := barriersim.DegreeSweep(
			pt.P, topology.NewClassic, barriersim.Config{},
			stats.Normal{Sigma: pt.Sigma * Tc}, o.Episodes, seed)
		opt := barriersim.Best(sweep)
		est := model.EstimateOptimalDegree(pt.P, pt.Sigma*Tc, Tc)
		d4, _ := barriersim.DelayOf(sweep, 4)
		estDelay, ok := barriersim.DelayOf(sweep, est.Degree)
		if !ok {
			// The model can only recommend full-tree degrees, which
			// for power-of-two p are all in the sweep.
			estDelay = opt.MeanSync
		}
		return fig4Cell{OptDegree: opt.Degree, OptDelay: opt.MeanSync, D4: d4,
			EstDegree: est.Degree, EstDelay: estDelay}
	})
	sumRatio, nRatio := 0.0, 0
	i := 0
	for _, p := range ProcGrid {
		optRow := []string{fmt.Sprintf("%d", p), "opt"}
		estRow := []string{"", "est"}
		for range SigmaGrid {
			c := cells[i]
			i++
			optRow = append(optRow, fmt.Sprintf("%d (%.2f)", c.OptDegree, c.D4/c.OptDelay))
			estRow = append(estRow, fmt.Sprintf("%d (%.2f)", c.EstDegree, c.D4/c.EstDelay))
			if c.OptDelay > 0 {
				sumRatio += c.EstDelay / c.OptDelay
				nRatio++
			}
		}
		t.AddRow(optRow...)
		t.AddRow(estRow...)
	}
	t.AddNote("mean simulated delay of estimated degree / optimal degree = %.3f (paper: ≈1.07)", sumRatio/float64(nRatio))
	return t
}

// eq1Cell is the simulated half of one EQ1 row.
type eq1Cell struct {
	Levels int
	Sync   float64
}

// eq1Degrees is the degree axis of the EQ1 check.
var eq1Degrees = []int{2, 4, 8, 16, 64}

// Eq1 verifies §3's closed-form check: under simultaneous arrival the
// synchronization delay of a full tree is L·d·t_c, minimized near degree
// e ≈ 2.72 in the continuous relaxation, with degrees 2 and 4 tied among
// integers for power-of-4 system sizes.
func Eq1OptimalDegree(o Options) *Table {
	t := &Table{
		ID:     "EQ1",
		Title:  "simultaneous-arrival delay by degree, p=4096 (ms)",
		Header: []string{"degree", "levels", "sim delay", "L·d·t_c"},
	}
	const p = 4096
	cells := grid(o, "eq1", gridKeys("p=4096 sigma=0 d=%d", eq1Degrees),
		func(i int, seed uint64) eq1Cell {
			tree := topology.NewClassic(p, eq1Degrees[i])
			rr := barriersim.RunIID(tree, barriersim.Config{}, stats.Degenerate{}, 1, seed)
			return eq1Cell{Levels: tree.Levels, Sync: rr.MeanSync}
		})
	for i, d := range eq1Degrees {
		c := cells[i]
		t.AddRow(fmt.Sprintf("%d", d), fmt.Sprintf("%d", c.Levels),
			ms(c.Sync), ms(float64(c.Levels*d)*Tc))
	}
	t.AddNote("continuous optimum of d/ln d is d = e ≈ %.3f; degrees 2 and 4 tie at 24·t_c for p=4096", model.OptimalDegreeSimultaneous())
	return t
}
