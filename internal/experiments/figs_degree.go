package experiments

import (
	"fmt"

	"softbarrier/internal/barriersim"
	"softbarrier/internal/model"
	"softbarrier/internal/stats"
	"softbarrier/internal/topology"
)

// Tc is the counter update time used throughout, the paper's 20µs.
const Tc = barriersim.DefaultTc

// SigmaGrid is the load-imbalance grid of Figs. 3 and 4, in units of t_c.
var SigmaGrid = []float64{0, 1.6, 6.2, 12.5, 25, 50}

// ProcGrid is the system-size grid of Figs. 3 and 4.
var ProcGrid = []int{64, 256, 4096}

// Fig2 reproduces Figure 2: simulated vs. approximated synchronization
// delay per combining-tree degree for 4K processors at σ = 0.25 ms
// (12.5·t_c). The simulated bar splits into update and contention delay;
// the approximation exists only for full-tree degrees, so degree 32 has no
// estimate — exactly as in the paper.
func Fig2(o Options) *Table {
	t := &Table{
		ID:     "FIG2",
		Title:  "sync delay per degree, 4K procs, σ=0.25ms (ms)",
		Header: []string{"degree", "depth", "sim update", "sim contention", "sim total", "model"},
	}
	const p = 4096
	sigma := 12.5 * Tc
	for _, d := range []int{2, 4, 8, 16, 32, 64} {
		tree := topology.NewClassic(p, d)
		rr := barriersim.RunIID(tree, barriersim.Config{}, stats.Normal{Sigma: sigma}, o.Episodes, o.Seed)
		est := "-"
		if delay, err := model.EstimateDelay(model.Params{P: p, Degree: d, Sigma: sigma}); err == nil {
			est = ms(delay)
		}
		t.AddRow(fmt.Sprintf("%d", d), fmt.Sprintf("%d", tree.Levels),
			ms(rr.MeanUpdate), ms(rr.MeanContention), ms(rr.MeanSync), est)
	}
	t.AddNote("paper shape: update delay ∝ depth; contention explodes past a threshold degree; model tracks the simulated totals for full-tree degrees")
	return t
}

// Fig3Cell is one entry of the Fig. 3 grid.
type Fig3Cell struct {
	P         int
	SigmaTc   float64 // σ in units of t_c
	OptDegree int
	Speedup   float64 // delay(degree 4) / delay(optimal)
}

// Fig3Data computes the simulated optimal-degree grid.
func Fig3Data(o Options) []Fig3Cell {
	var cells []Fig3Cell
	for _, p := range ProcGrid {
		for _, s := range SigmaGrid {
			best, speedup, _ := barriersim.OptimalDegree(
				p, topology.NewClassic, barriersim.Config{},
				stats.Normal{Sigma: s * Tc}, o.Episodes, o.Seed+uint64(p)+uint64(s*10))
			cells = append(cells, Fig3Cell{P: p, SigmaTc: s, OptDegree: best.Degree, Speedup: speedup})
		}
	}
	return cells
}

// Fig3 reproduces Figure 3: the simulated optimal combining-tree degree
// (and its speedup over degree 4) for each system size and load imbalance.
func Fig3(o Options) *Table {
	t := &Table{
		ID:     "FIG3",
		Title:  "simulated optimal degree (speedup vs degree 4)",
		Header: []string{"procs"},
	}
	for _, s := range SigmaGrid {
		t.Header = append(t.Header, fmt.Sprintf("σ=%gtc", s))
	}
	cells := Fig3Data(o)
	i := 0
	for _, p := range ProcGrid {
		row := []string{fmt.Sprintf("%d", p)}
		for range SigmaGrid {
			c := cells[i]
			i++
			row = append(row, fmt.Sprintf("%d (%.2f)", c.OptDegree, c.Speedup))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper shape: degree 4 optimal at σ=0; optimal degree and speedup grow with σ and with p (paper reaches degree 128+ and speedup ≈3 on 4K)")
	return t
}

// Fig4 reproduces Figure 4: the analytic model's estimated optimal degree
// against the simulated optimum, with both speedups relative to degree 4,
// plus the paper's headline accuracy metric (mean estimated/optimal delay
// ratio; paper: 1.07).
func Fig4(o Options) *Table {
	t := &Table{
		ID:     "FIG4",
		Title:  "simulated (opt) vs estimated (est) optimal degree (speedup vs degree 4)",
		Header: []string{"procs", "row"},
	}
	for _, s := range SigmaGrid {
		t.Header = append(t.Header, fmt.Sprintf("σ=%gtc", s))
	}
	sumRatio, nRatio := 0.0, 0
	for _, p := range ProcGrid {
		optRow := []string{fmt.Sprintf("%d", p), "opt"}
		estRow := []string{"", "est"}
		for _, s := range SigmaGrid {
			sweep := barriersim.DegreeSweep(
				p, topology.NewClassic, barriersim.Config{},
				stats.Normal{Sigma: s * Tc}, o.Episodes, o.Seed+uint64(p)+uint64(s*10))
			opt := barriersim.Best(sweep)
			est := model.EstimateOptimalDegree(p, s*Tc, Tc)
			d4, _ := barriersim.DelayOf(sweep, 4)
			estDelay, ok := barriersim.DelayOf(sweep, est.Degree)
			if !ok {
				// The model can only recommend full-tree degrees, which
				// for power-of-two p are all in the sweep.
				estDelay = opt.MeanSync
			}
			optRow = append(optRow, fmt.Sprintf("%d (%.2f)", opt.Degree, d4/opt.MeanSync))
			estRow = append(estRow, fmt.Sprintf("%d (%.2f)", est.Degree, d4/estDelay))
			if opt.MeanSync > 0 {
				sumRatio += estDelay / opt.MeanSync
				nRatio++
			}
		}
		t.AddRow(optRow...)
		t.AddRow(estRow...)
	}
	t.AddNote("mean simulated delay of estimated degree / optimal degree = %.3f (paper: ≈1.07)", sumRatio/float64(nRatio))
	return t
}

// Eq1 verifies §3's closed-form check: under simultaneous arrival the
// synchronization delay of a full tree is L·d·t_c, minimized near degree
// e ≈ 2.72 in the continuous relaxation, with degrees 2 and 4 tied among
// integers for power-of-4 system sizes.
func Eq1OptimalDegree(o Options) *Table {
	t := &Table{
		ID:     "EQ1",
		Title:  "simultaneous-arrival delay by degree, p=4096 (ms)",
		Header: []string{"degree", "levels", "sim delay", "L·d·t_c"},
	}
	const p = 4096
	for _, d := range []int{2, 4, 8, 16, 64} {
		tree := topology.NewClassic(p, d)
		rr := barriersim.RunIID(tree, barriersim.Config{}, stats.Degenerate{}, 1, o.Seed)
		t.AddRow(fmt.Sprintf("%d", d), fmt.Sprintf("%d", tree.Levels),
			ms(rr.MeanSync), ms(float64(tree.Levels*d)*Tc))
	}
	t.AddNote("continuous optimum of d/ln d is d = e ≈ %.3f; degrees 2 and 4 tie at 24·t_c for p=4096", model.OptimalDegreeSimultaneous())
	return t
}
