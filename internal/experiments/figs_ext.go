package experiments

import (
	"fmt"

	"softbarrier/internal/barriersim"
	"softbarrier/internal/loadmodel"
	"softbarrier/internal/model"
	"softbarrier/internal/stats"
	"softbarrier/internal/topology"
	"softbarrier/internal/workload"
)

// The EXT experiments go beyond the paper's figures: ablations and
// extensions that DESIGN.md calls out. EXT1 compares the paper's
// combining trees against the classic non-combining baselines its related
// work cites; EXT2 validates the fuzzy-barrier idle-time claim the paper
// imports from the authors' earlier work [13]; EXT3 demonstrates the
// run-time degree adaptation the conclusion proposes.

// ext1Cell is one σ row of the EXT1 comparison.
type ext1Cell struct {
	D4        float64
	Opt       float64
	OptDegree int
	Diss      float64
	Tour      float64
	Cent      float64
}

// Ext1 compares the optimal-degree combining tree against dissemination,
// tournament, central-counter and degree-4 barriers across the σ grid for
// 256 processors. Dissemination and tournament are insensitive to σ (their
// delay is always Θ(log₂ p) rounds after the last arrival), so combining
// trees win at both extremes: degree ≈ 4 under simultaneous arrival, wide
// trees under heavy imbalance.
func Ext1(o Options) *Table {
	t := &Table{
		ID:     "EXT1",
		Title:  "combining trees vs classic baselines, 256 procs (delay in ms)",
		Header: []string{"σ/tc", "tree d=4", "tree opt (d*)", "dissemination", "tournament", "central"},
	}
	const p = 256
	cells := grid(o, "ext1", gridKeys(fmt.Sprintf("p=%d sigma=%%gtc baselines", p), SigmaGrid),
		func(i int, seed uint64) ext1Cell {
			dist := stats.Normal{Sigma: SigmaGrid[i] * Tc}
			sweep := barriersim.DegreeSweep(p, topology.NewClassic, barriersim.Config{}, dist, o.Episodes, seed)
			best := barriersim.Best(sweep)
			d4, _ := barriersim.DelayOf(sweep, 4)
			diss := barriersim.RunBaselineIID(barriersim.Dissemination, p, Tc, dist, o.Episodes, seed)
			tour := barriersim.RunBaselineIID(barriersim.Tournament, p, Tc, dist, o.Episodes, seed)
			cent := barriersim.RunBaselineIID(barriersim.Central, p, Tc, dist, o.Episodes, seed)
			return ext1Cell{D4: d4, Opt: best.MeanSync, OptDegree: best.Degree,
				Diss: diss.MeanSync, Tour: tour.MeanSync, Cent: cent.MeanSync}
		})
	for i, s := range SigmaGrid {
		c := cells[i]
		t.AddRow(fmt.Sprintf("%g", s), ms(c.D4),
			fmt.Sprintf("%s (%d)", ms(c.Opt), c.OptDegree),
			ms(c.Diss), ms(c.Tour), ms(c.Cent))
	}
	t.AddNote("dissemination/tournament delays are flat in σ (structural log₂ p); the tuned combining tree is competitive at σ=0 and strictly better at large σ")
	return t
}

// ext2Slacks is the slack axis of the EXT2 validation, in seconds.
var ext2Slacks = []float64{0.5e-3, 1e-3, 2e-3, 4e-3, 8e-3, 16e-3}

// Ext2 validates the fuzzy-barrier claim the paper builds on ([13]): the
// expected idle time at a fuzzy barrier falls inversely with the slack.
// Idle time per processor per iteration is max(0, R − s − e_i): the wait
// that the slack's independent work cannot hide.
func Ext2(o Options) *Table {
	t := &Table{
		ID:     "EXT2",
		Title:  "fuzzy-barrier idle time vs slack (4096 procs, σ=0.25ms)",
		Header: []string{"slack (ms)", "mean idle (µs)", "idle × slack (µs·ms)"},
	}
	const p = 4096
	idles := grid(o, "ext2", gridKeys(fmt.Sprintf("p=%d sigma=%g slack=%%g idle", p, fig8Sigma), ext2Slacks),
		func(i int, seed uint64) float64 {
			slack := ext2Slacks[i]
			it := workload.NewIterator(workload.IID{N: p, Dist: stats.Normal{Sigma: fig8Sigma}}, slack, seed)
			idleSum, n := 0.0, 0
			iters := o.Warmup + o.Episodes
			for k := 0; k < iters; k++ {
				arr := it.Next()
				release := stats.Max(arr) // perfect barrier
				if k >= o.Warmup {
					for _, e := range arr {
						if idle := release - slack - e; idle > 0 {
							idleSum += idle
						}
						n++
					}
				}
				it.Complete(release)
			}
			return idleSum / float64(n)
		})
	for i, slack := range ext2Slacks {
		meanIdle := idles[i]
		t.AddRow(fmt.Sprintf("%g", slack*1e3), us(meanIdle), fmt.Sprintf("%.2f", meanIdle*1e6*slack*1e3))
	}
	t.AddNote("[13]'s claim: idle ∝ 1/slack, so the idle × slack column should be roughly constant once slack exceeds the arrival spread")
	return t
}

// ext3Phase describes one imbalance regime of the EXT3 scenario.
type ext3Phase struct {
	sigmaTc  float64
	episodes int
}

// Ext3 demonstrates run-time degree adaptation (the paper's proposed
// future work, §8): the workload's σ switches regime mid-run; an adaptive
// policy re-estimates σ from observed arrivals (EWMA) every window and
// rebuilds the tree with the model's degree. Its delay tracks the best
// fixed degree of each regime instead of being wrong in one of them.
//
// EXT3 is deliberately not a sweep: it is a single coupled time series
// (the adaptive simulator's state spans both phases), so there is no
// independent grid to fan out.
func Ext3(o Options) *Table {
	t := &Table{
		ID:     "EXT3",
		Title:  "run-time degree adaptation across an imbalance regime change (4096 procs)",
		Header: []string{"phase", "σ/tc", "mean delay d=4 (ms)", "mean delay d=64 (ms)", "adaptive (ms)", "adaptive degree"},
	}
	const p = 4096
	phases := []ext3Phase{{0.5, o.Episodes}, {50, o.Episodes}}
	const window = 10

	// The regime change is a loadmodel.Phased workload; IID draws through
	// the shared RNG are byte-identical to the former inline sample loop,
	// so cached sweep results stay valid.
	gen := loadmodel.Phased{Phases: []loadmodel.Phase{
		{Episodes: phases[0].episodes, Gen: loadmodel.IID{N: p, Dist: stats.Normal{Sigma: phases[0].sigmaTc * Tc}}},
		{Episodes: phases[1].episodes, Gen: loadmodel.IID{N: p, Dist: stats.Normal{Sigma: phases[1].sigmaTc * Tc}}},
	}}
	arr := make([]float64, p)

	r := stats.NewRNG(o.Seed + 33)
	// Fixed-degree simulators persist across phases, like the adaptive one.
	fixed4 := barriersim.New(topology.NewClassic(p, 4), barriersim.Config{})
	fixed64 := barriersim.New(topology.NewClassic(p, 64), barriersim.Config{})
	adaptive := barriersim.New(topology.NewClassic(p, 4), barriersim.Config{})
	adaptiveDegree := 4
	sigmaEst := 0.0
	episode := 0

	for phase, ph := range phases {
		var d4, d64, da float64
		measured := 0
		// The first half of each phase is the adaptation transient; the
		// table reports the settled second half.
		measureFrom := ph.episodes / 2
		for k := 0; k < ph.episodes; k++ {
			gen.Times(episode, r, arr)
			e4 := fixed4.Episode(arr).SyncDelay
			e64 := fixed64.Episode(arr).SyncDelay
			ea := adaptive.Episode(arr).SyncDelay
			if k >= measureFrom {
				d4 += e4
				d64 += e64
				da += ea
				measured++
			}

			// Adaptive policy: EWMA of the observed arrival spread, degree
			// re-derived from the analytic model every window episodes.
			spread := stats.StdDev(arr)
			if episode == 0 {
				sigmaEst = spread
			} else {
				sigmaEst = 0.7*sigmaEst + 0.3*spread
			}
			episode++
			if episode%window == 0 {
				if d := model.EstimateOptimalDegree(p, sigmaEst, Tc).Degree; d != adaptiveDegree {
					adaptiveDegree = d
					adaptive = barriersim.New(topology.NewClassic(p, d), barriersim.Config{})
				}
			}
		}
		n := float64(measured)
		t.AddRow(fmt.Sprintf("%d", phase+1), fmt.Sprintf("%g", ph.sigmaTc),
			ms(d4/n), ms(d64/n), ms(da/n), fmt.Sprintf("%d", adaptiveDegree))
	}
	t.AddNote("delays are means over each phase's second half (after the adaptation transient); the adaptive barrier tracks the better fixed degree of each regime, while each fixed degree is poor in one phase")
	return t
}
