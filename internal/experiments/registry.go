package experiments

import (
	"fmt"
	"sort"
)

// Runner produces one reproduced figure or table.
type Runner func(Options) *Table

// registry maps experiment IDs to runners, in presentation order.
var registry = []struct {
	ID     string
	Runner Runner
}{
	{"EQ1", Eq1OptimalDegree},
	{"FIG2", Fig2},
	{"FIG3", Fig3},
	{"FIG4", Fig4},
	{"FIG5", Fig5},
	{"FIG8", Fig8},
	{"FIG9", Fig9},
	{"FIG10", Fig10},
	{"FIG11", Fig11},
	{"FIG12", Fig12},
	{"FIG13", Fig13},
	{"EXT1", Ext1},
	{"EXT2", Ext2},
	{"EXT3", Ext3},
	{"EXT4", Ext4},
	{"EXT5", Ext5},
	{"EXT6", Ext6},
	{"EXT7", Ext7},
	{"EXT8", Ext8},
	{"EXT9", Ext9},
}

// IDs returns all experiment IDs in presentation order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	return ids
}

// Lookup returns the runner for an experiment ID (case-sensitive).
func Lookup(id string) (Runner, error) {
	for _, e := range registry {
		if e.ID == id {
			return e.Runner, nil
		}
	}
	known := IDs()
	sort.Strings(known)
	return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, known)
}

// RunAll executes every experiment and returns the tables in presentation
// order.
func RunAll(o Options) []*Table {
	out := make([]*Table, len(registry))
	for i, e := range registry {
		out[i] = e.Runner(o)
	}
	return out
}
