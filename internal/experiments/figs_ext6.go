package experiments

import (
	"fmt"

	"softbarrier/internal/ringsim"
	"softbarrier/internal/topology"
)

// Ext8 examines the barrier's cost on the interconnect itself
// (internal/ringsim, a KSR-style slotted ring): the network traffic of a
// flat gather versus combining-tree gathers of several degrees. On a
// unidirectional ring every gather pays Ω(N) propagation, so completion
// times are similar — the combining tree's win is bandwidth: total link
// occupancy drops from Θ(N²) to Θ(N·d), and the busiest link is no longer
// saturated. This is the network half of the §2 hot-spot story (Pfister &
// Norton; Yew/Tzeng/Lawrie), complementing the counter-serialization half
// the rest of the study models.
func Ext8(o Options) *Table {
	t := &Table{
		ID:     "EXT8",
		Title:  "barrier gather traffic on a 64-node slotted ring (slot = 1µs)",
		Header: []string{"scheme", "messages", "completion (µs)", "total traffic (slot·hops)", "max link util"},
	}
	const n = 64
	const slot = 1e-6
	flat := ringsim.FlatGather(ringsim.NewRing(n, slot))
	t.AddRow("flat counter", fmt.Sprintf("%d", flat.Messages), us(flat.Completion),
		fmt.Sprintf("%.0f", flat.TotalTraffic/slot), fmt.Sprintf("%.2f", flat.MaxLinkUtilization))
	for _, d := range []int{2, 4, 8, 16} {
		tree := topology.NewClassic(n, d)
		res := ringsim.TreeGather(ringsim.NewRing(n, slot), tree)
		t.AddRow(fmt.Sprintf("tree d=%d", d), fmt.Sprintf("%d", res.Messages), us(res.Completion),
			fmt.Sprintf("%.0f", res.TotalTraffic/slot), fmt.Sprintf("%.2f", res.MaxLinkUtilization))
	}
	t.AddNote("completion is propagation-bound (Ω(N) on a ring) for every scheme; the trees cut total bandwidth 3–10× and unsaturate the hot link, leaving ring capacity for data traffic")
	return t
}
