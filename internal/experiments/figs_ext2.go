package experiments

import (
	"fmt"
	"math"

	"softbarrier/internal/barriersim"
	"softbarrier/internal/stats"
	"softbarrier/internal/topology"
)

// Ext4 probes the sensitivity of the optimal degree to the *shape* of the
// arrival distribution at matched standard deviation. The paper assumes
// normally distributed arrivals (supported by [13] and [15]) but notes in
// §8 that fuzzy barriers skew the distribution, "with a few processors
// being much slower than average" — which the exponential's heavy right
// tail models. A heavy right tail isolates the last processor and makes
// wide trees win at *smaller* σ than the normal does; a bounded uniform
// spread behaves like the normal.
func Ext4(o Options) *Table {
	t := &Table{
		ID:     "EXT4",
		Title:  "optimal degree vs arrival distribution shape, 256 procs (matched σ)",
		Header: []string{"σ/tc", "normal", "uniform", "exponential (right tail)"},
	}
	const p = 256
	for _, s := range []float64{1.6, 6.2, 12.5, 25} {
		sigma := s * Tc
		dists := []stats.Distribution{
			stats.Normal{Sigma: sigma},
			stats.Uniform{Lo: -sigma * math.Sqrt(3), Hi: sigma * math.Sqrt(3)},
			stats.Exponential{Rate: 1 / sigma, Shift: -sigma},
		}
		row := []string{fmt.Sprintf("%g", s)}
		for i, dist := range dists {
			best, speedup, _ := barriersim.OptimalDegree(
				p, topology.NewClassic, barriersim.Config{}, dist,
				o.Episodes, o.Seed+uint64(s*10)+uint64(i))
			row = append(row, fmt.Sprintf("%d (%.2f)", best.Degree, speedup))
		}
		t.AddRow(row...)
	}
	t.AddNote("entries are optimal degree (speedup vs degree 4); all three distributions are zero-mean with the stated σ")
	return t
}
