package experiments

import (
	"fmt"
	"math"

	"softbarrier/internal/barriersim"
	"softbarrier/internal/stats"
	"softbarrier/internal/topology"
)

// ext4Sigmas is the σ axis of the EXT4 ablation, in units of t_c.
var ext4Sigmas = []float64{1.6, 6.2, 12.5, 25}

// ext4DistNames labels the distribution axis (column order of the table).
var ext4DistNames = []string{"normal", "uniform", "exponential"}

// ext4Dist builds the zero-mean distribution of the named shape at the
// given σ.
func ext4Dist(name string, sigma float64) stats.Distribution {
	switch name {
	case "normal":
		return stats.Normal{Sigma: sigma}
	case "uniform":
		return stats.Uniform{Lo: -sigma * math.Sqrt(3), Hi: sigma * math.Sqrt(3)}
	case "exponential":
		return stats.Exponential{Rate: 1 / sigma, Shift: -sigma}
	}
	panic("experiments: unknown distribution " + name)
}

// optCell is the generic optimal-degree point shared by EXT4 and EXT5.
type optCell struct {
	Degree  int
	Speedup float64
}

// Ext4 probes the sensitivity of the optimal degree to the *shape* of the
// arrival distribution at matched standard deviation. The paper assumes
// normally distributed arrivals (supported by [13] and [15]) but notes in
// §8 that fuzzy barriers skew the distribution, "with a few processors
// being much slower than average" — which the exponential's heavy right
// tail models. A heavy right tail isolates the last processor and makes
// wide trees win at *smaller* σ than the normal does; a bounded uniform
// spread behaves like the normal.
func Ext4(o Options) *Table {
	t := &Table{
		ID:     "EXT4",
		Title:  "optimal degree vs arrival distribution shape, 256 procs (matched σ)",
		Header: []string{"σ/tc", "normal", "uniform", "exponential (right tail)"},
	}
	const p = 256
	type point struct {
		Sigma float64
		Dist  string
	}
	var points []point
	var keys []string
	for _, s := range ext4Sigmas {
		for _, name := range ext4DistNames {
			points = append(points, point{s, name})
			keys = append(keys, fmt.Sprintf("p=%d sigma=%gtc dist=%s", p, s, name))
		}
	}
	cells := grid(o, "ext4", keys, func(i int, seed uint64) optCell {
		pt := points[i]
		best, speedup, _ := barriersim.OptimalDegree(
			p, topology.NewClassic, barriersim.Config{}, ext4Dist(pt.Dist, pt.Sigma*Tc),
			o.Episodes, seed)
		return optCell{Degree: best.Degree, Speedup: speedup}
	})
	i := 0
	for _, s := range ext4Sigmas {
		row := []string{fmt.Sprintf("%g", s)}
		for range ext4DistNames {
			c := cells[i]
			i++
			row = append(row, fmt.Sprintf("%d (%.2f)", c.Degree, c.Speedup))
		}
		t.AddRow(row...)
	}
	t.AddNote("entries are optimal degree (speedup vs degree 4); all three distributions are zero-mean with the stated σ")
	return t
}
