package experiments

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// PlotSpec selects table columns to render as an ASCII chart: the x column
// and one curve per y column. Specs are registered per experiment ID and
// used by cmd/experiments' -plot flag.
type PlotSpec struct {
	XCol  int
	YCols []int
	LogX  bool
	Title string
}

// plotSpecs maps experiment IDs to their curve view, for tables that are
// figures (curves over system size or slack) in the paper.
var plotSpecs = map[string]PlotSpec{
	"FIG9":  {XCol: 0, YCols: []int{1, 2, 4, 5}, LogX: true, Title: "delay (ms) vs processors"},
	"FIG10": {XCol: 0, YCols: []int{1, 2}, LogX: true, Title: "delay (ms) vs processors"},
	"FIG11": {XCol: 0, YCols: []int{1, 2}, LogX: true, Title: "delay (ms) vs processors"},
	"EXT1":  {XCol: 0, YCols: []int{1, 3, 4}, Title: "delay (ms) vs σ/tc"},
	"EXT2":  {XCol: 0, YCols: []int{1}, Title: "idle (µs) vs slack (ms)"},
}

// SpecFor returns the plot spec for an experiment ID, if one is defined.
func SpecFor(id string) (PlotSpec, bool) {
	s, ok := plotSpecs[id]
	return s, ok
}

// Plot renders the selected table columns as an ASCII chart of the given
// size (minimums 20×5 are enforced). Curves are labelled a, b, c… in
// y-column order with a legend of the column headers; overlapping points
// print '*'. It fails if a selected cell does not parse as a leading
// float.
func (t *Table) Plot(spec PlotSpec, width, height int) (string, error) {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	if len(t.Rows) == 0 {
		return "", fmt.Errorf("experiments: empty table")
	}
	parse := func(s string) (float64, error) {
		s = strings.TrimSpace(s)
		if i := strings.IndexByte(s, ' '); i > 0 {
			s = s[:i]
		}
		return strconv.ParseFloat(s, 64)
	}

	xs := make([]float64, len(t.Rows))
	for i, row := range t.Rows {
		v, err := parse(row[spec.XCol])
		if err != nil {
			return "", fmt.Errorf("experiments: x cell %q: %v", row[spec.XCol], err)
		}
		if spec.LogX {
			if v <= 0 {
				return "", fmt.Errorf("experiments: log-x needs positive x, got %v", v)
			}
			v = math.Log2(v)
		}
		xs[i] = v
	}
	type curve struct {
		label byte
		name  string
		ys    []float64
	}
	var curves []curve
	for ci, col := range spec.YCols {
		c := curve{label: byte('a' + ci), name: t.Header[col], ys: make([]float64, len(t.Rows))}
		for i, row := range t.Rows {
			v, err := parse(row[col])
			if err != nil {
				return "", fmt.Errorf("experiments: y cell %q: %v", row[col], err)
			}
			c.ys[i] = v
		}
		curves = append(curves, c)
	}

	xMin, xMax := xs[0], xs[0]
	for _, x := range xs {
		xMin = math.Min(xMin, x)
		xMax = math.Max(xMax, x)
	}
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, c := range curves {
		for _, y := range c.ys {
			yMin = math.Min(yMin, y)
			yMax = math.Max(yMax, y)
		}
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, c := range curves {
		for i := range xs {
			col := int(float64(width-1) * (xs[i] - xMin) / (xMax - xMin))
			row := height - 1 - int(float64(height-1)*(c.ys[i]-yMin)/(yMax-yMin))
			if grid[row][col] == ' ' {
				grid[row][col] = c.label
			} else if grid[row][col] != c.label {
				grid[row][col] = '*'
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, spec.Title)
	fmt.Fprintf(&b, "%10.3g ┤%s\n", yMax, grid[0])
	for r := 1; r < height-1; r++ {
		fmt.Fprintf(&b, "%10s │%s\n", "", grid[r])
	}
	fmt.Fprintf(&b, "%10.3g ┤%s\n", yMin, grid[height-1])
	fmt.Fprintf(&b, "%10s └%s\n", "", strings.Repeat("─", width))
	lo, hi := xs[0], xs[len(xs)-1]
	if spec.LogX {
		lo, hi = math.Exp2(lo), math.Exp2(hi)
	}
	fmt.Fprintf(&b, "%11s%-*.4g%*.4g\n", "", width/2, lo, width-width/2, hi)
	for _, c := range curves {
		fmt.Fprintf(&b, "  %c = %s\n", c.label, c.name)
	}
	return b.String(), nil
}
