package experiments

import (
	"fmt"

	"softbarrier/internal/barriersim"
	"softbarrier/internal/stats"
	"softbarrier/internal/topology"
)

// ext5Alphas is the lock-degradation axis of the EXT5 ablation.
var ext5Alphas = []float64{0, 0.25, 1}

// ext5Sigmas is the σ axis of the EXT5 ablation, in units of t_c.
var ext5Sigmas = []float64{0, 6.2, 25}

// Ext5 ablates the paper's ideal-lock assumption. The simulations (and
// Eq. 1) charge a constant t_c per counter update regardless of queue
// length — an ideal queue lock. Test-and-set locks degrade under
// contention: an update issued behind a backlog costs more. Sweeping a
// degradation factor shifts the whole optimal-degree curve narrower
// (degree 2 at σ = 0, since waiters per counter now dominate tree depth),
// but the paper's qualitative conclusion survives: the optimal degree
// still grows monotonically with the load imbalance.
func Ext5(o Options) *Table {
	t := &Table{
		ID:     "EXT5",
		Title:  "optimal degree under lock degradation, 256 procs",
		Header: []string{"degradation", "σ=0", "σ=6.2tc", "σ=25tc"},
	}
	const p = 256
	type point struct {
		Alpha float64
		Sigma float64
	}
	var points []point
	var keys []string
	for _, alpha := range ext5Alphas {
		for _, s := range ext5Sigmas {
			points = append(points, point{alpha, s})
			keys = append(keys, fmt.Sprintf("p=%d alpha=%g sigma=%gtc", p, alpha, s))
		}
	}
	cells := grid(o, "ext5", keys, func(i int, seed uint64) optCell {
		pt := points[i]
		cfg := barriersim.Config{LockDegradation: pt.Alpha}
		best, speedup, _ := barriersim.OptimalDegree(
			p, topology.NewClassic, cfg,
			stats.Normal{Sigma: pt.Sigma * Tc}, o.Episodes, seed)
		return optCell{Degree: best.Degree, Speedup: speedup}
	})
	i := 0
	for _, alpha := range ext5Alphas {
		row := []string{fmt.Sprintf("%g", alpha)}
		for range ext5Sigmas {
			c := cells[i]
			i++
			row = append(row, fmt.Sprintf("%d (%.2f)", c.Degree, c.Speedup))
		}
		t.AddRow(row...)
	}
	t.AddNote("entries are optimal degree (speedup vs degree 4); degradation α charges t_c·(1+α·backlog/t_c) per update, modelling test-and-set locks")
	return t
}
