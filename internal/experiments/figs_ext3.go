package experiments

import (
	"fmt"

	"softbarrier/internal/barriersim"
	"softbarrier/internal/stats"
	"softbarrier/internal/topology"
)

// Ext5 ablates the paper's ideal-lock assumption. The simulations (and
// Eq. 1) charge a constant t_c per counter update regardless of queue
// length — an ideal queue lock. Test-and-set locks degrade under
// contention: an update issued behind a backlog costs more. Sweeping a
// degradation factor shifts the whole optimal-degree curve narrower
// (degree 2 at σ = 0, since waiters per counter now dominate tree depth),
// but the paper's qualitative conclusion survives: the optimal degree
// still grows monotonically with the load imbalance.
func Ext5(o Options) *Table {
	t := &Table{
		ID:     "EXT5",
		Title:  "optimal degree under lock degradation, 256 procs",
		Header: []string{"degradation", "σ=0", "σ=6.2tc", "σ=25tc"},
	}
	const p = 256
	for _, alpha := range []float64{0, 0.25, 1} {
		row := []string{fmt.Sprintf("%g", alpha)}
		for _, s := range []float64{0, 6.2, 25} {
			cfg := barriersim.Config{LockDegradation: alpha}
			best, speedup, _ := barriersim.OptimalDegree(
				p, topology.NewClassic, cfg,
				stats.Normal{Sigma: s * Tc}, o.Episodes, o.Seed+uint64(s*10))
			row = append(row, fmt.Sprintf("%d (%.2f)", best.Degree, speedup))
		}
		t.AddRow(row...)
	}
	t.AddNote("entries are optimal degree (speedup vs degree 4); degradation α charges t_c·(1+α·backlog/t_c) per update, modelling test-and-set locks")
	return t
}
