package experiments

import (
	"fmt"

	"softbarrier/internal/memsim"
)

// Ext7 grounds the paper's constant counter-update time t_c in a
// cache-coherence-level simulation (internal/memsim): p processors update
// one lock-protected counter simultaneously and we report the effective
// per-update service time. Under a queue lock it is flat in the contender
// count — the paper's t_c abstraction — and of the same magnitude as the
// 20µs the authors measured on the KSR1. Under a test-and-set lock the
// spinning waiters' line traffic degrades it with contention, the
// mechanistic origin of the EXT5 degradation knob (and of the paper's §2
// hot-spot citations).
func Ext7(o Options) *Table {
	t := &Table{
		ID:     "EXT7",
		Title:  "coherence-level effective counter-update time (µs per update)",
		Header: []string{"contenders", "queue lock", "test-and-set", "TAS/queue"},
	}
	lat := memsim.DefaultLatencies()
	for _, k := range []int{1, 2, 4, 8, 16, 32, 56} {
		q := memsim.EffectiveUpdateTime(memsim.QueueLock, k, lat, 0)
		tas := memsim.EffectiveUpdateTime(memsim.TASLock, k, lat, lat.Hit)
		t.AddRow(fmt.Sprintf("%d", k), us(q), us(tas), fmt.Sprintf("%.2f", tas/q))
	}
	t.AddNote("queue-lock time is flat (the constant-t_c assumption, ≈ the paper's measured 20µs); TAS degrades with contention, justifying EXT5's lock-degradation ablation")
	return t
}
