package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

// quick returns low-effort options for shape tests.
func quick() Options { return Options{Episodes: 15, Warmup: 5, Seed: 7} }

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddNote("n=%d", 3)
	s := tab.String()
	for _, want := range []string{"X", "demo", "a", "bb", "1", "2", "note: n=3"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| a | bb |") || !strings.Contains(md, "| 1 | 2 |") {
		t.Errorf("Markdown malformed:\n%s", md)
	}
}

func TestOptionsScaled(t *testing.T) {
	o := Options{Episodes: 100, Warmup: 20}
	s := o.Scaled(0.1)
	if s.Episodes != 10 || s.Warmup != 2 {
		t.Fatalf("scaled = %+v", s)
	}
	tiny := o.Scaled(0.001)
	if tiny.Episodes < 5 || tiny.Warmup < 2 {
		t.Fatalf("floor not applied: %+v", tiny)
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != 20 {
		t.Fatalf("registry has %d experiments, want 20", len(ids))
	}
	for _, id := range ids {
		if _, err := Lookup(id); err != nil {
			t.Errorf("Lookup(%q): %v", id, err)
		}
	}
	if _, err := Lookup("FIG99"); err == nil {
		t.Error("unknown id should error")
	}
}

func TestEq1ShapesExact(t *testing.T) {
	tab := Eq1OptimalDegree(quick())
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Simulated delay must equal the closed form in every row.
	for _, row := range tab.Rows {
		if row[2] != row[3] {
			t.Errorf("degree %s: sim %s != closed form %s", row[0], row[2], row[3])
		}
	}
}

func TestFig2Shape(t *testing.T) {
	tab := Fig2(quick())
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Degree 32 must have no model estimate (not a full tree for 4096).
	for _, row := range tab.Rows {
		if row[0] == "32" && row[5] != "-" {
			t.Errorf("degree 32 has a model estimate: %v", row)
		}
		if row[0] != "32" && row[5] == "-" {
			t.Errorf("degree %s missing model estimate", row[0])
		}
	}
}

func TestFig3DataShape(t *testing.T) {
	o := quick()
	cells := Fig3Data(o)
	if len(cells) != len(ProcGrid)*len(SigmaGrid) {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if c.SigmaTc == 0 && c.OptDegree != 4 {
			t.Errorf("p=%d σ=0: optimal degree %d, want 4", c.P, c.OptDegree)
		}
		if c.Speedup < 0.99 {
			t.Errorf("p=%d σ=%g: speedup %v below 1", c.P, c.SigmaTc, c.Speedup)
		}
	}
	// Within each system size the optimal degree must not shrink with σ.
	for _, p := range ProcGrid {
		prev := 0
		for _, c := range cells {
			if c.P != p {
				continue
			}
			if c.OptDegree < prev {
				t.Errorf("p=%d: degree %d after %d as σ grows", p, c.OptDegree, prev)
			}
			prev = c.OptDegree
		}
	}
}

func TestFig5SlackControlsPersistence(t *testing.T) {
	tab := Fig5(Options{Episodes: 25, Warmup: 5, Seed: 7})
	// Row 0 is slack 0: lag-1 correlation ≈ 0. Last row is slack 16ms:
	// lag-1 correlation near 1.
	var zero, big float64
	if _, err := fmtSscan(tab.Rows[0][1], &zero); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tab.Rows[len(tab.Rows)-1][1], &big); err != nil {
		t.Fatal(err)
	}
	if zero > 0.2 || zero < -0.2 {
		t.Errorf("slack-0 lag-1 correlation %v, want ≈0", zero)
	}
	if big < 0.7 {
		t.Errorf("slack-16ms lag-1 correlation %v, want high", big)
	}
}

func TestFig8DataShape(t *testing.T) {
	// Small p keeps the test fast; the shape claims are size-independent.
	rows := Fig8Data(Options{Episodes: 30, Warmup: 10, Seed: 7}, []int{4}, 256)
	if len(rows) != len(fig8Slacks) {
		t.Fatalf("rows = %d", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	if !(last.LastDepth < first.LastDepth) {
		t.Errorf("last-proc depth did not fall with slack: %v → %v", first.LastDepth, last.LastDepth)
	}
	if !(last.Speedup > first.Speedup) {
		t.Errorf("speedup did not grow with slack: %v → %v", first.Speedup, last.Speedup)
	}
	if first.Speedup < 0.7 || first.Speedup > 1.3 {
		t.Errorf("slack-0 speedup %v, want ≈1", first.Speedup)
	}
	for _, r := range rows {
		if r.CommOverhead < 1 || r.CommOverhead > 1+1.0/float64(r.Degree+1)+1e-9 {
			t.Errorf("comm overhead %v outside [1, 1+1/(d+1)]", r.CommOverhead)
		}
	}
}

func TestFig13DataShape(t *testing.T) {
	rows := Fig13Data(Options{Episodes: 25, Warmup: 10, Seed: 7}, []int{16})
	if len(rows) != len(fig13Slacks) {
		t.Fatalf("rows = %d", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	if !(last.LastDepth < first.LastDepth) {
		t.Errorf("depth did not fall with slack: %v → %v", first.LastDepth, last.LastDepth)
	}
	if last.Speedup < 1 {
		t.Errorf("large-slack speedup %v, want > 1", last.Speedup)
	}
}

func TestAllRunnersProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	o := Options{Episodes: 6, Warmup: 2, Seed: 7}
	for _, tab := range RunAll(o) {
		if tab.ID == "" || len(tab.Header) == 0 || len(tab.Rows) == 0 {
			t.Errorf("experiment %q produced an empty table", tab.ID)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Errorf("%s: row width %d != header width %d", tab.ID, len(row), len(tab.Header))
			}
		}
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Header: []string{"a"}, Notes: []string{"n"}}
	tab.AddRow("1")
	s, err := tab.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal([]byte(s), &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != "X" || back.Title != "demo" || len(back.Rows) != 1 || back.Rows[0][0] != "1" || back.Notes[0] != "n" {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
