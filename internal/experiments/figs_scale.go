package experiments

import (
	"fmt"

	"softbarrier/internal/barriersim"
	"softbarrier/internal/stats"
	"softbarrier/internal/topology"
	"softbarrier/internal/workload"
)

// scaleProcs is the system-size sweep of Figures 9–11.
var scaleProcs = []int{16, 64, 256, 1024, 4096}

// Fig9 reproduces Figure 9: synchronization delay versus system size for a
// degree-4 combining tree and for the optimal-degree tree, at two load
// imbalances. The optimal-degree curves flatten: with enough imbalance the
// delay is insensitive to the system size.
func Fig9(o Options) *Table {
	t := &Table{
		ID:     "FIG9",
		Title:  "sync delay vs system size: degree 4 vs optimal degree (ms)",
		Header: []string{"procs", "d=4 σ=0.5ms", "opt σ=0.5ms", "(d*)", "d=4 σ=2ms", "opt σ=2ms", "(d*)"},
	}
	for _, p := range scaleProcs {
		row := []string{fmt.Sprintf("%d", p)}
		for _, sigma := range []float64{0.5e-3, 2e-3} {
			sweep := barriersim.DegreeSweep(p, topology.NewClassic, barriersim.Config{},
				stats.Normal{Sigma: sigma}, o.Episodes, o.Seed+uint64(p))
			best := barriersim.Best(sweep)
			d4, _ := barriersim.DelayOf(sweep, 4)
			if p == 4 {
				d4 = best.MeanSync
			}
			row = append(row, ms(d4), ms(best.MeanSync), fmt.Sprintf("%d", best.Degree))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper shape: degree-4 delay grows stepwise with depth; optimal-degree delay is consistently lower and nearly flat in p at large σ")
	return t
}

// scaleDynamicRun measures static and dynamic placement on an MCS tree of
// the given degree across system sizes, with ample slack so placement can
// converge.
func scaleDynamicRun(o Options, p, degree int, slack float64) (static, dynamic barriersim.RunResult) {
	tree := topology.NewMCS(p, degree)
	dist := stats.Normal{Sigma: fig8Sigma}
	seed := o.Seed + uint64(p*31+degree)
	mkIter := func() *workload.Iterator {
		return workload.NewIterator(workload.IID{N: p, Dist: dist}, slack, seed)
	}
	static = barriersim.New(tree, barriersim.Config{}).Run(mkIter(), o.Warmup, o.Episodes)
	dynamic = barriersim.New(tree, barriersim.Config{Dynamic: true}).Run(mkIter(), o.Warmup, o.Episodes)
	return static, dynamic
}

// Fig10 reproduces Figure 10: delay versus system size for static and
// dynamic placement on degree-4 trees at a small arrival spread with ample
// slack. Dynamic placement nearly neutralizes the tree depth: the delay
// becomes almost constant in p.
func Fig10(o Options) *Table {
	t := &Table{
		ID:     "FIG10",
		Title:  "static vs dynamic placement, degree 4, σ=0.25ms, slack 16ms (ms)",
		Header: []string{"procs", "static", "dynamic", "speedup", "dyn last depth"},
	}
	for _, p := range scaleProcs {
		static, dynamic := scaleDynamicRun(o, p, 4, 16e-3)
		t.AddRow(fmt.Sprintf("%d", p), ms(static.MeanSync), ms(dynamic.MeanSync),
			fmt.Sprintf("%.2f", static.MeanSync/dynamic.MeanSync),
			fmt.Sprintf("%.2f", dynamic.MeanLastDepth))
	}
	t.AddNote("paper shape: static delay grows with tree depth; dynamic delay is nearly constant in p")
	return t
}

// Fig11 reproduces Figure 11: the combined effect — a wider (degree 16)
// tree plus dynamic placement — versus static degree 16, across system
// sizes. With both techniques the delay is nearly independent of the
// number of processors.
func Fig11(o Options) *Table {
	t := &Table{
		ID:     "FIG11",
		Title:  "combined: degree 16 static vs dynamic, σ=0.25ms, slack 16ms (ms)",
		Header: []string{"procs", "static d=16", "dynamic d=16", "speedup", "dyn last depth"},
	}
	for _, p := range scaleProcs {
		static, dynamic := scaleDynamicRun(o, p, 16, 16e-3)
		t.AddRow(fmt.Sprintf("%d", p), ms(static.MeanSync), ms(dynamic.MeanSync),
			fmt.Sprintf("%.2f", static.MeanSync/dynamic.MeanSync),
			fmt.Sprintf("%.2f", dynamic.MeanLastDepth))
	}
	t.AddNote("paper shape: with a suitable degree and dynamic placement, software barriers scale to large p when slack is available")
	return t
}
