package experiments

import (
	"fmt"

	"softbarrier/internal/barriersim"
	"softbarrier/internal/stats"
	"softbarrier/internal/topology"
	"softbarrier/internal/workload"
)

// scaleProcs is the system-size sweep of Figures 9–11.
var scaleProcs = []int{16, 64, 256, 1024, 4096}

// fig9Sigmas is the imbalance axis of Figure 9, in seconds.
var fig9Sigmas = []float64{0.5e-3, 2e-3}

// fig9Cell is one (p, σ) point of the Fig. 9 grid.
type fig9Cell struct {
	D4        float64
	Opt       float64
	OptDegree int
}

// Fig9 reproduces Figure 9: synchronization delay versus system size for a
// degree-4 combining tree and for the optimal-degree tree, at two load
// imbalances. The optimal-degree curves flatten: with enough imbalance the
// delay is insensitive to the system size.
func Fig9(o Options) *Table {
	t := &Table{
		ID:     "FIG9",
		Title:  "sync delay vs system size: degree 4 vs optimal degree (ms)",
		Header: []string{"procs", "d=4 σ=0.5ms", "opt σ=0.5ms", "(d*)", "d=4 σ=2ms", "opt σ=2ms", "(d*)"},
	}
	type point struct {
		P     int
		Sigma float64
	}
	var keys []string
	var points []point
	for _, p := range scaleProcs {
		for _, sigma := range fig9Sigmas {
			points = append(points, point{p, sigma})
			keys = append(keys, fmt.Sprintf("p=%d sigma=%g", p, sigma))
		}
	}
	cells := grid(o, "fig9", keys, func(i int, seed uint64) fig9Cell {
		pt := points[i]
		sweep := barriersim.DegreeSweep(pt.P, topology.NewClassic, barriersim.Config{},
			stats.Normal{Sigma: pt.Sigma}, o.Episodes, seed)
		best := barriersim.Best(sweep)
		d4, ok := barriersim.DelayOf(sweep, 4)
		if !ok {
			d4 = best.MeanSync
		}
		return fig9Cell{D4: d4, Opt: best.MeanSync, OptDegree: best.Degree}
	})
	i := 0
	for _, p := range scaleProcs {
		row := []string{fmt.Sprintf("%d", p)}
		for range fig9Sigmas {
			c := cells[i]
			i++
			row = append(row, ms(c.D4), ms(c.Opt), fmt.Sprintf("%d", c.OptDegree))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper shape: degree-4 delay grows stepwise with depth; optimal-degree delay is consistently lower and nearly flat in p at large σ")
	return t
}

// placementCell holds the static and dynamic runs of one placement point.
type placementCell struct {
	Static, Dynamic barriersim.RunResult
}

// scaleDynamicRun measures static and dynamic placement on an MCS tree of
// the given degree, with ample slack so placement can converge.
func scaleDynamicRun(o Options, p, degree int, slack float64, seed uint64) placementCell {
	tree := topology.NewMCS(p, degree)
	dist := stats.Normal{Sigma: fig8Sigma}
	mkIter := func() *workload.Iterator {
		return workload.NewIterator(workload.IID{N: p, Dist: dist}, slack, seed)
	}
	return placementCell{
		Static:  barriersim.New(tree, barriersim.Config{}).Run(mkIter(), o.Warmup, o.Episodes),
		Dynamic: barriersim.New(tree, barriersim.Config{Dynamic: true}).Run(mkIter(), o.Warmup, o.Episodes),
	}
}

// placementVsSize sweeps scaleProcs for one degree, returning one
// static/dynamic pair per system size.
func placementVsSize(o Options, name string, degree int, slack float64) []placementCell {
	keyf := fmt.Sprintf("p=%%d d=%d sigma=%g slack=%g mcs", degree, fig8Sigma, slack)
	return grid(o, name, gridKeys(keyf, scaleProcs),
		func(i int, seed uint64) placementCell {
			return scaleDynamicRun(o, scaleProcs[i], degree, slack, seed)
		})
}

// placementTable renders a placementVsSize sweep in the shared Fig. 10/11
// row format.
func placementTable(t *Table, cells []placementCell) {
	for i, p := range scaleProcs {
		static, dynamic := cells[i].Static, cells[i].Dynamic
		t.AddRow(fmt.Sprintf("%d", p), ms(static.MeanSync), ms(dynamic.MeanSync),
			fmt.Sprintf("%.2f", static.MeanSync/dynamic.MeanSync),
			fmt.Sprintf("%.2f", dynamic.MeanLastDepth))
	}
}

// Fig10 reproduces Figure 10: delay versus system size for static and
// dynamic placement on degree-4 trees at a small arrival spread with ample
// slack. Dynamic placement nearly neutralizes the tree depth: the delay
// becomes almost constant in p.
func Fig10(o Options) *Table {
	t := &Table{
		ID:     "FIG10",
		Title:  "static vs dynamic placement, degree 4, σ=0.25ms, slack 16ms (ms)",
		Header: []string{"procs", "static", "dynamic", "speedup", "dyn last depth"},
	}
	placementTable(t, placementVsSize(o, "fig10", 4, 16e-3))
	t.AddNote("paper shape: static delay grows with tree depth; dynamic delay is nearly constant in p")
	return t
}

// Fig11 reproduces Figure 11: the combined effect — a wider (degree 16)
// tree plus dynamic placement — versus static degree 16, across system
// sizes. With both techniques the delay is nearly independent of the
// number of processors.
func Fig11(o Options) *Table {
	t := &Table{
		ID:     "FIG11",
		Title:  "combined: degree 16 static vs dynamic, σ=0.25ms, slack 16ms (ms)",
		Header: []string{"procs", "static d=16", "dynamic d=16", "speedup", "dyn last depth"},
	}
	placementTable(t, placementVsSize(o, "fig11", 16, 16e-3))
	t.AddNote("paper shape: with a suitable degree and dynamic placement, software barriers scale to large p when slack is available")
	return t
}
