package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("unparseable cell %q", s)
	}
	return v
}

func TestExt1BaselinesFlatInSigma(t *testing.T) {
	tab := Ext1(quick())
	if len(tab.Rows) != len(SigmaGrid) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Dissemination delay (column 3) must stay within a round of its
	// structural floor across the whole σ grid.
	lo := parseCell(t, tab.Rows[0][3])
	hi := parseCell(t, tab.Rows[len(tab.Rows)-1][3])
	if hi > lo*1.5+0.05 {
		t.Errorf("dissemination delay not flat in σ: %v → %v", lo, hi)
	}
	// At the largest σ the tuned tree must beat dissemination.
	last := tab.Rows[len(tab.Rows)-1]
	if parseCell(t, last[2]) >= parseCell(t, last[3]) {
		t.Errorf("tuned tree (%s) not better than dissemination (%s) at σ=50t_c", last[2], last[3])
	}
}

func TestExt2IdleFallsWithSlack(t *testing.T) {
	tab := Ext2(Options{Episodes: 20, Warmup: 5, Seed: 7})
	prev := parseCell(t, tab.Rows[0][1])
	for _, row := range tab.Rows[1:] {
		cur := parseCell(t, row[1])
		if cur > prev*1.05 {
			t.Fatalf("idle time rose with slack: %v after %v", cur, prev)
		}
		prev = cur
	}
	first := parseCell(t, tab.Rows[0][1])
	lastIdle := parseCell(t, tab.Rows[len(tab.Rows)-1][1])
	if lastIdle > first/4 {
		t.Errorf("idle time barely fell across a 32× slack range: %v → %v", first, lastIdle)
	}
}

func TestExt4DistributionShape(t *testing.T) {
	tab := Ext4(quick())
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// At the largest matched σ, every distribution's optimum is a wide
	// tree; the exponential's never narrower than... shape assertions are
	// statistical, so assert only the robust ones: wide optima at σ=25t_c.
	last := tab.Rows[len(tab.Rows)-1]
	for col := 1; col <= 3; col++ {
		if parseCell(t, last[col]) < 8 {
			t.Errorf("σ=25t_c col %d: optimal degree %v, want wide", col, parseCell(t, last[col]))
		}
	}
}

func TestExt3AdaptiveTracksRegimes(t *testing.T) {
	tab := Ext3(Options{Episodes: 30, Warmup: 5, Seed: 7})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	phase1, phase2 := tab.Rows[0], tab.Rows[1]
	// Phase 1 (balanced): fixed 64 is poor; adaptive must be within 2× of
	// fixed 4.
	if parseCell(t, phase1[4]) > 2*parseCell(t, phase1[2]) {
		t.Errorf("adaptive %s far from fixed-4 %s in balanced phase", phase1[4], phase1[2])
	}
	// Phase 2 (σ=50t_c): fixed 4 is poor; adaptive must be within 2× of
	// fixed 64 and must have widened its degree.
	if parseCell(t, phase2[4]) > 2*parseCell(t, phase2[3]) {
		t.Errorf("adaptive %s far from fixed-64 %s in imbalanced phase", phase2[4], phase2[3])
	}
	if d := parseCell(t, phase2[5]); d < 16 {
		t.Errorf("adaptive degree %v after regime change, want wide", d)
	}
}
