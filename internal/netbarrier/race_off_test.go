//go:build !race

package netbarrier

// raceEnabled reports whether the race detector is compiled in. The strict
// zero-alloc assertions are skipped under -race: the detector instruments
// every allocation site and the counts stop meaning anything.
const raceEnabled = false
