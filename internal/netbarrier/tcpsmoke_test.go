package netbarrier

import (
	"strings"
	"sync"
	"testing"
	"time"

	"softbarrier"
)

// The protocol-logic suites run on wire/memnet; the smokes in this file
// keep one scenario per suite on real loopback TCP so a regression in the
// production transport path (socket options, kernel deadline behaviour,
// partial writes) cannot hide behind the in-process pipes. The stall
// suite's TCP smoke is TestStalledSocketPoisonCause; the zero-alloc gates
// and benchmarks are TCP throughout.

// TestTCPSmokeSession: one multi-episode session and one disconnect
// poison over real sockets.
func TestTCPSmokeSession(t *testing.T) {
	addr, _ := startTCPServer(t, Options{Watchdog: 10 * time.Second})
	const p = 3

	clients := make([]*Client, p)
	for i := range clients {
		clients[i] = dialJoin(t, addr, "tcp-smoke", p, i)
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	var wg sync.WaitGroup
	for ep := 0; ep < 3; ep++ {
		for i, c := range clients {
			wg.Add(1)
			go func(i int, c *Client) {
				defer wg.Done()
				r, err := c.Wait()
				if err != nil {
					t.Errorf("client %d episode %d: %v", i, ep, err)
				} else if r.Episode != uint64(ep) {
					t.Errorf("client %d: released as episode %d, want %d", i, r.Episode, ep)
				}
			}(i, c)
		}
		wg.Wait()
	}

	// Kill one member mid-episode; the rest must see the disconnect poison.
	errsCh := make(chan error, p-1)
	for _, c := range clients[:p-1] {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			_, err := c.Wait()
			errsCh <- err
		}(c)
	}
	time.Sleep(20 * time.Millisecond)
	clients[p-1].Close()
	wg.Wait()
	close(errsCh)
	for err := range errsCh {
		if err == nil || !strings.Contains(err.Error(), "disconnected") {
			t.Errorf("poison cause = %v; want the disconnect named", err)
		}
	}
}

// TestTCPSmokeElastic: a late joiner admitted at an episode boundary over
// real sockets.
func TestTCPSmokeElastic(t *testing.T) {
	const session = "tcp-smoke-elastic"
	addr, srv := startTCPServer(t, Options{Elastic: true, Watchdog: 10 * time.Second})

	a := dialJoin(t, addr, session, 2, -1)
	defer a.Close()
	b := dialJoin(t, addr, session, 2, -1)
	defer b.Close()

	joinErr := make(chan error, 1)
	var late *Client
	go func() {
		c, err := testDial(addr)
		if err == nil {
			err = c.Join(session, 2)
		}
		late = c
		joinErr <- err
	}()
	waitFor := time.Now().Add(10 * time.Second)
	for {
		if st, ok := srv.SessionStats(session); ok && st.Pending == 1 {
			break
		}
		if time.Now().After(waitFor) {
			t.Fatal("late joiner never parked as pending")
		}
		time.Sleep(100 * time.Microsecond)
	}

	var wg sync.WaitGroup
	for _, c := range []*Client{a, b} {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			if _, err := c.Wait(); err != nil {
				t.Errorf("founding member: %v", err)
			}
		}(c)
	}
	wg.Wait()
	if err := <-joinErr; err != nil {
		t.Fatalf("late join: %v", err)
	}
	defer late.Close()
	if got := late.Participants(); got != 3 {
		t.Errorf("late joiner sees p = %d, want 3", got)
	}
}

// TestTCPSmokeAllReduce: one collective episode with a ledger check over
// real sockets.
func TestTCPSmokeAllReduce(t *testing.T) {
	const p = 4
	op, _ := softbarrier.OpByName("sum-f64")
	addr, _ := startTCPServer(t, Options{Watchdog: 10 * time.Second, Op: opPtr(op)})

	want := 0.0
	for i := 0; i < p; i++ {
		want += float64(i + 1)
	}
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := dialJoin(t, addr, "tcp-smoke-ar", p, i)
			defer c.Leave()
			res, err := c.AllReduce(f64bytes(float64(i + 1)))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			if got := bytesF64(res); got != want {
				t.Errorf("client %d: AllReduce = %v, want %v", i, got, want)
			}
		}(i)
	}
	wg.Wait()
}
