package netbarrier

import (
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"softbarrier/internal/wire"
)

// stallConn wraps a server-side connection so a test can freeze its write
// path: while stalled, Write blocks — honoring SetWriteDeadline, so the
// server's fan-out write still times out per the normal semantics — and
// reads pass through untouched.
type stallConn struct {
	net.Conn
	mu       sync.Mutex
	stalled  bool
	deadline time.Time
}

func (c *stallConn) SetStalled(v bool) {
	c.mu.Lock()
	c.stalled = v
	c.mu.Unlock()
}

func (c *stallConn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.deadline = t
	c.mu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

func (c *stallConn) Write(p []byte) (int, error) {
	for {
		c.mu.Lock()
		stalled, deadline := c.stalled, c.deadline
		c.mu.Unlock()
		if !stalled {
			return c.Conn.Write(p)
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return 0, os.ErrDeadlineExceeded
		}
		time.Sleep(time.Millisecond)
	}
}

// stallListener wraps every accepted connection in a stallConn and records
// them so the test can pick a victim by remote address.
type stallListener struct {
	net.Listener
	mu    sync.Mutex
	conns []*stallConn
}

func (l *stallListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	sc := &stallConn{Conn: c}
	l.mu.Lock()
	l.conns = append(l.conns, sc)
	l.mu.Unlock()
	return sc, nil
}

// connFor returns the wrapped server-side conn whose remote address is
// addr (a client conn's local address).
func (l *stallListener) connFor(addr string) *stallConn {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.conns {
		if c.RemoteAddr().String() == addr {
			return c
		}
	}
	return nil
}

// startStallServer is startServer over a stallListener, on the in-process
// test network. The TCP variant below keeps one stall scenario on real
// sockets.
func startStallServer(t *testing.T, opt Options) (addr string, ln *stallListener) {
	t.Helper()
	return startStallServerOn(t, testNet, "mem:0", opt)
}

func startStallServerOn(t *testing.T, tr wire.Transport, bind string, opt Options) (addr string, ln *stallListener) {
	t.Helper()
	raw, err := tr.Listen(bind)
	if err != nil {
		t.Fatal(err)
	}
	ln = &stallListener{Listener: raw}
	srv := NewServer(opt)
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return raw.Addr().String(), ln
}

// TestStalledSocketReleaseFanOut is the regression gate for the concurrent
// release fan-out: with one member's server-side socket frozen, the other
// members' Release frames must arrive within episode time — not after the
// stalled member's write deadline, which is what the old sequential
// broadcast cost them — and the stalled member must still poison the
// session once its write times out.
func TestStalledSocketReleaseFanOut(t *testing.T) {
	const (
		p            = 3
		writeTimeout = 3 * time.Second
		// A loopback episode completes in microseconds; a whole second of
		// margin still proves the continuing members did not sit behind the
		// victim's 3s write deadline.
		promptly = 1 * time.Second
	)
	addr, ln := startStallServer(t, Options{WriteTimeout: writeTimeout, Watchdog: 30 * time.Second})

	victim := dialJoin(t, addr, "stall", p, 0)
	defer victim.Close()
	c1 := dialJoin(t, addr, "stall", p, 1)
	defer c1.Close()
	c2 := dialJoin(t, addr, "stall", p, 2)
	defer c2.Close()

	// One clean episode so every connection is fully set up.
	var wg sync.WaitGroup
	for _, c := range []*Client{victim, c1, c2} {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			if _, err := c.Wait(); err != nil {
				t.Errorf("warmup: %v", err)
			}
		}(c)
	}
	wg.Wait()

	sc := ln.connFor(victim.LocalAddr().String())
	if sc == nil {
		t.Fatal("no server-side conn for the victim client")
	}
	sc.SetStalled(true)

	// Everyone arrives; the victim's release write will hang on its frozen
	// socket, but episode completion must still release the others.
	if err := victim.Arrive(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	var others sync.WaitGroup
	lat := make([]time.Duration, 2)
	errs := make([]error, 2)
	for i, c := range []*Client{c1, c2} {
		others.Add(1)
		go func(i int, c *Client) {
			defer others.Done()
			_, errs[i] = c.Wait()
			lat[i] = time.Since(start)
		}(i, c)
	}
	others.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("continuing member %d: %v", i+1, errs[i])
		}
		if lat[i] > promptly {
			t.Fatalf("continuing member %d released after %v; want ≤ %v (fan-out must not serialize behind the stalled socket's %v deadline)",
				i+1, lat[i], promptly, writeTimeout)
		}
	}

	// The stalled member's write eventually times out and poisons the
	// session per the existing semantics: the continuing members' next Wait
	// surfaces the poison cause.
	sawPoison := make(chan error, 2)
	for _, c := range []*Client{c1, c2} {
		go func(c *Client) {
			_, err := c.Wait()
			sawPoison <- err
		}(c)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-sawPoison:
			if err == nil {
				t.Fatal("episode after the stall released cleanly; want the session poisoned by the victim's write timeout")
			}
		case <-time.After(writeTimeout + 5*time.Second):
			t.Fatal("timed out waiting for the stall to poison the session")
		}
	}
}

// TestPoisonedPendingJoinerFailsFast is the regression test for the
// deferred-JoinResp poison path: a pending (elastic, not yet admitted)
// joiner whose refusal cannot be written must have its connection closed so
// the client fails fast, instead of silently hanging until its own join
// timeout.
func TestPoisonedPendingJoinerFailsFast(t *testing.T) {
	var logMu sync.Mutex
	var logLines []string
	addr, ln := startStallServer(t, Options{
		Elastic: true, WriteTimeout: 500 * time.Millisecond, Watchdog: 30 * time.Second,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logLines = append(logLines, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})

	// Fill the initial cohort so the next join parks on the pending list.
	a := dialJoin(t, addr, "pend", 1, -1)
	defer a.Close()

	pc, err := testDial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	joinErr := make(chan error, 1)
	go func() { joinErr <- pc.Join("pend", 1) }()

	// Wait until the server has parked the pending joiner, then freeze its
	// socket so the refusal write must fail.
	deadline := time.Now().Add(5 * time.Second)
	var sc *stallConn
	for time.Now().Before(deadline) {
		if sc = ln.connFor(pc.LocalAddr().String()); sc != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if sc == nil {
		t.Fatal("no server-side conn for the pending joiner")
	}
	time.Sleep(50 * time.Millisecond) // let the JoinReq reach the session's pending list
	sc.SetStalled(true)

	// Poison the session: the lone member vanishing mid-session does it.
	a.Close()

	// The pending client must fail fast — refusal write times out after
	// 500ms, then the server closes the connection — rather than hang for
	// the full join timeout (10s default).
	select {
	case err := <-joinErr:
		if err == nil {
			t.Fatal("pending join succeeded on a poisoned session")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending joiner hung after session poison; want its connection closed so Join fails fast")
	}
	// And the failure is no longer silent: the refusal write's error is on
	// the server's log.
	logMu.Lock()
	defer logMu.Unlock()
	for _, line := range logLines {
		if strings.Contains(line, "failed to refuse pending client") {
			return
		}
	}
	t.Fatalf("no 'failed to refuse pending client' log line; got %q", logLines)
}

// TestStalledSocketPoisonCause checks the stalled member itself: once its
// write deadline expires the session poisons with an "unreachable" cause,
// and the stalled member — whose socket only ever froze server-side
// writes — sees the connection die rather than a clean release. It is the
// stall suite's TCP smoke: the same scenario the memnet tests above run,
// on real loopback sockets.
func TestStalledSocketPoisonCause(t *testing.T) {
	const p = 2
	addr, ln := startStallServerOn(t, wire.DefaultTCP, "127.0.0.1:0",
		Options{WriteTimeout: 500 * time.Millisecond, Watchdog: 30 * time.Second})
	victim := dialJoin(t, addr, "cause", p, 0)
	defer victim.Close()
	peer := dialJoin(t, addr, "cause", p, 1)
	defer peer.Close()

	var wg sync.WaitGroup
	for _, c := range []*Client{victim, peer} {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			if _, err := c.Wait(); err != nil {
				t.Errorf("warmup: %v", err)
			}
		}(c)
	}
	wg.Wait()

	sc := ln.connFor(victim.LocalAddr().String())
	if sc == nil {
		t.Fatal("no server-side conn for the victim client")
	}
	sc.SetStalled(true)

	if err := victim.Arrive(); err != nil {
		t.Fatal(err)
	}
	if _, err := peer.Wait(); err != nil {
		t.Fatalf("peer's release should beat the stall: %v", err)
	}
	// The peer's next wait surfaces the poison the victim's timed-out write
	// caused.
	if _, err := peer.Wait(); err == nil {
		t.Fatal("want the victim's write timeout to poison the session")
	} else if !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("poison cause = %v; want the victim reported unreachable", err)
	}
}
