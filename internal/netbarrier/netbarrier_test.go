package netbarrier

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"softbarrier"
	"softbarrier/internal/wire"
	"softbarrier/internal/wire/memnet"
)

// testNet is the in-process memnet the protocol-logic tests run on: no
// kernel sockets, no ephemeral-port collisions, a fraction of the
// wall-clock. Its addresses look like "mem:<port>", which is how testDial
// routes them back through it; the per-suite TCP smokes and the
// zero-alloc gates use startTCPServer and real loopback sockets.
var testNet = memnet.New()

// startServer runs a server on the in-process test network and returns
// its address. The server is torn down with the test.
func startServer(t testing.TB, opt Options) (addr string, srv *Server) {
	t.Helper()
	return startServerOn(t, testNet, "mem:0", opt)
}

// startTCPServer runs a server on an ephemeral loopback TCP port: the
// production transport, for the per-suite smokes and the alloc gates.
func startTCPServer(t testing.TB, opt Options) (addr string, srv *Server) {
	t.Helper()
	return startServerOn(t, wire.DefaultTCP, "127.0.0.1:0", opt)
}

func startServerOn(t testing.TB, tr wire.Transport, bind string, opt Options) (addr string, srv *Server) {
	t.Helper()
	ln, err := tr.Listen(bind)
	if err != nil {
		t.Fatal(err)
	}
	srv = NewServer(opt)
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return ln.Addr().String(), srv
}

// testDial routes an address to the transport that owns it: testNet for
// memnet addresses, TCP otherwise.
func testDial(addr string) (*Client, error) {
	if strings.HasPrefix(addr, "mem:") {
		return DialVia(testNet, addr, 5*time.Second)
	}
	return DialTimeout(addr, 5*time.Second)
}

// dialJoin connects and joins, failing the test on any error.
func dialJoin(t testing.TB, addr, session string, p, id int) *Client {
	t.Helper()
	c, err := testDial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.JoinAs(session, p, id); err != nil {
		c.Close()
		t.Fatalf("join %s: %v", session, err)
	}
	return c
}

func TestSessionEpisodes(t *testing.T) {
	addr, _ := startServer(t, Options{Watchdog: 5 * time.Second})
	const p, episodes = 4, 25

	var wg sync.WaitGroup
	errs := make([]error, p)
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := dialJoin(t, addr, "episodes", p, i)
			defer c.Leave()
			if c.ID() != i {
				errs[i] = fmt.Errorf("asked for id %d, got %d", i, c.ID())
				return
			}
			for ep := 0; ep < episodes; ep++ {
				r, err := c.Wait()
				if err != nil {
					errs[i] = fmt.Errorf("episode %d: %w", ep, err)
					return
				}
				if r.Episode != uint64(ep) {
					errs[i] = fmt.Errorf("episode %d released as %d", ep, r.Episode)
					return
				}
				if r.Degree < 2 || r.Degree > p {
					errs[i] = fmt.Errorf("episode %d: degree %d outside [2, %d]", ep, r.Degree, p)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
}

func TestFuzzyArriveAwaitOverlap(t *testing.T) {
	addr, _ := startServer(t, Options{})
	const p = 3
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := dialJoin(t, addr, "fuzzy", p, -1)
			defer c.Leave()
			for ep := 0; ep < 10; ep++ {
				if err := c.Arrive(); err != nil {
					t.Errorf("client %d arrive: %v", i, err)
					return
				}
				// Slack work between the phases — the fuzzy-barrier shape.
				time.Sleep(time.Duration(i) * 100 * time.Microsecond)
				if _, err := c.Await(); err != nil {
					t.Errorf("client %d await: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestJoinRefusals(t *testing.T) {
	addr, _ := startServer(t, Options{})
	c0 := dialJoin(t, addr, "refuse", 2, 0)
	defer c0.Close()

	cases := []struct {
		name    string
		session string
		p, id   int
		want    string
	}{
		{"p mismatch", "refuse", 3, -1, "participants"},
		{"id taken", "refuse", 2, 0, "already taken"},
		{"id out of range", "refuse", 2, 7, "out of range"},
		{"bad p", "other", 0, -1, "participant count"},
		{"empty name", "", 2, -1, "empty session name"},
	}
	for _, tc := range cases {
		c, err := testDial(addr)
		if err != nil {
			t.Fatal(err)
		}
		err = c.JoinAs(tc.session, tc.p, tc.id)
		c.Close()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want refusal containing %q", tc.name, err, tc.want)
		}
	}

	// The full-session refusal.
	c1 := dialJoin(t, addr, "refuse", 2, -1)
	defer c1.Close()
	c, err := testDial(addr)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Join("refuse", 2)
	c.Close()
	if err == nil || !strings.Contains(err.Error(), "full") {
		t.Errorf("join of full session: got %v", err)
	}
}

// TestDisconnectPoisons kills one client mid-episode and requires every
// other member to receive a poison cause naming the disconnection —
// promptly, not at some watchdog horizon.
func TestDisconnectPoisons(t *testing.T) {
	addr, _ := startServer(t, Options{Watchdog: 10 * time.Second})
	const p = 4

	clients := make([]*Client, p)
	for i := range clients {
		clients[i] = dialJoin(t, addr, "killed", p, i)
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	// One full episode so the session is warm.
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			if _, err := c.Wait(); err != nil {
				t.Errorf("warmup: %v", err)
			}
		}(c)
	}
	wg.Wait()

	// Next episode: 0..2 arrive and wait; 3 dies without arriving.
	start := time.Now()
	errsCh := make(chan error, p-1)
	for _, c := range clients[:p-1] {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			_, err := c.Wait()
			errsCh <- err
		}(c)
	}
	time.Sleep(20 * time.Millisecond) // let the others' arrivals land first
	clients[p-1].Close()
	wg.Wait()
	close(errsCh)
	for err := range errsCh {
		if err == nil {
			t.Fatal("waiter returned success from a poisoned episode")
		}
		if !strings.Contains(err.Error(), "disconnected") {
			t.Errorf("poison cause does not name the disconnect: %v", err)
		}
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("poison took %v to reach the waiters", d)
	}

	// The poisoned session retired, so its name is immediately reusable.
	c, err := testDial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Join("killed", 2); err != nil {
		t.Errorf("rejoining a retired session name: %v", err)
	}
}

// TestWatchdogStallDeliversStallError holds one member back without
// killing its connection: only the stall watchdog can catch that, and the
// StallError it poisons with must cross the wire with the missing ids
// intact and within the watchdog deadline.
func TestWatchdogStallDeliversStallError(t *testing.T) {
	const watchdog = 300 * time.Millisecond
	addr, _ := startServer(t, Options{Watchdog: watchdog})
	const p = 4

	clients := make([]*Client, p)
	for i := range clients {
		clients[i] = dialJoin(t, addr, "stall", p, i)
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	errsCh := make(chan error, p-1)
	for _, c := range clients[:p-1] {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			_, err := c.Wait()
			errsCh <- err
		}(c)
	}
	// Client 3 never arrives; it just sits on a healthy connection.
	wg.Wait()
	waited := time.Since(start)
	close(errsCh)
	for err := range errsCh {
		var stall *softbarrier.StallError
		if !errors.As(err, &stall) {
			t.Fatalf("want *StallError across the wire, got %v", err)
		}
		if len(stall.Missing) != 1 || stall.Missing[0] != 3 {
			t.Errorf("StallError.Missing = %v, want [3]", stall.Missing)
		}
		if stall.Waited < watchdog {
			t.Errorf("StallError.Waited = %v, below the %v deadline", stall.Waited, watchdog)
		}
	}
	// "Within the watchdog deadline": the detector needs one deadline to
	// elapse plus its polling slop; anything near that bound is on time.
	if waited > 4*watchdog+time.Second {
		t.Errorf("stall delivery took %v with a %v watchdog", waited, watchdog)
	}

	// The idle-session guard: a session with no episode in flight must
	// never be stall-poisoned, however long it idles.
	idle := dialJoin(t, addr, "idle", 1, -1)
	defer idle.Leave()
	time.Sleep(3 * watchdog)
	if _, err := idle.Wait(); err != nil {
		t.Errorf("idle session poisoned: %v", err)
	}
}

// TestReplanAcceptance is the tentpole acceptance run: 64 loopback
// clients, 1000 consecutive episodes, with an arrival-jitter phase in the
// middle that moves the measured σ enough for the planner to change the
// tree degree mid-run. Run it with -race to check the whole stack.
func TestReplanAcceptance(t *testing.T) {
	const (
		p        = 64
		episodes = 1000
		jitterLo = 350 // episodes [jitterLo, jitterHi) sleep before arriving
		jitterHi = 500
	)
	addr, srv := startServer(t, Options{
		Watchdog:     10 * time.Second,
		ReplanEvery:  4,
		InitialSigma: 0,
	})
	_ = srv

	type result struct {
		degrees []int // degree sequence as seen in Release frames
		err     error
	}
	results := make([]result, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res := &results[i]
			c, err := testDial(addr)
			if err != nil {
				res.err = err
				return
			}
			if err := c.JoinAs("acceptance", p, i); err != nil {
				res.err = err
				c.Close()
				return
			}
			defer c.Leave()
			rng := rand.New(rand.NewSource(int64(i) * 7919))
			last := -1
			for ep := 0; ep < episodes; ep++ {
				if ep >= jitterLo && ep < jitterHi {
					// Load imbalance: spread arrivals over ~2ms. σ of
					// U(0, 2ms) ≈ 580µs, which the model answers with a
					// much wider tree than the near-simultaneous phases.
					time.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
				}
				r, err := c.Wait()
				if err != nil {
					res.err = fmt.Errorf("episode %d: %w", ep, err)
					return
				}
				if r.Episode != uint64(ep) {
					res.err = fmt.Errorf("episode %d released as %d", ep, r.Episode)
					return
				}
				if r.Degree != last {
					res.degrees = append(res.degrees, r.Degree)
					last = r.Degree
				}
			}
		}(i)
	}
	wg.Wait()

	for i := range results {
		if results[i].err != nil {
			t.Fatalf("client %d: %v", i, results[i].err)
		}
	}
	// Every client saw the same ordered degree history (frames are a total
	// order per session), and it changed at least once mid-run.
	degrees := results[0].degrees
	t.Logf("degree history over %d episodes: %v", episodes, degrees)
	for i := 1; i < p; i++ {
		if fmt.Sprint(results[i].degrees) != fmt.Sprint(degrees) {
			t.Fatalf("client %d saw degree history %v, client 0 saw %v", i, results[i].degrees, degrees)
		}
	}
	if len(degrees) < 2 {
		t.Fatalf("no mid-run degree re-plan: degree history %v", degrees)
	}
}

// TestAwaitCtxCancel checks the client-side cancellation path: the
// abandoned wait reports the context error and the connection teardown
// poisons the session for everyone else.
func TestAwaitCtxCancel(t *testing.T) {
	addr, _ := startServer(t, Options{})
	const p = 2
	c0 := dialJoin(t, addr, "cancel", p, 0)
	defer c0.Close()
	c1 := dialJoin(t, addr, "cancel", p, 1)
	defer c1.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c0.WaitCtx(ctx)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled wait returned %v", err)
	}
	// The cancelled client abandons the session entirely. c0's Arrive was
	// already in, so the in-flight episode may legitimately complete for
	// c1 — but after the disconnect no further episode can.
	c0.Close()
	if _, err := c1.Wait(); err == nil {
		if _, err := c1.Wait(); err == nil {
			t.Fatal("peer of a departed participant completed an episode without it")
		}
	}
}

// TestClientPoisonCarriesIdentity pins the member-initiated poison path:
// Client.Poison's cause must come out of the other members' waits with
// errors.Is/As identity intact — a sentinel stays Is-able, a *StallError
// stays As-able with its fields. (Regression: the server once treated a
// member's Poison frame as a protocol violation, destroying the cause.)
func TestClientPoisonCarriesIdentity(t *testing.T) {
	addr, _ := startServer(t, Options{Watchdog: 30 * time.Second})

	t.Run("sentinel", func(t *testing.T) {
		a := dialJoin(t, addr, "poison-is", 2, 0)
		defer a.Close()
		b := dialJoin(t, addr, "poison-is", 2, 1)
		defer b.Close()
		errCh := make(chan error, 1)
		go func() {
			_, err := b.Wait()
			errCh <- err
		}()
		time.Sleep(10 * time.Millisecond)
		if err := a.Poison(context.Canceled); err != nil {
			t.Fatalf("poison: %v", err)
		}
		if err := <-errCh; !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter got %v; want errors.Is(err, context.Canceled)", err)
		}
	})

	t.Run("stall-error", func(t *testing.T) {
		a := dialJoin(t, addr, "poison-as", 2, 0)
		defer a.Close()
		b := dialJoin(t, addr, "poison-as", 2, 1)
		defer b.Close()
		errCh := make(chan error, 1)
		go func() {
			_, err := b.Wait()
			errCh <- err
		}()
		time.Sleep(10 * time.Millisecond)
		cause := &softbarrier.StallError{Missing: []int{3, 7}, Waited: 42 * time.Second}
		if err := a.Poison(cause); err != nil {
			t.Fatalf("poison: %v", err)
		}
		err := <-errCh
		var stall *softbarrier.StallError
		if !errors.As(err, &stall) {
			t.Fatalf("waiter got %v; want an errors.As-able *StallError", err)
		}
		if len(stall.Missing) != 2 || stall.Missing[0] != 3 || stall.Missing[1] != 7 || stall.Waited != 42*time.Second {
			t.Fatalf("StallError lost fields in transit: %+v", stall)
		}
	})
}
