// Package netbarrier extends the softbarrier design space across a
// network: a barrier coordination service (Server, deployed as the
// cmd/barrierd daemon) that clients join over TCP to synchronize named
// episode cohorts, with the paper's machinery running server-side.
//
// The paper's core result — the optimal combining-tree degree grows with
// the arrival-time spread σ — matters most in exactly this setting, where
// arrival skew is large (network jitter stacks on load imbalance) and
// shifts over time. Each session therefore measures the spread of its
// remote arrivals per episode exactly as the in-process barriers do (the
// shared internal/runtime recorder), folds it into an EWMA σ, and at
// episode boundaries asks the planner (softbarrier.RecommendMeasured) for
// the degree that σ justifies; when the recommendation moves, the arrival
// tree is rebuilt at the new degree during the release — a quiescent
// point, so the swap is a plain pointer store. With Options.Dynamic the
// planner selects the dynamic-placement tree instead, and consistently
// slow clients migrate toward the root between episodes.
//
// Failure semantics are the PR-3 poison machinery end to end. Whatever
// kills an episode — a client disconnecting mid-session, a stall caught
// by the WithWatchdog detector, a protocol violation, server shutdown —
// poisons the session's tree, and the WithPoisonNotify hook broadcasts
// the softbarrier.EncodePoisonCause wire form of the cause to every
// member socket. Remote waiters therefore fail exactly like local ones:
// errors.As recovers the *StallError naming who never arrived, instead of
// the client hanging on a dead episode.
//
// The wire protocol is eleven length-prefixed binary frame types (see
// protocol.go); release fan-out assembles each frame once and writes it
// to each member socket in a single batched write. Handshake frames
// (JoinReq, ShardJoin, JoinResp) carry a protocol version byte, so a
// mixed-revision deployment is refused at join time with an error naming
// both versions instead of failing later with a garbled frame.
//
// The ShardJoin/ShardArrive/ShardRelease frames carry the hierarchical
// deployment (internal/shardbarrier): a leaf server combines its local
// clients through its own tree, then — via Options.Upstream — forwards
// one aggregated arrival per episode to a root barrierd, which combines
// the shards exactly like a session of clients and fans one release back
// down. The root is this same Server; shard sessions differ only in that
// their arrivals carry pre-folded partial results and their releases
// carry the fleet-wide fold, σ, and participant count.
package netbarrier
