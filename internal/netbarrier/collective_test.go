package netbarrier

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"softbarrier"
)

func f64bytes(v float64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, math.Float64bits(v))
	return b
}

func bytesF64(b []byte) float64 {
	return math.Float64frombits(binary.BigEndian.Uint64(b))
}

func opPtr(op softbarrier.Op) *softbarrier.Op { return &op }

// TestCollectiveSessionAllReduce drives a fixed-membership collective
// session with the non-commutative float sum and checks every episode's
// result bit-for-bit against the sequential ascending-id fold — the
// magnitudes are chosen so any other fold order produces different bits.
func TestCollectiveSessionAllReduce(t *testing.T) {
	const p, episodes = 6, 30
	op, _ := softbarrier.OpByName("sum-f64")
	addr, _ := startServer(t, Options{Watchdog: 30 * time.Second, Op: opPtr(op)})

	contrib := func(id, ep int) float64 {
		// Spread magnitudes over ~9 decades: (a+b)+c differs in bits from
		// a+(b+c) for these, so the fold order is observable.
		return float64(id+1) * math.Pow(10, float64((id*3+ep)%9-4))
	}
	want := func(ep int) float64 {
		acc := contrib(0, ep)
		for id := 1; id < p; id++ {
			acc += contrib(id, ep)
		}
		return acc
	}

	var wg sync.WaitGroup
	errs := make([]error, p)
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := dialJoin(t, addr, "collective", p, i)
			defer c.Leave()
			for ep := 0; ep < episodes; ep++ {
				res, err := c.AllReduce(f64bytes(contrib(i, ep)))
				if err != nil {
					errs[i] = fmt.Errorf("episode %d: %w", ep, err)
					return
				}
				if got, w := bytesF64(res), want(ep); math.Float64bits(got) != math.Float64bits(w) {
					errs[i] = fmt.Errorf("episode %d: result %v (bits %x), want %v (bits %x)",
						ep, got, math.Float64bits(got), w, math.Float64bits(w))
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
}

// TestCollectiveSessionMixedArrivals checks that a payload-less Wait in a
// collective session contributes the op's identity: the cohort's result
// is the fold over only the contributing members.
func TestCollectiveSessionMixedArrivals(t *testing.T) {
	const p = 4
	op, _ := softbarrier.OpByName("sum-u64")
	addr, _ := startServer(t, Options{Watchdog: 30 * time.Second, Op: opPtr(op)})

	var wg sync.WaitGroup
	errs := make([]error, p)
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := dialJoin(t, addr, "mixed", p, i)
			defer c.Leave()
			for ep := 0; ep < 10; ep++ {
				if i == 0 {
					// Plain barrier participation: contributes identity, and
					// the release still carries the cohort's result.
					rel, err := c.Wait()
					if err != nil {
						errs[i] = err
						return
					}
					if got := binary.BigEndian.Uint64(rel.Result); got != 60 {
						errs[i] = fmt.Errorf("episode %d: plain waiter saw sum %d, want 60", ep, got)
						return
					}
					continue
				}
				in := make([]byte, 8)
				binary.BigEndian.PutUint64(in, uint64(i*10))
				res, err := c.AllReduce(in)
				if err != nil {
					errs[i] = err
					return
				}
				if got := binary.BigEndian.Uint64(res); got != 60 { // 10+20+30
					errs[i] = fmt.Errorf("episode %d: sum %d, want 60", ep, got)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
}

// TestCollectiveWidthViolationPoisons checks the server treats a
// mis-sized contribution as a protocol violation poisoning the session.
func TestCollectiveWidthViolationPoisons(t *testing.T) {
	op, _ := softbarrier.OpByName("sum-u64")
	addr, _ := startServer(t, Options{Op: opPtr(op)})
	c0 := dialJoin(t, addr, "width", 2, 0)
	defer c0.Close()
	c1 := dialJoin(t, addr, "width", 2, 1)
	defer c1.Close()

	if err := c1.ArriveReduce([]byte{1, 2, 3}); err != nil { // op wants 8 bytes
		t.Fatal(err)
	}
	if _, err := c1.Await(); err == nil || !strings.Contains(err.Error(), "protocol violation") {
		t.Fatalf("mis-sized contribution not poisoned: %v", err)
	}
}

// TestCollectiveDataWithoutOpPoisons checks an ArriveData frame against a
// plain (op-less) session is a protocol violation.
func TestCollectiveDataWithoutOpPoisons(t *testing.T) {
	addr, _ := startServer(t, Options{})
	c0 := dialJoin(t, addr, "noop", 2, 0)
	defer c0.Close()
	c1 := dialJoin(t, addr, "noop", 2, 1)
	defer c1.Close()

	if err := c1.ArriveReduce(make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Await(); err == nil || !strings.Contains(err.Error(), "no collective op") {
		t.Fatalf("arrive-data against a plain session not poisoned: %v", err)
	}
}

// episodeRecord is one client's view of one completed collective episode.
type episodeRecord struct {
	episode uint64
	contrib uint64
	result  uint64
}

// TestAcceptanceElasticAllReduce is the collective acceptance run: a
// 64-client elastic cohort completes well over 1000 AllReduce episodes
// with 8 members leaving and 8 joining mid-run, and afterwards every
// episode's delivered result must equal the fold of exactly the
// contributions its participants recorded — the sequential fold,
// reconstructed from the clients' own ledgers, with elastic leavers
// proxy-folded as the identity. Contributions are keyed by episode, not
// by id, because an elastic server re-assigns ids at every boundary.
func TestAcceptanceElasticAllReduce(t *testing.T) {
	if testing.Short() {
		t.Skip("acceptance run; skipped with -short")
	}
	const (
		cohort  = 64
		churn   = 8
		minEp   = 1000
		session = "allreduce-acceptance"
	)
	op, _ := softbarrier.OpByName("sum-u64")
	addr, srv := startServer(t, Options{
		Elastic:     true,
		ReplanEvery: 4,
		Watchdog:    30 * time.Second,
		Op:          opPtr(op),
	})

	var mu sync.Mutex
	var ledger []episodeRecord

	var wg sync.WaitGroup
	errs := make(chan error, cohort+churn)
	stops := make([]chan struct{}, 0, cohort+churn)
	runner := func(c *Client, seed uint64, stop <-chan struct{}) {
		defer wg.Done()
		var recs []episodeRecord
		x := seed
		for {
			select {
			case <-stop:
				errs <- c.Leave()
				mu.Lock()
				ledger = append(ledger, recs...)
				mu.Unlock()
				return
			default:
			}
			x = x*6364136223846793005 + 1442695040888963407 // id-independent pseudo-random contribution
			in := make([]byte, 8)
			binary.BigEndian.PutUint64(in, x)
			ep := c.episode
			res, err := c.AllReduce(in)
			if err != nil {
				errs <- err
				mu.Lock()
				ledger = append(ledger, recs...)
				mu.Unlock()
				return
			}
			recs = append(recs, episodeRecord{episode: ep, contrib: x, result: binary.BigEndian.Uint64(res)})
		}
	}
	start := func(c *Client, seed uint64) {
		stop := make(chan struct{})
		stops = append(stops, stop)
		wg.Add(1)
		go runner(c, seed, stop)
	}

	clients := make([]*Client, cohort)
	var joinWG sync.WaitGroup
	for i := range clients {
		joinWG.Add(1)
		go func(i int) {
			defer joinWG.Done()
			clients[i] = dialJoin(t, addr, session, cohort, -1)
		}(i)
	}
	joinWG.Wait()
	for i, c := range clients {
		start(c, uint64(i+1))
	}

	waitEpisode(t, srv, session, 300)
	for _, stop := range stops[cohort-churn:] {
		close(stop)
	}
	waitEpisode(t, srv, session, 500)
	lateJoined := make(chan *Client, churn)
	for i := 0; i < churn; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lateJoined <- dialJoin(t, addr, session, cohort, -1)
		}()
	}
	for i := 0; i < churn; i++ {
		start(<-lateJoined, uint64(1000+i))
	}

	st := waitEpisode(t, srv, session, minEp+100)
	for _, stop := range stops[:cohort-churn] {
		close(stop)
	}
	for _, stop := range stops[cohort:] {
		close(stop)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("client failed: %v", err)
		}
	}

	// Differential check: per episode, the fold of the recorded
	// contributions must equal the result every participant received.
	sums := map[uint64]uint64{}
	results := map[uint64]uint64{}
	contributors := map[uint64]int{}
	for _, r := range ledger {
		sums[r.episode] += r.contrib
		contributors[r.episode]++
		if prev, ok := results[r.episode]; ok && prev != r.result {
			t.Fatalf("episode %d: clients disagree on the result (%d vs %d)", r.episode, prev, r.result)
		}
		results[r.episode] = r.result
	}
	if len(results) < minEp {
		t.Fatalf("only %d episodes completed, want ≥ %d", len(results), minEp)
	}
	mismatches := 0
	for ep, res := range results {
		if sums[ep] != res {
			mismatches++
			if mismatches <= 5 {
				t.Errorf("episode %d: result %d != fold of %d recorded contributions %d", ep, res, contributors[ep], sums[ep])
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d of %d episodes diverged from the sequential fold", mismatches, len(results))
	}
	t.Logf("collective acceptance: %d episodes verified against client ledgers, final membership %d, %d rebuilds",
		len(results), st.P, st.Reconfig.Rebuilds)
}

// benchAllReduce measures full collective episodes — every client
// contributes 8 bytes and blocks for the folded result — against a
// server started by start, so ns/op is one complete AllReduce at each
// cohort size; put it next to the plain-barrier benchmarks to read the
// payload's marginal cost.
func benchAllReduce(b *testing.B, start func(testing.TB, Options) (string, *Server)) {
	op, _ := softbarrier.OpByName("sum-u64")
	for _, p := range []int{8, 64} {
		b.Run(fmt.Sprintf("%dclients", p), func(b *testing.B) {
			b.ReportAllocs()
			addr, _ := start(b, Options{Watchdog: 30 * time.Second, Op: opPtr(op)})
			clients := make([]*Client, p)
			for i := range clients {
				clients[i] = dialJoin(b, addr, "bench-allreduce", p, i)
			}
			defer func() {
				for _, c := range clients {
					c.Leave()
				}
			}()

			var wg sync.WaitGroup
			errs := make([]error, p)
			b.ResetTimer()
			for i, c := range clients {
				wg.Add(1)
				go func(i int, c *Client) {
					defer wg.Done()
					in := make([]byte, 8)
					binary.BigEndian.PutUint64(in, uint64(i))
					for ep := 0; ep < b.N; ep++ {
						if _, err := c.AllReduce(in); err != nil {
							errs[i] = err
							return
						}
					}
				}(i, c)
			}
			wg.Wait()
			b.StopTimer()
			for i, err := range errs {
				if err != nil {
					b.Fatalf("client %d: %v", i, err)
				}
			}
		})
	}
}

// BenchmarkNetAllReduce runs the collective suite over loopback TCP, the
// production transport.
func BenchmarkNetAllReduce(b *testing.B) { benchAllReduce(b, startTCPServer) }

// BenchmarkNetAllReduceMemNet runs it over the in-process memnet; the
// TCP-minus-memnet delta is the kernel's share of a collective episode.
func BenchmarkNetAllReduceMemNet(b *testing.B) { benchAllReduce(b, startServer) }
