package netbarrier

import (
	"io"

	"softbarrier/internal/wire"
)

// The frame codec lives in internal/wire (shared by every transport
// consumer: this package, shardbarrier's root links, and the chaos test
// harness). These aliases keep netbarrier's historical surface — Frame,
// the Type constants, the codec functions — intact for its callers; each
// wrapper is a single call the compiler inlines, so the zero-allocation
// steady-state path is unchanged.

// Frame is the decoded form of any protocol frame; see wire.Frame.
type Frame = wire.Frame

const (
	TypeJoinReq      = wire.TypeJoinReq
	TypeJoinResp     = wire.TypeJoinResp
	TypeArrive       = wire.TypeArrive
	TypeRelease      = wire.TypeRelease
	TypePoison       = wire.TypePoison
	TypeLeave        = wire.TypeLeave
	TypeArriveData   = wire.TypeArriveData
	TypeResult       = wire.TypeResult
	TypeShardJoin    = wire.TypeShardJoin
	TypeShardArrive  = wire.TypeShardArrive
	TypeShardRelease = wire.TypeShardRelease
)

// ProtocolVersion is the wire-protocol revision this binary speaks.
const ProtocolVersion = wire.ProtocolVersion

const (
	// MaxName bounds the session-name length in a JoinReq.
	MaxName = wire.MaxName
	// MaxFrame bounds a frame body.
	MaxFrame = wire.MaxFrame
	// MaxData bounds the collective payload of an ArriveData or Result.
	MaxData = wire.MaxData
)

// FrameName returns the symbolic name of a frame type for diagnostics.
func FrameName(t byte) string { return wire.FrameName(t) }

// AppendFrame appends f's complete wire form to dst; see wire.AppendFrame.
func AppendFrame(dst []byte, f Frame) ([]byte, error) { return wire.AppendFrame(dst, f) }

// DecodeFrame decodes one frame body; see wire.DecodeFrame.
func DecodeFrame(body []byte) (Frame, error) { return wire.DecodeFrame(body) }

// ReadFrame reads and decodes one frame from r; see wire.ReadFrame.
func ReadFrame(r io.Reader) (Frame, error) { return wire.ReadFrame(r) }

// ReadFrameInto is the zero-allocation read path; see wire.ReadFrameInto.
func ReadFrameInto(r io.Reader, buf *[]byte) (Frame, error) { return wire.ReadFrameInto(r, buf) }

// WriteFrame encodes f and writes it to w in one Write call.
func WriteFrame(w io.Writer, f Frame) error { return wire.WriteFrame(w, f) }
