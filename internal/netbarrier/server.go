package netbarrier

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"softbarrier"
	"softbarrier/internal/wire"
)

// ErrServerClosed is the poison cause members receive when the server is
// shut down under them.
var ErrServerClosed = errors.New("netbarrier: server closed")

// ShardOutcome is what an upstream's release delivers back to a leaf
// session: the fleet-wide view of the episode the leaf forwarded.
type ShardOutcome struct {
	// Result is the globally folded collective payload (nil for plain
	// sessions). The bytes are valid only while the done callback runs;
	// the session consumes them into its release encoding before returning.
	Result []byte
	// FleetP is the fleet-wide participant count across every shard.
	FleetP int
	// Sigma is the fleet-wide σ estimate the root aggregated from the
	// shards' reports, seconds. 0 means not yet measured; the leaf then
	// falls back to its local estimate.
	Sigma float64
	// Err, when non-nil, is the poison cause: the root aborted the
	// episode (another shard died, the root's watchdog fired, the root is
	// shutting down). The leaf session must poison itself with it.
	Err error
}

// Upstream is the inter-shard hook that turns a server into a leaf of a
// hierarchical deployment: a session on a server with an Upstream does
// not release an episode when its local combining tree completes — that
// completion is one *aggregated arrival* of a fleet-wide episode.
// The session forwards it upstream and releases its local clients only
// when the upstream's release comes back, so the two-level hierarchy
// composes the same episode protocol at both levels.
//
// All three methods are called at quiescent points of the session's
// episode protocol, never concurrently for one session.
// internal/shardbarrier provides the standard implementation (one
// netbarrier.Client-like link per session to the root barrierd).
type Upstream interface {
	// ShardArrive forwards the session's combined local arrival: localP
	// local participants, their measured spread and EWMA σ, and the
	// locally folded collective contribution (nil for plain sessions;
	// data is only valid during the call and must be consumed before
	// returning). done must be called exactly once — from any goroutine —
	// when the upstream releases or poisons the episode; the session
	// completes (or poisons) itself in that callback.
	ShardArrive(session string, episode uint64, localP int, spread, sigma float64, data []byte, done func(ShardOutcome))
	// ShardClose tears down the session's upstream link. A nil cause is a
	// graceful departure (the local session retired cleanly); non-nil
	// delivers the local poison cause upstream so the rest of the fleet
	// fails with the original error, not a bare disconnect. It must be
	// idempotent and safe to call for sessions that never forwarded.
	ShardClose(session string, cause error)
}

// Options configures a Server. The zero value serves plain static-degree
// sessions with no watchdog.
type Options struct {
	// Watchdog is the per-session stall deadline: an episode in which some
	// members arrived and then nothing moved for Watchdog is poisoned with
	// a StallError naming the absent ids (softbarrier.WithWatchdog
	// semantics, fed by remote arrivals). 0 disables stall detection —
	// a vanished client is then only caught by its connection dropping.
	Watchdog time.Duration
	// ReplanEvery is how many episodes pass between planner re-evaluations
	// of the tree degree; 0 means every episode. Re-planning is cheap (a
	// model evaluation) and only rebuilds the tree when the recommended
	// degree actually changes.
	ReplanEvery int
	// Dynamic marks session load imbalance as systemic, which makes the
	// planner select the dynamic-placement barrier: consistently slow
	// clients migrate toward the tree root between episodes.
	Dynamic bool
	// Elastic lets session membership change between episodes: joins
	// against a full session are parked and admitted at the next episode
	// boundary instead of refused, Leaves shrink the cohort at the next
	// boundary instead of stalling it, and the first joiner's participant
	// count is only the initial cohort size. Member ids are re-assigned
	// densely at each boundary.
	Elastic bool
	// Tc is the counter-update cost fed to the analytic model, seconds;
	// 0 selects the paper's 20µs.
	Tc float64
	// InitialSigma is the arrival spread assumed before any episode has
	// been measured, seconds. After the first episode the measured EWMA σ
	// takes over.
	InitialSigma float64
	// WriteTimeout bounds each member-socket write during fan-out;
	// 0 selects 10s. A member that cannot be written within it is treated
	// as failed and the session is poisoned.
	WriteTimeout time.Duration
	// JoinTimeout bounds how long a fresh connection may take to present
	// its JoinReq; 0 selects 10s.
	JoinTimeout time.Duration
	// MaxP caps the participant count a JoinReq may open a session with;
	// 0 selects 4096.
	MaxP int
	// Placement constructs a predictive straggler-placement policy for
	// each new session (policies are stateful and single-owner, so the
	// server needs a factory, not an instance — use
	// softbarrier.PlacementByName to resolve one from a CLI name). The
	// session feeds each episode's measured per-participant lags to the
	// policy and, on the replan cadence, rebuilds its tree with the
	// predicted stragglers in the shallowest slots
	// (ReconfigStats.Placements counts these rebuilds). Sessions with a
	// policy build MCS-shaped trees: classic trees have uniform depth,
	// leaving placement nothing to choose. Nil disables predictive
	// placement.
	Placement func() softbarrier.PlacementPolicy
	// Upstream, when non-nil, makes this server a leaf shard of a
	// hierarchical deployment: every session forwards one aggregated
	// arrival per episode upstream and releases its local clients only on
	// the upstream's release (see the Upstream interface).
	// internal/shardbarrier wires this to a root barrierd over the wire
	// protocol's shard frames.
	Upstream Upstream
	// Op arms every session with a collective reduction: arrivals may
	// carry op.Width-byte contributions (ArriveData frames), releases
	// carry the folded result (Result frames), and payload-less arrivals
	// — plain Arrive frames, and the proxy arrival for an elastic leaver
	// — contribute the op's identity. The op travels out-of-band: both
	// sides name it (softbarrier.OpByName) rather than shipping code.
	// Nil keeps the plain barrier protocol.
	Op *softbarrier.Op
	// Logf, when non-nil, receives one line per session lifecycle event
	// (join, re-plan, poison, retire).
	Logf func(format string, args ...any)
	// Transport supplies the listener ListenAndServe binds. Nil selects
	// wire.DefaultTCP (keepalive armed, Nagle off); tests and chaos runs
	// pass an in-process memnet. Serve(ln) callers bypass it entirely.
	Transport wire.Transport
}

func (o *Options) transport() wire.Transport {
	if o.Transport != nil {
		return o.Transport
	}
	return wire.DefaultTCP
}

func (o *Options) writeTimeout() time.Duration {
	if o.WriteTimeout > 0 {
		return o.WriteTimeout
	}
	return 10 * time.Second
}

func (o *Options) joinTimeout() time.Duration {
	if o.JoinTimeout > 0 {
		return o.JoinTimeout
	}
	return 10 * time.Second
}

func (o *Options) maxP() int {
	if o.MaxP > 0 {
		return o.MaxP
	}
	return 4096
}

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Server is the barrier coordination service: it accepts TCP connections,
// groups them into named sessions, and runs each session's combining tree
// and planner loop. One Server hosts any number of concurrent sessions.
type Server struct {
	opt Options

	mu       sync.Mutex
	sessions map[string]*session
	conns    map[net.Conn]struct{}
	ln       net.Listener
	closed   bool

	wg sync.WaitGroup
}

// NewServer returns a server with the given options.
func NewServer(opt Options) *Server {
	return &Server{
		opt:      opt,
		sessions: make(map[string]*session),
		conns:    make(map[net.Conn]struct{}),
	}
}

// ListenAndServe listens on addr through the configured transport and
// serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := s.opt.transport().Listen(addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close (or a fatal accept error)
// and blocks for the duration.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Addr returns the listen address once Serve has bound a listener, and
// "" before that. It lets a caller that started Serve on ":0" in a
// goroutine discover the ephemeral port.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down: the listener stops accepting, every live
// session is poisoned with ErrServerClosed (members receive the
// wire-encoded cause), and all connections are closed. It blocks until
// every connection handler has returned.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.ln
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, sess := range sessions {
		sess.poison(ErrServerClosed)
	}
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// retire removes a finished (poisoned or fully departed) session so its
// name becomes reusable.
func (s *Server) retire(sess *session) {
	s.mu.Lock()
	if cur, ok := s.sessions[sess.name]; ok && cur == sess {
		delete(s.sessions, sess.name)
	}
	s.mu.Unlock()
	st := sess.ctrl.Stats()
	s.opt.logf("session %s: retired after %d episodes (%d epochs, %d rebuilds)",
		sess.name, sess.episode.Load(), st.Epochs, st.Rebuilds)
}

// SessionStats is a live snapshot of one session, for operational
// monitoring: the current epoch's membership, the episode counter, how
// many connections are parked awaiting admission, and the unified
// reconfiguration telemetry shared with the in-process barriers.
type SessionStats struct {
	Name     string
	P        int    // current epoch's participant count
	Episode  uint64 // current episode index
	Members  int    // live (joined, not departed) member connections
	Pending  int    // elastic joiners awaiting the next boundary
	Shard    bool   // members are aggregated leaf shards, not clients
	FleetP   int    // shard sessions: fleet-wide participant count, as of the last release
	Reconfig softbarrier.ReconfigStats
	// Depths is the per-participant synchronization path length of the
	// current core, when it exposes one (fixed-tree cores; dynamic cores
	// migrate placement per episode and report nil). With a Placement
	// policy armed, predicted stragglers show the smallest depths.
	Depths []int
}

// SessionStats returns a snapshot of the named session, or false if no
// such session is live.
func (s *Server) SessionStats(name string) (SessionStats, bool) {
	s.mu.Lock()
	sess := s.sessions[name]
	s.mu.Unlock()
	if sess == nil {
		return SessionStats{}, false
	}
	return sess.stats(), true
}

// PoisonSession aborts the named session with the given cause: every
// member receives the wire-encoded cause exactly as for any other poison.
// It reports whether a live session by that name existed. The inter-shard
// machinery uses it to fail a leaf's local cohort when the upstream link
// dies outside an episode (no pending completion callback to deliver the
// error through); it is also the operational kill switch for a stuck
// cohort.
func (s *Server) PoisonSession(name string, cause error) bool {
	s.mu.Lock()
	sess := s.sessions[name]
	s.mu.Unlock()
	if sess == nil {
		return false
	}
	sess.poison(cause)
	return true
}

// srvConn is the server side of one member connection. id is -1 until the
// session admits the connection, and in elastic sessions is re-assigned
// at episode boundaries (both writes happen at quiescent points, but
// diagnostics read it from arbitrary goroutines, hence atomic); the
// reader goroutine owns nextArrive's hot path, with the elastic boundary
// seeding it for freshly admitted members; gone/leftOK are guarded by the
// session mutex; writes go through send, which batches each frame into a
// single socket write under wmu; rbuf is the reader goroutine's reusable
// frame-body buffer (ReadFrameInto).
//
// Fan-out writes (release, poison, deferred JoinResp) are not performed on
// the caller's goroutine: they are enqueued on sendq and drained by a
// dedicated per-connection writer goroutine (writeLoop), so a member whose
// socket has stalled blocks only its own writer — its send still times out
// against the server's write deadline and poisons per the usual semantics,
// but every other member's release goes out immediately.
type srvConn struct {
	conn net.Conn
	bw   *bufio.Writer
	wmu  sync.Mutex

	id         atomic.Int64
	nextArrive atomic.Uint64
	shard      bool // joined via ShardJoin: an aggregated-arrival member (a leaf barrierd)
	gone       bool // no longer a broadcast target
	leftOK     bool // departed via Leave; disconnection is not a failure

	// Shard members' last-reported aggregates, written by the reader
	// goroutine on each ShardArrive and read by the releaser when it
	// assembles the fleet-wide release (hence atomic).
	lastLocalP atomic.Int64
	lastSigma  atomic.Uint64 // float64 bits

	rbuf  []byte       // reader-goroutine-owned frame body buffer
	sendq chan sendJob // fan-out queue, drained by writeLoop
	stop  chan struct{}
}

// sendJob is one queued fan-out write. buf is pre-encoded and read-only;
// pend, when non-nil, is the borrow count of the session scratch buffer
// backing buf and is decremented when the write (success or failure) is
// done with the bytes. sess, when non-nil, is poisoned on write failure —
// a member that cannot be written within the deadline will never arrive
// again; nil means failures are ignored (poison broadcasts: that member is
// already gone).
type sendJob struct {
	buf     []byte
	timeout time.Duration
	sess    *session
	pend    *atomic.Int64
}

// sendQueueDepth bounds sendq. At most one release (or admission
// JoinResp) per connection can be pending — a member must receive episode
// k's release before it can arrive at k+1, and k+1's release cannot exist
// before every member arrived — plus at most one poison frame, so depth 2
// never blocks; enqueue still degrades to a one-off goroutine if it ever
// would.
const sendQueueDepth = 2

// newSrvConn wraps an accepted connection; startWriter must be called
// before any enqueue.
func newSrvConn(conn net.Conn) *srvConn {
	c := &srvConn{
		conn:  conn,
		bw:    bufio.NewWriter(conn),
		sendq: make(chan sendJob, sendQueueDepth),
		stop:  make(chan struct{}),
	}
	c.id.Store(-1)
	return c
}

// send writes one pre-encoded frame with a single flush — the per-socket
// batched write of the fan-out path. It is safe from any goroutine (wmu
// serializes whole frames); fan-out paths call it via writeLoop.
func (c *srvConn) send(buf []byte, timeout time.Duration) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.conn.SetWriteDeadline(time.Now().Add(timeout))
	if _, err := c.bw.Write(buf); err != nil {
		return err
	}
	return c.bw.Flush()
}

// run performs one queued write and its bookkeeping.
func (j sendJob) run(c *srvConn) {
	err := c.send(j.buf, j.timeout)
	if j.pend != nil {
		// Release the borrow only after the last read of buf: the next
		// same-parity broadcast's Load of the counter is then ordered after
		// every access to the scratch bytes.
		j.pend.Add(-1)
	}
	if err != nil && j.sess != nil {
		j.sess.poison(fmt.Errorf("netbarrier: client %d unreachable: %w", c.id.Load(), err))
	}
}

// writeLoop drains sendq until the connection handler exits. One stalled
// socket therefore delays exactly one goroutine — this one.
func (c *srvConn) writeLoop() {
	for {
		select {
		case <-c.stop:
			return
		case j := <-c.sendq:
			j.run(c)
		}
	}
}

// enqueue hands a fan-out write to the connection's writer goroutine
// without ever blocking the caller: if the queue is full (possible only
// under pathological poison/release overlap) the job runs on a one-off
// goroutine instead.
func (c *srvConn) enqueue(j sendJob) {
	select {
	case c.sendq <- j:
	default:
		go j.run(c)
	}
}

// handle runs one connection: join handshake, then the arrive/leave
// read loop.
func (s *Server) handle(conn net.Conn) {
	c := newSrvConn(conn)
	defer func() {
		close(c.stop)
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	if tc, ok := conn.(*net.TCPConn); ok {
		// wire.TCP listeners tune accepted sockets themselves; this covers
		// Serve(ln) callers handing the server a raw TCP listener. Frames
		// are latency-bound, not throughput-bound.
		tc.SetNoDelay(true)
	}
	br := bufio.NewReader(conn)

	conn.SetReadDeadline(time.Now().Add(s.opt.joinTimeout()))
	req, err := ReadFrameInto(br, &c.rbuf)
	if err != nil || (req.Type != TypeJoinReq && req.Type != TypeShardJoin) {
		if err != nil && strings.Contains(err.Error(), "version mismatch") {
			// The one decode failure worth answering: tell the
			// mixed-revision peer why it is being refused before hanging up,
			// so the operator sees "protocol version mismatch" on both ends
			// instead of a silent disconnect on one.
			if buf, encErr := AppendFrame(nil, Frame{Type: TypeJoinResp, Err: err.Error()}); encErr == nil {
				c.send(buf, s.opt.writeTimeout())
			}
			s.opt.logf("refused %s: %v", conn.RemoteAddr(), err)
		}
		return // never joined; nothing to poison
	}
	c.shard = req.Type == TypeShardJoin
	go c.writeLoop()
	sess, resp, deferred := s.join(c, req)
	if deferred {
		// Elastic admission: the JoinResp is sent by the episode boundary
		// that admits this connection; until then the client blocks in
		// Join and sends nothing, so the read loop just parks.
		conn.SetReadDeadline(time.Time{})
		s.opt.logf("session %s: client pending admission (%s)", sess.name, conn.RemoteAddr())
	} else {
		buf, encErr := AppendFrame(nil, resp)
		if encErr != nil || c.send(buf, s.opt.writeTimeout()) != nil || sess == nil {
			if sess != nil {
				sess.disconnect(c, fmt.Errorf("join response write failed"))
			}
			return
		}
		conn.SetReadDeadline(time.Time{})
		s.opt.logf("session %s: client %d joined (%s)", sess.name, c.id.Load(), conn.RemoteAddr())
	}

	for {
		f, err := ReadFrameInto(br, &c.rbuf)
		if err != nil {
			sess.disconnect(c, err)
			return
		}
		switch {
		case f.Type == TypeArrive && !c.shard:
			sess.arrive(c, f.Episode)
		case f.Type == TypeArriveData && !c.shard:
			sess.arriveData(c, f.Episode, f.Data)
		case f.Type == TypeShardArrive && c.shard:
			sess.shardArrive(c, f)
		case f.Type == TypePoison && c.shard:
			// A shard handing up its local poison cause: fail the whole
			// fleet session with the original error, identity intact.
			sess.poison(fmt.Errorf("netbarrier: shard %d poisoned: %w", c.id.Load(), softbarrier.DecodePoisonCause(f.Cause)))
			return
		case f.Type == TypePoison:
			// A member aborting the session with a cause (Client.Poison):
			// wrap with %w so errors.Is/As identity survives the fan-out —
			// and, on a leaf, the trip through the root to other shards.
			sess.poison(fmt.Errorf("netbarrier: member %d poisoned the session: %w", c.id.Load(), softbarrier.DecodePoisonCause(f.Cause)))
			return
		case f.Type == TypeLeave:
			sess.leave(c)
			return
		default:
			sess.poison(fmt.Errorf("netbarrier: protocol violation: member %d sent frame %s", c.id.Load(), FrameName(f.Type)))
			return
		}
	}
}

// join resolves a JoinReq against the session table, creating the session
// on first contact. It returns the session (nil on refusal), the JoinResp
// to send, and — for elastic sessions — whether the join was deferred to
// the next episode boundary (the boundary then sends the JoinResp).
func (s *Server) join(c *srvConn, req Frame) (*session, Frame, bool) {
	refuse := func(msg string) (*session, Frame, bool) {
		return nil, Frame{Type: TypeJoinResp, Err: msg}, false
	}
	if req.Name == "" {
		return refuse("empty session name")
	}
	if req.P < 1 || req.P > s.opt.maxP() {
		return refuse(fmt.Sprintf("participant count %d outside [1, %d]", req.P, s.opt.maxP()))
	}
	if req.ID >= req.P {
		// Checked before the session table so a doomed join can never be
		// the one that instantiates a session.
		return refuse(fmt.Sprintf("id %d out of range for %d participants", req.ID, req.P))
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return refuse("server closed")
	}
	sess := s.sessions[req.Name]
	if sess == nil {
		sess = newSession(s, req.Name, req.P, c.shard)
		s.sessions[req.Name] = sess
	}
	s.mu.Unlock()

	id, refusal, deferred := sess.join(c, req.P, req.ID)
	if refusal != "" {
		return refuse(refusal)
	}
	if deferred {
		return sess, Frame{}, true
	}
	return sess, Frame{
		Type:    TypeJoinResp,
		ID:      id,
		P:       sess.p(),
		Degree:  sess.degree(),
		Episode: sess.episode.Load(),
	}, false
}
