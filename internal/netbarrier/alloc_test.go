package netbarrier

import (
	"testing"
	"time"

	"softbarrier"
)

// TestSteadyStateZeroAllocs gates the zero-allocation frame path: after
// warmup, a whole barrier episode — client Arrive encode, client Await
// decode, and (the server being in-process) the server-side read, arrival,
// re-plan evaluation, release encode, and fan-out — must perform zero heap
// allocations. testing.AllocsPerRun measures process-wide mallocs, so the
// lockstep partner goroutine and the server's reader/writer goroutines are
// all inside the measurement; any allocation anywhere on the steady-state
// path fails the test.
func TestSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; alloc gate runs in the non-race matrix")
	}
	// Default options: no watchdog (its ticker would allocate timer state
	// mid-measurement) and the default every-episode replan cadence, so the
	// controller's Evaluate → Recommender → analytic-model path is inside
	// the measurement too.
	addr, _ := startTCPServer(t, Options{})
	const p = 2
	a := dialJoin(t, addr, "alloc", p, 0)
	defer a.Close()
	b := dialJoin(t, addr, "alloc", p, 1)
	defer b.Close()

	// The lockstep partner: Wait until the session dies under it at the end
	// of the test. It can never run ahead — its Wait blocks until both
	// members arrive — so it stays on the same episode as the measured
	// client.
	go func() {
		for {
			if _, err := b.Wait(); err != nil {
				return
			}
		}
	}()

	// Warm up past the growth phase: scratch buffers (release parity
	// buffers, fan-out target slices, client frame buffers) reach their
	// steady-state capacity within the first few episodes.
	for i := 0; i < 32; i++ {
		if _, err := a.Wait(); err != nil {
			t.Fatalf("warmup episode %d: %v", i, err)
		}
	}

	avg := testing.AllocsPerRun(100, func() {
		if _, err := a.Wait(); err != nil {
			t.Errorf("measured episode: %v", err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state episode allocated %.2f times/op, want 0", avg)
	}
}

// TestCollectiveSteadyStateAllocs bounds the collective (AllReduce) episode
// path: the only per-episode allocation allowed is the result copy Await
// hands to the caller (the caller owns Release.Result, so one make per
// episode is the contract, not a regression).
func TestCollectiveSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; alloc gate runs in the non-race matrix")
	}
	op, ok := softbarrier.OpByName("sum-u64")
	if !ok {
		t.Fatal("sum-u64 op not registered")
	}
	addr, _ := startTCPServer(t, Options{Op: opPtr(op)})
	const p = 2
	a := dialJoin(t, addr, "allocred", p, 0)
	defer a.Close()
	b := dialJoin(t, addr, "allocred", p, 1)
	defer b.Close()

	contrib := make([]byte, op.Width)
	go func() {
		buf := make([]byte, op.Width)
		for {
			if _, err := b.AllReduce(buf); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 32; i++ {
		if _, err := a.AllReduce(contrib); err != nil {
			t.Fatalf("warmup episode %d: %v", i, err)
		}
	}

	avg := testing.AllocsPerRun(100, func() {
		if _, err := a.AllReduce(contrib); err != nil {
			t.Errorf("measured episode: %v", err)
		}
	})
	// Two clients copy one result each per episode; everything else on the
	// frame path must be allocation-free.
	if avg > 2 {
		t.Fatalf("collective steady-state episode allocated %.2f times/op, want ≤ 2 (the callers' result copies)", avg)
	}
}

// TestWatchdogSteadyStateAllocs exercises the frame path with the watchdog
// armed — the production configuration — allowing only the watchdog
// ticker's own bookkeeping, which is off the frame path and amortized
// across its poll cadence.
func TestWatchdogSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; alloc gate runs in the non-race matrix")
	}
	addr, _ := startTCPServer(t, Options{Watchdog: 30 * time.Second})
	const p = 2
	a := dialJoin(t, addr, "allocwd", p, 0)
	defer a.Close()
	b := dialJoin(t, addr, "allocwd", p, 1)
	defer b.Close()

	go func() {
		for {
			if _, err := b.Wait(); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 32; i++ {
		if _, err := a.Wait(); err != nil {
			t.Fatalf("warmup episode %d: %v", i, err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, err := a.Wait(); err != nil {
			t.Errorf("measured episode: %v", err)
		}
	})
	if avg != 0 {
		t.Fatalf("watchdog-armed steady-state episode allocated %.2f times/op, want 0", avg)
	}
}
