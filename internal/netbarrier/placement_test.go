package netbarrier

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"softbarrier"
)

// TestSessionPredictivePlacement drives an elastic session with a
// configured placement policy and one systemic straggler over TCP: the
// server must observe the arrival lags, rebuild the session's MCS tree
// with the predicted straggler in the shallowest slot (SessionStats.
// Depths), count the rebuild in Reconfig.Placements, and follow the
// straggler when it moves.
func TestSessionPredictivePlacement(t *testing.T) {
	const (
		p       = 6
		session = "placed"
	)
	mk, ok := softbarrier.PlacementByName("ewma")
	if !ok {
		t.Fatal("no ewma policy")
	}
	// A model t_c of 2ms keeps σ/t_c well below 1 for the 2ms straggler
	// (σ ≈ 0.7ms), so the degree planner holds a deep degree-2 MCS tree —
	// the depth diversity placement needs — instead of going flat.
	addr, srv := startServer(t, Options{
		Elastic:      true,
		ReplanEvery:  2,
		Placement:    mk,
		Tc:           2e-3,
		InitialSigma: 700e-6,
		Watchdog:     30 * time.Second,
	})

	var straggler atomic.Int32
	straggler.Store(4)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, p)
	for id := 0; id < p; id++ {
		c := dialJoin(t, addr, session, p, id)
		wg.Add(1)
		go func(id int, c *Client) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					errs <- c.Leave()
					return
				default:
				}
				if int32(id) == straggler.Load() {
					time.Sleep(2 * time.Millisecond)
				}
				if _, err := c.Wait(); err != nil {
					errs <- err
					return
				}
			}
		}(id, c)
	}

	shallowest := func(d []int) int {
		min := d[0]
		for _, v := range d[1:] {
			if v < min {
				min = v
			}
		}
		return min
	}
	deepest := func(d []int) int {
		max := d[0]
		for _, v := range d[1:] {
			if v > max {
				max = v
			}
		}
		return max
	}
	// waitPlaced polls until the session has performed at least n
	// placement rebuilds and its (depth-diverse) tree holds want in the
	// shallowest slot.
	waitPlaced := func(want int, n uint64) SessionStats {
		t.Helper()
		deadline := time.Now().Add(time.Minute)
		for {
			st, ok := srv.SessionStats(session)
			if ok && st.Reconfig.Placements >= n && len(st.Depths) == p &&
				shallowest(st.Depths) != deepest(st.Depths) &&
				st.Depths[want] == shallowest(st.Depths) {
				return st
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %d placed shallowest after %d rebuilds (stats %+v)", want, n, st)
			}
			time.Sleep(time.Millisecond)
		}
	}

	st := waitPlaced(4, 1)
	t.Logf("straggler 4 placed: depths %v after %d placements, episode %d",
		st.Depths, st.Reconfig.Placements, st.Episode)

	straggler.Store(1)
	st = waitPlaced(1, st.Reconfig.Placements+1)
	t.Logf("straggler 1 placed: depths %v after %d placements, episode %d",
		st.Depths, st.Reconfig.Placements, st.Episode)

	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("client failed: %v", err)
		}
	}
}
