//go:build race

package netbarrier

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
