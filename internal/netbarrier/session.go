package netbarrier

import (
	"fmt"
	"sync"
	"sync/atomic"

	"softbarrier"
)

// arrivalTree is the server-side arrival structure: the subset of the
// softbarrier tree barriers a session drives. Sessions only ever call
// Arrive — remote clients wait on their sockets, not on the in-process
// gate — so the release path degenerates to the Observer callback, which
// fires at the episode's quiescent point, before any in-process release.
type arrivalTree interface {
	Arrive(id int)
	Poison(err error)
	Err() error
	Close()
	Degree() int
	Arrivals() []uint64
}

// coreBox wraps the interface so the current core can live in an
// atomic.Pointer (which needs a concrete element type).
type coreBox struct{ b arrivalTree }

// observerFunc adapts a function to softbarrier.Observer.
type observerFunc func(softbarrier.EpisodeStats)

func (f observerFunc) Episode(st softbarrier.EpisodeStats) { f(st) }

// session is one named barrier cohort: p members, an in-process combining
// tree collecting their arrivals, and the planner loop that re-derives the
// tree degree from the measured arrival spread.
//
// Concurrency design. Each member's socket is read by its own goroutine,
// which calls core.Arrive directly — so the degree-d combining tree is
// doing real work: at most degree+1 reader goroutines contend on any one
// counter, exactly as in the in-process case. The member whose arrival
// completes the root runs the Observer callback at the episode's
// quiescent point: every arrival of the episode is in, and no client can
// send its next Arrive until the Release frame this callback is about to
// write reaches it. That quiescence is what makes the degree re-plan a
// plain pointer swap: the callback builds a fresh tree at the new degree,
// stores it, and only then broadcasts the release, so every subsequent
// arrival lands in the new tree.
type session struct {
	name string
	p    int
	srv  *Server

	profile     softbarrier.Profile
	agg         *softbarrier.Aggregate // Observer + SigmaSource: the measured-σ feedback loop
	replanEvery uint64

	core    atomic.Pointer[coreBox]
	episode atomic.Uint64 // current episode index; advanced by the releaser
	replans atomic.Uint64 // completed degree re-plans
	dead    atomic.Bool   // poison broadcast already sent

	mu      sync.Mutex
	members []*srvConn // slot per id; nil = not joined
	joined  int
	left    int
	retired bool
}

func newSession(srv *Server, name string, p int) *session {
	s := &session{
		name:        name,
		p:           p,
		srv:         srv,
		agg:         softbarrier.NewAggregate(),
		replanEvery: uint64(srv.opt.ReplanEvery),
		members:     make([]*srvConn, p),
		profile: softbarrier.Profile{
			P:        p,
			Sigma:    srv.opt.InitialSigma,
			Tc:       srv.opt.Tc,
			Systemic: srv.opt.Dynamic,
		},
	}
	if s.replanEvery == 0 {
		s.replanEvery = 1
	}
	rec := softbarrier.Recommend(s.profile)
	s.core.Store(&coreBox{s.buildCore(rec)})
	return s
}

// buildCore constructs the arrival tree a recommendation describes. With
// the server's Dynamic option the profile is systemic, so the planner
// selects the dynamic-placement barrier and consistently slow clients
// migrate toward the root — placement knowledge is discarded on re-plan,
// which the paper's own adaptation proposal accepts (rebuilds are rare
// once σ converges).
func (s *session) buildCore(rec softbarrier.Recommendation) arrivalTree {
	opts := []softbarrier.Option{
		softbarrier.WithObserver(observerFunc(s.onEpisode)),
		softbarrier.WithPoisonNotify(s.onPoison),
	}
	if d := s.srv.opt.Watchdog; d > 0 {
		opts = append(opts, softbarrier.WithWatchdog(d))
	}
	if rec.Dynamic {
		return softbarrier.NewDynamic(s.p, rec.Degree, opts...)
	}
	return softbarrier.NewCombiningTree(s.p, rec.Degree, opts...)
}

// degree returns the current tree degree.
func (s *session) degree() int { return s.core.Load().b.Degree() }

// arrive validates and applies one member's Arrive frame. It runs on the
// member's reader goroutine; the frame's episode must be the session's
// current one (a client cannot legally race ahead — it has not seen the
// release that would let it — so a mismatch is a protocol violation, and
// a duplicate arrival would corrupt the tree's counters).
func (s *session) arrive(c *srvConn, episode uint64) {
	if cur := s.episode.Load(); episode != cur || episode < c.nextArrive {
		s.poison(fmt.Errorf("netbarrier: protocol violation: client %d arrived for episode %d (current %d)", c.id, episode, cur))
		return
	}
	c.nextArrive = episode + 1
	s.core.Load().b.Arrive(c.id)
}

// onEpisode is the Observer callback: it runs on the reader goroutine
// whose arrival completed the root, at the episode's quiescent point. It
// folds the measured spread into the session's σ estimate, re-plans the
// tree degree when the planner's recommendation moved, advances the
// episode, and fans the Release frame out to every member socket.
func (s *session) onEpisode(st softbarrier.EpisodeStats) {
	s.agg.Episode(st)
	ep := s.episode.Load()
	box := s.core.Load()
	deg := box.b.Degree()
	if _, n := s.agg.MeasuredSigma(); n%s.replanEvery == 0 && !s.dead.Load() {
		rec := softbarrier.RecommendMeasured(s.profile, s.agg)
		if rec.Degree != deg {
			s.core.Store(&coreBox{s.buildCore(rec)})
			box.b.Close() // retire the old tree's watchdog
			s.replans.Add(1)
			deg = rec.Degree
			s.srv.opt.logf("session %s: episode %d re-planned degree %d -> %d (measured sigma %.3gs)",
				s.name, ep, box.b.Degree(), deg, mustSigma(s.agg))
		}
	}
	// Advance the episode before the first Release byte leaves: a client's
	// next Arrive frame is ordered after its Release, so every validation
	// against the episode counter sees the new value.
	s.episode.Store(ep + 1)
	if s.dead.Load() {
		return // poison raced in mid-episode; members already have the cause
	}
	sigma, _ := s.agg.MeasuredSigma()
	s.broadcast(Frame{Type: TypeRelease, Episode: ep, Degree: deg, Spread: st.Spread, Sigma: sigma}, true)
}

// onPoison is the WithPoisonNotify hook: whatever poisoned the tree —
// watchdog stall, client disconnect, protocol violation, server shutdown —
// lands here exactly once, and every member socket receives the
// wire-encoded cause instead of a Release. The session is retired so its
// name becomes reusable.
func (s *session) onPoison(err error) {
	if !s.dead.CompareAndSwap(false, true) {
		return
	}
	s.srv.opt.logf("session %s: poisoned: %v (arrivals %v)", s.name, err, s.core.Load().b.Arrivals())
	s.broadcast(Frame{Type: TypePoison, Cause: softbarrier.EncodePoisonCause(nil, err)}, false)
	s.core.Load().b.Close()
	s.srv.retire(s)
}

// poison fails the session with the given cause. The notify hook on the
// current core performs the broadcast.
func (s *session) poison(err error) { s.core.Load().b.Poison(err) }

// broadcast encodes f once and writes it to every joined member, one
// batched (single-flush) write per socket. A member we cannot write to
// within the server's write timeout will never arrive again, so a failed
// release write poisons the session; failed poison writes are ignored —
// that member is already gone.
func (s *session) broadcast(f Frame, poisonOnError bool) {
	buf, err := AppendFrame(nil, f)
	if err != nil {
		s.poison(fmt.Errorf("netbarrier: internal: unencodable frame: %w", err))
		return
	}
	s.mu.Lock()
	members := make([]*srvConn, 0, s.joined)
	for _, m := range s.members {
		if m != nil && !m.gone {
			members = append(members, m)
		}
	}
	s.mu.Unlock()
	for _, m := range members {
		if err := m.send(buf, s.srv.opt.writeTimeout()); err != nil && poisonOnError {
			s.poison(fmt.Errorf("netbarrier: client %d unreachable: %w", m.id, err))
			return
		}
	}
}

// join claims a member slot. want ≥ 0 requests a specific id; -1 takes
// the first free slot. It returns the assigned id or a refusal message.
func (s *session) join(c *srvConn, p, want int) (id int, refusal string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.retired || s.dead.Load():
		return 0, "session is shutting down"
	case p != s.p:
		return 0, fmt.Sprintf("session has %d participants, not %d", s.p, p)
	case want >= s.p:
		return 0, fmt.Sprintf("id %d out of range for %d participants", want, s.p)
	case want >= 0:
		if s.members[want] != nil {
			return 0, fmt.Sprintf("id %d already taken", want)
		}
		id = want
	default:
		id = -1
		for i, m := range s.members {
			if m == nil {
				id = i
				break
			}
		}
		if id < 0 {
			return 0, "session is full"
		}
	}
	c.id = id
	s.members[id] = c
	s.joined++
	return id, ""
}

// leave processes a graceful departure: the member will not arrive again,
// and its connection closing is no longer a failure. When every joined
// member has left, the session retires. A member that leaves while others
// keep arriving causes a stall, which the watchdog converts into a
// StallError naming it — departure is cooperative, not transparent.
func (s *session) leave(c *srvConn) {
	s.mu.Lock()
	c.gone = true
	c.leftOK = true
	s.left++
	done := s.left == s.joined && s.joined > 0
	if done {
		s.retired = true
	}
	s.mu.Unlock()
	if done {
		s.core.Load().b.Close()
		s.srv.retire(s)
	}
}

// disconnect processes a member's reader terminating with err. A member
// that already left (or a session already dead) just cleans up; anything
// else poisons the session — the member cannot arrive anymore, and
// poisoning is how every other member learns that before the watchdog
// deadline, let alone forever.
func (s *session) disconnect(c *srvConn, err error) {
	s.mu.Lock()
	wasGone := c.gone || c.leftOK
	c.gone = true
	s.mu.Unlock()
	if wasGone || s.dead.Load() {
		return
	}
	s.poison(fmt.Errorf("netbarrier: client %d disconnected mid-session: %w", c.id, err))
}

// mustSigma returns the aggregate's σ for log lines.
func mustSigma(src softbarrier.SigmaSource) float64 {
	sigma, _ := src.MeasuredSigma()
	return sigma
}
