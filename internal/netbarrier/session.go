package netbarrier

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"softbarrier"
	"softbarrier/internal/reconfig"
	rt "softbarrier/internal/runtime"
)

// arrivalTree is the server-side arrival structure: the subset of the
// softbarrier tree barriers a session drives. Sessions only ever call
// Arrive — remote clients wait on their sockets, not on the in-process
// gate — so the release path degenerates to the Observer callback, which
// fires at the episode's quiescent point, before any in-process release.
type arrivalTree interface {
	Arrive(id int)
	ArriveReduce(id int, in []byte) error
	Reduced(episode uint64) []byte
	LagsInto(episode uint64, dst []float64) []float64
	Poison(err error)
	Err() error
	Close()
	Degree() int
	Arrivals() []uint64
}

// coreBox wraps the interface so the current core can live in an
// atomic.Pointer (which needs a concrete element type).
type coreBox struct{ b arrivalTree }

// observerFunc adapts a function to softbarrier.Observer.
type observerFunc func(softbarrier.EpisodeStats)

func (f observerFunc) Episode(st softbarrier.EpisodeStats) { f(st) }

// session is one named barrier cohort: its members, an in-process
// combining tree collecting their arrivals, and the shared reconfiguration
// controller (internal/reconfig) that re-derives the tree configuration —
// degree, and in elastic mode membership — from the measured arrival
// spread.
//
// Concurrency design. Each member's socket is read by its own goroutine,
// which calls core.Arrive directly — so the degree-d combining tree is
// doing real work: at most degree+1 reader goroutines contend on any one
// counter, exactly as in the in-process case. The member whose arrival
// completes the root runs the Observer callback at the episode's
// quiescent point: every arrival of the episode is in, and no client can
// send its next Arrive until the Release frame this callback is about to
// write reaches it. That quiescence is what makes every reconfiguration a
// plain pointer swap: the callback asks the controller for a Plan, builds
// a fresh tree, stores it, and only then broadcasts the release, so every
// subsequent arrival lands in the new tree.
//
// Elastic sessions (Options.Elastic) additionally treat membership as part
// of the epoch: a Leave drops the member at the next boundary (with the
// session proxy-arriving for a leaver that had not arrived yet, so the
// in-flight episode still completes), and a join against a full session
// parks the connection on the pending list until the boundary admits it
// into the next epoch — late joiners are welcomed, not refused. Member ids
// are re-assigned densely at each boundary; a client learns its id from
// the JoinResp and must not assume it is stable across epochs server-side
// (the client-visible id is only used in server diagnostics).
type session struct {
	name    string
	srv     *Server
	elastic bool

	// shard marks an inter-shard session: every member is a leaf barrierd
	// forwarding one aggregated arrival per episode (TypeShardArrive)
	// rather than a client. The kind is fixed by the session's first
	// joiner; mixing shard and client members in one session is refused.
	// Shard sessions release with TypeShardRelease, carrying the fleet-wide
	// participant count and the σ aggregated across the shards' reports.
	shard    bool
	fleetEst rt.SigmaEstimator // EWMA over the P-weighted mean of shard σ reports
	fleetP   atomic.Int64      // Σ live shards' local P, as of the last release

	profile softbarrier.Profile  // template for the planner; P and Sigma are live
	est     rt.SigmaEstimator    // EWMA of per-episode arrival spread
	ctrl    *reconfig.Controller // epoch state: degree, membership, placement
	op      *softbarrier.Op      // collective op, nil for a plain barrier session
	ident   []byte               // op identity, proxy-contributed for plain/leaving members

	// Predictive straggler placement (Options.Placement). All four fields
	// are touched only by the releasing member's goroutine, at episode
	// boundaries: place consumes the episode's lags, curOrder is the
	// policy's latest opinion, builtOrder the order the current core was
	// built with.
	place      softbarrier.PlacementPolicy
	lagBuf     []float64
	curOrder   []int
	builtOrder []int

	core    atomic.Pointer[coreBox]
	episode atomic.Uint64 // current episode index; advanced by the releaser
	dead    atomic.Bool   // poison broadcast already sent

	// Release fan-out scratch, all releaser-only (successive releasers are
	// ordered through the episode/core atomics). relScratch is the encoded
	// release frame, double-buffered by episode parity; relPending[k]
	// counts fan-out writes still borrowing relScratch[k] — nonzero only
	// while a socket is stalled, in which case the next same-parity
	// broadcast falls back to a fresh allocation instead of reusing the
	// buffer. bcast and contBuf are member-collection scratch; capBuf holds
	// the episode's captured collective result.
	relScratch [2][]byte
	relPending [2]atomic.Int64
	bcast      []*srvConn
	contBuf    []*srvConn
	capBuf     []byte

	mu      sync.Mutex
	members []*srvConn // slot per id; nil = not yet joined (formation only)
	pending []*srvConn // elastic: connections awaiting admission at a boundary
	joined  int
	left    int
	retired bool
}

func newSession(srv *Server, name string, p int, shard bool) *session {
	s := &session{
		name:    name,
		srv:     srv,
		elastic: srv.opt.Elastic,
		shard:   shard,
		members: make([]*srvConn, p),
		profile: softbarrier.Profile{
			P:        p,
			Sigma:    srv.opt.InitialSigma,
			Tc:       srv.opt.Tc,
			Systemic: srv.opt.Dynamic,
		},
	}
	if op := srv.opt.Op; op != nil {
		s.op = op
		s.ident = make([]byte, op.Width)
		if op.Identity != nil {
			copy(s.ident, op.Identity)
		}
	}
	if f := srv.opt.Placement; f != nil {
		s.place = f()
	}
	s.est.Init(rt.DefaultSigmaWeight)
	s.fleetEst.Init(rt.DefaultSigmaWeight)
	degree, dynamic := softbarrier.RecommendConfig(s.profile)
	s.ctrl = reconfig.New(
		reconfig.Config{
			ReplanEvery:  uint64(srv.opt.ReplanEvery),
			InitialSigma: srv.opt.InitialSigma,
		},
		&s.est,
		s.recommend,
		reconfig.Plan{P: p, Degree: degree, Dynamic: dynamic},
	)
	s.core.Store(&coreBox{s.buildCore(s.ctrl.Current())})
	return s
}

// recommend is the controller's Recommender: the session's planner profile
// evaluated at the epoch's membership and the measured σ. It runs on the
// releaser's goroutine every ReplanEvery episodes, so it uses the
// allocation-free RecommendConfig path.
func (s *session) recommend(p int, sigma float64) (degree int, dynamic bool) {
	prof := s.profile
	prof.P = p
	prof.Sigma = sigma
	return softbarrier.RecommendConfig(prof)
}

// buildCore constructs the arrival tree an epoch plan describes. With the
// server's Dynamic option the profile is systemic, so the planner selects
// the dynamic-placement barrier and consistently slow clients migrate
// toward the root — placement knowledge is discarded on rebuild, which the
// paper's own adaptation proposal accepts (rebuilds are rare once σ
// converges).
func (s *session) buildCore(plan reconfig.Plan) arrivalTree {
	opts := []softbarrier.Option{
		softbarrier.WithObserver(observerFunc(s.onEpisode)),
		softbarrier.WithPoisonNotify(s.onPoison),
	}
	if d := s.srv.opt.Watchdog; d > 0 {
		opts = append(opts, softbarrier.WithWatchdog(d))
	}
	if s.op != nil {
		opts = append(opts, softbarrier.WithCollective(*s.op))
	}
	s.builtOrder = nil
	if s.place != nil && len(s.curOrder) == plan.P {
		// The policy's predicted-straggler order relabels the tree's
		// slots laggiest-first-shallowest; membership changes invalidate
		// a stale order (the length mismatch drops it here).
		opts = append(opts, softbarrier.WithPlacement(s.curOrder))
		s.builtOrder = s.curOrder
	}
	if plan.Dynamic {
		return softbarrier.NewDynamic(plan.P, plan.Degree, opts...)
	}
	if s.place != nil {
		// A placement policy needs depth diversity to express a choice;
		// classic trees put every participant at the same leaf depth, so
		// placed sessions run the MCS shape.
		return softbarrier.NewMCSTree(plan.P, plan.Degree, opts...)
	}
	return softbarrier.NewCombiningTree(plan.P, plan.Degree, opts...)
}

// observePlacement feeds the completed episode's per-participant lags to
// the placement policy and refreshes curOrder with its latest opinion.
// Releaser-only, at the quiescent point (the lag buffer parity slot is
// stable there). Order() is consumed exactly once per episode: hysteresis
// policies record what they emit.
func (s *session) observePlacement(box *coreBox, episode uint64) {
	if s.place == nil {
		return
	}
	if lags := box.b.LagsInto(episode, s.lagBuf); len(lags) > 0 {
		s.lagBuf = lags
		s.place.Observe(lags)
	}
	if order := s.place.Order(); order != nil {
		s.curOrder = order
	}
}

// placementDue reports, on the replan cadence, whether the policy's
// predicted-straggler order differs from the one the current core was
// built with — a placement-only rebuild is then due. Releaser-only.
func (s *session) placementDue() bool {
	if s.place == nil {
		return false
	}
	n := s.ctrl.Episodes()
	if n == 0 || n%s.ctrl.Config().ReplanEvery != 0 {
		return false
	}
	p := s.ctrl.Current().P
	if len(s.curOrder) != p {
		return false
	}
	return !ordersEqual(s.curOrder, s.builtOrder, p)
}

// ordersEqual compares placement orders, nil meaning the natural
// ascending-id order.
func ordersEqual(a, b []int, p int) bool {
	idx := func(o []int, k int) int {
		if o == nil {
			return k
		}
		return o[k]
	}
	for k := 0; k < p; k++ {
		if idx(a, k) != idx(b, k) {
			return false
		}
	}
	return true
}

// degree returns the current tree degree.
func (s *session) degree() int { return s.core.Load().b.Degree() }

// p returns the current epoch's membership count.
func (s *session) p() int { return s.ctrl.Current().P }

// stats snapshots the session for Server.SessionStats.
func (s *session) stats() SessionStats {
	s.mu.Lock()
	live := 0
	for _, m := range s.members {
		if m != nil && !m.gone {
			live++
		}
	}
	pending := len(s.pending)
	s.mu.Unlock()
	out := SessionStats{
		Name:     s.name,
		P:        s.p(),
		Episode:  s.episode.Load(),
		Members:  live,
		Pending:  pending,
		Shard:    s.shard,
		FleetP:   int(s.fleetP.Load()),
		Reconfig: s.ctrl.Stats(),
	}
	// Fixed-tree cores expose their per-participant depths (the tree is
	// immutable, so this is safe from the stats goroutine); dynamic cores
	// migrate placement per episode and stay nil.
	if d, ok := s.core.Load().b.(interface{ Depths() []int }); ok {
		out.Depths = d.Depths()
	}
	return out
}

// arrive applies one member's Arrive frame (see checkArrival for the
// validation contract).
func (s *session) arrive(c *srvConn, episode uint64) {
	id, ok := s.checkArrival(c, episode)
	if !ok {
		return
	}
	if s.op != nil {
		// A collective episode's release folds every member's deposit, so
		// a payload-less arrival contributes the op's identity: mixed
		// cohorts (plain clients alongside collective ones) stay correct.
		s.core.Load().b.ArriveReduce(id, s.ident)
		return
	}
	s.core.Load().b.Arrive(id)
}

// arriveData applies one member's ArriveData frame: an arrival carrying a
// collective contribution. The session must have been configured with an
// op, and the payload must be exactly the op's width — both are protocol
// violations, not per-member errors, because the episode's fold is
// already corrupted by the time a retry could land.
func (s *session) arriveData(c *srvConn, episode uint64, data []byte) {
	id, ok := s.checkArrival(c, episode)
	if !ok {
		return
	}
	if s.op == nil {
		s.poison(fmt.Errorf("netbarrier: protocol violation: client %d sent %s to a session with no collective op", id, FrameName(TypeArriveData)))
		return
	}
	if len(data) != s.op.Width {
		s.poison(fmt.Errorf("netbarrier: protocol violation: client %d contributed %d bytes, op %q wants %d", id, len(data), s.op.Name, s.op.Width))
		return
	}
	s.core.Load().b.ArriveReduce(id, data)
}

// shardArrive applies one leaf shard's aggregated arrival: the leaf's
// whole local cohort arrived, and the frame carries the shard's local
// participant count, its measured σ, and — for a collective session — the
// shard's locally folded contribution. The localP/σ report is recorded on
// the connection for the fleet aggregate computed at release time. An
// empty payload on a collective session contributes the op's identity (a
// plain-barrier leaf inside a collective fleet), mirroring arrive.
func (s *session) shardArrive(c *srvConn, f Frame) {
	id, ok := s.checkArrival(c, f.Episode)
	if !ok {
		return
	}
	c.lastLocalP.Store(int64(f.P))
	c.lastSigma.Store(math.Float64bits(f.Sigma))
	if s.op == nil {
		if len(f.Data) != 0 {
			s.poison(fmt.Errorf("netbarrier: protocol violation: shard %d contributed %d bytes to a session with no collective op", id, len(f.Data)))
			return
		}
		s.core.Load().b.Arrive(id)
		return
	}
	if len(f.Data) == 0 {
		s.core.Load().b.ArriveReduce(id, s.ident)
		return
	}
	if len(f.Data) != s.op.Width {
		s.poison(fmt.Errorf("netbarrier: protocol violation: shard %d contributed %d bytes, op %q wants %d", id, len(f.Data), s.op.Name, s.op.Width))
		return
	}
	s.core.Load().b.ArriveReduce(id, f.Data)
}

// fleetStats folds the live shards' latest localP/σ reports into the
// session's fleet aggregate: fleetP is the sum of local participant
// counts, and the P-weighted mean of the shards' EWMA σ reports is folded
// into the session's own fleet EWMA (reusing the runtime estimator, so a
// shard re-planning locally moves the fleet estimate smoothly rather than
// stepwise). Releaser-only, at the quiescent point.
func (s *session) fleetStats() (fleetP int, fleetSigma float64) {
	s.mu.Lock()
	var wsum float64
	for _, m := range s.members {
		if m == nil || m.gone {
			continue
		}
		p := int(m.lastLocalP.Load())
		fleetP += p
		wsum += float64(p) * math.Float64frombits(m.lastSigma.Load())
	}
	s.mu.Unlock()
	if fleetP > 0 {
		s.fleetEst.Observe(wsum / float64(fleetP))
	}
	s.fleetP.Store(int64(fleetP))
	return fleetP, s.fleetEst.Sigma()
}

// checkArrival validates an arrival frame against the session's episode
// counter and the member's arrival window, advancing the latter. It runs
// on the member's reader goroutine; the frame's episode must be the
// session's current one (a client cannot legally race ahead — it has not
// seen the release that would let it — so a mismatch is a protocol
// violation, and a duplicate arrival would corrupt the tree's counters).
func (s *session) checkArrival(c *srvConn, episode uint64) (id int, ok bool) {
	id = int(c.id.Load())
	if id < 0 {
		s.poison(fmt.Errorf("netbarrier: protocol violation: pending client arrived before admission"))
		return 0, false
	}
	if cur := s.episode.Load(); episode != cur || episode < c.nextArrive.Load() {
		s.poison(fmt.Errorf("netbarrier: protocol violation: client %d arrived for episode %d (current %d)", id, episode, cur))
		return 0, false
	}
	c.nextArrive.Store(episode + 1)
	return id, true
}

// onEpisode is the Observer callback: it runs on the reader goroutine
// whose arrival completed the root, at the episode's quiescent point. It
// folds the measured spread into the σ estimate and captures the episode's
// collective result; then, on a standalone server, it completes the
// episode immediately, while a leaf (Options.Upstream set) first forwards
// one aggregated arrival — carrying the local fold — to the root and
// completes only when the upstream outcome (the fleet-wide release, or the
// fleet's poison cause) comes back. Episode serialization makes the
// suspended completion safe: no local member can arrive at the next
// episode until the release this completion will broadcast reaches it, so
// at most one upstream round-trip per session is ever outstanding.
func (s *session) onEpisode(st softbarrier.EpisodeStats) {
	s.ctrl.Observe(st.Spread)
	box := s.core.Load()
	s.observePlacement(box, st.Episode)
	// Capture the collective result at the quiescent point, while the
	// completed core still owns it: a re-plan in the completion swaps the
	// core out, and the next same-parity episode would overwrite the
	// buffer.
	result := s.capture(box, st.Episode)
	if up := s.srv.opt.Upstream; up != nil && !s.dead.Load() {
		up.ShardArrive(s.name, s.episode.Load(), s.ctrl.Current().P, st.Spread, s.ctrl.Sigma(), result,
			func(out ShardOutcome) { s.completeEpisode(st, out) })
		return
	}
	s.completeEpisode(st, ShardOutcome{Result: result})
}

// completeEpisode finishes an episode once its outcome is known — locally
// immediate on a standalone server, or deferred to the upstream release on
// a leaf. It applies a due epoch plan (degree rebuild — and, in elastic
// mode, the membership boundary), advances the episode, and fans the
// completing frame out to every member socket. An upstream error poisons
// the session instead, delivering the fleet's cause to every local member.
func (s *session) completeEpisode(st softbarrier.EpisodeStats, out ShardOutcome) {
	s.mu.Lock()
	retired := s.retired
	s.mu.Unlock()
	if retired {
		// Every local member arrived and then left without awaiting, and
		// the clean retirement ran while the episode was in flight
		// upstream; nobody is left to release (or to poison).
		return
	}
	if out.Err != nil {
		s.poison(out.Err)
		return
	}
	if s.elastic {
		s.elasticBoundary(st, out)
		return
	}
	ep := s.episode.Load()
	box := s.core.Load()
	if !s.dead.Load() {
		if plan, ok := s.ctrl.Evaluate(); ok {
			s.core.Store(&coreBox{s.buildCore(plan)})
			box.b.Close() // retire the old tree's watchdog
			s.ctrl.Commit(plan)
			s.srv.opt.logf("session %s: episode %d re-planned degree %d -> %d (epoch %d, measured sigma %.3gs)",
				s.name, ep, box.b.Degree(), plan.Degree, plan.Epoch, plan.Sigma)
		} else if s.placementDue() {
			s.core.Store(&coreBox{s.buildCore(s.ctrl.Current())})
			box.b.Close()
			s.ctrl.NotePlacement()
			s.srv.opt.logf("session %s: episode %d placement rebuild (order %v)",
				s.name, ep, s.builtOrder)
		}
	}
	// Advance the episode before the first Release byte leaves: a client's
	// next Arrive frame is ordered after its Release, so every validation
	// against the episode counter sees the new value.
	s.episode.Store(ep + 1)
	if s.dead.Load() {
		return // poison raced in mid-episode; members already have the cause
	}
	cur := s.ctrl.Current()
	s.broadcastRelease(ep, s.releaseFrame(ep, s.degree(), cur.P, cur.Epoch, st.Spread, s.sigmaFor(out), out.Result), s.releaseTargets())
}

// sigmaFor selects the σ an episode's release advertises: the fleet-wide
// estimate the root reported with this outcome when there is one, else the
// session's own local estimate. Leaf clients thus plan against the σ of
// the whole arrival population they actually synchronize with.
func (s *session) sigmaFor(out ShardOutcome) float64 {
	if out.Sigma > 0 {
		return out.Sigma
	}
	return s.ctrl.Sigma()
}

// upstreamClose tells the leaf's upstream link that this session is done —
// gracefully when cause is nil (the link leaves the root session), or with
// the poison cause otherwise (the link forwards it, failing the fleet-wide
// session so every other shard's members learn why).
func (s *session) upstreamClose(cause error) {
	if up := s.srv.opt.Upstream; up != nil {
		up.ShardClose(s.name, cause)
	}
}

// capture copies episode's folded result out of the completed core into
// the session's reusable capture buffer, or returns nil for a plain
// barrier session. Releaser-only; the bytes are consumed (copied into the
// release frame encoding) before the next episode's capture can run.
func (s *session) capture(box *coreBox, episode uint64) []byte {
	if s.op == nil {
		return nil
	}
	s.capBuf = append(s.capBuf[:0], box.b.Reduced(episode)...)
	return s.capBuf
}

// releaseFrame builds the frame completing an episode: a Release for a
// plain session, a Result carrying the folded contributions for a
// collective one, or — for an inter-shard session — a ShardRelease
// carrying both the fleet-wide result and the fleet aggregate (ΣP and the
// σ folded across the shards' reports), which each leaf fans back out to
// its local clients.
func (s *session) releaseFrame(ep uint64, degree, p int, epoch uint64, spread, sigma float64, result []byte) Frame {
	if s.shard {
		fleetP, fleetSigma := s.fleetStats()
		return Frame{
			Type: TypeShardRelease, Episode: ep,
			Degree: degree, P: p, Epoch: epoch,
			Spread: spread, Sigma: fleetSigma,
			FleetP: fleetP, Data: result,
		}
	}
	f := Frame{
		Type: TypeRelease, Episode: ep,
		Degree: degree, P: p, Epoch: epoch,
		Spread: spread, Sigma: sigma,
	}
	if s.op != nil {
		f.Type = TypeResult
		f.Data = result
	}
	return f
}

// elasticBoundary is the elastic session's episode boundary: under the
// session mutex it compacts the membership (dropping departed members,
// admitting pending joiners, re-assigning ids densely), queues the new
// membership with the controller, applies the resulting epoch plan, and
// advances the episode; then, outside the mutex, it answers the admitted
// joiners and releases the continuing members. Holding the mutex across
// compaction and the episode advance is what makes a concurrent Leave
// safe: a leaver observes either the pre-boundary episode (and
// proxy-arrives into the old tree, which still needs its arrival) or the
// post-boundary membership (which no longer contains it).
//
// A boundary with unchanged membership — the elastic steady state — skips
// compaction entirely: ids, members, and the controller's P are already
// right, so the boundary degenerates to the fixed-membership episode path
// (observe, re-plan if due, advance, fan out) and stays allocation-free.
func (s *session) elasticBoundary(st softbarrier.EpisodeStats, out ShardOutcome) {
	s.mu.Lock()
	ep := s.episode.Load()
	box := s.core.Load()

	continuing := s.contBuf[:0]
	for _, m := range s.members {
		if m != nil && !m.gone {
			continuing = append(continuing, m)
		}
	}
	s.contBuf = continuing
	var admitted []*srvConn
	if len(s.pending) > 0 || s.left > 0 {
		admitted = s.pending
		s.pending = nil
		if len(continuing)+len(admitted) == 0 {
			s.retired = true
			s.episode.Store(ep + 1)
			s.mu.Unlock()
			box.b.Close()
			s.upstreamClose(nil)
			s.srv.retire(s)
			return
		}
		// The membership slice must not alias the reusable contBuf scratch:
		// other goroutines read s.members under the mutex while the next
		// boundary rewrites the scratch.
		live := make([]*srvConn, 0, len(continuing)+len(admitted))
		live = append(append(live, continuing...), admitted...)
		for i, m := range live {
			m.id.Store(int64(i))
		}
		for _, m := range admitted {
			m.nextArrive.Store(ep + 1) // first legal arrival is the new epoch's episode
		}
		s.members = live
		s.joined = len(live)
		s.left = 0
		if n := len(live); n != s.ctrl.Current().P {
			s.ctrl.RequestP(n) // n ≥ 1 here, so the request cannot fail
		}
	}
	var old arrivalTree
	if !s.dead.Load() {
		if plan, ok := s.ctrl.Evaluate(); ok {
			s.core.Store(&coreBox{s.buildCore(plan)})
			old = box.b
			s.ctrl.Commit(plan)
		} else if s.placementDue() {
			s.core.Store(&coreBox{s.buildCore(s.ctrl.Current())})
			old = box.b
			s.ctrl.NotePlacement()
		}
	}
	s.episode.Store(ep + 1)
	cur := s.ctrl.Current()
	s.mu.Unlock()

	if old != nil {
		old.Close()
		s.srv.opt.logf("session %s: episode %d epoch %d: p %d degree %d (measured sigma %.3gs, %d joined, %d continuing)",
			s.name, ep, cur.Epoch, cur.P, cur.Degree, cur.Sigma, len(admitted), len(continuing))
	}
	if s.dead.Load() {
		return // poison raced in mid-episode; members already have the cause
	}
	deg := s.degree()
	wt := s.srv.opt.writeTimeout()
	for _, m := range admitted {
		resp := Frame{
			Type: TypeJoinResp, ID: int(m.id.Load()), P: cur.P,
			Degree: deg, Episode: ep + 1,
		}
		buf, err := AppendFrame(nil, resp)
		if err != nil {
			s.poison(fmt.Errorf("netbarrier: internal: unencodable frame: %w", err))
			return
		}
		// Enqueued like a release: an admitted member whose socket cannot be
		// written poisons the session from its writer goroutine, without
		// delaying anyone else's JoinResp or release.
		m.enqueue(sendJob{buf: buf, timeout: wt, sess: s})
	}
	s.broadcastRelease(ep, s.releaseFrame(ep, deg, cur.P, cur.Epoch, st.Spread, s.sigmaFor(out), out.Result), continuing)
}

// onPoison is the WithPoisonNotify hook: whatever poisoned the tree —
// watchdog stall, client disconnect, protocol violation, server shutdown —
// lands here exactly once, and every member socket receives the
// wire-encoded cause instead of a Release; pending joiners get a refusing
// JoinResp, and a refusal that cannot be written is logged and the
// connection closed, so the client fails fast instead of hanging until its
// join timeout. Sends run concurrently — one stalled socket costs one
// write deadline, not a deadline per member — but the hook still blocks
// until every send finishes: Server.Close poisons sessions and then
// immediately closes every connection, so the cause frames must be on the
// wire before this returns. The session is retired so its name becomes
// reusable.
func (s *session) onPoison(err error) {
	if !s.dead.CompareAndSwap(false, true) {
		return
	}
	s.srv.opt.logf("session %s: poisoned: %v (arrivals %v)", s.name, err, s.core.Load().b.Arrivals())
	s.mu.Lock()
	members := make([]*srvConn, 0, s.joined)
	for _, m := range s.members {
		if m != nil && !m.gone {
			members = append(members, m)
		}
	}
	pending := s.pending
	s.pending = nil
	s.mu.Unlock()

	wt := s.srv.opt.writeTimeout()
	var wg sync.WaitGroup
	if buf, encErr := AppendFrame(nil, Frame{Type: TypePoison, Cause: softbarrier.EncodePoisonCause(nil, err)}); encErr == nil {
		for _, m := range members {
			wg.Add(1)
			go func(m *srvConn) {
				defer wg.Done()
				m.send(buf, wt) // failure ignored: that member is already gone
			}(m)
		}
	}
	if len(pending) > 0 {
		buf, encErr := AppendFrame(nil, Frame{Type: TypeJoinResp, Err: fmt.Sprintf("session poisoned: %v", err)})
		for _, m := range pending {
			wg.Add(1)
			go func(m *srvConn) {
				defer wg.Done()
				sendErr := encErr
				if sendErr == nil {
					sendErr = m.send(buf, wt)
				}
				if sendErr != nil {
					s.srv.opt.logf("session %s: failed to refuse pending client %s: %v", s.name, m.conn.RemoteAddr(), sendErr)
					m.conn.Close()
				}
			}(m)
		}
	}
	wg.Wait()
	s.core.Load().b.Close()
	s.upstreamClose(err)
	s.srv.retire(s)
}

// poison fails the session with the given cause. The notify hook on the
// current core performs the broadcast.
func (s *session) poison(err error) { s.core.Load().b.Poison(err) }

// releaseTargets collects the live members into the releaser's reusable
// scratch slice. Releaser-only.
func (s *session) releaseTargets() []*srvConn {
	s.mu.Lock()
	ms := s.bcast[:0]
	for _, m := range s.members {
		if m != nil && !m.gone {
			ms = append(ms, m)
		}
	}
	s.bcast = ms
	s.mu.Unlock()
	return ms
}

// broadcastRelease encodes the episode-completing frame once — into the
// parity-double-buffered release scratch, so a steady-state episode
// encodes with zero allocations — and fans it out to ms concurrently, one
// enqueue per member's writer goroutine. A member we cannot write to
// within the server's write timeout will never arrive again, so its
// (asynchronous) failed write poisons the session; every other member's
// release is unaffected.
//
// Scratch safety: a same-parity buffer is reused two episodes later, by
// which time every borrowing write has completed — a member must receive
// episode k's release before it can arrive at k+1, and releases k+1 and
// k+2 cannot exist before every member arrived. relPending guards the
// residual race (a stalled socket still holding the buffer): nonzero means
// encode into a fresh allocation instead.
func (s *session) broadcastRelease(ep uint64, f Frame, ms []*srvConn) {
	parity := ep & 1
	pend := &s.relPending[parity]
	var dst []byte
	if pend.Load() == 0 {
		dst = s.relScratch[parity][:0]
	} else {
		pend = nil // scratch still borrowed; this fan-out owns a private buffer
	}
	buf, err := AppendFrame(dst, f)
	if err != nil {
		s.poison(fmt.Errorf("netbarrier: internal: unencodable frame: %w", err))
		return
	}
	if pend != nil {
		s.relScratch[parity] = buf
	}
	wt := s.srv.opt.writeTimeout()
	for _, m := range ms {
		if pend != nil {
			pend.Add(1)
		}
		m.enqueue(sendJob{buf: buf, timeout: wt, sess: s, pend: pend})
	}
}

// join claims a member slot. want ≥ 0 requests a specific id; -1 takes
// the first free slot. It returns the assigned id or a refusal message;
// in an elastic session a join against a full cohort is deferred instead
// of refused (the connection parks on the pending list and is admitted at
// the next episode boundary), and the requested id and participant count
// are advisory — membership is the server's to manage.
func (s *session) join(c *srvConn, p, want int) (id int, refusal string, deferred bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.retired || s.dead.Load() {
		return 0, "session is shutting down", false
	}
	if c.shard != s.shard {
		// The session's participant kind is fixed by its first joiner:
		// aggregated shard arrivals and per-client arrivals carry different
		// frames and release shapes, so mixing them would corrupt both.
		if s.shard {
			return 0, "session is inter-shard; clients must join through a leaf", false
		}
		return 0, "session has client members; shards cannot join it", false
	}
	if s.elastic {
		for i, m := range s.members {
			if m == nil {
				c.id.Store(int64(i))
				s.members[i] = c
				s.joined++
				return i, "", false
			}
		}
		s.pending = append(s.pending, c)
		return 0, "", true
	}
	switch {
	case p != len(s.members):
		return 0, fmt.Sprintf("session has %d participants, not %d", len(s.members), p), false
	case want >= len(s.members):
		return 0, fmt.Sprintf("id %d out of range for %d participants", want, len(s.members)), false
	case want >= 0:
		if s.members[want] != nil {
			return 0, fmt.Sprintf("id %d already taken", want), false
		}
		id = want
	default:
		id = -1
		for i, m := range s.members {
			if m == nil {
				id = i
				break
			}
		}
		if id < 0 {
			return 0, "session is full", false
		}
	}
	c.id.Store(int64(id))
	s.members[id] = c
	s.joined++
	return id, "", false
}

// leave processes a graceful departure: the member will not arrive again,
// and its connection closing is no longer a failure.
//
// Fixed-membership sessions retire when every joined member has left; a
// member that leaves while others keep arriving causes a stall, which the
// watchdog converts into a StallError naming it — departure there is
// cooperative, not transparent. An elastic session instead absorbs the
// departure at the next episode boundary: if the leaver had not yet
// arrived at the in-flight episode, the session arrives on its behalf
// (the episode cannot complete without that slot, and the leaver will
// never fill it), and the boundary's compaction then drops it from the
// next epoch.
func (s *session) leave(c *srvConn) {
	if !s.elastic {
		s.mu.Lock()
		c.gone = true
		c.leftOK = true
		s.left++
		done := s.left == s.joined && s.joined > 0
		if done {
			s.retired = true
		}
		s.mu.Unlock()
		if done {
			s.core.Load().b.Close()
			s.upstreamClose(nil)
			s.srv.retire(s)
		}
		return
	}
	s.mu.Lock()
	if c.id.Load() < 0 { // pending, never admitted: just forget it
		s.dropPendingLocked(c)
		c.leftOK = true
		s.mu.Unlock()
		return
	}
	c.gone = true
	c.leftOK = true
	s.left++
	cur := s.episode.Load()
	needProxy := c.nextArrive.Load() <= cur && !s.dead.Load()
	allGone := len(s.pending) == 0
	for _, m := range s.members {
		if m != nil && !m.gone {
			allGone = false
			break
		}
	}
	done := allGone && !needProxy
	if done {
		s.retired = true
	}
	core := s.core.Load()
	s.mu.Unlock()
	if needProxy {
		// The proxy arrival below may complete the episode, whose boundary
		// (or, if everyone is gone, retirement) runs inside this call. A
		// collective session folds the op's identity on the leaver's
		// behalf, so the cohort's result is unchanged by its absence.
		if s.op != nil {
			core.b.ArriveReduce(int(c.id.Load()), s.ident)
		} else {
			core.b.Arrive(int(c.id.Load()))
		}
		return
	}
	if done {
		core.b.Close()
		s.upstreamClose(nil)
		s.srv.retire(s)
	}
}

// dropPendingLocked removes c from the pending list. Caller holds s.mu.
func (s *session) dropPendingLocked(c *srvConn) {
	for i, m := range s.pending {
		if m == c {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			return
		}
	}
}

// disconnect processes a member's reader terminating with err. A member
// that already left (or a session already dead, or a pending joiner that
// dropped before admission) just cleans up; anything else poisons the
// session — the member cannot arrive anymore, and poisoning is how every
// other member learns that before the watchdog deadline, let alone
// forever.
func (s *session) disconnect(c *srvConn, err error) {
	s.mu.Lock()
	if c.id.Load() < 0 { // pending, never admitted
		s.dropPendingLocked(c)
		s.mu.Unlock()
		return
	}
	wasGone := c.gone || c.leftOK
	c.gone = true
	s.mu.Unlock()
	if wasGone || s.dead.Load() {
		return
	}
	// Name shards as shards: a leaf process dying often reaches the root
	// as a bare EOF (the leaf's graceful poison frame races its own
	// process exit), and the cause fans out fleet-wide, so it must say
	// which shard died — "client 0" would point at an innocent local id.
	kind := "client"
	if c.shard {
		kind = "shard"
	}
	s.poison(fmt.Errorf("netbarrier: %s %d disconnected mid-session: %w", kind, c.id.Load(), err))
}
