package netbarrier

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"softbarrier"
	"softbarrier/internal/wire"
)

// Release is what a completed episode looks like from a client: the
// episode index, the configuration the next episode will run at — tree
// degree, participant count and epoch, all of which move when the server
// re-plans or (elastic sessions) the membership changes — the episode's
// measured arrival spread, and the session's EWMA σ estimate: the same
// telemetry a local Observer would see, one frame per episode.
type Release struct {
	Episode uint64
	Degree  int
	P       int     // the next episode's participant count
	Epoch   uint64  // the next episode's configuration epoch
	Spread  float64 // this episode's arrival spread, seconds
	Sigma   float64 // the session's EWMA σ estimate, seconds
	FleetP  int     // shard peers only: fleet-wide participant count across every shard
	Result  []byte  // collective sessions: the episode's folded result
}

// Client is one participant of a networked barrier session. The calling
// pattern mirrors softbarrier.PhasedBarrier: Arrive announces arrival
// without blocking (the fuzzy-barrier half — do slack work after it),
// Await blocks until the server releases the episode, Wait is both. A
// client is not safe for concurrent use; like a participant id, it
// belongs to one goroutine.
//
// Errors are sticky: once a wait returns a poison cause (or the
// connection fails), every subsequent call returns the same error, just
// as waits on a poisoned in-process barrier do. The cause survives the
// wire with its identity intact — errors.As recovers a
// *softbarrier.StallError, errors.Is matches context.Canceled and friends.
type Client struct {
	fc *wire.FrameConn

	joined  bool
	left    bool
	id      int
	p       int
	degree  int
	episode uint64
	epoch   uint64
	sigma   float64
	err     error
}

// DialConn establishes the raw transport a barrierd peer runs over, using
// the default TCP transport: Nagle disabled (arrive/release frames are
// latency-bound), OS keepalive armed, and the whole connection attempt
// bounded by timeout (0 = no bound). Peers that need different keepalive
// or dial behavior configure a wire.TCP (or any other wire.Dialer) and
// dial through it instead.
func DialConn(addr string, timeout time.Duration) (net.Conn, error) {
	return wire.DefaultTCP.Dial(addr, timeout)
}

// RedialConn is DialConn with the bounded reconnect loop of wire.Redial:
// up to attempts tries, sleeping backoff after the first failure and
// doubling it after each subsequent one.
func RedialConn(addr string, timeout time.Duration, attempts int, backoff time.Duration) (net.Conn, error) {
	return wire.Redial(wire.DefaultTCP, addr, timeout, attempts, backoff)
}

// Dial connects to a barrierd server with no connect bound. Join must be
// called next.
func Dial(addr string) (*Client, error) { return DialTimeout(addr, 0) }

// DialTimeout is Dial with the connection attempt bounded by timeout.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	return DialVia(wire.DefaultTCP, addr, timeout)
}

// DialVia dials through an explicit transport — a wire.TCP with custom
// keepalive, an in-process memnet, a chaos wrapper — and wraps the
// connection as a Client. Join must be called next.
func DialVia(d wire.Dialer, addr string, timeout time.Duration) (*Client, error) {
	conn, err := d.Dial(addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (from a wire.Dialer, or
// anything else that speaks the wire protocol) as a Client. Join or
// ShardJoin must be called next.
func NewClient(conn net.Conn) *Client {
	return &Client{fc: wire.NewFrameConn(conn)}
}

// Join enters the named session as one of p participants, letting the
// server pick the participant id.
func (c *Client) Join(session string, p int) error { return c.JoinAs(session, p, -1) }

// JoinAs is Join with an explicit participant id request.
func (c *Client) JoinAs(session string, p, id int) error {
	return c.join(TypeJoinReq, session, p, id)
}

// ShardJoin enters the named session as one of shards aggregated shard
// participants — the handshake a leaf barrierd performs against its root.
// A shard id ≥ 0 pins this shard's slot in the root's deterministic
// ascending-id fold (so a fleet that cares about bit-identical collective
// results assigns stable shard indices); -1 takes any free slot.
func (c *Client) ShardJoin(session string, shards, id int) error {
	return c.join(TypeShardJoin, session, shards, id)
}

func (c *Client) join(typ byte, session string, p, id int) error {
	if c.err != nil {
		return c.err
	}
	if c.joined {
		return c.fail(errors.New("netbarrier: already joined"))
	}
	if err := c.fc.WriteFrame(Frame{Type: typ, Name: session, P: p, ID: id}); err != nil {
		return c.fail(err)
	}
	resp, err := c.fc.ReadFrame()
	if err != nil {
		return c.fail(fmt.Errorf("netbarrier: join failed: %w", err))
	}
	if resp.Type != TypeJoinResp {
		return c.fail(fmt.Errorf("netbarrier: join answered with frame type %d", resp.Type))
	}
	if resp.Err != "" {
		return c.fail(fmt.Errorf("netbarrier: join refused: %s", resp.Err))
	}
	c.joined = true
	c.id = resp.ID
	c.p = resp.P
	c.degree = resp.Degree
	c.episode = resp.Episode
	return nil
}

// ID returns the participant id the server assigned.
func (c *Client) ID() int { return c.id }

// Participants returns the session's participant count as of the last
// release (or the join) — in an elastic session it moves as members join
// and leave.
func (c *Client) Participants() int { return c.p }

// Episode returns the episode index the next Arrive will announce: the
// join's episode, advancing by one per release. Ledger-keeping callers
// (the acceptance suites) read it to key contributions by episode.
func (c *Client) Episode() uint64 { return c.episode }

// Epoch returns the session's configuration epoch as of the last release.
func (c *Client) Epoch() uint64 { return c.epoch }

// Degree returns the tree degree of the upcoming episode, as of the last
// release (or the join).
func (c *Client) Degree() int { return c.degree }

// Sigma returns the session's σ estimate as of the last release, seconds.
func (c *Client) Sigma() float64 { return c.sigma }

// Err returns the sticky error, or nil while the client is healthy.
func (c *Client) Err() error { return c.err }

// LocalAddr returns the local address of the client's connection — the
// address the server sees as the remote end.
func (c *Client) LocalAddr() net.Addr { return c.fc.Conn().LocalAddr() }

// Arrive announces arrival at the current episode without waiting for its
// completion — the fuzzy-barrier arrival half.
func (c *Client) Arrive() error {
	if c.err != nil {
		return c.err
	}
	if !c.joined {
		return c.fail(errors.New("netbarrier: arrive before join"))
	}
	if err := c.fc.WriteFrame(Frame{Type: TypeArrive, Episode: c.episode}); err != nil {
		return c.fail(err)
	}
	return nil
}

// ArriveReduce announces arrival carrying a collective contribution — the
// fuzzy half of AllReduce. The session must have been configured with the
// matching op server-side (barrierd -collective); in must be exactly the
// op's width. The episode's Release arrives as a Result frame whose
// folded bytes Await surfaces in Release.Result.
func (c *Client) ArriveReduce(in []byte) error {
	if c.err != nil {
		return c.err
	}
	if !c.joined {
		return c.fail(errors.New("netbarrier: arrive before join"))
	}
	if err := c.fc.WriteFrame(Frame{Type: TypeArriveData, Episode: c.episode, Data: in}); err != nil {
		return c.fail(err)
	}
	return nil
}

// ShardArrive forwards this shard's combined arrival at the current
// episode: localP is how many local participants it aggregates, spread
// and sigma the shard's local arrival measurements, and data its locally
// folded collective contribution (nil for plain sessions). It is the
// ShardJoin counterpart of Arrive/ArriveReduce; the episode completes
// with a shard-release, surfaced by Await with FleetP and Result set.
func (c *Client) ShardArrive(localP int, spread, sigma float64, data []byte) error {
	if c.err != nil {
		return c.err
	}
	if !c.joined {
		return c.fail(errors.New("netbarrier: arrive before join"))
	}
	if err := c.fc.WriteFrame(Frame{Type: TypeShardArrive, Episode: c.episode, P: localP, Spread: spread, Sigma: sigma, Data: data}); err != nil {
		return c.fail(err)
	}
	return nil
}

// Poison delivers a poison cause upstream: the session is aborted for
// every participant with err as the wire-encoded cause, exactly as if the
// server had poisoned it locally. Only shard peers may send it — a leaf
// whose local cohort failed uses it to hand the root the original cause
// (a *StallError naming the absent local clients, say) instead of the
// anonymous "shard disconnected" a bare connection drop would produce.
// The client is failed with err afterwards; the connection is left for
// the caller to close.
func (c *Client) Poison(err error) error {
	if c.err != nil {
		return c.err
	}
	if !c.joined {
		return c.fail(errors.New("netbarrier: poison before join"))
	}
	if werr := c.fc.WriteFrame(Frame{Type: TypePoison, Cause: softbarrier.EncodePoisonCause(nil, err)}); werr != nil {
		return c.fail(werr)
	}
	c.fail(err)
	return nil
}

// AllReduce is ArriveReduce followed by Await: contribute in, block until
// every participant has contributed, and return the folded result (the
// deterministic ascending-id fold for non-commutative ops). The result
// slice is owned by the caller.
func (c *Client) AllReduce(in []byte) ([]byte, error) {
	if err := c.ArriveReduce(in); err != nil {
		return nil, err
	}
	rel, err := c.Await()
	if err != nil {
		return nil, err
	}
	if rel.Result == nil {
		return nil, c.fail(errors.New("netbarrier: session has no collective op (release carried no result)"))
	}
	return rel.Result, nil
}

// Await blocks until the server releases the episode Arrive announced, or
// delivers a poison cause. It returns the episode's Release telemetry.
func (c *Client) Await() (Release, error) {
	if c.err != nil {
		return Release{}, c.err
	}
	f, err := c.fc.ReadFrame()
	if err != nil {
		return Release{}, c.fail(fmt.Errorf("netbarrier: connection failed awaiting release: %w", err))
	}
	switch f.Type {
	case TypeRelease, TypeResult, TypeShardRelease:
		c.episode = f.Episode + 1
		c.degree = f.Degree
		if f.P > 0 {
			c.p = f.P
		}
		c.epoch = f.Epoch
		c.sigma = f.Sigma
		rel := Release{Episode: f.Episode, Degree: f.Degree, P: f.P, Epoch: f.Epoch, Spread: f.Spread, Sigma: f.Sigma}
		switch f.Type {
		case TypeResult:
			rel.Result = append([]byte(nil), f.Data...)
		case TypeShardRelease:
			rel.FleetP = f.FleetP
			if len(f.Data) > 0 {
				rel.Result = append([]byte(nil), f.Data...)
			}
		}
		return rel, nil
	case TypePoison:
		return Release{}, c.fail(softbarrier.DecodePoisonCause(f.Cause))
	default:
		return Release{}, c.fail(fmt.Errorf("netbarrier: unexpected frame %s while awaiting release", FrameName(f.Type)))
	}
}

// Wait is Arrive followed by Await: one whole barrier episode.
func (c *Client) Wait() (Release, error) {
	if err := c.Arrive(); err != nil {
		return Release{}, err
	}
	return c.Await()
}

// AwaitCtx is Await with cancellation. If ctx ends first, the wait is
// abandoned: the connection is no longer usable mid-stream, so the client
// becomes permanently failed with ctx's error, and closing it lets the
// server poison the session for the remaining participants — the same
// "cancelled participant kills the episode" semantics as the in-process
// WaitCtx, with the poison propagation running server-side.
func (c *Client) AwaitCtx(ctx context.Context) (Release, error) {
	if c.err != nil {
		return Release{}, c.err
	}
	if err := ctx.Err(); err != nil {
		return Release{}, c.fail(err)
	}
	stop := context.AfterFunc(ctx, func() {
		c.fc.SetReadDeadline(time.Unix(0, 1)) // unblock the pending read
	})
	r, err := c.Await()
	if !stop() {
		// ctx fired: report its error, whatever state the aborted read left.
		<-ctx.Done()
		c.err = ctx.Err()
		return Release{}, c.err
	}
	return r, err
}

// WaitCtx is Arrive followed by AwaitCtx.
func (c *Client) WaitCtx(ctx context.Context) (Release, error) {
	if err := c.Arrive(); err != nil {
		return Release{}, err
	}
	return c.AwaitCtx(ctx)
}

// Leave departs the session gracefully — call it between episodes, when
// this participant will not arrive again — and closes the connection.
// Unlike a bare Close, the server does not treat the departure as a
// failure; the session ends when every participant has left.
func (c *Client) Leave() error {
	if c.err == nil && c.joined && !c.left {
		c.left = true
		if err := c.fc.WriteFrame(Frame{Type: TypeLeave}); err != nil {
			c.fail(err)
		}
	}
	return c.fc.Close()
}

// Close abandons the connection without leaving. If the session is still
// live, the server will poison it — every other participant gets a
// "disconnected" cause instead of a hang. Use Leave for clean shutdown.
func (c *Client) Close() error { return c.fc.Close() }

// fail records the sticky error.
func (c *Client) fail(err error) error {
	if c.err == nil {
		c.err = err
	}
	return c.err
}
