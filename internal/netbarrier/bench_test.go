package netbarrier

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// benchEpisodes drives full networked episodes — every client sends
// Arrive and blocks for its Release frame — against a server started by
// start, so ns/op is the wall-clock cost of one complete episode at each
// cohort size. The TCP and memnet variants below run the identical body;
// their delta is the kernel socket cost (syscalls, loopback stack,
// ephemeral ports), since the protocol path — frames, sessions, fan-out —
// is byte-for-byte the same.
func benchEpisodes(b *testing.B, start func(testing.TB, Options) (string, *Server)) {
	for _, p := range []int{2, 8, 64, 512} {
		b.Run(fmt.Sprintf("%dclients", p), func(b *testing.B) {
			b.ReportAllocs()
			addr, _ := start(b, Options{Watchdog: 30 * time.Second})
			clients := make([]*Client, p)
			for i := range clients {
				clients[i] = dialJoin(b, addr, "bench", p, i)
			}
			defer func() {
				for _, c := range clients {
					c.Leave()
				}
			}()

			var wg sync.WaitGroup
			errs := make([]error, p)
			b.ResetTimer()
			for i, c := range clients {
				wg.Add(1)
				go func(i int, c *Client) {
					defer wg.Done()
					for ep := 0; ep < b.N; ep++ {
						if _, err := c.Wait(); err != nil {
							errs[i] = err
							return
						}
					}
				}(i, c)
			}
			wg.Wait()
			b.StopTimer()
			for i, err := range errs {
				if err != nil {
					b.Fatalf("client %d: %v", i, err)
				}
			}
		})
	}
}

// BenchmarkNetBarrier measures episodes over loopback TCP — the
// production transport. The 512-client point probes the fan-out's
// scaling edge (hundreds of sockets sharing one releaser). allocs/op is
// part of the trajectory: the steady-state frame path is supposed to
// stay at zero.
func BenchmarkNetBarrier(b *testing.B) { benchEpisodes(b, startTCPServer) }

// BenchmarkNetBarrierMemNet is the same suite over the in-process memnet
// transport. Read it against BenchmarkNetBarrier: memnet's ns/op is the
// protocol floor (framing, session machinery, goroutine scheduling), and
// TCP minus memnet is what the kernel's loopback stack charges per
// episode.
func BenchmarkNetBarrierMemNet(b *testing.B) { benchEpisodes(b, startServer) }
