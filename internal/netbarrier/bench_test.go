package netbarrier

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// BenchmarkNetBarrier measures full networked episodes over loopback TCP:
// every client sends Arrive and blocks for its Release frame, so ns/op is
// the wall-clock cost of one complete episode at each cohort size —
// the number to put next to the in-process waiter-policy benchmarks when
// deciding whether a workload can afford a network hop per episode. The
// 512-client point probes the fan-out's scaling edge (hundreds of
// sockets sharing one releaser). allocs/op is part of the trajectory:
// the steady-state frame path is supposed to stay at zero.
func BenchmarkNetBarrier(b *testing.B) {
	for _, p := range []int{2, 8, 64, 512} {
		b.Run(fmt.Sprintf("%dclients", p), func(b *testing.B) {
			b.ReportAllocs()
			addr, _ := startServer(b, Options{Watchdog: 30 * time.Second})
			clients := make([]*Client, p)
			for i := range clients {
				clients[i] = dialJoin(b, addr, "bench", p, i)
			}
			defer func() {
				for _, c := range clients {
					c.Leave()
				}
			}()

			var wg sync.WaitGroup
			errs := make([]error, p)
			b.ResetTimer()
			for i, c := range clients {
				wg.Add(1)
				go func(i int, c *Client) {
					defer wg.Done()
					for ep := 0; ep < b.N; ep++ {
						if _, err := c.Wait(); err != nil {
							errs[i] = err
							return
						}
					}
				}(i, c)
			}
			wg.Wait()
			b.StopTimer()
			for i, err := range errs {
				if err != nil {
					b.Fatalf("client %d: %v", i, err)
				}
			}
		})
	}
}
