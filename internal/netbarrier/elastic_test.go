package netbarrier

import (
	"sync"
	"testing"
	"time"
)

// elasticClient loops whole barrier episodes until its stop channel closes
// (then departs gracefully between episodes) or an episode fails. Errors
// land on errs; a clean departure sends nil.
func elasticClient(c *Client, stop <-chan struct{}, errs chan<- error, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case <-stop:
			errs <- c.Leave()
			return
		default:
		}
		if _, err := c.Wait(); err != nil {
			errs <- err
			return
		}
	}
}

// waitEpisode polls the session's episode counter until it reaches at
// least want, returning the stats snapshot that crossed the line.
func waitEpisode(t *testing.T, srv *Server, session string, want uint64) SessionStats {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st, ok := srv.SessionStats(session)
		if ok && st.Episode >= want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for episode %d (last stats %+v, live %v)", want, st, ok)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TestElasticMembershipAcceptance is the elastic-session torture run: a
// 64-client cohort completes well over 1000 episodes while 8 members leave
// mid-run and 8 fresh clients join against the full session (parking until
// an episode boundary admits them), with degree re-planning running
// throughout. Nothing may error, and the session must end back at 64
// members with the epoch/rebuild counters reflecting the membership moves.
func TestElasticMembershipAcceptance(t *testing.T) {
	const (
		cohort  = 64
		churn   = 8
		session = "elastic-acceptance"
	)
	addr, srv := startServer(t, Options{
		Elastic:     true,
		ReplanEvery: 4,
		Watchdog:    30 * time.Second,
	})

	var wg sync.WaitGroup
	errs := make(chan error, cohort+churn)
	stops := make([]chan struct{}, 0, cohort+churn)
	start := func(c *Client) {
		stop := make(chan struct{})
		stops = append(stops, stop)
		wg.Add(1)
		go elasticClient(c, stop, errs, &wg)
	}

	// Formation: 64 clients fill the initial cohort.
	clients := make([]*Client, cohort)
	var joinWG sync.WaitGroup
	for i := range clients {
		joinWG.Add(1)
		go func(i int) {
			defer joinWG.Done()
			clients[i] = dialJoin(t, addr, session, cohort, -1)
		}(i)
	}
	joinWG.Wait()
	for _, c := range clients {
		start(c)
	}

	// Let the cohort run, then shed 8 members mid-run.
	waitEpisode(t, srv, session, 300)
	for _, stop := range stops[cohort-churn:] {
		close(stop)
	}
	waitEpisode(t, srv, session, 500)

	// 8 late joiners against the (again full-feeling) session: each Join
	// blocks until an episode boundary admits it into the next epoch.
	lateJoined := make(chan *Client, churn)
	for i := 0; i < churn; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lateJoined <- dialJoin(t, addr, session, cohort, -1)
		}()
	}
	for i := 0; i < churn; i++ {
		start(<-lateJoined)
	}

	// Run the full cohort well past the 1000-episode mark, snapshot the
	// telemetry while the session is still live, then wind everything down.
	st := waitEpisode(t, srv, session, 1100)
	for _, stop := range stops[:cohort-churn] {
		close(stop)
	}
	for _, stop := range stops[cohort:] {
		close(stop)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("client failed: %v", err)
		}
	}

	if st.P != cohort {
		t.Errorf("final membership = %d, want %d", st.P, cohort)
	}
	if st.Members != cohort {
		t.Errorf("live members at snapshot = %d, want %d", st.Members, cohort)
	}
	r := st.Reconfig
	// The shrink boundary and the admission boundary each force a rebuild
	// (membership changed), so at least two epochs beyond the initial one.
	if r.Rebuilds < 2 {
		t.Errorf("rebuilds = %d, want ≥ 2 (shrink + admission boundaries)", r.Rebuilds)
	}
	if r.Epochs != r.Rebuilds+1 {
		t.Errorf("epochs = %d, want rebuilds+1 = %d", r.Epochs, r.Rebuilds+1)
	}
	if r.LastPlan.P != cohort {
		t.Errorf("last plan P = %d, want %d", r.LastPlan.P, cohort)
	}
	t.Logf("elastic acceptance: %d episodes, %d epochs, %d rebuilds, %d evals (%d deferred), last plan %+v",
		st.Episode, r.Epochs, r.Rebuilds, r.Evals, r.Deferred, r.LastPlan)
}

// TestElasticLateJoinExpands pins the welcome-the-stranger behaviour at
// small scale: a 2-member elastic session admits a third joiner at an
// episode boundary (instead of refusing "session is full"), after which
// releases report the expanded membership to everyone.
func TestElasticLateJoinExpands(t *testing.T) {
	const session = "elastic-grow"
	addr, srv := startServer(t, Options{Elastic: true, Watchdog: 10 * time.Second})

	a := dialJoin(t, addr, session, 2, -1)
	b := dialJoin(t, addr, session, 2, -1)

	// The third join parks until a boundary; drive one episode with the
	// founding pair so the boundary happens.
	type joined struct {
		c   *Client
		err error
	}
	done := make(chan joined, 1)
	go func() {
		c, err := testDial(addr)
		if err == nil {
			err = c.Join(session, 2) // participant count is advisory in elastic sessions
		}
		done <- joined{c, err}
	}()
	waitFor := time.Now().Add(10 * time.Second)
	for {
		st, ok := srv.SessionStats(session)
		if ok && st.Pending == 1 {
			break
		}
		if time.Now().After(waitFor) {
			t.Fatal("late joiner never parked as pending")
		}
		time.Sleep(100 * time.Microsecond)
	}

	var wg sync.WaitGroup
	for _, c := range []*Client{a, b} {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			if _, err := c.Wait(); err != nil {
				t.Errorf("founding member: %v", err)
			}
		}(c)
	}
	wg.Wait()
	j := <-done
	if j.err != nil {
		t.Fatalf("late join: %v", j.err)
	}
	if got := j.c.Participants(); got != 3 {
		t.Errorf("late joiner sees p = %d, want 3", got)
	}

	// One episode at the expanded width; every member must see p = 3 and
	// epoch ≥ 1 in the release.
	for _, c := range []*Client{a, b, j.c} {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			r, err := c.Wait()
			if err != nil {
				t.Errorf("expanded episode: %v", err)
				return
			}
			if r.P != 3 {
				t.Errorf("release reports p = %d, want 3", r.P)
			}
			if r.Epoch < 1 {
				t.Errorf("release reports epoch %d, want ≥ 1", r.Epoch)
			}
		}(c)
	}
	wg.Wait()
	for _, c := range []*Client{a, b, j.c} {
		c.Leave()
	}
}
