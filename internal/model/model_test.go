package model

import (
	"math"
	"testing"

	"softbarrier/internal/barriersim"
	"softbarrier/internal/stats"
	"softbarrier/internal/topology"
)

const tc = DefaultTc

func TestFullLevels(t *testing.T) {
	cases := []struct {
		p, d, levels int
		ok           bool
	}{
		{64, 4, 3, true}, {64, 2, 6, true}, {64, 8, 2, true}, {64, 64, 1, true},
		{4096, 16, 3, true}, {4096, 32, 0, false}, {56, 4, 0, false}, {1, 4, 0, true},
	}
	for _, c := range cases {
		l, ok := FullLevels(c.p, c.d)
		if ok != c.ok || (ok && l != c.levels) {
			t.Errorf("FullLevels(%d, %d) = %d, %v; want %d, %v", c.p, c.d, l, ok, c.levels, c.ok)
		}
	}
}

func TestFullTreeDegrees4096(t *testing.T) {
	// The paper notes there is no approximation for degree 32 at p = 4096:
	// 32 is not a full-tree degree, but 2, 4, 8, 16, 64, 4096 are.
	got := FullTreeDegrees(4096)
	want := []int{2, 4, 8, 16, 64, 4096}
	if len(got) != len(want) {
		t.Fatalf("degrees %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("degrees %v, want %v", got, want)
		}
	}
}

func TestSubsetSizesSumToP(t *testing.T) {
	// 1 (last processor) + Σ |S_l| must equal p for any full tree.
	for _, c := range []struct{ p, d int }{{64, 4}, {256, 4}, {4096, 16}, {512, 8}} {
		levels, _ := FullLevels(c.p, c.d)
		total := 1
		for l := 0; l < levels; l++ {
			total += SubsetSize(c.d, l)
		}
		if total != c.p {
			t.Errorf("p=%d d=%d: subsets sum to %d", c.p, c.d, total)
		}
	}
}

func TestPBefore(t *testing.T) {
	// p=64, d=4, L=3: P_after(S_l) = d^(l+1)/p.
	if got := PBefore(4, 0, 3); math.Abs(got-(1-4.0/64)) > 1e-12 {
		t.Errorf("PBefore(l=0) = %v", got)
	}
	if got := PBefore(4, 1, 3); math.Abs(got-(1-16.0/64)) > 1e-12 {
		t.Errorf("PBefore(l=1) = %v", got)
	}
	if got := PBefore(4, 2, 3); got != 0 {
		t.Errorf("PBefore(earliest subset) = %v, want 0", got)
	}
}

func TestEstimateSigmaZeroReducesToEq1(t *testing.T) {
	// At σ = 0 the model must give exactly L·d·t_c.
	for _, c := range []struct{ p, d, levels int }{
		{64, 4, 3}, {64, 2, 6}, {256, 4, 4}, {4096, 16, 3}, {64, 64, 1},
	} {
		got, err := EstimateDelay(Params{P: c.p, Degree: c.d, Sigma: 0})
		if err != nil {
			t.Fatal(err)
		}
		want := float64(c.levels*c.d) * tc
		if math.Abs(got-want) > 1e-15 {
			t.Errorf("p=%d d=%d: delay %v, want %v", c.p, c.d, got, want)
		}
	}
}

func TestEstimateOptimalDegreeAtSigmaZeroIsFour(t *testing.T) {
	// Fig. 4 "est" rows, σ = 0 column.
	for _, p := range []int{64, 256, 4096} {
		if got := EstimateOptimalDegree(p, 0, tc); got.Degree != 4 {
			t.Errorf("p=%d: estimated degree %d at σ=0, want 4", p, got.Degree)
		}
	}
}

func TestEstimatedDegreeGrowsWithSigma(t *testing.T) {
	p := 4096
	prev := 0
	for _, sigma := range []float64{0, 6.2 * tc, 25 * tc, 100 * tc} {
		d := EstimateOptimalDegree(p, sigma, tc).Degree
		if d < prev {
			t.Errorf("σ=%v: estimated degree %d dropped below %d", sigma, d, prev)
		}
		prev = d
	}
	if prev < 16 {
		t.Errorf("estimated degree at σ=100t_c is %d, expected a wide tree", prev)
	}
}

func TestEstimateLargeSigmaApproachesUpdateFloor(t *testing.T) {
	// With σ ≫ t_c the delay approaches L·t_c: contention vanishes.
	b, err := Estimate(Params{P: 4096, Degree: 4, Sigma: 1000 * tc})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Delay-6*tc) > 0.5*tc {
		t.Errorf("large-σ delay %v, want ≈ %v", b.Delay, 6*tc)
	}
	if b.CriticalSubset != -1 {
		t.Errorf("critical subset %d, want last processor (-1)", b.CriticalSubset)
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, err := EstimateDelay(Params{P: 56, Degree: 4}); err == nil {
		t.Error("non-full tree should error")
	}
	if _, err := EstimateDelay(Params{P: 64, Degree: 1}); err == nil {
		t.Error("degree 1 should error")
	}
	if _, err := EstimateDelay(Params{P: 64, Degree: 4, Sigma: -1}); err == nil {
		t.Error("negative σ should error")
	}
	if _, err := EstimateDelay(Params{P: 64, Degree: 4, Tc: -1}); err == nil {
		t.Error("negative t_c should error")
	}
}

func TestBreakdownOrdering(t *testing.T) {
	// Subset arrival times must be increasing in closeness to the last
	// processor: S_{L−1} earliest, S_0 latest (assumption 2 of §3).
	b, err := Estimate(Params{P: 4096, Degree: 4, Sigma: 10 * tc})
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l+1 < b.Levels; l++ {
		if b.SubsetArrival[l] <= b.SubsetArrival[l+1] {
			t.Errorf("subset %d arrives at %v, not after subset %d at %v",
				l, b.SubsetArrival[l], l+1, b.SubsetArrival[l+1])
		}
	}
	if b.LastArrival <= b.SubsetArrival[0] {
		t.Error("last processor does not arrive last")
	}
	if b.Delay < float64(b.Levels)*tc*(1-1e-9) {
		t.Errorf("delay %v below the update floor %v", b.Delay, float64(b.Levels)*tc)
	}
}

// The paper's headline accuracy claim: across the Fig. 3/4 grid, the
// simulated delay of the model-estimated degree is within a modest factor
// of the simulated optimum (paper: within 7% on average).
func TestEstimatedDegreeNearSimulatedOptimum(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := barriersim.Config{}
	type cell struct {
		p     int
		sigma float64
	}
	var cells []cell
	for _, p := range []int{64, 256} {
		for _, s := range []float64{0, 6.2 * tc, 12.5 * tc, 25 * tc} {
			cells = append(cells, cell{p, s})
		}
	}
	sumRatio, n := 0.0, 0
	for _, c := range cells {
		sweep := barriersim.DegreeSweep(c.p, topology.NewClassic, cfg, stats.Normal{Sigma: c.sigma}, 40, 11)
		opt := barriersim.Best(sweep)
		est := EstimateOptimalDegree(c.p, c.sigma, tc)
		estDelay, ok := barriersim.DelayOf(sweep, est.Degree)
		if !ok {
			// The estimated degree is always a power of two for these p.
			t.Fatalf("estimated degree %d not in sweep", est.Degree)
		}
		ratio := estDelay / opt.MeanSync
		if ratio < 1-1e-9 {
			t.Errorf("p=%d σ=%v: estimated degree beat the 'optimum'?! ratio %v", c.p, c.sigma, ratio)
		}
		// Individual cells may miss by up to ~2× (the paper's own Fig. 4
		// has such cells, shown in bold there); the average must stay
		// close to the paper's 7%.
		if ratio > 2.0 {
			t.Errorf("p=%d σ=%v: estimated degree %d is %.2fx worse than optimal %d",
				c.p, c.sigma, est.Degree, ratio, opt.Degree)
		}
		sumRatio += ratio
		n++
	}
	if avg := sumRatio / float64(n); avg > 1.25 {
		t.Errorf("average estimated/optimal delay ratio %.3f, want ≤ 1.25 (paper: 1.07)", avg)
	}
}

func TestOptimalDegreeSimultaneous(t *testing.T) {
	if OptimalDegreeSimultaneous() != math.E {
		t.Fatal("continuous optimum should be e")
	}
}

func TestEstimateSweepCoversAllFullDegrees(t *testing.T) {
	sweep := EstimateSweep(256, 5*tc, tc)
	want := FullTreeDegrees(256)
	if len(sweep) != len(want) {
		t.Fatalf("sweep has %d entries, want %d", len(sweep), len(want))
	}
	for i, e := range sweep {
		if e.Degree != want[i] {
			t.Fatalf("sweep degrees mismatch: %v", sweep)
		}
		if e.Delay <= 0 {
			t.Errorf("degree %d: non-positive delay %v", e.Degree, e.Delay)
		}
	}
}

// TestEstimateOptimalDegreeMatchesSweep pins the scalar scan to the
// reference path: for every (p, σ) the allocation-free degree scan must
// select exactly what a full EstimateSweep minimization would.
func TestEstimateOptimalDegreeMatchesSweep(t *testing.T) {
	sweepBest := func(p int, sigma, tc float64) DegreeEstimate {
		sweep := EstimateSweep(p, sigma, tc)
		best := sweep[0]
		for _, e := range sweep[1:] {
			switch {
			case e.Delay < best.Delay*(1-1e-12):
				best = e
			case e.Delay < best.Delay*(1+1e-12) && e.Degree > best.Degree:
				best = e
			}
		}
		return best
	}
	for _, p := range []int{2, 4, 16, 64, 256, 1024, 4096} {
		for _, sigma := range []float64{0, 1e-5, 1e-4, 1e-3, 1e-2} {
			want := sweepBest(p, sigma, DefaultTc)
			got := EstimateOptimalDegree(p, sigma, DefaultTc)
			if got != want {
				t.Errorf("EstimateOptimalDegree(%d, %g) = %+v, want sweep's %+v", p, sigma, got, want)
			}
		}
	}
}

// TestEstimateOptimalDegreeZeroAlloc gates the scalar path: per-episode
// re-planning calls this on the release path, so it must not allocate.
func TestEstimateOptimalDegreeZeroAlloc(t *testing.T) {
	avg := testing.AllocsPerRun(100, func() {
		EstimateOptimalDegree(1024, 3e-4, DefaultTc)
	})
	if avg != 0 {
		t.Fatalf("EstimateOptimalDegree allocated %.2f times/op, want 0", avg)
	}
}

func TestEstimateOptimalDegreeDefaultsTc(t *testing.T) {
	if got, want := EstimateOptimalDegree(64, 1e-4, 0), EstimateOptimalDegree(64, 1e-4, DefaultTc); got != want {
		t.Fatalf("tc=0 gave %+v, want the DefaultTc result %+v", got, want)
	}
}
