// Package model implements the paper's analytic approximation of the
// synchronization delay of a software combining tree under load imbalance
// (§3, Eq. 1–8, Algorithm 1) and the optimal-degree estimation built on it
// (§4).
//
// The model assumes a full tree (p = d^L) of degree d whose processors'
// arrival times are normally distributed with standard deviation σ. The
// processors are partitioned into subsets S_0 … S_{L−1} along the last
// processor's path to the root: S_l holds the d−1 depth-l subtrees hanging
// off the path counter at level l, so |S_l| = (d−1)·d^l. All processors of
// a subset are assumed to arrive simultaneously, and subsets farther from
// the last processor arrive earlier.
//
// Each subset's arrival time comes from the inverse normal distribution at
// the expected fraction of processors arriving before it (Eq. 2–4); the
// last processor's arrival uses the order-statistics asymptote (Eq. 5).
// A subset's release time adds the contention-tree delay of Eq. 1 and the
// propagation to the root (Eq. 6); the synchronization delay is the max
// over release times minus the last arrival (Eq. 8).
//
// One reading choice: the paper's Eq. 1 delay c(L) = L·d·t_c is applied
// here to the (l+1)-level subtree formed by subset S_l together with the
// path counter collecting it, so the σ = 0 case reduces exactly to the
// known simultaneous-arrival delay L·d·t_c and the estimated optimal
// degree at σ = 0 is 4, as the paper's Fig. 4 reports.
package model

import (
	"fmt"
	"math"
	"sort"

	"softbarrier/internal/stats"
)

// Params specifies one analytic-model evaluation.
type Params struct {
	// P is the number of processors; must be d^L for some L ≥ 1.
	P int
	// Degree is the combining-tree degree d ≥ 2.
	Degree int
	// Sigma is the standard deviation of processor arrival times.
	Sigma float64
	// Tc is the counter update time; 0 selects 20µs (the paper's value).
	Tc float64
}

// DefaultTc mirrors the simulator's counter update time (20µs in seconds).
const DefaultTc = 20e-6

// FullLevels returns L such that d^L == p, or false when p is not a power
// of d (the model requires full trees).
func FullLevels(p, d int) (int, bool) {
	if p < 1 || d < 2 {
		return 0, false
	}
	l, v := 0, 1
	for v < p {
		v *= d
		l++
	}
	return l, v == p
}

// FullTreeDegrees returns every degree d ≥ 2 with d^L = p for some L ≥ 1,
// in increasing order. For p = 4096 this is {2, 4, 8, 16, 64, 4096} — note
// the absence of 32, which is why the paper's Fig. 2 has no approximation
// bar for degree 32.
func FullTreeDegrees(p int) []int {
	var ds []int
	for d := 2; d <= p; d++ {
		if _, ok := FullLevels(p, d); ok {
			ds = append(ds, d)
		}
	}
	sort.Ints(ds)
	return ds
}

// SubsetSize returns |S_l| = (d−1)·d^l (Eq. 2 context).
func SubsetSize(d, l int) int {
	return (d - 1) * pow(d, l)
}

// PBefore returns the expected fraction of processors arriving before the
// processors of subset S_l in an L-level tree of degree d:
// 1 − d^(l+1−L) (Eq. 2). For the earliest subset (l = L−1) this is 0, and
// Algorithm 1 substitutes PBefore(S_{L−2})/2; that substitution is the
// caller's (EstimateDelay's) job.
func PBefore(d, l, levels int) float64 {
	return 1 - math.Pow(float64(d), float64(l+1-levels))
}

// Contention returns Eq. 1's synchronization delay of a full tree with the
// given number of levels under simultaneous arrival: levels·d·t_c.
func Contention(d, levels int, tc float64) float64 {
	return float64(levels) * float64(d) * tc
}

// LastArrival returns Eq. 5's asymptotic expected arrival time of the last
// of p processors, σ·E[max of p standard normals].
func LastArrival(p int, sigma float64) float64 {
	return sigma * stats.ExpectedMaxNormalAsymptotic(p)
}

// Breakdown exposes the intermediate quantities of Algorithm 1 for
// inspection and testing.
type Breakdown struct {
	Levels         int
	SubsetArrival  []float64 // T_arr(S_l), l = 0..L−1
	SubsetRelease  []float64 // T_rel(S_l)
	LastArrival    float64   // T_arr(last), Eq. 5
	LastRelease    float64   // T_rel(last), Eq. 7
	Delay          float64   // T_sync, Eq. 8
	CriticalSubset int       // l of the release-time maximum, −1 if the last processor dominates
}

// EstimateDelay runs Algorithm 1 and returns the approximate
// synchronization delay for the given parameters. It fails if p is not a
// full power of the degree.
func EstimateDelay(pr Params) (float64, error) {
	b, err := Estimate(pr)
	if err != nil {
		return 0, err
	}
	return b.Delay, nil
}

// Estimate runs Algorithm 1 and returns the full breakdown.
func Estimate(pr Params) (Breakdown, error) {
	if pr.Tc == 0 {
		pr.Tc = DefaultTc
	}
	if pr.Tc < 0 || pr.Sigma < 0 {
		return Breakdown{}, fmt.Errorf("model: negative σ or t_c")
	}
	if pr.Degree < 2 {
		return Breakdown{}, fmt.Errorf("model: degree %d < 2", pr.Degree)
	}
	levels, ok := FullLevels(pr.P, pr.Degree)
	if !ok {
		return Breakdown{}, fmt.Errorf("model: %d processors is not a full tree of degree %d", pr.P, pr.Degree)
	}
	b := Breakdown{
		Levels:         levels,
		SubsetArrival:  make([]float64, levels),
		SubsetRelease:  make([]float64, levels),
		CriticalSubset: -1,
	}

	// Step 1: subset arrival and release times (Eq. 2, 4, 1, 6).
	for l := 0; l < levels; l++ {
		pb := PBefore(pr.Degree, l, levels)
		if l == levels-1 {
			// Φ⁻¹(0) = −∞. Algorithm 1 replaces the earliest subset's
			// fraction by the middle of its quantile range: the subset
			// spans [0, PBefore(S_{L−2})], so the paper halves
			// PBefore(S_{L−2}). For the flat single-level tree the lone
			// subset spans [0, 1−1/p], giving (1−1/p)/2 by the same rule.
			if levels >= 2 {
				pb = PBefore(pr.Degree, levels-2, levels) / 2
			} else {
				pb = (1 - 1/float64(pr.P)) / 2
			}
		}
		if pr.Sigma == 0 {
			b.SubsetArrival[l] = 0
		} else {
			b.SubsetArrival[l] = pr.Sigma * stats.NormalQuantile(pb)
		}
		// Subset S_l plus the climber from below form a full (l+1)-level
		// subtree rooted at the path counter of level l (Eq. 1), after
		// which the finisher updates the path counters at levels
		// l+1 … L−1 (Eq. 6).
		b.SubsetRelease[l] = b.SubsetArrival[l] +
			Contention(pr.Degree, l+1, pr.Tc) +
			float64(levels-1-l)*pr.Tc
	}

	// Step 2: the last processor (Eq. 5, 7).
	b.LastArrival = LastArrival(pr.P, pr.Sigma)
	b.LastRelease = b.LastArrival + float64(levels)*pr.Tc

	// Step 3: Eq. 8.
	release := b.LastRelease
	for l, r := range b.SubsetRelease {
		if r > release {
			release = r
			b.CriticalSubset = l
		}
	}
	b.Delay = release - b.LastArrival
	return b, nil
}

// DegreeEstimate is one entry of an analytic degree sweep.
type DegreeEstimate struct {
	Degree int
	Levels int
	Delay  float64
}

// EstimateSweep evaluates the model for every full-tree degree of p and
// returns the estimates in increasing degree order.
func EstimateSweep(p int, sigma, tc float64) []DegreeEstimate {
	var out []DegreeEstimate
	for _, d := range FullTreeDegrees(p) {
		b, err := Estimate(Params{P: p, Degree: d, Sigma: sigma, Tc: tc})
		if err != nil {
			// Unreachable: FullTreeDegrees only yields valid degrees.
			panic(err)
		}
		out = append(out, DegreeEstimate{Degree: d, Levels: b.Levels, Delay: b.Delay})
	}
	return out
}

// EstimateByDegree returns the model's estimated delay keyed by degree:
// the join used wherever model estimates are attached to simulated degree
// rows (cmd/degreeopt's table, the FIG2 experiment). Degrees that are not
// full-tree degrees of p have no estimate and are simply absent.
func EstimateByDegree(p int, sigma, tc float64) map[int]float64 {
	sweep := EstimateSweep(p, sigma, tc)
	byDegree := make(map[int]float64, len(sweep))
	for _, e := range sweep {
		byDegree[e.Degree] = e.Delay
	}
	return byDegree
}

// delayScalar is Algorithm 1 as a pure scalar computation: the same math
// as Estimate, but with a running maximum instead of a Breakdown, so it
// performs no allocations. Hot re-plan paths (the per-episode controller
// evaluation) run the degree scan on it. levels must satisfy
// d^levels == p; tc must already be defaulted.
func delayScalar(p, d, levels int, sigma, tc float64) float64 {
	lastArrival := LastArrival(p, sigma)
	release := lastArrival + float64(levels)*tc // Eq. 7: the last processor's release
	for l := 0; l < levels; l++ {
		pb := PBefore(d, l, levels)
		if l == levels-1 {
			if levels >= 2 {
				pb = PBefore(d, levels-2, levels) / 2
			} else {
				pb = (1 - 1/float64(p)) / 2
			}
		}
		arr := 0.0
		if sigma != 0 {
			arr = sigma * stats.NormalQuantile(pb)
		}
		rel := arr + Contention(d, l+1, tc) + float64(levels-1-l)*tc
		if rel > release {
			release = rel
		}
	}
	return release - lastArrival
}

// EstimateOptimalDegree returns the analytic model's delay-minimizing
// degree for p processors at the given imbalance, with ties going to the
// larger degree (wider trees need fewer counters). This is the quantity a
// compiler would use to configure a barrier (§8). It scans the full-tree
// degrees on the scalar path and allocates nothing, so per-episode
// re-planning stays off the heap. It panics for p < 2 (no full-tree
// degree exists).
func EstimateOptimalDegree(p int, sigma, tc float64) DegreeEstimate {
	if tc == 0 {
		tc = DefaultTc
	}
	best := DegreeEstimate{Degree: -1}
	for d := 2; d <= p; d++ {
		levels, ok := FullLevels(p, d)
		if !ok {
			continue
		}
		delay := delayScalar(p, d, levels, sigma, tc)
		// Scanning in increasing degree order, a tie (within relative 1e-12)
		// is won by the later — larger — degree.
		if best.Degree < 0 || delay < best.Delay*(1+1e-12) {
			best = DegreeEstimate{Degree: d, Levels: levels, Delay: delay}
		}
	}
	if best.Degree < 0 {
		panic(fmt.Sprintf("model: no full-tree degree for p=%d", p))
	}
	return best
}

// OptimalDegreeSimultaneous returns the continuous minimizer of Eq. 1 under
// simultaneous arrival, d = e ≈ 2.718 (§3): minimizing L·d·t_c with
// L = ln p / ln d minimizes d / ln d.
func OptimalDegreeSimultaneous() float64 { return math.E }

func pow(b, e int) int {
	v := 1
	for i := 0; i < e; i++ {
		v *= b
	}
	return v
}
