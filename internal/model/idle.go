package model

import (
	"softbarrier/internal/stats"
)

// ExpectedIdle approximates the expected idle time per processor at a
// fuzzy barrier with the given slack, for one episode of p processors with
// N(0, σ²) arrival times and a perfect (zero-delay) barrier:
//
//	idle_i = max(0, R − s − e_i),  R = max_j e_j
//
// i.e. the wait the slack's independent work cannot hide. Fixing the
// release at its expectation R = σ·E[M_p] (computed exactly by numerical
// integration, not Eq. 5's asymptote) gives the closed form
//
//	E[(c − X)+] = c·Φ(c/σ) + σ·φ(c/σ),  c = σ·E[M_p] − s
//
// for X ~ N(0, σ²). This is the quantitative content of the authors'
// earlier fuzzy-barrier result [13] that motivates §5: once s exceeds a
// few σ the idle time collapses toward zero, roughly like 1/s in the
// transition region. Freezing the release at its mean biases the estimate
// a few percent low near s = 0 and ~10–25% low deep in the tail (Jensen:
// (·)+ is convex in the release); experiment EXT2 measures the same
// quantity by simulation, including the iterated-slack feedback this
// single-episode formula also ignores.
func ExpectedIdle(p int, sigma, slack float64) float64 {
	if p < 1 {
		panic("model: need at least one processor")
	}
	if sigma < 0 || slack < 0 {
		panic("model: negative σ or slack")
	}
	if sigma == 0 {
		// Simultaneous arrivals: idle only if the slack is "negative",
		// which it cannot be.
		return 0
	}
	c := sigma*stats.ExpectedMaxNormalExact(p) - slack
	z := c / sigma
	return c*stats.NormalCDF(z) + sigma*stats.NormalPDF(z)
}

// IdleBreakEvenSlack returns the slack at which the expected idle time
// drops to the given fraction (0 < fraction < 1) of its zero-slack value,
// found by bisection. It answers the practical question "how much slack
// must the program expose before fuzzy barriers pay off". It panics on an
// out-of-range fraction.
func IdleBreakEvenSlack(p int, sigma, fraction float64) float64 {
	if fraction <= 0 || fraction >= 1 {
		panic("model: fraction must be in (0, 1)")
	}
	if sigma == 0 {
		return 0
	}
	target := fraction * ExpectedIdle(p, sigma, 0)
	lo, hi := 0.0, sigma*(stats.ExpectedMaxNormalExact(p)+10)
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if ExpectedIdle(p, sigma, mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
