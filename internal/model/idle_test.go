package model

import (
	"math"
	"testing"

	"softbarrier/internal/stats"
)

func TestExpectedIdleZeroSlackMonteCarlo(t *testing.T) {
	// At slack 0 the approximation must track a direct Monte Carlo of
	// E[max_j e_j − e_i] within a few percent.
	r := stats.NewRNG(71)
	for _, p := range []int{64, 1024} {
		const trials = 3000
		sum := 0.0
		xs := make([]float64, p)
		for tr := 0; tr < trials; tr++ {
			m := math.Inf(-1)
			for i := range xs {
				xs[i] = r.NormFloat64()
				if xs[i] > m {
					m = xs[i]
				}
			}
			for _, x := range xs {
				sum += m - x
			}
		}
		mc := sum / float64(trials*p)
		approx := ExpectedIdle(p, 1, 0)
		if rel := math.Abs(approx-mc) / mc; rel > 0.05 {
			t.Errorf("p=%d: approx %v vs Monte Carlo %v (rel %v)", p, approx, mc, rel)
		}
	}
}

func TestExpectedIdleWithSlackMonteCarlo(t *testing.T) {
	r := stats.NewRNG(73)
	p := 256
	sigma := 1.0
	for _, slack := range []float64{1, 2, 3} {
		const trials = 4000
		sum := 0.0
		xs := make([]float64, p)
		for tr := 0; tr < trials; tr++ {
			m := math.Inf(-1)
			for i := range xs {
				xs[i] = sigma * r.NormFloat64()
				if xs[i] > m {
					m = xs[i]
				}
			}
			for _, x := range xs {
				if idle := m - slack - x; idle > 0 {
					sum += idle
				}
			}
		}
		mc := sum / float64(trials*p)
		approx := ExpectedIdle(p, sigma, slack)
		// Freezing the release at its mean biases the tail low (see the
		// doc comment); allow 25%.
		if rel := math.Abs(approx-mc) / math.Max(mc, 1e-6); rel > 0.25 {
			t.Errorf("slack=%v: approx %v vs Monte Carlo %v (rel %v)", slack, approx, mc, rel)
		}
	}
}

func TestExpectedIdleMonotoneDecreasingInSlack(t *testing.T) {
	prev := math.Inf(1)
	for s := 0.0; s <= 8; s += 0.25 {
		v := ExpectedIdle(1024, 1, s)
		if v > prev+1e-12 {
			t.Fatalf("idle rose at slack %v: %v > %v", s, v, prev)
		}
		prev = v
	}
	if prev > 1e-3 {
		t.Errorf("idle at slack 8σ = %v, want ≈0", prev)
	}
}

func TestExpectedIdleScalesWithSigma(t *testing.T) {
	// Dimensional analysis: idle(p, kσ, ks) = k·idle(p, σ, s).
	a := ExpectedIdle(512, 2, 1)
	b := ExpectedIdle(512, 1, 0.5)
	if math.Abs(a-2*b) > 1e-12 {
		t.Errorf("scaling violated: %v vs 2×%v", a, b)
	}
}

func TestExpectedIdleEdgeCases(t *testing.T) {
	if ExpectedIdle(1024, 0, 0) != 0 {
		t.Error("σ=0 should give zero idle")
	}
	if got := ExpectedIdle(1, 1, 0); got < 0 {
		t.Errorf("single processor idle %v < 0", got)
	}
	for _, f := range []func(){
		func() { ExpectedIdle(0, 1, 0) },
		func() { ExpectedIdle(4, -1, 0) },
		func() { ExpectedIdle(4, 1, -1) },
		func() { IdleBreakEvenSlack(64, 1, 0) },
		func() { IdleBreakEvenSlack(64, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestIdleBreakEvenSlack(t *testing.T) {
	p, sigma := 1024, 1.0
	s := IdleBreakEvenSlack(p, sigma, 0.1)
	if s <= 0 {
		t.Fatalf("break-even slack %v", s)
	}
	got := ExpectedIdle(p, sigma, s)
	want := 0.1 * ExpectedIdle(p, sigma, 0)
	if math.Abs(got-want) > want*0.01 {
		t.Errorf("idle at break-even %v, want %v", got, want)
	}
	if IdleBreakEvenSlack(64, 0, 0.5) != 0 {
		t.Error("σ=0 break-even should be 0")
	}
}
