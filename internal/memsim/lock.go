package memsim

import (
	"fmt"
	"sort"

	"softbarrier/internal/eventsim"
)

// LockKind selects the lock protecting a simulated counter.
type LockKind int

// Lock kinds.
const (
	// QueueLock hands the line owner-to-owner in arrival order: each
	// update costs one transfer regardless of contention (the ideal lock
	// the paper's t_c assumes).
	QueueLock LockKind = iota
	// TASLock is test-and-set: waiters re-RMW the lock line every
	// spinGap, stealing line ownership from the holder and delaying both
	// the critical section and the release.
	TASLock
)

func (k LockKind) String() string {
	switch k {
	case QueueLock:
		return "queue"
	case TASLock:
		return "test-and-set"
	default:
		return fmt.Sprintf("LockKind(%d)", int(k))
	}
}

// Line numbers used by the counter episode.
const (
	lockLine    = 0
	counterLine = 1
)

// EpisodeResult reports a simulated lock-protected counter episode.
type EpisodeResult struct {
	// Done[i] is processor i's update completion time.
	Done []float64
	// Release is the completion of the last update.
	Release float64
	// Attempts counts lock-line transactions (retries included).
	Attempts uint64
}

// CounterEpisode simulates every processor performing one update of a
// lock-protected shared counter, arriving at the given times. spinGap is
// the re-try interval of TAS waiters (ignored for the queue lock; a
// non-positive value defaults to the hit latency). The system's lock and
// counter lines are marked as synchronization state.
func CounterEpisode(s *System, kind LockKind, arrivals []float64, spinGap float64) EpisodeResult {
	p := len(arrivals)
	if p == 0 {
		panic("memsim: no arrivals")
	}
	if p > s.P {
		panic("memsim: more arrivals than processors")
	}
	s.MarkSync(lockLine)
	s.MarkSync(counterLine)
	res := EpisodeResult{Done: make([]float64, p)}

	if kind == QueueLock {
		// FIFO hand-off: serve in arrival order; each holder RMWs the
		// lock line (grant) and the counter line.
		order := make([]int, p)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			if arrivals[order[a]] != arrivals[order[b]] {
				return arrivals[order[a]] < arrivals[order[b]]
			}
			return order[a] < order[b]
		})
		for _, proc := range order {
			grant := s.Access(proc, lockLine, true, arrivals[proc])
			done := s.Access(proc, counterLine, true, grant)
			res.Done[proc] = done
			res.Attempts++
			if done > res.Release {
				res.Release = done
			}
		}
		return res
	}

	// TAS: event-driven spin simulation.
	if spinGap <= 0 {
		spinGap = s.Lat.Hit
	}
	var sim eventsim.Simulator
	locked := false
	remaining := p
	var attempt func(proc int)
	attempt = func(proc int) {
		end := s.Access(proc, lockLine, true, sim.Now())
		res.Attempts++
		sim.ScheduleAt(end, func() {
			if locked {
				sim.Schedule(spinGap, func() { attempt(proc) })
				return
			}
			locked = true
			update := s.Access(proc, counterLine, true, sim.Now())
			sim.ScheduleAt(update, func() {
				rel := s.Access(proc, lockLine, true, sim.Now())
				sim.ScheduleAt(rel, func() {
					locked = false
					res.Done[proc] = sim.Now()
					if sim.Now() > res.Release {
						res.Release = sim.Now()
					}
					remaining--
				})
			})
		})
	}
	// Normalize arrivals to a non-negative base.
	shift := arrivals[0]
	for _, a := range arrivals {
		if a < shift {
			shift = a
		}
	}
	for i, a := range arrivals {
		proc := i
		sim.ScheduleAt(a-shift, func() { attempt(proc) })
	}
	sim.Run()
	if remaining != 0 {
		panic("memsim: TAS episode did not complete")
	}
	for i := range res.Done {
		res.Done[i] += shift
	}
	res.Release += shift
	return res
}

// EffectiveUpdateTime returns the mean per-update service time of a
// counter protected by the given lock when contenders processors arrive
// simultaneously: (release − arrival)/contenders. It is the mechanistic
// counterpart of the paper's t_c (queue lock) and of barriersim's
// degradation knob (TAS).
func EffectiveUpdateTime(kind LockKind, contenders int, lat Latencies, spinGap float64) float64 {
	s := New(contenders, lat)
	res := CounterEpisode(s, kind, make([]float64, contenders), spinGap)
	return res.Release / float64(contenders)
}
