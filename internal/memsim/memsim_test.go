package memsim

import (
	"math"
	"testing"
)

func lat() Latencies { return DefaultLatencies() }

func TestReadAfterWriteIsHit(t *testing.T) {
	s := New(4, lat())
	end := s.Access(0, 7, true, 0)
	end2 := s.Access(0, 7, false, end)
	if math.Abs((end2-end)-lat().Hit) > 1e-15 {
		t.Errorf("read after own write cost %v, want hit %v", end2-end, lat().Hit)
	}
	if s.DataStats.Hits != 1 {
		t.Errorf("hits = %d", s.DataStats.Hits)
	}
}

func TestDirtyMissTransfers(t *testing.T) {
	s := New(4, lat())
	end := s.Access(0, 7, true, 0) // proc 0 owns the line dirty
	end2 := s.Access(1, 7, false, end)
	if got := end2 - end; got != lat().Transfer {
		t.Errorf("dirty read miss cost %v, want transfer %v", got, lat().Transfer)
	}
	if s.DataStats.Transfers != 1 {
		t.Errorf("transfers = %d", s.DataStats.Transfers)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	s := New(8, lat())
	now := 0.0
	// Three readers share the line.
	for proc := 0; proc < 3; proc++ {
		now = s.Access(proc, 7, false, now)
	}
	before := s.DataStats.Invalidations
	// Proc 3 writes: all three sharers invalidated (3 is not a sharer).
	now2 := s.Access(3, 7, true, now)
	if got := s.DataStats.Invalidations - before; got != 3 {
		t.Errorf("invalidations = %d, want 3", got)
	}
	want := lat().Memory + 3*lat().Invalidate
	if got := now2 - now; math.Abs(got-want) > 1e-12 {
		t.Errorf("write cost %v, want %v", got, want)
	}
}

func TestUpgradeFromSharedSkipsFetch(t *testing.T) {
	s := New(4, lat())
	now := s.Access(0, 7, false, 0)
	now = s.Access(1, 7, false, now)
	// Proc 0 upgrades: one invalidation, no data fetch.
	end := s.Access(0, 7, true, now)
	if got := end - now; math.Abs(got-lat().Invalidate) > 1e-12 {
		t.Errorf("upgrade cost %v, want %v", got, lat().Invalidate)
	}
	// Sole sharer upgrading pays only a hit.
	s2 := New(4, lat())
	n := s2.Access(0, 9, false, 0)
	end2 := s2.Access(0, 9, true, n)
	if got := end2 - n; math.Abs(got-lat().Hit) > 1e-15 {
		t.Errorf("sole-sharer upgrade cost %v, want hit", got)
	}
}

func TestSyncVsDataAccounting(t *testing.T) {
	s := New(4, lat())
	s.MarkSync(1)
	s.Access(0, 1, true, 0)
	s.Access(0, 2, true, 0)
	if s.SyncStats.Misses != 1 || s.DataStats.Misses != 1 {
		t.Errorf("stats not split: sync %+v data %+v", s.SyncStats, s.DataStats)
	}
	s.Reset()
	if s.SyncStats.Misses != 0 || len(s.lines) != 0 {
		t.Error("Reset incomplete")
	}
}

func TestAccessPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, lat()) },
		func() { New(65, lat()) },
		func() { New(4, lat()).Access(4, 0, true, 0) },
		func() { CounterEpisode(New(4, lat()), QueueLock, nil, 0) },
		func() { CounterEpisode(New(2, lat()), QueueLock, make([]float64, 3), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestQueueLockEffectiveTimeFlat(t *testing.T) {
	// The queue lock's per-update time must be flat in the contender
	// count once the first-miss cost is amortized — the paper's
	// constant-t_c assumption. (Lock and counter transfers pipeline
	// across the two lines, so the steady-state spacing is one transfer.)
	base := EffectiveUpdateTime(QueueLock, 8, lat(), 0)
	for _, k := range []int{16, 32, 56} {
		v := EffectiveUpdateTime(QueueLock, k, lat(), 0)
		if math.Abs(v-base)/base > 0.1 {
			t.Errorf("queue per-update time at k=%d is %v, base %v (not flat)", k, v, base)
		}
	}
	// Same order of magnitude as the paper's measured t_c = 20µs.
	if base < 5e-6 || base > 40e-6 {
		t.Errorf("queue per-update time %v, expected ≈10–20µs", base)
	}
}

func TestTASLockDegradesWithContention(t *testing.T) {
	spin := lat().Hit
	few := EffectiveUpdateTime(TASLock, 2, lat(), spin)
	many := EffectiveUpdateTime(TASLock, 16, lat(), spin)
	if many <= few*1.3 {
		t.Errorf("TAS per-update time did not degrade: k=2 %v vs k=16 %v", few, many)
	}
	// And TAS is never better than the queue lock at high contention.
	queue := EffectiveUpdateTime(QueueLock, 16, lat(), 0)
	if many <= queue {
		t.Errorf("TAS (%v) beat the queue lock (%v) at k=16", many, queue)
	}
}

func TestCounterEpisodeCompletesAllProcs(t *testing.T) {
	for _, kind := range []LockKind{QueueLock, TASLock} {
		s := New(8, lat())
		arr := make([]float64, 8)
		for i := range arr {
			arr[i] = float64(i) * 1e-6
		}
		res := CounterEpisode(s, kind, arr, 0)
		if res.Release <= 0 {
			t.Errorf("%v: release %v", kind, res.Release)
		}
		for i, d := range res.Done {
			if d <= arr[i] {
				t.Errorf("%v: proc %d done at %v before arrival %v", kind, i, d, arr[i])
			}
			if d > res.Release {
				t.Errorf("%v: proc %d done after release", kind, i)
			}
		}
		if kind == TASLock && res.Attempts <= 8 {
			t.Errorf("TAS attempts %d, expected retries beyond one per proc", res.Attempts)
		}
		if kind == QueueLock && res.Attempts != 8 {
			t.Errorf("queue attempts %d, want exactly 8", res.Attempts)
		}
	}
}

func TestLockKindString(t *testing.T) {
	if QueueLock.String() != "queue" || TASLock.String() != "test-and-set" {
		t.Fatal("lock kind strings wrong")
	}
	if LockKind(9).String() == "" {
		t.Fatal("unknown kind should print")
	}
}

// Agarwal & Cherian (§2): in a barrier-heavy loop, synchronization
// references can account for more than half of all invalidations. Model a
// BSP loop: each processor writes its own data line and reads one
// neighbor's, then the barrier counter episode runs.
func TestSyncInvalidationShare(t *testing.T) {
	const p = 16
	s := New(p, lat())
	now := 0.0
	arrivals := make([]float64, p)
	for iter := 0; iter < 20; iter++ {
		// Lockstep phases keep per-line requests in global time order.
		writeEnd := now
		for proc := 0; proc < p; proc++ {
			if end := s.Access(proc, 100+proc, true, now); end > writeEnd {
				writeEnd = end
			}
		}
		for proc := 0; proc < p; proc++ {
			arrivals[proc] = s.Access(proc, 100+(proc+1)%p, false, writeEnd)
		}
		res := CounterEpisode(s, QueueLock, arrivals, 0)
		now = res.Release
	}
	sync := s.SyncStats.Invalidations
	data := s.DataStats.Invalidations
	if sync <= data {
		t.Errorf("sync invalidations %d not dominant over data %d", sync, data)
	}
}
