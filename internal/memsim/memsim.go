// Package memsim models a directory-based MSI cache-coherence protocol at
// the granularity the barrier study depends on: cache lines holding locks
// and counters, with invalidations and remote transfers priced in time.
//
// It grounds two abstractions the higher layers take as given:
//
//   - the constant counter-update time t_c: under a queue lock, each
//     update is one owner-to-owner line transfer, so the per-update
//     service time is flat in the number of contenders (EXT7 measures
//     this), matching the paper's constant-t_c simulator;
//   - the lock-degradation knob of barriersim (EXT5): under a
//     test-and-set lock, spinning waiters keep re-acquiring the line, so
//     the effective update time grows with the queue — the mechanistic
//     origin of the degradation factor;
//
// and it reproduces Agarwal & Cherian's observation (§2) that
// synchronization references can dominate invalidation traffic.
package memsim

import (
	"fmt"
	"math/bits"

	"softbarrier/internal/eventsim"
)

// MaxProcs bounds the processor count (sharer sets are one word).
const MaxProcs = 64

// lineState is a cache line's global coherence state.
type lineState uint8

const (
	invalid lineState = iota
	shared
	modified
)

// Line is one cache line tracked by the directory.
type Line struct {
	state   lineState
	owner   int    // valid when state == modified
	sharers uint64 // bitset of caches holding the line (state == shared)
	res     eventsim.Resource
}

// Stats aggregates coherence traffic.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64 // individual sharer invalidations sent
	Transfers     uint64 // cache-to-cache transfers
}

// Latencies prices the protocol actions, in seconds. The defaults are the
// KSR1-flavoured figures of internal/ksr.
type Latencies struct {
	// Hit is a local cache hit.
	Hit float64
	// Memory is a fetch served by the home directory from memory.
	Memory float64
	// Transfer is a cache-to-cache transfer (dirty miss).
	Transfer float64
	// Invalidate is the cost of invalidating one sharer.
	Invalidate float64
}

// DefaultLatencies returns latencies matching the ksr machine model's
// order of magnitude.
func DefaultLatencies() Latencies {
	return Latencies{Hit: 1e-6, Memory: 8.75e-6, Transfer: 8.75e-6, Invalidate: 2e-6}
}

// System is a set of caches and directory-tracked lines.
type System struct {
	P   int
	Lat Latencies

	lines map[int]*Line
	// Stats per line class: callers tag lines as synchronization or data.
	SyncStats Stats
	DataStats Stats
	syncLines map[int]bool
}

// New creates a system of p caches. It panics for p outside [1, MaxProcs].
func New(p int, lat Latencies) *System {
	if p < 1 || p > MaxProcs {
		panic(fmt.Sprintf("memsim: %d processors outside [1, %d]", p, MaxProcs))
	}
	return &System{P: p, Lat: lat, lines: make(map[int]*Line), syncLines: make(map[int]bool)}
}

// MarkSync tags a line as synchronization state (lock or counter), for the
// invalidation-share accounting.
func (s *System) MarkSync(line int) { s.syncLines[line] = true }

func (s *System) line(id int) *Line {
	l, ok := s.lines[id]
	if !ok {
		l = &Line{state: invalid, owner: -1}
		l.res.Name = fmt.Sprintf("line%d", id)
		s.lines[id] = l
	}
	return l
}

func (s *System) statsFor(line int) *Stats {
	if s.syncLines[line] {
		return &s.SyncStats
	}
	return &s.DataStats
}

// Access performs a read (write=false) or read-modify-write (write=true)
// of the line by processor proc, requested at time now, and returns the
// completion time. Directory transactions on a line serialize in request
// order; requests must therefore be issued in non-decreasing time order
// per line (as when driven from a discrete-event loop).
func (s *System) Access(proc, line int, write bool, now float64) float64 {
	if proc < 0 || proc >= s.P {
		panic("memsim: processor out of range")
	}
	l := s.line(line)
	st := s.statsFor(line)
	bit := uint64(1) << uint(proc)

	var cost float64
	switch {
	case !write && l.state == shared && l.sharers&bit != 0,
		l.state == modified && l.owner == proc:
		// Local hit; no directory involvement, but keep the line's clock
		// consistent by serializing through it at zero extra cost.
		cost = s.Lat.Hit
		st.Hits++
	case !write:
		st.Misses++
		if l.state == modified {
			cost = s.Lat.Transfer // fetch from the dirty owner
			st.Transfers++
			l.sharers = (uint64(1) << uint(l.owner)) | bit
		} else {
			cost = s.Lat.Memory
			l.sharers |= bit
		}
		l.state = shared
		l.owner = -1
	default: // write without ownership
		st.Misses++
		switch l.state {
		case modified:
			cost = s.Lat.Transfer + s.Lat.Invalidate
			st.Transfers++
			st.Invalidations++
		case shared:
			others := bits.OnesCount64(l.sharers &^ bit)
			cost = s.Lat.Memory + float64(others)*s.Lat.Invalidate
			if l.sharers&bit != 0 {
				// Upgrade from shared: no data fetch needed.
				cost = float64(others) * s.Lat.Invalidate
				if others == 0 {
					cost = s.Lat.Hit
				}
			}
			st.Invalidations += uint64(others)
		default:
			cost = s.Lat.Memory
		}
		l.state = modified
		l.owner = proc
		l.sharers = 0
	}
	_, end := l.res.Use(now, cost)
	return end
}

// Reset clears all line states and statistics.
func (s *System) Reset() {
	s.lines = make(map[int]*Line)
	s.SyncStats = Stats{}
	s.DataStats = Stats{}
}
