// Package sweep is a declarative parameter-grid engine for the simulation
// side of the study. A sweep is a list of points (one per cell of a
// parameter grid, e.g. p × degree × σ × tree kind × episodes); the engine
// fans the points out across a bounded worker pool and collects the
// results in spec order.
//
// Determinism is the hard requirement: every point draws its randomness
// from a seed derived solely from (base seed, point index) by a
// splitmix64-style hash (PointSeed), and results land in a pre-sized slice
// at their own index. A parallel run is therefore bit-identical to the
// sequential run regardless of worker count or goroutine scheduling.
//
// An optional on-disk Cache short-circuits points whose full configuration
// (spec name, point key, derived seed, code-version salt) was already
// simulated, and an optional progress callback reports points done / total
// with an ETA for long sweeps.
package sweep

import (
	"runtime"
	"sync"
	"time"
)

// Spec declares one sweep: a named family of points in presentation order.
type Spec struct {
	// Name identifies the sweep family; it salts cache keys so that
	// distinct sweeps with coincidentally equal point keys never collide.
	Name string
	// Keys holds one stable identity string per point, in the order the
	// results are wanted. A key must encode every parameter that affects
	// the point's result except the seed (which the engine derives): two
	// points with equal keys and equal base seed are assumed
	// interchangeable by the cache.
	Keys []string
	// BaseSeed is the sweep's base PRNG seed; each point receives
	// PointSeed(BaseSeed, index).
	BaseSeed uint64
}

// PointFunc simulates point i using the derived per-point seed. A point
// function may deliberately ignore the derived seed in favour of the
// spec's base seed when paired comparisons across points (common random
// numbers) are wanted; the cache key incorporates the derived seed either
// way, which subsumes (base seed, index).
type PointFunc[R any] func(i int, seed uint64) R

// Progress is a snapshot of a running sweep, delivered to the engine's
// Report callback after every completed point.
type Progress struct {
	// Done and Total count completed and declared points.
	Done, Total int
	// CacheHits counts the completed points served from the cache.
	CacheHits int
	// Elapsed is the time since the sweep started.
	Elapsed time.Duration
	// Remaining estimates the time to completion by extrapolating the
	// mean per-point time over the points still outstanding; it is zero
	// until at least one point has been computed.
	Remaining time.Duration
}

// Engine executes sweeps. The zero value runs points on all CPUs with no
// cache and no progress reporting; a nil *Engine runs points sequentially
// (the safe default for sweeps nested inside an already-parallel outer
// sweep).
type Engine struct {
	// Workers bounds the number of concurrently simulated points.
	// Values <= 0 select runtime.GOMAXPROCS(0).
	Workers int
	// Cache, when non-nil, is consulted before and written after every
	// point. Cache failures are treated as misses, never as errors.
	Cache *Cache
	// Report, when non-nil, receives a Progress snapshot after every
	// completed point. It is called with the engine's internal lock held,
	// so it must not call back into the engine.
	Report func(Progress)
}

// PointSeed derives the PRNG seed of point index from the sweep's base
// seed with a splitmix64 finalizer, so that neighbouring indices (and
// neighbouring base seeds) yield decorrelated streams.
func PointSeed(base uint64, index int) uint64 {
	z := base + 0x9e3779b97f4a7c15*(uint64(index)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Run executes fn over every point of the spec on engine e and returns the
// results in spec order. The result slice is identical for every worker
// count (see the package comment). A panic in any point function is
// re-raised on the calling goroutine after the remaining workers drain.
func Run[R any](e *Engine, s Spec, fn PointFunc[R]) []R {
	workers := 1
	var cache *Cache
	var report func(Progress)
	if e != nil {
		workers = e.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		cache = e.Cache
		report = e.Report
	}
	n := len(s.Keys)
	results := make([]R, n)
	if n == 0 {
		return results
	}
	if workers > n {
		workers = n
	}

	start := time.Now()
	var (
		mu       sync.Mutex
		done     int
		hits     int
		panicked any
	)
	finish := func(cached bool) {
		mu.Lock()
		defer mu.Unlock()
		done++
		if cached {
			hits++
		}
		if report == nil {
			return
		}
		p := Progress{Done: done, Total: n, CacheHits: hits, Elapsed: time.Since(start)}
		// Extrapolate only once at least one point was actually computed
		// (cache hits return in microseconds and would produce a nonsense
		// mean), and guard done > 0 explicitly so no refactor of the
		// accounting above can ever reintroduce a divide-by-zero Inf/NaN
		// Remaining on the first tick.
		if computed := done - hits; computed > 0 && done > 0 && done < n {
			p.Remaining = time.Duration(float64(p.Elapsed) / float64(done) * float64(n-done))
		}
		report(p)
	}
	runPoint := func(i int) {
		seed := PointSeed(s.BaseSeed, i)
		var key string
		if cache != nil {
			key = cache.Key(s.Name, s.Keys[i], seed)
			if cache.Get(key, &results[i]) {
				finish(true)
				return
			}
		}
		results[i] = fn(i, seed)
		if cache != nil {
			cache.Put(key, s.Name, s.Keys[i], results[i])
		}
		finish(false)
	}

	if workers == 1 {
		for i := 0; i < n; i++ {
			runPoint(i)
		}
		return results
	}

	idx := make(chan int, n)
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = r
					}
					mu.Unlock()
					// Drain so sibling workers exit promptly.
					for range idx {
					}
				}
			}()
			for i := range idx {
				runPoint(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return results
}
