package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"softbarrier/internal/stats"
)

// pointResult exercises JSON round-tripping through the cache.
type pointResult struct {
	Index int
	Mean  float64
	Draws []float64
}

// simulate is a miniature stochastic "simulation": a few PRNG draws whose
// values depend only on the seed, plus deliberate scheduling churn so
// parallel runs interleave differently every time.
func simulate(i int, seed uint64) pointResult {
	r := stats.NewRNG(seed)
	res := pointResult{Index: i}
	for k := 0; k < 8; k++ {
		v := r.Float64()
		res.Draws = append(res.Draws, v)
		res.Mean += v / 8
		runtime.Gosched()
	}
	return res
}

func testSpec(n int) Spec {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("point=%d episodes=8", i)
	}
	return Spec{Name: "sweep-test", Keys: keys, BaseSeed: 42}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestPointSeed(t *testing.T) {
	seen := map[uint64]bool{}
	for _, base := range []uint64{0, 1, 1995} {
		for i := 0; i < 100; i++ {
			s := PointSeed(base, i)
			if seen[s] {
				t.Fatalf("PointSeed(%d, %d) = %#x collides", base, i, s)
			}
			seen[s] = true
			if s != PointSeed(base, i) {
				t.Fatalf("PointSeed(%d, %d) not stable", base, i)
			}
		}
	}
}

// TestDeterminismAcrossWorkers is the ISSUE's hard requirement: identical
// byte-level results for workers = 1, 4 and GOMAXPROCS.
func TestDeterminismAcrossWorkers(t *testing.T) {
	spec := testSpec(37)
	want := mustJSON(t, Run[pointResult](nil, spec, simulate))
	cases := []struct {
		name    string
		workers int
	}{
		{"sequential-engine", 1},
		{"workers-4", 4},
		{"gomaxprocs", runtime.GOMAXPROCS(0)},
		{"oversubscribed", 2 * len(spec.Keys)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for rep := 0; rep < 3; rep++ {
				got := mustJSON(t, Run(&Engine{Workers: tc.workers}, spec, simulate))
				if got != want {
					t.Fatalf("workers=%d rep=%d: results differ from sequential run\n got %s\nwant %s",
						tc.workers, rep, got, want)
				}
			}
		})
	}
}

func TestNilEngineAndEmptySpec(t *testing.T) {
	if got := Run[int](nil, Spec{}, func(i int, _ uint64) int { return i }); len(got) != 0 {
		t.Fatalf("empty spec returned %v", got)
	}
	got := Run[int](nil, Spec{Name: "n", Keys: []string{"a", "b", "c"}}, func(i int, _ uint64) int { return i * i })
	if got[0] != 0 || got[1] != 1 || got[2] != 4 {
		t.Fatalf("nil engine results %v", got)
	}
}

func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(12)

	c1, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := mustJSON(t, Run(&Engine{Workers: 4, Cache: c1}, spec, simulate))
	if c1.Hits() != 0 || c1.Misses() != int64(len(spec.Keys)) {
		t.Fatalf("cold run: hits=%d misses=%d", c1.Hits(), c1.Misses())
	}

	// A fresh cache handle over the same directory must serve every point.
	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	second := mustJSON(t, Run(&Engine{Workers: 2, Cache: c2}, spec, func(i int, seed uint64) pointResult {
		calls++
		return simulate(i, seed)
	}))
	if calls != 0 {
		t.Fatalf("warm run recomputed %d points", calls)
	}
	if c2.Hits() != int64(len(spec.Keys)) {
		t.Fatalf("warm run: hits=%d", c2.Hits())
	}
	if second != first {
		t.Fatalf("cached results differ:\n got %s\nwant %s", second, first)
	}

	// A different base seed must not hit the old entries.
	reseeded := spec
	reseeded.BaseSeed = spec.BaseSeed + 1
	third := mustJSON(t, Run(&Engine{Cache: c2, Workers: 1}, reseeded, simulate))
	if third == first {
		t.Fatal("different base seed returned identical results")
	}
}

func TestCacheIgnoresCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(3)
	want := mustJSON(t, Run(&Engine{Workers: 1, Cache: c}, spec, simulate))

	// Truncate every entry; the next run must recompute, not fail.
	err = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		return os.WriteFile(path, []byte("{not json"), 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := OpenCache(dir)
	got := mustJSON(t, Run(&Engine{Workers: 1, Cache: c2}, spec, simulate))
	if got != want {
		t.Fatalf("recompute after corruption differs:\n got %s\nwant %s", got, want)
	}
	if c2.Hits() != 0 {
		t.Fatalf("corrupt entries counted as hits: %d", c2.Hits())
	}
}

func TestProgressReporting(t *testing.T) {
	spec := testSpec(9)
	var snaps []Progress
	Run(&Engine{Workers: 3, Report: func(p Progress) { snaps = append(snaps, p) }}, spec, simulate)
	if len(snaps) != len(spec.Keys) {
		t.Fatalf("%d progress reports for %d points", len(snaps), len(spec.Keys))
	}
	last := snaps[len(snaps)-1]
	if last.Done != len(spec.Keys) || last.Total != len(spec.Keys) {
		t.Fatalf("final progress %+v", last)
	}
	for k := 1; k < len(snaps); k++ {
		if snaps[k].Done != snaps[k-1].Done+1 {
			t.Fatalf("progress not monotone: %+v -> %+v", snaps[k-1], snaps[k])
		}
	}
}

// TestProgressETAAllCacheHits pins the done == hits corner: a fully warm
// run completes every point from the cache, so the per-point mean is
// meaningless and Remaining must stay zero rather than divide by the zero
// computed-point count.
func TestProgressETAAllCacheHits(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(6)
	c1, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	Run(&Engine{Workers: 2, Cache: c1}, spec, simulate)

	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []Progress
	Run(&Engine{Workers: 2, Cache: c2, Report: func(p Progress) { snaps = append(snaps, p) }}, spec, simulate)
	if len(snaps) != len(spec.Keys) {
		t.Fatalf("%d progress reports for %d points", len(snaps), len(spec.Keys))
	}
	for _, p := range snaps {
		if p.Remaining != 0 {
			t.Fatalf("all-hit snapshot %+v has nonzero Remaining", p)
		}
		if p.CacheHits != p.Done {
			t.Fatalf("all-hit snapshot %+v: hits != done", p)
		}
	}
}

// TestProgressETAFinite checks that computed points produce a sane
// extrapolation: never negative, never NaN/Inf (which a divide-by-zero on
// the first tick used to produce), and zero on the final snapshot.
func TestProgressETAFinite(t *testing.T) {
	spec := testSpec(8)
	var snaps []Progress
	Run(&Engine{Workers: 1, Report: func(p Progress) { snaps = append(snaps, p) }}, spec, simulate)
	for k, p := range snaps {
		if p.Remaining < 0 {
			t.Fatalf("snapshot %d: negative Remaining %v", k, p.Remaining)
		}
	}
	if last := snaps[len(snaps)-1]; last.Remaining != 0 {
		t.Fatalf("final snapshot %+v has nonzero Remaining", last)
	}
}

// TestCacheSweepsStaleOrphans checks that OpenCache removes temp files
// abandoned by a crashed writer, leaves fresh temp files alone (a live
// writer may still own them), and does not disturb real entries.
func TestCacheSweepsStaleOrphans(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(4)
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, Run(&Engine{Workers: 1, Cache: c}, spec, simulate))

	shard := filepath.Join(dir, "ab")
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(shard, ".tmp-stale")
	fresh := filepath.Join(shard, ".tmp-fresh")
	for _, f := range []string{stale, fresh} {
		if err := os.WriteFile(f, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * orphanTTL)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale orphan survived reopen: stat err = %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh temp file was removed: %v", err)
	}
	got := mustJSON(t, Run(&Engine{Workers: 1, Cache: c2}, spec, simulate))
	if got != want {
		t.Fatalf("entries lost after orphan sweep:\n got %s\nwant %s", got, want)
	}
	if c2.Hits() != int64(len(spec.Keys)) {
		t.Fatalf("post-sweep run: hits=%d want %d", c2.Hits(), len(spec.Keys))
	}
}

func TestPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("worker panic was swallowed")
		}
	}()
	Run(&Engine{Workers: 4}, testSpec(16), func(i int, seed uint64) pointResult {
		if i == 7 {
			panic("boom")
		}
		return simulate(i, seed)
	})
}
