package sweep

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"
)

// Version is the code-version salt mixed into every cache key. Bump it
// whenever the simulator's semantics change in a way that invalidates
// previously cached results (new event ordering, changed defaults, …);
// stale entries then simply stop being addressed and can be garbage
// collected by deleting the cache directory.
const Version = "sweep-v1"

// Cache is an on-disk, content-addressed result store. Each entry is one
// JSON file named by the SHA-256 of (Version, spec name, point key,
// derived seed), sharded into 256 two-hex-digit subdirectories. Entries
// carry their spec and point key in cleartext for debuggability.
//
// The cache is safe for concurrent use by multiple workers and multiple
// processes: writes go to a temp file followed by an atomic rename, and
// any read failure (missing, truncated, foreign schema) is a miss.
type Cache struct {
	dir          string
	hits, misses atomic.Int64
}

// OpenCache opens (creating if needed) a cache rooted at dir. Temp files
// orphaned by a process that died mid-write are swept opportunistically.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("sweep: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: open cache: %w", err)
	}
	c := &Cache{dir: dir}
	c.sweepOrphans()
	return c, nil
}

// orphanTTL is how old a temp file must be before sweepOrphans removes
// it: long enough that no live writer can still own it (a Put lasts
// milliseconds), short enough that crash debris does not accumulate.
const orphanTTL = time.Hour

// sweepOrphans removes stale ".tmp-*" files left in the shard directories
// by a process that died between the temp write and the atomic rename.
// Fresh temp files are left alone so a concurrently writing process is
// never raced; like Put, the whole sweep is best-effort.
func (c *Cache) sweepOrphans() {
	shards, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		shardDir := filepath.Join(c.dir, sh.Name())
		entries, err := os.ReadDir(shardDir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			if !strings.HasPrefix(e.Name(), ".tmp-") {
				continue
			}
			info, err := e.Info()
			if err != nil || time.Since(info.ModTime()) < orphanTTL {
				continue
			}
			os.Remove(filepath.Join(shardDir, e.Name()))
		}
	}
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// Hits returns the number of successful lookups since OpenCache.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses returns the number of failed lookups since OpenCache.
func (c *Cache) Misses() int64 { return c.misses.Load() }

// Key computes the content address of a point: a hex SHA-256 over the
// code-version salt, the spec name, the point's full-configuration key and
// its derived seed.
func (c *Cache) Key(spec, point string, seed uint64) string {
	h := sha256.New()
	var sep = []byte{0}
	h.Write([]byte(Version))
	h.Write(sep)
	h.Write([]byte(spec))
	h.Write(sep)
	h.Write([]byte(point))
	h.Write(sep)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], seed)
	h.Write(b[:])
	return hex.EncodeToString(h.Sum(nil))
}

// entry is the JSON schema of one cache file.
type entry struct {
	Spec   string          `json:"spec"`
	Point  string          `json:"point"`
	Result json.RawMessage `json:"result"`
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key[2:]+".json")
}

// Get looks key up and, on a hit, decodes the stored result into out
// (which must be a pointer). Any failure is reported as a miss.
func (c *Cache) Get(key string, out any) bool {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Add(1)
		return false
	}
	var e entry
	if json.Unmarshal(data, &e) != nil || json.Unmarshal(e.Result, out) != nil {
		c.misses.Add(1)
		return false
	}
	c.hits.Add(1)
	return true
}

// Put stores a point's result under key. Storage is best-effort: an
// unwritable cache degrades to recomputation, never to an error.
func (c *Cache) Put(key, spec, point string, v any) {
	res, err := json.Marshal(v)
	if err != nil {
		return
	}
	data, err := json.Marshal(entry{Spec: spec, Point: point, Result: res})
	if err != nil {
		return
	}
	dir := filepath.Dir(c.path(key))
	if os.MkdirAll(dir, 0o755) != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if os.Rename(tmp.Name(), c.path(key)) != nil {
		os.Remove(tmp.Name())
	}
}
