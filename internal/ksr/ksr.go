// Package ksr models the timing-relevant properties of the Kendall Square
// Research KSR1, the machine used for the paper's §7 measurements, to the
// extent the barrier experiments depend on them:
//
//   - the ALLCACHE memory hierarchy's access latencies (local subcache,
//     remote access within a ring:0 of 32 processors, and inter-ring
//     access through ring:1);
//   - the 128-byte cache sub-line (16 eight-byte elements), which sets the
//     number of communication events of the SOR workload;
//   - the ring-of-rings processor organization, which constrains
//     combining-tree construction and dynamic placement (§7 footnote 5);
//   - the measured counter update time t_c = 20µs.
//
// We do not have a KSR1; this model is the documented substitution
// (DESIGN.md §2). The latency constants are order-of-magnitude figures for
// a 20 MHz KSR1 chosen so that the derived quantities the paper reports —
// t_c, the SOR iteration time (≈9.5 ms at d_y = 210) and its standard
// deviation (≈110 µs) — come out at the measured values.
package ksr

import (
	"fmt"

	"softbarrier/internal/topology"
)

// Machine-architecture constants.
const (
	// SubLine is the number of 8-byte elements per 128-byte cache
	// sub-line, the granularity of remote transfers.
	SubLine = 16
	// RingSize is the number of processor slots in a ring:0.
	RingSize = 32
)

// Machine is a KSR1-like machine timing model.
type Machine struct {
	// Rings lists the number of processors used in each ring:0.
	Rings []int
	// LocalAccess is the latency of a local (subcache) access, seconds.
	LocalAccess float64
	// RingAccess is the latency of a remote access served within the
	// requester's ring:0.
	RingAccess float64
	// InterRingAccess is the latency of an access crossing ring:1.
	InterRingAccess float64
	// Tc is the measured counter update time (lock, update, unlock).
	Tc float64
	// ComputePerElement is the per-element cost of the SOR stencil.
	ComputePerElement float64
}

// New56 returns the configuration of the paper's measurements: 56 of 64
// processors (two rings of 28, avoiding the dedicated I/O nodes), t_c =
// 20µs.
func New56() Machine {
	return Machine{
		Rings:             []int{28, 28},
		LocalAccess:       1e-6,
		RingAccess:        8.75e-6,
		InterRingAccess:   30e-6,
		Tc:                20e-6,
		ComputePerElement: 0.65e-6,
	}
}

// P returns the total number of processors.
func (m Machine) P() int {
	p := 0
	for _, r := range m.Rings {
		p += r
	}
	return p
}

// RingOf returns the ring index of processor p (processors are numbered
// ring by ring). It panics for an out-of-range processor.
func (m Machine) RingOf(p int) int {
	for ring, size := range m.Rings {
		if p < size {
			return ring
		}
		p -= size
	}
	panic(fmt.Sprintf("ksr: processor %d out of range", p))
}

// AccessCost returns the latency of processor from accessing data homed at
// processor to.
func (m Machine) AccessCost(from, to int) float64 {
	switch {
	case from == to:
		return m.LocalAccess
	case m.RingOf(from) == m.RingOf(to):
		return m.RingAccess
	default:
		return m.InterRingAccess
	}
}

// Tree builds the degree-d combining tree the paper uses on this machine:
// one subtree per ring merged by an additional root level, so that dynamic
// placement never crosses ring boundaries. With degree 16 and two rings of
// 28 this gives an initial tree depth of three, as footnote 5 reports.
func (m Machine) Tree(d int) *topology.Tree {
	return topology.NewRing(m.Rings, d)
}

// SubLines returns the number of sub-line transfers needed to move n
// elements: ceil(n / SubLine).
func SubLines(n int) int {
	if n < 0 {
		panic("ksr: negative element count")
	}
	return (n + SubLine - 1) / SubLine
}
