package ksr

import "testing"

func TestNew56Shape(t *testing.T) {
	m := New56()
	if m.P() != 56 {
		t.Fatalf("P = %d, want 56", m.P())
	}
	if len(m.Rings) != 2 || m.Rings[0] != 28 || m.Rings[1] != 28 {
		t.Fatalf("rings %v, want two rings of 28", m.Rings)
	}
	if m.Tc != 20e-6 {
		t.Fatalf("t_c = %v, want 20µs", m.Tc)
	}
}

func TestRingOf(t *testing.T) {
	m := New56()
	if m.RingOf(0) != 0 || m.RingOf(27) != 0 {
		t.Error("first 28 processors should be ring 0")
	}
	if m.RingOf(28) != 1 || m.RingOf(55) != 1 {
		t.Error("last 28 processors should be ring 1")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range processor did not panic")
		}
	}()
	m.RingOf(56)
}

func TestAccessCostOrdering(t *testing.T) {
	m := New56()
	local := m.AccessCost(3, 3)
	ring := m.AccessCost(3, 4)
	inter := m.AccessCost(3, 40)
	if !(local < ring && ring < inter) {
		t.Fatalf("access costs not ordered: local %v ring %v inter %v", local, ring, inter)
	}
}

func TestMachineTreeRingConstrained(t *testing.T) {
	m := New56()
	// Footnote 5: degree 16 yields an initial tree depth of three (two
	// ring subtrees merged by an additional level).
	tr := m.Tree(16)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.P != 56 {
		t.Fatalf("tree has %d processors", tr.P)
	}
	if d := tr.Depth(tr.FirstCounter(0)); d != 3 {
		t.Errorf("degree-16 leaf depth %d, want 3", d)
	}
}

func TestSubLines(t *testing.T) {
	cases := []struct{ n, want int }{{0, 0}, {1, 1}, {16, 1}, {17, 2}, {210, 14}, {480, 30}}
	for _, c := range cases {
		if got := SubLines(c.n); got != c.want {
			t.Errorf("SubLines(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative element count did not panic")
		}
	}()
	SubLines(-1)
}
