package reconfig

import (
	"testing"

	rt "softbarrier/internal/runtime"
)

// fixedRec returns a recommender controlled through a pointer, so tests
// can steer the recommendation between episodes.
func fixedRec(deg *int, dyn *bool) Recommender {
	return func(p int, sigma float64) (int, bool) {
		return *deg, *dyn
	}
}

func newTestController(cfg Config, deg int) (*Controller, *int, *bool) {
	est := &rt.SigmaEstimator{}
	est.Init(0)
	d, dy := deg, false
	c := New(cfg, est, fixedRec(&d, &dy), Plan{P: 8, Degree: deg})
	return c, &d, &dy
}

func TestReconfigConfigNormalized(t *testing.T) {
	n := Config{}.Normalized()
	if n.ReplanEvery != 1 {
		t.Errorf("ReplanEvery 0 normalized to %d, want 1", n.ReplanEvery)
	}
	if n.MinDegreeDelta != 1 {
		t.Errorf("MinDegreeDelta 0 normalized to %d, want 1", n.MinDegreeDelta)
	}
	kept := Config{ReplanEvery: 7, MinDegreeDelta: 3, MinEpisodesBetween: 5}.Normalized()
	if kept.ReplanEvery != 7 || kept.MinDegreeDelta != 3 || kept.MinEpisodesBetween != 5 {
		t.Errorf("Normalized clobbered explicit values: %+v", kept)
	}
}

func TestReconfigInitialPlan(t *testing.T) {
	c, _, _ := newTestController(Config{InitialSigma: 2e-4}, 4)
	cur := c.Current()
	if cur.Epoch != 0 || cur.P != 8 || cur.Degree != 4 {
		t.Fatalf("initial plan = %+v", cur)
	}
	if cur.Sigma != 2e-4 {
		t.Errorf("initial plan sigma = %g, want InitialSigma 2e-4", cur.Sigma)
	}
	st := c.Stats()
	if st.Epochs != 1 || st.Rebuilds != 0 {
		t.Errorf("fresh stats = %+v, want 1 epoch, 0 rebuilds", st)
	}
}

func TestReconfigCadence(t *testing.T) {
	c, deg, _ := newTestController(Config{ReplanEvery: 3}, 4)
	*deg = 8 // the recommendation moved right away
	for i := 1; i <= 2; i++ {
		c.Observe(1e-3)
		if _, ok := c.Evaluate(); ok {
			t.Fatalf("episode %d planned off-cadence (ReplanEvery 3)", i)
		}
	}
	c.Observe(1e-3)
	plan, ok := c.Evaluate()
	if !ok {
		t.Fatal("episode 3 did not plan on cadence")
	}
	if plan.Degree != 8 || plan.Epoch != 1 || plan.P != 8 || plan.Episodes != 3 {
		t.Errorf("plan = %+v", plan)
	}
	c.Commit(plan)
	if got := c.Current(); got.Epoch != 1 || got.Degree != 8 {
		t.Errorf("current after commit = %+v", got)
	}
}

func TestReconfigNoPlanWhenDegreeHolds(t *testing.T) {
	c, _, _ := newTestController(Config{ReplanEvery: 1}, 4)
	for i := 0; i < 5; i++ {
		c.Observe(1e-5)
		if plan, ok := c.Evaluate(); ok {
			t.Fatalf("planned %+v with an unchanged recommendation", plan)
		}
	}
}

func TestReconfigMinDegreeDelta(t *testing.T) {
	c, deg, _ := newTestController(Config{ReplanEvery: 1, MinDegreeDelta: 3}, 4)
	*deg = 6 // |Δ| = 2 < 3: suppressed
	c.Observe(1e-3)
	if plan, ok := c.Evaluate(); ok {
		t.Fatalf("planned %+v below the degree-delta floor", plan)
	}
	*deg = 7 // |Δ| = 3: rebuild
	c.Observe(1e-3)
	if _, ok := c.Evaluate(); !ok {
		t.Fatal("did not plan at the degree-delta floor")
	}
}

func TestReconfigDynamicFlipBeatsDegreeFloor(t *testing.T) {
	c, _, dyn := newTestController(Config{ReplanEvery: 1, MinDegreeDelta: 100}, 4)
	*dyn = true
	c.Observe(1e-3)
	plan, ok := c.Evaluate()
	if !ok || !plan.Dynamic {
		t.Fatalf("dynamic flip did not force a plan (ok=%v plan=%+v)", ok, plan)
	}
}

func TestReconfigMinEpisodesBetween(t *testing.T) {
	// The floor counts from the last rebuild; the initial configuration
	// is the rebuild at episode 0, so the first plan is deferred too.
	c, deg, _ := newTestController(Config{ReplanEvery: 1, MinEpisodesBetween: 4}, 4)
	*deg = 8
	for i := 1; i <= 3; i++ {
		c.Observe(1e-3)
		if p, ok := c.Evaluate(); ok {
			t.Fatalf("episode %d planned %+v inside the MinEpisodesBetween window", i, p)
		}
	}
	c.Observe(1e-3) // episode 4: the floor has passed
	plan, ok := c.Evaluate()
	if !ok {
		t.Fatal("plan still deferred past the MinEpisodesBetween floor")
	}
	c.Commit(plan)
	*deg = 16
	for i := 5; i <= 7; i++ {
		c.Observe(1e-3)
		if p, ok := c.Evaluate(); ok {
			t.Fatalf("episode %d planned %+v inside the MinEpisodesBetween window", i, p)
		}
	}
	c.Observe(1e-3) // episode 8: 4 past the rebuild at episode 4
	if _, ok := c.Evaluate(); !ok {
		t.Fatal("second plan still deferred past the floor")
	}
	if st := c.Stats(); st.Deferred != 6 {
		t.Errorf("deferred = %d, want 6", st.Deferred)
	}
}

func TestReconfigResizeAlwaysPlans(t *testing.T) {
	c, _, _ := newTestController(Config{ReplanEvery: 1000}, 4)
	if err := c.RequestP(12); err != nil {
		t.Fatal(err)
	}
	plan, ok := c.Evaluate() // far off the cadence, zero episodes observed
	if !ok {
		t.Fatal("pending membership change did not force a plan")
	}
	if plan.P != 12 {
		t.Errorf("plan.P = %d, want 12", plan.P)
	}
	c.Commit(plan)
	if c.TargetP() != 0 {
		t.Errorf("commit did not consume the membership target (still %d)", c.TargetP())
	}
	if _, ok := c.Evaluate(); ok {
		t.Error("re-planned with no pending target and off-cadence")
	}
}

func TestReconfigRequestDeltaStacks(t *testing.T) {
	c, _, _ := newTestController(Config{}, 4)
	if p, err := c.RequestDelta(+2); err != nil || p != 10 {
		t.Fatalf("first delta: p=%d err=%v, want 10", p, err)
	}
	if p, err := c.RequestDelta(+2); err != nil || p != 12 {
		t.Fatalf("stacked delta: p=%d err=%v, want 12", p, err)
	}
	if _, err := c.RequestDelta(-12); err == nil {
		t.Error("delta to p=0 accepted")
	}
	if err := c.RequestP(0); err == nil {
		t.Error("RequestP(0) accepted")
	}
}

func TestReconfigInitialSigmaWhileUnseeded(t *testing.T) {
	c, _, _ := newTestController(Config{InitialSigma: 5e-4}, 4)
	if got := c.Sigma(); got != 5e-4 {
		t.Errorf("unseeded Sigma() = %g, want InitialSigma", got)
	}
	c.RequestP(6)
	plan, ok := c.Evaluate()
	if !ok {
		t.Fatal("resize plan missing")
	}
	if plan.Sigma != 5e-4 {
		t.Errorf("unseeded plan sigma = %g, want InitialSigma", plan.Sigma)
	}
	c.Observe(1e-3)
	if got := c.Sigma(); got != 1e-3 {
		t.Errorf("seeded Sigma() = %g, want the EWMA estimate", got)
	}
}

func TestReconfigStatsCounts(t *testing.T) {
	c, deg, _ := newTestController(Config{ReplanEvery: 2}, 4)
	*deg = 8
	for i := 1; i <= 4; i++ {
		c.Observe(1e-3)
		if plan, ok := c.Evaluate(); ok {
			c.Commit(plan)
			*deg += 4 // keep the recommendation moving
		}
	}
	st := c.Stats()
	if st.Evals != 4 {
		t.Errorf("evals = %d, want 4", st.Evals)
	}
	if st.Rebuilds != 2 || st.Epochs != 3 {
		t.Errorf("rebuilds=%d epochs=%d, want 2 and 3", st.Rebuilds, st.Epochs)
	}
	if st.LastPlan.Epoch != 2 || st.LastPlan.Degree != 12 {
		t.Errorf("last plan = %+v", st.LastPlan)
	}
}
