// Package reconfig is the epoch-based reconfiguration core shared by
// every elastic barrier in the module: the in-process adaptive/elastic
// barrier (softbarrier.ReconfigurableBarrier) and the networked barrier
// sessions (internal/netbarrier) both drive their degree and membership
// changes through a Controller instead of hand-rolled replan loops.
//
// The protocol generalizes the quiescent-point pointer swap both loops
// already used: a barrier configuration (participant count, tree degree,
// dynamic placement on/off) is an *epoch*. The participant that releases
// an episode — and is therefore at a point where no other participant can
// be touching barrier state — asks the controller to Evaluate. Off the
// hot path the controller folds the measured arrival spread into the
// shared EWMA σ estimate, consults an injected Recommender, and applies
// hysteresis; when a new configuration is due it hands back a Plan, which
// the caller applies (rebuilding trees, resizing recorders and arrival
// counters) and then Commits, all before opening the release gate. Every
// other episode costs one mutex acquisition on the releaser only.
//
// Membership changes (Grow/Shrink/RequestP from any goroutine) are
// queued targets: the next Evaluate always plans when a resize is
// pending, regardless of the replan cadence, so joins and leaves land at
// the very next episode boundary.
package reconfig

import (
	"fmt"
	"sync"

	rt "softbarrier/internal/runtime"
)

// Config tunes the controller's replan cadence and hysteresis. The zero
// value re-plans every episode with no hysteresis — exactly the behaviour
// of the legacy adaptive and netbarrier replan loops this package
// replaced.
type Config struct {
	// ReplanEvery is how many episodes pass between degree
	// re-evaluations; 0 means every episode (normalized to 1).
	ReplanEvery uint64
	// MinEpisodesBetween is the hysteresis floor on rebuild frequency:
	// a plan whose only motive is a degree change is deferred until at
	// least this many episodes have passed since the last committed
	// rebuild. Membership changes are never deferred. 0 disables the
	// floor.
	MinEpisodesBetween uint64
	// MinDegreeDelta is the hysteresis floor on degree movement: a
	// recommended degree closer than this to the current one does not
	// trigger a rebuild (unless dynamic placement flips, or membership
	// changes). 0 normalizes to 1 — any change rebuilds.
	MinDegreeDelta int
	// InitialSigma is the arrival spread assumed while the σ estimator
	// is unseeded, seconds.
	InitialSigma float64
}

// Normalized returns the config with defaulting applied: ReplanEvery
// 0 → 1 and MinDegreeDelta < 1 → 1. This is the single home of the
// "replanEvery == 0 means 1" rule previously duplicated in the netbarrier
// session.
func (c Config) Normalized() Config {
	if c.ReplanEvery == 0 {
		c.ReplanEvery = 1
	}
	if c.MinDegreeDelta < 1 {
		c.MinDegreeDelta = 1
	}
	return c
}

// Plan is one epoch's barrier configuration, computed off the hot path by
// Evaluate and applied exactly once by the releasing participant before
// it opens the episode's gate.
type Plan struct {
	// Epoch is the 0-based configuration index; the initial
	// configuration is epoch 0 and every committed plan increments it.
	Epoch uint64
	// P is the participant count the epoch runs at.
	P int
	// Degree is the combining-tree degree.
	Degree int
	// Dynamic selects a dynamic-placement tree (networked sessions).
	Dynamic bool
	// Sigma is the σ estimate the plan was derived from, seconds.
	Sigma float64
	// Episodes is how many episodes had been observed at plan time.
	Episodes uint64
}

// Stats is the unified reconfiguration telemetry every elastic barrier
// exposes: epoch and rebuild counts plus the last plan (which carries the
// σ at plan time).
type Stats struct {
	// Epochs is how many configurations the barrier has run, including
	// the initial one: Rebuilds + 1.
	Epochs uint64
	// Rebuilds is how many committed plans rebuilt the barrier.
	Rebuilds uint64
	// Evals counts Evaluate calls (one per episode).
	Evals uint64
	// Deferred counts plans suppressed by the MinEpisodesBetween floor.
	Deferred uint64
	// Placements counts placement-only rebuilds: same configuration,
	// slots re-ordered by a placement policy's predicted-straggler order.
	Placements uint64
	// LastPlan is the most recently committed plan; for a barrier that
	// never re-planned it describes the initial configuration.
	LastPlan Plan
}

// Recommender maps a (participant count, σ estimate) pair to a tree
// configuration. Injecting it keeps the analytic model and planner out of
// this package: the root package wires OptimalDegree, the netbarrier
// session wires softbarrier.Recommend over its profile.
type Recommender func(p int, sigma float64) (degree int, dynamic bool)

// Controller owns one barrier's reconfiguration state. Observe and
// Evaluate/Commit run on the releasing participant at the episode's
// quiescent point; RequestP, Grow, Shrink, Sigma and Stats are safe from
// any goroutine.
type Controller struct {
	cfg Config
	est *rt.SigmaEstimator
	rec Recommender

	mu       sync.Mutex
	cur      Plan
	targetP  int // pending membership target; 0 = none
	rebuilds uint64
	evals    uint64
	deferred uint64
	placed   uint64
	lastAt   uint64 // est episode count at the last committed rebuild
}

// New returns a controller starting from the given initial configuration.
// initial.Epoch is forced to 0 and initial.Sigma defaults to the config's
// InitialSigma when unset. est is the (possibly shared) EWMA σ estimator
// the controller folds spreads into; it must already be initialized.
func New(cfg Config, est *rt.SigmaEstimator, rec Recommender, initial Plan) *Controller {
	if initial.P < 1 {
		panic("reconfig: initial plan needs at least one participant")
	}
	if rec == nil {
		panic("reconfig: nil recommender")
	}
	cfg = cfg.Normalized()
	initial.Epoch = 0
	if initial.Sigma == 0 {
		initial.Sigma = cfg.InitialSigma
	}
	return &Controller{cfg: cfg, est: est, rec: rec, cur: initial}
}

// Config returns the normalized configuration.
func (c *Controller) Config() Config { return c.cfg }

// Observe folds one episode's measured arrival spread (seconds) into the
// σ estimate. Called by the releasing participant before Evaluate.
func (c *Controller) Observe(spread float64) { c.est.Observe(spread) }

// Sigma returns the σ the next plan would be derived from: the measured
// EWMA once at least one episode has been observed, the configured
// InitialSigma before that.
func (c *Controller) Sigma() float64 {
	if c.est.Episodes() > 0 {
		return c.est.Sigma()
	}
	return c.cfg.InitialSigma
}

// Episodes returns how many spreads have been observed.
func (c *Controller) Episodes() uint64 { return c.est.Episodes() }

// Current returns the configuration of the running epoch.
func (c *Controller) Current() Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur
}

// RequestP queues a membership target: the next Evaluate plans a resize
// to p regardless of the replan cadence. Safe from any goroutine; the
// last request before the boundary wins.
func (c *Controller) RequestP(p int) error {
	if p < 1 {
		return fmt.Errorf("reconfig: membership target %d below 1", p)
	}
	c.mu.Lock()
	c.targetP = p
	c.mu.Unlock()
	return nil
}

// RequestDelta adjusts the pending membership target (or, absent one, the
// current P) by delta and returns the resulting target.
func (c *Controller) RequestDelta(delta int) (int, error) {
	c.mu.Lock()
	base := c.targetP
	if base == 0 {
		base = c.cur.P
	}
	p := base + delta
	if p < 1 {
		c.mu.Unlock()
		return 0, fmt.Errorf("reconfig: membership target %d below 1", p)
	}
	c.targetP = p
	c.mu.Unlock()
	return p, nil
}

// TargetP returns the pending membership target, or 0 when none is
// queued.
func (c *Controller) TargetP() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.targetP
}

// Evaluate decides, at the episode's quiescent point, whether a new epoch
// is due. A pending membership change always yields a plan; otherwise a
// plan is produced only on the replan cadence, when the recommended
// degree moved by at least MinDegreeDelta (or dynamic placement flipped),
// and the MinEpisodesBetween floor has passed. Only the releasing
// participant may call it, and a returned plan must be applied and
// Committed before the episode is released.
func (c *Controller) Evaluate() (Plan, bool) {
	n := c.est.Episodes()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evals++
	p := c.cur.P
	resize := c.targetP != 0 && c.targetP != c.cur.P
	if resize {
		p = c.targetP
	} else if c.targetP != 0 {
		c.targetP = 0 // target equals the current P; nothing to do
	}
	cadence := n > 0 && n%c.cfg.ReplanEvery == 0
	if !resize && !cadence {
		return Plan{}, false
	}
	sigma := c.sigmaLocked(n)
	deg, dyn := c.rec(p, sigma)
	if !resize {
		delta := deg - c.cur.Degree
		if delta < 0 {
			delta = -delta
		}
		if delta < c.cfg.MinDegreeDelta && dyn == c.cur.Dynamic {
			return Plan{}, false
		}
		if n-c.lastAt < c.cfg.MinEpisodesBetween {
			c.deferred++
			return Plan{}, false
		}
	}
	return Plan{
		Epoch:    c.cur.Epoch + 1,
		P:        p,
		Degree:   deg,
		Dynamic:  dyn,
		Sigma:    sigma,
		Episodes: n,
	}, true
}

// PlanResize produces a plan for an immediate, caller-synchronized
// membership change to p — the quiescent Resize path — bypassing cadence
// and hysteresis. The caller must apply and Commit it like any other
// plan.
func (c *Controller) PlanResize(p int) (Plan, error) {
	if p < 1 {
		return Plan{}, fmt.Errorf("reconfig: membership target %d below 1", p)
	}
	n := c.est.Episodes()
	c.mu.Lock()
	defer c.mu.Unlock()
	sigma := c.sigmaLocked(n)
	deg, dyn := c.rec(p, sigma)
	return Plan{
		Epoch:    c.cur.Epoch + 1,
		P:        p,
		Degree:   deg,
		Dynamic:  dyn,
		Sigma:    sigma,
		Episodes: n,
	}, nil
}

// sigmaLocked is Sigma with the episode count already sampled.
func (c *Controller) sigmaLocked(n uint64) float64 {
	if n > 0 {
		return c.est.Sigma()
	}
	return c.cfg.InitialSigma
}

// Commit records plan as the running epoch after the caller has applied
// it. A pending membership target the plan satisfies is consumed.
func (c *Controller) Commit(plan Plan) {
	c.mu.Lock()
	c.cur = plan
	c.rebuilds++
	c.lastAt = plan.Episodes
	if c.targetP == plan.P {
		c.targetP = 0
	}
	c.mu.Unlock()
}

// NotePlacement records a placement-only rebuild: the epoch's P/degree
// stand, but the tree was rebuilt with a placement policy's new
// predicted-straggler order. Called by the releasing participant.
func (c *Controller) NotePlacement() {
	c.mu.Lock()
	c.placed++
	c.mu.Unlock()
}

// Rebuilds returns how many plans have been committed.
func (c *Controller) Rebuilds() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rebuilds
}

// Stats returns the unified reconfiguration telemetry.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Epochs:     c.rebuilds + 1,
		Rebuilds:   c.rebuilds,
		Evals:      c.evals,
		Deferred:   c.deferred,
		Placements: c.placed,
		LastPlan:   c.cur,
	}
}
