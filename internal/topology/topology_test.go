package topology

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClassicFullTreeShape(t *testing.T) {
	// 64 processors, degree 4: a full 3-level tree (16 + 4 + 1 counters).
	tr := NewClassic(64, 4)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Levels != 3 {
		t.Errorf("Levels = %d, want 3", tr.Levels)
	}
	if got := tr.NumCounters(); got != 21 {
		t.Errorf("counters = %d, want 21", got)
	}
	if got := tr.MaxFanIn(); got != 4 {
		t.Errorf("max fan-in = %d, want 4", got)
	}
	for p := 0; p < 64; p++ {
		if d := tr.Depth(tr.FirstCounter(p)); d != 3 {
			t.Fatalf("proc %d depth %d, want 3", p, d)
		}
	}
}

func TestClassicFlatBarrier(t *testing.T) {
	// Degree ≥ p collapses to a single counter: the paper's observation
	// that a single counter is optimal for 64 processors at σ = 25 t_c.
	tr := NewClassic(64, 64)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumCounters() != 1 || tr.Levels != 1 {
		t.Fatalf("flat tree has %d counters, %d levels", tr.NumCounters(), tr.Levels)
	}
	if tr.Counters[0].FanIn() != 64 {
		t.Fatalf("flat fan-in %d, want 64", tr.Counters[0].FanIn())
	}
}

func TestClassicNonFullTree(t *testing.T) {
	// 56 processors, degree 4: ceil(56/4)=14 leaves, then 4, then 1.
	tr := NewClassic(56, 4)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Levels != 3 {
		t.Errorf("Levels = %d, want 3", tr.Levels)
	}
	if got := tr.NumCounters(); got != 14+4+1 {
		t.Errorf("counters = %d, want 19", got)
	}
}

func TestClassicDepthMatchesLogD(t *testing.T) {
	for _, c := range []struct{ p, d, levels int }{
		{4096, 2, 12}, {4096, 4, 6}, {4096, 8, 4},
		{4096, 16, 3}, {4096, 64, 2}, {256, 4, 4},
	} {
		tr := NewClassic(c.p, c.d)
		if tr.Levels != c.levels {
			t.Errorf("p=%d d=%d: levels %d, want %d", c.p, c.d, tr.Levels, c.levels)
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("p=%d d=%d: %v", c.p, c.d, err)
		}
	}
}

func TestClassicPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewClassic(0, 4) },
		func() { NewClassic(8, 1) },
		func() { NewMCS(0, 4) },
		func() { NewMCS(8, 1) },
		func() { NewRing(nil, 4) },
		func() { NewRing([]int{4, 0}, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMCSEveryCounterHasLocal(t *testing.T) {
	for _, c := range []struct{ p, d int }{
		{64, 4}, {256, 4}, {4096, 4}, {4096, 16}, {56, 2}, {56, 16}, {5, 2}, {2, 2},
	} {
		tr := NewMCS(c.p, c.d)
		if err := tr.Validate(); err != nil {
			t.Fatalf("p=%d d=%d: %v", c.p, c.d, err)
		}
		for i := range tr.Counters {
			if tr.Counters[i].Local == NoProc {
				t.Errorf("p=%d d=%d: counter %d has no local processor", c.p, c.d, i)
			}
		}
	}
}

func TestMCSFanInBounds(t *testing.T) {
	tr := NewMCS(4096, 4)
	for i := range tr.Counters {
		c := &tr.Counters[i]
		if len(c.Children) > 0 {
			// internal: d children + 1 local
			if got := c.FanIn(); got > tr.Degree+1 {
				t.Errorf("internal counter %d fan-in %d > d+1", i, got)
			}
		} else if got := c.FanIn(); got > tr.Degree+2 {
			// leaves: up to d+1, +1 slack for uneven distribution
			t.Errorf("leaf counter %d fan-in %d", i, got)
		}
	}
}

func TestMCSMeanDepthBelowClassic(t *testing.T) {
	// Attaching processors to internal counters reduces the average depth —
	// the §4 explanation of MCS's ~5% advantage at degree 4.
	mcs := NewMCS(4096, 4).ShapeStats()
	classic := NewClassic(4096, 4).ShapeStats()
	if mcs.MeanDepth >= classic.MeanDepth {
		t.Errorf("MCS mean depth %v not below classic %v", mcs.MeanDepth, classic.MeanDepth)
	}
}

func TestMCSSingleProcessor(t *testing.T) {
	tr := NewMCS(1, 4)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumCounters() != 1 || tr.Counters[0].FanIn() != 1 {
		t.Fatalf("1-processor tree malformed: %+v", tr.Counters)
	}
}

func TestRingTreeShape(t *testing.T) {
	// The paper's KSR setup: two subtrees of 28 processors merged by an
	// additional level; degree 16 gives initial depth 3 (§7 footnote).
	tr := NewRing([]int{28, 28}, 16)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.P != 56 {
		t.Fatalf("P = %d", tr.P)
	}
	root := &tr.Counters[tr.Root]
	if len(root.Children) != 2 || len(root.Procs) != 1 {
		t.Fatalf("merge root malformed: %+v", root)
	}
	// MCS style: the merge root carries ring 0's last processor, at depth 1.
	if root.Local != 27 || tr.FirstCounter(27) != tr.Root {
		t.Fatalf("merge root local = %d (first counter %d), want processor 27 at root", root.Local, tr.FirstCounter(27))
	}
	if root.RingID != 0 {
		t.Fatalf("merge root ring %d, want 0", root.RingID)
	}
	if d := tr.Depth(tr.FirstCounter(0)); d != 3 {
		t.Errorf("leaf processor depth %d, want 3 (2 ring levels + merge)", d)
	}
	// Ring membership: first 28 processors in ring 0, rest in ring 1.
	for p := 0; p < 56; p++ {
		want := 0
		if p >= 28 {
			want = 1
		}
		if tr.RingOf(p) != want {
			t.Fatalf("proc %d ring %d, want %d", p, tr.RingOf(p), want)
		}
	}
}

func TestRingSingleRingDegeneratesToMCS(t *testing.T) {
	tr := NewRing([]int{32}, 4)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	mcs := NewMCS(32, 4)
	if tr.NumCounters() != mcs.NumCounters() || tr.Levels != mcs.Levels {
		t.Fatalf("single ring shape %d/%d, MCS %d/%d",
			tr.NumCounters(), tr.Levels, mcs.NumCounters(), mcs.Levels)
	}
	if tr.RingOf(0) != 0 {
		t.Fatal("ring id not recorded")
	}
}

func TestSwapMovesVictorUp(t *testing.T) {
	tr := NewMCS(64, 4)
	// Pick a processor on a leaf and swap it to the root's local slot.
	victor := tr.Counters[0].Procs[1] // non-local leaf member
	rootLocal := tr.Counters[tr.Root].Local
	if !tr.CanSwap(victor, tr.Root) {
		t.Fatal("swap to root should be legal")
	}
	victim := tr.Swap(victor, tr.Root)
	if victim != rootLocal {
		t.Fatalf("victim %d, want previous root local %d", victim, rootLocal)
	}
	if tr.FirstCounter(victor) != tr.Root || tr.Counters[tr.Root].Local != victor {
		t.Fatal("victor not installed at root")
	}
	if tr.FirstCounter(victim) != 0 {
		t.Fatalf("victim first counter %d, want 0", tr.FirstCounter(victim))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSwapLocalVictorKeepsLocalSlotFilled(t *testing.T) {
	tr := NewMCS(64, 4)
	victor := tr.Counters[0].Local
	victim := tr.Swap(victor, tr.Root)
	if tr.Counters[0].Local != victim {
		t.Fatalf("old counter local = %d, want victim %d", tr.Counters[0].Local, victim)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSwapRejectsNonAncestor(t *testing.T) {
	tr := NewMCS(64, 4)
	// Two distinct leaves: neither is an ancestor of the other.
	victor := tr.Counters[0].Procs[0]
	if tr.CanSwap(victor, 1) {
		t.Fatal("swap to sibling leaf should be illegal")
	}
	if tr.CanSwap(victor, tr.FirstCounter(victor)) {
		t.Fatal("swap to own counter should be illegal")
	}
}

func TestSwapRejectsCrossRing(t *testing.T) {
	tr := NewRing([]int{8, 8}, 4)
	victor0 := 0 // ring 0
	victor1 := 8 // ring 1
	// Neither may swap into the other ring's subtree root.
	for _, ch := range tr.Counters[tr.Root].Children {
		switch tr.Counters[ch].RingID {
		case 1:
			if tr.CanSwap(victor0, ch) {
				t.Fatal("ring-0 swap into ring-1 subtree should be illegal")
			}
		case 0:
			if tr.CanSwap(victor1, ch) {
				t.Fatal("ring-1 swap into ring-0 subtree should be illegal")
			}
		}
	}
	// The merge root belongs to ring 0: only ring-0 processors may take it.
	if !tr.CanSwap(victor0, tr.Root) {
		t.Fatal("ring-0 swap to merge root should be legal")
	}
	if tr.CanSwap(victor1, tr.Root) {
		t.Fatal("ring-1 swap to merge root should be illegal")
	}
}

func TestSwapPanicsWhenIllegal(t *testing.T) {
	tr := NewMCS(16, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("illegal swap did not panic")
		}
	}()
	tr.Swap(tr.Counters[0].Procs[0], 1)
}

func TestCloneIsDeep(t *testing.T) {
	tr := NewMCS(64, 4)
	cl := tr.Clone()
	victor := tr.Counters[0].Procs[1]
	tr.Swap(victor, tr.Root)
	if cl.FirstCounter(victor) == tr.FirstCounter(victor) {
		t.Fatal("clone shares placement state with original")
	}
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: every constructed tree validates, attaches each processor
// exactly once, and has ceil(log_d p)-consistent depth bounds.
func TestConstructionProperty(t *testing.T) {
	f := func(pRaw uint16, dRaw uint8, mcs bool) bool {
		p := int(pRaw%2000) + 1
		d := int(dRaw%30) + 2
		var tr *Tree
		if mcs {
			tr = NewMCS(p, d)
		} else {
			tr = NewClassic(p, d)
		}
		if tr.Validate() != nil {
			return false
		}
		// Depth of any processor is at most ceil(log_d p) + 1.
		bound := int(math.Ceil(math.Log(float64(p))/math.Log(float64(d)))) + 1
		if bound < 1 {
			bound = 1
		}
		for q := 0; q < p; q++ {
			if tr.Depth(tr.FirstCounter(q)) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: any sequence of legal swaps preserves all invariants and the
// fan-in multiset.
func TestSwapPreservesInvariantsProperty(t *testing.T) {
	f := func(seed uint32, ops []uint16) bool {
		tr := NewMCS(128, 4)
		fanIns := make(map[int]int)
		for i := range tr.Counters {
			fanIns[tr.Counters[i].FanIn()]++
		}
		for _, op := range ops {
			victor := int(op) % tr.P
			target := int(op>>3) % tr.NumCounters()
			if tr.CanSwap(victor, target) {
				tr.Swap(victor, target)
			}
		}
		if tr.Validate() != nil {
			return false
		}
		after := make(map[int]int)
		for i := range tr.Counters {
			after[tr.Counters[i].FanIn()]++
		}
		if len(after) != len(fanIns) {
			return false
		}
		for k, v := range fanIns {
			if after[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPathToRoot(t *testing.T) {
	tr := NewClassic(64, 4)
	path := tr.PathToRoot(tr.FirstCounter(0))
	if len(path) != 3 {
		t.Fatalf("path length %d, want 3", len(path))
	}
	if path[len(path)-1] != tr.Root {
		t.Fatal("path does not end at root")
	}
	for i := 0; i+1 < len(path); i++ {
		if tr.Counters[path[i]].Parent != path[i+1] {
			t.Fatal("path not parent-linked")
		}
	}
}

func TestKindString(t *testing.T) {
	if Classic.String() != "classic" || MCS.String() != "mcs" || Ring.String() != "ring" {
		t.Fatal("Kind strings wrong")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should still print")
	}
}

func TestShapeStats(t *testing.T) {
	s := NewClassic(64, 4).ShapeStats()
	if s.Counters != 21 || s.Levels != 3 || s.MaxFanIn != 4 || s.MaxDepth != 3 || s.MeanDepth != 3 {
		t.Fatalf("bad stats: %+v", s)
	}
}
