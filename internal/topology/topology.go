// Package topology constructs the combining-tree shapes the barrier study
// uses:
//
//   - classic combining trees (Yew/Tzeng/Lawrie): processors attached to
//     leaf counters only;
//   - MCS-style trees (Mellor-Crummey & Scott): one "local" processor
//     attached to every counter, the remaining processors grouped on leaf
//     counters — the substrate for static and dynamic placement;
//   - ring-constrained trees (KSR1-style): one MCS subtree per ring merged
//     by an additional root counter, with placement forbidden to cross
//     ring boundaries.
//
// A tree also carries the mutable processor placement (which counter each
// processor starts its ascent at), since dynamic placement rearranges it
// between barrier episodes.
package topology

import "fmt"

// NoProc marks the absence of an attached processor.
const NoProc = -1

// NoCounter marks the absence of a parent counter.
const NoCounter = -1

// Kind identifies the tree family.
type Kind int

// Tree families.
const (
	// Classic is a combining tree with processors at leaf counters only.
	Classic Kind = iota
	// MCS is a tree with one local processor attached to every counter.
	MCS
	// Ring is a set of per-ring MCS subtrees merged by an extra root.
	Ring
)

func (k Kind) String() string {
	switch k {
	case Classic:
		return "classic"
	case MCS:
		return "mcs"
	case Ring:
		return "ring"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Counter is one node of the combining tree.
type Counter struct {
	// ID is the counter's index in Tree.Counters.
	ID int
	// Level is the counter's layer: leaf counters are level 0 and a
	// counter's parent is always one level higher.
	Level int
	// Parent is the parent counter ID, or NoCounter for the root.
	Parent int
	// Children lists child counter IDs.
	Children []int
	// Procs lists the processors attached directly to this counter
	// (including the Local processor for MCS-style trees).
	Procs []int
	// Local is the processor occupying this counter's local slot, or
	// NoProc. Dynamic placement swaps processors through this slot.
	Local int
	// RingID is the ring this counter belongs to, or -1 when the tree is
	// not ring-constrained (or for the merge root, which belongs to none).
	RingID int
}

// FanIn returns the number of arrivals this counter collects per episode:
// one per child counter plus one per attached processor.
func (c *Counter) FanIn() int { return len(c.Children) + len(c.Procs) }

// Tree is a combining tree together with its processor placement.
type Tree struct {
	// Kind is the tree family.
	Kind Kind
	// P is the number of processors.
	P int
	// Degree is the construction fan-out d.
	Degree int
	// Counters holds every counter; Counters[i].ID == i.
	Counters []Counter
	// Root is the root counter ID.
	Root int
	// Levels is the number of counter layers.
	Levels int
	// first[i] is the counter processor i starts its ascent at.
	first []int
	// ringOf[i] is the ring processor i belongs to (-1 if unconstrained).
	ringOf []int
}

// FirstCounter returns the counter processor p starts its ascent at.
func (t *Tree) FirstCounter(p int) int { return t.first[p] }

// RingOf returns the ring processor p belongs to, or -1.
func (t *Tree) RingOf(p int) int { return t.ringOf[p] }

// Depth returns the number of counters on the path from counter c to the
// root, inclusive. The paper's "depth seen by a processor" is
// Depth(FirstCounter(p)).
func (t *Tree) Depth(c int) int {
	n := 0
	for c != NoCounter {
		n++
		c = t.Counters[c].Parent
	}
	return n
}

// PathToRoot returns the counter IDs from c to the root, inclusive.
func (t *Tree) PathToRoot(c int) []int {
	var path []int
	for c != NoCounter {
		path = append(path, c)
		c = t.Counters[c].Parent
	}
	return path
}

// MaxFanIn returns the largest fan-in over all counters.
func (t *Tree) MaxFanIn() int {
	m := 0
	for i := range t.Counters {
		if f := t.Counters[i].FanIn(); f > m {
			m = f
		}
	}
	return m
}

// NumCounters returns the number of counters in the tree.
func (t *Tree) NumCounters() int { return len(t.Counters) }

// layerSizes returns the per-layer counter counts for n groups reduced by
// degree d until a single root remains: sizes[0] = n, sizes[k+1] =
// ceil(sizes[k]/d).
func layerSizes(n, d int) []int {
	sizes := []int{n}
	for n > 1 {
		n = (n + d - 1) / d
		sizes = append(sizes, n)
	}
	return sizes
}

// NewClassic builds a classic combining tree for p processors with degree
// d: ceil(p/d) leaf counters each holding up to d processors, reduced by
// degree d up to a single root. d ≥ p yields the flat single-counter
// barrier. It panics for p < 1 or d < 2.
func NewClassic(p, d int) *Tree {
	if p < 1 {
		panic("topology: need at least one processor")
	}
	if d < 2 {
		panic("topology: degree must be at least 2")
	}
	nLeaves := (p + d - 1) / d
	sizes := layerSizes(nLeaves, d)
	t := &Tree{Kind: Classic, P: p, Degree: d, Levels: len(sizes)}
	t.buildLayers(sizes, d)

	// Attach processors to leaf counters in contiguous blocks of ≤ d.
	t.first = make([]int, p)
	for i := 0; i < p; i++ {
		leaf := i / d
		t.Counters[leaf].Procs = append(t.Counters[leaf].Procs, i)
		t.first[i] = leaf
	}
	t.ringOf = uniformRing(p, -1)
	return t
}

// NewMCS builds an MCS-style tree for p processors with degree d. Every
// counter has one local processor; leaf counters hold up to d+1 processors
// in total; internal counters have d counter children plus their local
// processor. It panics for p < 1 or d < 2.
func NewMCS(p, d int) *Tree {
	if p < 1 {
		panic("topology: need at least one processor")
	}
	if d < 2 {
		panic("topology: degree must be at least 2")
	}
	// Pick the largest leaf count with enough processors to give every
	// counter a local processor and every leaf at least one processor.
	nLeaves := (p + d) / (d + 1)
	if nLeaves < 1 {
		nLeaves = 1
	}
	var sizes []int
	for {
		sizes = layerSizes(nLeaves, d)
		internals := 0
		for _, s := range sizes[1:] {
			internals += s
		}
		if p-internals >= nLeaves || nLeaves == 1 {
			break
		}
		nLeaves--
	}
	t := &Tree{Kind: MCS, P: p, Degree: d, Levels: len(sizes)}
	t.buildLayers(sizes, d)

	t.first = make([]int, p)
	internals := len(t.Counters) - nLeaves
	leafProcs := p - internals
	if leafProcs < nLeaves {
		// Unreachable: the loop above only stops with enough processors
		// (nLeaves == 1 implies zero internal counters, so leafProcs = p).
		panic("topology: internal error, not enough processors for the leaves")
	}
	// Distribute leafProcs over the leaves as evenly as possible.
	next := 0
	for leaf := 0; leaf < nLeaves; leaf++ {
		share := leafProcs / nLeaves
		if leaf < leafProcs%nLeaves {
			share++
		}
		for j := 0; j < share; j++ {
			t.attach(next, leaf)
			if j == 0 {
				t.Counters[leaf].Local = next
			}
			next++
		}
	}
	// Remaining processors become the locals of internal counters, in
	// counter order (lower levels first).
	for c := nLeaves; c < len(t.Counters); c++ {
		t.attach(next, c)
		t.Counters[c].Local = next
		next++
	}
	if next != p {
		panic("topology: internal error, processors left over")
	}
	t.ringOf = uniformRing(p, -1)
	return t
}

// NewRing builds a ring-constrained tree: one MCS subtree of degree d per
// ring (ringSizes[i] processors in ring i), merged by one additional root
// counter. In MCS style the merge root also carries a local processor —
// the last processor of ring 0 — and belongs to ring 0 for placement
// purposes, so dynamic placement can still fill the root slot without ever
// crossing a ring boundary (as the paper's §7 measurements require: their
// last-processor depths fall below 2, so their root accepted migrants).
// Processor IDs are assigned ring by ring. A single ring degenerates to a
// plain MCS tree (with ring IDs recorded). It panics for an empty ring
// list, a non-positive ring, or a first ring too small to spare its root
// processor (< 2 processors with multiple rings).
func NewRing(ringSizes []int, d int) *Tree {
	if len(ringSizes) == 0 {
		panic("topology: need at least one ring")
	}
	if len(ringSizes) > 1 && ringSizes[0] < 2 {
		panic("topology: first ring must have at least two processors to staff the merge root")
	}
	total := 0
	for _, s := range ringSizes {
		if s < 1 {
			panic("topology: ring sizes must be positive")
		}
		total += s
	}
	t := &Tree{Kind: Ring, P: total, Degree: d}
	t.first = make([]int, total)
	t.ringOf = make([]int, total)

	var ringRoots []int
	procBase := 0
	maxLevel := 0
	multi := len(ringSizes) > 1
	for ring, size := range ringSizes {
		subSize := size
		if multi && ring == 0 {
			subSize-- // ring 0's last processor staffs the merge root
		}
		sub := NewMCS(subSize, d)
		counterBase := len(t.Counters)
		for _, c := range sub.Counters {
			nc := Counter{
				ID:     counterBase + c.ID,
				Level:  c.Level,
				Parent: NoCounter,
				Local:  NoProc,
				RingID: ring,
			}
			if c.Parent != NoCounter {
				nc.Parent = counterBase + c.Parent
			}
			for _, ch := range c.Children {
				nc.Children = append(nc.Children, counterBase+ch)
			}
			for _, p := range c.Procs {
				nc.Procs = append(nc.Procs, procBase+p)
			}
			if c.Local != NoProc {
				nc.Local = procBase + c.Local
			}
			t.Counters = append(t.Counters, nc)
		}
		for i := 0; i < subSize; i++ {
			t.first[procBase+i] = counterBase + sub.first[i]
			t.ringOf[procBase+i] = ring
		}
		ringRoots = append(ringRoots, counterBase+sub.Root)
		if lv := sub.Counters[sub.Root].Level; lv > maxLevel {
			maxLevel = lv
		}
		procBase += size
	}

	if !multi {
		t.Root = ringRoots[0]
		t.Levels = maxLevel + 1
		return t
	}
	// Rings of different sizes build subtrees of different depths, but the
	// merge root must sit exactly one level above every ring root. Lift each
	// shallow ring's counters uniformly so all ring roots land on maxLevel;
	// a uniform shift preserves the ring-internal parent/child level chain,
	// and nothing reads a counter's absolute level except that chain.
	for ring, r := range ringRoots {
		if delta := maxLevel - t.Counters[r].Level; delta > 0 {
			for i := range t.Counters {
				if t.Counters[i].RingID == ring {
					t.Counters[i].Level += delta
				}
			}
		}
	}
	rootLocal := ringSizes[0] - 1 // the spared last processor of ring 0
	root := Counter{
		ID:     len(t.Counters),
		Level:  maxLevel + 1,
		Parent: NoCounter,
		Procs:  []int{rootLocal},
		Local:  rootLocal,
		RingID: 0,
	}
	root.Children = append(root.Children, ringRoots...)
	t.Counters = append(t.Counters, root)
	t.first[rootLocal] = root.ID
	t.ringOf[rootLocal] = 0
	for _, r := range ringRoots {
		t.Counters[r].Parent = root.ID
	}
	t.Root = root.ID
	t.Levels = maxLevel + 2
	return t
}

// buildLayers creates the counter hierarchy given per-layer sizes, linking
// each layer-k counter to a layer-k+1 parent in contiguous groups of d.
func (t *Tree) buildLayers(sizes []int, d int) {
	base := 0
	prevBase := 0
	for level, n := range sizes {
		for i := 0; i < n; i++ {
			t.Counters = append(t.Counters, Counter{
				ID:     base + i,
				Level:  level,
				Parent: NoCounter,
				Local:  NoProc,
				RingID: -1,
			})
		}
		if level > 0 {
			for i := 0; i < sizes[level-1]; i++ {
				parent := base + i/d
				t.Counters[prevBase+i].Parent = parent
				t.Counters[parent].Children = append(t.Counters[parent].Children, prevBase+i)
			}
		}
		prevBase = base
		base += n
	}
	t.Root = len(t.Counters) - 1
}

// attach places processor p on counter c and records it as p's first
// counter.
func (t *Tree) attach(p, c int) {
	t.Counters[c].Procs = append(t.Counters[c].Procs, p)
	t.first[p] = c
}

func uniformRing(p, ring int) []int {
	r := make([]int, p)
	for i := range r {
		r[i] = ring
	}
	return r
}
