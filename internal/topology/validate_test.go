package topology

import (
	"strings"
	"testing"
)

// corrupt applies a mutation to a fresh tree and asserts Validate reports
// an error containing want.
func corrupt(t *testing.T, want string, mutate func(tr *Tree)) {
	t.Helper()
	tr := NewMCS(16, 4)
	mutate(tr)
	err := tr.Validate()
	if err == nil {
		t.Fatalf("corruption %q not detected", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("corruption %q reported as: %v", want, err)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	corrupt(t, "no processors", func(tr *Tree) { tr.P = 0 })
	corrupt(t, "first-counter table", func(tr *Tree) { tr.first = tr.first[:1] })
	corrupt(t, "root", func(tr *Tree) { tr.Root = -1 })
	corrupt(t, "root has a parent", func(tr *Tree) { tr.Counters[tr.Root].Parent = 0 })
	corrupt(t, "has ID", func(tr *Tree) { tr.Counters[0].ID = 5 })
	corrupt(t, "level", func(tr *Tree) { tr.Counters[0].Level = 7 })
	corrupt(t, "missing from parent", func(tr *Tree) {
		// Redirect counter 0's parent to another counter at the right
		// level that does not list it.
		c0 := &tr.Counters[0]
		old := c0.Parent
		for i := range tr.Counters {
			if i != old && tr.Counters[i].Level == tr.Counters[old].Level {
				c0.Parent = i
				return
			}
		}
		t.Skip("no alternative parent at that level")
	})
	corrupt(t, "fan-in 0", func(tr *Tree) {
		// Orphan a leaf's processors and children.
		tr.Counters[0].Procs = nil
		tr.Counters[0].Local = NoProc
	})
	corrupt(t, "invalid processor", func(tr *Tree) { tr.Counters[0].Procs[0] = 99 })
	corrupt(t, "first counter is", func(tr *Tree) { tr.first[tr.Counters[0].Procs[0]] = tr.Root })
	corrupt(t, "local", func(tr *Tree) { tr.Counters[0].Local = 15 })
	corrupt(t, "parentless", func(tr *Tree) {
		// Detach a subtree: two roots.
		for i := range tr.Counters {
			if i != tr.Root && tr.Counters[i].Parent == tr.Root {
				parent := &tr.Counters[tr.Root]
				for j, ch := range parent.Children {
					if ch == i {
						parent.Children = append(parent.Children[:j], parent.Children[j+1:]...)
						break
					}
				}
				tr.Counters[i].Parent = NoCounter
				return
			}
		}
	})
	corrupt(t, "attached", func(tr *Tree) {
		// Attach a processor twice (to a second leaf as well).
		p := tr.Counters[0].Procs[0]
		tr.Counters[1].Procs = append(tr.Counters[1].Procs, p)
	})
}

func TestValidateDetectsChildParentMismatch(t *testing.T) {
	tr := NewMCS(64, 4)
	// Make a counter claim a child whose Parent points elsewhere, keeping
	// levels consistent so the deeper check fires.
	root := &tr.Counters[tr.Root]
	victim := root.Children[0]
	grand := tr.Counters[victim].Children[0]
	root.Children = append(root.Children, grand) // grand.Parent != root
	if err := tr.Validate(); err == nil {
		t.Fatal("child/parent mismatch not detected")
	}
}

func TestReplaceProcPanicsWhenMissing(t *testing.T) {
	tr := NewMCS(8, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	replaceProc(&tr.Counters[0], 99, 0)
}
