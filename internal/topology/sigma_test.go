package topology

import "testing"

func TestPlaceByDepthRelabel(t *testing.T) {
	tr := NewMCS(13, 3)
	// Identity order must reproduce a valid tree with the same shape.
	order := make([]int, tr.P)
	for i := range order {
		order[i] = i
	}
	nt, err := tr.PlaceByDepth(order)
	if err != nil {
		t.Fatal(err)
	}
	if err := nt.Validate(); err != nil {
		t.Fatal(err)
	}

	// A laggiest-first order must produce monotonically non-decreasing
	// depths along the order: order[0] shallowest.
	rev := make([]int, tr.P)
	for i := range rev {
		rev[i] = tr.P - 1 - i
	}
	nt, err = tr.PlaceByDepth(rev)
	if err != nil {
		t.Fatal(err)
	}
	if err := nt.Validate(); err != nil {
		t.Fatal(err)
	}
	prev := 0
	for k, p := range rev {
		d := nt.Depth(nt.FirstCounter(p))
		if d < prev {
			t.Fatalf("order[%d]=proc %d at depth %d, shallower than its predecessor (%d)", k, p, d, prev)
		}
		prev = d
	}
	// Shape invariants survive relabeling.
	a, b := tr.ShapeStats(), nt.ShapeStats()
	if a != b {
		t.Fatalf("relabel changed the shape: %+v vs %+v", a, b)
	}
	// The first processor in the order owns the root local slot on an MCS
	// tree (the unique depth-1 slot).
	if got := nt.FirstCounter(rev[0]); got != nt.Root {
		t.Fatalf("laggiest processor placed at counter %d, not the root %d", got, nt.Root)
	}
	if nt.Counters[nt.Root].Local != rev[0] {
		t.Fatalf("root local is %d, want %d", nt.Counters[nt.Root].Local, rev[0])
	}
}

func TestPlaceByDepthClassic(t *testing.T) {
	tr := NewClassic(9, 3)
	order := []int{8, 7, 6, 5, 4, 3, 2, 1, 0}
	nt, err := tr.PlaceByDepth(order)
	if err != nil {
		t.Fatal(err)
	}
	if err := nt.Validate(); err != nil {
		t.Fatal(err)
	}
	// Classic trees attach every processor at the same depth, so the
	// relabel is just a permutation of leaf assignments.
	for p := 0; p < tr.P; p++ {
		if nt.Depth(nt.FirstCounter(p)) != tr.Depth(tr.FirstCounter(p)) {
			t.Fatalf("classic relabel changed processor %d depth", p)
		}
	}
}

func TestPlaceByDepthErrors(t *testing.T) {
	tr := NewMCS(6, 2)
	if _, err := tr.PlaceByDepth([]int{0, 1, 2}); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := tr.PlaceByDepth([]int{0, 1, 2, 3, 4, 4}); err == nil {
		t.Fatal("duplicate order accepted")
	}
	if _, err := tr.PlaceByDepth([]int{0, 1, 2, 3, 4, 6}); err == nil {
		t.Fatal("out-of-range order accepted")
	}
	ring := NewRing([]int{4, 4}, 2)
	ro := make([]int, ring.P)
	for i := range ro {
		ro[i] = i
	}
	if _, err := ring.PlaceByDepth(ro); err == nil {
		t.Fatal("ring tree relabel accepted")
	}
}

func TestPlaceByDepthDoesNotMutateOriginal(t *testing.T) {
	tr := NewMCS(10, 2)
	before := make([]int, tr.P)
	for p := range before {
		before[p] = tr.FirstCounter(p)
	}
	order := make([]int, tr.P)
	for i := range order {
		order[i] = (i + 3) % tr.P
	}
	if _, err := tr.PlaceByDepth(order); err != nil {
		t.Fatal(err)
	}
	for p := range before {
		if tr.FirstCounter(p) != before[p] {
			t.Fatalf("PlaceByDepth mutated the original tree at proc %d", p)
		}
	}
}
